// Package metricindex is a library of pivot-based metric index structures,
// reproducing "Pivot-based Metric Indexing: Experiments and Analyses"
// (Chen, Gao, Zheng, Jensen, Yang, Yang — PVLDB 10(10), 2017).
//
// It provides every index the paper studies — the pivot tables AESA,
// LAESA, EPT, EPT* and CPT; the pivot trees BKT, FQT (plus FQA) and
// VPT/MVPT; and the disk-based PM-tree, Omni-family, M-index, M-index*
// and SPB-tree — behind one Index interface, together with the pivot
// selection algorithms (HF, HFI, PSA), metric-space primitives, dataset
// generators, and the instrumentation (distance-computation and
// page-access counters) the paper's experiments measure.
//
// # Quick start
//
//	objs := []metricindex.Object{
//		metricindex.Vector{0, 0}, metricindex.Vector{3, 4}, metricindex.Vector{6, 8},
//	}
//	ds := metricindex.NewDataset(metricindex.NewSpace(metricindex.L2{}), objs)
//	pivots, _ := metricindex.SelectPivots(ds, 2, 1)
//	idx, _ := metricindex.NewLAESA(ds, pivots)
//	ids, _ := idx.RangeSearch(metricindex.Vector{1, 1}, 5)   // MRQ
//	nns, _ := idx.KNNSearch(metricindex.Vector{1, 1}, 2)     // MkNNQ
//
// # Batch queries
//
// Queries are read-only on every index, so whole workloads can be
// answered concurrently through the batch engine. Results are
// positionally aligned with the input queries and identical to the
// sequential calls; Stats aggregates compdists, page accesses, and wall
// time over the batch:
//
//	eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{}) // GOMAXPROCS workers
//	res, _ := eng.BatchKNNSearch(ctx, idx, queries, 10)
//	for i := range queries {
//		_ = res.Neighbors[i] // answer of queries[i]
//	}
//	qps := res.Stats.Throughput()
//
// Construction parallelizes for every index family: NewLAESAParallel,
// NewCPTParallel, NewPMTreeParallel, and the Workers fields of
// EPTOptions, OmniOptions and TreeOptions fan the construction work
// across cores — chunked distance rows for the tables, node-level
// builds bounded by a shared token pool for the trees (BKT/FQT/MVPT),
// and a partitioned bulk load for the disk M-tree/PM-tree. The tables
// and trees are identical to their sequential builds; the bulk load is
// its own algorithm whose page image is byte-identical for every
// worker count (it clusters objects differently than the sequential
// one-by-one insertion of NewPMTree/NewCPT — answers match, per-query
// page accesses may shift). Each of those identity claims is
// enforced by internal/testutil's metamorphic equivalence harness
// (parallel answers == sequential answers, both == a linear scan,
// invariant under insert-then-delete round trips) plus deep structure
// and page-image compares under the race detector. A raw index does not
// synchronize updates with searches (finish the batch, then update);
// wrap it in NewLive to lift that restriction — see below.
//
// # Sharding
//
// One index bounds a single query to one structure; NewSharded removes
// that bound by partitioning the dataset across N sub-indexes and
// scatter-gathering every query over them concurrently. Any constructor
// serves as the per-shard builder, and the shard datasets keep the
// parent's object identifiers, so answers are exactly those of the same
// index built unsharded (MRQ unions the shard answers, MkNNQ merges the
// per-shard k-candidates):
//
//	builder := func(sub *metricindex.Dataset) (metricindex.Index, error) {
//		pivots, err := metricindex.SelectPivots(sub, 5, 1)
//		if err != nil {
//			return nil, err
//		}
//		return metricindex.NewLAESA(sub, pivots)
//	}
//	idx, _ := metricindex.NewSharded(builder, ds, metricindex.ShardOptions{Shards: 4})
//	ids, _ := idx.RangeSearch(q, 5) // probes all 4 shards concurrently
//
// A Sharded index is itself an Index, so it composes with the batch
// engine: a NewEngine batch over it overlaps queries and shard probes.
// Insert and Delete route through a pluggable partitioner (round-robin by
// default, or HashPartitioner).
//
// # Live updates and serving
//
// NewLive wraps any Index (including a Sharded one) behind reader/writer
// epochs, making it safe to interleave Add/Remove with in-flight
// searches — the epoch contract: searches run in shared read sections,
// updates in exclusive write sections, every committed write advances a
// monotone Epoch naming the dataset version a search observed. A Live
// index is hot-swappable: Swap rebuilds the structure in the background
// (searches and updates keep flowing), replays the updates that arrived
// meanwhile, and cuts over atomically with zero dropped or wrong
// answers.
//
//	live := metricindex.NewLive(ds, idx)
//	go live.KNNSearch(q, 10)                   // reads...
//	live.Add(obj)                              // ...safely interleave with writes
//	live.Swap(rebuild)                         // graceful re-index under load
//
// NewServer exposes a Live index over HTTP/JSON — range/kNN/batch
// queries, inserts, deletes, graceful swap, per-client and per-endpoint
// stats (qps, p50/p95/p99 latency, compdists, page accesses) — with
// admission control that bounds in-flight queries and sheds excess load.
// The cmd/mserve binary is that server around any of the paper's
// structures.
//
// # Caching
//
// The library has two caches at two different levels.
//
// The page cache is the paper's: disk-based indexes run against a
// simulated page store that counts page accesses exactly as the paper
// reports them, and DiskOptions.CacheBytes enables the §6.1 LRU buffer
// (128 KB by default via DefaultCacheBytes) that reduces PA on MkNNQ.
// It caches pages, so a hot query still pays all of its distance
// computations on every arrival.
//
// The answer cache (CacheOptions, on NewLive and ServerOptions) sits
// above the index and memoizes whole query answers. Entries are keyed by
// (query object, query kind, radius|k, epoch) — the epoch being the
// monotone write counter a Live index reports from inside every search's
// read section. That keying makes invalidation free and exact: any
// committed Add/Remove/Insert/Delete/Swap bumps the epoch, so every
// cached answer self-invalidates at once, and a search that starts after
// a write commits can never be served a pre-write answer. A hit is
// byte-identical to a fresh search and costs zero compdists and zero
// page accesses; concurrent identical misses collapse onto a single
// search (singleflight). The batch engine probes the cache per query
// before dispatching, so hot batches never wait on the worker pool:
//
//	live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{MaxBytes: 64 << 20})
//	live.KNNSearch(q, 10)  // computes and fills
//	live.KNNSearch(q, 10)  // served memoized, 0 compdists
//	live.Add(obj)          // epoch bump: every entry invalid
//	st, _ := live.CacheStats()
//
// # Batched distance kernels
//
// Scalar Metric.Distance is the universal contract, but the built-in
// vector metrics (L1, L2, LInf, IntLInf) additionally implement
// BatchMetric: DistanceMany evaluates one query against a slice of
// objects, and DistanceFlat runs directly over packed row-major
// coordinates with unrolled, bounds-check-hoisted loops (L2 keeps the
// square root out of the accumulation loop, and exposes a
// squared-distance path for pruning). The pivot tables detect the
// capability automatically: query-pivot distances go through
// DistanceMany, candidate verification runs over a flat coordinate
// mirror of the table rows, and per-query buffers come from a scratch
// pool, so a steady-state LAESA/EPT query allocates nothing. Batched
// answers are bit-for-bit identical to the scalar path because the
// scalar metrics delegate to the same kernels. Vector32 holds float32
// coordinates (half the memory per table row); its kernels widen every
// coordinate to float64 before accumulating, so distances stay
// deterministic, but the metric contract only holds among Vector32
// values of equal quantization. docs/KERNELS.md specifies the layout,
// the scratch rules, and the float32 pruning-safety caveats.
package metricindex

import (
	"metricindex/internal/core"
	"metricindex/internal/pivot"
)

// Object is any value a Metric can compare.
type Object = core.Object

// Vector is a point in R^d (use with L1, L2, LInf, Lp).
type Vector = core.Vector

// IntVector is an integer-coordinate point (use with IntLInf, the
// discrete Chebyshev metric required by BKT and FQT).
type IntVector = core.IntVector

// Vector32 is a float32-coordinate point: half the memory of a Vector
// per dimension, compared by the same vector metrics through kernels
// that widen to float64 before accumulating (see "Batched distance
// kernels" above).
type Vector32 = core.Vector32

// Word is a string compared with edit distance.
type Word = core.Word

// Metric is a distance function satisfying the metric axioms.
type Metric = core.Metric

// BatchMetric is the optional batched capability of a Metric (see
// "Batched distance kernels" above). All built-in vector metrics
// implement it; custom metrics may ignore it and every index still
// works through scalar Distance.
type BatchMetric = core.BatchMetric

// The built-in metrics.
type (
	// L1 is the Manhattan distance over Vectors.
	L1 = core.L1
	// L2 is the Euclidean distance over Vectors.
	L2 = core.L2
	// LInf is the Chebyshev distance over Vectors.
	LInf = core.LInf
	// Lp is the Minkowski distance of order P over Vectors.
	Lp = core.Lp
	// IntLInf is the discrete Chebyshev distance over IntVectors.
	IntLInf = core.IntLInf
	// Edit is the Levenshtein distance over Words.
	Edit = core.Edit
)

// Space is a metric space instrumented with a distance-computation
// counter ("compdists" in the paper).
type Space = core.Space

// NewSpace wraps a metric into an instrumented space.
func NewSpace(m Metric) *Space { return core.NewSpace(m) }

// Dataset is an object collection addressed by dense integer ids.
type Dataset = core.Dataset

// NewDataset builds a dataset over the objects (the slice is owned by the
// dataset afterwards).
func NewDataset(space *Space, objects []Object) *Dataset {
	return core.NewDataset(space, objects)
}

// Neighbor is one kNN answer element.
type Neighbor = core.Neighbor

// Index is the common contract of every index structure in the library:
// MRQ (RangeSearch), MkNNQ (KNNSearch), updates, and the cost counters
// the paper's experiments record.
type Index = core.Index

// BruteForceRange answers MRQ(q, r) by exhaustive scan — the correctness
// baseline.
func BruteForceRange(ds *Dataset, q Object, r float64) []int {
	return core.BruteForceRange(ds, q, r)
}

// BruteForceKNN answers MkNNQ(q, k) by exhaustive scan.
func BruteForceKNN(ds *Dataset, q Object, k int) []Neighbor {
	return core.BruteForceKNN(ds, q, k)
}

// SelectPivots picks k pivots with HFI — the state-of-the-art strategy
// the paper applies to every index for its equal-footing comparison
// (§6.1). The returned ids index into the dataset.
func SelectPivots(ds *Dataset, k int, seed int64) ([]int, error) {
	return pivot.HFI(ds, k, pivot.Options{Seed: seed})
}

// SelectPivotsHF picks k outlier pivots with the hull-of-foci algorithm
// of the Omni-family [17].
func SelectPivotsHF(ds *Dataset, k int, seed int64) []int {
	return pivot.HF(ds, pivot.Sample(ds, pivot.Options{Seed: seed}), k, seed)
}

// SelectPivotsRandom picks k pivots uniformly at random (the baseline the
// ablation benchmarks compare against).
func SelectPivotsRandom(ds *Dataset, k int, seed int64) []int {
	return pivot.Random(ds, k, seed)
}
