package metricindex_test

// Edge-case tests over the public API: degenerate queries, tiny datasets,
// and duplicate-heavy data must behave exactly like brute force for every
// index family.

import (
	"testing"

	"metricindex"
)

func tinyDataset(t *testing.T, n int) *metricindex.BenchmarkDataset {
	t.Helper()
	gen, err := metricindex.GenerateDataset(metricindex.DatasetSynthetic, n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestKLargerThanDataset(t *testing.T) {
	gen := tinyDataset(t, 25)
	for name, idx := range buildAll(t, gen) {
		nns, err := idx.KNNSearch(gen.Queries[0], 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nns) != 25 {
			t.Errorf("%s: k>n returned %d results, want all 25", name, len(nns))
		}
	}
}

func TestZeroRadius(t *testing.T) {
	gen := tinyDataset(t, 60)
	ds := gen.Dataset
	// Query exactly equal to a stored object: r=0 must return it (and any
	// duplicates), nothing else.
	q := ds.Object(7)
	want := metricindex.BruteForceRange(ds, q, 0)
	if len(want) < 1 {
		t.Fatal("setup: object 7 must match itself")
	}
	for name, idx := range buildAll(t, gen) {
		got, err := idx.RangeSearch(q, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: r=0 returned %v, want %v", name, got, want)
		}
	}
}

func TestKOne(t *testing.T) {
	gen := tinyDataset(t, 60)
	want := metricindex.BruteForceKNN(gen.Dataset, gen.Queries[0], 1)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.KNNSearch(gen.Queries[0], 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || got[0].Dist != want[0].Dist {
			t.Errorf("%s: 1-NN %v, want %v", name, got, want)
		}
	}
}

func TestHugeRadiusReturnsEverything(t *testing.T) {
	gen := tinyDataset(t, 40)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.RangeSearch(gen.Queries[0], gen.MaxDistance*10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 40 {
			t.Errorf("%s: huge radius returned %d of 40", name, len(got))
		}
	}
}

func TestDuplicateHeavyDataset(t *testing.T) {
	// 10 distinct values, 20 copies each.
	objs := make([]metricindex.Object, 200)
	for i := range objs {
		v := make(metricindex.IntVector, 20)
		for d := range v {
			v[d] = int32((i % 10) * 100)
		}
		objs[i] = v
	}
	ds := metricindex.NewDataset(metricindex.NewSpace(metricindex.IntLInf{}), objs)
	gen := &metricindex.BenchmarkDataset{
		Kind:        metricindex.DatasetSynthetic,
		Dataset:     ds,
		Queries:     []metricindex.Object{objs[0], objs[55]},
		MaxDistance: 1000,
	}
	for name, idx := range buildAll(t, gen) {
		for _, q := range gen.Queries {
			for _, r := range []float64{0, 150, 2000} {
				want := metricindex.BruteForceRange(ds, q, r)
				got, err := idx.RangeSearch(q, r)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(got) != len(want) {
					t.Errorf("%s: duplicates r=%v returned %d, want %d", name, r, len(got), len(want))
				}
			}
			want := metricindex.BruteForceKNN(ds, q, 30)
			got, err := idx.KNNSearch(q, 30)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) || got[len(got)-1].Dist != want[len(want)-1].Dist {
				t.Errorf("%s: duplicates kNN mismatch", name)
			}
		}
	}
}

func TestDeleteEverythingThenQuery(t *testing.T) {
	gen := tinyDataset(t, 30)
	ds := gen.Dataset
	indexes := buildAll(t, gen)
	for _, id := range ds.LiveIDs() {
		for name, idx := range indexes {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("%s Delete(%d): %v", name, id, err)
			}
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for name, idx := range indexes {
		got, err := idx.RangeSearch(gen.Queries[0], gen.MaxDistance)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: empty index returned %v", name, got)
		}
		nns, err := idx.KNNSearch(gen.Queries[0], 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nns) != 0 {
			t.Errorf("%s: empty index kNN returned %v", name, nns)
		}
	}
}

func TestKNNZeroKReturnsNothing(t *testing.T) {
	// Regression: NewKNNHeap used to coerce k<1 to 1, so MkNNQ(q, 0)
	// returned one neighbor from every index and from brute force.
	gen := tinyDataset(t, 40)
	if got := metricindex.BruteForceKNN(gen.Dataset, gen.Queries[0], 0); len(got) != 0 {
		t.Fatalf("BruteForceKNN(k=0) = %v, want empty", got)
	}
	for name, idx := range buildAll(t, gen) {
		for _, k := range []int{0, -1} {
			nns, err := idx.KNNSearch(gen.Queries[0], k)
			if err != nil {
				t.Fatalf("%s: KNNSearch(k=%d): %v", name, k, err)
			}
			if len(nns) != 0 {
				t.Errorf("%s: KNNSearch(k=%d) = %v, want empty", name, k, nns)
			}
		}
	}
}

func TestInsertInvalidIDErrorsEverywhere(t *testing.T) {
	// Regression: several Insert paths passed a nil Object into the
	// metric's type assertion (a panic) when handed a deleted or
	// out-of-range id; all must return an error instead.
	gen := tinyDataset(t, 40)
	ds := gen.Dataset
	indexes := buildAll(t, gen)
	victim := 13
	for name, idx := range indexes {
		if err := idx.Delete(victim); err != nil {
			t.Fatalf("%s Delete(%d): %v", name, victim, err)
		}
	}
	if err := ds.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for name, idx := range indexes {
		if err := idx.Insert(victim); err == nil {
			t.Errorf("%s: Insert of deleted id must error", name)
		}
		if err := idx.Insert(ds.Len() + 7); err == nil {
			t.Errorf("%s: Insert of out-of-range id must error", name)
		}
		if err := idx.Insert(-3); err == nil {
			t.Errorf("%s: Insert of negative id must error", name)
		}
	}
	// The indexes must still answer correctly after the rejected inserts.
	q := gen.Queries[0]
	want := metricindex.BruteForceKNN(ds, q, 5)
	for name, idx := range indexes {
		got, err := idx.KNNSearch(q, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) || got[len(got)-1].Dist != want[len(want)-1].Dist {
			t.Errorf("%s: answers diverged after rejected inserts", name)
		}
	}
}

func TestEditDistanceNonASCIIPublic(t *testing.T) {
	// Regression: the byte-wise Levenshtein DP charged one edit per byte,
	// so d("café", "cafe") was 2. Multi-byte runes are one unit.
	var m metricindex.Edit
	if d := m.Distance(metricindex.Word("café"), metricindex.Word("cafe")); d != 1 {
		t.Fatalf("Edit.Distance(café, cafe) = %v, want 1", d)
	}
	objs := []metricindex.Object{
		metricindex.Word("café"), metricindex.Word("cafe"), metricindex.Word("naïve"),
		metricindex.Word("naive"), metricindex.Word("über"), metricindex.Word("uber"),
		metricindex.Word("résumé"), metricindex.Word("resume"),
	}
	ds := metricindex.NewDataset(metricindex.NewSpace(metricindex.Edit{}), objs)
	pivots, err := metricindex.SelectPivots(ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := metricindex.NewBKT(ds, metricindex.TreeOptions{MaxDistance: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fqt, err := metricindex.NewFQT(ds, pivots, metricindex.TreeOptions{MaxDistance: 16})
	if err != nil {
		t.Fatal(err)
	}
	q := metricindex.Word("café")
	want := metricindex.BruteForceRange(ds, q, 1)
	for _, tree := range []metricindex.Index{idx, fqt} {
		got, err := tree.RangeSearch(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("%s: MRQ(café, 1) = %v, brute force %v", tree.Name(), got, want)
		}
	}
}

func TestQueryObjectOutsideDomain(t *testing.T) {
	// A query far outside the data's bounding region must still work.
	gen := tinyDataset(t, 50)
	q := make(metricindex.IntVector, 20)
	for d := range q {
		q[d] = 32000
	}
	want := metricindex.BruteForceKNN(gen.Dataset, q, 3)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.KNNSearch(q, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 3 || got[2].Dist != want[2].Dist {
			t.Errorf("%s: far query mismatch: %v vs %v", name, got, want)
		}
	}
}
