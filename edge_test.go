package metricindex_test

// Edge-case tests over the public API: degenerate queries, tiny datasets,
// and duplicate-heavy data must behave exactly like brute force for every
// index family.

import (
	"testing"

	"metricindex"
)

func tinyDataset(t *testing.T, n int) *metricindex.BenchmarkDataset {
	t.Helper()
	gen, err := metricindex.GenerateDataset(metricindex.DatasetSynthetic, n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestKLargerThanDataset(t *testing.T) {
	gen := tinyDataset(t, 25)
	for name, idx := range buildAll(t, gen) {
		nns, err := idx.KNNSearch(gen.Queries[0], 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nns) != 25 {
			t.Errorf("%s: k>n returned %d results, want all 25", name, len(nns))
		}
	}
}

func TestZeroRadius(t *testing.T) {
	gen := tinyDataset(t, 60)
	ds := gen.Dataset
	// Query exactly equal to a stored object: r=0 must return it (and any
	// duplicates), nothing else.
	q := ds.Object(7)
	want := metricindex.BruteForceRange(ds, q, 0)
	if len(want) < 1 {
		t.Fatal("setup: object 7 must match itself")
	}
	for name, idx := range buildAll(t, gen) {
		got, err := idx.RangeSearch(q, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: r=0 returned %v, want %v", name, got, want)
		}
	}
}

func TestKOne(t *testing.T) {
	gen := tinyDataset(t, 60)
	want := metricindex.BruteForceKNN(gen.Dataset, gen.Queries[0], 1)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.KNNSearch(gen.Queries[0], 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || got[0].Dist != want[0].Dist {
			t.Errorf("%s: 1-NN %v, want %v", name, got, want)
		}
	}
}

func TestHugeRadiusReturnsEverything(t *testing.T) {
	gen := tinyDataset(t, 40)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.RangeSearch(gen.Queries[0], gen.MaxDistance*10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 40 {
			t.Errorf("%s: huge radius returned %d of 40", name, len(got))
		}
	}
}

func TestDuplicateHeavyDataset(t *testing.T) {
	// 10 distinct values, 20 copies each.
	objs := make([]metricindex.Object, 200)
	for i := range objs {
		v := make(metricindex.IntVector, 20)
		for d := range v {
			v[d] = int32((i % 10) * 100)
		}
		objs[i] = v
	}
	ds := metricindex.NewDataset(metricindex.NewSpace(metricindex.IntLInf{}), objs)
	gen := &metricindex.BenchmarkDataset{
		Kind:        metricindex.DatasetSynthetic,
		Dataset:     ds,
		Queries:     []metricindex.Object{objs[0], objs[55]},
		MaxDistance: 1000,
	}
	for name, idx := range buildAll(t, gen) {
		for _, q := range gen.Queries {
			for _, r := range []float64{0, 150, 2000} {
				want := metricindex.BruteForceRange(ds, q, r)
				got, err := idx.RangeSearch(q, r)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(got) != len(want) {
					t.Errorf("%s: duplicates r=%v returned %d, want %d", name, r, len(got), len(want))
				}
			}
			want := metricindex.BruteForceKNN(ds, q, 30)
			got, err := idx.KNNSearch(q, 30)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) || got[len(got)-1].Dist != want[len(want)-1].Dist {
				t.Errorf("%s: duplicates kNN mismatch", name)
			}
		}
	}
}

func TestDeleteEverythingThenQuery(t *testing.T) {
	gen := tinyDataset(t, 30)
	ds := gen.Dataset
	indexes := buildAll(t, gen)
	for _, id := range ds.LiveIDs() {
		for name, idx := range indexes {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("%s Delete(%d): %v", name, id, err)
			}
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for name, idx := range indexes {
		got, err := idx.RangeSearch(gen.Queries[0], gen.MaxDistance)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: empty index returned %v", name, got)
		}
		nns, err := idx.KNNSearch(gen.Queries[0], 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(nns) != 0 {
			t.Errorf("%s: empty index kNN returned %v", name, nns)
		}
	}
}

func TestQueryObjectOutsideDomain(t *testing.T) {
	// A query far outside the data's bounding region must still work.
	gen := tinyDataset(t, 50)
	q := make(metricindex.IntVector, 20)
	for d := range q {
		q[d] = 32000
	}
	want := metricindex.BruteForceKNN(gen.Dataset, q, 3)
	for name, idx := range buildAll(t, gen) {
		got, err := idx.KNNSearch(q, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 3 || got[2].Dist != want[2].Dist {
			t.Errorf("%s: far query mismatch: %v vs %v", name, got, want)
		}
	}
}
