// Cachedsearch: the epoch-keyed answer cache end to end — a hot query
// is computed once and then served memoized (zero distance
// computations) until a committed write bumps the epoch and
// invalidates every entry at once.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metricindex"
)

func main() {
	// A few thousand random points in (R⁴, L2).
	rng := rand.New(rand.NewSource(11))
	objs := make([]metricindex.Object, 5000)
	for i := range objs {
		v := make(metricindex.Vector, 4)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		objs[i] = v
	}
	space := metricindex.NewSpace(metricindex.L2{})
	ds := metricindex.NewDataset(space, objs)

	pivots, err := metricindex.SelectPivots(ds, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		log.Fatal(err)
	}

	// Wrap the index in a live front with a 16 MB answer cache.
	live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{MaxBytes: 16 << 20})
	q := metricindex.Vector{42, 42, 42, 42}

	knn := func(label string) []metricindex.Neighbor {
		space.ResetCompDists()
		nns, err := live.KNNSearch(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %5d compdists, nearest %d@%.3g\n",
			label, space.CompDists(), nns[0].ID, nns[0].Dist)
		return nns
	}

	first := knn("cold (computes + fills):")
	second := knn("hot (served memoized):")
	for i := range first {
		if first[i] != second[i] {
			log.Fatal("cached answer differs from computed answer")
		}
	}

	// A committed write bumps the epoch: every cached answer
	// self-invalidates, and the next search sees the new object.
	id, err := live.Add(q.Clone())
	if err != nil {
		log.Fatal(err)
	}
	third := knn("after insert (recomputes):")
	if third[0].ID != id || third[0].Dist != 0 {
		log.Fatal("post-insert answer must find the inserted object at distance 0")
	}

	st, _ := live.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %.0f%% hit rate, %d entries, %d B resident\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Entries, st.Bytes)
}
