// Imagesearch: content-based image retrieval over 282-dimensional
// MPEG-7-style feature vectors under the L1-norm — the paper's Color
// workload (§6.1) — served by the SPB-tree and EPT*, the two indexes the
// paper recommends for exactly this setting (large dataset / complex
// distance function).
//
// Feature extraction is simulated with the library's Color generator;
// the retrieval loop is the real code path: MkNNQ for "similar images",
// MRQ for "near duplicates", with distance computations and page
// accesses reported per index.
package main

import (
	"fmt"
	"log"

	"metricindex"
)

func main() {
	const nImages = 3000
	gen, err := metricindex.GenerateDataset(metricindex.DatasetColor, nImages, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.Dataset
	space := ds.Space()
	fmt.Printf("indexed %d images (282-dim features, L1); estimated d+ = %.0f\n\n",
		ds.Count(), gen.MaxDistance)

	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	spbTree, err := metricindex.NewSPBTree(ds, pivots, metricindex.SPBOptions{
		DiskOptions: metricindex.DiskOptions{CacheBytes: metricindex.DefaultCacheBytes},
		MaxDistance: gen.MaxDistance,
	})
	if err != nil {
		log.Fatal(err)
	}
	eptStar, err := metricindex.NewEPTStar(ds, metricindex.EPTOptions{L: 5, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	for qi, q := range gen.Queries {
		fmt.Printf("query image #%d\n", qi+1)
		for _, idx := range []metricindex.Index{spbTree, eptStar} {
			space.ResetCompDists()
			idx.ResetStats()
			nns, err := idx.KNNSearch(q, 5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s top-5:", idx.Name())
			for _, nb := range nns {
				fmt.Printf(" img%04d(%.0f)", nb.ID, nb.Dist)
			}
			fmt.Printf("\n             cost: %d distance computations (scan: %d), %d page accesses\n",
				space.CompDists(), ds.Count(), idx.PageAccesses())
		}

		// Near-duplicate check: tight radius around the query.
		space.ResetCompDists()
		dups, err := spbTree.RangeSearch(q, gen.MaxDistance*0.02)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  near-duplicates within 2%% of d+: %d found (%d distances)\n\n",
			len(dups), space.CompDists())
	}
}
