// Quickstart: build two metric indexes over a handful of 2-D points,
// run a metric range query (MRQ) and a k-nearest-neighbor query (MkNNQ),
// and show the distance computations each index saved versus a linear
// scan.
package main

import (
	"fmt"
	"log"

	"metricindex"
)

func main() {
	// A tiny dataset in (R², L2) — the setting of the paper's Fig 1.
	objs := []metricindex.Object{
		metricindex.Vector{1, 5}, // o1
		metricindex.Vector{5, 5}, // o2
		metricindex.Vector{6, 6}, // o3
		metricindex.Vector{5, 4}, // o4
		metricindex.Vector{3, 1}, // o5
		metricindex.Vector{7, 1}, // o6
		metricindex.Vector{6, 2}, // o7
		metricindex.Vector{4, 6}, // o8
		metricindex.Vector{2, 3}, // o9
	}
	space := metricindex.NewSpace(metricindex.L2{})
	ds := metricindex.NewDataset(space, objs)

	// One shared pivot set, selected with HFI (the strategy the paper
	// uses for every index).
	pivots, err := metricindex.SelectPivots(ds, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pivots: %v\n", pivots)

	laesa, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		log.Fatal(err)
	}
	mvpt, err := metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{LeafCapacity: 2})
	if err != nil {
		log.Fatal(err)
	}

	q := metricindex.Vector{5, 3}
	const r = 2.0
	const k = 3

	for _, idx := range []metricindex.Index{laesa, mvpt} {
		space.ResetCompDists()
		ids, err := idx.RangeSearch(q, r)
		if err != nil {
			log.Fatal(err)
		}
		rangeCost := space.CompDists()

		space.ResetCompDists()
		nns, err := idx.KNNSearch(q, k)
		if err != nil {
			log.Fatal(err)
		}
		knnCost := space.CompDists()

		fmt.Printf("\n%s:\n", idx.Name())
		fmt.Printf("  MRQ(q, %.0f)  -> objects %v   (%d distance computations; linear scan needs %d)\n",
			r, ids, rangeCost, len(objs))
		fmt.Printf("  MkNNQ(q, %d) ->", k)
		for _, nb := range nns {
			fmt.Printf(" o%d@%.2f", nb.ID+1, nb.Dist)
		}
		fmt.Printf("   (%d distance computations)\n", knnCost)
	}
}
