// Wordsearch: fuzzy dictionary lookup under edit distance — the paper's
// introductory example ("defoliate" and friends, §2.1) — served by the
// discrete-metric pivot trees BKT and FQT.
//
// The program indexes a small dictionary, then answers spelling-style
// queries: all words within edit distance 1 or 2 (MRQ) and the closest
// suggestions (MkNNQ), reporting the distance computations each tree
// spent versus a full scan.
package main

import (
	"fmt"
	"log"

	"metricindex"
)

func main() {
	dict := []string{
		"defoliates", "defoliation", "defoliating", "defoliated", "citrate",
		"defoliant", "citrine", "citron", "citrus", "citadel", "citation",
		"defamation", "deflation", "delegation", "derivation", "defiant",
		"define", "defined", "definite", "definition", "deflate", "deflated",
		"relate", "related", "relation", "dilate", "dilated", "dilation",
		"violate", "violated", "violation", "isolate", "isolated", "isolation",
		"percolate", "chocolate", "desolate", "oscillate", "legislate",
		"stipulate", "simulate", "stimulate", "populate", "regulate",
	}
	objs := make([]metricindex.Object, len(dict))
	for i, w := range dict {
		objs[i] = metricindex.Word(w)
	}
	space := metricindex.NewSpace(metricindex.Edit{})
	ds := metricindex.NewDataset(space, objs)

	pivots, err := metricindex.SelectPivots(ds, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	bkt, err := metricindex.NewBKT(ds, metricindex.TreeOptions{MaxDistance: 16, LeafCapacity: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fqt, err := metricindex.NewFQT(ds, pivots, metricindex.TreeOptions{MaxDistance: 16, LeafCapacity: 4})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{"defoliate", "citron", "regulat", "chocolte"}
	for _, idx := range []metricindex.Index{bkt, fqt} {
		fmt.Printf("=== %s ===\n", idx.Name())
		for _, qs := range queries {
			q := metricindex.Word(qs)
			space.ResetCompDists()
			within1, err := idx.RangeSearch(q, 1)
			if err != nil {
				log.Fatal(err)
			}
			cost := space.CompDists()
			fmt.Printf("%-11q  edit<=1:", qs)
			if len(within1) == 0 {
				fmt.Print(" (none)")
			}
			for _, id := range within1 {
				fmt.Printf(" %s", dict[id])
			}
			fmt.Printf("   [%d/%d distances]\n", cost, len(dict))

			space.ResetCompDists()
			nns, err := idx.KNNSearch(q, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print("             suggest:")
			for _, nb := range nns {
				fmt.Printf(" %s(%.0f)", dict[nb.ID], nb.Dist)
			}
			fmt.Printf("   [%d distances]\n", space.CompDists())
		}
		fmt.Println()
	}
}
