// Geosearch: proximity search over 2-D geographic locations under the
// L2-norm — the paper's LA workload — comparing the disk-based M-index*
// and PM-tree against an in-memory MVPT on the same pivot set.
//
// The scenario: a points-of-interest service answering "everything
// within radius r of here" (MRQ) and "the 10 closest POIs" (MkNNQ),
// with per-index distance computations and page accesses reported.
package main

import (
	"fmt"
	"log"

	"metricindex"
)

func main() {
	const nPOIs = 5000
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, nPOIs, 2, 23)
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.Dataset
	space := ds.Space()
	fmt.Printf("indexed %d points of interest over a 10000x10000 city grid\n\n", ds.Count())

	pivots, err := metricindex.SelectPivots(ds, 5, 9)
	if err != nil {
		log.Fatal(err)
	}

	mindexStar, err := metricindex.NewMIndexStar(ds, pivots, metricindex.MIndexOptions{
		DiskOptions: metricindex.DiskOptions{CacheBytes: metricindex.DefaultCacheBytes},
		MaxDistance: gen.MaxDistance,
	})
	if err != nil {
		log.Fatal(err)
	}
	pmTree, err := metricindex.NewPMTree(ds, pivots, metricindex.DiskOptions{
		CacheBytes: metricindex.DefaultCacheBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	mvpt, err := metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// "Within 250 map units" and "10 nearest" around each query point.
	for qi, q := range gen.Queries {
		pos := q.(metricindex.Vector)
		fmt.Printf("query #%d at (%.0f, %.0f)\n", qi+1, pos[0], pos[1])
		for _, idx := range []metricindex.Index{mindexStar, pmTree, mvpt} {
			space.ResetCompDists()
			idx.ResetStats()
			within, err := idx.RangeSearch(q, 250)
			if err != nil {
				log.Fatal(err)
			}
			rangeDists := space.CompDists()
			rangePA := idx.PageAccesses()

			space.ResetCompDists()
			idx.ResetStats()
			nns, err := idx.KNNSearch(q, 10)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s  r=250: %3d POIs (%4d dists, %3d PA)   10-NN farthest: %6.1f (%4d dists, %3d PA)\n",
				idx.Name(), len(within), rangeDists, rangePA,
				nns[len(nns)-1].Dist, space.CompDists(), idx.PageAccesses())
		}
		fmt.Println()
	}

	// Sanity: all three agree with the exhaustive answer.
	q := gen.Queries[0]
	want := metricindex.BruteForceRange(ds, q, 250)
	got, _ := mindexStar.RangeSearch(q, 250)
	fmt.Printf("verification vs linear scan: %d results from both: %v\n",
		len(want), len(want) == len(got))
}
