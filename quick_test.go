package metricindex_test

// Randomized operation-sequence property tests (testing/quick): arbitrary
// interleavings of inserts, deletes, range queries, and kNN queries must
// keep every index in exact agreement with brute force.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metricindex"
)

// opSequence runs a random workload against one index and brute force.
func opSequence(t *testing.T, mk func(ds *metricindex.Dataset, pivots []int, maxD float64) (metricindex.Index, error)) func(seed int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(60)
		objs := make([]metricindex.Object, n)
		for i := range objs {
			v := make(metricindex.IntVector, 4)
			for d := range v {
				v[d] = int32(rng.Intn(60))
			}
			objs[i] = v
		}
		ds := metricindex.NewDataset(metricindex.NewSpace(metricindex.IntLInf{}), objs)
		pivots, err := metricindex.SelectPivots(ds, 3, seed)
		if err != nil {
			t.Logf("seed %d: pivots: %v", seed, err)
			return false
		}
		idx, err := mk(ds, pivots, 70)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}

		check := func() bool {
			q := make(metricindex.IntVector, 4)
			for d := range q {
				q[d] = int32(rng.Intn(60))
			}
			r := float64(rng.Intn(30))
			want := metricindex.BruteForceRange(ds, q, r)
			got, err := idx.RangeSearch(q, r)
			if err != nil || len(got) != len(want) {
				t.Logf("seed %d: MRQ got %d want %d (err %v)", seed, len(got), len(want), err)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d: MRQ id mismatch at %d", seed, i)
					return false
				}
			}
			k := 1 + rng.Intn(12)
			wantK := metricindex.BruteForceKNN(ds, q, k)
			gotK, err := idx.KNNSearch(q, k)
			if err != nil || len(gotK) != len(wantK) {
				t.Logf("seed %d: kNN got %d want %d (err %v)", seed, len(gotK), len(wantK), err)
				return false
			}
			for i := range gotK {
				if gotK[i].Dist != wantK[i].Dist {
					t.Logf("seed %d: kNN dist mismatch at %d", seed, i)
					return false
				}
			}
			return true
		}

		for step := 0; step < 20; step++ {
			switch rng.Intn(3) {
			case 0: // delete a random live object
				live := ds.LiveIDs()
				if len(live) <= 5 {
					continue
				}
				id := live[rng.Intn(len(live))]
				if err := idx.Delete(id); err != nil {
					t.Logf("seed %d: delete %d: %v", seed, id, err)
					return false
				}
				if err := ds.Delete(id); err != nil {
					t.Logf("seed %d: ds delete: %v", seed, err)
					return false
				}
			case 1: // insert a fresh object
				v := make(metricindex.IntVector, 4)
				for d := range v {
					v[d] = int32(rng.Intn(60))
				}
				id := ds.Insert(v)
				if err := idx.Insert(id); err != nil {
					t.Logf("seed %d: insert %d: %v", seed, id, err)
					return false
				}
			case 2: // query
				if !check() {
					return false
				}
			}
		}
		return check()
	}
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 12} }

func TestQuickLAESA(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, _ float64) (metricindex.Index, error) {
		return metricindex.NewLAESA(ds, pv)
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMVPT(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, _ float64) (metricindex.Index, error) {
		return metricindex.NewMVPT(ds, pv, metricindex.TreeOptions{LeafCapacity: 6})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBKT(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, _ []int, maxD float64) (metricindex.Index, error) {
		return metricindex.NewBKT(ds, metricindex.TreeOptions{MaxDistance: maxD, LeafCapacity: 6, Seed: 1})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFQT(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, maxD float64) (metricindex.Index, error) {
		return metricindex.NewFQT(ds, pv, metricindex.TreeOptions{MaxDistance: maxD, LeafCapacity: 6})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPMTree(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, _ float64) (metricindex.Index, error) {
		return metricindex.NewPMTree(ds, pv, metricindex.DiskOptions{PageSize: 1024})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMIndexStar(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, maxD float64) (metricindex.Index, error) {
		return metricindex.NewMIndexStar(ds, pv, metricindex.MIndexOptions{
			DiskOptions: metricindex.DiskOptions{PageSize: 512},
			MaxDistance: maxD, MaxNum: 24,
		})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSPBTree(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, maxD float64) (metricindex.Index, error) {
		return metricindex.NewSPBTree(ds, pv, metricindex.SPBOptions{
			DiskOptions: metricindex.DiskOptions{PageSize: 512},
			MaxDistance: maxD,
		})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDiskEPTStar(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, _ []int, _ float64) (metricindex.Index, error) {
		return metricindex.NewDiskEPTStar(ds,
			metricindex.EPTOptions{L: 3, Seed: 1},
			metricindex.DiskOptions{PageSize: 512})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOmniRTree(t *testing.T) {
	f := opSequence(t, func(ds *metricindex.Dataset, pv []int, maxD float64) (metricindex.Index, error) {
		return metricindex.NewOmniRTree(ds, pv, metricindex.OmniOptions{
			DiskOptions: metricindex.DiskOptions{PageSize: 512},
			MaxDistance: maxD,
		})
	})
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
