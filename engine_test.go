package metricindex_test

import (
	"context"
	"reflect"
	"testing"

	"metricindex"
)

// TestEngineBatchMatchesSequentialPublicAPI drives the public batch API
// end-to-end: same answers as the sequential calls, across a table, a
// tree, and a disk-based index.
func TestEngineBatchMatchesSequentialPublicAPI(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 1500, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	disk := metricindex.DiskOptions{CacheBytes: metricindex.DefaultCacheBytes}

	indexes := map[string]metricindex.Index{}
	if idx, err := metricindex.NewLAESA(ds, pivots); err == nil {
		indexes["LAESA"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{}); err == nil {
		indexes["MVPT"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := metricindex.NewSPBTree(ds, pivots, metricindex.SPBOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance}); err == nil {
		indexes["SPB-tree"] = idx
	} else {
		t.Fatal(err)
	}

	eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{Workers: 4})
	r := gen.MaxDistance / 8
	const k = 7
	for name, idx := range indexes {
		rres, err := eng.BatchRangeSearch(context.Background(), idx, gen.Queries, r)
		if err != nil {
			t.Fatalf("%s: BatchRangeSearch: %v", name, err)
		}
		kres, err := eng.BatchKNNSearch(context.Background(), idx, gen.Queries, k)
		if err != nil {
			t.Fatalf("%s: BatchKNNSearch: %v", name, err)
		}
		if kres.Stats.Throughput() <= 0 || kres.Stats.CompDists <= 0 {
			t.Fatalf("%s: batch stats not collected: %+v", name, kres.Stats)
		}
		for i, q := range gen.Queries {
			wantIDs, err := idx.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantIDs) != len(rres.IDs[i]) || (len(wantIDs) > 0 && !reflect.DeepEqual(wantIDs, rres.IDs[i])) {
				t.Fatalf("%s: query %d MRQ mismatch", name, i)
			}
			wantNNs, err := idx.KNNSearch(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantNNs, kres.Neighbors[i]) {
				t.Fatalf("%s: query %d MkNNQ mismatch", name, i)
			}
		}
	}
}
