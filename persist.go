package metricindex

import (
	"metricindex/internal/epoch"
	"metricindex/internal/persist"
)

// This file is the public durability surface: versioned snapshots of any
// snapshot-capable index and a write-ahead log for Live fronts. The
// on-disk formats are specified byte-by-byte in docs/PERSISTENCE.md;
// every image starts with a magic string, a format version and
// checksummed sections, and loaders reject corrupt or torn input with an
// error, never a panic.

// ErrUnsupportedSnapshot reports an index kind with no snapshot support
// (currently M-index and M-index*, whose cluster tree is rebuilt from the
// dataset instead). Test with errors.Is.
var ErrUnsupportedSnapshot = persist.ErrUnsupported

// WAL is the write-ahead log of a Live index: attach it with
// Live.SetJournal and every committed Add/Remove/Insert/Delete/Swap is
// appended (with its commit epoch) before the write is acknowledged,
// subject to the SyncMode. See OpenWAL.
type WAL = persist.WAL

// WALRecord is one decoded log entry, as returned by OpenWAL for replay.
type WALRecord = persist.Record

// WALStats snapshots a log's counters.
type WALStats = persist.WALStats

// SyncMode selects the WAL fsync policy: SyncAlways (fsync per append),
// SyncInterval (background fsync every 200ms), SyncOff (OS-paced).
type SyncMode = persist.SyncMode

// The three fsync policies, as the mserve -fsync flag spells them.
const (
	SyncAlways   = persist.SyncAlways
	SyncInterval = persist.SyncInterval
	SyncOff      = persist.SyncOff
)

// ParseSyncMode parses "always", "interval" or "off".
func ParseSyncMode(s string) (SyncMode, error) { return persist.ParseSyncMode(s) }

// Restored is a decoded snapshot: the dataset and index it held, the
// index kind and metric name, and the epoch the image captured.
type Restored struct {
	Kind    string
	Metric  string
	Epoch   uint64
	Dataset *Dataset
	Index   Index
}

func toRestored(s *persist.Snapshot) *Restored {
	idx := s.Index
	if s.Pager != nil {
		// Re-wrap disk-resident kinds so cache control keeps working.
		idx = &DiskIndex{Index: s.Index, pager: s.Pager}
	}
	return &Restored{Kind: s.Kind, Metric: s.Metric, Epoch: s.Epoch,
		Dataset: s.Dataset, Index: idx}
}

// Save writes a snapshot of the index and the dataset it was built over,
// atomically (temp file + rename). epoch tags the image; pass 0 for
// standalone indexes, or the Live epoch when saving a consistent cut of
// an updatable front (SaveLive does this for you). Returns
// ErrUnsupportedSnapshot for kinds without snapshot support.
func Save(path string, ds *Dataset, idx Index, epoch uint64) error {
	data, err := persist.Encode(ds, idx, epoch)
	if err != nil {
		return err
	}
	return persist.SaveFile(path, data)
}

// Open loads a snapshot file: the dataset is restored first (object
// identifiers preserved, deleted slots included), then the index payload
// is decoded over it by the loader registered for its kind — no rebuild,
// no distance computations. Corrupt input fails with an error; datasets
// using a custom metric need persist registration via the metric's name
// (all built-in metrics are known).
func Open(path string) (*Restored, error) {
	snap, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return toRestored(snap), nil
}

// SaveLive snapshots a Live front: dataset, index and epoch are captured
// inside one read section, so the image is a committed prefix of the
// write history even while updates race the save.
func SaveLive(path string, l *Live) error { return persist.SaveLive(path, l) }

// OpenLive restores a Live front from a snapshot, positioned at the
// epoch the image captured. Follow with OpenWAL + ReplayWAL to roll
// forward writes committed after the snapshot, then attach the WAL with
// SetJournal so new writes keep being logged:
//
//	live, _, err := metricindex.OpenLive("snapshot.mxs")
//	wal, recs, torn, err := metricindex.OpenWAL("wal.mxl", metricindex.SyncInterval)
//	n, err := metricindex.ReplayWAL(live, recs)
//	live.SetJournal(wal)
func OpenLive(path string) (*Live, *Restored, error) {
	l, snap, err := persist.OpenLive(path)
	if err != nil {
		return nil, nil, err
	}
	return l, toRestored(snap), nil
}

// OpenWAL opens (creating if absent) a write-ahead log and returns the
// valid records for replay. A torn tail — a crash mid-append — is
// detected by framing and checksum, reported via truncated, and cut off
// so the file ends at the last valid record.
func OpenWAL(path string, mode SyncMode) (w *WAL, recs []WALRecord, truncated bool, err error) {
	return persist.OpenWAL(path, mode)
}

// ReplayWAL applies the records committed after the Live's current epoch,
// restoring each write at its exact commit epoch. Records at or before
// the current epoch (already inside the snapshot) are skipped. Returns
// the number applied.
func ReplayWAL(l *Live, recs []WALRecord) (int, error) { return persist.Replay(l, recs) }

// SnapshotKinds lists the index kinds with snapshot support, sorted.
func SnapshotKinds() []string { return persist.Kinds() }

// RegisterSnapshotMetric teaches snapshot loading a custom metric by its
// Name(); built-in metrics (L1, L2, Linf, IntLinf, edit) are pre-registered.
func RegisterSnapshotMetric(m Metric) { persist.RegisterMetric(m) }

// Journal receives every committed Live write (Live.SetJournal); WAL is
// the file-backed implementation.
type Journal = epoch.Journal

// JournalOp tags a journaled write. The values are part of the on-disk
// WAL format (docs/PERSISTENCE.md) and must not be renumbered.
type JournalOp = epoch.Op

// The journaled operations.
const (
	OpAdd    = epoch.OpAdd
	OpRemove = epoch.OpRemove
	OpInsert = epoch.OpInsert
	OpDelete = epoch.OpDelete
	OpSwap   = epoch.OpSwap
)
