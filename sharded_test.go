package metricindex_test

// Shard-vs-unsharded equivalence over the public API: a Sharded index
// over table, tree, and disk sub-indexes must return answers identical to
// the same index built unsharded, for MRQ and MkNNQ, both per-query and
// through the concurrent batch engine.

import (
	"context"
	"testing"

	"metricindex"
)

// shardableBuilders returns one builder per storage family (table, tree,
// disk), each usable both per shard and for the unsharded reference.
func shardableBuilders(gen *metricindex.BenchmarkDataset) map[string]metricindex.ShardBuilder {
	return map[string]metricindex.ShardBuilder{
		"LAESA": func(sub *metricindex.Dataset) (metricindex.Index, error) {
			pivots, err := metricindex.SelectPivots(sub, 4, 3)
			if err != nil {
				return nil, err
			}
			return metricindex.NewLAESA(sub, pivots)
		},
		"MVPT": func(sub *metricindex.Dataset) (metricindex.Index, error) {
			pivots, err := metricindex.SelectPivots(sub, 4, 3)
			if err != nil {
				return nil, err
			}
			return metricindex.NewMVPT(sub, pivots, metricindex.TreeOptions{})
		},
		"SPB-tree": func(sub *metricindex.Dataset) (metricindex.Index, error) {
			pivots, err := metricindex.SelectPivots(sub, 4, 3)
			if err != nil {
				return nil, err
			}
			return metricindex.NewSPBTree(sub, pivots, metricindex.SPBOptions{MaxDistance: gen.MaxDistance})
		},
	}
}

func sameNeighbors(a, b []metricindex.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func TestShardedMatchesUnshardedPublicAPI(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 400, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	partitioners := map[string]metricindex.ShardPartitioner{
		"round-robin": metricindex.RoundRobinPartitioner(),
		"hash":        metricindex.HashPartitioner(),
	}
	for name, builder := range shardableBuilders(gen) {
		flat, err := builder(ds)
		if err != nil {
			t.Fatalf("%s unsharded: %v", name, err)
		}
		for pname, part := range partitioners {
			t.Run(name+"/"+pname, func(t *testing.T) {
				sharded, err := metricindex.NewSharded(builder, ds, metricindex.ShardOptions{
					Shards: 4, Partitioner: part,
				})
				if err != nil {
					t.Fatalf("NewSharded: %v", err)
				}
				for _, q := range gen.Queries {
					for _, sel := range []float64{0.02, 0.2, 0.6} {
						r := metricindex.CalibrateRadius(gen, sel)
						want, err := flat.RangeSearch(q, r)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sharded.RangeSearch(q, r)
						if err != nil {
							t.Fatal(err)
						}
						if !sameIDs(got, want) {
							t.Fatalf("MRQ(r=%.3g): sharded %v, unsharded %v", r, got, want)
						}
					}
					for _, k := range []int{0, 1, 10, 50} {
						want, err := flat.KNNSearch(q, k)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sharded.KNNSearch(q, k)
						if err != nil {
							t.Fatal(err)
						}
						if !sameNeighbors(got, want) {
							t.Fatalf("MkNNQ(k=%d): sharded %v, unsharded %v", k, got, want)
						}
					}
				}
			})
		}
	}
}

// TestShardedComposesWithBatchEngine runs whole workloads through
// NewEngine over a Sharded index (batch-over-shards) and checks the
// results are identical to sequential queries on the unsharded index.
func TestShardedComposesWithBatchEngine(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 300, 6, 27)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{Workers: 4})
	r := metricindex.CalibrateRadius(gen, 0.1)
	for name, builder := range shardableBuilders(gen) {
		t.Run(name, func(t *testing.T) {
			flat, err := builder(ds)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := metricindex.NewSharded(builder, ds, metricindex.ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			rr, err := eng.BatchRangeSearch(context.Background(), sharded, gen.Queries, r)
			if err != nil {
				t.Fatal(err)
			}
			kr, err := eng.BatchKNNSearch(context.Background(), sharded, gen.Queries, 12)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range gen.Queries {
				wantIDs, err := flat.RangeSearch(q, r)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDs(rr.IDs[i], wantIDs) {
					t.Fatalf("query %d: batch MRQ %v, unsharded %v", i, rr.IDs[i], wantIDs)
				}
				wantNNs, err := flat.KNNSearch(q, 12)
				if err != nil {
					t.Fatal(err)
				}
				if !sameNeighbors(kr.Neighbors[i], wantNNs) {
					t.Fatalf("query %d: batch MkNNQ %v, unsharded %v", i, kr.Neighbors[i], wantNNs)
				}
			}
		})
	}
}
