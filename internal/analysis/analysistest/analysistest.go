// Package analysistest runs an analyzer over a testdata package and
// checks its findings against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// Testdata layout follows the x/tools convention: each analyzer keeps
// Go packages under testdata/src/<name>/, and every expected finding is
// annotated on its line with one or more quoted regular expressions:
//
//	bad()        // want `dropped error`
//	also(bad())  // want "first" "second"
//
// Lines without a want comment must produce no finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"metricindex/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the package rooted at dir (relative to the test's working
// directory), applies the analyzer, and reports any divergence between
// actual findings and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	abs := filepath.Join(cwd, dir)
	pkg, err := loader.LoadDir(abs, "testdata/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type loc struct {
		file string
		line int
	}
	wants := make(map[loc][]*regexp.Regexp)
	for _, f := range pkg.Files {
		collectWants(t, pkg.Fset, f, func(file string, line int, re *regexp.Regexp) {
			k := loc{file, line}
			wants[k] = append(wants[k], re)
		})
	}

	for _, d := range diags {
		k := loc{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected finding: %s", position(d.Pos), d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched %q", k.file, k.line, re.String())
		}
	}
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, emit func(file string, line int, re *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			idx := strings.Index(text, "want ")
			if idx < 0 {
				continue
			}
			rest := text[idx+len("want "):]
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Errorf("%s: malformed want comment: %s", position(fset.Position(c.Pos())), c.Text)
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s: bad want regexp %q: %v", position(pos), pat, err)
					continue
				}
				emit(pos.Filename, pos.Line, re)
			}
		}
	}
}
