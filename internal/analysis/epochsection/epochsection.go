// Package epochsection checks the epoch.Live locking discipline: in a
// Live-like wrapper (a struct carrying a mutex, an index field, an
// epoch counter and optionally the owned dataset), the guarded fields
// may only be touched inside a lock section, and the epoch a caller
// hands out must be the one read inside that same section — the bug
// class where an answer is paired with an epoch captured before or
// after its read section.
package epochsection

import (
	"go/ast"
	"go/types"

	"metricindex/internal/analysis"
)

// Analyzer is the epochsection pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochsection",
	Doc: "guarded Live fields (index, dataset, epoch) must only be used " +
		"inside the wrapper's own lock sections; Epoch() must not be " +
		"called by a function that manages a section itself",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			lv := liveShape(pass, fn)
			if lv == nil {
				continue
			}
			if pass.HasAnnotation(fn, "locked") {
				continue // caller-holds-lock helper, asserted by annotation
			}
			s := &scanner{pass: pass, lv: lv, locksItself: acquiresLock(pass, lv, fn.Body)}
			s.stmts(fn.Body.List, false)
		}
	}
	return nil
}

// live describes one Live-like receiver: the receiver variable, its
// mutex field, and the guarded fields.
type live struct {
	recv    *types.Var
	mutex   *types.Var
	guarded map[*types.Var]bool
}

// liveShape decides whether fn is a method of a Live-like struct: one
// with a sync mutex, a search-index interface field (RangeSearch +
// KNNSearch) and an unsigned epoch counter. The dataset field (ds
// *Dataset) is guarded too when present. Anything else — plain caches,
// WALs, servers — is out of scope.
func liveShape(pass *analysis.Pass, fn *ast.FuncDecl) *live {
	field := fn.Recv.List[0]
	if len(field.Names) == 0 {
		return nil
	}
	recv, _ := pass.TypesInfo.Defs[field.Names[0]].(*types.Var)
	if recv == nil {
		return nil
	}
	st, ok := structOf(recv.Type())
	if !ok {
		return nil
	}
	lv := &live{recv: recv, guarded: make(map[*types.Var]bool)}
	hasEpoch, hasIndex := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case isSyncMutex(f.Type()):
			lv.mutex = f
		case isIndexInterface(f.Type()):
			lv.guarded[f] = true
			hasIndex = true
		case f.Name() == "epoch" && isUnsignedInt(f.Type()):
			lv.guarded[f] = true
			hasEpoch = true
		case f.Name() == "ds" && isDatasetPtr(f.Type()):
			lv.guarded[f] = true
		}
	}
	if lv.mutex == nil || !hasEpoch || !hasIndex {
		return nil
	}
	return lv
}

func structOf(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func isSyncMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

func isIndexInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasRange, hasKNN := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "RangeSearch":
			hasRange = true
		case "KNNSearch":
			hasKNN = true
		}
	}
	return hasRange && hasKNN
}

func isUnsignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func isDatasetPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Dataset"
}

// acquiresLock reports whether body contains any Lock/RLock on the
// receiver's mutex — i.e. the function manages its own section.
func acquiresLock(pass *analysis.Pass, lv *live, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if kind, isRecv := lockCallKind(pass, lv, call); isRecv && (kind == "Lock" || kind == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockCallKind matches recv.mu.Lock / RLock / Unlock / RUnlock calls.
func lockCallKind(pass *analysis.Pass, lv *live, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != lv.recv {
		return "", false
	}
	if s := pass.TypesInfo.Selections[inner]; s == nil || s.Obj() != lv.mutex {
		return "", false
	}
	return sel.Sel.Name, true
}

// scanner walks a method body tracking whether the receiver's lock is
// held on the linear path. Branch bodies are scanned with a copy of the
// state: a lock state change confined to one arm (early-unlock-return,
// Swap's mid-function section break) does not leak past the branch.
type scanner struct {
	pass        *analysis.Pass
	lv          *live
	locksItself bool
}

func (s *scanner) stmts(list []ast.Stmt, held bool) bool {
	for _, stmt := range list {
		held = s.stmt(stmt, held)
	}
	return held
}

func (s *scanner) stmt(stmt ast.Stmt, held bool) bool {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if kind, isLock := lockCallKind(s.pass, s.lv, call); isLock {
				switch kind {
				case "Lock", "RLock":
					return true
				case "Unlock", "RUnlock":
					return false
				}
			}
		}
		s.check(st, held)
	case *ast.DeferStmt:
		if kind, isLock := lockCallKind(s.pass, s.lv, st.Call); isLock {
			_ = kind // deferred unlock: section reaches the function end
			return held
		}
		s.check(st, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.check(st.Cond, held)
		s.stmts(st.Body.List, held)
		if st.Else != nil {
			s.stmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.check(st.Cond, held)
		}
		body := st.Body.List
		if st.Post != nil {
			body = append(body[:len(body):len(body)], st.Post)
		}
		s.stmts(body, held)
	case *ast.RangeStmt:
		s.check(st.X, held)
		s.stmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.check(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.check(e, held)
				}
				s.stmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.check(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.stmt(cc.Comm, held)
				}
				s.stmts(cc.Body, held)
			}
		}
	case *ast.BlockStmt:
		held = s.stmts(st.List, held)
	case *ast.LabeledStmt:
		held = s.stmt(st.Stmt, held)
	default:
		s.check(stmt, held)
	}
	return held
}

// check inspects the expressions of one non-compound node for guarded
// field uses and Epoch() calls.
func (s *scanner) check(n ast.Node, held bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Epoch" {
				if id, ok := sel.X.(*ast.Ident); ok && s.pass.TypesInfo.Uses[id] == s.lv.recv {
					switch {
					case held:
						s.pass.Reportf(e.Pos(), "%s.Epoch() inside a lock section opens a nested section; read the epoch field directly", id.Name)
					case s.locksItself:
						s.pass.Reportf(e.Pos(), "epoch captured outside the lock section: %s.Epoch() in a function that manages its own section; return the epoch field read inside the section", id.Name)
					}
				}
			}
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			if !ok || s.pass.TypesInfo.Uses[id] != s.lv.recv {
				return true
			}
			selInfo := s.pass.TypesInfo.Selections[e]
			if selInfo == nil {
				return true
			}
			if f, ok := selInfo.Obj().(*types.Var); ok && s.lv.guarded[f] && !held {
				s.pass.Reportf(e.Pos(), "guarded field %s.%s used outside the %s lock section", id.Name, f.Name(), s.lv.mutex.Name())
			}
		}
		return true
	})
}
