// Package live models the epoch.Live wrapper shape the analyzer
// recognizes: mutex + index interface + unsigned epoch counter.
package live

import "sync"

type Dataset struct {
	N int
}

type Index interface {
	RangeSearch(q []float64, r float64) []int
	KNNSearch(q []float64, k int) []int
}

type Live struct {
	mu    sync.RWMutex
	ds    *Dataset
	idx   Index
	epoch uint64
}

// Epoch opens its own read section; recognized as lock-managed.
func (l *Live) Epoch() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epoch
}

// good: guarded fields only inside the section.
func (l *Live) good(q []float64, r float64) ([]int, uint64) {
	l.mu.RLock()
	ids := l.idx.RangeSearch(q, r)
	e := l.epoch
	l.mu.RUnlock()
	return ids, e
}

// goodDefer: deferred unlock keeps the section open to the end.
func (l *Live) goodDefer(q []float64, k int) ([]int, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.KNNSearch(q, k), l.epoch
}

// badUnlocked touches guarded fields with no section at all.
func (l *Live) badUnlocked(q []float64, r float64) []int {
	return l.idx.RangeSearch(q, r) // want `guarded field l\.idx used outside the mu lock section`
}

// badEarlyUnlock closes the section and then reads the epoch.
func (l *Live) badEarlyUnlock(q []float64, r float64) ([]int, uint64) {
	l.mu.RLock()
	ids := l.idx.RangeSearch(q, r)
	l.mu.RUnlock()
	return ids, l.epoch // want `guarded field l\.epoch used outside the mu lock section`
}

// badCapturedEpoch pairs an answer with an epoch captured outside the
// section it manages.
func (l *Live) badCapturedEpoch(q []float64, k int) ([]int, uint64) {
	e := l.Epoch() // want `epoch captured outside the lock section`
	l.mu.RLock()
	ids := l.idx.KNNSearch(q, k)
	l.mu.RUnlock()
	return ids, e
}

// badNestedEpoch calls Epoch() while already holding the lock — a
// nested section (self-deadlock under mu.Lock).
func (l *Live) badNestedEpoch(q []float64, k int) ([]int, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.KNNSearch(q, k), l.Epoch() // want `nested section`
}

// bumpLocked is a caller-holds-lock helper; the annotation asserts it.
//
//metriclint:locked
func (l *Live) bumpLocked() {
	l.epoch++
	l.ds.N++
}

// swapLike mirrors epoch.Swap: a branch-local unlock must not leak its
// lock state past the branch.
func (l *Live) swapLike(idx Index, fail bool) uint64 {
	l.mu.Lock()
	if fail {
		l.mu.Unlock()
		return 0
	}
	l.idx = idx
	l.epoch++
	e := l.epoch
	l.mu.Unlock()
	return e
}

// delegates reads no guarded state itself; calling Epoch() without
// managing a section is the sanctioned pattern.
func (l *Live) delegates() uint64 {
	return l.Epoch()
}
