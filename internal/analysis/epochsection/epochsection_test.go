package epochsection

import (
	"testing"

	"metricindex/internal/analysis/analysistest"
)

func TestEpochSection(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/live")
}
