package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Comment directives (documented in docs/STATIC_ANALYSIS.md):
//
//	//metriclint:ignore <analyzer> <reason>
//	    Suppresses <analyzer> findings on the same line as the comment
//	    and on the line directly below it (for standalone directives
//	    placed above the offending statement). The reason is mandatory;
//	    a directive without one is not recognized.
//
//	//metriclint:noalloc
//	//metriclint:locked
//	    Function annotations, written in the function's doc comment.
//	    noalloc opts the function into the noalloc analyzer; locked
//	    asserts the caller holds the receiver's lock (epochsection).

const directivePrefix = "//metriclint:"

// directives is the per-package index of ignore directives: for each
// file, the set of lines an analyzer is suppressed on.
type directives struct {
	// suppressed maps filename -> line -> analyzer names suppressed
	// there.
	suppressed map[string]map[int]map[string]bool
}

func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{suppressed: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // analyzer name and reason are both required
				}
				analyzer := fields[0]
				pos := fset.Position(c.Pos())
				lines := d.suppressed[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.suppressed[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					lines[line][analyzer] = true
				}
			}
		}
	}
	return d
}

func (d *directives) ignored(analyzer string, pos token.Position) bool {
	return d.suppressed[pos.Filename][pos.Line][analyzer]
}

// hasAnnotation reports whether fn's doc comment contains the bare
// directive //metriclint:<name>.
func hasAnnotation(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+name {
			return true
		}
	}
	return false
}
