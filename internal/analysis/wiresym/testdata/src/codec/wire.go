// Package codec models the persist wire layer: a Writer/Reader pair
// (matched by type name) and codec halves for wiresym to pair up.
package codec

// Writer is a stand-in for persist.Writer.
type Writer struct{ buf []byte }

func (w *Writer) U8(v uint8)    {}
func (w *Writer) Bool(v bool)   {}
func (w *Writer) U16(v uint16)  {}
func (w *Writer) U32(v uint32)  {}
func (w *Writer) U64(v uint64)  {}
func (w *Writer) I64(v int64)   {}
func (w *Writer) F64(v float64) {}
func (w *Writer) Blob(b []byte) {}
func (w *Writer) Ints(v []int)  {}
func (w *Writer) Count(n int)   {}
func (w *Writer) Bytes() []byte { return w.buf }

// Reader is a stand-in for persist.Reader.
type Reader struct{ err error }

func (r *Reader) U8() uint8      { return 0 }
func (r *Reader) Bool() bool     { return false }
func (r *Reader) U16() uint16    { return 0 }
func (r *Reader) U32() uint32    { return 0 }
func (r *Reader) U64() uint64    { return 0 }
func (r *Reader) I64() int64     { return 0 }
func (r *Reader) F64() float64   { return 0 }
func (r *Reader) Blob() []byte   { return nil }
func (r *Reader) Ints() []int    { return nil }
func (r *Reader) Count() int     { return 0 }
func (r *Reader) Err() error     { return r.err }
func (r *Reader) Remaining() int { return 0 }
