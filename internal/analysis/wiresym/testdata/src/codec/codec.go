package codec

import "errors"

// ---- good pairs: no findings ----

type header struct {
	version uint16
	flags   uint8
	rows    int
}

func encodeHeader(w *Writer, h header) {
	w.U16(h.version)
	w.U8(h.flags)
	w.Count(h.rows)
}

func decodeHeader(r *Reader) (header, error) {
	var h header
	h.version = r.U16()
	h.flags = r.U8()
	h.rows = int(r.U32()) // Count normalizes to U32
	return h, r.Err()
}

// Bool/U8 normalization across the pair.
func encodeFlag(w *Writer, live bool) { w.Bool(live) }

func decodeFlag(r *Reader) bool { return r.U8() == 1 }

// Counted loop on both sides.
func encodeList(w *Writer, vals []float64) {
	w.Count(len(vals))
	for _, v := range vals {
		w.F64(v)
	}
}

func decodeList(r *Reader) []float64 {
	n := int(r.U32())
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = r.F64()
	}
	return vals
}

// Tag-hoist: every encoder arm writes the tag the decoder reads once
// before switching.
func encodeItem(w *Writer, v any) {
	switch x := v.(type) {
	case nil:
		w.U8(0)
	case int64:
		w.U8(1)
		w.I64(x)
	default:
		w.U8(2)
		w.Blob(nil)
	}
}

func decodeItem(r *Reader) (any, error) {
	switch tag := r.U8(); tag {
	case 0:
		return nil, r.Err()
	case 1:
		return r.I64(), r.Err()
	case 2:
		return r.Blob(), r.Err()
	default:
		return nil, errors.New("codec: bad item tag")
	}
}

// If-continue restructure on the encoder vs flat guard on the decoder.
func encodeSparse(w *Writer, vals []float64) {
	w.Count(len(vals))
	for _, v := range vals {
		if v == 0 {
			w.U8(0)
			continue
		}
		w.U8(1)
		w.F64(v)
	}
}

func decodeSparse(r *Reader) []float64 {
	vals := make([]float64, int(r.U32()))
	for i := range vals {
		if r.U8() == 1 {
			vals[i] = r.F64()
		}
	}
	return vals
}

// Delegating calls pair by normalized callee name.
type Tree struct{ h header }

func (t *Tree) EncodeSnapshot(w *Writer) {
	w.U64(uint64(t.h.rows))
	encodeHeader(w, t.h)
}

func loadTree(r *Reader) (*Tree, error) {
	_ = r.U64()
	h, err := decodeHeader(r)
	if err != nil {
		return nil, err
	}
	return &Tree{h: h}, r.Err()
}

// Multi-stream assemblers are skipped, and their counterparts stay
// silent under the same key.
func encodeFrame(hw, pw *Writer, h header) {
	hw.U32(0)
	encodeHeader(pw, h)
}

func decodeFrame(r *Reader) (header, error) {
	_ = r.U32()
	return decodeHeader(r)
}

// ---- drift: findings ----

type node struct {
	id   uint32
	dist float64
}

func encodeNode(w *Writer, n node) {
	w.U32(n.id) // want `wire drift between encodeNode and decodeNode: encoder writes U32 .* where decoder reads F64`
	w.F64(n.dist)
}

func decodeNode(r *Reader) node {
	var n node
	n.dist = r.F64() // swapped field order relative to the encoder
	n.id = r.U32()
	return n
}

func encodeMeta(w *Writer, seed int64, rows int) {
	w.I64(seed)
	w.Count(rows) // want `wire drift between encodeMeta and decodeMeta: encoder writes U32 .* with no matching read`
}

func decodeMeta(r *Reader) int64 {
	seed := r.I64()
	return seed
}

func encodeOrphan(w *Writer, v uint64) { // want `encoder encodeOrphan has no decoder counterpart`
	w.U64(v)
}

func decodeWidow(r *Reader) uint64 { // want `decoder decodeWidow has no encoder counterpart`
	return r.U64()
}

// Loop asymmetry: the decoder reads a flat value where the encoder
// repeats a group.
func encodeRuns(w *Writer, runs [][]int) {
	w.Count(len(runs))
	for _, run := range runs { // want `wire drift between encodeRuns and decodeRuns: encoder writes a repeated group .* where decoder reads Ints`
		w.Ints(run)
	}
}

func decodeRuns(r *Reader) [][]int {
	n := int(r.U32())
	_ = n
	return [][]int{r.Ints()}
}
