// Package frozen exercises the frozen on-disk constant check: the
// names are matched wherever they are declared, and their values may
// never change (docs/PERSISTENCE.md).
package frozen

const (
	OpAdd    = 1
	OpRemove = 7 // want `frozen on-disk constant OpRemove renumbered to 7 \(must stay 2`
	OpInsert = 3
	OpDelete = 4
	OpSwap   = 5
)

const (
	tagVector    = 1
	tagIntVector = 2
	tagWord      = 3
)

const (
	walMagic      = "MXWAL2" // want `frozen on-disk constant walMagic changed to "MXWAL2" \(must stay "MXWAL1"`
	snapshotMagic = "MXSNAP"
	volumeMagic   = "MXVOL1"
)

// Unrelated constants are never matched.
const OpAddendum = 99
