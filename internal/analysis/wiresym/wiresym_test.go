package wiresym

import (
	"testing"

	"metricindex/internal/analysis/analysistest"
)

func TestWireSymmetry(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/codec")
}

func TestFrozenConstants(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/frozen")
}
