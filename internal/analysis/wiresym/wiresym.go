// Package wiresym verifies wire-codec symmetry: each persist encoder
// (Snapshot/state writers) must have a decoder counterpart whose
// Reader calls mirror the Writer calls in type and order. Today that
// drift is only caught at runtime by round-trip tests; this pass
// catches it at lint time, including in branches (node-tag switches)
// and repeated groups (per-row loops).
//
// It also freezes the on-disk constants: the WAL op numbers, the store
// object-codec tags and the container magics (docs/PERSISTENCE.md) may
// not be renumbered.
//
// # How functions are matched
//
// A function is a codec half when it drives exactly one Writer or
// exactly one Reader value (named types Writer/Reader). Halves pair by
// a normalized name key: encodeX/decodeX/loadX/readX/appendX/
// restoreX/saveX map to "x", EncodeSnapshot maps to its receiver type
// name (EncodeSnapshot on BKT pairs with loadBKT). Functions driving
// several streams at once (the snapshot container assembler, the WAL
// framer) are skipped along with their counterparts — their symmetry
// is covered by the section/record codecs they delegate to.
//
// # What is compared
//
// The wire-op sequence, structurally: Writer.U32 must meet Reader.U32
// (Count counts as U32, Bool as U8), a call forwarding the stream to
// encodeChild must meet a call to decodeChild, loops must meet loops.
// Error-guard branches and value-validation code are invisible. A
// branch whose arms each write the same leading tag matches a decoder
// that reads the tag once and switches on it.
package wiresym

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"metricindex/internal/analysis"
)

// Analyzer is the wiresym pass.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "persist encoders and decoders must mirror each other's wire-op " +
		"sequences; frozen on-disk constants must not be renumbered",
	Run: run,
}

// Frozen on-disk constants (docs/PERSISTENCE.md). Matched by constant
// name wherever it is declared.
var frozenInts = map[string]int64{
	"OpAdd":        1,
	"OpRemove":     2,
	"OpInsert":     3,
	"OpDelete":     4,
	"OpSwap":       5,
	"OpSetAttrs":   6,
	"tagVector":    1,
	"tagIntVector": 2,
	"tagWord":      3,
	"tagVector32":  4,
}

var frozenStrings = map[string]string{
	"walMagic":      "MXWAL1",
	"snapshotMagic": "MXSNAP",
	"volumeMagic":   "MXVOL1",
}

// opNames maps Writer/Reader method names to the normalized wire op
// they move. Methods absent here (Err, Remaining, ExpectEOF, Bytes,
// fail, take) move no framed value and are invisible.
var opNames = map[string]string{
	"U8": "U8", "Bool": "U8",
	"U16": "U16",
	"U32": "U32", "Count": "U32",
	"U64": "U64", "I64": "I64", "F64": "F64",
	"Blob": "Blob", "String": "String",
	"Object": "Object", "Objects": "Objects",
	"Ints": "Ints", "Int32s": "Int32s",
	"PageIDs": "PageIDs", "Floats": "Floats",
}

func run(pass *analysis.Pass) error {
	checkFrozen(pass)

	encoders := make(map[string]*codec)
	decoders := make(map[string]*codec)
	skipped := make(map[string]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isWireSelfMethod(pass, fn) {
				continue
			}
			x := &extractor{pass: pass, writers: map[types.Object]bool{}, readers: map[types.Object]bool{}}
			items := normalize(x.stmtList(fn.Body.List))
			if len(x.writers) == 0 && len(x.readers) == 0 {
				continue // not a codec half
			}
			key := pairKey(fn)
			if len(x.writers) > 0 && len(x.readers) > 0 ||
				len(x.writers) > 1 || len(x.readers) > 1 {
				skipped[key] = true // multi-stream assembler; delegates carry the invariant
				continue
			}
			c := &codec{fn: fn, items: items}
			if len(x.writers) == 1 {
				if encoders[key] == nil {
					encoders[key] = c
				}
			} else {
				if decoders[key] == nil {
					decoders[key] = c
				}
			}
		}
	}

	keys := make([]string, 0, len(encoders))
	for k := range encoders {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		enc := encoders[k]
		dec := decoders[k]
		if dec == nil {
			if !skipped[k] {
				pass.Reportf(enc.fn.Name.Pos(), "encoder %s has no decoder counterpart (pair key %q)", enc.fn.Name.Name, k)
			}
			continue
		}
		if msg, pos := diffSeq(pass, enc.items, dec.items); msg != "" {
			if !pos.IsValid() {
				pos = enc.fn.Name.Pos()
			}
			pass.Reportf(pos, "wire drift between %s and %s: %s", enc.fn.Name.Name, dec.fn.Name.Name, msg)
		}
	}
	decKeys := make([]string, 0, len(decoders))
	for k := range decoders {
		decKeys = append(decKeys, k)
	}
	sort.Strings(decKeys)
	for _, k := range decKeys {
		if encoders[k] == nil && !skipped[k] {
			dec := decoders[k]
			pass.Reportf(dec.fn.Name.Pos(), "decoder %s has no encoder counterpart (pair key %q)", dec.fn.Name.Name, k)
		}
	}
	return nil
}

// ---- frozen constants ----

func checkFrozen(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					cst, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					if want, frozen := frozenInts[name.Name]; frozen {
						if got, exact := constant.Int64Val(cst.Val()); !exact || got != want {
							pass.Reportf(name.Pos(), "frozen on-disk constant %s renumbered to %s (must stay %d, see docs/PERSISTENCE.md)",
								name.Name, cst.Val(), want)
						}
					}
					if want, frozen := frozenStrings[name.Name]; frozen && cst.Val().Kind() == constant.String {
						if got := constant.StringVal(cst.Val()); got != want {
							pass.Reportf(name.Pos(), "frozen on-disk constant %s changed to %q (must stay %q, see docs/PERSISTENCE.md)",
								name.Name, got, want)
						}
					}
				}
			}
		}
	}
}

// ---- codec collection ----

type codec struct {
	fn    *ast.FuncDecl
	items []item
}

type itemKind int

const (
	opItem itemKind = iota
	callItem
	loopItem
	branchItem
)

type item struct {
	kind  itemKind
	name  string // normalized op name or call pair key
	label string // as written in the source, for messages
	pos   token.Pos
	body  []item   // loopItem
	arms  [][]item // branchItem
}

// isWireSelfMethod reports whether fn is a method on Writer/Reader —
// the wire primitives themselves, whose internals are not codecs.
func isWireSelfMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	return wireKind(tv.Type) != 0
}

// wireKind classifies a type: 1 = Writer, 2 = Reader, 0 = neither.
// Matched by named-type name plus a U32 wire-op method, so testdata
// doubles count but io.Writer, bufio.Writer, csv.Writer and friends do
// not.
func wireKind(t types.Type) int {
	if t == nil {
		return 0
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	kind := 0
	switch n.Obj().Name() {
	case "Writer":
		kind = 1
	case "Reader":
		kind = 2
	default:
		return 0
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "U32" {
			return kind
		}
	}
	return 0
}

// pairKey derives the key under which a codec half seeks its
// counterpart.
func pairKey(fn *ast.FuncDecl) string {
	if fn.Name.Name == "EncodeSnapshot" && fn.Recv != nil {
		return strings.ToLower(recvTypeName(fn))
	}
	key := nameKey(fn.Name.Name)
	if key == "" && fn.Recv != nil {
		return strings.ToLower(recvTypeName(fn))
	}
	return key
}

func recvTypeName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// nameKey strips the direction prefix off a codec function name:
// encodeGroups and decodeGroups both become "groups", loadMemEPT
// becomes "ept".
func nameKey(name string) string {
	l := strings.ToLower(name)
	for _, p := range []string{"encode", "decode", "restore", "append", "write", "read", "load", "save"} {
		if rest, ok := strings.CutPrefix(l, p); ok && rest != "" {
			l = rest
			break
		}
	}
	return strings.TrimPrefix(l, "mem")
}

// ---- extraction ----

type extractor struct {
	pass    *analysis.Pass
	writers map[types.Object]bool
	readers map[types.Object]bool
	anon    int
}

func (x *extractor) stmtList(list []ast.Stmt) []item {
	var items []item
	for i := 0; i < len(list); i++ {
		s := list[i]
		// An if-body ending in return/continue/break splits the rest of
		// the block into the implicit else arm: the encoder idiom
		// `if o == nil { w.U8(0); continue }; w.U8(1); ...`.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body) && i+1 < len(list) {
			if ifs.Init != nil {
				items = append(items, x.stmt(ifs.Init)...)
			}
			items = append(items, x.exprItems(ifs.Cond)...)
			arms := [][]item{x.stmtList(ifs.Body.List), x.stmtList(list[i+1:])}
			return append(items, item{kind: branchItem, pos: ifs.Pos(), arms: arms})
		}
		items = append(items, x.stmt(s)...)
	}
	return items
}

func (x *extractor) stmt(s ast.Stmt) []item {
	var items []item
	switch st := s.(type) {
	case nil:
	case *ast.IfStmt:
		if st.Init != nil {
			items = append(items, x.stmt(st.Init)...)
		}
		items = append(items, x.exprItems(st.Cond)...)
		arms := [][]item{x.stmtList(st.Body.List)}
		if st.Else != nil {
			arms = append(arms, x.stmt(st.Else))
		}
		items = append(items, item{kind: branchItem, pos: st.Pos(), arms: arms})
	case *ast.SwitchStmt:
		if st.Init != nil {
			items = append(items, x.stmt(st.Init)...)
		}
		if st.Tag != nil {
			items = append(items, x.exprItems(st.Tag)...)
		}
		var arms [][]item
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				var arm []item
				for _, e := range cc.List {
					arm = append(arm, x.exprItems(e)...)
				}
				arm = append(arm, x.stmtList(cc.Body)...)
				arms = append(arms, arm)
			}
		}
		items = append(items, item{kind: branchItem, pos: st.Pos(), arms: arms})
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			items = append(items, x.stmt(st.Init)...)
		}
		items = append(items, x.stmt(st.Assign)...)
		var arms [][]item
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				arms = append(arms, x.stmtList(cc.Body))
			}
		}
		items = append(items, item{kind: branchItem, pos: st.Pos(), arms: arms})
	case *ast.SelectStmt:
		var arms [][]item
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				var arm []item
				if cc.Comm != nil {
					arm = append(arm, x.stmt(cc.Comm)...)
				}
				arm = append(arm, x.stmtList(cc.Body)...)
				arms = append(arms, arm)
			}
		}
		items = append(items, item{kind: branchItem, pos: st.Pos(), arms: arms})
	case *ast.ForStmt:
		if st.Init != nil {
			items = append(items, x.stmt(st.Init)...)
		}
		body := x.stmtList(st.Body.List)
		if st.Cond != nil {
			body = append(x.exprItems(st.Cond), body...)
		}
		if st.Post != nil {
			body = append(body, x.stmt(st.Post)...)
		}
		items = append(items, item{kind: loopItem, pos: st.Pos(), body: body})
	case *ast.RangeStmt:
		items = append(items, x.exprItems(st.X)...)
		items = append(items, item{kind: loopItem, pos: st.Pos(), body: x.stmtList(st.Body.List)})
	case *ast.BlockStmt:
		items = append(items, x.stmtList(st.List)...)
	case *ast.LabeledStmt:
		items = append(items, x.stmt(st.Stmt)...)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			items = append(items, x.exprItems(r)...)
		}
	case *ast.ExprStmt:
		items = append(items, x.exprItems(st.X)...)
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			items = append(items, x.exprItems(l)...)
		}
		for _, r := range st.Rhs {
			items = append(items, x.exprItems(r)...)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						items = append(items, x.exprItems(v)...)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		items = append(items, x.exprItems(st.X)...)
	case *ast.SendStmt:
		items = append(items, x.exprItems(st.Chan)...)
		items = append(items, x.exprItems(st.Value)...)
	case *ast.DeferStmt:
		items = append(items, x.exprItems(st.Call)...)
	case *ast.GoStmt:
		items = append(items, x.exprItems(st.Call)...)
	}
	return items
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

func (x *extractor) exprItems(e ast.Expr) []item {
	var items []item
	x.walkExpr(e, &items)
	return items
}

func (x *extractor) walkExpr(e ast.Expr, items *[]item) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			x.call(v, items)
			return false // call handles its own argument order
		}
		return true
	})
}

// call emits the item(s) for one call expression and walks its
// arguments, preserving source order.
func (x *extractor) call(call *ast.CallExpr, items *[]item) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if wk := wireKind(x.pass.TypesInfo.Types[sel.X].Type); wk != 0 {
			x.track(wk, sel.X)
			if norm, isOp := opNames[sel.Sel.Name]; isOp {
				*items = append(*items, item{kind: opItem, name: norm, label: sel.Sel.Name, pos: call.Pos()})
			}
			for _, a := range call.Args {
				x.walkExpr(a, items)
			}
			return
		}
	}
	passesWire := false
	for _, a := range call.Args {
		if wk := wireKind(x.pass.TypesInfo.Types[a].Type); wk != 0 && isWireRef(a) {
			passesWire = true
			x.track(wk, a)
		}
	}
	if passesWire {
		name := calleeName(call)
		*items = append(*items, item{kind: callItem, name: nameKey(name), label: name, pos: call.Pos()})
	}
	x.walkExpr(call.Fun, items)
	for _, a := range call.Args {
		x.walkExpr(a, items)
	}
}

// isWireRef keeps identity tracking to plain variable/field references;
// constructor results and other rvalues get anonymous identities where
// tracked.
func isWireRef(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.UnaryExpr:
		return true
	}
	return false
}

func (x *extractor) track(wk int, e ast.Expr) {
	obj := rootObject(x.pass, e)
	if obj == nil {
		// Distinct anonymous identity per occurrence: drives the
		// function into the multi-stream skip path, never a false pair.
		x.anon++
		obj = types.NewVar(token.NoPos, nil, fmt.Sprintf("anon%d", x.anon), nil)
	}
	if wk == 1 {
		x.writers[obj] = true
	} else {
		x.readers[obj] = true
	}
}

func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[v]; sel != nil {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[v.Sel]
	case *ast.UnaryExpr:
		return rootObject(pass, v.X)
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ---- normalization and comparison ----

// normalize drops wire-inactive structure: empty loops and branch arms
// vanish, single-arm branches splice inline (an error guard around a
// read is the read).
func normalize(items []item) []item {
	var out []item
	for _, it := range items {
		switch it.kind {
		case loopItem:
			body := normalize(it.body)
			if len(body) == 0 {
				continue
			}
			it.body = body
			out = append(out, it)
		case branchItem:
			var arms [][]item
			for _, a := range it.arms {
				if na := normalize(a); len(na) > 0 {
					arms = append(arms, na)
				}
			}
			switch len(arms) {
			case 0:
			case 1:
				out = append(out, arms[0]...)
			default:
				it.arms = arms
				out = append(out, it)
			}
		default:
			out = append(out, it)
		}
	}
	return out
}

// diffSeq compares two normalized item sequences, returning a
// description and anchor position of the first divergence ("" when
// symmetric).
func diffSeq(pass *analysis.Pass, enc, dec []item) (string, token.Pos) {
	i, j := 0, 0
	for i < len(enc) || j < len(dec) {
		if i >= len(enc) {
			d := dec[j]
			return fmt.Sprintf("decoder reads %s with no matching write", describe(pass, d)), d.pos
		}
		if j >= len(dec) {
			e := enc[i]
			return fmt.Sprintf("encoder writes %s with no matching read", describe(pass, e)), e.pos
		}
		e, d := enc[i], dec[j]
		// Tag hoisting: every encoder arm writes the same leading tag
		// the decoder reads once before switching (or vice versa).
		if e.kind == branchItem && d.kind == opItem {
			if ne, ok := hoist(e, d.name); ok {
				enc = splice(enc, i, ne)
				j++
				continue
			}
		}
		if d.kind == branchItem && e.kind == opItem {
			if nd, ok := hoist(d, e.name); ok {
				dec = splice(dec, j, nd)
				i++
				continue
			}
		}
		if e.kind != d.kind ||
			(e.kind == opItem && e.name != d.name) ||
			(e.kind == callItem && e.name != d.name) {
			return fmt.Sprintf("encoder writes %s where decoder reads %s",
				describe(pass, e), describe(pass, d)), e.pos
		}
		switch e.kind {
		case loopItem:
			if msg, pos := diffSeq(pass, e.body, d.body); msg != "" {
				return "inside repeated group: " + msg, pos
			}
		case branchItem:
			if len(e.arms) != len(d.arms) {
				return fmt.Sprintf("encoder branch has %d wire-active arms, decoder has %d", len(e.arms), len(d.arms)), e.pos
			}
			for k := range e.arms {
				if msg, pos := diffSeq(pass, e.arms[k], d.arms[k]); msg != "" {
					return fmt.Sprintf("in branch arm %d: %s", k+1, msg), pos
				}
			}
		}
		i++
		j++
	}
	return "", token.NoPos
}

// hoist strips opName off the front of every arm of branch b, returning
// the renormalized remainder.
func hoist(b item, opName string) ([]item, bool) {
	arms := make([][]item, 0, len(b.arms))
	for _, a := range b.arms {
		if len(a) == 0 || a[0].kind != opItem || a[0].name != opName {
			return nil, false
		}
		arms = append(arms, a[1:])
	}
	b.arms = arms
	return normalize([]item{b}), true
}

func splice(list []item, i int, repl []item) []item {
	out := make([]item, 0, len(list)-1+len(repl))
	out = append(out, list[:i]...)
	out = append(out, repl...)
	out = append(out, list[i+1:]...)
	return out
}

func describe(pass *analysis.Pass, it item) string {
	at := ""
	if p := pass.Fset.Position(it.pos); p.IsValid() {
		at = fmt.Sprintf(" (%s:%d)", filepath.Base(p.Filename), p.Line)
	}
	switch it.kind {
	case opItem:
		if it.label != it.name {
			return fmt.Sprintf("%s [%s]%s", it.name, it.label, at)
		}
		return it.name + at
	case callItem:
		return fmt.Sprintf("a %s(...) call%s", it.label, at)
	case loopItem:
		return "a repeated group" + at
	case branchItem:
		return "a branch" + at
	}
	return "?"
}
