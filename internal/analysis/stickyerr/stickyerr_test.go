package stickyerr

import (
	"testing"

	"metricindex/internal/analysis/analysistest"
)

func TestStickyErr(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/persist")
}

func TestUncheckedPackage(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/other")
}
