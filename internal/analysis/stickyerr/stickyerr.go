// Package stickyerr enforces error consumption in the durability
// packages (persist, store, epoch). The wire codec is sticky-error by
// design — a dropped error there is silent corruption — so inside these
// packages:
//
//   - a call whose results include an error must not be used as a bare
//     statement (or go statement); discarding deliberately takes an
//     explicit `_ =` assignment. Deferred calls are exempt: `defer
//     f.Close()` is the visible best-effort cleanup idiom.
//   - a function that reads values from a persist-style sticky Reader
//     must consult its error (Err() or the err field) or hand the
//     reader on (argument, return, stored field) for the caller to
//     check.
package stickyerr

import (
	"go/ast"
	"go/types"

	"metricindex/internal/analysis"
)

// Analyzer is the stickyerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "stickyerr",
	Doc: "in persist/store/epoch, error results must be consumed and " +
		"sticky Reader errors must be checked before decoded values are trusted",
	Run: run,
}

// checkedPackages are the package names (not paths) the analyzer
// applies to — the durability layer.
var checkedPackages = map[string]bool{
	"persist": true,
	"store":   true,
	"epoch":   true,
}

func run(pass *analysis.Pass) error {
	if !checkedPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					reportDropped(pass, call, "")
				}
			case *ast.GoStmt:
				reportDropped(pass, st.Call, "go ")
			}
			return true
		})
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isReaderMethod(pass, fn) {
				continue
			}
			checkReaderErr(pass, fn)
		}
	}
	return nil
}

// reportDropped flags a statement-position call whose result tuple
// contains an error.
func reportDropped(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	if !resultsIncludeError(tv.Type) {
		return
	}
	pass.Reportf(call.Pos(), "%s%s drops its error result; handle it or discard explicitly with `_ =`",
		prefix, callName(call))
}

func resultsIncludeError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name + "()"
	case *ast.SelectorExpr:
		return f.Sel.Name + "()"
	default:
		return "call"
	}
}

// checkReaderErr applies the sticky-Reader rule to one function: for
// every sticky-reader variable it reads values from, the function must
// either consult the reader's error or pass the reader along.
func checkReaderErr(pass *analysis.Pass, fn *ast.FuncDecl) {
	type state struct {
		reads     bool
		consulted bool
		firstRead ast.Node
		name      string
	}
	readers := make(map[types.Object]*state)
	get := func(obj types.Object) *state {
		if !isStickyReader(obj.Type()) {
			return nil
		}
		st := readers[obj]
		if st == nil {
			st = &state{name: obj.Name()}
			readers[obj] = st
		}
		return st
	}
	rootObj := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
		return nil
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			// Method calls on a reader: Err consults, everything else
			// that returns a value is a read.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if obj := rootObj(sel.X); obj != nil {
					if st := get(obj); st != nil {
						switch sel.Sel.Name {
						case "Err":
							st.consulted = true
						case "Remaining", "ExpectEOF", "fail":
							// ExpectEOF poisons, Err still must be read
							// somewhere — but these are not value reads.
						default:
							if !st.reads {
								st.reads = true
								st.firstRead = e
							}
						}
						return true
					}
				}
			}
			// A reader passed as an argument escapes to the callee,
			// which inherits the obligation.
			for _, arg := range e.Args {
				if obj := rootObj(arg); obj != nil {
					if st := get(obj); st != nil {
						st.consulted = true
					}
				}
			}
		case *ast.SelectorExpr:
			// Direct err-field access (package-internal decoders).
			if obj := rootObj(e.X); obj != nil {
				if st := get(obj); st != nil && e.Sel.Name == "err" {
					st.consulted = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				if obj := rootObj(res); obj != nil {
					if st := get(obj); st != nil {
						st.consulted = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := rootObj(v); obj != nil {
					if st := get(obj); st != nil {
						st.consulted = true
					}
				}
			}
		case *ast.AssignStmt:
			// Storing the reader somewhere (struct field, another
			// variable) hands it on.
			for i, rhs := range e.Rhs {
				obj := rootObj(rhs)
				if obj == nil {
					continue
				}
				if st := get(obj); st != nil && len(e.Lhs) > i {
					if _, selfRef := e.Lhs[i].(*ast.Ident); !selfRef {
						st.consulted = true
					}
				}
			}
		}
		return true
	})

	for _, st := range readers {
		if st.reads && !st.consulted {
			pass.Reportf(st.firstRead.Pos(),
				"values read from sticky reader %s but its error is never consulted (call Err, check the err field, or pass the reader on)",
				st.name)
		}
	}
}

// isReaderMethod reports whether fn is a method of the sticky Reader
// itself — its primitives manipulate the err field directly and are the
// mechanism the rule protects, not a client of it.
func isReaderMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	return isStickyReader(tv.Type)
}

// isStickyReader matches *Reader named types (any package) — the
// persist wire reader and testdata doubles.
func isStickyReader(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Reader"
}
