// Package other is outside the durability layer (persist/store/epoch):
// the stickyerr rules do not apply, so nothing below is flagged.
package other

import "os"

type Reader struct{ err error }

func (r *Reader) U32() uint32 { return 0 }

func drops(f *os.File) {
	f.Sync()
}

func reads(r *Reader) uint32 {
	return r.U32()
}
