// Package persist exercises the stickyerr rules on a model of the
// durability layer: dropped error results and unconsulted sticky
// readers.
package persist

import (
	"errors"
	"os"
)

// Reader is a sticky-error wire reader double.
type Reader struct {
	buf []byte
	err error
}

func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	return 0
}

func (r *Reader) F64() float64 { return 0 }

func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) { r.err = err }

// ---- dropped error results ----

func sync(f *os.File) {
	f.Sync()     // want `Sync\(\) drops its error result`
	_ = f.Sync() // explicit discard is the sanctioned form
}

func cleanup(f *os.File) error {
	defer f.Close() // deferred best-effort cleanup is exempt
	go f.Sync()     // want `go Sync\(\) drops its error result`
	return nil
}

func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// ---- sticky reader consumption ----

func decodeGood(r *Reader) (uint32, error) {
	v := r.U32()
	return v, r.Err()
}

func decodeErrField(r *Reader) (float64, error) {
	v := r.F64()
	return v, r.err
}

func decodeBad(r *Reader) uint32 {
	return r.U32() // want `values read from sticky reader r but its error is never consulted`
}

func decodeDelegates(r *Reader) uint32 {
	v := r.U32()
	sub(r) // handing the reader on transfers the obligation
	return v
}

func sub(r *Reader) { _ = r.Err() }

func decodeReturnsReader(r *Reader) (uint32, *Reader) {
	return r.U32(), r
}

type frame struct {
	r *Reader
	v uint32
}

func decodeStores(r *Reader) frame {
	return frame{r: r, v: r.U32()}
}

func poison(r *Reader) {
	r.fail(errors.New("persist: bad frame")) // fail() writes the error; it is not a read
}
