package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one type-checked package: parsed files plus full type
// information, sharing the loader's FileSet.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader type-checks the module's packages from source. Imports inside
// the module are resolved against the module directory; standard-library
// imports go through the toolchain's source importer (reading $GOROOT/src
// directly), so no compiled export data, build cache or network is
// needed. Imports outside both — third-party modules — are rejected;
// this repository has none.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	ctxt    build.Context
	std     types.Importer
	byDir   map[string]*Package
	loading map[string]bool
}

// NewLoader prepares a loader rooted at the module directory (the one
// holding go.mod). It disables cgo globally (build.Default) so packages
// like net type-check with their pure-Go fallbacks; a linter never needs
// the cgo variants.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer reads build.Default internally, so the switch
	// must be global, not just on our copy.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		ctxt:       ctxt,
		std:        importer.ForCompiler(fset, "source", nil),
		byDir:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the FileSet shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from
// source in-process, everything else is delegated to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as the package importPath. Results are memoized per directory.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		PkgPath:   importPath,
		Name:      tpkg.Name(),
		Dir:       abs,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.byDir[abs] = pkg
	return pkg, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// PackageDirs lists, under root, every directory holding at least one
// non-test Go file, skipping testdata, vendor, hidden and underscore
// directories — the "./..." walk of the lint driver.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}
