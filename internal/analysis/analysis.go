// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so `make lint` runs offline (the toolchain ships go/types and
// a source importer; x/tools would need a module download).
//
// It deliberately implements just what the metriclint analyzers need: a
// loader that type-checks the module's packages from source, an Analyzer
// value with a Run function over a type-checked package, positioned
// diagnostics, and //metriclint: comment directives (annotations on
// functions, per-line suppression). See docs/STATIC_ANALYSIS.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //metriclint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives *directives
	diags      *[]Diagnostic
}

// Reportf records a finding at pos unless a //metriclint:ignore
// directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.ignored(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasAnnotation reports whether fn carries the //metriclint:<name>
// function annotation in its doc comment (e.g. noalloc, locked).
func (p *Pass) HasAnnotation(fn *ast.FuncDecl, name string) bool {
	return hasAnnotation(fn, name)
}

// Run applies the analyzers to pkg and returns their findings sorted by
// position. Analyzer errors (not findings) abort the run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			directives: dirs,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
