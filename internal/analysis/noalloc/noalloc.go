// Package noalloc reports heap-allocating constructs inside functions
// annotated //metriclint:noalloc — the kNN/range hot paths (KNNHeap
// push, pivot-table filters, the cache hit path) whose per-candidate
// cost must stay free of allocation.
//
// The pass is deliberately syntactic-plus-types, not a full escape
// analysis: it flags the constructs that allocate (or defeat the
// inliner's escape analysis) in practice — make/new/append, slice, map
// and channel literals, &composite literals, closures, go statements,
// string building, and interface boxing of concrete non-pointer values.
// Calls to non-annotated functions are trusted; annotate the callee too
// if it is part of the hot path. testing.AllocsPerRun regression tests
// are the runtime witness for the same functions.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"metricindex/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //metriclint:noalloc must not contain heap-allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.HasAnnotation(fn, "noalloc") {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure literal may escape to the heap; use a named helper or inline the logic")
			return false // the closure body is not part of this function's budget
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement allocates a goroutine stack")
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass, e) && !isConstant(pass, e) {
				pass.Reportf(e.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkCall(pass, e)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Type conversions: string<->[]byte/[]rune copy; conversion to an
	// interface type boxes.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to := tv.Type
		argTV := pass.TypesInfo.Types[call.Args[0]]
		switch {
		case isStringByteConv(to, argTV.Type):
			if argTV.Value == nil { // constant conversions fold away
				pass.Reportf(call.Pos(), "string/byte-slice conversion copies and allocates")
			}
		case types.IsInterface(to) && boxes(argTV.Type):
			pass.Reportf(call.Pos(), "conversion to interface boxes a %s on the heap", typeName(argTV.Type))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates")
			case "new":
				pass.Reportf(call.Pos(), "new allocates")
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array; reslice within capacity instead")
			}
			return
		}
	}

	// Interface boxing through call arguments: a concrete non-pointer
	// value passed where the parameter is an interface.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if i == params.Len()-1 && call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg]
		if at.IsNil() || at.Type == nil {
			continue
		}
		if at.Value != nil {
			continue // constants box from read-only data, no allocation
		}
		if boxes(at.Type) {
			pass.Reportf(arg.Pos(), "argument boxes a %s into interface parameter", typeName(at.Type))
		}
	}
}

// typeName prints t qualified by package name, not import path.
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// boxes reports whether storing a value of concrete type t in an
// interface allocates: true for all non-interface kinds except
// pointer-shaped ones (pointers, funcs, chans, maps, unsafe pointers),
// which fit the interface word directly.
func boxes(t types.Type) bool {
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil {
			return false
		}
		return true
	default:
		return true
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isStringByteConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
