// Package hot exercises the noalloc annotation on model hot-path code.
package hot

type neighbor struct {
	id   int
	dist float64
}

type sink interface{ accept(v any) }

var global []neighbor

// push is a model zero-alloc hot path: reslice within capacity, value
// assignment, arithmetic only.
//
//metriclint:noalloc
func push(items []neighbor, n neighbor) []neighbor {
	if len(items) < cap(items) {
		items = items[:len(items)+1]
		items[len(items)-1] = n
	}
	return items
}

// filter shows pointer-shaped values passing through interfaces freely.
//
//metriclint:noalloc
func filter(s sink, p *neighbor) {
	s.accept(p) // pointers fit the interface word: no boxing
	s.accept(nil)
	s.accept("radius") // constants live in read-only data: no boxing
}

// unannotated functions may allocate at will.
func coldPath(n int) []neighbor {
	return make([]neighbor, n)
}

//metriclint:noalloc
func badMake(n int) []neighbor {
	return make([]neighbor, n) // want `make allocates`
}

//metriclint:noalloc
func badNew() *neighbor {
	return new(neighbor) // want `new allocates`
}

//metriclint:noalloc
func badAppend(items []neighbor, n neighbor) []neighbor {
	return append(items, n) // want `append may grow its backing array`
}

//metriclint:noalloc
func badCompositeRef() *neighbor {
	return &neighbor{id: 1} // want `&composite literal escapes to the heap`
}

//metriclint:noalloc
func badSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates its backing array`
}

//metriclint:noalloc
func badMapLit() map[int]bool {
	return map[int]bool{1: true} // want `map literal allocates`
}

//metriclint:noalloc
func badClosure(items []neighbor) func() int {
	return func() int { return len(items) } // want `closure literal may escape to the heap`
}

//metriclint:noalloc
func badGo() {
	go coldPath(1) // want `go statement allocates a goroutine stack`
}

//metriclint:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//metriclint:noalloc
func badConv(b []byte) string {
	return string(b) // want `string/byte-slice conversion copies and allocates`
}

//metriclint:noalloc
func badBoxConv(n neighbor) any {
	return any(n) // want `conversion to interface boxes a hot.neighbor on the heap`
}

//metriclint:noalloc
func badBoxArg(s sink, n neighbor) {
	s.accept(n) // want `argument boxes a hot.neighbor into interface parameter`
}

//metriclint:noalloc
func badBoxVariadic(f float64, vals ...any) {
	badBoxVariadic(f, vals...) // pass-through: no boxing
	badBoxVariadic(f, f)       // want `argument boxes a float64 into interface parameter`
}

// Suppression: a justified allocation is silenced per line.
//
//metriclint:noalloc
func suppressed(n int) []neighbor {
	//metriclint:ignore noalloc one-time warmup allocation, amortized
	return make([]neighbor, n)
}
