package noalloc

import (
	"testing"

	"metricindex/internal/analysis/analysistest"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/hot")
}
