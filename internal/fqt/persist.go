package fqt

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encodings for the FQT and FQA (spec:
// docs/PERSISTENCE.md §FQT, §FQA).

const fqtFormatVersion = 1

// maxTreeDepth bounds node-decoding recursion so corrupt payloads cannot
// exhaust the stack.
const maxTreeDepth = 10000

func init() {
	persist.Register("FQT", loadFQT)
	persist.Register("FQA", loadFQA)
}

// EncodeSnapshot writes the FQT payload: the (defaulted) build options,
// the per-level pivots, the bucket width, the object count and the tree.
func (t *FQT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(fqtFormatVersion)
	w.U32(uint32(t.opts.LeafCapacity))
	w.U32(uint32(t.opts.MaxChildren))
	w.F64(t.opts.MaxDistance)
	w.I64(int64(t.opts.Workers))
	w.Ints(t.pivotIDs)
	w.Objects(t.pivotVals)
	w.F64(t.width)
	w.U32(uint32(t.size))
	encodeFQTNode(w, t.root)
	return nil
}

// Node tags shared by the FQT tree encoding: 0 = nil, 1 = leaf bucket,
// 2 = internal node with bucket-keyed children.
func encodeFQTNode(w *persist.Writer, n *node) {
	switch {
	case n == nil:
		w.U8(0)
	case n.children == nil:
		w.U8(1)
		w.Int32s(n.ids)
	default:
		w.U8(2)
		keys := make([]int, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			w.U32(uint32(k))
			encodeFQTNode(w, n.children[k])
		}
	}
}

func decodeFQTNode(r *persist.Reader, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("fqt: tree deeper than %d", maxTreeDepth)
	}
	switch tag := r.U8(); tag {
	case 0:
		return nil, r.Err()
	case 1:
		return &node{ids: r.Int32s()}, r.Err()
	case 2:
		cnt := r.Count(5) // key + at least a tag byte per child
		if r.Err() != nil {
			return nil, r.Err()
		}
		n := &node{children: make(map[int]*node, cnt)}
		for i := 0; i < cnt; i++ {
			k := int(r.U32())
			child, err := decodeFQTNode(r, depth+1)
			if err != nil {
				return nil, err
			}
			n.children[k] = child
		}
		return n, r.Err()
	default:
		return nil, fmt.Errorf("fqt: unknown node tag %d", tag)
	}
}

func loadFQT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != fqtFormatVersion {
		return nil, nil, fmt.Errorf("fqt: unsupported payload version %d", v)
	}
	t := &FQT{ds: ds}
	t.opts.LeafCapacity = int(r.U32())
	t.opts.MaxChildren = int(r.U32())
	t.opts.MaxDistance = r.F64()
	t.opts.Workers = int(r.I64())
	t.pivotIDs = r.Ints()
	t.pivotVals = r.Objects()
	t.width = r.F64()
	t.size = int(r.U32())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(t.pivotVals) != len(t.pivotIDs) || len(t.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("fqt: %d pivot values for %d pivot ids", len(t.pivotVals), len(t.pivotIDs))
	}
	if t.width <= 0 {
		return nil, nil, fmt.Errorf("fqt: non-positive bucket width %v", t.width)
	}
	root, err := decodeFQTNode(r, 0)
	if err != nil {
		return nil, nil, err
	}
	t.root = root
	t.tokens = core.NewTokenPool(t.opts.Workers)
	return t, nil, nil
}

// EncodeSnapshot writes the FQA payload: pivots, row ids and the
// discrete distance vectors, row by row.
func (t *FQA) EncodeSnapshot(w *persist.Writer) error {
	w.U16(fqtFormatVersion)
	w.Ints(t.pivotIDs)
	w.Objects(t.pivotVals)
	w.Int32s(t.ids)
	for _, vec := range t.vecs {
		w.Int32s(vec)
	}
	return nil
}

func loadFQA(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != fqtFormatVersion {
		return nil, nil, fmt.Errorf("fqa: unsupported payload version %d", v)
	}
	t := &FQA{
		ds:        ds,
		pivotIDs:  r.Ints(),
		pivotVals: r.Objects(),
		ids:       r.Int32s(),
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(t.pivotVals) != len(t.pivotIDs) || len(t.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("fqa: %d pivot values for %d pivot ids", len(t.pivotVals), len(t.pivotIDs))
	}
	t.vecs = make([][]int32, len(t.ids))
	for i := range t.vecs {
		t.vecs[i] = r.Int32s()
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if len(t.vecs[i]) != len(t.pivotIDs) {
			return nil, nil, fmt.Errorf("fqa: row %d has %d coordinates, want %d", i, len(t.vecs[i]), len(t.pivotIDs))
		}
	}
	return t, nil, nil
}
