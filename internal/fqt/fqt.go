// Package fqt implements the Fixed Queries Tree (§4.2) and, as a bonus,
// the Fixed Queries Array (FQA [11]), both for *discrete* distance
// functions. Unlike BKT, FQT uses one pivot per tree level — the i-th
// pivot of the shared pivot set — so a root-to-leaf path spells out an
// object's distances to a prefix of the pivots, and with well-chosen
// pivots FQT is expected to beat BKT (§4.2).
package fqt

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"metricindex/internal/core"
)

// Options tunes construction.
type Options struct {
	// LeafCapacity stops splitting below this bucket size. Default 16.
	LeafCapacity int
	// MaxChildren caps fanout per node; bucket width =
	// ceil(MaxDistance/MaxChildren). Default 64.
	MaxChildren int
	// MaxDistance is the distance-domain upper bound d+. Required.
	MaxDistance float64
	// Workers parallelizes construction node-level: the per-node pivot
	// distances and sibling subtrees above a size cutoff spread over a
	// pool of Workers goroutines shared by the whole build (a token
	// scheme bounding total concurrency). 0 or 1 builds sequentially,
	// negative uses GOMAXPROCS. The tree is identical either way — FQT
	// construction has no randomness, only the level pivots.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.LeafCapacity <= 0 {
		o.LeafCapacity = 16
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = 64
	}
	if o.MaxDistance <= 0 {
		o.MaxDistance = 1
	}
	return o
}

// FQT is the fixed-queries tree index.
type FQT struct {
	ds        *core.Dataset
	opts      Options
	pivotIDs  []int
	pivotVals []core.Object
	width     float64
	root      *node
	size      int
	// tokens bounds build parallelism to Workers total goroutines across
	// the whole recursion; nil builds sequentially.
	tokens *core.TokenPool
}

// node is a leaf (bucket of ids) or an internal node whose children are
// keyed by the distance bucket to the pivot of the node's level.
type node struct {
	ids      []int32       // leaf bucket
	children map[int]*node // internal
}

func (n *node) leaf() bool { return n.children == nil }

// New builds an FQT over all live objects using the shared pivot set (one
// pivot per level, in order). The metric must be discrete.
func New(ds *core.Dataset, pivots []int, opts Options) (*FQT, error) {
	if !ds.Space().Metric().Discrete() {
		return nil, fmt.Errorf("fqt: metric %q is not discrete", ds.Space().Metric().Name())
	}
	if len(pivots) == 0 {
		return nil, fmt.Errorf("fqt: no pivots")
	}
	opts = opts.withDefaults()
	t := &FQT{
		ds:       ds,
		opts:     opts,
		pivotIDs: append([]int(nil), pivots...),
		width:    bucketWidth(opts.MaxDistance, opts.MaxChildren),
		tokens:   core.NewTokenPool(opts.Workers),
	}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("fqt: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}
	ids := make([]int32, 0, ds.Count())
	for _, id := range ds.LiveIDs() {
		ids = append(ids, int32(id))
	}
	t.size = len(ids)
	t.root = t.build(ids, 0)
	return t, nil
}

func bucketWidth(maxD float64, maxChildren int) float64 {
	w := math.Ceil(maxD / float64(maxChildren))
	if w < 1 {
		w = 1
	}
	return w
}

// build partitions ids by distance to the level pivot; recursion stops at
// the leaf capacity or when the pivots are exhausted (the tree height is
// the number of pivots, §4.2). With Workers > 1 the per-node distances
// and sibling subtrees above core.ParallelNodeCutoff spread over the shared token
// pool — disjoint nodes and slots, so the tree is identical to the
// sequential build.
func (t *FQT) build(ids []int32, level int) *node {
	if len(ids) <= t.opts.LeafCapacity || level >= len(t.pivotVals) {
		return &node{ids: ids}
	}
	sp := t.ds.Space()
	pv := t.pivotVals[level]
	par := t.tokens != nil && len(ids) >= core.ParallelNodeCutoff
	// Bucket index per object: the distance fill fans out over the token
	// pool; the aggregation that follows is sequential over ids' order, so
	// bucket contents are order-identical either way.
	bs := make([]int, len(ids))
	fill := func(start, end int) {
		for i := start; i < end; i++ {
			bs[i] = int(sp.Distance(pv, t.ds.Object(int(ids[i]))) / t.width)
		}
	}
	if par {
		t.tokens.ChunkedFill(len(ids), fill)
	} else {
		fill(0, len(ids))
	}
	buckets := make(map[int][]int32)
	for i, id := range ids {
		buckets[bs[i]] = append(buckets[bs[i]], id)
	}
	n := &node{children: make(map[int]*node, len(buckets))}
	var wg sync.WaitGroup
	for b, bucket := range buckets {
		child := &node{}
		n.children[b] = child
		if !par || !t.tokens.TryGo(&wg, func() { *child = *t.build(bucket, level+1) }) {
			*child = *t.build(bucket, level+1)
		}
	}
	wg.Wait()
	return n
}

// Name returns "FQT".
func (t *FQT) Name() string { return "FQT" }

// Len returns the number of indexed objects.
func (t *FQT) Len() int { return t.size }

// queryDists computes d(q, p_i) for every level pivot, once per query.
func (t *FQT) queryDists(q core.Object) []float64 {
	qd := make([]float64, len(t.pivotVals))
	sp := t.ds.Space()
	for i, p := range t.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r) depth-first, pruning buckets whose
// distance range misses [d(q,p_level)−r, d(q,p_level)+r].
func (t *FQT) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := t.queryDists(q)
	sp := t.ds.Space()
	var res []int
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		if n.leaf() {
			for _, id := range n.ids {
				if sp.Distance(q, t.ds.Object(int(id))) <= r {
					res = append(res, int(id))
				}
			}
			return
		}
		for b, child := range n.children {
			lo := float64(b) * t.width
			hi := lo + t.width
			if qd[level]+r < lo || qd[level]-r > hi {
				continue
			}
			walk(child, level+1)
		}
	}
	walk(t.root, 0)
	sort.Ints(res)
	return res, nil
}

type pqItem struct {
	n     *node
	level int
	lb    float64
}

type nodePQ []pqItem

func (p nodePQ) Len() int           { return len(p) }
func (p nodePQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p nodePQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *nodePQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// KNNSearch answers MkNNQ(q, k) best-first in ascending lower-bound order.
func (t *FQT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := t.queryDists(q)
	sp := t.ds.Space()
	h := core.NewKNNHeap(k)
	pq := &nodePQ{}
	heap.Push(pq, pqItem{t.root, 0, 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.lb > h.Radius() {
			break
		}
		if it.n.leaf() {
			for _, id := range it.n.ids {
				h.Push(int(id), sp.Distance(q, t.ds.Object(int(id))))
			}
			continue
		}
		for b, child := range it.n.children {
			lo := float64(b) * t.width
			hi := lo + t.width
			lb := intervalDist(qd[it.level], lo, hi)
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				heap.Push(pq, pqItem{child, it.level + 1, lb})
			}
		}
	}
	return h.Result(), nil
}

func intervalDist(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// Insert descends by bucket, appending to (and possibly splitting) a leaf.
func (t *FQT) Insert(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("fqt: insert of deleted object %d", id)
	}
	t.size++
	t.insertAt(t.root, 0, id, o)
	return nil
}

func (t *FQT) insertAt(n *node, level int, id int, o core.Object) {
	if n.leaf() {
		n.ids = append(n.ids, int32(id))
		if len(n.ids) > 2*t.opts.LeafCapacity && level < len(t.pivotVals) {
			rebuilt := t.build(n.ids, level)
			*n = *rebuilt
		}
		return
	}
	b := int(t.ds.Space().Distance(t.pivotVals[level], o) / t.width)
	child, ok := n.children[b]
	if !ok {
		n.children[b] = &node{ids: []int32{int32(id)}}
		return
	}
	t.insertAt(child, level+1, id, o)
}

// Delete descends by bucket and removes the identifier.
func (t *FQT) Delete(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("fqt: delete needs the object still present in the dataset (id %d)", id)
	}
	if !t.deleteAt(t.root, 0, id, o) {
		return fmt.Errorf("fqt: delete of unindexed object %d", id)
	}
	t.size--
	return nil
}

func (t *FQT) deleteAt(n *node, level int, id int, o core.Object) bool {
	if n.leaf() {
		for i, x := range n.ids {
			if int(x) == id {
				n.ids[i] = n.ids[len(n.ids)-1]
				n.ids = n.ids[:len(n.ids)-1]
				return true
			}
		}
		return false
	}
	b := int(t.ds.Space().Distance(t.pivotVals[level], o) / t.width)
	child, ok := n.children[b]
	if !ok {
		return false
	}
	return t.deleteAt(child, level+1, id, o)
}

// PageAccesses returns 0: FQT is an in-memory index.
func (t *FQT) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (t *FQT) ResetStats() {}

// MemBytes estimates the resident size (identifiers plus node overhead).
func (t *FQT) MemBytes() int64 {
	var bytes int64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			bytes += int64(len(n.ids))*4 + 24
			return
		}
		bytes += 48
		for _, c := range n.children {
			bytes += 16
			walk(c)
		}
	}
	walk(t.root)
	return bytes
}

// DiskBytes returns 0.
func (t *FQT) DiskBytes() int64 { return 0 }
