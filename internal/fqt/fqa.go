package fqt

import (
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
)

// FQA is the Fixed Queries Array [11]: the compact array form of FQT. All
// objects are sorted lexicographically by their discrete distance vector
// to the shared pivots; a query narrows the candidate interval with a
// binary search on the first pivot's distance band and filters the
// survivors with Lemma 1 on the stored vectors. The paper lists FQA in
// Table 1 next to FQT; it is included here for completeness and the
// ablation benchmarks.
type FQA struct {
	ds        *core.Dataset
	pivotIDs  []int
	pivotVals []core.Object
	ids       []int32
	vecs      [][]int32 // vecs[i] is ids[i]'s discrete distance vector
}

// NewFQA builds the sorted array over all live objects.
func NewFQA(ds *core.Dataset, pivots []int) (*FQA, error) {
	if !ds.Space().Metric().Discrete() {
		return nil, fmt.Errorf("fqa: metric %q is not discrete", ds.Space().Metric().Name())
	}
	if len(pivots) == 0 {
		return nil, fmt.Errorf("fqa: no pivots")
	}
	a := &FQA{ds: ds, pivotIDs: append([]int(nil), pivots...)}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("fqa: pivot %d is not a live object", p)
		}
		a.pivotVals = append(a.pivotVals, v)
	}
	for _, id := range ds.LiveIDs() {
		if err := a.Insert(id); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Name returns "FQA".
func (a *FQA) Name() string { return "FQA" }

// Len returns the number of indexed objects.
func (a *FQA) Len() int { return len(a.ids) }

func (a *FQA) vector(o core.Object) []int32 {
	sp := a.ds.Space()
	v := make([]int32, len(a.pivotVals))
	for i, p := range a.pivotVals {
		v[i] = int32(sp.Distance(o, p))
	}
	return v
}

func lexLess(x, y []int32) bool {
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// queryDists computes d(q, p_i) for every pivot.
func (a *FQA) queryDists(q core.Object) []float64 {
	qd := make([]float64, len(a.pivotVals))
	sp := a.ds.Space()
	for i, p := range a.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r): binary search narrows the array to the
// first pivot's band [d(q,p1)−r, d(q,p1)+r], then Lemma 1 filters on the
// remaining pivots before verification.
func (a *FQA) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := a.queryDists(q)
	lo := int32(math.Ceil(qd[0] - r))
	hi := int32(math.Floor(qd[0] + r))
	start := sort.Search(len(a.ids), func(i int) bool { return a.vecs[i][0] >= lo })
	var res []int
	for i := start; i < len(a.ids) && a.vecs[i][0] <= hi; i++ {
		if pruneVec(qd, a.vecs[i], r) {
			continue
		}
		if a.ds.DistanceTo(q, int(a.ids[i])) <= r {
			res = append(res, int(a.ids[i]))
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k): the array is walked outward from the
// query's first-pivot band, tightening the radius as candidates verify.
func (a *FQA) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := a.queryDists(q)
	h := core.NewKNNHeap(k)
	n := len(a.ids)
	center := sort.Search(n, func(i int) bool { return float64(a.vecs[i][0]) >= qd[0] })
	left, right := center-1, center
	for left >= 0 || right < n {
		r := h.Radius()
		// Pick the side whose first-pivot deviation is smaller.
		var i int
		leftDev, rightDev := math.Inf(1), math.Inf(1)
		if left >= 0 {
			leftDev = math.Abs(qd[0] - float64(a.vecs[left][0]))
		}
		if right < n {
			rightDev = math.Abs(qd[0] - float64(a.vecs[right][0]))
		}
		var dev float64
		if leftDev <= rightDev {
			i, dev = left, leftDev
			left--
		} else {
			i, dev = right, rightDev
			right++
		}
		if dev > r {
			break // every remaining vector deviates more on pivot 1
		}
		if !math.IsInf(r, 1) && pruneVec(qd, a.vecs[i], r) {
			continue
		}
		h.Push(int(a.ids[i]), a.ds.DistanceTo(q, int(a.ids[i])))
	}
	return h.Result(), nil
}

func pruneVec(qd []float64, od []int32, r float64) bool {
	for i := range qd {
		if d := math.Abs(qd[i] - float64(od[i])); d > r {
			return true
		}
	}
	return false
}

// Insert places the object's vector at its sorted position.
func (a *FQA) Insert(id int) error {
	o := a.ds.Object(id)
	if o == nil {
		return fmt.Errorf("fqa: insert of deleted object %d", id)
	}
	v := a.vector(o)
	pos := sort.Search(len(a.vecs), func(i int) bool { return !lexLess(a.vecs[i], v) })
	a.ids = append(a.ids, 0)
	copy(a.ids[pos+1:], a.ids[pos:])
	a.ids[pos] = int32(id)
	a.vecs = append(a.vecs, nil)
	copy(a.vecs[pos+1:], a.vecs[pos:])
	a.vecs[pos] = v
	return nil
}

// Delete removes the object, locating it via its distance vector.
func (a *FQA) Delete(id int) error {
	o := a.ds.Object(id)
	if o == nil {
		return fmt.Errorf("fqa: delete needs the object still present in the dataset (id %d)", id)
	}
	v := a.vector(o)
	pos := sort.Search(len(a.vecs), func(i int) bool { return !lexLess(a.vecs[i], v) })
	for i := pos; i < len(a.ids); i++ {
		if lexLess(v, a.vecs[i]) {
			break
		}
		if int(a.ids[i]) == id {
			a.ids = append(a.ids[:i], a.ids[i+1:]...)
			a.vecs = append(a.vecs[:i], a.vecs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("fqa: delete of unindexed object %d", id)
}

// PageAccesses returns 0: FQA is an in-memory index.
func (a *FQA) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (a *FQA) ResetStats() {}

// MemBytes reports the array's resident size.
func (a *FQA) MemBytes() int64 {
	return int64(len(a.ids))*4 + int64(len(a.ids)*len(a.pivotVals))*4
}

// DiskBytes returns 0.
func (a *FQA) DiskBytes() int64 { return 0 }
