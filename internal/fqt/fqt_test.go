package fqt

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/testutil"
)

func newIntFQT(t *testing.T, n int) (*FQT, *core.Dataset) {
	t.Helper()
	ds := testutil.IntVectorDataset(n, 4, 100, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, pv, Options{MaxDistance: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, ds
}

func TestFQTRejectsContinuousMetric(t *testing.T) {
	ds := testutil.VectorDataset(20, 2, 10, core.L2{}, 1)
	if _, err := New(ds, []int{0, 1}, Options{MaxDistance: 10}); err == nil {
		t.Fatal("FQT must reject continuous metrics")
	}
}

func TestFQTRangeMatchesBruteForce(t *testing.T) {
	idx, ds := newIntFQT(t, 400)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 2, 10, 35, 120} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
	}
}

func TestFQTKNNMatchesBruteForce(t *testing.T) {
	idx, ds := newIntFQT(t, 400)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, k := range []int{1, 4, 25, 400} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestFQTWords(t *testing.T) {
	ds := testutil.WordDataset(300, 11)
	pv, err := pivot.HFI(ds, 3, pivot.Options{Seed: 5})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, pv, Options{MaxDistance: 12})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 6)
	}
}

func TestFQTInsertDelete(t *testing.T) {
	idx, ds := newIntFQT(t, 200)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.IntVector{int32(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 5, 20, 120} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 17)
}

func TestFQAMatchesBruteForce(t *testing.T) {
	ds := testutil.IntVectorDataset(300, 4, 100, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := NewFQA(ds, pv)
	if err != nil {
		t.Fatalf("NewFQA: %v", err)
	}
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 2, 10, 35, 120} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 4, 25, 300} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestFQAInsertDelete(t *testing.T) {
	ds := testutil.IntVectorDataset(150, 3, 50, 9)
	pv, _ := pivot.HFI(ds, 3, pivot.Options{Seed: 3})
	idx, err := NewFQA(ds, pv)
	if err != nil {
		t.Fatalf("NewFQA: %v", err)
	}
	for id := 0; id < 150; id += 3 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		id := ds.Insert(core.IntVector{int32(i), 25, 25})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 3, 12, 60} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 11)
}
