package fqt

import (
	"fmt"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/testutil"
)

func newIntFQT(t *testing.T, n int) (*FQT, *core.Dataset) {
	t.Helper()
	ds := testutil.IntVectorDataset(n, 4, 100, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, pv, Options{MaxDistance: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, ds
}

func TestFQTRejectsContinuousMetric(t *testing.T) {
	ds := testutil.VectorDataset(20, 2, 10, core.L2{}, 1)
	if _, err := New(ds, []int{0, 1}, Options{MaxDistance: 10}); err == nil {
		t.Fatal("FQT must reject continuous metrics")
	}
}

// TestFQTEquivalence runs the shared metamorphic harness: parallel build
// answers identical to sequential, both correct against a linear scan,
// and invariant under insert-then-delete round trips — on integer
// vectors and words.
func TestFQTEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(true, 400, 7) {
		build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
			return New(ds, ed.Pivots, Options{MaxDistance: ed.MaxDistance, Workers: workers})
		}
		testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
	}
}

func TestFQTDeleteThenInsertMixed(t *testing.T) {
	idx, ds := newIntFQT(t, 200)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.IntVector{int32(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 5, 20, 120} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 17)
}

// sameTree deep-compares two FQT nodes: child bucket keys and the exact
// identifier sequence of every leaf.
func sameTree(a, b *node) error {
	if a.leaf() != b.leaf() {
		return fmt.Errorf("leaf/internal mismatch")
	}
	if a.leaf() {
		if len(a.ids) != len(b.ids) {
			return fmt.Errorf("leaf sizes %d vs %d", len(a.ids), len(b.ids))
		}
		for i := range a.ids {
			if a.ids[i] != b.ids[i] {
				return fmt.Errorf("leaf id %d: %d vs %d", i, a.ids[i], b.ids[i])
			}
		}
		return nil
	}
	if len(a.children) != len(b.children) {
		return fmt.Errorf("fanout %d vs %d", len(a.children), len(b.children))
	}
	for bkey, ac := range a.children {
		bc, ok := b.children[bkey]
		if !ok {
			return fmt.Errorf("bucket %d missing", bkey)
		}
		if err := sameTree(ac, bc); err != nil {
			return fmt.Errorf("bucket %d: %w", bkey, err)
		}
	}
	return nil
}

// TestFQTParallelBuildIdentical checks the node-level parallel build
// produces exactly the sequential tree.
func TestFQTParallelBuildIdentical(t *testing.T) {
	ds := testutil.IntVectorDataset(3000, 4, 100, 7)
	pv, err := pivot.HFI(ds, 5, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	seq, err := New(ds, pv, Options{MaxDistance: 100, LeafCapacity: 4})
	if err != nil {
		t.Fatalf("sequential New: %v", err)
	}
	for _, workers := range []int{-1, 4} {
		par, err := New(ds, pv, Options{MaxDistance: 100, LeafCapacity: 4, Workers: workers})
		if err != nil {
			t.Fatalf("parallel New(workers=%d): %v", workers, err)
		}
		if err := sameTree(seq.root, par.root); err != nil {
			t.Fatalf("workers=%d tree differs from sequential: %v", workers, err)
		}
	}
}

// TestFQTBuildConcurrencyBounded asserts the token pool keeps the
// build's total concurrency at Workers — not Workers per tree level.
func TestFQTBuildConcurrencyBounded(t *testing.T) {
	const workers = 3
	ds, probe := testutil.ProbeDataset(testutil.IntVectorDataset(1500, 4, 100, 7), 0)
	if _, err := New(ds, testutil.SpreadPivots(ds, 4), Options{MaxDistance: 100, Workers: workers}); err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := probe.Max(); got > workers {
		t.Fatalf("observed %d concurrent distance computations, Workers=%d", got, workers)
	}
}

func TestFQAMatchesBruteForce(t *testing.T) {
	ds := testutil.IntVectorDataset(300, 4, 100, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := NewFQA(ds, pv)
	if err != nil {
		t.Fatalf("NewFQA: %v", err)
	}
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 2, 10, 35, 120} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 4, 25, 300} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestFQAInsertDelete(t *testing.T) {
	ds := testutil.IntVectorDataset(150, 3, 50, 9)
	pv, _ := pivot.HFI(ds, 3, pivot.Options{Seed: 3})
	idx, err := NewFQA(ds, pv)
	if err != nil {
		t.Fatalf("NewFQA: %v", err)
	}
	for id := 0; id < 150; id += 3 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		id := ds.Insert(core.IntVector{int32(i), 25, 25})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 3, 12, 60} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 11)
}
