package ept

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
)

// Snapshot payload encodings for EPT, EPT* and DiskEPT* (spec:
// docs/PERSISTENCE.md §EPT). The pivot-assignment state (Groups for the
// original, PSAState for the star variants) is persisted too, so inserts
// keep working after a restore.
//
// Version history of the in-memory payload:
//   - 1: pids/dists row-major (entry row*l+c).
//   - 2: pids/dists column-major (the struct-of-arrays layout: one
//     pivot column's rows after another). The wire stores dataset pivot
//     ids, not dense pool indices — the pool is rebuilt at load — so
//     the fields and op shapes match version 1 exactly. Version-1
//     payloads still load via a transpose.
//
// DiskEPT* keeps its own version: its row-major on-disk pages are
// untouched by the in-memory table redesign.

const (
	eptFormatVersion     = 2
	diskEPTFormatVersion = 1
)

func init() {
	persist.Register("EPT", loadMemEPT)
	persist.Register("EPT*", loadMemEPT)
	persist.Register("DiskEPT*", loadDiskEPT)
}

func encodePivotVals(w *persist.Writer, m map[int32]core.Object) {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U32(uint32(k))
		w.Object(m[k])
	}
}

func decodePivotVals(r *persist.Reader) map[int32]core.Object {
	n := r.Count(6) // key + smallest object per entry
	if r.Err() != nil {
		return nil
	}
	m := make(map[int32]core.Object, n)
	for i := 0; i < n; i++ {
		k := int32(r.U32())
		m[k] = r.Object()
		if r.Err() != nil {
			return nil
		}
	}
	return m
}

func encodeGroups(w *persist.Writer, g *pivot.Groups) {
	w.U32(uint32(g.M))
	w.U32(uint32(g.L))
	w.U32(uint32(len(g.IDs)))
	for gi := range g.IDs {
		w.Int32s(g.IDs[gi])
		w.Objects(g.Vals[gi])
		w.Floats(g.Mu[gi])
	}
}

func decodeGroups(r *persist.Reader) (*pivot.Groups, error) {
	g := &pivot.Groups{M: int(r.U32()), L: int(r.U32())}
	n := r.Count(12) // three u32 counts per group at minimum
	if r.Err() != nil {
		return nil, r.Err()
	}
	g.IDs = make([][]int32, n)
	g.Vals = make([][]core.Object, n)
	g.Mu = make([][]float64, n)
	for gi := 0; gi < n; gi++ {
		g.IDs[gi] = r.Int32s()
		g.Vals[gi] = r.Objects()
		g.Mu[gi] = r.Floats()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(g.Vals[gi]) != len(g.IDs[gi]) || len(g.Mu[gi]) != len(g.IDs[gi]) {
			return nil, fmt.Errorf("ept: group %d has mismatched id/value/mu lengths", gi)
		}
	}
	return g, nil
}

func encodePSA(w *persist.Writer, st *pivot.PSAState) {
	w.Int32s(st.CandIDs)
	w.Objects(st.CandVals)
	w.Objects(st.ProbeVals)
	w.U32(uint32(len(st.ProbeCand)))
	for _, row := range st.ProbeCand {
		w.Floats(row)
	}
}

func decodePSA(r *persist.Reader) (*pivot.PSAState, error) {
	st := &pivot.PSAState{
		CandIDs:   r.Int32s(),
		CandVals:  r.Objects(),
		ProbeVals: r.Objects(),
	}
	n := r.Count(4)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(st.CandVals) != len(st.CandIDs) || len(st.CandIDs) == 0 {
		return nil, fmt.Errorf("ept: %d candidate values for %d candidate ids", len(st.CandVals), len(st.CandIDs))
	}
	if n != len(st.ProbeVals) {
		return nil, fmt.Errorf("ept: %d probe-distance rows for %d probes", n, len(st.ProbeVals))
	}
	st.ProbeCand = make([][]float64, n)
	for i := range st.ProbeCand {
		st.ProbeCand[i] = r.Floats()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(st.ProbeCand[i]) != len(st.CandIDs) {
			return nil, fmt.Errorf("ept: probe row %d has %d entries, want %d", i, len(st.ProbeCand[i]), len(st.CandIDs))
		}
	}
	return st, nil
}

// EncodeSnapshot writes the in-memory EPT/EPT* payload: variant, row
// width, the flat table (column-major, dense pool indices mapped back to
// dataset pivot ids), the pivot-value pool and the assignment state.
func (e *EPT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(eptFormatVersion)
	w.U8(uint8(e.variant))
	w.U32(uint32(e.l))
	w.Int32s(e.ids)
	pids := make([]int32, 0, len(e.ids)*e.l)
	dists := make([]float64, 0, len(e.ids)*e.l)
	for c := 0; c < e.l; c++ {
		for _, pi := range e.pcols[c] {
			pids = append(pids, e.poolIDs[pi])
		}
		dists = append(dists, e.dcols[c]...)
	}
	w.Int32s(pids)
	w.Floats(dists)
	encodePivotVals(w, e.pivotVal)
	switch e.variant {
	case Original:
		encodeGroups(w, e.groups)
	case Star:
		encodePSA(w, e.psa)
	default:
		return fmt.Errorf("ept: unknown variant %d", e.variant)
	}
	return nil
}

func loadMemEPT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	v := r.U16()
	if r.Err() == nil && v != 1 && v != eptFormatVersion {
		return nil, nil, fmt.Errorf("ept: unsupported payload version %d", v)
	}
	variant := Variant(r.U8())
	l := int(r.U32())
	ids := r.Int32s()
	pids := r.Int32s()
	dists := r.Floats()
	pivotVal := decodePivotVals(r)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if l <= 0 {
		return nil, nil, fmt.Errorf("ept: non-positive row width %d", l)
	}
	if len(pids) != len(ids)*l || len(dists) != len(pids) {
		return nil, nil, fmt.Errorf("ept: table shape %d ids × %d pivots vs %d/%d entries", len(ids), l, len(pids), len(dists))
	}
	e := newEmpty(ds, variant, l)
	e.ids = ids
	e.pivotVal = pivotVal
	var err error
	switch e.variant {
	case Original:
		e.groups, err = decodeGroups(r)
	case Star:
		e.psa, err = decodePSA(r)
	default:
		err = fmt.Errorf("ept: unknown variant %d", e.variant)
	}
	if err != nil {
		return nil, nil, err
	}
	// Rebuild the dense pool and the struct-of-arrays columns from the
	// wire's dataset pivot ids; version-1 payloads are row-major and
	// transpose here. The pool is admitted row by row — the order
	// appendRow uses — so the dense numbering matches a fresh build.
	rows := len(ids)
	at := func(c, row int) int {
		if v == 1 {
			return row*l + c
		}
		return c*rows + row
	}
	for row := 0; row < rows; row++ {
		for c := 0; c < l; c++ {
			p := pids[at(c, row)]
			if _, ok := e.pivotVal[p]; !ok {
				return nil, nil, fmt.Errorf("ept: row %d references pivot %d with no stored value", row, p)
			}
			e.poolIdx(p)
		}
	}
	for c := 0; c < l; c++ {
		e.pcols[c] = make([]int32, rows)
		e.dcols[c] = make([]float64, rows)
		for row := 0; row < rows; row++ {
			e.pcols[c][row] = e.poolIdx(pids[at(c, row)])
			e.dcols[c][row] = dists[at(c, row)]
		}
	}
	for row, id := range e.ids {
		e.rowOf[int(id)] = row
		e.mirrorRow(row, ds.Object(int(id)))
	}
	return e, nil, nil
}

// EncodeSnapshot writes the DiskEPT* payload: the pager volume image, the
// RAF state, the table page list and row count, the row directory, the
// pivot pool and the PSA state.
func (t *DiskEPT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(diskEPTFormatVersion)
	w.U32(uint32(t.l))
	w.Blob(t.pager.Serialize())
	w.Blob(t.raf.Serialize())
	w.PageIDs(t.pages)
	w.U32(uint32(t.rows))
	rowIDs := make([]int, 0, len(t.rowOf))
	for id := range t.rowOf {
		rowIDs = append(rowIDs, id)
	}
	sort.Ints(rowIDs)
	w.U32(uint32(len(rowIDs)))
	for _, id := range rowIDs {
		w.U32(uint32(id))
		w.U32(uint32(t.rowOf[id]))
	}
	encodePivotVals(w, t.pivotVal)
	encodePSA(w, t.psa)
	return nil
}

func loadDiskEPT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != diskEPTFormatVersion {
		return nil, nil, fmt.Errorf("ept: unsupported payload version %d", v)
	}
	l := int(r.U32())
	pagerBlob := r.Blob()
	rafBlob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if l <= 0 {
		return nil, nil, fmt.Errorf("ept: non-positive row width %d", l)
	}
	pager, err := store.LoadPager(pagerBlob)
	if err != nil {
		return nil, nil, err
	}
	raf, err := store.LoadRAF(pager, rafBlob)
	if err != nil {
		return nil, nil, err
	}
	t := &DiskEPT{
		ds:      ds,
		pager:   pager,
		raf:     raf,
		l:       l,
		rowSize: 4 + l*12,
	}
	t.pages = r.PageIDs()
	t.rows = int(r.U32())
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if t.rowsPerPage() < 1 {
		return nil, nil, fmt.Errorf("ept: page size %d below one row (%d bytes)", pager.PageSize(), t.rowSize)
	}
	for _, pid := range t.pages {
		if int(pid) >= pager.Pages() {
			return nil, nil, fmt.Errorf("ept: table page %d beyond volume (%d pages)", pid, pager.Pages())
		}
	}
	if t.rows < 0 || (len(t.pages) > 0 && (t.rows+t.rowsPerPage()-1)/t.rowsPerPage() > len(t.pages)) {
		return nil, nil, fmt.Errorf("ept: %d rows overflow %d table pages", t.rows, len(t.pages))
	}
	t.rowOf = make(map[int]int, n)
	for i := 0; i < n; i++ {
		id := int(r.U32())
		row := int(r.U32())
		if row < 0 || row >= t.rows {
			return nil, nil, fmt.Errorf("ept: directory row %d out of range (%d rows)", row, t.rows)
		}
		t.rowOf[id] = row
	}
	t.pivotVal = decodePivotVals(r)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	t.psa, err = decodePSA(r)
	if err != nil {
		return nil, nil, err
	}
	return t, pager, nil
}
