package ept

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// eptKNNAllocBudget bounds the allocations of one uncached EPT kNN
// query (measured 9/op: query-pivot distances, the per-group scan
// state, the candidate heap, the sorted answer, and sort.Slice
// internals). Headroom covers toolchain drift; per-candidate allocation
// regressions blow far past it.
const eptKNNAllocBudget = 12

func TestEPTKNNSearchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := New(ds, Original, Options{L: 5, Radius: 20})
	if err != nil {
		t.Fatal(err)
	}
	var q core.Object = ds.Objects()[42]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.KNNSearch(q, 10); err != nil {
			panic(err)
		}
	})
	if allocs > eptKNNAllocBudget {
		t.Fatalf("EPT.KNNSearch allocated %.1f times per query; budget is %d", allocs, eptKNNAllocBudget)
	}
}
