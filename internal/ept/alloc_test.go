package ept

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// eptKNNAllocBudget bounds the allocations of one uncached EPT kNN
// query (measured 9/op: query-pivot distances, the per-group scan
// state, the candidate heap, the sorted answer, and sort.Slice
// internals). Headroom covers toolchain drift; per-candidate allocation
// regressions blow far past it.
const eptKNNAllocBudget = 12

func TestEPTKNNSearchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := New(ds, Original, Options{L: 5, Radius: 20})
	if err != nil {
		t.Fatal(err)
	}
	var q core.Object = ds.Objects()[42]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.KNNSearch(q, 10); err != nil {
			panic(err)
		}
	})
	if allocs > eptKNNAllocBudget {
		t.Fatalf("EPT.KNNSearch allocated %.1f times per query; budget is %d", allocs, eptKNNAllocBudget)
	}
}

// TestEPTFlatKNNHotLoopZeroAllocs witnesses that the flat-path kNN scan
// (pool batch, indexed lower-bound columns, flat verification) runs
// without allocating once the scratch pool is warm; see the LAESA twin.
func TestEPTFlatKNNHotLoopZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := New(ds, Original, Options{L: 5, Radius: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.useFlat() {
		t.Fatal("flat path not armed on a pure-vector dataset")
	}
	var q core.Object = ds.Objects()[42]
	if _, err := idx.KNNSearch(q, 10); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sc := idx.queryPrep(q)
		q64, q32, ok := idx.flat.QueryCoords(q, sc)
		if !ok {
			panic("query does not fit the flat mirror")
		}
		h := sc.Heap(10)
		idx.knnFlat(q64, q32, sc, h)
		idx.scratch.Put(sc)
	})
	if allocs != 0 {
		t.Fatalf("flat kNN hot loop allocated %.1f times per query; want 0", allocs)
	}
}
