package ept

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/pivot"
	"metricindex/internal/testutil"
)

// TestEPTLoadsVersion1Payload hand-encodes the version-1 (row-major)
// in-memory EPT payload — dataset pivot ids interleaved per row — for
// both variants and checks the registered loader rebuilds the dense pool
// and the struct-of-arrays columns with identical answers.
func TestEPTLoadsVersion1Payload(t *testing.T) {
	for _, variant := range []Variant{Original, Star} {
		ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
		idx, err := New(ds, variant, Options{L: 4, Radius: 10, Sel: pivot.Options{Seed: 3, SampleSize: 128}})
		if err != nil {
			t.Fatalf("New(%v): %v", variant, err)
		}
		w := persist.NewWriter()
		w.U16(1)
		w.U8(uint8(idx.variant))
		w.U32(uint32(idx.l))
		w.Int32s(idx.ids)
		rows := len(idx.ids)
		pids := make([]int32, rows*idx.l)
		dists := make([]float64, rows*idx.l)
		for c := 0; c < idx.l; c++ {
			for row := 0; row < rows; row++ {
				pids[row*idx.l+c] = idx.poolIDs[idx.pcols[c][row]]
				dists[row*idx.l+c] = idx.dcols[c][row]
			}
		}
		w.Int32s(pids)
		w.Floats(dists)
		encodePivotVals(w, idx.pivotVal)
		if variant == Original {
			encodeGroups(w, idx.groups)
		} else {
			encodePSA(w, idx.psa)
		}

		restoredIdx, _, err := loadMemEPT(ds, persist.NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("load v1 payload (%v): %v", variant, err)
		}
		restored := restoredIdx.(*EPT)
		if !reflect.DeepEqual(restored.dcols, idx.dcols) {
			t.Fatalf("%v: v1 load did not transpose to the original distance columns", variant)
		}
		// The pool is rebuilt in first-reference order, which the row-major
		// walk visits identically, so the dense indices must match too.
		if !reflect.DeepEqual(restored.poolIDs, idx.poolIDs) {
			t.Fatalf("%v: v1 load rebuilt a different pivot pool", variant)
		}
		if !reflect.DeepEqual(restored.pcols, idx.pcols) {
			t.Fatalf("%v: v1 load rebuilt different pivot columns", variant)
		}
		if !restored.useFlat() {
			t.Fatalf("%v: v1 load did not arm the flat path", variant)
		}
		for qs := int64(0); qs < 3; qs++ {
			q := testutil.RandomQuery(ds, qs)
			a, err := idx.RangeSearch(q, 30)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.RangeSearch(q, 30)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v: MRQ answers differ after v1 load: %v vs %v", variant, a, b)
			}
			an, err := idx.KNNSearch(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			bn, err := restored.KNNSearch(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(an, bn) {
				t.Fatalf("%v: MkNNQ answers differ after v1 load: %v vs %v", variant, an, bn)
			}
		}
	}
}
