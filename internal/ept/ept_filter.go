package ept

import (
	"sort"

	"metricindex/internal/core"
)

// Probe-filtered search (core.AcceptSearcher), the EPT twin of the
// LAESA implementation: the accept test runs on every row that survives
// the indexed column sweep, before its distance is computed, so
// rejected candidates cost zero compdists while Lemma 1 pruning is
// untouched.

// RangeSearchAccept answers MRQ(q, r) restricted to accepted ids. A nil
// accept is the unfiltered search.
func (e *EPT) RangeSearchAccept(q core.Object, r float64, accept core.Accept) ([]int, error) {
	if accept == nil {
		return e.RangeSearch(q, r)
	}
	sc := e.queryPrep(q)
	sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, 0, len(e.ids), r)
	var res []int
	if e.useFlat() {
		if q64, q32, ok := e.flat.QueryCoords(q, sc); ok {
			ndist := 0
			for _, row := range sur {
				id := int(e.ids[row])
				if !accept(id) {
					continue
				}
				pre := e.flat.Pre(&e.kern, q64, q32, int(row))
				ndist++
				if e.kern.Exceeds(pre, r) {
					continue
				}
				if e.kern.Finish(pre) <= r {
					res = append(res, id)
				}
			}
			e.ds.Space().CountDistances(ndist)
			e.scratch.Put(sc)
			sort.Ints(res)
			return res, nil
		}
	}
	objs := e.ds.Objects()
	sp := e.ds.Space()
	m := 0
	flush := func() {
		sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
		for j := 0; j < m; j++ {
			if sc.Out[j] <= r {
				res = append(res, int(sc.IDs[j]))
			}
		}
		m = 0
	}
	for _, row := range sur {
		id := e.ids[row]
		if !accept(int(id)) {
			continue
		}
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m == len(sc.IDs) {
			flush()
		}
	}
	if m > 0 {
		flush()
	}
	e.scratch.Put(sc)
	sort.Ints(res)
	return res, nil
}

// KNNSearchAccept answers MkNNQ(q, k) over accepted ids only: the
// staged block sweep without the unconditional seed prefix (a rejected
// seed row must not cost a distance).
func (e *EPT) KNNSearchAccept(q core.Object, k int, accept core.Accept) ([]core.Neighbor, error) {
	if accept == nil {
		return e.KNNSearch(q, k)
	}
	if k <= 0 {
		return nil, nil
	}
	sc := e.queryPrep(q)
	h := sc.Heap(k)
	if e.useFlat() {
		if q64, q32, ok := e.flat.QueryCoords(q, sc); ok {
			e.knnFlatAccept(q64, q32, sc, h, accept)
			res := h.Result()
			e.scratch.Put(sc)
			return res, nil
		}
	}
	e.knnObjsAccept(q, sc, h, accept)
	res := h.Result()
	e.scratch.Put(sc)
	return res, nil
}

//metriclint:noalloc
func (e *EPT) knnFlatAccept(q64 []float64, q32 []float32, sc *core.Scratch, h *core.KNNHeap, accept core.Accept) {
	ndist := 0
	for base, blk := 0, knnBlockMin; base < len(e.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(e.ids) {
			end = len(e.ids)
		}
		sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, base, end, h.Radius())
		for _, row := range sur {
			if !accept(int(e.ids[row])) {
				continue
			}
			r := h.Radius()
			if core.PruneRowIndexedAt(sc.QD, e.pcols, e.dcols, int(row), r) {
				continue
			}
			pre := e.flat.Pre(&e.kern, q64, q32, int(row))
			ndist++
			if e.kern.Exceeds(pre, r) {
				continue
			}
			h.Push(int(e.ids[row]), e.kern.Finish(pre))
		}
	}
	e.ds.Space().CountDistances(ndist)
}

//metriclint:noalloc
func (e *EPT) knnObjsAccept(q core.Object, sc *core.Scratch, h *core.KNNHeap, accept core.Accept) {
	objs := e.ds.Objects()
	m := 0
	for base, blk := 0, knnBlockMin; base < len(e.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(e.ids) {
			end = len(e.ids)
		}
		sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, base, end, h.Radius())
		for _, row := range sur {
			id := e.ids[row]
			if !accept(int(id)) {
				continue
			}
			if core.PruneRowIndexedAt(sc.QD, e.pcols, e.dcols, int(row), h.Radius()) {
				continue
			}
			sc.IDs[m] = id
			sc.Objs[m] = objs[id]
			m++
			if m == len(sc.IDs) {
				e.flushKNN(q, sc, m, h)
				m = 0
			}
		}
	}
	if m > 0 {
		e.flushKNN(q, sc, m, h)
	}
}
