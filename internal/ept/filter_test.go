package ept

import (
	"testing"

	"metricindex/internal/pivot"
	"metricindex/internal/plan"
	"metricindex/internal/testutil"
)

// TestEPTFilterEquivalence runs the shared filtered-search harness over
// both EPT variants: every strategy (and the planner's pick) must
// answer exactly the brute-force filter-then-scan. EPT is
// probe-capable, so the probe leg pushes the predicate into candidate
// verification for real.
func TestEPTFilterEquivalence(t *testing.T) {
	for _, v := range []Variant{Original, Star} {
		for _, ed := range testutil.EquivDatasets(false, 250, 7) {
			idx, err := New(ed.DS, v, Options{L: 4, Radius: 10, Sel: pivot.Options{Seed: 3, SampleSize: 128}})
			if err != nil {
				t.Fatalf("%s/%v: New: %v", ed.Name, v, err)
			}
			if !plan.Capable(idx) {
				t.Fatalf("%s/%v: EPT must be probe-capable", ed.Name, v)
			}
			testutil.CheckFilterEquivalence(t, ed, idx)
		}
	}
}
