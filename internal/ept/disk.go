package ept

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
)

// DiskEPT is the disk-based EPT* the paper's conclusion names as a
// promising direction (§7: "extension of EPT(*) to a disk-based metric
// index with a low construction cost"). It keeps EPT*'s per-object PSA
// pivots — the best query-time compdists of the study — but stores the
// pivot table on sequential disk pages and the objects in a RAF, so the
// dataset no longer has to fit in main memory (EPT*'s stated limitation,
// §3.1/§7).
//
// Row format on the table pages: id u32 | l × (pivotID u32, dist f64).
type DiskEPT struct {
	ds       *core.Dataset
	pager    *store.Pager
	raf      *store.RAF
	l        int
	pivotVal map[int32]core.Object
	psa      *pivot.PSAState

	pages   []store.PageID
	rows    int
	rowOf   map[int]int
	rowSize int
}

const deptTombstone = 0xFFFFFFFF

// NewDisk builds a disk-based EPT* over all live objects.
func NewDisk(ds *core.Dataset, pager *store.Pager, opts Options) (*DiskEPT, error) {
	if opts.L <= 0 {
		return nil, fmt.Errorf("ept: non-positive L %d", opts.L)
	}
	st, err := pivot.NewPSAState(ds, opts.Sel)
	if err != nil {
		return nil, err
	}
	l := opts.L
	if l > len(st.CandVals) {
		l = len(st.CandVals)
	}
	t := &DiskEPT{
		ds:       ds,
		pager:    pager,
		raf:      store.NewRAF(pager),
		l:        l,
		pivotVal: make(map[int32]core.Object),
		psa:      st,
		rowOf:    make(map[int]int),
		rowSize:  4 + l*12,
	}
	if t.rowsPerPage() < 1 {
		return nil, fmt.Errorf("ept: page size %d below one row (%d bytes)", pager.PageSize(), t.rowSize)
	}
	for ci := range st.CandIDs {
		t.pivotVal[st.CandIDs[ci]] = st.CandVals[ci]
	}
	// Per-object PSA assignment is the dominant build cost; fan it out
	// across Options.Workers goroutines (Assign is read-only on the PSA
	// state), then write the table pages and RAF sequentially so the
	// on-disk layout is identical to a sequential build.
	ids := ds.LiveIDs()
	sp := ds.Space()
	pvs := make([][]int32, len(ids))
	dvs := make([][]float64, len(ids))
	core.ParallelFor(len(ids), opts.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			pvs[i], dvs[i] = st.Assign(sp, ds.Object(ids[i]), l)
		}
	})
	for i, id := range ids {
		if _, err := t.raf.Append(id, store.EncodeObject(nil, ds.Object(id))); err != nil {
			return nil, err
		}
		pv, dv := pvs[i], dvs[i]
		for len(pv) < l { // defensive padding (tiny candidate pools)
			pv = append(pv, pv[len(pv)-1])
			dv = append(dv, dv[len(dv)-1])
		}
		if err := t.writeRow(t.rows, uint32(id), pv, dv); err != nil {
			return nil, err
		}
		t.rowOf[id] = t.rows
		t.rows++
	}
	return t, nil
}

func (t *DiskEPT) rowsPerPage() int { return (t.pager.PageSize() - 2) / t.rowSize }

// Name returns "DiskEPT*".
func (t *DiskEPT) Name() string { return "DiskEPT*" }

// Len returns the number of indexed objects.
func (t *DiskEPT) Len() int { return len(t.rowOf) }

func (t *DiskEPT) writeRow(row int, id uint32, pv []int32, dv []float64) error {
	rpp := t.rowsPerPage()
	pageIdx := row / rpp
	for pageIdx >= len(t.pages) {
		t.pages = append(t.pages, t.pager.Alloc())
	}
	pid := t.pages[pageIdx]
	page, err := t.pager.Read(pid)
	if err != nil {
		return err
	}
	buf := make([]byte, len(page))
	copy(buf, page)
	off := 2 + (row%rpp)*t.rowSize
	binary.LittleEndian.PutUint32(buf[off:], id)
	for i := 0; i < t.l; i++ {
		binary.LittleEndian.PutUint32(buf[off+4+12*i:], uint32(pv[i]))
		binary.LittleEndian.PutUint64(buf[off+8+12*i:], math.Float64bits(dv[i]))
	}
	if cnt := binary.LittleEndian.Uint16(buf[0:2]); uint16(row%rpp)+1 > cnt {
		binary.LittleEndian.PutUint16(buf[0:2], uint16(row%rpp)+1)
	}
	return t.pager.Write(pid, buf)
}

// scan streams the live rows, paying one page access per table page.
func (t *DiskEPT) scan(fn func(id int, pv []int32, dv []float64) (bool, error)) error {
	pv := make([]int32, t.l)
	dv := make([]float64, t.l)
	for _, pid := range t.pages {
		page, err := t.pager.Read(pid)
		if err != nil {
			return err
		}
		cnt := int(binary.LittleEndian.Uint16(page[0:2]))
		for rI := 0; rI < cnt; rI++ {
			off := 2 + rI*t.rowSize
			id := binary.LittleEndian.Uint32(page[off:])
			if id == deptTombstone {
				continue
			}
			for i := 0; i < t.l; i++ {
				pv[i] = int32(binary.LittleEndian.Uint32(page[off+4+12*i:]))
				dv[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off+8+12*i:]))
			}
			cont, err := fn(int(id), pv, dv)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
	return nil
}

// qstate memoizes d(q, pivot) per distinct pivot of the candidate pool.
type qstate struct {
	t  *DiskEPT
	q  core.Object
	qd map[int32]float64
}

func (s *qstate) dist(p int32) float64 {
	if d, ok := s.qd[p]; ok {
		return d
	}
	d := s.t.ds.Space().Distance(s.q, s.t.pivotVal[p])
	s.qd[p] = d
	return d
}

func (s *qstate) prune(pv []int32, dv []float64, r float64) bool {
	for i := range pv {
		if math.Abs(s.dist(pv[i])-dv[i]) > r {
			return true
		}
	}
	return false
}

// loadObject fetches the object from the RAF.
func (t *DiskEPT) loadObject(id int) (core.Object, error) {
	buf, err := t.raf.Read(id)
	if err != nil {
		return nil, err
	}
	o, _, err := store.DecodeObject(buf)
	return o, err
}

// RangeSearch answers MRQ(q, r): a sequential table scan with Lemma 1 on
// each row's private pivots; survivors are fetched from the RAF and
// verified.
func (t *DiskEPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	st := &qstate{t: t, q: q, qd: make(map[int32]float64, 2*t.l)}
	sp := t.ds.Space()
	var res []int
	err := t.scan(func(id int, pv []int32, dv []float64) (bool, error) {
		if st.prune(pv, dv, r) {
			return true, nil
		}
		o, err := t.loadObject(id)
		if err != nil {
			return false, err
		}
		if sp.Distance(q, o) <= r {
			res = append(res, id)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) by the table scan with a tightening
// radius.
func (t *DiskEPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	st := &qstate{t: t, q: q, qd: make(map[int32]float64, 2*t.l)}
	sp := t.ds.Space()
	h := core.NewKNNHeap(k)
	err := t.scan(func(id int, pv []int32, dv []float64) (bool, error) {
		r := h.Radius()
		if !math.IsInf(r, 1) && st.prune(pv, dv, r) {
			return true, nil
		}
		o, err := t.loadObject(id)
		if err != nil {
			return false, err
		}
		h.Push(id, sp.Distance(q, o))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return h.Result(), nil
}

// Insert assigns PSA pivots to the object and appends its row and RAF
// record.
func (t *DiskEPT) Insert(id int) error {
	if _, dup := t.rowOf[id]; dup {
		return fmt.Errorf("ept: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("ept: insert of deleted object %d", id)
	}
	if _, err := t.raf.Append(id, store.EncodeObject(nil, o)); err != nil {
		return err
	}
	pv, dv := t.psa.Assign(t.ds.Space(), o, t.l)
	for len(pv) < t.l { // defensive padding (tiny candidate pools)
		pv = append(pv, pv[len(pv)-1])
		dv = append(dv, dv[len(dv)-1])
	}
	row := t.rows
	if err := t.writeRow(row, uint32(id), pv, dv); err != nil {
		return err
	}
	t.rows++
	t.rowOf[id] = row
	return nil
}

// Delete tombstones the row and drops the RAF record.
func (t *DiskEPT) Delete(id int) error {
	row, ok := t.rowOf[id]
	if !ok {
		return fmt.Errorf("ept: delete of unindexed object %d", id)
	}
	if err := t.writeRow(row, deptTombstone, make([]int32, t.l), make([]float64, t.l)); err != nil {
		return err
	}
	delete(t.rowOf, id)
	return t.raf.Delete(id)
}

// PageAccesses reports the pager's accesses (table + RAF).
func (t *DiskEPT) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *DiskEPT) ResetStats() { t.pager.ResetStats() }

// MemBytes reports the small in-memory state (pivot pool and row
// directory).
func (t *DiskEPT) MemBytes() int64 {
	return int64(len(t.rowOf))*16 + int64(len(t.pivotVal))*64
}

// DiskBytes reports the table + RAF footprint.
func (t *DiskEPT) DiskBytes() int64 { return t.pager.DiskBytes() }
