// Package ept implements the Extreme Pivot Table of [24] (§3.2) and the
// paper's improved EPT*, which replaces the group-based extreme-pivot
// assignment with the PSA pivot-selection algorithm (Algorithm 1). Both
// are in-memory tables like LAESA, but each object carries its *own* l
// pivots, so every row stores (pivot id, distance) pairs (Fig 5).
package ept

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
)

// verifyChunk is the candidate batch size of the chunked DistanceMany
// verification path.
const verifyChunk = 64

// knnBlockMin and knnBlock bound the row-block sizes of the staged kNN
// scan (see the LAESA twin): each block is swept at the radius current
// when it starts, so pruning tightens block by block and the recheck
// stays cache-resident.
// Blocks start small and double, so the loose just-seeded radius only
// governs short sweeps.
const (
	knnBlockMin = 128
	knnBlock    = 1024
)

// Variant selects between the original EPT and the paper's EPT*.
type Variant int

// The two variants of §3.2.
const (
	// Original is EPT [24]: l random groups of m pivots; every object
	// takes the group member maximizing |d(o,p) − μ_p|.
	Original Variant = iota
	// Star is EPT*: per-object pivots chosen by PSA to maximize the
	// lower-bound/true-distance ratio. Much more expensive to build,
	// fewest compdists at query time (Fig 14).
	Star
)

// Options configures construction.
type Options struct {
	// L is the number of pivots per object (matches |P| of the other
	// indexes so comparisons are fair).
	L int
	// M is the EPT group size; 0 lets EstimateGroupSize pick it from
	// Equation (1) using Radius.
	M int
	// Radius feeds the group-size estimate (a typical query radius).
	Radius float64
	// Sel tunes pivot sampling.
	Sel pivot.Options
	// Workers parallelizes the per-object pivot assignment during
	// construction (the dominant cost, especially for EPT*): 0 or 1
	// builds sequentially, negative uses GOMAXPROCS, otherwise that many
	// goroutines. The resulting table is identical to a sequential build.
	Workers int
}

// EPT is the extreme pivot table index. The table is struct-of-arrays:
// column c holds, for every row, the c-th private pivot (as a dense index
// into the referenced-pivot pool) and its distance, so Lemma 1 filtering
// scans contiguous columns. A query computes its distance to the whole
// referenced pool up front through the batch kernel — replacing the old
// lazy per-pivot map memoization — then prunes via the columns and
// verifies survivors through the flat kernel (or chunked DistanceMany).
type EPT struct {
	ds      *core.Dataset
	variant Variant
	l       int

	ids   []int32     // row -> object id
	pcols [][]int32   // pcols[c][row] = dense pool index of the row's c-th pivot
	dcols [][]float64 // dcols[c][row] = distance to that pivot
	rowOf map[int]int

	// pivotVal snapshots pivot object values so queries keep working if a
	// pivot object is later deleted from the dataset.
	pivotVal map[int32]core.Object

	// The referenced-pivot pool: every pivot some row cites, densely
	// numbered in first-reference order. poolIDs maps dense index back to
	// the dataset pivot id; poolOf is the inverse.
	pool    []core.Object
	poolIDs []int32
	poolOf  map[int32]int32

	groups *pivot.Groups   // Original: assignment state for inserts
	psa    *pivot.PSAState // Star: assignment state for inserts

	flat     *core.FlatVecs // coordinate mirror; nil off the flat path
	noMirror bool
	kern     core.PreKernel
	hasKern  bool
	scratch  core.ScratchPool
}

// New builds an EPT or EPT* over all live objects.
func New(ds *core.Dataset, variant Variant, opts Options) (*EPT, error) {
	if opts.L <= 0 {
		return nil, fmt.Errorf("ept: non-positive L %d", opts.L)
	}
	e := newEmpty(ds, variant, opts.L)
	sp := ds.Space()
	// assign computes one object's row; it must be safe to call
	// concurrently, since construction fans the per-object assignments out
	// across Options.Workers goroutines (§6.2: objects are independent).
	var assign func(o core.Object) ([]int32, []float64)
	switch variant {
	case Original:
		m := opts.M
		if m <= 0 {
			r := opts.Radius
			if r <= 0 {
				r = 1
			}
			m = pivot.EstimateGroupSize(ds, opts.L, r, opts.Sel)
		}
		g, err := pivot.SelectGroups(ds, opts.L, m, opts.Sel)
		if err != nil {
			return nil, err
		}
		e.groups = g
		for gi := range g.IDs {
			for j := range g.IDs[gi] {
				e.pivotVal[g.IDs[gi][j]] = g.Vals[gi][j]
			}
		}
		assign = func(o core.Object) ([]int32, []float64) {
			return g.AssignExtreme(sp, o)
		}
	case Star:
		st, err := pivot.NewPSAState(ds, opts.Sel)
		if err != nil {
			return nil, err
		}
		e.l = min(e.l, len(st.CandVals))
		e.pcols = e.pcols[:e.l]
		e.dcols = e.dcols[:e.l]
		e.psa = st
		for ci := range st.CandIDs {
			e.pivotVal[st.CandIDs[ci]] = st.CandVals[ci]
		}
		assign = func(o core.Object) ([]int32, []float64) {
			return st.Assign(sp, o, e.l)
		}
	default:
		return nil, fmt.Errorf("ept: unknown variant %d", variant)
	}
	ids := ds.LiveIDs()
	pvs := make([][]int32, len(ids))
	dvs := make([][]float64, len(ids))
	core.ParallelFor(len(ids), opts.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			pvs[i], dvs[i] = assign(ds.Object(ids[i]))
		}
	})
	// Rows are appended in LiveIDs order regardless of worker count, so the
	// table is identical to a sequential build.
	for i, id := range ids {
		e.appendRow(id, pvs[i], dvs[i])
	}
	return e, nil
}

// newEmpty prepares an EPT shell shared by New and the snapshot loader.
func newEmpty(ds *core.Dataset, variant Variant, l int) *EPT {
	e := &EPT{
		ds:       ds,
		variant:  variant,
		l:        l,
		rowOf:    make(map[int]int),
		pivotVal: make(map[int32]core.Object),
		poolOf:   make(map[int32]int32),
		pcols:    make([][]int32, l),
		dcols:    make([][]float64, l),
	}
	e.kern, e.hasKern = core.PreKernelFor(ds.Space().Metric())
	return e
}

// poolIdx returns the dense pool index of a pivot id, admitting it to
// the pool on first reference.
func (e *EPT) poolIdx(p int32) int32 {
	if i, ok := e.poolOf[p]; ok {
		return i
	}
	i := int32(len(e.pool))
	e.pool = append(e.pool, e.pivotVal[p])
	e.poolIDs = append(e.poolIDs, p)
	e.poolOf[p] = i
	return i
}

// appendRow adds one object's row across the columns; short assignment
// rows pad with their last pivot (defensively, as the row-major layout
// did).
func (e *EPT) appendRow(id int, pv []int32, dv []float64) {
	row := len(e.ids)
	e.rowOf[id] = row
	e.ids = append(e.ids, int32(id))
	for c := 0; c < e.l; c++ {
		j := c
		if j >= len(pv) {
			j = len(pv) - 1
		}
		e.pcols[c] = append(e.pcols[c], e.poolIdx(pv[j]))
		e.dcols[c] = append(e.dcols[c], dv[j])
	}
	e.mirrorRow(row, e.ds.Object(id))
}

// mirrorRow appends the object to the coordinate mirror, arming it on
// row 0 and dropping it permanently on the first object that does not
// fit (see the LAESA twin).
func (e *EPT) mirrorRow(row int, o core.Object) {
	if e.noMirror || !e.hasKern {
		return
	}
	if o == nil {
		e.flat = nil
		e.noMirror = true
		return
	}
	if e.flat == nil {
		if row != 0 {
			e.noMirror = true
			return
		}
		if e.flat = core.NewFlatVecs(o); e.flat == nil {
			e.noMirror = true
			return
		}
	}
	if !e.flat.Append(o) {
		e.flat = nil
		e.noMirror = true
	}
}

// Name returns "EPT" or "EPT*".
func (e *EPT) Name() string {
	if e.variant == Star {
		return "EPT*"
	}
	return "EPT"
}

// Len returns the number of indexed objects.
func (e *EPT) Len() int { return len(e.ids) }

// useFlat reports whether the flat verification path is armed.
func (e *EPT) useFlat() bool {
	return e.hasKern && e.flat != nil && e.flat.Rows() == len(e.ids)
}

// queryPrep draws scratch, sizes the survivor and chunk buffers, and
// computes the query's distance to every pooled pivot through the batch
// kernel (the m·l term of the query cost). Per-row pruning happens in
// the search routines via the indexed column sweep.
func (e *EPT) queryPrep(q core.Object) *core.Scratch {
	sc := e.scratch.Get()
	qd := sc.GrowQD(len(e.pool))
	sc.GrowSur(len(e.ids))
	sc.GrowChunk(verifyChunk)
	e.ds.Space().DistanceMany(q, e.pool, qd)
	return sc
}

// RangeSearch answers MRQ(q, r) by a filtered table scan (same procedure
// as LAESA, §3.2): an indexed column sweep applies Lemma 1 per private
// pivot set, then survivors are verified.
func (e *EPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc := e.queryPrep(q)
	sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, 0, len(e.ids), r)
	var res []int
	if e.useFlat() {
		if q64, q32, ok := e.flat.QueryCoords(q, sc); ok {
			res = e.rangeFlat(q64, q32, sur, r)
			e.scratch.Put(sc)
			sort.Ints(res)
			return res, nil
		}
	}
	res = e.rangeObjs(q, sc, sur, r)
	e.scratch.Put(sc)
	sort.Ints(res)
	return res, nil
}

// rangeFlat verifies the surviving rows through the flat kernel.
func (e *EPT) rangeFlat(q64 []float64, q32 []float32, sur []int32, r float64) []int {
	var res []int
	for _, row := range sur {
		pre := e.flat.Pre(&e.kern, q64, q32, int(row))
		if e.kern.Exceeds(pre, r) {
			continue
		}
		if e.kern.Finish(pre) <= r {
			res = append(res, int(e.ids[row]))
		}
	}
	e.ds.Space().CountDistances(len(sur))
	return res
}

// rangeObjs verifies the surviving rows through DistanceMany in chunks.
func (e *EPT) rangeObjs(q core.Object, sc *core.Scratch, sur []int32, r float64) []int {
	objs := e.ds.Objects()
	sp := e.ds.Space()
	var res []int
	m := 0
	for _, row := range sur {
		id := e.ids[row]
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m < len(sc.IDs) {
			continue
		}
		sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
		for j := 0; j < m; j++ {
			if sc.Out[j] <= r {
				res = append(res, int(sc.IDs[j]))
			}
		}
		m = 0
	}
	if m > 0 {
		sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
		for j := 0; j < m; j++ {
			if sc.Out[j] <= r {
				res = append(res, int(sc.IDs[j]))
			}
		}
	}
	return res
}

// KNNSearch answers MkNNQ(q, k) with an infinite start radius tightened by
// verification, in storage order.
func (e *EPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sc := e.queryPrep(q)
	h := sc.Heap(k)
	if e.useFlat() {
		if q64, q32, ok := e.flat.QueryCoords(q, sc); ok {
			e.knnFlat(q64, q32, sc, h)
			res := h.Result()
			e.scratch.Put(sc)
			return res, nil
		}
	}
	e.knnObjs(q, sc, h)
	res := h.Result()
	e.scratch.Put(sc)
	return res, nil
}

// knnSeed bounds the heap-seeding prefix: the first min(k, n) rows are
// verified unconditionally (the scalar scan cannot prune them either —
// the radius stays infinite until the k-th push).
func (e *EPT) knnSeed(k int) int {
	if k > len(e.ids) {
		return len(e.ids)
	}
	return k
}

// knnFlat is the zero-allocation kNN hot loop (see the LAESA twin for
// the staging and equivalence argument): verify the seed prefix, sweep
// the remaining rows at the seeded radius, then re-apply Lemma 1 per
// survivor with the fresh radius before verifying through the flat
// kernel.
//
//metriclint:noalloc
func (e *EPT) knnFlat(q64 []float64, q32 []float32, sc *core.Scratch, h *core.KNNHeap) {
	seed := e.knnSeed(h.K())
	for row := 0; row < seed; row++ {
		pre := e.flat.Pre(&e.kern, q64, q32, row)
		h.Push(int(e.ids[row]), e.kern.Finish(pre))
	}
	ndist := seed
	for base, blk := seed, knnBlockMin; base < len(e.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(e.ids) {
			end = len(e.ids)
		}
		sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, base, end, h.Radius())
		for _, row := range sur {
			r := h.Radius()
			if core.PruneRowIndexedAt(sc.QD, e.pcols, e.dcols, int(row), r) {
				continue
			}
			pre := e.flat.Pre(&e.kern, q64, q32, int(row))
			ndist++
			if e.kern.Exceeds(pre, r) {
				continue
			}
			h.Push(int(e.ids[row]), e.kern.Finish(pre))
		}
	}
	e.ds.Space().CountDistances(ndist)
}

// knnObjs is the Object fallback: the same staged scan with candidates
// gathered into chunks verified through DistanceMany; the chunk-stale
// radius only admits candidates the heap rejects, so answers match the
// per-candidate scan.
//
//metriclint:noalloc
func (e *EPT) knnObjs(q core.Object, sc *core.Scratch, h *core.KNNHeap) {
	objs := e.ds.Objects()
	seed := e.knnSeed(h.K())
	m := 0
	for row := 0; row < seed; row++ {
		id := e.ids[row]
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m == len(sc.IDs) {
			e.flushKNN(q, sc, m, h)
			m = 0
		}
	}
	if m > 0 {
		e.flushKNN(q, sc, m, h)
		m = 0
	}
	for base, blk := seed, knnBlockMin; base < len(e.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(e.ids) {
			end = len(e.ids)
		}
		sur := core.SurviveColumnsIndexed(sc.Sur, sc.QD, e.pcols, e.dcols, base, end, h.Radius())
		for _, row := range sur {
			r := h.Radius()
			if core.PruneRowIndexedAt(sc.QD, e.pcols, e.dcols, int(row), r) {
				continue
			}
			id := e.ids[row]
			sc.IDs[m] = id
			sc.Objs[m] = objs[id]
			m++
			if m == len(sc.IDs) {
				e.flushKNN(q, sc, m, h)
				m = 0
			}
		}
	}
	if m > 0 {
		e.flushKNN(q, sc, m, h)
	}
}

//metriclint:noalloc
func (e *EPT) flushKNN(q core.Object, sc *core.Scratch, m int, h *core.KNNHeap) {
	e.ds.Space().DistanceMany(q, sc.Objs[:m], sc.Out[:m])
	for j := 0; j < m; j++ {
		h.Push(int(sc.IDs[j]), sc.Out[j])
	}
}

// Insert assigns pivots to the new object (group-extreme for EPT, PSA for
// EPT*) and appends its row. The assignment distances make EPT updates
// expensive, as Table 6 reports.
func (e *EPT) Insert(id int) error {
	if _, dup := e.rowOf[id]; dup {
		return fmt.Errorf("ept: duplicate insert of %d", id)
	}
	o := e.ds.Object(id)
	if o == nil {
		return fmt.Errorf("ept: insert of deleted or out-of-range id %d", id)
	}
	var pv []int32
	var dv []float64
	if e.variant == Original {
		// The original EPT re-estimates the group μ values before
		// assigning pivots to the new object — the dominant update cost
		// of Table 6.
		e.groups.ReestimateMu(e.ds, pivot.Options{Seed: int64(id)})
		pv, dv = e.groups.AssignExtreme(e.ds.Space(), o)
	} else {
		pv, dv = e.psa.Assign(e.ds.Space(), o, e.l)
	}
	e.appendRow(id, pv, dv)
	return nil
}

// Delete locates the row by sequential scan (as §6.3 describes) and
// removes it by a per-column swap with the last row.
func (e *EPT) Delete(id int) error {
	row := -1
	for i, rid := range e.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("ept: delete of unindexed object %d", id)
	}
	last := len(e.ids) - 1
	lastID := e.ids[last]
	e.ids[row] = lastID
	e.ids = e.ids[:last]
	for c := 0; c < e.l; c++ {
		pcol := e.pcols[c]
		pcol[row] = pcol[last]
		e.pcols[c] = pcol[:last]
		dcol := e.dcols[c]
		dcol[row] = dcol[last]
		e.dcols[c] = dcol[:last]
	}
	if e.flat != nil {
		e.flat.SwapDelete(row)
	}
	e.rowOf[int(lastID)] = row
	delete(e.rowOf, id)
	return nil
}

// PageAccesses returns 0: EPT is an in-memory index.
func (e *EPT) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (e *EPT) ResetStats() {}

// MemBytes reports the table size: EPT stores a pivot reference next to
// every distance, so it is larger than LAESA's table (Table 4), plus the
// coordinate mirror when armed.
func (e *EPT) MemBytes() int64 {
	n := int64(len(e.ids)) * 4
	for c := 0; c < e.l; c++ {
		n += int64(len(e.pcols[c]))*4 + int64(len(e.dcols[c]))*8
	}
	if e.flat != nil {
		n += e.flat.MemBytes()
	}
	return n
}

// DiskBytes returns 0.
func (e *EPT) DiskBytes() int64 { return 0 }
