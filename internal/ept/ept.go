// Package ept implements the Extreme Pivot Table of [24] (§3.2) and the
// paper's improved EPT*, which replaces the group-based extreme-pivot
// assignment with the PSA pivot-selection algorithm (Algorithm 1). Both
// are in-memory tables like LAESA, but each object carries its *own* l
// pivots, so every row stores (pivot id, distance) pairs (Fig 5).
package ept

import (
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
)

// Variant selects between the original EPT and the paper's EPT*.
type Variant int

// The two variants of §3.2.
const (
	// Original is EPT [24]: l random groups of m pivots; every object
	// takes the group member maximizing |d(o,p) − μ_p|.
	Original Variant = iota
	// Star is EPT*: per-object pivots chosen by PSA to maximize the
	// lower-bound/true-distance ratio. Much more expensive to build,
	// fewest compdists at query time (Fig 14).
	Star
)

// Options configures construction.
type Options struct {
	// L is the number of pivots per object (matches |P| of the other
	// indexes so comparisons are fair).
	L int
	// M is the EPT group size; 0 lets EstimateGroupSize pick it from
	// Equation (1) using Radius.
	M int
	// Radius feeds the group-size estimate (a typical query radius).
	Radius float64
	// Sel tunes pivot sampling.
	Sel pivot.Options
	// Workers parallelizes the per-object pivot assignment during
	// construction (the dominant cost, especially for EPT*): 0 or 1
	// builds sequentially, negative uses GOMAXPROCS, otherwise that many
	// goroutines. The resulting table is identical to a sequential build.
	Workers int
}

// EPT is the extreme pivot table index.
type EPT struct {
	ds      *core.Dataset
	variant Variant
	l       int

	ids   []int32   // row -> object id
	pids  []int32   // row-major rows × l pivot ids
	dists []float64 // row-major rows × l distances
	rowOf map[int]int

	// pivotVal snapshots pivot object values so queries keep working if a
	// pivot object is later deleted from the dataset.
	pivotVal map[int32]core.Object

	groups *pivot.Groups   // Original: assignment state for inserts
	psa    *pivot.PSAState // Star: assignment state for inserts
}

// New builds an EPT or EPT* over all live objects.
func New(ds *core.Dataset, variant Variant, opts Options) (*EPT, error) {
	if opts.L <= 0 {
		return nil, fmt.Errorf("ept: non-positive L %d", opts.L)
	}
	e := &EPT{
		ds:       ds,
		variant:  variant,
		l:        opts.L,
		rowOf:    make(map[int]int),
		pivotVal: make(map[int32]core.Object),
	}
	sp := ds.Space()
	// assign computes one object's row; it must be safe to call
	// concurrently, since construction fans the per-object assignments out
	// across Options.Workers goroutines (§6.2: objects are independent).
	var assign func(o core.Object) ([]int32, []float64)
	switch variant {
	case Original:
		m := opts.M
		if m <= 0 {
			r := opts.Radius
			if r <= 0 {
				r = 1
			}
			m = pivot.EstimateGroupSize(ds, opts.L, r, opts.Sel)
		}
		g, err := pivot.SelectGroups(ds, opts.L, m, opts.Sel)
		if err != nil {
			return nil, err
		}
		e.groups = g
		for gi := range g.IDs {
			for j := range g.IDs[gi] {
				e.pivotVal[g.IDs[gi][j]] = g.Vals[gi][j]
			}
		}
		assign = func(o core.Object) ([]int32, []float64) {
			return g.AssignExtreme(sp, o)
		}
	case Star:
		st, err := pivot.NewPSAState(ds, opts.Sel)
		if err != nil {
			return nil, err
		}
		e.l = min(e.l, len(st.CandVals))
		e.psa = st
		for ci := range st.CandIDs {
			e.pivotVal[st.CandIDs[ci]] = st.CandVals[ci]
		}
		assign = func(o core.Object) ([]int32, []float64) {
			return st.Assign(sp, o, e.l)
		}
	default:
		return nil, fmt.Errorf("ept: unknown variant %d", variant)
	}
	ids := ds.LiveIDs()
	pvs := make([][]int32, len(ids))
	dvs := make([][]float64, len(ids))
	core.ParallelFor(len(ids), opts.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			pvs[i], dvs[i] = assign(ds.Object(ids[i]))
		}
	})
	// Rows are appended in LiveIDs order regardless of worker count, so the
	// table is identical to a sequential build.
	for i, id := range ids {
		e.appendRow(id, pvs[i], dvs[i])
	}
	return e, nil
}

func (e *EPT) appendRow(id int, pv []int32, dv []float64) {
	e.rowOf[id] = len(e.ids)
	e.ids = append(e.ids, int32(id))
	e.pids = append(e.pids, pv...)
	e.dists = append(e.dists, dv...)
	for len(e.pids) < len(e.ids)*e.l { // defensive padding for short rows
		e.pids = append(e.pids, pv[len(pv)-1])
		e.dists = append(e.dists, dv[len(dv)-1])
	}
}

// Name returns "EPT" or "EPT*".
func (e *EPT) Name() string {
	if e.variant == Star {
		return "EPT*"
	}
	return "EPT"
}

// Len returns the number of indexed objects.
func (e *EPT) Len() int { return len(e.ids) }

// queryState memoizes d(q, p) per distinct pivot: the m·l term of the
// query cost (each pivot in the pool is computed at most once per query).
type queryState struct {
	e  *EPT
	q  core.Object
	qd map[int32]float64
}

func (s *queryState) dist(p int32) float64 {
	if d, ok := s.qd[p]; ok {
		return d
	}
	d := s.e.ds.Space().Distance(s.q, s.e.pivotVal[p])
	s.qd[p] = d
	return d
}

// prune applies Lemma 1 with the object's private pivots.
func (s *queryState) prune(row int, r float64) bool {
	l := s.e.l
	for i := row * l; i < row*l+l; i++ {
		if math.Abs(s.dist(s.e.pids[i])-s.e.dists[i]) > r {
			return true
		}
	}
	return false
}

// RangeSearch answers MRQ(q, r) by a filtered table scan (same procedure
// as LAESA, §3.2).
func (e *EPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	st := &queryState{e: e, q: q, qd: make(map[int32]float64, 2*e.l)}
	var res []int
	for row, id := range e.ids {
		if st.prune(row, r) {
			continue
		}
		if e.ds.DistanceTo(q, int(id)) <= r {
			res = append(res, int(id))
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) with an infinite start radius tightened by
// verification, in storage order.
func (e *EPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	st := &queryState{e: e, q: q, qd: make(map[int32]float64, 2*e.l)}
	h := core.NewKNNHeap(k)
	for row, id := range e.ids {
		r := h.Radius()
		if !math.IsInf(r, 1) && st.prune(row, r) {
			continue
		}
		h.Push(int(id), e.ds.DistanceTo(q, int(id)))
	}
	return h.Result(), nil
}

// Insert assigns pivots to the new object (group-extreme for EPT, PSA for
// EPT*) and appends its row. The assignment distances make EPT updates
// expensive, as Table 6 reports.
func (e *EPT) Insert(id int) error {
	if _, dup := e.rowOf[id]; dup {
		return fmt.Errorf("ept: duplicate insert of %d", id)
	}
	o := e.ds.Object(id)
	if o == nil {
		return fmt.Errorf("ept: insert of deleted or out-of-range id %d", id)
	}
	var pv []int32
	var dv []float64
	if e.variant == Original {
		// The original EPT re-estimates the group μ values before
		// assigning pivots to the new object — the dominant update cost
		// of Table 6.
		e.groups.ReestimateMu(e.ds, pivot.Options{Seed: int64(id)})
		pv, dv = e.groups.AssignExtreme(e.ds.Space(), o)
	} else {
		pv, dv = e.psa.Assign(e.ds.Space(), o, e.l)
	}
	e.appendRow(id, pv, dv)
	return nil
}

// Delete locates the row by sequential scan (as §6.3 describes) and
// removes it.
func (e *EPT) Delete(id int) error {
	row := -1
	for i, rid := range e.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("ept: delete of unindexed object %d", id)
	}
	l := e.l
	last := len(e.ids) - 1
	lastID := e.ids[last]
	e.ids[row] = lastID
	copy(e.pids[row*l:row*l+l], e.pids[last*l:last*l+l])
	copy(e.dists[row*l:row*l+l], e.dists[last*l:last*l+l])
	e.ids = e.ids[:last]
	e.pids = e.pids[:last*l]
	e.dists = e.dists[:last*l]
	e.rowOf[int(lastID)] = row
	delete(e.rowOf, id)
	return nil
}

// PageAccesses returns 0: EPT is an in-memory index.
func (e *EPT) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (e *EPT) ResetStats() {}

// MemBytes reports the table size: EPT stores a pivot id next to every
// distance, so it is larger than LAESA's table (Table 4).
func (e *EPT) MemBytes() int64 {
	return int64(len(e.dists))*8 + int64(len(e.pids))*4 + int64(len(e.ids))*4
}

// DiskBytes returns 0.
func (e *EPT) DiskBytes() int64 { return 0 }
