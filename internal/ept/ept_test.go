package ept

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func build(t *testing.T, ds *core.Dataset, v Variant) *EPT {
	t.Helper()
	idx, err := New(ds, v, Options{L: 4, Radius: 10, Sel: pivot.Options{Seed: 3, SampleSize: 128}})
	if err != nil {
		t.Fatalf("New(%v): %v", v, err)
	}
	return idx
}

// TestEPTEquivalence runs the shared metamorphic harness over both EPT
// variants (parallel == sequential answers, linear-scan correctness,
// insert-then-delete invariance) on vectors and words.
func TestEPTEquivalence(t *testing.T) {
	for _, v := range []Variant{Original, Star} {
		for _, ed := range testutil.EquivDatasets(false, 250, 7) {
			builder := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
				return New(ds, v, Options{
					L: 4, Radius: 10,
					Sel: pivot.Options{Seed: 3, SampleSize: 128}, Workers: workers,
				})
			}
			testutil.CheckEquivalence(t, ed, builder, testutil.EquivOptions{})
		}
	}
}

func TestEPTNames(t *testing.T) {
	ds := testutil.VectorDataset(60, 3, 100, core.L2{}, 7)
	if got := build(t, ds, Original).Name(); got != "EPT" {
		t.Fatalf("Name = %q, want EPT", got)
	}
	if got := build(t, ds, Star).Name(); got != "EPT*" {
		t.Fatalf("Name = %q, want EPT*", got)
	}
}

func TestEPTInsertDelete(t *testing.T) {
	for _, v := range []Variant{Original, Star} {
		ds := testutil.VectorDataset(150, 4, 100, core.L2{}, 9)
		idx := build(t, ds, v)
		for id := 0; id < 150; id += 5 {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("Delete(%d): %v", id, err)
			}
			if err := ds.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
			if err := idx.Insert(id); err != nil {
				t.Fatalf("Insert(%d): %v", id, err)
			}
		}
		q := testutil.RandomQuery(ds, 2)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 15)
	}
}

func TestEPTStarBuildCostExceedsEPT(t *testing.T) {
	mk := func(v Variant) int64 {
		ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 7)
		ds.Space().ResetCompDists()
		build(t, ds, v)
		return ds.Space().CompDists()
	}
	eptCost, starCost := mk(Original), mk(Star)
	if starCost <= eptCost {
		t.Fatalf("EPT* construction (%d compdists) should exceed EPT (%d), per Table 4", starCost, eptCost)
	}
}

func TestEPTErrors(t *testing.T) {
	ds := testutil.VectorDataset(50, 3, 100, core.L2{}, 7)
	if _, err := New(ds, Star, Options{L: 0}); err == nil {
		t.Fatal("L=0 must fail")
	}
	idx := build(t, ds, Star)
	if err := idx.Delete(999); err == nil {
		t.Fatal("Delete(999) should fail")
	}
	if err := idx.Insert(3); err == nil {
		t.Fatal("duplicate Insert should fail")
	}
}

func TestEPTWordsDataset(t *testing.T) {
	ds := testutil.WordDataset(200, 5)
	idx := build(t, ds, Star)
	q := testutil.RandomQuery(ds, 3)
	for _, r := range []float64{0, 1, 3} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 9)
}

func TestDiskEPTMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	p := store.NewPager(512)
	idx, err := NewDisk(ds, p, Options{L: 4, Sel: pivot.Options{Seed: 3}})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 9, 50, 300} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
	if idx.Name() != "DiskEPT*" {
		t.Fatalf("Name = %q", idx.Name())
	}
	if idx.DiskBytes() == 0 || idx.PageAccesses() == 0 {
		t.Fatal("DiskEPT* must live on disk")
	}
}

func TestDiskEPTInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(180, 4, 100, core.L2{}, 9)
	p := store.NewPager(512)
	idx, err := NewDisk(ds, p, Options{L: 3, Sel: pivot.Options{Seed: 5}})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	for id := 0; id < 180; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 13)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
	}
}

func TestDiskEPTFewerCompdistsThanOmniStyleScan(t *testing.T) {
	// The point of the extension: EPT*'s per-object pivots prune better
	// than a shared pivot set of the same size on a disk table.
	ds := testutil.VectorDataset(500, 8, 100, core.L2{}, 21)
	p := store.NewPager(1024)
	idx, err := NewDisk(ds, p, Options{L: 5, Sel: pivot.Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomQuery(ds, 5)
	ds.Space().ResetCompDists()
	if _, err := idx.RangeSearch(q, 10); err != nil {
		t.Fatal(err)
	}
	cost := ds.Space().CompDists()
	if cost >= int64(ds.Count()) {
		t.Fatalf("DiskEPT* spent %d compdists, no better than a scan of %d", cost, ds.Count())
	}
}

// TestEPTParallelBuildMatchesSequential checks that a parallel build
// (Options.Workers) produces a table byte-for-byte identical to the
// sequential build for both variants.
func TestEPTParallelBuildMatchesSequential(t *testing.T) {
	for _, v := range []Variant{Original, Star} {
		seqDS := testutil.VectorDataset(250, 4, 100, core.L2{}, 7)
		parDS := testutil.VectorDataset(250, 4, 100, core.L2{}, 7)
		opts := Options{L: 4, Radius: 10, Sel: pivot.Options{Seed: 3, SampleSize: 128}}
		seq, err := New(seqDS, v, opts)
		if err != nil {
			t.Fatalf("sequential New(%v): %v", v, err)
		}
		opts.Workers = 4
		par, err := New(parDS, v, opts)
		if err != nil {
			t.Fatalf("parallel New(%v): %v", v, err)
		}
		if !reflect.DeepEqual(seq.ids, par.ids) {
			t.Fatalf("%v: parallel build ids differ", v)
		}
		if !reflect.DeepEqual(seq.pcols, par.pcols) {
			t.Fatalf("%v: parallel build pivot columns differ", v)
		}
		if !reflect.DeepEqual(seq.poolIDs, par.poolIDs) {
			t.Fatalf("%v: parallel build pivot pools differ", v)
		}
		if !reflect.DeepEqual(seq.dcols, par.dcols) {
			t.Fatalf("%v: parallel build distances differ", v)
		}
		if !reflect.DeepEqual(seq.rowOf, par.rowOf) {
			t.Fatalf("%v: parallel build row map differs", v)
		}
	}
}

// TestDiskEPTParallelBuildMatchesSequential checks the disk-based EPT*'s
// parallel assignment produces the same on-disk layout and answers as a
// sequential build.
func TestDiskEPTParallelBuildMatchesSequential(t *testing.T) {
	seqDS := testutil.VectorDataset(250, 4, 100, core.L2{}, 7)
	parDS := testutil.VectorDataset(250, 4, 100, core.L2{}, 7)
	opts := Options{L: 4, Sel: pivot.Options{Seed: 3, SampleSize: 128}}
	seq, err := NewDisk(seqDS, store.NewPager(1024), opts)
	if err != nil {
		t.Fatalf("sequential NewDisk: %v", err)
	}
	opts.Workers = 4
	par, err := NewDisk(parDS, store.NewPager(1024), opts)
	if err != nil {
		t.Fatalf("parallel NewDisk: %v", err)
	}
	if s, p := seq.DiskBytes(), par.DiskBytes(); s != p {
		t.Fatalf("disk footprint differs: %d vs %d", s, p)
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(seqDS, qs)
		a, err := seq.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("MRQ answers differ: %v vs %v", a, b)
		}
	}
}
