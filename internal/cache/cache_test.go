package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/core"
)

// fillRange adapts a canned answer to the RangeFill shape, counting how
// often it actually computes.
func fillRange(calls *atomic.Int64, ids []int, epoch uint64) RangeFill {
	return func() ([]int, uint64, error) {
		calls.Add(1)
		return ids, epoch, nil
	}
}

func TestRangeHitMissAndEpochInvalidation(t *testing.T) {
	c := New(Options{})
	q := core.Vector{1, 2, 3}
	var calls atomic.Int64

	ids, ep, err := c.Range(q, 5, 7, fillRange(&calls, []int{1, 2, 3}, 7))
	if err != nil || ep != 7 || len(ids) != 3 {
		t.Fatalf("cold fill: ids=%v ep=%d err=%v", ids, ep, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("cold fill computed %d times", calls.Load())
	}

	// Same query, same epoch: served from cache, no compute.
	ids2, ep2, err := c.Range(q, 5, 7, fillRange(&calls, nil, 0))
	if err != nil || ep2 != 7 {
		t.Fatalf("hit: ep=%d err=%v", ep2, err)
	}
	if calls.Load() != 1 {
		t.Fatal("hit recomputed")
	}
	if fmt.Sprint(ids2) != fmt.Sprint(ids) {
		t.Fatalf("hit answer %v != fill answer %v", ids2, ids)
	}
	// Returned slices are private copies.
	ids2[0] = 999
	ids3, _, _ := c.Range(q, 5, 7, fillRange(&calls, nil, 0))
	if ids3[0] == 999 {
		t.Fatal("cached answer aliased a caller's slice")
	}

	// Epoch bump: the entry self-invalidates, the fill replaces it.
	ids4, ep4, err := c.Range(q, 5, 8, fillRange(&calls, []int{9}, 8))
	if err != nil || ep4 != 8 || len(ids4) != 1 || ids4[0] != 9 {
		t.Fatalf("post-bump fill: ids=%v ep=%d err=%v", ids4, ep4, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("post-bump lookup must miss; computed %d times", calls.Load())
	}
	// The old-epoch answer is gone: a lookup at epoch 7 misses too
	// (replaced in place, not versioned).
	if _, ok := c.GetRange(q, 5, 7); ok {
		t.Fatal("pre-bump answer survived the epoch bump")
	}
	if got, ok := c.GetRange(q, 5, 8); !ok || len(got) != 1 || got[0] != 9 {
		t.Fatalf("current-epoch answer: got=%v ok=%v", got, ok)
	}

	st := c.Stats()
	if st.Entries != 1 || st.Hits < 2 || st.Misses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestKNNHitAndParamSeparation(t *testing.T) {
	c := New(Options{})
	q := core.Word("hello")
	var calls atomic.Int64
	fill := func(n int) KNNFill {
		return func() ([]core.Neighbor, uint64, error) {
			calls.Add(1)
			nns := make([]core.Neighbor, n)
			for i := range nns {
				nns[i] = core.Neighbor{ID: i, Dist: float64(i)}
			}
			return nns, 3, nil
		}
	}
	if _, _, err := c.KNN(q, 5, 3, fill(5)); err != nil {
		t.Fatal(err)
	}
	// Different k is a different entry.
	if _, _, err := c.KNN(q, 10, 3, fill(10)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("k=5 and k=10 must fill separately; computed %d", calls.Load())
	}
	nns, _, err := c.KNN(q, 5, 3, fill(0))
	if err != nil || len(nns) != 5 {
		t.Fatalf("k=5 hit: %v %v", nns, err)
	}
	if calls.Load() != 2 {
		t.Fatal("k=5 hit recomputed")
	}
	// A range lookup with the same bits must not alias the kNN entry.
	if _, ok := c.GetRange(q, float64(5), 3); ok {
		t.Fatal("range lookup hit a kNN entry")
	}
}

func TestDistinctQueriesDistinctEntries(t *testing.T) {
	c := New(Options{})
	var calls atomic.Int64
	for i := 0; i < 50; i++ {
		q := core.Vector{float64(i)}
		if _, _, err := c.Range(q, 1, 1, fillRange(&calls, []int{i}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 50 {
		t.Fatalf("50 distinct queries computed %d times", calls.Load())
	}
	for i := 0; i < 50; i++ {
		ids, ok := c.GetRange(core.Vector{float64(i)}, 1, 1)
		if !ok || len(ids) != 1 || ids[0] != i {
			t.Fatalf("query %d: got %v ok=%v", i, ids, ok)
		}
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// One shard so the LRU order is globally observable; budget fits
	// only a handful of entries.
	c := New(Options{MaxBytes: 1024, Shards: 1})
	var calls atomic.Int64
	for i := 0; i < 100; i++ {
		q := core.Vector{float64(i)}
		if _, _, err := c.Range(q, 1, 1, fillRange(&calls, []int{i}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 1024 {
		t.Fatalf("resident %d bytes exceeds the 1024 budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("100 entries into a 1 KB budget must evict")
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
	// The most recent entry survives, the oldest is gone.
	if _, ok := c.GetRange(core.Vector{99}, 1, 1); !ok {
		t.Fatal("most recently filled entry was evicted")
	}
	if _, ok := c.GetRange(core.Vector{0}, 1, 1); ok {
		t.Fatal("oldest entry survived a full wrap of the budget")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(Options{MaxBytes: 3 * 200, Shards: 1}) // ~3 entries
	var calls atomic.Int64
	put := func(i int) {
		if _, _, err := c.Range(core.Vector{float64(i)}, 1, 1, fillRange(&calls, []int{i}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	put(0)
	put(1)
	put(2)
	// Touch 0 so 1 becomes the LRU victim of the next insert.
	if _, ok := c.GetRange(core.Vector{0}, 1, 1); !ok {
		t.Fatal("entry 0 missing")
	}
	put(3)
	if _, ok := c.GetRange(core.Vector{0}, 1, 1); !ok {
		t.Fatal("recently touched entry was evicted before the LRU one")
	}
}

func TestOversizedAnswerNotCached(t *testing.T) {
	c := New(Options{MaxBytes: 256, Shards: 1})
	big := make([]int, 10000)
	var calls atomic.Int64
	if _, _, err := c.Range(core.Word("q"), 1, 1, fillRange(&calls, big, 1)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized answer was cached: %+v", st)
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	var calls atomic.Int64
	fail := func() ([]int, uint64, error) { calls.Add(1); return nil, 0, boom }
	if _, _, err := c.Range(core.Word("q"), 1, 1, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The error must not be cached: the next attempt computes again.
	if _, _, err := c.Range(core.Word("q"), 1, 1, fillRange(&calls, []int{1}, 1)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("computed %d times, want 2", calls.Load())
	}
	if ids, ok := c.GetRange(core.Word("q"), 1, 1); !ok || len(ids) != 1 {
		t.Fatalf("recovered answer not cached: %v %v", ids, ok)
	}
}

// TestSingleflightCollapse proves concurrent identical misses run the
// fetch once: every waiter blocks until the leader's answer lands, then
// shares it.
func TestSingleflightCollapse(t *testing.T) {
	c := New(Options{})
	q := core.Vector{42}
	var calls atomic.Int64
	entered := make(chan struct{})
	unblock := make(chan struct{})
	slow := func() ([]int, uint64, error) {
		if calls.Add(1) == 1 {
			close(entered)
		}
		<-unblock
		return []int{7}, 5, nil
	}

	const waiters = 7
	var wg sync.WaitGroup
	results := make([][]int, waiters)
	errs := make([]error, waiters)
	wg.Add(1)
	go func() { // the leader
		defer wg.Done()
		_, _, _ = c.Range(q, 1, 5, slow)
	}()
	<-entered // the leader is inside the fetch and blocked on unblock
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.Range(q, 1, 5, slow)
		}(i)
	}
	// Give the waiters time to park on the flight; the leader cannot
	// publish until unblock closes, so none of them can compute.
	time.Sleep(50 * time.Millisecond)
	close(unblock)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fetch ran %d times for %d concurrent identical misses", n, waiters+1)
	}
	for i := range results {
		if errs[i] != nil || len(results[i]) != 1 || results[i][0] != 7 {
			t.Fatalf("waiter %d: ids=%v err=%v", i, results[i], errs[i])
		}
	}
	st := c.Stats()
	// A waiter that was scheduled before the leader published counts as
	// collapsed; one scheduled after counts as a plain hit. Either way
	// the fetch ran once, and every waiter was served without computing.
	if st.Collapsed+st.Hits != waiters {
		t.Fatalf("collapsed(%d) + hits(%d) != %d waiters", st.Collapsed, st.Hits, waiters)
	}
	if st.Collapsed == 0 {
		t.Fatal("no waiter collapsed onto the in-flight fill")
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestSingleflightEpochIsolation: a caller at a newer epoch must not be
// handed a fill running for an older epoch.
func TestSingleflightEpochIsolation(t *testing.T) {
	c := New(Options{})
	q := core.Vector{1}
	oldEntered := make(chan struct{})
	oldUnblock := make(chan struct{})
	go func() {
		_, _, _ = c.Range(q, 1, 1, func() ([]int, uint64, error) {
			close(oldEntered)
			<-oldUnblock
			return []int{1}, 1, nil
		})
	}()
	<-oldEntered
	// The old-epoch fill is in flight; a lookup at epoch 2 must compute
	// its own answer, not wait.
	done := make(chan struct{})
	var got []int
	var ep uint64
	go func() {
		defer close(done)
		got, ep, _ = c.Range(q, 1, 2, func() ([]int, uint64, error) {
			return []int{2}, 2, nil
		})
	}()
	<-done // completes while the epoch-1 fill is still blocked
	close(oldUnblock)
	if len(got) != 1 || got[0] != 2 || ep != 2 {
		t.Fatalf("epoch-2 caller got %v@%d", got, ep)
	}
}

// TestConcurrentMixedUse hammers the cache from many goroutines across
// overlapping queries, epochs, and kinds — the -race exercise for the
// shard locking and singleflight lifecycle.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(Options{MaxBytes: 64 << 10, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := core.Vector{float64(i % 17)}
				epoch := uint64(i % 3)
				switch (g + i) % 3 {
				case 0:
					ids, ep, err := c.Range(q, 2, epoch, func() ([]int, uint64, error) {
						return []int{i % 17}, epoch, nil
					})
					if err != nil || ep != epoch || len(ids) != 1 {
						t.Errorf("range: ids=%v ep=%d err=%v", ids, ep, err)
						return
					}
				case 1:
					nns, ep, err := c.KNN(q, 3, epoch, func() ([]core.Neighbor, uint64, error) {
						return []core.Neighbor{{ID: i % 17}}, epoch, nil
					})
					if err != nil || ep != epoch || len(nns) != 1 {
						t.Errorf("knn: nns=%v ep=%d err=%v", nns, ep, err)
						return
					}
				default:
					c.GetRange(q, 2, epoch)
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	// Answers remain keyed correctly after the storm.
	for i := 0; i < 17; i++ {
		q := core.Vector{float64(i)}
		for ep := uint64(0); ep < 3; ep++ {
			if ids, ok := c.GetRange(q, 2, ep); ok && ids[0] != i {
				t.Fatalf("query %d@%d served %v", i, ep, ids)
			}
		}
	}
}

func TestWordAndIntVectorKeys(t *testing.T) {
	c := New(Options{})
	var calls atomic.Int64
	if _, _, err := c.Range(core.IntVector{1, 2}, 1, 1, fillRange(&calls, []int{1}, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetRange(core.IntVector{1, 2}, 1, 1); !ok {
		t.Fatal("IntVector key missed")
	}
	if _, ok := c.GetRange(core.IntVector{1, 3}, 1, 1); ok {
		t.Fatal("distinct IntVector hit")
	}
	if _, ok := c.GetRange(core.Vector{1, 2}, 1, 1); ok {
		t.Fatal("Vector hit an IntVector entry")
	}
}

// TestFillPanicReleasesFlight: a panicking fetch must wake waiters with
// an error (not leave them blocked forever), cache nothing, keep the
// flight table clean, and still propagate the panic to the leader.
func TestFillPanicReleasesFlight(t *testing.T) {
	c := New(Options{})
	q := core.Vector{13}
	entered := make(chan struct{})
	unblock := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		_, _, _ = c.Range(q, 1, 4, func() ([]int, uint64, error) {
			close(entered)
			<-unblock
			panic("index exploded")
		})
	}()
	<-entered

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Range(q, 1, 4, func() ([]int, uint64, error) {
			return []int{1}, 4, nil
		})
		waiterDone <- err
	}()
	// Give the waiter a moment to park on the flight, then let the
	// leader panic. (If the waiter instead arrives later it computes
	// normally — either way it must not block forever.)
	time.Sleep(20 * time.Millisecond)
	close(unblock)

	if r := <-leaderDone; r == nil {
		t.Fatal("leader's panic was swallowed")
	}
	select {
	case err := <-waiterDone:
		if err != nil && !errors.Is(err, errFillPanicked) {
			t.Fatalf("waiter error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after the leader panicked")
	}

	// The flight is gone and nothing was cached: the next call computes.
	var calls atomic.Int64
	ids, ep, err := c.Range(q, 1, 4, fillRange(&calls, []int{9}, 4))
	if err != nil || calls.Load() != 1 || len(ids) != 1 || ids[0] != 9 || ep != 4 {
		t.Fatalf("post-panic fill: ids=%v ep=%d err=%v calls=%d", ids, ep, err, calls.Load())
	}
}
