package cache

import (
	"math"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// TestHitPathAllocs is the runtime witness for the noalloc annotations
// on the cache hit path: digesting the query and probing the shard must
// not allocate at all, and a Get on a resident entry spends exactly one
// allocation — the defensive copy of the answer handed to the caller.
func TestHitPathAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	c := New(Options{})
	// Held as the interface type: converting a Vector to core.Object at
	// each probe would itself box and charge the measurement one alloc.
	var q core.Object = core.Vector{1.5, -2.25, 3.125, 4}
	const (
		radius = 0.5
		epoch  = 7
	)
	if _, _, err := c.Range(q, radius, epoch, func() ([]int, uint64, error) {
		return []int{3, 5, 8}, epoch, nil
	}); err != nil {
		t.Fatal(err)
	}

	k := key{digest: digest(q, kindRange, math.Float64bits(radius), ""), kind: kindRange, param: math.Float64bits(radius)}
	misses := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if c.lookup(k, q, "", epoch) == nil {
			misses++
		}
	})
	if misses > 0 {
		t.Fatalf("lookup missed %d times on a resident entry", misses)
	}
	if allocs != 0 {
		t.Fatalf("digestless hit probe allocated %.1f times; want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		digest(q, kindRange, math.Float64bits(radius), "")
	})
	if allocs != 0 {
		t.Fatalf("digest allocated %.1f times; want 0", allocs)
	}

	hits := 0
	allocs = testing.AllocsPerRun(1000, func() {
		if ids, ok := c.GetRange(q, radius, epoch); ok && len(ids) == 3 {
			hits++
		}
	})
	if hits != 1001 {
		t.Fatalf("GetRange hit %d of 1001 probes on a resident entry", hits)
	}
	if allocs != 1 {
		t.Fatalf("GetRange spent %.1f allocations per hit; want exactly 1 (the answer copy)", allocs)
	}
}
