// Package cache is the epoch-keyed answer cache: a byte-budgeted,
// sharded LRU that memoizes whole query answers (MRQ id lists, MkNNQ
// neighbor lists) keyed by the query object, the query kind and
// parameter, and the index epoch the answer was observed at.
//
// The paper's only cache is the 128 KB page cache that reduces PA for
// the disk-based indexes; nothing there memoizes answers, so a hot
// query re-pays its full distance computations on every arrival. This
// cache elides that recomputable per-query work entirely: a hit costs a
// hash lookup and zero compdists, zero page accesses.
//
// Correctness comes from epoch keying. epoch.Live returns, from inside
// every search's read section, the monotone epoch of the dataset
// version the answer observed; the cache stores the answer under that
// epoch and serves it only to lookups at the same epoch. Any committed
// insert, delete or swap bumps the epoch, so every cached answer
// self-invalidates — there is no explicit invalidation path to get
// wrong. One entry exists per (query, kind, parameter); a fill at a
// newer epoch replaces the stale entry in place.
//
// Concurrent identical misses collapse through a per-shard singleflight:
// the first caller computes, the rest wait and share the answer (counted
// in Stats.Collapsed). Flights are keyed by epoch too, so a fill for an
// old dataset version is never handed to a caller at a newer one.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"

	"metricindex/internal/core"
)

// errFillPanicked is what singleflight waiters receive when the
// leader's fetch panicked: the flight is released (nothing is cached)
// and the panic propagates in the leader's goroutine.
var errFillPanicked = errors.New("cache: fill panicked")

// DefaultMaxBytes is the answer-byte budget used when Options.MaxBytes
// is unset: 32 MB, enough for hundreds of thousands of typical answers.
const DefaultMaxBytes = 32 << 20

// DefaultShards is the lock-striping factor used when Options.Shards is
// unset.
const DefaultShards = 16

// Options configures a Cache. The zero value gets DefaultMaxBytes and
// DefaultShards.
type Options struct {
	// MaxBytes bounds the estimated bytes of cached answers across all
	// shards; the least recently used entries are evicted beyond it.
	// <= 0 uses DefaultMaxBytes.
	MaxBytes int64
	// Shards is the lock-striping factor; <= 0 uses DefaultShards.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	return o
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits is the number of lookups served from a stored entry.
	Hits int64
	// Misses is the number of fills actually computed.
	Misses int64
	// Collapsed is the number of callers served by waiting on another
	// caller's in-flight fill (singleflight) instead of computing.
	Collapsed int64
	// Evictions counts entries dropped to stay inside the byte budget.
	Evictions int64
	// Entries and Bytes describe the currently resident answers.
	Entries int64
	Bytes   int64
	// MaxBytes echoes the configured budget.
	MaxBytes int64
}

// HitRate is the fraction of lookups that avoided computing: hits plus
// collapsed waiters over all lookups. Zero before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Collapsed
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Collapsed) / float64(total)
}

// kind discriminates the two query types in cache keys.
type kind uint8

const (
	kindRange kind = 1
	kindKNN   kind = 2
)

// key identifies one cached query: digest of the query object (and the
// filter predicate, for filtered searches), the query kind, and the
// parameter (radius bits or k). The epoch is deliberately NOT part of
// the map key — one entry lives per query, stamped with the epoch it
// was observed at, so a fill at a newer epoch replaces the stale answer
// instead of accumulating dead versions.
type key struct {
	digest uint64
	kind   kind
	param  uint64
}

// flightKey identifies one in-flight fill. Unlike entries, flights carry
// the epoch: a caller at a newer epoch must not wait on (and be handed)
// a fill for an older dataset version.
type flightKey struct {
	key   key
	epoch uint64
}

// flight is one in-flight fill other callers can wait on.
type flight struct {
	query  core.Object // collision guard, same as entry.query
	filter string      // collision guard, same as entry.filter
	done   chan struct{}
	ids    []int
	nns    []core.Neighbor
	epoch  uint64
	err    error
}

// entry is one resident answer. filter is the canonical predicate of a
// filtered search ("" for plain searches): it joins the digest in the
// key and the equality guard here, so a filtered answer can never be
// served to an unfiltered lookup or to a different predicate.
type entry struct {
	key    key
	query  core.Object
	filter string
	epoch  uint64
	ids    []int           // kindRange answers
	nns    []core.Neighbor // kindKNN answers
	bytes  int64
	elem   *list.Element
}

// shard is one lock stripe: an LRU over its share of the byte budget
// plus the singleflight table for fills that hash here.
type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[key]*entry
	lru      *list.List // front = most recently used
	flights  map[flightKey]*flight
}

// Cache is the epoch-keyed answer cache. Safe for concurrent use.
type Cache struct {
	shards    []*shard
	maxBytes  int64
	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	evictions atomic.Int64
}

// New builds a cache. The zero Options is valid (32 MB, 16 shards).
func New(opts Options) *Cache {
	opts = opts.withDefaults()
	c := &Cache{shards: make([]*shard, opts.Shards), maxBytes: opts.MaxBytes}
	per := opts.MaxBytes / int64(opts.Shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			maxBytes: per,
			entries:  make(map[key]*entry),
			lru:      list.New(),
			flights:  make(map[flightKey]*flight),
		}
	}
	return c
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		MaxBytes:  c.maxBytes,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += int64(len(sh.entries))
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

//metriclint:noalloc
func (c *Cache) shardFor(k key) *shard {
	return c.shards[k.digest%uint64(len(c.shards))]
}

// GetRange returns the cached MRQ answer for (q, r) observed at exactly
// the given epoch, or ok=false. The returned slice is the caller's to
// keep (a copy).
func (c *Cache) GetRange(q core.Object, r float64, epoch uint64) ([]int, bool) {
	return c.GetRangeFiltered(q, r, "", epoch)
}

// GetRangeFiltered is GetRange for a filtered search: filter is the
// canonical predicate ("" means unfiltered) and joins the key.
func (c *Cache) GetRangeFiltered(q core.Object, r float64, filter string, epoch uint64) ([]int, bool) {
	k := key{digest: digest(q, kindRange, math.Float64bits(r), filter), kind: kindRange, param: math.Float64bits(r)}
	e := c.lookup(k, q, filter, epoch)
	if e == nil {
		return nil, false
	}
	return append([]int(nil), e.ids...), true
}

// GetKNN returns the cached MkNNQ answer for (q, k) observed at exactly
// the given epoch, or ok=false. The returned slice is the caller's to
// keep (a copy).
func (c *Cache) GetKNN(q core.Object, kq int, epoch uint64) ([]core.Neighbor, bool) {
	return c.GetKNNFiltered(q, kq, "", epoch)
}

// GetKNNFiltered is GetKNN for a filtered search; see GetRangeFiltered.
func (c *Cache) GetKNNFiltered(q core.Object, kq int, filter string, epoch uint64) ([]core.Neighbor, bool) {
	k := key{digest: digest(q, kindKNN, uint64(kq), filter), kind: kindKNN, param: uint64(kq)}
	e := c.lookup(k, q, filter, epoch)
	if e == nil {
		return nil, false
	}
	return append([]core.Neighbor(nil), e.nns...), true
}

// lookup finds a resident entry matching (k, q, filter, epoch), touching
// its LRU position and counting the hit. Lookups that miss are not
// counted — the compute path (Range/KNN) counts exactly one miss per
// fill, so a peek-then-fill sequence is not double-counted.
//
//metriclint:noalloc
func (c *Cache) lookup(k key, q core.Object, filter string, epoch uint64) *entry {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e == nil || e.epoch != epoch || e.filter != filter || !objectEqual(e.query, q) {
		return nil
	}
	sh.lru.MoveToFront(e.elem)
	c.hits.Add(1)
	return e
}

// RangeFill computes a fresh MRQ answer, reporting the epoch it was
// observed at (epoch.Live.RangeSearchAt has exactly this shape).
type RangeFill func() ([]int, uint64, error)

// KNNFill computes a fresh MkNNQ answer, reporting the epoch it was
// observed at.
type KNNFill func() ([]core.Neighbor, uint64, error)

// Range answers MRQ(q, r) through the cache: a resident entry at the
// lookup epoch is returned immediately; otherwise concurrent identical
// misses collapse onto one fetch whose answer is stored under the epoch
// it observed and shared with every waiter. The returned epoch is the
// dataset version the answer is exact for (>= the lookup epoch when a
// write committed between the caller reading its epoch and the fetch
// running). Returned slices are copies — callers may keep and mutate
// them.
func (c *Cache) Range(q core.Object, r float64, epoch uint64, fetch RangeFill) ([]int, uint64, error) {
	return c.RangeFiltered(q, r, "", epoch, fetch)
}

// RangeFiltered is Range for a filtered search: filter is the canonical
// predicate ("" means unfiltered) and joins both the key digest and the
// collision guard, so answers for different predicates never mix.
func (c *Cache) RangeFiltered(q core.Object, r float64, filter string, epoch uint64, fetch RangeFill) ([]int, uint64, error) {
	k := key{digest: digest(q, kindRange, math.Float64bits(r), filter), kind: kindRange, param: math.Float64bits(r)}
	e, f, leader := c.acquire(k, q, filter, epoch)
	switch {
	case e != nil:
		return append([]int(nil), e.ids...), e.epoch, nil
	case f != nil && !leader:
		<-f.done
		if f.err != nil {
			return nil, 0, f.err
		}
		c.collapsed.Add(1)
		return append([]int(nil), f.ids...), f.epoch, nil
	}
	// The release is deferred so a panicking fetch still wakes every
	// waiter (with errFillPanicked, nothing cached) instead of leaving
	// them blocked on a dead flight; the panic itself propagates.
	var ids []int
	var ep uint64
	err := errFillPanicked
	defer func() {
		if f != nil {
			f.ids, f.epoch, f.err = ids, ep, err
		}
		c.release(k, flightKey{key: k, epoch: epoch}, f, q, filter, ep, ids, nil, err)
	}()
	ids, ep, err = fetch()
	c.misses.Add(1)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), ids...), ep, nil
}

// KNN answers MkNNQ(q, k) through the cache; see Range.
func (c *Cache) KNN(q core.Object, kq int, epoch uint64, fetch KNNFill) ([]core.Neighbor, uint64, error) {
	return c.KNNFiltered(q, kq, "", epoch, fetch)
}

// KNNFiltered is KNN for a filtered search; see RangeFiltered.
func (c *Cache) KNNFiltered(q core.Object, kq int, filter string, epoch uint64, fetch KNNFill) ([]core.Neighbor, uint64, error) {
	k := key{digest: digest(q, kindKNN, uint64(kq), filter), kind: kindKNN, param: uint64(kq)}
	e, f, leader := c.acquire(k, q, filter, epoch)
	switch {
	case e != nil:
		return append([]core.Neighbor(nil), e.nns...), e.epoch, nil
	case f != nil && !leader:
		<-f.done
		if f.err != nil {
			return nil, 0, f.err
		}
		c.collapsed.Add(1)
		return append([]core.Neighbor(nil), f.nns...), f.epoch, nil
	}
	// Deferred release: see Range.
	var nns []core.Neighbor
	var ep uint64
	err := errFillPanicked
	defer func() {
		if f != nil {
			f.nns, f.epoch, f.err = nns, ep, err
		}
		c.release(k, flightKey{key: k, epoch: epoch}, f, q, filter, ep, nil, nns, err)
	}()
	nns, ep, err = fetch()
	c.misses.Add(1)
	if err != nil {
		return nil, 0, err
	}
	return append([]core.Neighbor(nil), nns...), ep, nil
}

// PutRange stores an MRQ answer computed outside the cache (the traced
// search path bypasses Range's singleflight but still wants its answer
// resident). The fill is counted as one miss, mirroring what Range
// would have recorded. The ids slice is copied.
func (c *Cache) PutRange(q core.Object, r float64, epoch uint64, ids []int) {
	c.PutRangeFiltered(q, r, "", epoch, ids)
}

// PutRangeFiltered is PutRange for a filtered answer; see
// RangeFiltered.
func (c *Cache) PutRangeFiltered(q core.Object, r float64, filter string, epoch uint64, ids []int) {
	k := key{digest: digest(q, kindRange, math.Float64bits(r), filter), kind: kindRange, param: math.Float64bits(r)}
	c.misses.Add(1)
	sh := c.shardFor(k)
	sh.mu.Lock()
	c.store(sh, k, q, filter, epoch, append([]int(nil), ids...), nil)
	sh.mu.Unlock()
}

// PutKNN stores an MkNNQ answer computed outside the cache; see
// PutRange.
func (c *Cache) PutKNN(q core.Object, kq int, epoch uint64, nns []core.Neighbor) {
	c.PutKNNFiltered(q, kq, "", epoch, nns)
}

// PutKNNFiltered is PutKNN for a filtered answer; see RangeFiltered.
func (c *Cache) PutKNNFiltered(q core.Object, kq int, filter string, epoch uint64, nns []core.Neighbor) {
	k := key{digest: digest(q, kindKNN, uint64(kq), filter), kind: kindKNN, param: uint64(kq)}
	c.misses.Add(1)
	sh := c.shardFor(k)
	sh.mu.Lock()
	c.store(sh, k, q, filter, epoch, nil, append([]core.Neighbor(nil), nns...))
	sh.mu.Unlock()
}

// acquire resolves one cache attempt under the shard lock: a resident
// hit (e != nil), an existing flight to wait on (f != nil, leader
// false), or leadership of a new flight (f != nil, leader true). All
// nil means compute without singleflight — a digest collision is
// already in flight for a different query, too rare to serialize on.
func (c *Cache) acquire(k key, q core.Object, filter string, epoch uint64) (e *entry, f *flight, leader bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.entries[k]; e != nil && e.epoch == epoch && e.filter == filter && objectEqual(e.query, q) {
		sh.lru.MoveToFront(e.elem)
		c.hits.Add(1)
		return e, nil, false
	}
	fk := flightKey{key: k, epoch: epoch}
	if f = sh.flights[fk]; f != nil {
		if f.filter == filter && objectEqual(f.query, q) {
			return nil, f, false
		}
		return nil, nil, false // digest collision with the in-flight query
	}
	f = &flight{query: q, filter: filter, done: make(chan struct{})}
	sh.flights[fk] = f
	return nil, f, true
}

// release publishes a finished fill: the flight (if any) is closed so
// waiters wake, and a successful answer is stored under the epoch it
// observed, evicting LRU entries beyond the shard budget.
func (c *Cache) release(k key, fk flightKey, f *flight, q core.Object, filter string, epoch uint64, ids []int, nns []core.Neighbor, err error) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if f != nil {
		delete(sh.flights, fk)
	}
	if err == nil {
		c.store(sh, k, q, filter, epoch, ids, nns)
	}
	sh.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// store inserts or replaces the entry for k. Called with sh.mu held.
func (c *Cache) store(sh *shard, k key, q core.Object, filter string, epoch uint64, ids []int, nns []core.Neighbor) {
	size := entrySize(q, ids, nns) + int64(len(filter))
	if size > sh.maxBytes {
		return // larger than a whole stripe's budget: not cacheable
	}
	if old := sh.entries[k]; old != nil {
		if old.epoch > epoch {
			return // a fill for a newer dataset version already landed
		}
		sh.bytes -= old.bytes
		sh.lru.Remove(old.elem)
		delete(sh.entries, k)
	}
	e := &entry{key: k, query: q, epoch: epoch, ids: ids, nns: nns, bytes: size}
	e.elem = sh.lru.PushFront(e)
	sh.entries[k] = e
	sh.bytes += size
	for sh.bytes > sh.maxBytes {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.bytes
		c.evictions.Add(1)
	}
}

// entrySize estimates the resident bytes of one answer: a fixed
// per-entry overhead (map bucket, list element, headers) plus the query
// and answer payloads.
func entrySize(q core.Object, ids []int, nns []core.Neighbor) int64 {
	const overhead = 128
	return overhead + objectBytes(q) + int64(len(ids))*8 + int64(len(nns))*16
}

func objectBytes(q core.Object) int64 {
	switch v := q.(type) {
	case core.Vector:
		return int64(len(v)) * 8
	case core.IntVector:
		return int64(len(v)) * 4
	case core.Word:
		return int64(len(v))
	default:
		return 64
	}
}

// FNV-1a parameters for the key digest.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

//metriclint:noalloc
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

//metriclint:noalloc
func fnvWord(h uint64, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(w>>(8*i)))
	}
	return h
}

// digest hashes the query object together with the kind and parameter
// into the 64-bit FNV-1a key digest. Collisions are guarded by the full
// objectEqual comparison on every hit, so a collision can only cost a
// miss, never a wrong answer.
//
// The hashing runs as plain helper functions, not closures over the
// running hash: this is the cache hit path, and a capturing closure is
// one heap allocation per probe. (The default arm formats unknown object
// types through fmt and is the one allocating escape hatch; the three
// library object kinds stay on the annotated path.)
//
//metriclint:noalloc
func digest(q core.Object, kd kind, param uint64, filter string) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(kd))
	h = fnvWord(h, param)
	// The predicate joins the key through its canonical string: an
	// unfiltered query ("") and any filtered variant of the same (q,
	// param) hash — and compare — apart.
	h = fnvWord(h, uint64(len(filter)))
	for i := 0; i < len(filter); i++ {
		h = fnvByte(h, filter[i])
	}
	switch v := q.(type) {
	case core.Vector:
		for _, x := range v {
			h = fnvWord(h, math.Float64bits(x))
		}
	case core.IntVector:
		for _, x := range v {
			h = fnvWord(h, uint64(uint32(x)))
		}
	case core.Word:
		for i := 0; i < len(v); i++ {
			h = fnvByte(h, v[i])
		}
	default:
		s := fmt.Sprintf("%#v", q)
		for i := 0; i < len(s); i++ {
			h = fnvByte(h, s[i])
		}
	}
	return h
}

// objectEqual compares two query objects for exact equality — the
// collision guard behind every digest match. The library's three object
// types compare structurally; unknown types fall back to
// reflect.DeepEqual. The three structural arms are allocation-free —
// this comparison runs on every cache hit.
//
//metriclint:noalloc
func objectEqual(a, b core.Object) bool {
	switch x := a.(type) {
	case core.Vector:
		y, ok := b.(core.Vector)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			// Compare by bit pattern, matching the digest: NaN payloads
			// hash apart, so they must compare apart too.
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	case core.IntVector:
		y, ok := b.(core.IntVector)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case core.Word:
		y, ok := b.(core.Word)
		return ok && x == y
	default:
		return reflect.DeepEqual(a, b)
	}
}
