package epoch_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/plan"
)

// The churn property test: the planner's selectivity estimator is
// maintained incrementally under the epoch write lock, so (a) any read
// section observes an internally consistent estimator — no negative
// counts, no field outnumbering its rows — and (b) once writers
// quiesce, the estimator is bucket-for-bucket identical to a recount of
// the final dataset (bucketOf is a pure function of the value, so
// Remove inverts Observe exactly; incremental maintenance can never
// drift from a from-scratch rebuild).

var churnKinds = []string{"red", "green", "blue", "violet"}

func churnBag(rng *rand.Rand) core.Attrs {
	bag := core.Attrs{
		"kind": core.StringValue(churnKinds[rng.Intn(len(churnKinds))]),
		"size": core.IntValue(int64(rng.Intn(64))),
		"w":    core.FloatValue(rng.NormFloat64() * 10),
	}
	if rng.Intn(3) == 0 {
		bag["tags"] = core.TagsValue("hot")
	}
	return bag
}

func churnObject(rng *rand.Rand) core.Object {
	v := make(core.Vector, 4)
	for d := range v {
		v[d] = rng.Float64() * 100
	}
	return v
}

func TestPlanStatsConsistentUnderChurn(t *testing.T) {
	l := newLive(t, "LAESA", builders()["LAESA"], 300)

	// Attach bags to the seed objects so deletions exercise the
	// estimator's Remove path from the start.
	var initial []int
	l.View(func(ds *core.Dataset, _ core.Index) { initial = append(initial, ds.LiveIDs()...) })
	seedRng := rand.New(rand.NewSource(41))
	for _, id := range initial {
		if _, err := l.SetAttrsAt(id, churnBag(seedRng)); err != nil {
			t.Fatalf("SetAttrsAt(%d): %v", id, err)
		}
	}

	statFields := []string{"kind", "size", "w", "tags"}
	probe := mustParsePlan(t, `kind = "red" AND size < 32`)

	var (
		wg     sync.WaitGroup
		stop   atomic.Bool
		failed atomic.Pointer[error]
	)
	fail := func(err error) {
		e := err
		failed.CompareAndSwap(nil, &e)
		stop.Store(true)
	}

	// Writers own disjoint id pools, so no two ever race to remove the
	// same object; inserts, deletes, and in-place bag replacement all
	// interleave freely.
	const writers = 4
	for g := 0; g < writers; g++ {
		var owned []int
		for i := g; i < len(initial); i += writers {
			owned = append(owned, initial[i])
		}
		wg.Add(1)
		go func(g int, owned []int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for !stop.Load() {
				switch op := rng.Intn(3); {
				case op == 0 || len(owned) == 0:
					id, _, err := l.AddAttrsAt(churnObject(rng), churnBag(rng))
					if err != nil {
						fail(fmt.Errorf("AddAttrsAt: %w", err))
						return
					}
					owned = append(owned, id)
				case op == 1 && len(owned) > 8:
					i := rng.Intn(len(owned))
					if _, err := l.RemoveAt(owned[i]); err != nil {
						fail(fmt.Errorf("RemoveAt(%d): %w", owned[i], err))
						return
					}
					owned[i] = owned[len(owned)-1]
					owned = owned[:len(owned)-1]
				default:
					id := owned[rng.Intn(len(owned))]
					if _, err := l.SetAttrsAt(id, churnBag(rng)); err != nil {
						fail(fmt.Errorf("SetAttrsAt(%d): %w", id, err))
						return
					}
				}
			}
		}(g, owned)
	}

	// Samplers: each PlanStats call is one epoch read section; whatever
	// instant it lands on, the estimator must be internally consistent.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				l.PlanStats(func(st *plan.Stats) {
					rows := st.Rows()
					if rows < 0 {
						fail(fmt.Errorf("sampled Rows = %d", rows))
						return
					}
					for _, f := range statFields {
						if n := st.FieldRows(f); n < 0 || n > rows {
							fail(fmt.Errorf("sampled FieldRows(%q) = %d with %d rows", f, n, rows))
							return
						}
						for i, c := range st.HistogramCounts(f) {
							if c < 0 {
								fail(fmt.Errorf("sampled HistogramCounts(%q)[%d] = %d", f, i, c))
								return
							}
						}
					}
					if s := st.Selectivity(probe); s < 0 || s > 1 {
						fail(fmt.Errorf("sampled Selectivity = %v", s))
					}
				})
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if e := failed.Load(); e != nil {
		t.Fatal(*e)
	}

	// Post-hoc exactness: recount the quiesced dataset from scratch and
	// demand equality — rows, per-field counts, every histogram bucket,
	// and the exact-count tables for every discrete value in play.
	want := plan.NewStats()
	l.View(func(ds *core.Dataset, _ core.Index) {
		for _, id := range ds.LiveIDs() {
			want.Observe(ds.Attrs(id))
		}
	})
	l.PlanStats(func(st *plan.Stats) {
		if st.Rows() != want.Rows() {
			t.Errorf("Rows = %d, recount = %d", st.Rows(), want.Rows())
		}
		for _, f := range statFields {
			if got, w := st.FieldRows(f), want.FieldRows(f); got != w {
				t.Errorf("FieldRows(%q) = %d, recount = %d", f, got, w)
			}
			if !histEqual(st.HistogramCounts(f), want.HistogramCounts(f)) {
				t.Errorf("HistogramCounts(%q) diverged from recount:\n live: %v\n want: %v",
					f, st.HistogramCounts(f), want.HistogramCounts(f))
			}
		}
		for _, k := range churnKinds {
			if got, w := st.ValueRows("kind", k), want.ValueRows("kind", k); got != w {
				t.Errorf("ValueRows(kind, %q) = %d, recount = %d", k, got, w)
			}
		}
		if got, w := st.ValueRows("tags", "hot"), want.ValueRows("tags", "hot"); got != w {
			t.Errorf("ValueRows(tags, hot) = %d, recount = %d", got, w)
		}
	})
}

// histEqual compares bucket vectors, treating a nil histogram (field
// never seen) as all-zero.
func histEqual(a, b []int) bool {
	if len(a) != len(b) {
		for _, c := range a {
			if c != 0 {
				return false
			}
		}
		for _, c := range b {
			if c != 0 {
				return false
			}
		}
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustParsePlan(t *testing.T, src string) *plan.Predicate {
	t.Helper()
	p, err := plan.Parse(src)
	if err != nil {
		t.Fatalf("plan.Parse(%q): %v", src, err)
	}
	return p
}
