package epoch_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/exec"
)

// newCachedLive builds a Live with an answer cache over one index family.
func newCachedLive(t *testing.T, name string, build epoch.Builder, n int) (*epoch.Live, *cache.Cache) {
	t.Helper()
	l := newLive(t, name, build, n)
	c := cache.New(cache.Options{})
	l.SetCache(c)
	return l, c
}

// TestCachedAnswerIdentical is the equivalence proof across every index
// family (table, tree, disk, sharded): a cache hit must return answers
// byte-identical to the uncached call and to a brute-force scan, while
// computing zero distances.
func TestCachedAnswerIdentical(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			l, c := newCachedLive(t, name, build, 400)
			var space *core.Space
			l.View(func(ds *core.Dataset, _ core.Index) { space = ds.Space() })

			queries := make([]core.Object, 6)
			for i := range queries {
				queries[i] = randomQuery(l, int64(700+i))
			}
			const r, k = 25.0, 7

			// Pass 1 fills; keep the fresh answers.
			freshIDs := make([][]int, len(queries))
			freshNNs := make([][]core.Neighbor, len(queries))
			for i, q := range queries {
				var err error
				if freshIDs[i], err = l.RangeSearch(q, r); err != nil {
					t.Fatal(err)
				}
				if freshNNs[i], err = l.KNNSearch(q, k); err != nil {
					t.Fatal(err)
				}
			}

			// Pass 2 must be all hits: identical answers, zero compdists.
			base := space.CompDists()
			for i, q := range queries {
				ids, ep, err := l.RangeSearchAt(q, r)
				if err != nil {
					t.Fatal(err)
				}
				if ep != l.Epoch() {
					t.Fatalf("query %d: hit at epoch %d, live at %d", i, ep, l.Epoch())
				}
				if !reflect.DeepEqual(ids, freshIDs[i]) && !(len(ids) == 0 && len(freshIDs[i]) == 0) {
					t.Fatalf("query %d: cached MRQ %v != fresh %v", i, ids, freshIDs[i])
				}
				nns, _, err := l.KNNSearchAt(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(nns, freshNNs[i]) && !(len(nns) == 0 && len(freshNNs[i]) == 0) {
					t.Fatalf("query %d: cached MkNNQ %v != fresh %v", i, nns, freshNNs[i])
				}
			}
			if d := space.CompDists() - base; d != 0 {
				t.Fatalf("hit pass computed %d distances, want 0", d)
			}
			st := c.Stats()
			if st.Hits < int64(2*len(queries)) {
				t.Fatalf("hits = %d, want >= %d", st.Hits, 2*len(queries))
			}

			// The cached answers also agree with a brute-force scan.
			l.View(func(ds *core.Dataset, _ core.Index) {
				for i, q := range queries {
					want := core.BruteForceRange(ds, q, r)
					got := append([]int(nil), freshIDs[i]...)
					sort.Ints(got)
					if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
						t.Fatalf("query %d: MRQ %v, brute force %v", i, got, want)
					}
				}
			})
		})
	}
}

// TestCacheInvalidatedByEveryWritePath proves that each write path —
// Add, Remove, the Index-compat Insert/Delete, and Swap — bumps the
// epoch and makes the next lookup recompute rather than serve the
// pre-write answer.
func TestCacheInvalidatedByEveryWritePath(t *testing.T) {
	build := builders()["LAESA"]
	l, c := newCachedLive(t, "LAESA", build, 300)

	// A marker inside the data range but equal to no stored object: MRQ(marker, 0) is
	// exactly {marker} when present and {} when absent.
	marker := core.Vector{50.123, 60.456, 70.789, 80.101}

	expectAnswer := func(step string, wantPresent bool) {
		t.Helper()
		ids, ep, err := l.RangeSearchAt(marker, 0)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if ep != l.Epoch() {
			t.Fatalf("%s: answer epoch %d, live %d", step, ep, l.Epoch())
		}
		if wantPresent && len(ids) != 1 {
			t.Fatalf("%s: marker missing, got %v", step, ids)
		}
		if !wantPresent && len(ids) != 0 {
			t.Fatalf("%s: stale marker served, got %v", step, ids)
		}
	}

	expectAnswer("initial", false)
	expectAnswer("initial (cached)", false)

	id, err := l.Add(marker)
	if err != nil {
		t.Fatal(err)
	}
	expectAnswer("after Add", true)

	if err := l.Remove(id); err != nil {
		t.Fatal(err)
	}
	expectAnswer("after Remove", false)

	// Index-compat paths: the dataset is mutated by the caller.
	l.View(func(ds *core.Dataset, _ core.Index) { id = ds.Insert(marker) })
	if err := l.Insert(id); err != nil {
		t.Fatal(err)
	}
	expectAnswer("after Insert", true)
	if err := l.Delete(id); err != nil {
		t.Fatal(err)
	}
	l.View(func(ds *core.Dataset, _ core.Index) {
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	expectAnswer("after Delete", false)

	// Swap: prime the cache, cut over, and require a recompute (the new
	// structure answers, not the memo of the old one).
	expectAnswer("pre-swap (cached)", false)
	stBefore := c.Stats()
	if err := l.Swap(build); err != nil {
		t.Fatal(err)
	}
	expectAnswer("after Swap", false)
	stAfter := c.Stats()
	if stAfter.Misses == stBefore.Misses {
		t.Fatal("post-swap lookup was served from the pre-swap cache")
	}
}

// writeEvent is one committed marker state change, stamped with its
// commit epoch (AddAt/RemoveAt return it from inside the write section).
type writeEvent struct {
	epoch   uint64
	present bool
	id      int
}

// sample is one observed answer, stamped with the epoch it reports.
type sample struct {
	epoch uint64
	ids   []int
}

// stateAt returns the marker state current at the given epoch: the last
// event with event.epoch <= epoch (swap commits bump the epoch without
// an event, leaving the state unchanged).
func stateAt(events []writeEvent, epoch uint64) writeEvent {
	i := sort.Search(len(events), func(i int) bool { return events[i].epoch > epoch })
	if i == 0 {
		return writeEvent{}
	}
	return events[i-1]
}

// TestCacheNoStaleAnswersUnderChurn is the -race invalidation proof:
// readers hammer one hot (hence heavily cached) query while a writer
// flips a marker object in and out and a swapper repeatedly rebuilds
// and cuts the index over. Every observed answer must match the
// committed marker state at the exact epoch the answer reports — one
// stale cache entry served after its epoch passed fails the test.
func TestCacheNoStaleAnswersUnderChurn(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			l, c := newCachedLive(t, name, build, 200)
			marker := core.Vector{50.123, 60.456, 70.789, 80.101}

			var (
				mu     sync.Mutex
				events = []writeEvent{{epoch: 0, present: false}}
				stop   atomic.Bool
				wg     sync.WaitGroup
				fail   atomic.Pointer[error]
			)
			abort := func(err error) {
				e := err
				fail.CompareAndSwap(nil, &e)
				stop.Store(true)
			}

			// Readers: collect a fixed number of (epoch, answer) samples
			// each; verified post-hoc against the complete event log so
			// sampling never races the log append that follows a commit.
			const readsPerReader = 300
			var readersDone atomic.Int64
			samples := make([][]sample, 4)
			for g := range samples {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					defer readersDone.Add(1)
					for i := 0; i < readsPerReader && !stop.Load(); i++ {
						ids, ep, err := l.RangeSearchAt(marker, 0)
						if err != nil {
							abort(fmt.Errorf("reader: %w", err))
							return
						}
						samples[g] = append(samples[g], sample{epoch: ep, ids: ids})
					}
				}(g)
			}

			// Writer: flip the marker for as long as the readers sample
			// (bounded, so an aborted run cannot spin forever), logging
			// each commit epoch.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for i := 0; readersDone.Load() < int64(len(samples)) && !stop.Load() && i < 50000; i++ {
					id, ep, err := l.AddAt(marker)
					if err != nil {
						abort(fmt.Errorf("AddAt: %w", err))
						return
					}
					mu.Lock()
					events = append(events, writeEvent{epoch: ep, present: true, id: id})
					mu.Unlock()
					ep, err = l.RemoveAt(id)
					if err != nil {
						abort(fmt.Errorf("RemoveAt: %w", err))
						return
					}
					mu.Lock()
					events = append(events, writeEvent{epoch: ep, present: false})
					mu.Unlock()
				}
			}()

			// Swapper: cut the structure over repeatedly mid-churn.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					if err := l.Swap(build); err != nil && !errors.Is(err, epoch.ErrSwapInProgress) {
						abort(fmt.Errorf("Swap: %w", err))
						return
					}
				}
			}()

			wg.Wait()
			if errp := fail.Load(); errp != nil {
				t.Fatal(*errp)
			}

			total := 0
			for _, part := range samples {
				for _, s := range part {
					total++
					want := stateAt(events, s.epoch)
					if want.present {
						if len(s.ids) != 1 || s.ids[0] != want.id {
							t.Fatalf("epoch %d: marker committed as id %d, answer %v", s.epoch, want.id, s.ids)
						}
					} else if len(s.ids) != 0 {
						t.Fatalf("epoch %d: marker absent, stale answer %v", s.epoch, s.ids)
					}
				}
			}
			if total == 0 {
				t.Fatal("readers collected no samples")
			}
			// Deterministic hit check now that the churn has quiesced: the
			// second identical read must be served from the cache.
			if _, _, err := l.RangeSearchAt(marker, 0); err != nil {
				t.Fatal(err)
			}
			before := c.Stats()
			if _, _, err := l.RangeSearchAt(marker, 0); err != nil {
				t.Fatal(err)
			}
			if after := c.Stats(); after.Hits == before.Hits {
				t.Fatal("quiesced repeat lookup did not hit the cache")
			}
			checkQuiesced(t, l)
		})
	}
}

// TestCachedLiveThroughBatchEngine proves the engine's pre-dispatch
// probe composes with a cached Live: a second identical batch is served
// (almost) entirely from cache with zero distance computations, and its
// answers equal the first batch's.
func TestCachedLiveThroughBatchEngine(t *testing.T) {
	build := builders()["LAESA"]
	l, _ := newCachedLive(t, "LAESA", build, 400)
	var space *core.Space
	l.View(func(ds *core.Dataset, _ core.Index) { space = ds.Space() })
	eng := exec.New(space, exec.Options{Workers: 4})

	queries := make([]core.Object, 32)
	for i := range queries {
		queries[i] = randomQuery(l, int64(900+i))
	}
	cold, err := eng.BatchKNNSearch(context.Background(), l, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := space.CompDists()
	hot, err := eng.BatchKNNSearch(context.Background(), l, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := space.CompDists() - base; d != 0 {
		t.Fatalf("hot batch computed %d distances, want 0", d)
	}
	if hot.Stats.CacheHits != len(queries) {
		t.Fatalf("hot batch CacheHits = %d, want %d", hot.Stats.CacheHits, len(queries))
	}
	if !reflect.DeepEqual(cold.Neighbors, hot.Neighbors) {
		t.Fatal("hot batch answers differ from cold batch")
	}

	// A write invalidates: the next batch recomputes.
	if _, err := l.Add(core.Vector{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	post, err := eng.BatchKNNSearch(context.Background(), l, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if post.Stats.CacheHits != 0 {
		t.Fatalf("post-write batch reported %d stale hits", post.Stats.CacheHits)
	}
}
