package epoch

import (
	"time"

	"metricindex/internal/core"
	"metricindex/internal/obs"
	"metricindex/internal/plan"
)

// Obs carries the metric handles Live updates on its write and swap
// paths. All fields must be non-nil. Attach with SetObs; a Live without
// one records nothing. Read-side numbers (current epoch, page accesses,
// object count) are pull-based — register GaugeFuncs over the Live's
// accessors instead.
type Obs struct {
	// Swaps counts committed index swaps (mx_epoch_swaps_total).
	Swaps *obs.Counter
	// SwapSeconds is the duration of each successful swap, snapshot to
	// cutover (mx_epoch_swap_seconds).
	SwapSeconds *obs.Histogram
	// WriteWait is how long each write section waited to acquire the
	// write lock (mx_epoch_write_wait_seconds) — the back-pressure
	// readers put on writers.
	WriteWait *obs.Histogram
	// PlanPre/PlanProbe/PlanPost count executed filtered-query plans by
	// strategy (mx_plan_strategy_total{strategy=...}). Cache hits run no
	// plan and count on none of them. Unlike the write-path fields these
	// may be nil: a Live serving no filtered traffic needs none.
	PlanPre   *obs.Counter
	PlanProbe *obs.Counter
	PlanPost  *obs.Counter
}

// SetObs attaches metric handles. Safe to call at any time.
func (l *Live) SetObs(m *Obs) {
	l.metrics.Store(m)
}

// writeWait observes one write-lock acquisition wait. Called after
// Lock() returns with the wait measured by the caller; the metrics
// pointer is outside the lock discipline.
func (l *Live) writeWait(waited time.Duration) {
	if m := l.metrics.Load(); m != nil {
		m.WriteWait.Observe(waited.Seconds())
	}
}

// rangeTracer and knnTracer are the optional interfaces of wrapped
// indexes that can attribute trace spans below the read section (the
// sharded front records per-shard probes and the merge).
type rangeTracer interface {
	RangeSearchTraced(q core.Object, r float64, tr *obs.Trace) ([]int, error)
}

type knnTracer interface {
	KNNSearchTraced(q core.Object, k int, tr *obs.Trace) ([]core.Neighbor, error)
}

// RangeSearchTraced is RangeSearchAt recording the query's span
// timeline into tr: cache_probe (when a cache is attached), read_wait
// (time to acquire the read lock), and read_section with the compdists
// and page-access deltas the search spent. A nil tr degrades to
// RangeSearchAt.
//
// Traced misses bypass the cache's singleflight (collapsing onto
// another caller's fill would time that caller's work, not this
// query's) but still store their answer, so tracing a cold query warms
// the cache exactly like an untraced one.
func (l *Live) RangeSearchTraced(q core.Object, r float64, tr *obs.Trace) ([]int, uint64, error) {
	if tr == nil {
		return l.RangeSearchAt(q, r)
	}
	if c := l.cache.Load(); c != nil {
		probeStart := time.Now()
		ep := l.Epoch()
		ids, ok := c.GetRange(q, r, ep)
		tr.Add("cache_probe", probeStart, time.Since(probeStart), 0, 0)
		if ok {
			return ids, ep, nil
		}
		ids, obsEp, err := l.rangeDirectTraced(q, r, tr)
		if err != nil {
			return nil, 0, err
		}
		c.PutRange(q, r, obsEp, ids)
		return ids, obsEp, nil
	}
	return l.rangeDirectTraced(q, r, tr)
}

// KNNSearchTraced is KNNSearchAt with the span timeline of
// RangeSearchTraced.
func (l *Live) KNNSearchTraced(q core.Object, k int, tr *obs.Trace) ([]core.Neighbor, uint64, error) {
	if tr == nil {
		return l.KNNSearchAt(q, k)
	}
	if c := l.cache.Load(); c != nil {
		probeStart := time.Now()
		ep := l.Epoch()
		nns, ok := c.GetKNN(q, k, ep)
		tr.Add("cache_probe", probeStart, time.Since(probeStart), 0, 0)
		if ok {
			return nns, ep, nil
		}
		nns, obsEp, err := l.knnDirectTraced(q, k, tr)
		if err != nil {
			return nil, 0, err
		}
		c.PutKNN(q, k, obsEp, nns)
		return nns, obsEp, nil
	}
	return l.knnDirectTraced(q, k, tr)
}

// RangeSearchFilteredTraced is RangeSearchFiltered recording the span
// timeline of RangeSearchTraced plus a plan span carrying the strategy
// decision (see rangeFilteredDirectTraced). A nil tr degrades to
// RangeSearchFiltered; a nil predicate to RangeSearchTraced.
func (l *Live) RangeSearchFilteredTraced(q core.Object, r float64, p *plan.Predicate, tr *obs.Trace) ([]int, uint64, plan.Strategy, error) {
	if tr == nil {
		return l.RangeSearchFiltered(q, r, p)
	}
	if p == nil {
		ids, ep, err := l.RangeSearchTraced(q, r, tr)
		return ids, ep, 0, err
	}
	if c := l.cache.Load(); c != nil {
		probeStart := time.Now()
		ep := l.Epoch()
		ids, ok := c.GetRangeFiltered(q, r, p.String(), ep)
		tr.Add("cache_probe", probeStart, time.Since(probeStart), 0, 0)
		if ok {
			return ids, ep, 0, nil
		}
		ids, obsEp, st, err := l.rangeFilteredDirectTraced(q, r, p, tr)
		if err != nil {
			return nil, 0, 0, err
		}
		c.PutRangeFiltered(q, r, p.String(), obsEp, ids)
		return ids, obsEp, st, err
	}
	return l.rangeFilteredDirectTraced(q, r, p, tr)
}

// KNNSearchFilteredTraced is KNNSearchFiltered with the span timeline
// of RangeSearchFilteredTraced.
func (l *Live) KNNSearchFilteredTraced(q core.Object, k int, p *plan.Predicate, tr *obs.Trace) ([]core.Neighbor, uint64, plan.Strategy, error) {
	if tr == nil {
		return l.KNNSearchFiltered(q, k, p)
	}
	if p == nil {
		nns, ep, err := l.KNNSearchTraced(q, k, tr)
		return nns, ep, 0, err
	}
	if c := l.cache.Load(); c != nil {
		probeStart := time.Now()
		ep := l.Epoch()
		nns, ok := c.GetKNNFiltered(q, k, p.String(), ep)
		tr.Add("cache_probe", probeStart, time.Since(probeStart), 0, 0)
		if ok {
			return nns, ep, 0, nil
		}
		nns, obsEp, st, err := l.knnFilteredDirectTraced(q, k, p, tr)
		if err != nil {
			return nil, 0, 0, err
		}
		c.PutKNNFiltered(q, k, p.String(), obsEp, nns)
		return nns, obsEp, st, err
	}
	return l.knnFilteredDirectTraced(q, k, p, tr)
}

// rangeFilteredDirectTraced is rangeFilteredDirect with read_wait, plan
// and read_section spans. The plan span times the selectivity estimate
// and strategy choice; the strategy itself rides back on the return
// value (span labels carry no payload).
func (l *Live) rangeFilteredDirectTraced(q core.Object, r float64, p *plan.Predicate, tr *obs.Trace) ([]int, uint64, plan.Strategy, error) {
	waitStart := time.Now()
	l.mu.RLock()
	waited := time.Since(waitStart)
	defer l.mu.RUnlock()
	tr.Add("read_wait", waitStart, waited, 0, 0)
	planStart := time.Now()
	sel := l.stats.Selectivity(p)
	st := plan.Choose(sel, l.ds.Count(), plan.Capable(l.idx))
	tr.Add("plan", planStart, time.Since(planStart), 0, 0)
	compBase := l.ds.Space().CompDists()
	paBase := l.idx.PageAccesses()
	secStart := time.Now()
	ids, err := plan.ExecRange(l.ds, l.idx, p, q, r, st)
	dur := time.Since(secStart)
	pa := l.idx.PageAccesses() - paBase
	if pa < 0 {
		pa = 0
	}
	tr.Add("read_section", secStart, dur, l.ds.Space().CompDists()-compBase, pa)
	l.planCount(st)
	return ids, l.epoch, st, err
}

// knnFilteredDirectTraced is the kNN counterpart of
// rangeFilteredDirectTraced.
func (l *Live) knnFilteredDirectTraced(q core.Object, k int, p *plan.Predicate, tr *obs.Trace) ([]core.Neighbor, uint64, plan.Strategy, error) {
	waitStart := time.Now()
	l.mu.RLock()
	waited := time.Since(waitStart)
	defer l.mu.RUnlock()
	tr.Add("read_wait", waitStart, waited, 0, 0)
	planStart := time.Now()
	sel := l.stats.Selectivity(p)
	st := plan.Choose(sel, l.ds.Count(), plan.Capable(l.idx))
	tr.Add("plan", planStart, time.Since(planStart), 0, 0)
	compBase := l.ds.Space().CompDists()
	paBase := l.idx.PageAccesses()
	secStart := time.Now()
	nns, err := plan.ExecKNN(l.ds, l.idx, p, q, k, st, sel)
	dur := time.Since(secStart)
	pa := l.idx.PageAccesses() - paBase
	if pa < 0 {
		pa = 0
	}
	tr.Add("read_section", secStart, dur, l.ds.Space().CompDists()-compBase, pa)
	l.planCount(st)
	return nns, l.epoch, st, err
}

// rangeDirectTraced is rangeDirect with read_wait and read_section
// spans. Cost deltas are read inside the section from the structures
// the section already guards (never via the re-locking accessors, which
// could deadlock behind a queued writer). Compdists flow through the
// Space shared by every concurrent query, so under concurrency a span's
// delta can include neighbors' work — exact when one traced query runs
// alone, an upper bound otherwise.
func (l *Live) rangeDirectTraced(q core.Object, r float64, tr *obs.Trace) ([]int, uint64, error) {
	waitStart := time.Now()
	l.mu.RLock()
	waited := time.Since(waitStart)
	defer l.mu.RUnlock()
	tr.Add("read_wait", waitStart, waited, 0, 0)
	compBase := l.ds.Space().CompDists()
	paBase := l.idx.PageAccesses()
	secStart := time.Now()
	var ids []int
	var err error
	if ti, ok := l.idx.(rangeTracer); ok {
		ids, err = ti.RangeSearchTraced(q, r, tr)
	} else {
		ids, err = l.idx.RangeSearch(q, r)
	}
	dur := time.Since(secStart)
	pa := l.idx.PageAccesses() - paBase
	if pa < 0 {
		pa = 0
	}
	tr.Add("read_section", secStart, dur, l.ds.Space().CompDists()-compBase, pa)
	return ids, l.epoch, err
}

// knnDirectTraced is knnDirect with read_wait and read_section spans;
// see rangeDirectTraced.
func (l *Live) knnDirectTraced(q core.Object, k int, tr *obs.Trace) ([]core.Neighbor, uint64, error) {
	waitStart := time.Now()
	l.mu.RLock()
	waited := time.Since(waitStart)
	defer l.mu.RUnlock()
	tr.Add("read_wait", waitStart, waited, 0, 0)
	compBase := l.ds.Space().CompDists()
	paBase := l.idx.PageAccesses()
	secStart := time.Now()
	var nns []core.Neighbor
	var err error
	if ti, ok := l.idx.(knnTracer); ok {
		nns, err = ti.KNNSearchTraced(q, k, tr)
	} else {
		nns, err = l.idx.KNNSearch(q, k)
	}
	dur := time.Since(secStart)
	pa := l.idx.PageAccesses() - paBase
	if pa < 0 {
		pa = 0
	}
	tr.Add("read_section", secStart, dur, l.ds.Space().CompDists()-compBase, pa)
	return nns, l.epoch, err
}
