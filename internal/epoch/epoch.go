package epoch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/plan"
)

// Builder constructs the replacement index during a Swap. It receives a
// private snapshot of the dataset (same Space, same identifiers) and must
// index every live object in it; any constructor in the library serves.
type Builder func(ds *core.Dataset) (core.Index, error)

// ErrSwapInProgress is returned by Swap when a rebuild is already running.
var ErrSwapInProgress = errors.New("epoch: swap already in progress")

// Op names a journaled write, mirroring the four update paths of Live
// plus the swap marker. The numeric values are part of the on-disk WAL
// format (docs/PERSISTENCE.md) and must not be renumbered.
type Op uint8

const (
	// OpAdd is a Live.Add / Live.AddAt: object inserted into dataset and
	// index. The record carries the object.
	OpAdd Op = 1
	// OpRemove is a Live.Remove / Live.RemoveAt: object deleted from
	// index and dataset.
	OpRemove Op = 2
	// OpInsert is the index-only Live.Insert compatibility path. The
	// record carries the object (fetched from the dataset at append
	// time) so replay can restore it even if the snapshot predates it.
	OpInsert Op = 3
	// OpDelete is the index-only Live.Delete compatibility path.
	OpDelete Op = 4
	// OpSwap marks a committed Swap. The structure rebuild changes no
	// answers, so replay only advances the epoch.
	OpSwap Op = 5
	// OpSetAttrs is a Live.SetAttrsAt: the object's attribute bag
	// replaced in place. The record carries the new bag (nil clears).
	OpSetAttrs Op = 6
)

// Journal receives every committed write with the epoch it committed at,
// inside the committing write section and before the commit is
// acknowledged to the caller — the durability contract a write-ahead log
// needs. An Append error aborts the write: Live rolls the update back
// and returns the error. internal/persist.WAL is the on-disk
// implementation.
type Journal interface {
	Append(op Op, epoch uint64, id int, obj core.Object, attrs core.Attrs) error
}

// logEntry is one update recorded while a swap builds, for replay onto
// the replacement at cutover.
type logEntry struct {
	insert   bool
	setAttrs bool // attrs-only update: replace the bag, touch nothing else
	id       int
	obj      core.Object // the inserted object; nil for deletes
	attrs    core.Attrs  // the inserted object's attribute bag, if any
}

// Live is an index whose updates are epoch-synchronized with its
// searches. It implements core.Index, so it drops into everything that
// consumes one — the batch engine, the sharded front, the bench harness —
// while lifting the library-wide "do not interleave updates with
// searches" restriction for the structure it wraps.
//
// Live owns its dataset: mutate it only through Add and Remove (or the
// Insert/Delete compatibility methods), never directly, so that dataset
// and index always change inside the same write section.
type Live struct {
	mu       sync.RWMutex
	ds       *core.Dataset
	idx      core.Index
	epoch    uint64
	swapping bool
	log      []logEntry
	journal  Journal
	// cache is the optional epoch-keyed answer cache. Entries are keyed
	// by the epoch a search observed, so every committed write or swap
	// invalidates the whole working set for free; see SetCache.
	cache atomic.Pointer[cache.Cache]
	// metrics is the optional obs attachment (SetObs); outside the lock
	// discipline like cache.
	metrics atomic.Pointer[Obs]
	// stats is the planner's selectivity estimator, mutated only inside
	// write sections and read only inside read sections, so filtered
	// searches always plan against exactly the dataset version they
	// answer over.
	stats *plan.Stats
}

// NewLive wraps an index and the dataset it was built over, seeding the
// planner's selectivity estimator from the dataset's live objects.
func NewLive(ds *core.Dataset, idx core.Index) *Live {
	st := plan.NewStats()
	for id, o := range ds.Objects() {
		if o != nil {
			st.Observe(ds.Attrs(id))
		}
	}
	return &Live{ds: ds, idx: idx, stats: st}
}

// SetCache attaches (or, with nil, detaches) an epoch-keyed answer
// cache. Subsequent RangeSearch/KNNSearch calls consult it before
// touching the index: a hit returns the memoized answer — byte-identical
// to a fresh search, zero compdists, zero page accesses — and concurrent
// identical misses collapse onto one search. Correctness needs no
// flushing: entries are keyed by the epoch the answer observed, and
// every committed Add/Remove/Insert/Delete/Swap advances the epoch, so
// a search that starts after a write commits can never be served a
// pre-write answer.
func (l *Live) SetCache(c *cache.Cache) {
	l.cache.Store(c)
}

// CacheStats snapshots the attached cache's counters; ok is false when
// no cache is attached.
func (l *Live) CacheStats() (cache.Stats, bool) {
	c := l.cache.Load()
	if c == nil {
		return cache.Stats{}, false
	}
	return c.Stats(), true
}

// PeekRange returns the cached MRQ answer valid at the current epoch
// without computing anything on a miss — the batch engine's
// pre-dispatch probe (exec.AnswerCached). The returned slice is a
// private copy.
func (l *Live) PeekRange(q core.Object, r float64) ([]int, bool) {
	c := l.cache.Load()
	if c == nil {
		return nil, false
	}
	return c.GetRange(q, r, l.Epoch())
}

// PeekKNN returns the cached MkNNQ answer valid at the current epoch
// without computing anything on a miss (see PeekRange).
func (l *Live) PeekKNN(q core.Object, k int) ([]core.Neighbor, bool) {
	c := l.cache.Load()
	if c == nil {
		return nil, false
	}
	return c.GetKNN(q, k, l.Epoch())
}

// SetJournal attaches (or, with nil, detaches) a write-ahead journal.
// Every subsequently committed Add/Remove/Insert/Delete/Swap is appended
// to it — with the epoch the write committed at — inside the committing
// write section, so the journal observes exactly the committed sequence.
// If Append fails the write is rolled back and the error returned, so a
// caller never sees a commit the journal missed.
func (l *Live) SetJournal(j Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = j
}

// SetEpoch overwrites the epoch counter. It exists for restore paths
// that resurrect a Live at the epoch a snapshot was taken (see
// internal/persist); do not call it on a serving index — epochs must
// stay monotone for cache correctness.
func (l *Live) SetEpoch(e uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epoch = e
}

// Snapshot runs fn in a read section over the current dataset, index and
// epoch — like View, but exposing the epoch observed by the same read
// section (which an Epoch() call after View cannot guarantee) and
// propagating fn's error. It is the consistency primitive behind
// persist's snapshot writer.
func (l *Live) Snapshot(fn func(ds *core.Dataset, idx core.Index, epoch uint64) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fn(l.ds, l.idx, l.epoch)
}

// Apply replays one journal record onto the live structure without
// re-journaling it, setting the epoch to the record's epoch — the
// recovery path (records must arrive in their original order). OpAdd
// restores the object under its exact original id; OpInsert inserts the
// recorded object into the dataset first if the snapshot predates it;
// OpSwap only advances the epoch (a rebuild changes no answers).
func (l *Live) Apply(op Op, epoch uint64, id int, obj core.Object, attrs core.Attrs) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch op {
	case OpAdd:
		if err := l.ds.InsertAt(id, obj); err != nil {
			return err
		}
		if attrs != nil {
			if err := l.ds.SetAttrs(id, attrs); err != nil {
				return err
			}
		}
		if err := l.idx.Insert(id); err != nil {
			return err
		}
		l.stats.Observe(attrs)
	case OpRemove:
		a := l.ds.Attrs(id)
		if err := l.idx.Delete(id); err != nil {
			return err
		}
		if err := l.ds.Delete(id); err != nil {
			return err
		}
		l.stats.Remove(a)
	case OpInsert:
		if l.ds.Object(id) == nil {
			if err := l.ds.InsertAt(id, obj); err != nil {
				return err
			}
			if attrs != nil {
				if err := l.ds.SetAttrs(id, attrs); err != nil {
					return err
				}
			}
		}
		if err := l.idx.Insert(id); err != nil {
			return err
		}
		l.stats.Observe(l.ds.Attrs(id))
	case OpDelete:
		a := l.ds.Attrs(id)
		if err := l.idx.Delete(id); err != nil {
			return err
		}
		l.stats.Remove(a)
	case OpSetAttrs:
		old := l.ds.Attrs(id)
		if err := l.ds.SetAttrs(id, attrs); err != nil {
			return err
		}
		l.stats.Remove(old)
		l.stats.Observe(attrs)
	case OpSwap:
		// Structure rebuild: answers unchanged, only the epoch moves.
	default:
		return fmt.Errorf("epoch: unknown journal op %d", op)
	}
	if epoch > l.epoch {
		l.epoch = epoch
	}
	return nil
}

// journalAppend writes the record for the write section about to commit
// at epoch+1. Caller holds the write lock and must roll back on error.
//
//metriclint:locked
func (l *Live) journalAppend(op Op, id int, obj core.Object, attrs core.Attrs) error {
	if l.journal == nil {
		return nil
	}
	if err := l.journal.Append(op, l.epoch+1, id, obj, attrs); err != nil {
		return fmt.Errorf("epoch: journal append: %w", err)
	}
	return nil
}

// Epoch returns the number of committed write sections (updates and
// swaps). Two searches returning the same epoch observed the same dataset
// version.
func (l *Live) Epoch() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epoch
}

// View runs fn in a read section over the current dataset and index —
// the safe way to take a consistent look at both (stats, verification,
// snapshotting). fn must not mutate either and must not call back into l.
func (l *Live) View(fn func(ds *core.Dataset, idx core.Index)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fn(l.ds, l.idx)
}

// Add inserts a new object into the dataset and the index in one write
// section and returns its identifier.
func (l *Live) Add(o core.Object) (int, error) {
	id, _, err := l.AddAt(o)
	return id, err
}

// AddAt is Add reporting also the epoch the write committed at — unlike
// a separate Epoch() call, the returned value cannot include later
// writers' commits.
func (l *Live) AddAt(o core.Object) (int, uint64, error) {
	return l.AddAttrsAt(o, nil)
}

// AddAttrs is Add carrying an attribute bag for the new object; the bag
// becomes visible to filtered searches in the same committed epoch as
// the object itself.
func (l *Live) AddAttrs(o core.Object, a core.Attrs) (int, error) {
	id, _, err := l.AddAttrsAt(o, a)
	return id, err
}

// AddAttrsAt is AddAttrs reporting also the epoch the write committed
// at. A nil bag is an object with no attributes (matches no predicate).
func (l *Live) AddAttrsAt(o core.Object, a core.Attrs) (int, uint64, error) {
	if o == nil {
		return 0, 0, fmt.Errorf("epoch: add of nil object")
	}
	waitStart := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeWait(time.Since(waitStart))
	id := l.ds.Insert(o)
	if a != nil {
		if err := l.ds.SetAttrs(id, a); err != nil {
			_ = l.ds.Delete(id)
			return 0, l.epoch, err
		}
	}
	if err := l.idx.Insert(id); err != nil {
		_ = l.ds.Delete(id) // roll the dataset (and its attrs) back
		return 0, l.epoch, err
	}
	if err := l.journalAppend(OpAdd, id, o, a); err != nil {
		_ = l.idx.Delete(id)
		_ = l.ds.Delete(id)
		return 0, l.epoch, err
	}
	l.record(logEntry{insert: true, id: id, obj: o, attrs: a})
	l.stats.Observe(a)
	l.epoch++
	return id, l.epoch, nil
}

// Remove deletes the object from the index and the dataset in one write
// section.
func (l *Live) Remove(id int) error {
	_, err := l.RemoveAt(id)
	return err
}

// RemoveAt is Remove reporting also the epoch the write committed at.
func (l *Live) RemoveAt(id int) (uint64, error) {
	waitStart := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeWait(time.Since(waitStart))
	o := l.ds.Object(id) // captured for journal-failure rollback
	a := l.ds.Attrs(id)  // likewise, and for the estimator
	if err := l.idx.Delete(id); err != nil {
		return l.epoch, err
	}
	if err := l.ds.Delete(id); err != nil {
		return l.epoch, err
	}
	if err := l.journalAppend(OpRemove, id, nil, nil); err != nil {
		_ = l.ds.InsertAt(id, o)
		if a != nil {
			_ = l.ds.SetAttrs(id, a)
		}
		_ = l.idx.Insert(id)
		return l.epoch, err
	}
	l.record(logEntry{id: id})
	l.stats.Remove(a)
	l.epoch++
	return l.epoch, nil
}

// Insert implements core.Index for callers that manage the dataset
// themselves (the object must already be stored under id). Add is the
// fully synchronized path: a direct dataset mutation is not covered by
// the write section and must itself not race with in-flight searches.
func (l *Live) Insert(id int) error {
	waitStart := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeWait(time.Since(waitStart))
	o := l.ds.Object(id)
	if o == nil {
		return fmt.Errorf("epoch: insert of deleted or unknown object %d", id)
	}
	a := l.ds.Attrs(id)
	if err := l.idx.Insert(id); err != nil {
		return err
	}
	if err := l.journalAppend(OpInsert, id, o, a); err != nil {
		_ = l.idx.Delete(id)
		return err
	}
	l.record(logEntry{insert: true, id: id, obj: o, attrs: a})
	l.stats.Observe(a)
	l.epoch++
	return nil
}

// Delete implements core.Index for callers that manage the dataset
// themselves: it removes the object from the index only (per the Index
// contract the object stays in the dataset until the caller deletes it).
// Remove is the fully synchronized path.
func (l *Live) Delete(id int) error {
	waitStart := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeWait(time.Since(waitStart))
	if err := l.idx.Delete(id); err != nil {
		return err
	}
	if err := l.journalAppend(OpDelete, id, nil, nil); err != nil {
		o := l.ds.Object(id)
		if o != nil {
			_ = l.idx.Insert(id)
		}
		return err
	}
	l.record(logEntry{id: id})
	l.stats.Remove(l.ds.Attrs(id))
	l.epoch++
	return nil
}

// record appends to the operation log when a swap is building.
func (l *Live) record(e logEntry) {
	if l.swapping {
		l.log = append(l.log, e)
	}
}

// Swap rebuilds the index in the background and atomically cuts over.
//
// The dataset is snapshotted in one write section; build runs over the
// private snapshot with no locks held, so searches and updates proceed
// unhindered on the live structure for the whole rebuild. Updates
// committed during the build are recorded and replayed onto the
// replacement inside the final write section, then the snapshot dataset
// and the new index become current. If build fails, the live structure is
// untouched. One swap may run at a time; concurrent calls return
// ErrSwapInProgress.
func (l *Live) Swap(build Builder) error {
	if build == nil {
		return fmt.Errorf("epoch: nil builder")
	}
	swapStart := time.Now()
	l.mu.Lock()
	if l.swapping {
		l.mu.Unlock()
		return ErrSwapInProgress
	}
	l.swapping = true
	l.log = nil
	snap := snapshot(l.ds)
	l.mu.Unlock()

	idx, err := build(snap)
	if err == nil && idx == nil {
		err = fmt.Errorf("epoch: builder returned nil index")
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.swapping = false
	log := l.log
	l.log = nil
	if err != nil {
		return fmt.Errorf("epoch: swap build: %w", err)
	}
	if err := replay(snap, idx, log); err != nil {
		return fmt.Errorf("epoch: swap replay: %w", err)
	}
	// Discard construction-time page accesses so the counters keep
	// measuring serving cost across the cutover, exactly as the initial
	// build's post-construction reset does.
	idx.ResetStats()
	l.ds, l.idx = snap, idx
	l.epoch++
	if l.journal != nil {
		// The swap has committed — searches already see the new structure
		// (which answers identically) — so the marker cannot be rolled
		// back; surface the journal failure to the caller instead.
		if err := l.journal.Append(OpSwap, l.epoch, 0, nil, nil); err != nil {
			return fmt.Errorf("epoch: swap committed but journal append failed: %w", err)
		}
	}
	if m := l.metrics.Load(); m != nil {
		m.Swaps.Inc()
		m.SwapSeconds.Observe(time.Since(swapStart).Seconds())
	}
	return nil
}

// snapshot clones the dataset: same Space (compdists accounting stays
// global), same identifiers, copied object slots and attribute bags
// (bags are shared, not deep-copied — they are immutable once set).
func snapshot(ds *core.Dataset) *core.Dataset {
	objs := append([]core.Object(nil), ds.Objects()...)
	snap := core.NewDataset(ds.Space(), objs)
	snap.CopyAttrsFrom(ds)
	return snap
}

// replay applies the operation log to the replacement dataset and index.
// Entries are checked against the snapshot's occupancy so both paths into
// the log stay correct: an insert whose object already sits in the
// snapshot (dataset mutated before the snapshot, Insert committed after)
// was indexed by the build itself and is skipped; likewise a delete of an
// object the snapshot never held.
func replay(ds *core.Dataset, idx core.Index, log []logEntry) error {
	for _, e := range log {
		if e.setAttrs {
			if ds.Object(e.id) == nil {
				continue // removed before the cutover; nothing to update
			}
			if err := ds.SetAttrs(e.id, e.attrs); err != nil {
				return err
			}
			continue
		}
		if e.insert {
			if ds.Object(e.id) != nil {
				continue // already in the snapshot the build indexed
			}
			if err := ds.InsertAt(e.id, e.obj); err != nil {
				return err
			}
			if e.attrs != nil {
				if err := ds.SetAttrs(e.id, e.attrs); err != nil {
					return err
				}
			}
			if err := idx.Insert(e.id); err != nil {
				return err
			}
		} else {
			if ds.Object(e.id) == nil {
				continue // never made it into the snapshot
			}
			if err := idx.Delete(e.id); err != nil {
				return err
			}
			if err := ds.Delete(e.id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Name reports the wrapped index's name.
func (l *Live) Name() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.Name()
}

// RangeSearch answers MRQ(q, r) in a read section.
func (l *Live) RangeSearch(q core.Object, r float64) ([]int, error) {
	ids, _, err := l.RangeSearchAt(q, r)
	return ids, err
}

// RangeSearchAt is RangeSearch reporting also the epoch the search
// observed. Because answer and epoch come from the same read section,
// the pair is a valid cache entry: the answer is exactly the dataset
// version the epoch names (an Epoch() call after the search could
// already include later writes the answer does not). With a cache
// attached (SetCache) the answer may be served memoized — still exactly
// the pair some read section produced at the reported epoch.
func (l *Live) RangeSearchAt(q core.Object, r float64) ([]int, uint64, error) {
	if c := l.cache.Load(); c != nil {
		return c.Range(q, r, l.Epoch(), func() ([]int, uint64, error) {
			return l.rangeDirect(q, r)
		})
	}
	return l.rangeDirect(q, r)
}

// rangeDirect is the uncached read section behind RangeSearchAt — and
// the cache's fill function on a miss.
func (l *Live) rangeDirect(q core.Object, r float64) ([]int, uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids, err := l.idx.RangeSearch(q, r)
	return ids, l.epoch, err
}

// KNNSearch answers MkNNQ(q, k) in a read section.
func (l *Live) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	nns, _, err := l.KNNSearchAt(q, k)
	return nns, err
}

// KNNSearchAt is KNNSearch reporting also the epoch the search observed
// (see RangeSearchAt).
func (l *Live) KNNSearchAt(q core.Object, k int) ([]core.Neighbor, uint64, error) {
	if c := l.cache.Load(); c != nil {
		return c.KNN(q, k, l.Epoch(), func() ([]core.Neighbor, uint64, error) {
			return l.knnDirect(q, k)
		})
	}
	return l.knnDirect(q, k)
}

// knnDirect is the uncached read section behind KNNSearchAt.
func (l *Live) knnDirect(q core.Object, k int) ([]core.Neighbor, uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nns, err := l.idx.KNNSearch(q, k)
	return nns, l.epoch, err
}

// PageAccesses reports the wrapped index's counter.
func (l *Live) PageAccesses() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.PageAccesses()
}

// ResetStats zeroes the wrapped index's counters.
func (l *Live) ResetStats() {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.idx.ResetStats()
}

// MemBytes reports the wrapped index's resident size.
func (l *Live) MemBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.MemBytes()
}

// DiskBytes reports the wrapped index's simulated-disk size.
func (l *Live) DiskBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.DiskBytes()
}
