// Package epoch synchronizes index updates with in-flight searches, and
// makes the index itself a hot-swappable artifact: Live wraps any
// core.Index (tables, trees, disk structures, the sharded scatter-gather
// front) behind reader/writer epochs so Insert/Delete interleave safely
// with concurrent queries, and Swap replaces the structure wholesale —
// rebuilt in the background, cut over atomically — without dropping or
// corrupting a single answer.
//
// The library's indexes answer read-only queries against immutable
// structure state (which is what lets internal/exec run whole batches
// concurrently), but none of them synchronize updates with searches; the
// historical contract was "finish the batch, then update". Live removes
// that caveat. Searches run in shared read sections; Add/Remove (and the
// core.Index Insert/Delete) run in exclusive write sections; every
// committed write advances the epoch, a monotone counter that names the
// dataset version a search observed. The answer cache keys off exactly
// that counter (SetCache attaches one from internal/cache): answers are
// memoized under the epoch they were observed at, so every committed
// write invalidates the whole working set with no flush path at all.
//
// Swap is the graceful-rebuild path a long-lived server needs: the
// current dataset is snapshotted in one write section, the replacement
// index is built over the snapshot with no locks held (searches and
// updates proceed on the live structure the whole time), updates that
// arrived during the build are recorded in an operation log, and one
// final write section replays the log onto the replacement and flips it
// in. Searches before the flip see the old index with every update
// applied; searches after see the new index with every update applied;
// there is no window in which either misses a committed write.
package epoch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"metricindex/internal/cache"
	"metricindex/internal/core"
)

// Builder constructs the replacement index during a Swap. It receives a
// private snapshot of the dataset (same Space, same identifiers) and must
// index every live object in it; any constructor in the library serves.
type Builder func(ds *core.Dataset) (core.Index, error)

// ErrSwapInProgress is returned by Swap when a rebuild is already running.
var ErrSwapInProgress = errors.New("epoch: swap already in progress")

// logEntry is one update recorded while a swap builds, for replay onto
// the replacement at cutover.
type logEntry struct {
	insert bool
	id     int
	obj    core.Object // the inserted object; nil for deletes
}

// Live is an index whose updates are epoch-synchronized with its
// searches. It implements core.Index, so it drops into everything that
// consumes one — the batch engine, the sharded front, the bench harness —
// while lifting the library-wide "do not interleave updates with
// searches" restriction for the structure it wraps.
//
// Live owns its dataset: mutate it only through Add and Remove (or the
// Insert/Delete compatibility methods), never directly, so that dataset
// and index always change inside the same write section.
type Live struct {
	mu       sync.RWMutex
	ds       *core.Dataset
	idx      core.Index
	epoch    uint64
	swapping bool
	log      []logEntry
	// cache is the optional epoch-keyed answer cache. Entries are keyed
	// by the epoch a search observed, so every committed write or swap
	// invalidates the whole working set for free; see SetCache.
	cache atomic.Pointer[cache.Cache]
}

// NewLive wraps an index and the dataset it was built over.
func NewLive(ds *core.Dataset, idx core.Index) *Live {
	return &Live{ds: ds, idx: idx}
}

// SetCache attaches (or, with nil, detaches) an epoch-keyed answer
// cache. Subsequent RangeSearch/KNNSearch calls consult it before
// touching the index: a hit returns the memoized answer — byte-identical
// to a fresh search, zero compdists, zero page accesses — and concurrent
// identical misses collapse onto one search. Correctness needs no
// flushing: entries are keyed by the epoch the answer observed, and
// every committed Add/Remove/Insert/Delete/Swap advances the epoch, so
// a search that starts after a write commits can never be served a
// pre-write answer.
func (l *Live) SetCache(c *cache.Cache) {
	l.cache.Store(c)
}

// CacheStats snapshots the attached cache's counters; ok is false when
// no cache is attached.
func (l *Live) CacheStats() (cache.Stats, bool) {
	c := l.cache.Load()
	if c == nil {
		return cache.Stats{}, false
	}
	return c.Stats(), true
}

// PeekRange returns the cached MRQ answer valid at the current epoch
// without computing anything on a miss — the batch engine's
// pre-dispatch probe (exec.AnswerCached). The returned slice is a
// private copy.
func (l *Live) PeekRange(q core.Object, r float64) ([]int, bool) {
	c := l.cache.Load()
	if c == nil {
		return nil, false
	}
	return c.GetRange(q, r, l.Epoch())
}

// PeekKNN returns the cached MkNNQ answer valid at the current epoch
// without computing anything on a miss (see PeekRange).
func (l *Live) PeekKNN(q core.Object, k int) ([]core.Neighbor, bool) {
	c := l.cache.Load()
	if c == nil {
		return nil, false
	}
	return c.GetKNN(q, k, l.Epoch())
}

// Epoch returns the number of committed write sections (updates and
// swaps). Two searches returning the same epoch observed the same dataset
// version.
func (l *Live) Epoch() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epoch
}

// View runs fn in a read section over the current dataset and index —
// the safe way to take a consistent look at both (stats, verification,
// snapshotting). fn must not mutate either and must not call back into l.
func (l *Live) View(fn func(ds *core.Dataset, idx core.Index)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fn(l.ds, l.idx)
}

// Add inserts a new object into the dataset and the index in one write
// section and returns its identifier.
func (l *Live) Add(o core.Object) (int, error) {
	id, _, err := l.AddAt(o)
	return id, err
}

// AddAt is Add reporting also the epoch the write committed at — unlike
// a separate Epoch() call, the returned value cannot include later
// writers' commits.
func (l *Live) AddAt(o core.Object) (int, uint64, error) {
	if o == nil {
		return 0, 0, fmt.Errorf("epoch: add of nil object")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.ds.Insert(o)
	if err := l.idx.Insert(id); err != nil {
		_ = l.ds.Delete(id) // roll the dataset back
		return 0, l.epoch, err
	}
	l.record(logEntry{insert: true, id: id, obj: o})
	l.epoch++
	return id, l.epoch, nil
}

// Remove deletes the object from the index and the dataset in one write
// section.
func (l *Live) Remove(id int) error {
	_, err := l.RemoveAt(id)
	return err
}

// RemoveAt is Remove reporting also the epoch the write committed at.
func (l *Live) RemoveAt(id int) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.idx.Delete(id); err != nil {
		return l.epoch, err
	}
	if err := l.ds.Delete(id); err != nil {
		return l.epoch, err
	}
	l.record(logEntry{id: id})
	l.epoch++
	return l.epoch, nil
}

// Insert implements core.Index for callers that manage the dataset
// themselves (the object must already be stored under id). Add is the
// fully synchronized path: a direct dataset mutation is not covered by
// the write section and must itself not race with in-flight searches.
func (l *Live) Insert(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.ds.Object(id)
	if o == nil {
		return fmt.Errorf("epoch: insert of deleted or unknown object %d", id)
	}
	if err := l.idx.Insert(id); err != nil {
		return err
	}
	l.record(logEntry{insert: true, id: id, obj: o})
	l.epoch++
	return nil
}

// Delete implements core.Index for callers that manage the dataset
// themselves: it removes the object from the index only (per the Index
// contract the object stays in the dataset until the caller deletes it).
// Remove is the fully synchronized path.
func (l *Live) Delete(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.idx.Delete(id); err != nil {
		return err
	}
	l.record(logEntry{id: id})
	l.epoch++
	return nil
}

// record appends to the operation log when a swap is building.
func (l *Live) record(e logEntry) {
	if l.swapping {
		l.log = append(l.log, e)
	}
}

// Swap rebuilds the index in the background and atomically cuts over.
//
// The dataset is snapshotted in one write section; build runs over the
// private snapshot with no locks held, so searches and updates proceed
// unhindered on the live structure for the whole rebuild. Updates
// committed during the build are recorded and replayed onto the
// replacement inside the final write section, then the snapshot dataset
// and the new index become current. If build fails, the live structure is
// untouched. One swap may run at a time; concurrent calls return
// ErrSwapInProgress.
func (l *Live) Swap(build Builder) error {
	if build == nil {
		return fmt.Errorf("epoch: nil builder")
	}
	l.mu.Lock()
	if l.swapping {
		l.mu.Unlock()
		return ErrSwapInProgress
	}
	l.swapping = true
	l.log = nil
	snap := snapshot(l.ds)
	l.mu.Unlock()

	idx, err := build(snap)
	if err == nil && idx == nil {
		err = fmt.Errorf("epoch: builder returned nil index")
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.swapping = false
	log := l.log
	l.log = nil
	if err != nil {
		return fmt.Errorf("epoch: swap build: %w", err)
	}
	if err := replay(snap, idx, log); err != nil {
		return fmt.Errorf("epoch: swap replay: %w", err)
	}
	// Discard construction-time page accesses so the counters keep
	// measuring serving cost across the cutover, exactly as the initial
	// build's post-construction reset does.
	idx.ResetStats()
	l.ds, l.idx = snap, idx
	l.epoch++
	return nil
}

// snapshot clones the dataset: same Space (compdists accounting stays
// global), same identifiers, copied object slots.
func snapshot(ds *core.Dataset) *core.Dataset {
	objs := append([]core.Object(nil), ds.Objects()...)
	return core.NewDataset(ds.Space(), objs)
}

// replay applies the operation log to the replacement dataset and index.
// Entries are checked against the snapshot's occupancy so both paths into
// the log stay correct: an insert whose object already sits in the
// snapshot (dataset mutated before the snapshot, Insert committed after)
// was indexed by the build itself and is skipped; likewise a delete of an
// object the snapshot never held.
func replay(ds *core.Dataset, idx core.Index, log []logEntry) error {
	for _, e := range log {
		if e.insert {
			if ds.Object(e.id) != nil {
				continue // already in the snapshot the build indexed
			}
			if err := ds.InsertAt(e.id, e.obj); err != nil {
				return err
			}
			if err := idx.Insert(e.id); err != nil {
				return err
			}
		} else {
			if ds.Object(e.id) == nil {
				continue // never made it into the snapshot
			}
			if err := idx.Delete(e.id); err != nil {
				return err
			}
			if err := ds.Delete(e.id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Name reports the wrapped index's name.
func (l *Live) Name() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.Name()
}

// RangeSearch answers MRQ(q, r) in a read section.
func (l *Live) RangeSearch(q core.Object, r float64) ([]int, error) {
	ids, _, err := l.RangeSearchAt(q, r)
	return ids, err
}

// RangeSearchAt is RangeSearch reporting also the epoch the search
// observed. Because answer and epoch come from the same read section,
// the pair is a valid cache entry: the answer is exactly the dataset
// version the epoch names (an Epoch() call after the search could
// already include later writes the answer does not). With a cache
// attached (SetCache) the answer may be served memoized — still exactly
// the pair some read section produced at the reported epoch.
func (l *Live) RangeSearchAt(q core.Object, r float64) ([]int, uint64, error) {
	if c := l.cache.Load(); c != nil {
		return c.Range(q, r, l.Epoch(), func() ([]int, uint64, error) {
			return l.rangeDirect(q, r)
		})
	}
	return l.rangeDirect(q, r)
}

// rangeDirect is the uncached read section behind RangeSearchAt — and
// the cache's fill function on a miss.
func (l *Live) rangeDirect(q core.Object, r float64) ([]int, uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids, err := l.idx.RangeSearch(q, r)
	return ids, l.epoch, err
}

// KNNSearch answers MkNNQ(q, k) in a read section.
func (l *Live) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	nns, _, err := l.KNNSearchAt(q, k)
	return nns, err
}

// KNNSearchAt is KNNSearch reporting also the epoch the search observed
// (see RangeSearchAt).
func (l *Live) KNNSearchAt(q core.Object, k int) ([]core.Neighbor, uint64, error) {
	if c := l.cache.Load(); c != nil {
		return c.KNN(q, k, l.Epoch(), func() ([]core.Neighbor, uint64, error) {
			return l.knnDirect(q, k)
		})
	}
	return l.knnDirect(q, k)
}

// knnDirect is the uncached read section behind KNNSearchAt.
func (l *Live) knnDirect(q core.Object, k int) ([]core.Neighbor, uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nns, err := l.idx.KNNSearch(q, k)
	return nns, l.epoch, err
}

// PageAccesses reports the wrapped index's counter.
func (l *Live) PageAccesses() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.PageAccesses()
}

// ResetStats zeroes the wrapped index's counters.
func (l *Live) ResetStats() {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.idx.ResetStats()
}

// MemBytes reports the wrapped index's resident size.
func (l *Live) MemBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.MemBytes()
}

// DiskBytes reports the wrapped index's simulated-disk size.
func (l *Live) DiskBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.DiskBytes()
}
