// Package epoch synchronizes index updates with in-flight searches, and
// makes the index itself a hot-swappable, journalable artifact: Live
// wraps any core.Index (tables, trees, disk structures, the sharded
// scatter-gather front) behind reader/writer epochs so Insert/Delete
// interleave safely with concurrent queries, and Swap replaces the
// structure wholesale — rebuilt in the background, cut over atomically —
// without dropping or corrupting a single answer.
//
// The library's indexes answer read-only queries against immutable
// structure state (which is what lets internal/exec run whole batches
// concurrently), but none of them synchronize updates with searches; the
// historical contract was "finish the batch, then update". Live removes
// that caveat. Searches run in shared read sections; Add/Remove (and the
// core.Index Insert/Delete) run in exclusive write sections; every
// committed write advances the epoch, a monotone counter that names the
// dataset version a search observed. The answer cache keys off exactly
// that counter (SetCache attaches one from internal/cache): answers are
// memoized under the epoch they were observed at, so every committed
// write invalidates the whole working set with no flush path at all.
//
// Swap is the graceful-rebuild path a long-lived server needs: the
// current dataset is snapshotted in one write section, the replacement
// index is built over the snapshot with no locks held (searches and
// updates proceed on the live structure the whole time), updates that
// arrived during the build are recorded in an operation log, and one
// final write section replays the log onto the replacement and flips it
// in. Searches before the flip see the old index with every update
// applied; searches after see the new index with every update applied;
// there is no window in which either misses a committed write.
//
// Durability hooks onto the same write sections: SetJournal attaches a
// Journal (internal/persist provides the write-ahead log), every
// committed write is appended to it with the epoch it committed at
// before the commit is acknowledged, and on recovery Apply replays
// journal records onto a restored structure at their exact epochs. The
// on-disk formats are specified in docs/PERSISTENCE.md.
package epoch
