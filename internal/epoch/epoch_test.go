package epoch_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/exec"
	"metricindex/internal/mvpt"
	"metricindex/internal/pivot"
	"metricindex/internal/shard"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// builders returns one constructor per family — a table (LAESA), a tree
// (MVPT), a disk index (SPB-tree), and the sharded scatter-gather front —
// so the epoch guard is exercised against every update-path style in the
// repository. Each is an epoch.Builder, so the same function drives both initial
// construction and Swap rebuilds.
func builders() map[string]epoch.Builder {
	sel := func(ds *core.Dataset) ([]int, error) {
		return pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	}
	return map[string]epoch.Builder{
		"LAESA": func(ds *core.Dataset) (core.Index, error) {
			pv, err := sel(ds)
			if err != nil {
				return nil, err
			}
			return table.NewLAESA(ds, pv)
		},
		"MVPT": func(ds *core.Dataset) (core.Index, error) {
			pv, err := sel(ds)
			if err != nil {
				return nil, err
			}
			return mvpt.New(ds, pv, mvpt.Options{})
		},
		"SPB-tree": func(ds *core.Dataset) (core.Index, error) {
			pv, err := sel(ds)
			if err != nil {
				return nil, err
			}
			return spb.New(ds, store.NewPager(512), pv, spb.Options{MaxDistance: 400})
		},
		"Sharded": func(ds *core.Dataset) (core.Index, error) {
			return shard.New(ds, func(sub *core.Dataset) (core.Index, error) {
				pv, err := sel(sub)
				if err != nil {
					return nil, err
				}
				return table.NewLAESA(sub, pv)
			}, shard.Options{Shards: 3})
		},
	}
}

func newLive(t *testing.T, name string, build epoch.Builder, n int) *epoch.Live {
	t.Helper()
	ds := testutil.VectorDataset(n, 4, 100, core.L2{}, 9)
	idx, err := build(ds)
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	return epoch.NewLive(ds, idx)
}

// randomQuery synthesizes a query object from the live dataset in a read
// section.
func randomQuery(l *epoch.Live, seed int64) core.Object {
	var q core.Object
	l.View(func(ds *core.Dataset, _ core.Index) { q = testutil.RandomQuery(ds, seed) })
	return q
}

// checkQuiesced compares the live index's answers against a brute-force
// scan of its current dataset with no concurrent activity.
func checkQuiesced(t *testing.T, l *epoch.Live) {
	t.Helper()
	l.View(func(ds *core.Dataset, idx core.Index) {
		for qs := int64(0); qs < 3; qs++ {
			q := testutil.RandomQuery(ds, qs)
			testutil.CheckRange(t, idx, ds, q, 30)
			testutil.CheckKNN(t, idx, ds, q, 8)
		}
	})
}

// TestMixedReadWrite interleaves Add/Remove with concurrent range and kNN
// searches on every index family. Under -race this is the proof that the
// epoch guard removes the library-wide "do not interleave updates with
// searches" caveat; after quiescing, answers must match a linear scan of
// the final dataset.
func TestMixedReadWrite(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			l := newLive(t, name, build, 400)
			var (
				wg     sync.WaitGroup
				stop   atomic.Bool
				failed atomic.Pointer[error]
			)
			fail := func(err error) {
				e := err
				failed.CompareAndSwap(nil, &e)
				stop.Store(true)
			}

			// Readers: loop searches until the writer finishes. Answers are
			// checked structurally (no error, live-looking results); exact
			// answers are asserted after quiescing, since the baseline moves
			// underneath a concurrent scan.
			queries := make([]core.Object, 8)
			for i := range queries {
				queries[i] = randomQuery(l, int64(100+i))
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						q := queries[(g+i)%len(queries)]
						if g%2 == 0 {
							if _, err := l.RangeSearch(q, 25); err != nil {
								fail(fmt.Errorf("RangeSearch: %w", err))
								return
							}
						} else {
							nns, err := l.KNNSearch(q, 5)
							if err != nil {
								fail(fmt.Errorf("KNNSearch: %w", err))
								return
							}
							for _, nb := range nns {
								if nb.Dist < 0 {
									fail(fmt.Errorf("negative distance %v", nb.Dist))
									return
								}
							}
						}
					}
				}(g)
			}

			// Writer: churn 120 updates through the write path — remove
			// existing objects and add fresh ones — while the readers run.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for i := 0; i < 60; i++ {
					if err := l.Remove(i * 3); err != nil {
						fail(fmt.Errorf("Remove(%d): %w", i*3, err))
						return
					}
					if _, err := l.Add(core.Vector{float64(i), 50, 50, 50}); err != nil {
						fail(fmt.Errorf("Add: %w", err))
						return
					}
				}
			}()
			wg.Wait()
			if errp := failed.Load(); errp != nil {
				t.Fatal(*errp)
			}
			if got := l.Epoch(); got != 120 {
				t.Fatalf("epoch = %d, want 120 committed writes", got)
			}
			checkQuiesced(t, l)
		})
	}
}

// TestSwapUnderLoad rebuilds every index family while searches and
// updates hammer it: zero dropped queries, zero errors, answers exact
// after quiescing, and the epoch advances for every commit.
func TestSwapUnderLoad(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			l := newLive(t, name, build, 400)
			var before core.Index
			l.View(func(_ *core.Dataset, idx core.Index) { before = idx })

			var (
				wg      sync.WaitGroup
				stop    atomic.Bool
				failed  atomic.Pointer[error]
				queried atomic.Int64
			)
			fail := func(err error) {
				e := err
				failed.CompareAndSwap(nil, &e)
				stop.Store(true)
			}
			queries := make([]core.Object, 8)
			for i := range queries {
				queries[i] = randomQuery(l, int64(200+i))
			}
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						if _, err := l.KNNSearch(queries[(g+i)%len(queries)], 6); err != nil {
							fail(fmt.Errorf("KNNSearch during swap: %w", err))
							return
						}
						queried.Add(1)
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load() && i < 200; i++ {
					if err := l.Remove(i); err != nil {
						fail(fmt.Errorf("Remove(%d) during swap: %w", i, err))
						return
					}
					if _, err := l.Add(core.Vector{float64(i % 7), 42, 42, 42}); err != nil {
						fail(fmt.Errorf("Add during swap: %w", err))
						return
					}
				}
			}()

			// Each swap's builder waits until at least one query completes
			// mid-build, proving searches overlap the rebuild window (the
			// build holds no locks, so readers must progress).
			overlapping := func(ds *core.Dataset) (core.Index, error) {
				start := queried.Load()
				idx, err := build(ds)
				deadline := time.Now().Add(5 * time.Second)
				for queried.Load() <= start && failed.Load() == nil && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if queried.Load() <= start && failed.Load() == nil {
					return nil, errors.New("no query completed during the rebuild")
				}
				return idx, err
			}
			for s := 0; s < 3; s++ {
				if err := l.Swap(overlapping); err != nil {
					fail(fmt.Errorf("Swap %d: %w", s, err))
					break
				}
			}
			stop.Store(true)
			wg.Wait()
			if errp := failed.Load(); errp != nil {
				t.Fatal(*errp)
			}
			var after core.Index
			l.View(func(_ *core.Dataset, idx core.Index) { after = idx })
			if after == before {
				t.Fatal("swap did not replace the index")
			}
			checkQuiesced(t, l)
		})
	}
}

// TestSwapReplaysUpdates drives the replay path deterministically: the
// builder blocks mid-build while updates commit, and the cutover must
// carry every one of them into the replacement.
func TestSwapReplaysUpdates(t *testing.T) {
	build := builders()["LAESA"]
	l := newLive(t, "LAESA", build, 300)

	building := make(chan struct{})
	finish := make(chan struct{})
	slowBuild := func(ds *core.Dataset) (core.Index, error) {
		close(building)
		<-finish
		return build(ds)
	}

	done := make(chan error, 1)
	go func() { done <- l.Swap(slowBuild) }()
	<-building

	// Commit updates while the build is in flight: remove 10 snapshot
	// objects, add 5 new ones (one of which is removed again).
	for id := 0; id < 10; id++ {
		if err := l.Remove(id); err != nil {
			t.Fatalf("Remove(%d): %v", id, err)
		}
	}
	var added []int
	for i := 0; i < 5; i++ {
		id, err := l.Add(core.Vector{float64(1000 + i), 0, 0, 0})
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		added = append(added, id)
	}
	if err := l.Remove(added[4]); err != nil {
		t.Fatalf("Remove(added): %v", err)
	}
	close(finish)
	if err := <-done; err != nil {
		t.Fatalf("Swap: %v", err)
	}

	l.View(func(ds *core.Dataset, idx core.Index) {
		// Add reuses freed slots, so some of the removed ids were recycled
		// by the adds; the rest must be gone from the swapped-in dataset.
		recycled := make(map[int]bool, len(added))
		for _, id := range added {
			recycled[id] = true
		}
		for id := 0; id < 10; id++ {
			if !recycled[id] && ds.Object(id) != nil {
				t.Fatalf("removed object %d survived the swap", id)
			}
		}
		for i, id := range added[:4] {
			got, err := idx.RangeSearch(core.Vector{float64(1000 + i), 0, 0, 0}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0] != id {
				t.Fatalf("added object %d not found post-swap: got %v", id, got)
			}
		}
		if ds.Object(added[4]) != nil {
			t.Fatalf("add+remove pair: object %d should be gone", added[4])
		}
	})
	checkQuiesced(t, l)
}

// TestSwapInProgress rejects a second concurrent swap and recovers after
// a failed build.
func TestSwapInProgress(t *testing.T) {
	build := builders()["MVPT"]
	l := newLive(t, "MVPT", build, 200)

	building := make(chan struct{})
	finish := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- l.Swap(func(ds *core.Dataset) (core.Index, error) {
			close(building)
			<-finish
			return nil, errors.New("boom")
		})
	}()
	<-building
	if err := l.Swap(build); !errors.Is(err, epoch.ErrSwapInProgress) {
		t.Fatalf("concurrent swap: got %v, want epoch.ErrSwapInProgress", err)
	}
	close(finish)
	if err := <-done; err == nil {
		t.Fatal("failed build must surface its error")
	}
	// The failed swap must leave the live structure serving and unlocked.
	if err := l.Swap(build); err != nil {
		t.Fatalf("swap after failed swap: %v", err)
	}
	checkQuiesced(t, l)
}

// TestLiveThroughBatchEngine checks Live composes with internal/exec: a
// batch over a Live index runs concurrently with a writer, and every
// per-query answer is internally consistent (each query sees one epoch).
func TestLiveThroughBatchEngine(t *testing.T) {
	build := builders()["LAESA"]
	l := newLive(t, "LAESA", build, 400)
	var space *core.Space
	l.View(func(ds *core.Dataset, _ core.Index) { space = ds.Space() })
	eng := exec.New(space, exec.Options{Workers: 4})

	queries := make([]core.Object, 64)
	for i := range queries {
		queries[i] = randomQuery(l, int64(300+i))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := l.Remove(i * 2); err != nil {
				t.Errorf("Remove: %v", err)
				return
			}
			if _, err := l.Add(core.Vector{float64(i), 1, 2, 3}); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
		}
	}()
	res, err := eng.BatchKNNSearch(context.Background(), l, queries, 5)
	wg.Wait()
	if err != nil {
		t.Fatalf("BatchKNNSearch over Live: %v", err)
	}
	if res.Stats.Queries != len(queries) {
		t.Fatalf("dropped queries: got %d, want %d", res.Stats.Queries, len(queries))
	}
	checkQuiesced(t, l)
}
