package epoch

import (
	"metricindex/internal/core"
	"metricindex/internal/plan"
)

// Filtered search: the planner runs inside the same read section as the
// probe it plans, so the selectivity estimate, the strategy choice, and
// the answer all observe one dataset version. The returned Strategy is
// the plan that produced the answer; the zero value means the answer
// was served from the epoch-keyed cache (no plan ran at all).
//
// Filtered answers share the answer cache with unfiltered ones: the
// predicate's canonical string joins the cache key, so the same (q,
// param) with different filters — or no filter — can never collide.
//
// The pre-filter strategy scans the dataset, so filtered search assumes
// the dataset-managed write paths (Add/Remove): after an index-only
// Insert/Delete the dataset and index disagree about liveness and the
// strategies would disagree about the answer.

// RangeSearchFiltered answers MRQ(q, r) restricted to objects whose
// attribute bag satisfies p. A nil predicate is the unfiltered search.
func (l *Live) RangeSearchFiltered(q core.Object, r float64, p *plan.Predicate) ([]int, uint64, plan.Strategy, error) {
	if p == nil {
		ids, ep, err := l.RangeSearchAt(q, r)
		return ids, ep, 0, err
	}
	if c := l.cache.Load(); c != nil {
		var st plan.Strategy
		ids, ep, err := c.RangeFiltered(q, r, p.String(), l.Epoch(), func() ([]int, uint64, error) {
			ids, ep, s, err := l.rangeFilteredDirect(q, r, p)
			st = s
			return ids, ep, err
		})
		// st is still 0 when the cache answered (or another caller's
		// in-flight fill was joined): no plan ran for this query.
		return ids, ep, st, err
	}
	return l.rangeFilteredDirect(q, r, p)
}

func (l *Live) rangeFilteredDirect(q core.Object, r float64, p *plan.Predicate) ([]int, uint64, plan.Strategy, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids, st, err := plan.RunRange(l.ds, l.idx, l.stats, p, q, r)
	l.planCount(st)
	return ids, l.epoch, st, err
}

// KNNSearchFiltered answers MkNNQ(q, k) over objects whose attribute
// bag satisfies p (see RangeSearchFiltered). Fewer than k neighbors are
// returned only when fewer than k live objects match.
func (l *Live) KNNSearchFiltered(q core.Object, k int, p *plan.Predicate) ([]core.Neighbor, uint64, plan.Strategy, error) {
	if p == nil {
		nns, ep, err := l.KNNSearchAt(q, k)
		return nns, ep, 0, err
	}
	if c := l.cache.Load(); c != nil {
		var st plan.Strategy
		nns, ep, err := c.KNNFiltered(q, k, p.String(), l.Epoch(), func() ([]core.Neighbor, uint64, error) {
			nns, ep, s, err := l.knnFilteredDirect(q, k, p)
			st = s
			return nns, ep, err
		})
		return nns, ep, st, err
	}
	return l.knnFilteredDirect(q, k, p)
}

func (l *Live) knnFilteredDirect(q core.Object, k int, p *plan.Predicate) ([]core.Neighbor, uint64, plan.Strategy, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nns, st, err := plan.RunKNN(l.ds, l.idx, l.stats, p, q, k)
	l.planCount(st)
	return nns, l.epoch, st, err
}

// Selectivity estimates, in a read section, the fraction of live
// objects matching p — the planner's input, exposed for the stats
// endpoint and tests.
func (l *Live) Selectivity(p *plan.Predicate) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.stats.Selectivity(p)
}

// PlanStats runs fn over the planner's estimator in a read section —
// the consistency hook the churn property test verifies against. fn
// must not mutate the estimator or call back into l.
func (l *Live) PlanStats(fn func(s *plan.Stats)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fn(l.stats)
}

// SetAttrsAt replaces the attribute bag of a live object in one write
// section, keeping the estimator exact, and reports the epoch the
// write committed at. The object itself is untouched; the epoch still
// advances, so cached filtered answers from before the change cannot
// be served after it.
func (l *Live) SetAttrsAt(id int, a core.Attrs) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.ds.Attrs(id)
	if err := l.ds.SetAttrs(id, a); err != nil {
		return l.epoch, err
	}
	if err := l.journalAppend(OpSetAttrs, id, nil, a); err != nil {
		_ = l.ds.SetAttrs(id, old)
		return l.epoch, err
	}
	l.record(logEntry{setAttrs: true, id: id, attrs: a})
	l.stats.Remove(old)
	l.stats.Observe(a)
	l.epoch++
	return l.epoch, nil
}

// Attrs returns the attribute bag of a live object observed in a read
// section (nil when the object has none or the id is dead). The bag is
// shared — callers must not mutate it.
func (l *Live) Attrs(id int) core.Attrs {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ds.Attrs(id)
}

// planCount bumps the per-strategy plan counter, if metrics are
// attached. Called inside the read section that ran the plan.
func (l *Live) planCount(st plan.Strategy) {
	m := l.metrics.Load()
	if m == nil {
		return
	}
	switch st {
	case plan.StrategyPre:
		if m.PlanPre != nil {
			m.PlanPre.Inc()
		}
	case plan.StrategyProbe:
		if m.PlanProbe != nil {
			m.PlanProbe.Inc()
		}
	case plan.StrategyPost:
		if m.PlanPost != nil {
			m.PlanPost.Inc()
		}
	}
}
