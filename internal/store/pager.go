package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Process-wide page-traffic counters, summed across every Pager ever
// created. Unlike the per-instance counters these are never reset —
// swaps and experiment resets call ResetStats on their own volume, but
// a Prometheus counter must stay monotone — so the /metrics counter
// families read these while /v1/stats keeps its per-instance,
// resettable view.
var (
	globalPageReads  atomic.Int64
	globalPageWrites atomic.Int64
	globalCacheHits  atomic.Int64
)

// GlobalPageStats returns the process-wide monotone page-traffic
// counters: physical page reads, page writes, and pager-cache hits
// (reads satisfied without a page access).
func GlobalPageStats() (reads, writes, cacheHits int64) {
	return globalPageReads.Load(), globalPageWrites.Load(), globalCacheHits.Load()
}

// DefaultPageSize is the 4 KB page used by all indexes by default (§6.1).
const DefaultPageSize = 4096

// LargePageSize is the 40 KB page the paper gives CPT and the PM-tree on
// high-dimensional datasets so the trees keep a sane height (§6.1).
const LargePageSize = 40960

// DefaultCacheBytes is the 128 KB LRU cache enabled for MkNNQ processing
// on the disk-based indexes (§6.1).
const DefaultCacheBytes = 128 * 1024

// PageID identifies a page within a Pager. Zero is a valid page.
type PageID uint32

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(0xFFFFFFFF)

// Pager is a simulated disk volume: a growable array of fixed-size pages
// with read/write accounting and an optional LRU cache. A cache hit costs
// no page access; a miss or a write costs one. Pager is safe for
// concurrent use by multiple goroutines.
type Pager struct {
	mu        sync.Mutex
	pageSize  int
	pages     [][]byte
	freeList  []PageID
	reads     int64
	writes    int64
	cacheHits int64

	cacheCap int // capacity in pages; 0 disables the cache
	cacheLL  *list.List
	cacheMap map[PageID]*list.Element
}

// NewPager creates a volume with the given page size (DefaultPageSize when
// zero or negative). The cache starts disabled.
func NewPager(pageSize int) *Pager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Pager{
		pageSize: pageSize,
		cacheLL:  list.New(),
		cacheMap: make(map[PageID]*list.Element),
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// SetCacheBytes resizes the LRU buffer cache. Zero or negative disables
// caching (every read becomes a page access); any positive size rounds up
// to at least one page, so asking for a cache smaller than the page size
// does not silently disable it. Resizing clears the cache.
func (p *Pager) SetCacheBytes(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		p.cacheCap = 0
	} else {
		p.cacheCap = (n + p.pageSize - 1) / p.pageSize
	}
	p.cacheLL.Init()
	p.cacheMap = make(map[PageID]*list.Element)
}

// DropCache empties the buffer cache without changing its capacity, so a
// fresh experiment starts cold.
func (p *Pager) DropCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cacheLL.Init()
	p.cacheMap = make(map[PageID]*list.Element)
}

// Alloc returns a zeroed page, reusing freed pages first.
func (p *Pager) Alloc() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.freeList); n > 0 {
		id := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		clear(p.pages[id])
		return id
	}
	p.pages = append(p.pages, make([]byte, p.pageSize))
	return PageID(len(p.pages) - 1)
}

// Free releases a page for reuse.
func (p *Pager) Free(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.cacheMap[id]; ok {
		p.cacheLL.Remove(el)
		delete(p.cacheMap, id)
	}
	p.freeList = append(p.freeList, id)
}

// Read fetches a page. The returned slice aliases the stored page and must
// be treated as read-only; use Write to modify a page. A cache hit does
// not count as a page access.
func (p *Pager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return nil, fmt.Errorf("store: read of unallocated page %d (of %d)", id, len(p.pages))
	}
	if p.cacheCap > 0 {
		if el, ok := p.cacheMap[id]; ok {
			p.cacheLL.MoveToFront(el)
			p.cacheHits++
			globalCacheHits.Add(1)
			return p.pages[id], nil
		}
		p.cacheInsert(id)
	}
	p.reads++
	globalPageReads.Add(1)
	return p.pages[id], nil
}

// Write stores a full page image. Short data is zero-padded; oversized
// data is an error. Writing always counts as a page access (write-through).
func (p *Pager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("store: write of unallocated page %d (of %d)", id, len(p.pages))
	}
	if len(data) > p.pageSize {
		return fmt.Errorf("store: write of %d bytes exceeds page size %d", len(data), p.pageSize)
	}
	pg := p.pages[id]
	copy(pg, data)
	clear(pg[len(data):])
	p.writes++
	globalPageWrites.Add(1)
	if p.cacheCap > 0 {
		if el, ok := p.cacheMap[id]; ok {
			p.cacheLL.MoveToFront(el)
		} else {
			p.cacheInsert(id)
		}
	}
	return nil
}

// cacheInsert adds id to the cache, evicting the LRU page if needed.
// Caller holds the lock.
func (p *Pager) cacheInsert(id PageID) {
	p.cacheMap[id] = p.cacheLL.PushFront(id)
	for p.cacheLL.Len() > p.cacheCap {
		back := p.cacheLL.Back()
		p.cacheLL.Remove(back)
		delete(p.cacheMap, back.Value.(PageID))
	}
}

// PageAccesses returns reads+writes since the last ResetStats.
func (p *Pager) PageAccesses() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads + p.writes
}

// Reads returns the read count since the last ResetStats.
func (p *Pager) Reads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads
}

// Writes returns the write count since the last ResetStats.
func (p *Pager) Writes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

// CacheHits returns the buffer-cache hit count since the last
// ResetStats: reads answered without costing a page access.
func (p *Pager) CacheHits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cacheHits
}

// ResetStats zeroes the per-instance access counters. The process-wide
// counters behind GlobalPageStats are unaffected.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads, p.writes, p.cacheHits = 0, 0, 0
}

// Pages returns the number of allocated pages (including freed ones still
// owned by the volume).
func (p *Pager) Pages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// DiskBytes returns the simulated on-disk footprint in bytes: live pages
// times the page size.
func (p *Pager) DiskBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.pages)-len(p.freeList)) * int64(p.pageSize)
}
