package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metricindex/internal/core"
)

func TestPagerAllocReadWrite(t *testing.T) {
	p := NewPager(256)
	a := p.Alloc()
	b := p.Alloc()
	if a == b {
		t.Fatal("distinct allocations must differ")
	}
	if err := p.Write(a, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf, err := p.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("read %q", buf[:5])
	}
	for _, x := range buf[5:] {
		if x != 0 {
			t.Fatal("page tail must be zero-padded")
		}
	}
	if _, err := p.Read(PageID(99)); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := p.Write(a, make([]byte, 257)); err == nil {
		t.Fatal("oversized write must fail")
	}
}

func TestPagerAccounting(t *testing.T) {
	p := NewPager(256)
	a := p.Alloc()
	p.Write(a, []byte{1})
	p.Read(a)
	p.Read(a)
	if got := p.PageAccesses(); got != 3 {
		t.Fatalf("PA=%d, want 3 (1 write + 2 uncached reads)", got)
	}
	if p.Reads() != 2 || p.Writes() != 1 {
		t.Fatalf("reads=%d writes=%d", p.Reads(), p.Writes())
	}
	p.ResetStats()
	if p.PageAccesses() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPagerLRUCache(t *testing.T) {
	p := NewPager(256)
	p.SetCacheBytes(2 * 256) // room for 2 pages
	a, b, c := p.Alloc(), p.Alloc(), p.Alloc()
	p.Write(a, []byte{1})
	p.Write(b, []byte{2})
	p.Write(c, []byte{3})
	p.ResetStats()
	p.Read(c) // hit (most recent)
	p.Read(b) // hit
	if got := p.PageAccesses(); got != 0 {
		t.Fatalf("expected cache hits, PA=%d", got)
	}
	p.Read(a) // miss (evicted)
	if got := p.PageAccesses(); got != 1 {
		t.Fatalf("expected one miss, PA=%d", got)
	}
	// a's insertion evicted c.
	p.ResetStats()
	p.Read(c)
	if got := p.PageAccesses(); got != 1 {
		t.Fatalf("expected c evicted, PA=%d", got)
	}
	p.DropCache()
	p.ResetStats()
	p.Read(b)
	if p.PageAccesses() != 1 {
		t.Fatal("DropCache must clear entries")
	}
}

func TestPagerFreeReuse(t *testing.T) {
	p := NewPager(128)
	a := p.Alloc()
	p.Write(a, []byte{42})
	p.Free(a)
	b := p.Alloc()
	if a != b {
		t.Fatalf("freed page not reused: %d vs %d", a, b)
	}
	buf, _ := p.Read(b)
	if buf[0] != 0 {
		t.Fatal("reused page must be zeroed")
	}
	if p.DiskBytes() != 128 {
		t.Fatalf("DiskBytes=%d", p.DiskBytes())
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	objs := []core.Object{
		core.Vector{1.5, -2.25, 1e300, 0},
		core.Vector{},
		core.IntVector{1, -5, 1 << 30},
		core.Word("hello"),
		core.Word(""),
	}
	for _, o := range objs {
		buf := EncodeObject(nil, o)
		if len(buf) != EncodedObjectSize(o) {
			t.Fatalf("size mismatch for %v: %d vs %d", o, len(buf), EncodedObjectSize(o))
		}
		got, used, err := DecodeObject(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", o, err)
		}
		if used != len(buf) {
			t.Fatalf("decode consumed %d of %d", used, len(buf))
		}
		m := pickMetric(o)
		if m != nil && m.Distance(o, got) != 0 {
			t.Fatalf("round trip changed %v -> %v", o, got)
		}
	}
}

func pickMetric(o core.Object) core.Metric {
	switch o.(type) {
	case core.Vector:
		if len(o.(core.Vector)) == 0 {
			return nil
		}
		return core.L2{}
	case core.IntVector:
		return core.IntLInf{}
	case core.Word:
		return core.Edit{}
	}
	return nil
}

func TestObjectCodecErrors(t *testing.T) {
	if _, _, err := DecodeObject(nil); err == nil {
		t.Fatal("empty buffer must fail")
	}
	if _, _, err := DecodeObject([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown tag must fail")
	}
	buf := EncodeObject(nil, core.Vector{1, 2, 3})
	if _, _, err := DecodeObject(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated vector must fail")
	}
}

func TestFloatsCodec(t *testing.T) {
	f := func(a, b, c float64) bool {
		buf := EncodeFloats(nil, []float64{a, b, c})
		got, used, err := DecodeFloats(buf, 3)
		if err != nil || used != 24 {
			return false
		}
		return got[0] == a && got[1] == b && got[2] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFloats([]byte{1, 2}, 1); err == nil {
		t.Fatal("short buffer must fail")
	}
}

func TestRAFAppendRead(t *testing.T) {
	p := NewPager(64) // tiny pages force records to span pages
	r := NewRAF(p)
	rng := rand.New(rand.NewSource(5))
	payloads := make(map[int][]byte)
	for id := 0; id < 50; id++ {
		n := 1 + rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		payloads[id] = b
		if _, err := r.Append(id, b); err != nil {
			t.Fatalf("Append(%d): %v", id, err)
		}
	}
	for id, want := range payloads {
		got, err := r.Read(id)
		if err != nil {
			t.Fatalf("Read(%d): %v", id, err)
		}
		if string(got) != string(want) {
			t.Fatalf("Read(%d) mismatch (%d vs %d bytes)", id, len(got), len(want))
		}
	}
	if r.Len() != 50 {
		t.Fatalf("Len=%d", r.Len())
	}
}

func TestRAFSpanningRecordPACost(t *testing.T) {
	p := NewPager(64)
	r := NewRAF(p)
	big := make([]byte, 300) // spans ~5 pages
	if _, err := r.Append(1, big); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if _, err := r.Read(1); err != nil {
		t.Fatal(err)
	}
	if pa := p.PageAccesses(); pa < 5 {
		t.Fatalf("300-byte record on 64-byte pages must cost >=5 PA, got %d", pa)
	}
}

func TestRAFOffsetsAndIDs(t *testing.T) {
	p := NewPager(128)
	r := NewRAF(p)
	off1, _ := r.Append(7, []byte("abc"))
	off2, _ := r.Append(9, []byte("defgh"))
	if id, _ := r.IDAt(off1); id != 7 {
		t.Fatalf("IDAt(off1)=%d", id)
	}
	if id, _ := r.IDAt(off2); id != 9 {
		t.Fatalf("IDAt(off2)=%d", id)
	}
	got, err := r.ReadAt(off2)
	if err != nil || string(got) != "defgh" {
		t.Fatalf("ReadAt: %q %v", got, err)
	}
	if off, ok := r.Offset(7); !ok || off != off1 {
		t.Fatal("Offset lookup failed")
	}
}

func TestRAFDeleteAndErrors(t *testing.T) {
	p := NewPager(128)
	r := NewRAF(p)
	r.Append(1, []byte("x"))
	if _, err := r.Append(1, []byte("y")); err == nil {
		t.Fatal("duplicate append must fail")
	}
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(1); err == nil {
		t.Fatal("double delete must fail")
	}
	if _, err := r.Read(1); err == nil {
		t.Fatal("read of deleted record must fail")
	}
	if _, err := r.ReadAt(99999); err == nil {
		t.Fatal("out-of-range ReadAt must fail")
	}
}

// TestPagerSubPageCacheRoundsUp is the regression test for the silent
// cache disable: a positive cache size smaller than one page must still
// cache one page, not truncate the capacity to zero.
func TestPagerSubPageCacheRoundsUp(t *testing.T) {
	p := NewPager(4096)
	p.SetCacheBytes(2048) // smaller than a page: round up to 1 page
	a := p.Alloc()
	p.Write(a, []byte{1})
	p.ResetStats()
	p.Read(a)
	p.Read(a)
	if got := p.PageAccesses(); got != 0 {
		t.Fatalf("sub-page cache was disabled: PA=%d after cached reads", got)
	}
	// 5000 bytes on 4096-byte pages must hold 2 pages (ceiling), not 1.
	p.SetCacheBytes(5000)
	b := p.Alloc()
	p.Write(a, []byte{1})
	p.Write(b, []byte{2})
	p.ResetStats()
	p.Read(a)
	p.Read(b)
	if got := p.PageAccesses(); got != 0 {
		t.Fatalf("ceiling capacity lost a page: PA=%d", got)
	}
	// Zero and negative still disable.
	for _, n := range []int{0, -100} {
		p.SetCacheBytes(n)
		p.ResetStats()
		p.Read(a)
		p.Read(a)
		if got := p.PageAccesses(); got != 2 {
			t.Fatalf("SetCacheBytes(%d) should disable the cache: PA=%d", n, got)
		}
	}
}
