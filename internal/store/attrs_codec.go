package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
)

// Attribute-bag serialization, shared by the MIDX dataset files, the
// MXSNAP attrs section, and MXWAL records:
//
//	attrs: uint16 nFields | nFields × field
//	field: uint16 keyLen, key bytes | kind(1) | payload
//	  kind 1 (int):    int64 (little endian)
//	  kind 2 (float):  float64 bits
//	  kind 3 (string): uint16 len, raw bytes
//	  kind 4 (tags):   uint16 count, count × (uint16 len, raw bytes)
//
// Fields are written in sorted key order so the encoding of a given bag
// is deterministic (snapshot byte-stability tests rely on it).

// EncodeAttrs appends the serialized form of a to dst and returns the
// extended slice. A nil or empty bag encodes as a zero field count.
func EncodeAttrs(dst []byte, a core.Attrs) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(a)))
	if len(a) == 0 {
		return dst
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := a[k]
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case core.AttrInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
		case core.AttrFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
		case core.AttrString:
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Str())))
			dst = append(dst, v.Str()...)
		case core.AttrTags:
			tags := v.Tags()
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tags)))
			for _, t := range tags {
				dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t)))
				dst = append(dst, t...)
			}
		default:
			panic(fmt.Sprintf("store: cannot encode attr kind %d", v.Kind()))
		}
	}
	return dst
}

// DecodeAttrs parses one attribute bag from the front of buf, returning
// the bag (nil when it was empty) and the number of bytes consumed.
func DecodeAttrs(buf []byte) (core.Attrs, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("store: truncated attrs header (%d bytes)", len(buf))
	}
	nFields := int(binary.LittleEndian.Uint16(buf))
	off := 2
	if nFields == 0 {
		return nil, off, nil
	}
	a := make(core.Attrs, nFields)
	readStr := func() (string, error) {
		if len(buf)-off < 2 {
			return "", fmt.Errorf("store: truncated attrs string header")
		}
		n := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if len(buf)-off < n {
			return "", fmt.Errorf("store: truncated attrs string of %d bytes", n)
		}
		s := string(buf[off : off+n])
		off += n
		return s, nil
	}
	for i := 0; i < nFields; i++ {
		key, err := readStr()
		if err != nil {
			return nil, 0, err
		}
		if len(buf)-off < 1 {
			return nil, 0, fmt.Errorf("store: truncated attr kind for %q", key)
		}
		kind := core.AttrKind(buf[off])
		off++
		switch kind {
		case core.AttrInt, core.AttrFloat:
			if len(buf)-off < 8 {
				return nil, 0, fmt.Errorf("store: truncated numeric attr %q", key)
			}
			bits := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			if kind == core.AttrInt {
				a[key] = core.IntValue(int64(bits))
			} else {
				a[key] = core.FloatValue(math.Float64frombits(bits))
			}
		case core.AttrString:
			s, err := readStr()
			if err != nil {
				return nil, 0, err
			}
			a[key] = core.StringValue(s)
		case core.AttrTags:
			if len(buf)-off < 2 {
				return nil, 0, fmt.Errorf("store: truncated tag count for %q", key)
			}
			n := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			tags := make([]string, n)
			for j := 0; j < n; j++ {
				t, err := readStr()
				if err != nil {
					return nil, 0, err
				}
				tags[j] = t
			}
			a[key] = core.TagsValue(tags...)
		default:
			return nil, 0, fmt.Errorf("store: unknown attr kind %d for %q", kind, key)
		}
	}
	return a, off, nil
}
