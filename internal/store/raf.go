package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// RAF is the random-access file of the Omni-family, M-index, and SPB-tree:
// a sequential log of (id, payload) records laid out across pages of a
// Pager, addressed by byte offset. Reading a record touches every page the
// record spans, which is exactly how the paper charges RAF I/O (and why a
// kNN search that revisits objects out of order benefits from the LRU
// cache).
//
// Records are: uint32 id | uint32 payloadLen | payload bytes.
type RAF struct {
	mu    sync.Mutex
	pager *Pager
	pages []PageID // pages of the log in order
	size  int64    // bytes appended so far
	live  int64    // bytes not yet deleted
	dir   map[int]rafRecord
}

type rafRecord struct {
	off int64
	n   int // payload length
}

const rafHeaderLen = 8

// NewRAF creates an empty RAF on the given pager.
func NewRAF(p *Pager) *RAF {
	return &RAF{pager: p, dir: make(map[int]rafRecord)}
}

// Append writes a record for object id and returns its byte offset.
func (r *RAF) Append(id int, payload []byte) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.dir[id]; dup {
		return 0, fmt.Errorf("store: RAF already holds object %d", id)
	}
	var hdr [rafHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(id))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	off := r.size
	if err := r.write(hdr[:]); err != nil {
		return 0, err
	}
	if err := r.write(payload); err != nil {
		return 0, err
	}
	r.dir[id] = rafRecord{off: off, n: len(payload)}
	r.live += int64(rafHeaderLen + len(payload))
	return off, nil
}

// write appends bytes to the log, allocating pages as needed. Pages are
// buffered whole, so appends that stay within the current page do not
// repeatedly pay page accesses beyond the page's write. Caller holds mu.
func (r *RAF) write(data []byte) error {
	ps := int64(r.pager.PageSize())
	for len(data) > 0 {
		pageIdx := r.size / ps
		inPage := int(r.size % ps)
		if int(pageIdx) >= len(r.pages) {
			r.pages = append(r.pages, r.pager.Alloc())
		}
		pid := r.pages[pageIdx]
		page, err := r.pager.Read(pid)
		if err != nil {
			return err
		}
		buf := make([]byte, len(page))
		copy(buf, page)
		n := copy(buf[inPage:], data)
		if err := r.pager.Write(pid, buf); err != nil {
			return err
		}
		data = data[n:]
		r.size += int64(n)
	}
	return nil
}

// Offset returns the byte offset of object id's record.
func (r *RAF) Offset(id int) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.dir[id]
	return rec.off, ok
}

// Read fetches the payload of object id, touching every page its record
// spans.
func (r *RAF) Read(id int) ([]byte, error) {
	r.mu.Lock()
	rec, ok := r.dir[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: RAF has no object %d", id)
	}
	return r.ReadAt(rec.off)
}

// ReadAt fetches the record starting at the given byte offset and returns
// its payload.
func (r *RAF) ReadAt(off int64) ([]byte, error) {
	hdr, err := r.readBytes(off, rafHeaderLen)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	return r.readBytes(off+rafHeaderLen, n)
}

// IDAt returns the object id of the record starting at the given offset.
func (r *RAF) IDAt(off int64) (int, error) {
	hdr, err := r.readBytes(off, rafHeaderLen)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(hdr[0:4])), nil
}

// readBytes copies n bytes starting at off, paying one page access per
// covered page (modulo the cache).
func (r *RAF) readBytes(off int64, n int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off+int64(n) > r.size {
		return nil, fmt.Errorf("store: RAF read [%d,%d) beyond size %d", off, off+int64(n), r.size)
	}
	ps := int64(r.pager.PageSize())
	out := make([]byte, 0, n)
	for n > 0 {
		pageIdx := off / ps
		inPage := int(off % ps)
		page, err := r.pager.Read(r.pages[pageIdx])
		if err != nil {
			return nil, err
		}
		take := len(page) - inPage
		if take > n {
			take = n
		}
		out = append(out, page[inPage:inPage+take]...)
		off += int64(take)
		n -= take
	}
	return out, nil
}

// Delete drops object id from the directory. Log space is not reclaimed
// (the paper's update experiment measures delete+reinsert cost, not
// compaction), but the live-byte counter shrinks.
func (r *RAF) Delete(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.dir[id]
	if !ok {
		return fmt.Errorf("store: RAF delete of absent object %d", id)
	}
	delete(r.dir, id)
	r.live -= int64(rafHeaderLen + rec.n)
	return nil
}

// Len returns the number of records currently in the directory.
func (r *RAF) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.dir)
}

// SizeBytes returns the total bytes ever appended to the log.
func (r *RAF) SizeBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}
