// Package store provides the simulated disk substrate shared by the
// disk-based indexes: a fixed-size page store (Pager) with page-access
// accounting, an LRU buffer cache (the paper's 128 KB query cache),
// object serialization, and a random-access file (RAF) that stores
// objects separately from index structures, as the Omni-family, M-index,
// and SPB-tree require.
//
// The paper measures I/O as the number of page accesses (PA), not raw
// latency, so an in-memory page store that counts every fetch and flush
// through the buffer manager reproduces the experiment faithfully while
// remaining laptop-friendly.
//
// A Pager (and the RAF directory laid over it) is also durable: Serialize
// writes a self-describing, checksummed volume image ("MXVOL1") that
// LoadPager reopens without rebuilding, which is how the disk-resident
// index families snapshot themselves (see internal/persist and
// docs/PERSISTENCE.md for the normative byte layout). Reopened pagers
// start with fresh counters and the buffer cache disabled.
package store
