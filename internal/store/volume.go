package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Volume serialization: a Pager (and the RAF directory laid over it) can
// be written out as a self-describing byte image and reopened later, so
// the disk-resident indexes restore without rebuilding. The format is
// specified normatively in docs/PERSISTENCE.md; every change here must be
// reflected there.
//
// Pager volume layout (all integers little-endian):
//
//	magic     6 bytes "MXVOL1"
//	version   u16 (currently 1)
//	flags     u8  (bit0 = clean; loaders reject unclean volumes)
//	pageSize  u32
//	nPages    u32
//	nFree     u32
//	freeList  nFree × u32
//	pageCRC   u32 (CRC-32/IEEE over the concatenated page images)
//	pages     nPages × pageSize bytes

const (
	volumeMagic   = "MXVOL1"
	volumeVersion = 1
	volumeClean   = 1 << 0
)

// Serialize writes the volume image: every page, the free list, and a
// checksum over the page data. The access counters and the buffer cache
// are not part of the image (a reopened volume starts with fresh counters
// and the cache disabled).
func (p *Pager) Serialize() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	buf := make([]byte, 0, len(volumeMagic)+17+4*len(p.freeList)+len(p.pages)*p.pageSize)
	buf = append(buf, volumeMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, volumeVersion)
	buf = append(buf, volumeClean)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.pageSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.pages)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.freeList)))
	for _, id := range p.freeList {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	crc := crc32.NewIEEE()
	for _, pg := range p.pages {
		_, _ = crc.Write(pg)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	for _, pg := range p.pages {
		buf = append(buf, pg...)
	}
	return buf
}

// LoadPager reopens a volume image produced by Serialize. It validates
// the magic, format version, clean flag and page checksum, and returns a
// pager with fresh access counters and the cache disabled.
func LoadPager(data []byte) (*Pager, error) {
	hdr := len(volumeMagic) + 2 + 1 + 4 + 4 + 4
	if len(data) < hdr {
		return nil, fmt.Errorf("store: volume truncated (%d bytes)", len(data))
	}
	if string(data[:len(volumeMagic)]) != volumeMagic {
		return nil, fmt.Errorf("store: bad volume magic %q", data[:len(volumeMagic)])
	}
	off := len(volumeMagic)
	ver := binary.LittleEndian.Uint16(data[off:])
	if ver != volumeVersion {
		return nil, fmt.Errorf("store: unsupported volume version %d (want %d)", ver, volumeVersion)
	}
	flags := data[off+2]
	if flags&volumeClean == 0 {
		return nil, fmt.Errorf("store: volume marked dirty; refusing to open")
	}
	pageSize := int(binary.LittleEndian.Uint32(data[off+3:]))
	nPages := int(binary.LittleEndian.Uint32(data[off+7:]))
	nFree := int(binary.LittleEndian.Uint32(data[off+11:]))
	off += 15
	if pageSize <= 0 || pageSize > 1<<24 {
		return nil, fmt.Errorf("store: implausible page size %d", pageSize)
	}
	if rem := len(data) - off; nFree < 0 || nFree > rem/4 {
		return nil, fmt.Errorf("store: free list of %d entries exceeds volume", nFree)
	}
	free := make([]PageID, nFree)
	for i := range free {
		free[i] = PageID(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	if len(data)-off < 4 {
		return nil, fmt.Errorf("store: volume truncated before checksum")
	}
	wantCRC := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if len(data)-off != nPages*pageSize {
		return nil, fmt.Errorf("store: volume has %d page bytes, want %d×%d", len(data)-off, nPages, pageSize)
	}
	if crc32.ChecksumIEEE(data[off:]) != wantCRC {
		return nil, fmt.Errorf("store: volume page checksum mismatch")
	}
	p := NewPager(pageSize)
	p.pages = make([][]byte, nPages)
	for i := range p.pages {
		pg := make([]byte, pageSize)
		copy(pg, data[off:off+pageSize])
		p.pages[i] = pg
		off += pageSize
	}
	for _, id := range free {
		if int(id) >= nPages {
			return nil, fmt.Errorf("store: free page %d beyond volume of %d pages", id, nPages)
		}
	}
	p.freeList = free
	return p, nil
}

// Serialize writes the RAF state — the page list, append offset and the
// id directory — relative to its pager (which must be serialized
// alongside via Pager.Serialize).
//
// Layout: nPages u32 | pages u32× | size u64 | live u64 | nDir u32 |
// nDir × (id u32, off u64, n u32).
func (r *RAF) Serialize() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 24+4*len(r.pages)+16*len(r.dir))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.pages)))
	for _, id := range r.pages {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.size))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.live))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.dir)))
	for id, rec := range r.dir {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.n))
	}
	return buf
}

// LoadRAF rebinds a serialized RAF to its reopened pager.
func LoadRAF(p *Pager, data []byte) (*RAF, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("store: RAF state truncated")
	}
	nPages := int(binary.LittleEndian.Uint32(data))
	off := 4
	if nPages < 0 || nPages > (len(data)-off)/4 {
		return nil, fmt.Errorf("store: RAF page list of %d exceeds state", nPages)
	}
	pages := make([]PageID, nPages)
	for i := range pages {
		pid := PageID(binary.LittleEndian.Uint32(data[off:]))
		if int(pid) >= p.Pages() {
			return nil, fmt.Errorf("store: RAF page %d beyond volume of %d pages", pid, p.Pages())
		}
		pages[i] = pid
		off += 4
	}
	if len(data)-off < 20 {
		return nil, fmt.Errorf("store: RAF state truncated before directory")
	}
	size := int64(binary.LittleEndian.Uint64(data[off:]))
	live := int64(binary.LittleEndian.Uint64(data[off+8:]))
	nDir := int(binary.LittleEndian.Uint32(data[off+16:]))
	off += 20
	if nDir < 0 || nDir > (len(data)-off)/16 {
		return nil, fmt.Errorf("store: RAF directory of %d exceeds state", nDir)
	}
	if size < 0 || size > int64(nPages)*int64(p.PageSize()) {
		return nil, fmt.Errorf("store: RAF size %d exceeds its %d pages", size, nPages)
	}
	r := &RAF{pager: p, pages: pages, size: size, live: live, dir: make(map[int]rafRecord, nDir)}
	for i := 0; i < nDir; i++ {
		id := int(binary.LittleEndian.Uint32(data[off:]))
		recOff := int64(binary.LittleEndian.Uint64(data[off+4:]))
		n := int(binary.LittleEndian.Uint32(data[off+12:]))
		if recOff < 0 || n < 0 || recOff+rafHeaderLen+int64(n) > size {
			return nil, fmt.Errorf("store: RAF record for %d at [%d,+%d) beyond size %d", id, recOff, n, size)
		}
		r.dir[id] = rafRecord{off: recOff, n: n}
		off += 16
	}
	return r, nil
}
