package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"metricindex/internal/core"
)

// Object serialization. Every disk-based index stores objects (in a RAF or
// inside tree nodes) using this format:
//
//	tag(1) | payload
//	tag 1: Vector     — uint32 len, len × float64 (little endian)
//	tag 2: IntVector  — uint32 len, len × int32
//	tag 3: Word       — uint32 len, raw bytes
//	tag 4: Vector32   — uint32 len, len × float32
const (
	tagVector    = 1
	tagIntVector = 2
	tagWord      = 3
	tagVector32  = 4
)

// EncodedObjectSize returns the number of bytes EncodeObject will produce.
func EncodedObjectSize(o core.Object) int {
	switch v := o.(type) {
	case core.Vector:
		return 1 + 4 + 8*len(v)
	case core.IntVector:
		return 1 + 4 + 4*len(v)
	case core.Word:
		return 1 + 4 + len(v)
	case core.Vector32:
		return 1 + 4 + 4*len(v)
	default:
		panic(fmt.Sprintf("store: cannot size object of type %T", o))
	}
}

// EncodeObject appends the serialized form of o to dst and returns the
// extended slice.
func EncodeObject(dst []byte, o core.Object) []byte {
	switch v := o.(type) {
	case core.Vector:
		dst = append(dst, tagVector)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case core.IntVector:
		dst = append(dst, tagIntVector)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
		}
	case core.Word:
		dst = append(dst, tagWord)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		dst = append(dst, v...)
	case core.Vector32:
		dst = append(dst, tagVector32)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
		}
	default:
		panic(fmt.Sprintf("store: cannot encode object of type %T", o))
	}
	return dst
}

// DecodeObject parses one object from the front of buf, returning the
// object and the number of bytes consumed.
func DecodeObject(buf []byte) (core.Object, int, error) {
	if len(buf) < 5 {
		return nil, 0, fmt.Errorf("store: truncated object header (%d bytes)", len(buf))
	}
	tag := buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	body := buf[5:]
	switch tag {
	case tagVector:
		if len(body) < 8*n {
			return nil, 0, fmt.Errorf("store: truncated vector of %d dims", n)
		}
		v := make(core.Vector, n)
		for i := 0; i < n; i++ {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return v, 5 + 8*n, nil
	case tagIntVector:
		if len(body) < 4*n {
			return nil, 0, fmt.Errorf("store: truncated int vector of %d dims", n)
		}
		v := make(core.IntVector, n)
		for i := 0; i < n; i++ {
			v[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return v, 5 + 4*n, nil
	case tagWord:
		if len(body) < n {
			return nil, 0, fmt.Errorf("store: truncated word of %d bytes", n)
		}
		return core.Word(string(body[:n])), 5 + n, nil
	case tagVector32:
		if len(body) < 4*n {
			return nil, 0, fmt.Errorf("store: truncated float32 vector of %d dims", n)
		}
		v := make(core.Vector32, n)
		for i := 0; i < n; i++ {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return v, 5 + 4*n, nil
	default:
		return nil, 0, fmt.Errorf("store: unknown object tag %d", tag)
	}
}

// EncodeFloats appends a fixed-length float64 slice (a pre-computed
// distance vector) to dst.
func EncodeFloats(dst []byte, fs []float64) []byte {
	for _, x := range fs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// DecodeFloats parses l float64 values from the front of buf.
func DecodeFloats(buf []byte, l int) ([]float64, int, error) {
	if len(buf) < 8*l {
		return nil, 0, fmt.Errorf("store: truncated float vector of %d entries", l)
	}
	fs := make([]float64, l)
	for i := 0; i < l; i++ {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return fs, 8 * l, nil
}
