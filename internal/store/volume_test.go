package store

import (
	"bytes"
	"testing"
)

func TestPagerVolumeRoundTrip(t *testing.T) {
	p := NewPager(256)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id := p.Alloc()
		ids = append(ids, id)
		if err := p.Write(id, bytes.Repeat([]byte{byte(i + 1)}, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Free(ids[2])

	img := p.Serialize()
	q, err := LoadPager(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.PageSize() != 256 || q.Pages() != 5 {
		t.Fatalf("reopened volume: pageSize=%d pages=%d", q.PageSize(), q.Pages())
	}
	for i, id := range ids {
		if i == 2 {
			continue
		}
		pg, err := q.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(i + 1)}, 100+i)
		if !bytes.Equal(pg[:len(want)], want) {
			t.Fatalf("page %d content mismatch after reopen", id)
		}
	}
	// The freed page must be reused first, as before serialization.
	if got := q.Alloc(); got != ids[2] {
		t.Fatalf("reopened volume allocated %d, want reuse of freed %d", got, ids[2])
	}
}

func TestLoadPagerRejectsCorruption(t *testing.T) {
	p := NewPager(128)
	id := p.Alloc()
	if err := p.Write(id, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	img := p.Serialize()

	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version":  func(b []byte) []byte { b[6] = 99; return b },
		"dirty flag":   func(b []byte) []byte { b[8] &^= 1; return b },
		"flipped page": func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-10] },
		"short header": func(b []byte) []byte { return b[:8] },
		"extra tail":   func(b []byte) []byte { return append(b, 0xAB) },
		"bogus pageSz": func(b []byte) []byte { b[9], b[10], b[11], b[12] = 0xFF, 0xFF, 0xFF, 0xFF; return b },
		"bogus nFree":  func(b []byte) []byte { b[17], b[18], b[19], b[20] = 0xFF, 0xFF, 0xFF, 0xFF; return b },
	}
	for name, corrupt := range cases {
		img2 := corrupt(append([]byte(nil), img...))
		if _, err := LoadPager(img2); err == nil {
			t.Errorf("%s: corrupt volume loaded without error", name)
		}
	}
}

func TestRAFRoundTrip(t *testing.T) {
	p := NewPager(64)
	r := NewRAF(p)
	payloads := map[int][]byte{
		1: []byte("first record"),
		2: bytes.Repeat([]byte("x"), 200), // spans pages
		7: []byte("third"),
	}
	for id, pl := range payloads {
		if _, err := r.Append(id, pl); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Delete(7); err != nil {
		t.Fatal(err)
	}

	q, err := LoadPager(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRAF(q, r.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 || r2.SizeBytes() != r.SizeBytes() {
		t.Fatalf("reopened RAF: len=%d size=%d, want len=2 size=%d", r2.Len(), r2.SizeBytes(), r.SizeBytes())
	}
	for _, id := range []int{1, 2} {
		got, err := r2.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[id]) {
			t.Fatalf("record %d mismatch after reopen", id)
		}
	}
	if _, err := r2.Read(7); err == nil {
		t.Fatal("deleted record resurrected by reopen")
	}
	// Appends continue where the log left off.
	if _, err := r2.Append(9, []byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	got, err := r2.Read(9)
	if err != nil || !bytes.Equal(got, []byte("post-reopen")) {
		t.Fatalf("post-reopen append failed: %v", err)
	}
}

func TestLoadRAFRejectsCorruption(t *testing.T) {
	p := NewPager(64)
	r := NewRAF(p)
	if _, err := r.Append(1, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	st := r.Serialize()
	if _, err := LoadRAF(p, st[:3]); err == nil {
		t.Error("truncated RAF state loaded")
	}
	bad := append([]byte(nil), st...)
	bad[0] = 0xFF // absurd page count
	if _, err := LoadRAF(p, bad); err == nil {
		t.Error("RAF state with absurd page count loaded")
	}
}
