package table

import (
	"fmt"

	"metricindex/internal/core"
)

// NewLAESAParallel builds a LAESA distance table with the construction
// parallelized across objects, as §6.2's discussion suggests ("since
// objects are independent of each other, the pre-computed distances for
// each object can be computed in parallel"). The resulting index is
// byte-for-byte identical to the sequential build; only wall-clock
// construction time changes. workers <= 0 uses GOMAXPROCS.
func NewLAESAParallel(ds *core.Dataset, pivots []int, workers int) (*LAESA, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("laesa: no pivots")
	}
	if workers <= 0 {
		workers = -1 // ParallelFor: negative means GOMAXPROCS
	}
	t := &LAESA{ds: ds, pivotIDs: append([]int(nil), pivots...), rowOf: make(map[int]int)}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("laesa: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}

	t.ids, t.dists = core.BuildDistRows(ds, ds.LiveIDs(), t.pivotVals, workers)
	for row, id := range t.ids {
		t.rowOf[int(id)] = row
	}
	return t, nil
}
