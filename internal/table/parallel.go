package table

import (
	"metricindex/internal/core"
)

// NewLAESAParallel builds a LAESA distance table with the construction
// parallelized across objects, as §6.2's discussion suggests ("since
// objects are independent of each other, the pre-computed distances for
// each object can be computed in parallel"). The resulting index is
// byte-for-byte identical to the sequential build; only wall-clock
// construction time changes. workers <= 0 uses GOMAXPROCS.
func NewLAESAParallel(ds *core.Dataset, pivots []int, workers int) (*LAESA, error) {
	if workers <= 0 {
		workers = -1 // ParallelFor: negative means GOMAXPROCS
	}
	t, err := newLAESAEmpty(ds, pivots)
	if err != nil {
		return nil, err
	}
	t.ids, t.cols = core.BuildDistCols(ds, ds.LiveIDs(), t.pivotVals, workers)
	for row, id := range t.ids {
		t.rowOf[int(id)] = row
		t.mirrorAt(row)
	}
	t.qcol = core.NewQuantCol(t.cols[0])
	return t, nil
}

// mirrorAt arms/extends the coordinate mirror for a row appended outside
// Insert (parallel build, snapshot load).
func (t *LAESA) mirrorAt(row int) {
	o := t.ds.Object(int(t.ids[row]))
	if o == nil {
		// A row whose object is missing from the dataset cannot be
		// mirrored; verification for it would fail anyway, but drop the
		// mirror rather than leave a hole.
		t.flat = nil
		t.noMirror = true
		return
	}
	t.mirrorRow(row, o)
}
