package table

import (
	"fmt"
	"runtime"
	"sync"

	"metricindex/internal/core"
)

// NewLAESAParallel builds a LAESA distance table with the construction
// parallelized across objects, as §6.2's discussion suggests ("since
// objects are independent of each other, the pre-computed distances for
// each object can be computed in parallel"). The resulting index is
// byte-for-byte identical to the sequential build; only wall-clock
// construction time changes. workers <= 0 uses GOMAXPROCS.
func NewLAESAParallel(ds *core.Dataset, pivots []int, workers int) (*LAESA, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("laesa: no pivots")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &LAESA{ds: ds, pivotIDs: append([]int(nil), pivots...), rowOf: make(map[int]int)}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("laesa: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}

	ids := ds.LiveIDs()
	l := len(pivots)
	t.ids = make([]int32, len(ids))
	t.dists = make([]float64, len(ids)*l)
	sp := ds.Space()

	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= len(ids) {
			break
		}
		end := start + chunk
		if end > len(ids) {
			end = len(ids)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for row := start; row < end; row++ {
				id := ids[row]
				t.ids[row] = int32(id)
				o := ds.Object(id)
				for i, p := range t.pivotVals {
					t.dists[row*l+i] = sp.Distance(o, p)
				}
			}
		}(start, end)
	}
	wg.Wait()
	for row, id := range t.ids {
		t.rowOf[int(id)] = row
	}
	return t, nil
}
