package table

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encodings for the table family (spec:
// docs/PERSISTENCE.md §LAESA, §AESA). Both payloads begin with a u16
// family version.
//
// LAESA version history:
//   - 1: distance table row-major (dists[row*l+i]).
//   - 2: distance table column-major (the in-memory struct-of-arrays
//     layout: column i's rows, then column i+1's). Same fields, same
//     wire ops; only the float order changed. Version-1 payloads still
//     load via a transpose.
const (
	tableFormatVersion = 2
	aesaFormatVersion  = 1
)

func init() {
	persist.Register("LAESA", loadLAESA)
	persist.Register("AESA", loadAESA)
}

// EncodeSnapshot writes the LAESA payload: pivots (ids and snapshotted
// values), the row ids, and the distance table as one flat column-major
// block. The row directory and the coordinate mirror are derivable and
// not stored.
func (t *LAESA) EncodeSnapshot(w *persist.Writer) error {
	w.U16(tableFormatVersion)
	w.Ints(t.pivotIDs)
	w.Objects(t.pivotVals)
	w.Int32s(t.ids)
	flat := make([]float64, 0, len(t.ids)*len(t.cols))
	for _, col := range t.cols {
		flat = append(flat, col...)
	}
	w.Floats(flat)
	return nil
}

func loadLAESA(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	v := r.U16()
	if r.Err() == nil && v != 1 && v != tableFormatVersion {
		return nil, nil, fmt.Errorf("laesa: unsupported payload version %d", v)
	}
	t := &LAESA{
		ds:        ds,
		pivotIDs:  r.Ints(),
		pivotVals: r.Objects(),
		ids:       r.Int32s(),
		rowOf:     make(map[int]int),
	}
	dists := r.Floats()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(t.pivotVals) != len(t.pivotIDs) || len(t.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("laesa: %d pivot values for %d pivot ids", len(t.pivotVals), len(t.pivotIDs))
	}
	if len(dists) != len(t.ids)*len(t.pivotIDs) {
		return nil, nil, fmt.Errorf("laesa: %d distances for %d rows × %d pivots", len(dists), len(t.ids), len(t.pivotIDs))
	}
	t.cols = distColumns(dists, len(t.ids), len(t.pivotIDs), v == 1)
	t.kern, t.hasKern = core.PreKernelFor(ds.Space().Metric())
	for row, id := range t.ids {
		t.rowOf[int(id)] = row
		t.mirrorAt(row)
	}
	t.qcol = core.NewQuantCol(t.cols[0])
	return t, nil, nil
}

// distColumns splits a flat distance block into per-pivot columns,
// transposing when the block is the row-major layout of version-1
// payloads.
func distColumns(dists []float64, rows, l int, rowMajor bool) [][]float64 {
	cols := make([][]float64, l)
	for i := range cols {
		cols[i] = make([]float64, rows)
		if rowMajor {
			for row := 0; row < rows; row++ {
				cols[i][row] = dists[row*l+i]
			}
		} else {
			copy(cols[i], dists[i*rows:(i+1)*rows])
		}
	}
	return cols
}

// EncodeSnapshot writes the AESA payload: the row ids and the full n×n
// distance matrix, row by row.
func (a *AESA) EncodeSnapshot(w *persist.Writer) error {
	w.U16(aesaFormatVersion)
	w.Int32s(a.ids)
	for _, row := range a.dist {
		w.Floats(row)
	}
	return nil
}

func loadAESA(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != aesaFormatVersion {
		return nil, nil, fmt.Errorf("aesa: unsupported payload version %d", v)
	}
	a := &AESA{ds: ds, ids: r.Int32s(), rowOf: make(map[int]int)}
	n := len(a.ids)
	a.dist = make([][]float64, n)
	for i := range a.dist {
		a.dist[i] = r.Floats()
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if len(a.dist[i]) != n {
			return nil, nil, fmt.Errorf("aesa: matrix row %d has %d entries, want %d", i, len(a.dist[i]), n)
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for row, id := range a.ids {
		a.rowOf[int(id)] = row
	}
	return a, nil, nil
}
