package table

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encodings for the table family (spec:
// docs/PERSISTENCE.md §LAESA, §AESA). Both payloads begin with a u16
// family version.

const tableFormatVersion = 1

func init() {
	persist.Register("LAESA", loadLAESA)
	persist.Register("AESA", loadAESA)
}

// EncodeSnapshot writes the LAESA payload: pivots (ids and snapshotted
// values), the row ids, and the flat distance table. The row directory
// is derivable and not stored.
func (t *LAESA) EncodeSnapshot(w *persist.Writer) error {
	w.U16(tableFormatVersion)
	w.Ints(t.pivotIDs)
	w.Objects(t.pivotVals)
	w.Int32s(t.ids)
	w.Floats(t.dists)
	return nil
}

func loadLAESA(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != tableFormatVersion {
		return nil, nil, fmt.Errorf("laesa: unsupported payload version %d", v)
	}
	t := &LAESA{
		ds:        ds,
		pivotIDs:  r.Ints(),
		pivotVals: r.Objects(),
		ids:       r.Int32s(),
		dists:     r.Floats(),
		rowOf:     make(map[int]int),
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(t.pivotVals) != len(t.pivotIDs) || len(t.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("laesa: %d pivot values for %d pivot ids", len(t.pivotVals), len(t.pivotIDs))
	}
	if len(t.dists) != len(t.ids)*len(t.pivotIDs) {
		return nil, nil, fmt.Errorf("laesa: %d distances for %d rows × %d pivots", len(t.dists), len(t.ids), len(t.pivotIDs))
	}
	for row, id := range t.ids {
		t.rowOf[int(id)] = row
	}
	return t, nil, nil
}

// EncodeSnapshot writes the AESA payload: the row ids and the full n×n
// distance matrix, row by row.
func (a *AESA) EncodeSnapshot(w *persist.Writer) error {
	w.U16(tableFormatVersion)
	w.Int32s(a.ids)
	for _, row := range a.dist {
		w.Floats(row)
	}
	return nil
}

func loadAESA(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != tableFormatVersion {
		return nil, nil, fmt.Errorf("aesa: unsupported payload version %d", v)
	}
	a := &AESA{ds: ds, ids: r.Int32s(), rowOf: make(map[int]int)}
	n := len(a.ids)
	a.dist = make([][]float64, n)
	for i := range a.dist {
		a.dist[i] = r.Floats()
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if len(a.dist[i]) != n {
			return nil, nil, fmt.Errorf("aesa: matrix row %d has %d entries, want %d", i, len(a.dist[i]), n)
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for row, id := range a.ids {
		a.rowOf[int(id)] = row
	}
	return a, nil, nil
}
