// Package table implements the pivot-based table indexes of paper §3:
// AESA (the O(n²) theoretical baseline) and LAESA (the linear pivot
// table). Both are main-memory structures; their storage is a flat
// distance table scanned by every query with Lemma 1 filtering.
package table

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
)

// verifyChunk is the candidate batch size of the chunked DistanceMany
// verification path.
const verifyChunk = 64

// knnBlockMin and knnBlock bound the row-block sizes of the staged kNN
// scan: each block is column-swept at the radius current when the block
// starts, so the effective pruning radius tightens block by block while
// the block's columns stay cache-resident for the per-survivor recheck.
// Blocks start small — the first sweeps run at the loose just-seeded
// radius and would filter almost nothing over a long run — and double
// to knnBlock once the radius has contracted.
const (
	knnBlockMin = 128
	knnBlock    = 1024
)

// LAESA is the linear AESA of [19]: it stores d(o, p) for every object o
// and every pivot p (Fig 3). The table is struct-of-arrays — one
// contiguous distance column per pivot — so Lemma 1 filtering scans
// columns sequentially. MRQ prunes with the column lower bounds; MkNNQ
// does the same with a radius tightened by verification, visiting objects
// in storage order (which the paper notes is suboptimal but is what
// LAESA does). Query-pivot distances go through the batch kernel, and
// candidate verification runs over a flat coordinate mirror when the
// dataset is uniform vectors (falling back to chunked DistanceMany over
// Objects otherwise). Per-query buffers come from a scratch pool, so
// steady-state queries allocate nothing beyond the answer itself.
type LAESA struct {
	ds        *core.Dataset
	pivotIDs  []int
	pivotVals []core.Object  // snapshotted so pivot deletion is safe
	ids       []int32        // row -> object id
	cols      [][]float64    // cols[i][row] = d(object ids[row], pivot i)
	qcol      *core.QuantCol // quantized shadow of cols[0]; nil mid-build
	rowOf     map[int]int
	flat      *core.FlatVecs // coordinate mirror; nil off the flat path
	noMirror  bool           // mirror permanently dropped (mixed objects)
	kern      core.PreKernel
	hasKern   bool
	scratch   core.ScratchPool
}

// NewLAESA builds the index over all live objects, computing the full
// distance table through the counted space. The pivot object values are
// snapshotted, so later deletion of a pivot from the dataset does not
// invalidate the index.
func NewLAESA(ds *core.Dataset, pivots []int) (*LAESA, error) {
	t, err := newLAESAEmpty(ds, pivots)
	if err != nil {
		return nil, err
	}
	for _, id := range ds.LiveIDs() {
		if err := t.Insert(id); err != nil {
			return nil, err
		}
	}
	t.qcol = core.NewQuantCol(t.cols[0])
	return t, nil
}

// newLAESAEmpty validates the pivots and prepares an empty table (shared
// by the sequential, parallel, and snapshot-loading constructors).
func newLAESAEmpty(ds *core.Dataset, pivots []int) (*LAESA, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("laesa: no pivots")
	}
	t := &LAESA{ds: ds, pivotIDs: append([]int(nil), pivots...), rowOf: make(map[int]int)}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("laesa: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}
	t.cols = make([][]float64, len(t.pivotVals))
	t.kern, t.hasKern = core.PreKernelFor(ds.Space().Metric())
	return t, nil
}

// Name returns "LAESA".
func (t *LAESA) Name() string { return "LAESA" }

// Pivots returns the pivot ids used by the table.
func (t *LAESA) Pivots() []int { return t.pivotIDs }

// Len returns the number of indexed objects.
func (t *LAESA) Len() int { return len(t.ids) }

// useFlat reports whether the flat verification path is armed: a
// complete coordinate mirror plus a resolved kernel.
func (t *LAESA) useFlat() bool {
	return t.hasKern && t.flat != nil && t.flat.Rows() == len(t.ids)
}

// mirrorRow appends the object of table row `row` to the coordinate
// mirror, arming it on row 0 and dropping it permanently the moment any
// object does not fit (wrong type or dimension) — queries then verify
// through Objects.
func (t *LAESA) mirrorRow(row int, o core.Object) {
	if t.noMirror || !t.hasKern {
		return
	}
	if t.flat == nil {
		if row != 0 {
			t.noMirror = true
			return
		}
		if t.flat = core.NewFlatVecs(o); t.flat == nil {
			t.noMirror = true
			return
		}
	}
	if !t.flat.Append(o) {
		t.flat = nil
		t.noMirror = true
	}
}

// queryPrep draws scratch, sizes the survivor and chunk buffers, and
// computes the query-pivot distances through the batch kernel.
func (t *LAESA) queryPrep(q core.Object) *core.Scratch {
	sc := t.scratch.Get()
	qd := sc.GrowQD(len(t.pivotVals))
	sc.GrowSur(len(t.ids))
	sc.GrowChunk(verifyChunk)
	t.ds.Space().DistanceMany(q, t.pivotVals, qd)
	return sc
}

// RangeSearch answers MRQ(q, r) by a filtered scan of the table: a
// column sweep (core.SurviveColumnsQuant — a SWAR pass over the quantized
// shadow of column 0, then exact unit-stride Lemma 1 over the
// struct-of-arrays columns) compacts the surviving rows, which are then
// verified through the flat kernel or chunked DistanceMany.
func (t *LAESA) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc := t.queryPrep(q)
	sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, 0, len(t.ids), r)
	var res []int
	if t.useFlat() {
		if q64, q32, ok := t.flat.QueryCoords(q, sc); ok {
			res = t.rangeFlat(q64, q32, sur, r)
			t.scratch.Put(sc)
			sortInts(res)
			return res, nil
		}
	}
	res = t.rangeObjs(q, sc, sur, r)
	t.scratch.Put(sc)
	sortInts(res)
	return res, nil
}

// rangeFlat verifies surviving rows through the flat kernel:
// squared-space reject for clear misses (L2SqExceeds semantics), exact
// compare for the rest. One CountDistances covers the whole scan.
func (t *LAESA) rangeFlat(q64 []float64, q32 []float32, sur []int32, r float64) []int {
	var res []int
	for _, row := range sur {
		pre := t.flat.Pre(&t.kern, q64, q32, int(row))
		if t.kern.Exceeds(pre, r) {
			continue
		}
		if t.kern.Finish(pre) <= r {
			res = append(res, int(t.ids[row]))
		}
	}
	t.ds.Space().CountDistances(len(sur))
	return res
}

// rangeObjs verifies surviving rows through DistanceMany in chunks.
func (t *LAESA) rangeObjs(q core.Object, sc *core.Scratch, sur []int32, r float64) []int {
	objs := t.ds.Objects()
	var res []int
	m := 0
	for _, row := range sur {
		id := t.ids[row]
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m == len(sc.IDs) {
			res = flushRange(t.ds.Space(), q, sc, m, r, res)
			m = 0
		}
	}
	if m > 0 {
		res = flushRange(t.ds.Space(), q, sc, m, r, res)
	}
	return res
}

// flushRange verifies one gathered chunk against a fixed radius.
func flushRange(sp *core.Space, q core.Object, sc *core.Scratch, m int, r float64, res []int) []int {
	sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
	for j := 0; j < m; j++ {
		if sc.Out[j] <= r {
			res = append(res, int(sc.IDs[j]))
		}
	}
	return res
}

// KNNSearch answers MkNNQ(q, k): radius starts at infinity and is
// tightened by each verified object (§2.1, second method). The scan is
// staged — seed the heap with the first k rows (the prefix the scalar
// scan verifies unconditionally while its radius is still infinite),
// column-sweep the rest at the seeded radius, then verify survivors
// with the fresh radius — and every stage reproduces the scalar scan's
// decisions exactly, so answers and compdists both match.
func (t *LAESA) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sc := t.queryPrep(q)
	h := sc.Heap(k)
	if t.useFlat() {
		if q64, q32, ok := t.flat.QueryCoords(q, sc); ok {
			t.knnFlat(q64, q32, sc, h)
			res := h.Result()
			t.scratch.Put(sc)
			return res, nil
		}
	}
	t.knnObjs(q, sc, h)
	res := h.Result()
	t.scratch.Put(sc)
	return res, nil
}

// knnSeed returns the seed prefix length: the rows the storage-order
// scalar scan verifies before its radius turns finite (the heap fills
// on the k-th push).
func (t *LAESA) knnSeed(k int) int {
	if k > len(t.ids) {
		return len(t.ids)
	}
	return k
}

// knnFlat is the zero-allocation kNN hot loop: verify the seed prefix,
// then process the remaining rows in blocks — sweep each block's columns
// at the radius current when the block starts, re-apply Lemma 1 per
// survivor with the fresh radius (core.PruneRowAt), and verify through
// the flat kernel. Blocking matters twice over: the sweep radius
// tightens as blocks complete (a single whole-table sweep would run at
// the loose seeded radius and filter almost nothing), and the recheck's
// strided column reads land on rows the sweep just pulled into cache.
// The sweep only pre-filters — the per-survivor recheck makes the
// verified set exactly the scalar scan's, so answers and compdists both
// match the scalar build.
//
//metriclint:noalloc
func (t *LAESA) knnFlat(q64 []float64, q32 []float32, sc *core.Scratch, h *core.KNNHeap) {
	seed := t.knnSeed(h.K())
	for row := 0; row < seed; row++ {
		pre := t.flat.Pre(&t.kern, q64, q32, row)
		h.Push(int(t.ids[row]), t.kern.Finish(pre))
	}
	ndist := seed
	for base, blk := seed, knnBlockMin; base < len(t.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(t.ids) {
			end = len(t.ids)
		}
		sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, base, end, h.Radius())
		for _, row := range sur {
			r := h.Radius()
			if core.PruneRowAt(sc.QD, t.cols, int(row), r) {
				continue
			}
			pre := t.flat.Pre(&t.kern, q64, q32, int(row))
			ndist++
			if t.kern.Exceeds(pre, r) {
				continue
			}
			h.Push(int(t.ids[row]), t.kern.Finish(pre))
		}
	}
	t.ds.Space().CountDistances(ndist)
}

// knnObjs is the Object fallback: the same staged scan with candidates
// gathered into chunks verified through DistanceMany. The pruning radius
// lags by at most one chunk, which only admits extra candidates the
// heap rejects — answers are identical to the per-candidate scan.
//
//metriclint:noalloc
func (t *LAESA) knnObjs(q core.Object, sc *core.Scratch, h *core.KNNHeap) {
	objs := t.ds.Objects()
	seed := t.knnSeed(h.K())
	m := 0
	for row := 0; row < seed; row++ {
		id := t.ids[row]
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m == len(sc.IDs) {
			flushKNN(t.ds.Space(), q, sc, m, h)
			m = 0
		}
	}
	if m > 0 {
		flushKNN(t.ds.Space(), q, sc, m, h)
		m = 0
	}
	for base, blk := seed, knnBlockMin; base < len(t.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(t.ids) {
			end = len(t.ids)
		}
		sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, base, end, h.Radius())
		for _, row := range sur {
			r := h.Radius()
			if core.PruneRowAt(sc.QD, t.cols, int(row), r) {
				continue
			}
			id := t.ids[row]
			sc.IDs[m] = id
			sc.Objs[m] = objs[id]
			m++
			if m == len(sc.IDs) {
				flushKNN(t.ds.Space(), q, sc, m, h)
				m = 0
			}
		}
	}
	if m > 0 {
		flushKNN(t.ds.Space(), q, sc, m, h)
	}
}

// flushKNN verifies one gathered chunk and offers every candidate to the
// heap in storage order.
//
//metriclint:noalloc
func flushKNN(sp *core.Space, q core.Object, sc *core.Scratch, m int, h *core.KNNHeap) {
	sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
	for j := 0; j < m; j++ {
		h.Push(int(sc.IDs[j]), sc.Out[j])
	}
}

// Insert adds one object's row, computing its pivot distances through
// the batch kernel (one DistanceMany per insert).
func (t *LAESA) Insert(id int) error {
	if _, dup := t.rowOf[id]; dup {
		return fmt.Errorf("laesa: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("laesa: insert of deleted or out-of-range id %d", id)
	}
	t.rowOf[id] = len(t.ids)
	t.ids = append(t.ids, int32(id))
	sc := t.scratch.Get()
	qd := sc.GrowQD(len(t.pivotVals))
	t.ds.Space().DistanceMany(o, t.pivotVals, qd)
	for i := range t.cols {
		t.cols[i] = append(t.cols[i], qd[i])
	}
	if t.qcol != nil {
		t.qcol.Append(qd[0])
	}
	t.scratch.Put(sc)
	t.mirrorRow(len(t.ids)-1, o)
	return nil
}

// Delete removes an object's row. Mirroring the paper (§6.3), the row is
// located by a sequential scan of the table before removal.
func (t *LAESA) Delete(id int) error {
	// Sequential scan, as the paper's LAESA deletion does.
	row := -1
	for i, rid := range t.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("laesa: delete of unindexed object %d", id)
	}
	last := len(t.ids) - 1
	lastID := t.ids[last]
	t.ids[row] = lastID
	t.ids = t.ids[:last]
	for i := range t.cols {
		col := t.cols[i]
		col[row] = col[last]
		t.cols[i] = col[:last]
	}
	if t.qcol != nil {
		t.qcol.SwapDelete(row)
	}
	if t.flat != nil {
		t.flat.SwapDelete(row)
	}
	t.rowOf[int(lastID)] = row
	delete(t.rowOf, id)
	return nil
}

// PageAccesses returns 0: LAESA is an in-memory index.
func (t *LAESA) PageAccesses() int64 { return 0 }

// ResetStats is a no-op for the in-memory table.
func (t *LAESA) ResetStats() {}

// MemBytes reports the resident size of the pivot columns, the id list,
// and the flat coordinate mirror.
func (t *LAESA) MemBytes() int64 {
	n := int64(len(t.ids))*4 + int64(len(t.pivotIDs))*8
	for _, col := range t.cols {
		n += int64(len(col)) * 8
	}
	if t.flat != nil {
		n += t.flat.MemBytes()
	}
	return n
}

// DiskBytes returns 0: LAESA is an in-memory index.
func (t *LAESA) DiskBytes() int64 { return 0 }

func sortInts(xs []int) { sort.Ints(xs) }
