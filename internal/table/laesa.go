// Package table implements the pivot-based table indexes of paper §3:
// AESA (the O(n²) theoretical baseline) and LAESA (the linear pivot
// table). Both are main-memory structures; their storage is a flat
// distance table scanned by every query with Lemma 1 filtering.
package table

import (
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
)

// LAESA is the linear AESA of [19]: it stores d(o, p) for every object o
// and every pivot p in a flat table (Fig 3). MRQ scans the table pruning
// with Lemma 1; MkNNQ does the same with a radius tightened by
// verification, visiting objects in storage order (which the paper notes
// is suboptimal but is what LAESA does).
type LAESA struct {
	ds        *core.Dataset
	pivotIDs  []int
	pivotVals []core.Object // snapshotted so pivot deletion is safe
	ids       []int32       // row -> object id
	dists     []float64     // row-major rows × len(pivots)
	rowOf     map[int]int
}

// NewLAESA builds the index over all live objects, computing the full
// distance table through the counted space. The pivot object values are
// snapshotted, so later deletion of a pivot from the dataset does not
// invalidate the index.
func NewLAESA(ds *core.Dataset, pivots []int) (*LAESA, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("laesa: no pivots")
	}
	t := &LAESA{ds: ds, pivotIDs: append([]int(nil), pivots...), rowOf: make(map[int]int)}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("laesa: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}
	for _, id := range ds.LiveIDs() {
		if err := t.Insert(id); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Name returns "LAESA".
func (t *LAESA) Name() string { return "LAESA" }

// Pivots returns the pivot ids used by the table.
func (t *LAESA) Pivots() []int { return t.pivotIDs }

// Len returns the number of indexed objects.
func (t *LAESA) Len() int { return len(t.ids) }

// queryDists computes d(q, p) for every pivot (the m·l term of query
// cost).
func (t *LAESA) queryDists(q core.Object) []float64 {
	qd := make([]float64, len(t.pivotVals))
	sp := t.ds.Space()
	for i, p := range t.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r) by a filtered scan of the table.
func (t *LAESA) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := t.queryDists(q)
	l := len(t.pivotVals)
	var res []int
	for row, id := range t.ids {
		od := t.dists[row*l : row*l+l]
		if core.PruneObject(qd, od, r) {
			continue
		}
		if t.ds.DistanceTo(q, int(id)) <= r {
			res = append(res, int(id))
		}
	}
	sortInts(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k): radius starts at infinity and is
// tightened by each verified object (§2.1, second method).
func (t *LAESA) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := t.queryDists(q)
	l := len(t.pivotVals)
	h := core.NewKNNHeap(k)
	for row, id := range t.ids {
		r := h.Radius()
		od := t.dists[row*l : row*l+l]
		if !math.IsInf(r, 1) && core.PruneObject(qd, od, r) {
			continue
		}
		h.Push(int(id), t.ds.DistanceTo(q, int(id)))
	}
	return h.Result(), nil
}

// Insert adds one object's row, computing its pivot distances.
func (t *LAESA) Insert(id int) error {
	if _, dup := t.rowOf[id]; dup {
		return fmt.Errorf("laesa: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("laesa: insert of deleted or out-of-range id %d", id)
	}
	t.rowOf[id] = len(t.ids)
	t.ids = append(t.ids, int32(id))
	sp := t.ds.Space()
	for _, p := range t.pivotVals {
		t.dists = append(t.dists, sp.Distance(o, p))
	}
	return nil
}

// Delete removes an object's row. Mirroring the paper (§6.3), the row is
// located by a sequential scan of the table before removal.
func (t *LAESA) Delete(id int) error {
	// Sequential scan, as the paper's LAESA deletion does.
	row := -1
	for i, rid := range t.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("laesa: delete of unindexed object %d", id)
	}
	l := len(t.pivotVals)
	last := len(t.ids) - 1
	lastID := t.ids[last]
	t.ids[row] = lastID
	copy(t.dists[row*l:row*l+l], t.dists[last*l:last*l+l])
	t.ids = t.ids[:last]
	t.dists = t.dists[:last*l]
	t.rowOf[int(lastID)] = row
	delete(t.rowOf, id)
	return nil
}

// PageAccesses returns 0: LAESA is an in-memory index.
func (t *LAESA) PageAccesses() int64 { return 0 }

// ResetStats is a no-op for the in-memory table.
func (t *LAESA) ResetStats() {}

// MemBytes reports the resident size of the pivot and distance tables.
func (t *LAESA) MemBytes() int64 {
	return int64(len(t.dists))*8 + int64(len(t.ids))*4 + int64(len(t.pivotIDs))*8
}

// DiskBytes returns 0: LAESA is an in-memory index.
func (t *LAESA) DiskBytes() int64 { return 0 }

func sortInts(xs []int) { sort.Ints(xs) }
