package table

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// laesaKNNAllocBudget bounds the allocations of one uncached LAESA kNN
// query (measured 6/op: the query-distance row, the candidate heap, the
// sorted answer, and sort.Slice internals). The budget leaves modest
// headroom for toolchain drift; a regression that adds per-candidate
// allocation blows far past it.
const laesaKNNAllocBudget = 8

func TestLAESAKNNSearchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := NewLAESA(ds, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	var q core.Object = ds.Objects()[42]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.KNNSearch(q, 10); err != nil {
			panic(err)
		}
	})
	if allocs > laesaKNNAllocBudget {
		t.Fatalf("LAESA.KNNSearch allocated %.1f times per query; budget is %d", allocs, laesaKNNAllocBudget)
	}
}

// TestLAESAFlatKNNHotLoopZeroAllocs is the steady-state witness of the
// flat kernel path: with the scratch pool warm, one kNN scan — query-
// pivot batch, column sweep, flat verification — performs zero
// allocations. Only assembling the answer slice (Result) allocates, and
// it stays outside the measured loop. The loop's callees carry
// //metriclint:noalloc, so a regression fails `make lint` too.
func TestLAESAFlatKNNHotLoopZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := NewLAESA(ds, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.useFlat() {
		t.Fatal("flat path not armed on a pure-vector dataset")
	}
	var q core.Object = ds.Objects()[42]
	if _, err := idx.KNNSearch(q, 10); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sc := idx.queryPrep(q)
		q64, q32, ok := idx.flat.QueryCoords(q, sc)
		if !ok {
			panic("query does not fit the flat mirror")
		}
		h := sc.Heap(10)
		idx.knnFlat(q64, q32, sc, h)
		idx.scratch.Put(sc)
	})
	if allocs != 0 {
		t.Fatalf("flat kNN hot loop allocated %.1f times per query; want 0", allocs)
	}
}
