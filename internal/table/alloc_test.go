package table

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// laesaKNNAllocBudget bounds the allocations of one uncached LAESA kNN
// query (measured 6/op: the query-distance row, the candidate heap, the
// sorted answer, and sort.Slice internals). The budget leaves modest
// headroom for toolchain drift; a regression that adds per-candidate
// allocation blows far past it.
const laesaKNNAllocBudget = 8

func TestLAESAKNNSearchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	idx, err := NewLAESA(ds, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	var q core.Object = ds.Objects()[42]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.KNNSearch(q, 10); err != nil {
			panic(err)
		}
	})
	if allocs > laesaKNNAllocBudget {
		t.Fatalf("LAESA.KNNSearch allocated %.1f times per query; budget is %d", allocs, laesaKNNAllocBudget)
	}
}
