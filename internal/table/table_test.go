package table

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/testutil"
)

func newVectorLAESA(t *testing.T, n int) (*LAESA, *core.Dataset) {
	t.Helper()
	ds := testutil.VectorDataset(n, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := NewLAESA(ds, pv)
	if err != nil {
		t.Fatalf("NewLAESA: %v", err)
	}
	return idx, ds
}

func TestLAESARangeMatchesBruteForce(t *testing.T) {
	idx, ds := newVectorLAESA(t, 300)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
	}
}

func TestLAESAKNNMatchesBruteForce(t *testing.T) {
	idx, ds := newVectorLAESA(t, 300)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, k := range []int{1, 3, 10, 50, 300, 500} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestLAESAInsertDelete(t *testing.T) {
	idx, ds := newVectorLAESA(t, 120)
	q := testutil.RandomQuery(ds, 9)

	// Delete a third of the objects (index first, then dataset).
	for id := 0; id < 120; id += 3 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatalf("dataset Delete(%d): %v", id, err)
		}
	}
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 10)

	// Reinsert fresh objects into the freed slots.
	for i := 0; i < 40; i++ {
		id := ds.Insert(core.Vector{float64(i), float64(i), 1, 2})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 25)
}

func TestLAESADeleteUnknownFails(t *testing.T) {
	idx, _ := newVectorLAESA(t, 20)
	if err := idx.Delete(999); err == nil {
		t.Fatal("Delete(999) should fail")
	}
	if err := idx.Insert(5); err == nil {
		t.Fatal("duplicate Insert(5) should fail")
	}
}

func TestLAESAPivotDeletionSafe(t *testing.T) {
	idx, ds := newVectorLAESA(t, 100)
	p := idx.Pivots()[0]
	if err := idx.Delete(p); err != nil {
		t.Fatalf("Delete(pivot %d): %v", p, err)
	}
	if err := ds.Delete(p); err != nil {
		t.Fatalf("dataset Delete(%d): %v", p, err)
	}
	q := testutil.RandomQuery(ds, 1)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 7)
}

// TestLAESAVector32 runs a LAESA over float32 vectors end to end: the
// flat path must arm with the float32 mirror, answers must match brute
// force (which goes through scalar Distance on the same widened
// kernels), and updates must keep the mirror in lockstep.
func TestLAESAVector32(t *testing.T) {
	for _, m := range []core.Metric{core.L1{}, core.L2{}, core.LInf{}} {
		ds := testutil.Vector32Dataset(300, 4, 100, m, 7)
		pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
		if err != nil {
			t.Fatalf("HFI: %v", err)
		}
		idx, err := NewLAESA(ds, pv)
		if err != nil {
			t.Fatalf("NewLAESA: %v", err)
		}
		if !idx.useFlat() {
			t.Fatalf("%s: flat path not armed on a Vector32 dataset", m.Name())
		}
		for qs := int64(0); qs < 4; qs++ {
			q := testutil.RandomQuery(ds, qs)
			for _, r := range testutil.Radii(ds, q) {
				testutil.CheckRange(t, idx, ds, q, r)
			}
			testutil.CheckKNN(t, idx, ds, q, 10)
		}
		for id := 0; id < 60; id += 3 {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("Delete(%d): %v", id, err)
			}
			if err := ds.Delete(id); err != nil {
				t.Fatalf("dataset Delete(%d): %v", id, err)
			}
		}
		for i := 0; i < 20; i++ {
			id := ds.Insert(core.Vector32{float32(i), float32(i), 1, 2})
			if err := idx.Insert(id); err != nil {
				t.Fatalf("Insert(%d): %v", id, err)
			}
		}
		if !idx.useFlat() {
			t.Fatalf("%s: flat path lost across updates", m.Name())
		}
		q := testutil.RandomQuery(ds, 9)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 15)
	}
}

func TestLAESAWords(t *testing.T) {
	ds := testutil.WordDataset(250, 11)
	pv, err := pivot.HFI(ds, 3, pivot.Options{Seed: 5})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := NewLAESA(ds, pv)
	if err != nil {
		t.Fatalf("NewLAESA: %v", err)
	}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 5} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 8)
	}
}

func TestLAESAStats(t *testing.T) {
	idx, _ := newVectorLAESA(t, 64)
	if idx.PageAccesses() != 0 || idx.DiskBytes() != 0 {
		t.Fatal("LAESA must report zero disk activity")
	}
	if idx.MemBytes() <= 0 {
		t.Fatal("LAESA must report positive memory size")
	}
	if idx.Len() != 64 {
		t.Fatalf("Len = %d, want 64", idx.Len())
	}
	if idx.Name() != "LAESA" {
		t.Fatalf("Name = %q", idx.Name())
	}
}

func TestAESAMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(120, 3, 50, core.L2{}, 13)
	idx, err := NewAESA(ds)
	if err != nil {
		t.Fatalf("NewAESA: %v", err)
	}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 5, 20, 120} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestAESAFewerCompdistsThanLAESA(t *testing.T) {
	ds := testutil.VectorDataset(200, 3, 50, core.L2{}, 17)
	aesa, err := NewAESA(ds)
	if err != nil {
		t.Fatalf("NewAESA: %v", err)
	}
	pv, _ := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	laesa, err := NewLAESA(ds, pv)
	if err != nil {
		t.Fatalf("NewLAESA: %v", err)
	}
	q := testutil.RandomQuery(ds, 5)

	ds.Space().ResetCompDists()
	if _, err := aesa.KNNSearch(q, 5); err != nil {
		t.Fatal(err)
	}
	aCost := ds.Space().CompDists()

	ds.Space().ResetCompDists()
	if _, err := laesa.KNNSearch(q, 5); err != nil {
		t.Fatal(err)
	}
	lCost := ds.Space().CompDists()

	if aCost > lCost {
		t.Fatalf("AESA used %d compdists, LAESA %d; AESA must not be worse", aCost, lCost)
	}
}

func TestAESAInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(80, 3, 50, core.L2{}, 19)
	idx, err := NewAESA(ds)
	if err != nil {
		t.Fatalf("NewAESA: %v", err)
	}
	for id := 0; id < 80; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		id := ds.Insert(core.Vector{float64(i * 3), 1, 2})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 12)
}

func TestParallelLAESAMatchesSequential(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 23)
	pv, _ := pivot.HFI(ds, 5, pivot.Options{Seed: 3})
	seq, err := NewLAESA(ds, pv)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewLAESAParallel(ds, pv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Len() != seq.Len() {
		t.Fatalf("Len %d vs %d", par.Len(), seq.Len())
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			a, _ := seq.RangeSearch(q, r)
			b, _ := par.RangeSearch(q, r)
			if len(a) != len(b) {
				t.Fatalf("r=%v: %d vs %d results", r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("r=%v: id %d differs", r, i)
				}
			}
		}
		testutil.CheckKNN(t, par, ds, q, 20)
	}
	// The parallel build must count exactly the same compdists.
	ds2 := testutil.VectorDataset(400, 4, 100, core.L2{}, 23)
	pv2, _ := pivot.HFI(ds2, 5, pivot.Options{Seed: 3})
	ds2.Space().ResetCompDists()
	if _, err := NewLAESAParallel(ds2, pv2, 8); err != nil {
		t.Fatal(err)
	}
	if got, want := ds2.Space().CompDists(), int64(400*5); got != want {
		t.Fatalf("parallel build compdists %d, want %d", got, want)
	}
	if _, err := NewLAESAParallel(ds, nil, 2); err == nil {
		t.Fatal("no pivots must fail")
	}
}

// TestInsertInvalidIDErrors is the regression test for the nil-object
// panic: inserting a deleted or out-of-range id must return an error, not
// pass nil into the metric's type assertion.
func TestInsertInvalidIDErrors(t *testing.T) {
	ds := testutil.VectorDataset(40, 3, 100, core.L2{}, 31)
	pv, err := pivot.HFI(ds, 3, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	laesa, err := NewLAESA(ds, pv)
	if err != nil {
		t.Fatal(err)
	}
	aesa, err := NewAESA(ds)
	if err != nil {
		t.Fatal(err)
	}
	victim := 11
	for _, idx := range []core.Index{laesa, aesa} {
		if err := idx.Delete(victim); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []core.Index{laesa, aesa} {
		if err := idx.Insert(victim); err == nil {
			t.Errorf("%s: Insert of deleted id should error", idx.Name())
		}
		if err := idx.Insert(1000); err == nil {
			t.Errorf("%s: Insert of out-of-range id should error", idx.Name())
		}
		if err := idx.Insert(-2); err == nil {
			t.Errorf("%s: Insert of negative id should error", idx.Name())
		}
	}
}
