package table

import (
	"fmt"
	"math"

	"metricindex/internal/core"
)

// AESA is the Approximating and Eliminating Search Algorithm of [28]: it
// stores the full n×n distance matrix, so every already-verified object
// acts as a pivot for the rest of the search. Its O(n²) storage makes it
// "a theoretical metric index" (§3.1) — the paper describes it but
// excludes it from the large-scale experiments, and so do we; it serves as
// the strongest-possible-filtering baseline in tests and small examples.
type AESA struct {
	ds      *core.Dataset
	ids     []int32
	rowOf   map[int]int
	dist    [][]float64 // symmetric matrix over rows
	scratch core.ScratchPool
}

// queryState draws per-query scratch and returns the zeroed lower-bound
// and visited arrays (steady-state queries reuse the same buffers).
func (a *AESA) queryState() (sc *core.Scratch, lb []float64, done []bool) {
	n := len(a.ids)
	sc = a.scratch.Get()
	lb = sc.GrowLB(n)
	for i := range lb {
		lb[i] = 0
	}
	done = sc.GrowDone(n)
	return sc, lb, done
}

// NewAESA builds the full distance matrix (n(n-1)/2 computations through
// the counted space).
func NewAESA(ds *core.Dataset) (*AESA, error) {
	a := &AESA{ds: ds, rowOf: make(map[int]int)}
	for _, id := range ds.LiveIDs() {
		if err := a.Insert(id); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Name returns "AESA".
func (a *AESA) Name() string { return "AESA" }

// Len returns the number of indexed objects.
func (a *AESA) Len() int { return len(a.ids) }

// RangeSearch answers MRQ(q, r) with the classic AESA loop: repeatedly
// verify the unpruned object with the smallest lower bound, then use its
// (stored) distances to every other object to tighten all lower bounds.
func (a *AESA) RangeSearch(q core.Object, r float64) ([]int, error) {
	n := len(a.ids)
	sc, lb, done := a.queryState()
	defer a.scratch.Put(sc)
	var res []int
	for remaining := n; remaining > 0; remaining-- {
		best, bestLB := -1, math.Inf(1)
		for row := 0; row < n; row++ {
			if !done[row] && lb[row] < bestLB {
				bestLB = lb[row]
				best = row
			}
		}
		if best < 0 || bestLB > r {
			break // every remaining object is pruned
		}
		done[best] = true
		d := a.ds.DistanceTo(q, int(a.ids[best]))
		if d <= r {
			res = append(res, int(a.ids[best]))
		}
		for row := 0; row < n; row++ {
			if done[row] {
				continue
			}
			if b := math.Abs(d - a.dist[best][row]); b > lb[row] {
				lb[row] = b
			}
		}
	}
	sortInts(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) with the same approximate-and-eliminate
// loop, shrinking the radius as the heap fills.
func (a *AESA) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	n := len(a.ids)
	sc, lb, done := a.queryState()
	defer a.scratch.Put(sc)
	h := sc.Heap(k)
	for remaining := n; remaining > 0; remaining-- {
		best, bestLB := -1, math.Inf(1)
		for row := 0; row < n; row++ {
			if !done[row] && lb[row] < bestLB {
				bestLB = lb[row]
				best = row
			}
		}
		if best < 0 || bestLB > h.Radius() {
			break
		}
		done[best] = true
		d := a.ds.DistanceTo(q, int(a.ids[best]))
		h.Push(int(a.ids[best]), d)
		for row := 0; row < n; row++ {
			if done[row] {
				continue
			}
			if b := math.Abs(d - a.dist[best][row]); b > lb[row] {
				lb[row] = b
			}
		}
	}
	return h.Result(), nil
}

// Insert adds an object, computing its distance to every indexed object.
func (a *AESA) Insert(id int) error {
	if _, dup := a.rowOf[id]; dup {
		return fmt.Errorf("aesa: duplicate insert of %d", id)
	}
	if a.ds.Object(id) == nil {
		return fmt.Errorf("aesa: insert of deleted or out-of-range id %d", id)
	}
	row := len(a.ids)
	newRow := make([]float64, row+1)
	for r2 := 0; r2 < row; r2++ {
		d := a.ds.Distance(id, int(a.ids[r2]))
		newRow[r2] = d
		a.dist[r2] = append(a.dist[r2], d)
	}
	a.dist = append(a.dist, newRow)
	a.rowOf[id] = row
	a.ids = append(a.ids, int32(id))
	return nil
}

// Delete removes an object's row and column from the matrix.
func (a *AESA) Delete(id int) error {
	row, ok := a.rowOf[id]
	if !ok {
		return fmt.Errorf("aesa: delete of unindexed object %d", id)
	}
	last := len(a.ids) - 1
	lastID := int(a.ids[last])
	// Move last row/column into the vacated slot.
	a.ids[row] = a.ids[last]
	a.ids = a.ids[:last]
	for r2 := range a.dist {
		a.dist[r2][row] = a.dist[r2][last]
		a.dist[r2] = a.dist[r2][:last]
	}
	a.dist[row] = a.dist[last]
	a.dist = a.dist[:last]
	if row < last {
		a.dist[row][row] = 0
	}
	a.rowOf[lastID] = row
	delete(a.rowOf, id)
	return nil
}

// PageAccesses returns 0: AESA is an in-memory index.
func (a *AESA) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (a *AESA) ResetStats() {}

// MemBytes reports the O(n²) matrix size.
func (a *AESA) MemBytes() int64 {
	n := int64(len(a.ids))
	return n*n*8 + n*4
}

// DiskBytes returns 0.
func (a *AESA) DiskBytes() int64 { return 0 }
