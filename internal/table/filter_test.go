package table

import (
	"testing"

	"metricindex/internal/plan"
	"metricindex/internal/testutil"
)

// TestLAESAFilterEquivalence runs the shared filtered-search harness:
// every strategy (and the planner's pick) must answer exactly the
// brute-force filter-then-scan. LAESA is probe-capable, so the probe
// leg exercises RangeSearchAccept/KNNSearchAccept for real.
func TestLAESAFilterEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 300, 7) {
		idx, err := NewLAESA(ed.DS, ed.Pivots)
		if err != nil {
			t.Fatalf("%s: NewLAESA: %v", ed.Name, err)
		}
		if !plan.Capable(idx) {
			t.Fatalf("%s: LAESA must be probe-capable", ed.Name)
		}
		testutil.CheckFilterEquivalence(t, ed, idx)
	}
}
