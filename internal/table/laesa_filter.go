package table

import "metricindex/internal/core"

// Probe-filtered search (core.AcceptSearcher): the attribute predicate
// is applied to every candidate that survives the Lemma 1 column sweep,
// *before* its distance is computed. Rejected candidates therefore cost
// zero compdists — the whole point of the probe-filter strategy — while
// the geometric pruning is untouched, so the answer is exactly the
// accepted subset of the unfiltered answer.

// RangeSearchAccept answers MRQ(q, r) restricted to accepted ids. A nil
// accept is the unfiltered search.
func (t *LAESA) RangeSearchAccept(q core.Object, r float64, accept core.Accept) ([]int, error) {
	if accept == nil {
		return t.RangeSearch(q, r)
	}
	sc := t.queryPrep(q)
	sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, 0, len(t.ids), r)
	var res []int
	if t.useFlat() {
		if q64, q32, ok := t.flat.QueryCoords(q, sc); ok {
			ndist := 0
			for _, row := range sur {
				id := int(t.ids[row])
				if !accept(id) {
					continue
				}
				pre := t.flat.Pre(&t.kern, q64, q32, int(row))
				ndist++
				if t.kern.Exceeds(pre, r) {
					continue
				}
				if t.kern.Finish(pre) <= r {
					res = append(res, id)
				}
			}
			t.ds.Space().CountDistances(ndist)
			t.scratch.Put(sc)
			sortInts(res)
			return res, nil
		}
	}
	objs := t.ds.Objects()
	m := 0
	for _, row := range sur {
		id := t.ids[row]
		if !accept(int(id)) {
			continue
		}
		sc.IDs[m] = id
		sc.Objs[m] = objs[id]
		m++
		if m == len(sc.IDs) {
			res = flushRange(t.ds.Space(), q, sc, m, r, res)
			m = 0
		}
	}
	if m > 0 {
		res = flushRange(t.ds.Space(), q, sc, m, r, res)
	}
	t.scratch.Put(sc)
	sortInts(res)
	return res, nil
}

// KNNSearchAccept answers MkNNQ(q, k) over accepted ids only. The scan
// is the staged block sweep of KNNSearch without the unconditional seed
// prefix (a rejected seed row must not cost a distance), so the radius
// stays +Inf until k accepted candidates have been verified and
// tightens from there.
func (t *LAESA) KNNSearchAccept(q core.Object, k int, accept core.Accept) ([]core.Neighbor, error) {
	if accept == nil {
		return t.KNNSearch(q, k)
	}
	if k <= 0 {
		return nil, nil
	}
	sc := t.queryPrep(q)
	h := sc.Heap(k)
	if t.useFlat() {
		if q64, q32, ok := t.flat.QueryCoords(q, sc); ok {
			t.knnFlatAccept(q64, q32, sc, h, accept)
			res := h.Result()
			t.scratch.Put(sc)
			return res, nil
		}
	}
	t.knnObjsAccept(q, sc, h, accept)
	res := h.Result()
	t.scratch.Put(sc)
	return res, nil
}

// knnFlatAccept is the flat-kernel filtered kNN loop: accept test, then
// Lemma 1 recheck at the current radius, then (and only then) the
// distance.
//
//metriclint:noalloc
func (t *LAESA) knnFlatAccept(q64 []float64, q32 []float32, sc *core.Scratch, h *core.KNNHeap, accept core.Accept) {
	ndist := 0
	for base, blk := 0, knnBlockMin; base < len(t.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(t.ids) {
			end = len(t.ids)
		}
		sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, base, end, h.Radius())
		for _, row := range sur {
			if !accept(int(t.ids[row])) {
				continue
			}
			r := h.Radius()
			if core.PruneRowAt(sc.QD, t.cols, int(row), r) {
				continue
			}
			pre := t.flat.Pre(&t.kern, q64, q32, int(row))
			ndist++
			if t.kern.Exceeds(pre, r) {
				continue
			}
			h.Push(int(t.ids[row]), t.kern.Finish(pre))
		}
	}
	t.ds.Space().CountDistances(ndist)
}

// knnObjsAccept is the Object-fallback filtered kNN loop, chunked
// through DistanceMany like knnObjs.
//
//metriclint:noalloc
func (t *LAESA) knnObjsAccept(q core.Object, sc *core.Scratch, h *core.KNNHeap, accept core.Accept) {
	objs := t.ds.Objects()
	m := 0
	for base, blk := 0, knnBlockMin; base < len(t.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(t.ids) {
			end = len(t.ids)
		}
		sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, t.qcol, t.cols, base, end, h.Radius())
		for _, row := range sur {
			id := t.ids[row]
			if !accept(int(id)) {
				continue
			}
			if core.PruneRowAt(sc.QD, t.cols, int(row), h.Radius()) {
				continue
			}
			sc.IDs[m] = id
			sc.Objs[m] = objs[id]
			m++
			if m == len(sc.IDs) {
				flushKNN(t.ds.Space(), q, sc, m, h)
				m = 0
			}
		}
	}
	if m > 0 {
		flushKNN(t.ds.Space(), q, sc, m, h)
	}
}
