package table

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/testutil"
)

// TestLAESALoadsVersion1Payload hand-encodes the version-1 (row-major)
// LAESA payload of an index built fresh, loads it through the registered
// loader, and checks the restored table and its answers are identical —
// the compatibility promise of the version-2 column-major bump.
func TestLAESALoadsVersion1Payload(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	idx, err := NewLAESA(ds, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	w := persist.NewWriter()
	w.U16(1)
	w.Ints(idx.pivotIDs)
	w.Objects(idx.pivotVals)
	w.Int32s(idx.ids)
	rows := len(idx.ids)
	dists := make([]float64, rows*len(idx.cols))
	for i, col := range idx.cols {
		for row, d := range col {
			dists[row*len(idx.cols)+i] = d
		}
	}
	w.Floats(dists)

	restoredIdx, _, err := loadLAESA(ds, persist.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("load v1 payload: %v", err)
	}
	restored := restoredIdx.(*LAESA)
	if !reflect.DeepEqual(restored.cols, idx.cols) {
		t.Fatal("v1 load did not transpose to the original columns")
	}
	if !restored.useFlat() {
		t.Fatal("v1 load did not arm the flat path")
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		a, err := idx.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("MRQ answers differ after v1 load: %v vs %v", a, b)
		}
		an, err := idx.KNNSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := restored.KNNSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(an, bn) {
			t.Fatalf("MkNNQ answers differ after v1 load: %v vs %v", an, bn)
		}
	}
}
