// Package sfc implements space-filling curves over d-dimensional integer
// grids: the Hilbert curve the SPB-tree uses to map pre-computed distance
// vectors to single integer keys while preserving spatial proximity
// (§5.4), and the Z-order (Morton) curve as the ablation baseline.
//
// Both curves operate on points with Dims coordinates of Bits bits each,
// with Dims*Bits <= 64 so a key fits in uint64.
package sfc

import "fmt"

// Curve maps grid points to one-dimensional keys and back.
type Curve interface {
	// Encode maps a point (one value per dimension, each < 2^Bits) to its
	// curve key.
	Encode(point []uint32) uint64
	// Decode inverts Encode.
	Decode(key uint64) []uint32
	// Dims returns the dimensionality.
	Dims() int
	// Bits returns the bits per coordinate.
	Bits() int
	// Name identifies the curve ("hilbert" or "zorder").
	Name() string
}

// Hilbert is the d-dimensional Hilbert curve (Skilling's transpose
// algorithm, "Programming the Hilbert curve", 2004).
type Hilbert struct {
	dims, bits int
}

// NewHilbert validates the grid shape and returns the curve.
func NewHilbert(dims, bits int) (*Hilbert, error) {
	if err := validate(dims, bits); err != nil {
		return nil, err
	}
	return &Hilbert{dims: dims, bits: bits}, nil
}

func validate(dims, bits int) error {
	if dims < 1 {
		return fmt.Errorf("sfc: need at least one dimension, got %d", dims)
	}
	if bits < 1 || dims*bits > 64 {
		return fmt.Errorf("sfc: dims*bits = %d*%d must be in [1, 64]", dims, bits)
	}
	return nil
}

// Dims returns the dimensionality.
func (h *Hilbert) Dims() int { return h.dims }

// Bits returns the bits per coordinate.
func (h *Hilbert) Bits() int { return h.bits }

// Name returns "hilbert".
func (h *Hilbert) Name() string { return "hilbert" }

// Encode maps a point to its Hilbert index.
func (h *Hilbert) Encode(point []uint32) uint64 {
	x := make([]uint32, h.dims)
	copy(x, point)
	axesToTranspose(x, h.bits)
	return interleave(x, h.bits)
}

// Decode maps a Hilbert index back to its point.
func (h *Hilbert) Decode(key uint64) []uint32 {
	x := deinterleave(key, h.dims, h.bits)
	transposeToAxes(x, h.bits)
	return x
}

// axesToTranspose converts coordinates into the "transposed" Hilbert form
// in place (Skilling's AxestoTranspose).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place (Skilling's
// TransposetoAxes).
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	top := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != top; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

// interleave packs the transposed form into a single key: bit (b-1-k) of
// every dimension, most significant coordinate bit first.
func interleave(x []uint32, bits int) uint64 {
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < len(x); i++ {
			key = key<<1 | uint64((x[i]>>uint(b))&1)
		}
	}
	return key
}

// deinterleave splits a key back into the transposed form.
func deinterleave(key uint64, dims, bits int) []uint32 {
	x := make([]uint32, dims)
	pos := dims*bits - 1
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			x[i] |= uint32((key>>uint(pos))&1) << uint(b)
			pos--
		}
	}
	return x
}

// ZOrder is the Morton (bit-interleaving) curve, the simpler alternative
// used by the SFC ablation benchmark.
type ZOrder struct {
	dims, bits int
}

// NewZOrder validates the grid shape and returns the curve.
func NewZOrder(dims, bits int) (*ZOrder, error) {
	if err := validate(dims, bits); err != nil {
		return nil, err
	}
	return &ZOrder{dims: dims, bits: bits}, nil
}

// Dims returns the dimensionality.
func (z *ZOrder) Dims() int { return z.dims }

// Bits returns the bits per coordinate.
func (z *ZOrder) Bits() int { return z.bits }

// Name returns "zorder".
func (z *ZOrder) Name() string { return "zorder" }

// Encode interleaves the coordinate bits.
func (z *ZOrder) Encode(point []uint32) uint64 {
	var key uint64
	for b := z.bits - 1; b >= 0; b-- {
		for i := 0; i < z.dims; i++ {
			key = key<<1 | uint64((point[i]>>uint(b))&1)
		}
	}
	return key
}

// Decode de-interleaves the key.
func (z *ZOrder) Decode(key uint64) []uint32 {
	return deinterleave(key, z.dims, z.bits)
}

// PackCorner packs a coordinate vector into a uint64 by plain
// concatenation (Bits bits per dimension). The SPB-tree stores MBB corners
// of non-leaf entries as two such packed integers (§5.4 stores them as SFC
// values; plain packing is an equivalent compact integer encoding whose
// decode is exact and cheaper).
func PackCorner(point []uint32, bits int) uint64 {
	var key uint64
	for _, c := range point {
		key = key<<uint(bits) | uint64(c&((1<<uint(bits))-1))
	}
	return key
}

// UnpackCorner inverts PackCorner.
func UnpackCorner(key uint64, dims, bits int) []uint32 {
	out := make([]uint32, dims)
	mask := uint64(1)<<uint(bits) - 1
	for i := dims - 1; i >= 0; i-- {
		out[i] = uint32(key & mask)
		key >>= uint(bits)
	}
	return out
}
