package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertRoundTrip(t *testing.T) {
	shapes := []struct{ dims, bits int }{
		{1, 8}, {2, 4}, {2, 16}, {3, 8}, {5, 12}, {7, 9}, {9, 7}, {16, 4},
	}
	for _, s := range shapes {
		h, err := NewHilbert(s.dims, s.bits)
		if err != nil {
			t.Fatalf("NewHilbert(%d,%d): %v", s.dims, s.bits, err)
		}
		rng := rand.New(rand.NewSource(int64(s.dims*100 + s.bits)))
		for trial := 0; trial < 500; trial++ {
			p := make([]uint32, s.dims)
			for i := range p {
				p[i] = rng.Uint32() & ((1 << uint(s.bits)) - 1)
			}
			got := h.Decode(h.Encode(p))
			for i := range p {
				if got[i] != p[i] {
					t.Fatalf("dims=%d bits=%d: round trip %v -> %v", s.dims, s.bits, p, got)
				}
			}
		}
	}
}

func TestHilbertBijectiveSmallGrid(t *testing.T) {
	h, err := NewHilbert(2, 4) // 256 cells
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64][]uint32)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			k := h.Encode([]uint32{x, y})
			if k >= 256 {
				t.Fatalf("key %d out of range for 2x4-bit grid", k)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %d maps both %v and (%d,%d)", k, prev, x, y)
			}
			seen[k] = []uint32{x, y}
		}
	}
	if len(seen) != 256 {
		t.Fatalf("expected 256 distinct keys, got %d", len(seen))
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert keys must be adjacent grid cells (unit L1 step):
	// the locality property the SPB-tree exploits.
	for _, s := range []struct{ dims, bits int }{{2, 5}, {3, 4}} {
		h, err := NewHilbert(s.dims, s.bits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(s.dims*s.bits)
		prev := h.Decode(0)
		for k := uint64(1); k < total; k++ {
			cur := h.Decode(k)
			var l1 int64
			for i := range cur {
				d := int64(cur[i]) - int64(prev[i])
				if d < 0 {
					d = -d
				}
				l1 += d
			}
			if l1 != 1 {
				t.Fatalf("dims=%d bits=%d: keys %d->%d jump L1=%d (%v -> %v)",
					s.dims, s.bits, k-1, k, l1, prev, cur)
			}
			prev = cur
		}
	}
}

func TestZOrderRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	z, err := NewZOrder(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d, e uint32) bool {
		p := []uint32{a & 0xFFF, b & 0xFFF, c & 0xFFF, d & 0xFFF, e & 0xFFF}
		got := z.Decode(z.Encode(p))
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertBetterLocalityThanZOrder(t *testing.T) {
	// Average L1 jump between consecutive keys: Hilbert is exactly 1;
	// Z-order must be strictly worse. This is the premise of the paper's
	// choice of curve for the SPB-tree.
	dims, bits := 2, 6
	h, _ := NewHilbert(dims, bits)
	z, _ := NewZOrder(dims, bits)
	total := uint64(1) << uint(dims*bits)
	jump := func(c Curve) float64 {
		var sum int64
		prev := c.Decode(0)
		for k := uint64(1); k < total; k++ {
			cur := c.Decode(k)
			for i := range cur {
				d := int64(cur[i]) - int64(prev[i])
				if d < 0 {
					d = -d
				}
				sum += d
			}
			prev = cur
		}
		return float64(sum) / float64(total-1)
	}
	hj, zj := jump(h), jump(z)
	if hj >= zj {
		t.Fatalf("hilbert mean jump %.3f should beat zorder %.3f", hj, zj)
	}
}

func TestPackCornerRoundTrip(t *testing.T) {
	f := func(a, b, c uint32) bool {
		p := []uint32{a & 0x3FF, b & 0x3FF, c & 0x3FF}
		got := UnpackCorner(PackCorner(p, 10), 3, 10)
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewHilbert(0, 8); err == nil {
		t.Fatal("dims=0 must fail")
	}
	if _, err := NewHilbert(9, 8); err == nil {
		t.Fatal("9*8=72 bits must fail")
	}
	if _, err := NewZOrder(4, 0); err == nil {
		t.Fatal("bits=0 must fail")
	}
}
