package spb

import (
	"testing"

	"metricindex/internal/plan"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// TestSPBFilterEquivalence runs the shared filtered-search harness.
// The SPB-tree does not implement core.AcceptSearcher (its candidates
// surface from the B+-tree leaf scan with RAF verification), so the
// forced probe leg degrades to post-filtering and must still answer
// exactly the brute-force filter-then-scan.
func TestSPBFilterEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 250, 7) {
		idx, err := New(ed.DS, store.NewPager(0), ed.Pivots, Options{MaxDistance: ed.MaxDistance})
		if err != nil {
			t.Fatalf("%s: New: %v", ed.Name, err)
		}
		if plan.Capable(idx) {
			t.Fatalf("%s: SPB-tree unexpectedly probe-capable; drop the degradation comment", ed.Name)
		}
		testutil.CheckFilterEquivalence(t, ed, idx)
	}
}
