package spb

import (
	"fmt"

	"metricindex/internal/bptree"
	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/sfc"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the SPB-tree (spec: docs/PERSISTENCE.md
// §SPB-tree): the pager volume image (B+-tree pages + RAF pages), the RAF
// state, the build options and pivots, and the B+-tree root/size. The
// Hilbert curve and grid scale are re-derived from MaxDistance and the
// bit width.

const spbFormatVersion = 1

func init() {
	persist.Register("SPB-tree", loadSPB)
}

// EncodeSnapshot writes the SPB-tree payload.
func (s *SPB) EncodeSnapshot(w *persist.Writer) error {
	w.U16(spbFormatVersion)
	w.Blob(s.pager.Serialize())
	w.Blob(s.raf.Serialize())
	w.F64(s.opts.MaxDistance)
	w.U32(uint32(s.bits))
	w.Ints(s.pivotIDs)
	w.Objects(s.pivotVals)
	w.U32(uint32(s.tree.Root()))
	w.U32(uint32(s.tree.Len()))
	w.U32(uint32(s.size))
	return nil
}

func loadSPB(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != spbFormatVersion {
		return nil, nil, fmt.Errorf("spb: unsupported payload version %d", v)
	}
	pagerBlob := r.Blob()
	rafBlob := r.Blob()
	maxDist := r.F64()
	bits := int(r.U32())
	pivotIDs := r.Ints()
	pivotVals := r.Objects()
	root := store.PageID(r.U32())
	treeLen := int(r.U32())
	size := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(pivotVals) != len(pivotIDs) || len(pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("spb: %d pivot values for %d pivot ids", len(pivotVals), len(pivotIDs))
	}
	if maxDist <= 0 {
		return nil, nil, fmt.Errorf("spb: non-positive MaxDistance %v", maxDist)
	}
	if bits < 1 || bits*len(pivotIDs) > 64 {
		return nil, nil, fmt.Errorf("spb: %d pivots × %d bits exceeds 64-bit keys", len(pivotIDs), bits)
	}
	pager, err := store.LoadPager(pagerBlob)
	if err != nil {
		return nil, nil, err
	}
	raf, err := store.LoadRAF(pager, rafBlob)
	if err != nil {
		return nil, nil, err
	}
	curve, err := sfc.NewHilbert(len(pivotIDs), bits)
	if err != nil {
		return nil, nil, err
	}
	s := &SPB{
		ds:        ds,
		pager:     pager,
		opts:      Options{MaxDistance: maxDist, Bits: bits},
		pivotIDs:  pivotIDs,
		pivotVals: pivotVals,
		curve:     curve,
		raf:       raf,
		scale:     float64(uint64(1)<<uint(bits)-1) / maxDist,
		bits:      bits,
		size:      size,
	}
	s.tree, err = bptree.Restore(pager, cornerAug{curve: curve, bits: bits, dims: len(pivotIDs)}, root, treeLen)
	if err != nil {
		return nil, nil, err
	}
	return s, pager, nil
}
