// Package spb implements the SPB-tree of [12] (§5.4): pre-computed pivot
// distances are discretized onto an integer grid, mapped to a single
// integer by a Hilbert space-filling curve (preserving proximity), and
// indexed by a B+-tree whose non-leaf entries carry packed MBB corners;
// the objects live in a RAF laid out in SFC order for locality.
//
// The SFC compression is why the SPB-tree has the smallest storage and
// I/O costs in Table 4, and the discretization is why its pruning is
// slightly weaker than exact-distance indexes on continuous metrics
// (§5.4, §6.5.2): all filtering here widens distances to the enclosing
// grid cell, staying conservative.
package spb

import (
	"container/heap"
	"fmt"
	"sort"

	"metricindex/internal/bptree"
	"metricindex/internal/core"
	"metricindex/internal/sfc"
	"metricindex/internal/store"
)

// Options tunes construction.
type Options struct {
	// MaxDistance is d⁺, the discretization range. Required.
	MaxDistance float64
	// Bits per dimension (0 = as many as fit: min(16, 62/len(pivots))).
	Bits int
}

// SPB is the SPB-tree handle.
type SPB struct {
	ds        *core.Dataset
	pager     *store.Pager
	opts      Options
	pivotIDs  []int
	pivotVals []core.Object
	curve     *sfc.Hilbert
	tree      *bptree.Tree
	raf       *store.RAF
	scale     float64 // grid cells per distance unit
	bits      int
	size      int
}

// cornerAug packs per-dimension grid corners into the B+-tree's
// augmentation slots.
type cornerAug struct {
	curve *sfc.Hilbert
	bits  int
	dims  int
}

// Leaf returns the (point) MBB of one record: its decoded grid cell.
func (a cornerAug) Leaf(key, val uint64) (uint64, uint64) {
	pt := a.curve.Decode(key)
	packed := sfc.PackCorner(pt, a.bits)
	return packed, packed
}

// Merge widens the corner box.
func (a cornerAug) Merge(lo1, hi1, lo2, hi2 uint64) (uint64, uint64) {
	l1 := sfc.UnpackCorner(lo1, a.dims, a.bits)
	h1 := sfc.UnpackCorner(hi1, a.dims, a.bits)
	l2 := sfc.UnpackCorner(lo2, a.dims, a.bits)
	h2 := sfc.UnpackCorner(hi2, a.dims, a.bits)
	for i := 0; i < a.dims; i++ {
		if l2[i] < l1[i] {
			l1[i] = l2[i]
		}
		if h2[i] > h1[i] {
			h1[i] = h2[i]
		}
	}
	return sfc.PackCorner(l1, a.bits), sfc.PackCorner(h1, a.bits)
}

// New builds the SPB-tree over all live objects: distances are computed,
// discretized, Hilbert-mapped, and bulk-inserted in key order so the RAF
// is laid out along the curve.
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*SPB, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("spb: no pivots")
	}
	if opts.MaxDistance <= 0 {
		return nil, fmt.Errorf("spb: MaxDistance (d+) must be positive")
	}
	bits := opts.Bits
	if bits <= 0 {
		bits = 62 / len(pivots)
		if bits > 16 {
			bits = 16
		}
	}
	if bits < 1 || bits*len(pivots) > 64 {
		return nil, fmt.Errorf("spb: %d pivots × %d bits exceeds 64-bit keys", len(pivots), bits)
	}
	curve, err := sfc.NewHilbert(len(pivots), bits)
	if err != nil {
		return nil, err
	}
	s := &SPB{
		ds:       ds,
		pager:    pager,
		opts:     opts,
		pivotIDs: append([]int(nil), pivots...),
		curve:    curve,
		raf:      store.NewRAF(pager),
		scale:    float64(uint64(1)<<uint(bits)-1) / opts.MaxDistance,
		bits:     bits,
	}
	s.tree = bptree.New(pager, cornerAug{curve: curve, bits: bits, dims: len(pivots)})
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("spb: pivot %d is not a live object", p)
		}
		s.pivotVals = append(s.pivotVals, v)
	}

	// Compute keys, sort in curve order, then load.
	type rec struct {
		id  int
		key uint64
	}
	recs := make([]rec, 0, ds.Count())
	for _, id := range ds.LiveIDs() {
		recs = append(recs, rec{id, s.keyOf(ds.Object(id))})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	bulk := make([]bptree.Record, len(recs))
	for i, r := range recs {
		if _, err := s.raf.Append(r.id, store.EncodeObject(nil, ds.Object(r.id))); err != nil {
			return nil, err
		}
		bulk[i] = bptree.Record{Key: r.key, Val: uint64(r.id)}
	}
	if err := s.tree.BulkLoad(bulk); err != nil {
		return nil, err
	}
	s.size = len(bulk)
	return s, nil
}

// Name returns "SPB-tree".
func (s *SPB) Name() string { return "SPB-tree" }

// Len returns the number of indexed objects.
func (s *SPB) Len() int { return s.size }

// grid discretizes a distance to its cell index.
func (s *SPB) grid(d float64) uint32 {
	if d < 0 {
		d = 0
	}
	g := d * s.scale
	maxG := float64(uint64(1)<<uint(s.bits) - 1)
	if g > maxG {
		g = maxG
	}
	return uint32(g)
}

// cellLo / cellHi bound the true distance of a grid cell.
func (s *SPB) cellLo(g uint32) float64 { return float64(g) / s.scale }
func (s *SPB) cellHi(g uint32) float64 { return float64(g+1) / s.scale }

// keyOf computes the Hilbert key of an object (l counted distances).
func (s *SPB) keyOf(o core.Object) uint64 {
	sp := s.ds.Space()
	pt := make([]uint32, len(s.pivotVals))
	for i, p := range s.pivotVals {
		pt[i] = s.grid(sp.Distance(o, p))
	}
	return s.curve.Encode(pt)
}

// queryDists computes d(q, p_i) exactly (the query is not discretized).
func (s *SPB) queryDists(q core.Object) []float64 {
	sp := s.ds.Space()
	qd := make([]float64, len(s.pivotVals))
	for i, p := range s.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// pruneCell applies Lemma 1 conservatively to grid bounds: the cell
// [glo, ghi] survives only if some object distance inside it could fall
// in [qd−r, qd+r] for every pivot.
func (s *SPB) pruneCell(qd []float64, glo, ghi []uint32, r float64) bool {
	for i := range qd {
		if s.cellLo(glo[i]) > qd[i]+r || s.cellHi(ghi[i]) < qd[i]-r {
			return true
		}
	}
	return false
}

// validateCell applies Lemma 4 conservatively: if the *upper* bound of
// d(o,p_i) satisfies it for some pivot, the object is certainly a result.
func (s *SPB) validateCell(qd []float64, g []uint32, r float64) bool {
	for i := range qd {
		if s.cellHi(g[i]) <= r-qd[i] {
			return true
		}
	}
	return false
}

// cellMinDist is the conservative lower bound of d(q, o) for objects in
// the grid box, used for best-first ordering.
func (s *SPB) cellMinDist(qd []float64, glo, ghi []uint32) float64 {
	var m float64
	for i := range qd {
		lo, hi := s.cellLo(glo[i]), s.cellHi(ghi[i])
		var d float64
		switch {
		case qd[i] < lo:
			d = lo - qd[i]
		case qd[i] > hi:
			d = qd[i] - hi
		}
		if d > m {
			m = d
		}
	}
	return m
}

// loadObject reads an object from the RAF.
func (s *SPB) loadObject(id int) (core.Object, error) {
	buf, err := s.raf.Read(id)
	if err != nil {
		return nil, err
	}
	o, _, err := store.DecodeObject(buf)
	return o, err
}

// RangeSearch answers MRQ(q, r) by depth-first B+-tree traversal: non-leaf
// entries are pruned on their MBB corners (Lemma 1), leaf entries on
// their decoded cells, validated with Lemma 4 where possible, and
// otherwise verified against the RAF (§5.4).
func (s *SPB) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := s.queryDists(q)
	sp := s.ds.Space()
	var res []int
	var walk func(pid store.PageID) error
	walk = func(pid store.PageID) error {
		n, err := s.tree.ReadNode(pid)
		if err != nil {
			return err
		}
		if n.Leaf {
			for i := range n.Keys {
				g := s.curve.Decode(n.Keys[i])
				if s.pruneCell(qd, g, g, r) {
					continue
				}
				id := int(n.Vals[i])
				if s.validateCell(qd, g, r) {
					res = append(res, id)
					continue
				}
				o, err := s.loadObject(id)
				if err != nil {
					return err
				}
				if sp.Distance(q, o) <= r {
					res = append(res, id)
				}
			}
			return nil
		}
		for i := range n.Children {
			glo := sfc.UnpackCorner(n.AuxLo[i], len(qd), s.bits)
			ghi := sfc.UnpackCorner(n.AuxHi[i], len(qd), s.bits)
			if s.pruneCell(qd, glo, ghi, r) {
				continue
			}
			if err := walk(n.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.tree.Root()); err != nil {
		return nil, err
	}
	sort.Ints(res)
	return res, nil
}

type pqItem struct {
	pid store.PageID
	lb  float64
}

type nodePQ []pqItem

func (p nodePQ) Len() int           { return len(p) }
func (p nodePQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p nodePQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *nodePQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// KNNSearch answers MkNNQ(q, k) best-first over B+-tree nodes ordered by
// their conservative MBB lower bounds, verifying leaf candidates against
// the RAF with a tightening radius (§5.4).
func (s *SPB) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := s.queryDists(q)
	sp := s.ds.Space()
	h := core.NewKNNHeap(k)
	pq := &nodePQ{}
	heap.Push(pq, pqItem{s.tree.Root(), 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.lb > h.Radius() {
			break
		}
		n, err := s.tree.ReadNode(it.pid)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			type cand struct {
				id int
				lb float64
			}
			cands := make([]cand, 0, len(n.Keys))
			for i := range n.Keys {
				g := s.curve.Decode(n.Keys[i])
				cands = append(cands, cand{int(n.Vals[i]), s.cellMinDist(qd, g, g)})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
			for _, c := range cands {
				if c.lb > h.Radius() {
					break
				}
				o, err := s.loadObject(c.id)
				if err != nil {
					return nil, err
				}
				h.Push(c.id, sp.Distance(q, o))
			}
			continue
		}
		for i := range n.Children {
			glo := sfc.UnpackCorner(n.AuxLo[i], len(qd), s.bits)
			ghi := sfc.UnpackCorner(n.AuxHi[i], len(qd), s.bits)
			lb := s.cellMinDist(qd, glo, ghi)
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				heap.Push(pq, pqItem{n.Children[i], lb})
			}
		}
	}
	return h.Result(), nil
}

// Insert computes the object's key, appends it to the RAF (end of curve
// order), and inserts into the B+-tree.
func (s *SPB) Insert(id int) error {
	o := s.ds.Object(id)
	if o == nil {
		return fmt.Errorf("spb: insert of deleted object %d", id)
	}
	if _, err := s.raf.Append(id, store.EncodeObject(nil, o)); err != nil {
		return err
	}
	if err := s.tree.Insert(s.keyOf(o), uint64(id)); err != nil {
		return err
	}
	s.size++
	return nil
}

// Delete recomputes the object's key and removes the record.
func (s *SPB) Delete(id int) error {
	o := s.ds.Object(id)
	if o == nil {
		return fmt.Errorf("spb: delete needs the object still present in the dataset (id %d)", id)
	}
	if err := s.tree.Delete(s.keyOf(o), uint64(id)); err != nil {
		return err
	}
	s.size--
	return s.raf.Delete(id)
}

// PageAccesses reports the pager's accesses.
func (s *SPB) PageAccesses() int64 { return s.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (s *SPB) ResetStats() { s.pager.ResetStats() }

// MemBytes is small: pivot table only.
func (s *SPB) MemBytes() int64 { return int64(len(s.pivotVals)) * 64 }

// DiskBytes reports the B+-tree + RAF footprint (the family's smallest,
// per Table 4, thanks to the SFC compression of the distance vectors).
func (s *SPB) DiskBytes() int64 { return s.pager.DiskBytes() }
