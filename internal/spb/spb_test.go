package spb

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func build(t *testing.T, ds *core.Dataset, maxD float64) (*SPB, *store.Pager) {
	t.Helper()
	p := store.NewPager(512)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, p, pv, Options{MaxDistance: maxD})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, p
}

func TestSPBMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 7)
	idx, _ := build(t, ds, 300)
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 7, 40, 400} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestSPBWordsDiscrete(t *testing.T) {
	ds := testutil.WordDataset(250, 11)
	idx, _ := build(t, ds, 40)
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 9)
	}
}

func TestSPBCoarseGridStaysCorrect(t *testing.T) {
	// Few bits per dimension = heavy discretization; results must still
	// be exact (only pruning power degrades, §5.4).
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 9)
	p := store.NewPager(512)
	pv, _ := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	idx, err := New(ds, p, pv, Options{MaxDistance: 300, Bits: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := testutil.RandomQuery(ds, 5)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 20)
}

func TestSPBInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 13)
	idx, _ := build(t, ds, 300)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 15)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
	}
	if err := idx.Delete(99999); err == nil {
		t.Fatal("delete of absent id should fail")
	}
}

func TestSPBOptionsValidation(t *testing.T) {
	ds := testutil.VectorDataset(50, 3, 100, core.L2{}, 1)
	p := store.NewPager(512)
	if _, err := New(ds, p, nil, Options{MaxDistance: 10}); err == nil {
		t.Fatal("no pivots must fail")
	}
	if _, err := New(ds, p, []int{0, 1}, Options{}); err == nil {
		t.Fatal("missing MaxDistance must fail")
	}
	if _, err := New(ds, p, []int{0, 1, 2, 3}, Options{MaxDistance: 10, Bits: 17}); err == nil {
		t.Fatal("4 pivots x 17 bits must fail")
	}
}

func TestSPBStats(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 23)
	idx, p := build(t, ds, 300)
	p.ResetStats()
	q := testutil.RandomQuery(ds, 1)
	if _, err := idx.KNNSearch(q, 5); err != nil {
		t.Fatal(err)
	}
	if idx.PageAccesses() == 0 {
		t.Fatal("SPB-tree queries must cost page accesses")
	}
	if idx.DiskBytes() == 0 {
		t.Fatal("SPB-tree must report disk usage")
	}
	if idx.Name() != "SPB-tree" {
		t.Fatalf("Name = %q", idx.Name())
	}
}
