package shard

import "metricindex/internal/core"

// Partitioner routes objects to shards. Implementations must be
// deterministic in their inputs: the Sharded index remembers placements in
// a routing table, but reproducible partitions keep builds comparable
// across runs.
type Partitioner interface {
	// Name identifies the strategy in logs and experiment output.
	Name() string
	// Place returns the shard (in [0, shards)) for an object: seq is the
	// number of objects routed before it, id its dataset identifier, and o
	// its value (for content-based strategies).
	Place(seq, id int, o core.Object, shards int) int
}

// RoundRobin cycles through the shards in routing order, keeping shard
// sizes within one object of each other — the default, since balanced
// shards bound the scatter-gather critical path.
type RoundRobin struct{}

// Name returns "round-robin".
func (RoundRobin) Name() string { return "round-robin" }

// Place returns seq modulo the shard count.
func (RoundRobin) Place(seq, _ int, _ core.Object, shards int) int { return seq % shards }

// Hash routes by a mixed hash of the object identifier, so an object's
// shard is independent of routing order (stable under replays and
// re-partitioning, at the price of only statistical balance).
type Hash struct{}

// Name returns "hash".
func (Hash) Name() string { return "hash" }

// Place returns a splitmix64-mixed hash of the id modulo the shard count.
func (Hash) Place(_, id int, _ core.Object, shards int) int {
	return int(core.Mix64(uint64(id)) % uint64(shards))
}
