package shard

import (
	"testing"

	"metricindex/internal/plan"
	"metricindex/internal/testutil"
)

// TestShardedFilterEquivalence runs the shared filtered-search harness
// over a sharded front. The accept closure evaluates against the
// *parent* dataset's attribute bags while the candidates surface from
// per-shard mirrors, so this is the test that the scatter-gather keeps
// identifiers aligned with the bags.
func TestShardedFilterEquivalence(t *testing.T) {
	for _, b := range builders() {
		for _, ed := range testutil.EquivDatasets(false, 250, 7) {
			sharded, err := New(ed.DS, b.build, Options{Shards: 3})
			if err != nil {
				t.Fatalf("%s/%s: New: %v", b.name, ed.Name, err)
			}
			if !plan.Capable(sharded) {
				t.Fatalf("%s/%s: sharded front must be probe-capable", b.name, ed.Name)
			}
			testutil.CheckFilterEquivalence(t, ed, sharded)
		}
	}
}
