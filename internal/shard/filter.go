package shard

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
)

// Per-shard predicate pushdown (core.AcceptSearcher): the accept test
// travels with the scatter, so each shard rejects non-matching
// candidates before their distance — concurrently, on the same worker
// pool as unfiltered probes. Shards whose sub-index cannot push the
// predicate down fall back to filtering their own answers (re-probing
// with an inflated k for kNN), which keeps the merged answer exact
// whatever mix of capabilities the shards have.

// RangeSearchAccept answers MRQ(q, r) restricted to accepted ids as the
// union of filtered shard answers.
func (s *Sharded) RangeSearchAccept(q core.Object, r float64, accept core.Accept) ([]int, error) {
	if accept == nil {
		return s.RangeSearch(q, r)
	}
	parts := make([][]int, len(s.subs))
	err := s.scatter(nil, func(sh int) error {
		var ids []int
		var err error
		if as, ok := s.subs[sh].(core.AcceptSearcher); ok {
			ids, err = as.RangeSearchAccept(q, r, accept)
		} else {
			ids, err = s.subs[sh].RangeSearch(q, r)
			if err == nil {
				kept := ids[:0]
				for _, id := range ids {
					if accept(id) {
						kept = append(kept, id)
					}
				}
				ids = kept
			}
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		parts[sh] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	res := make([]int, 0, total)
	for _, p := range parts {
		res = append(res, p...)
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearchAccept answers MkNNQ(q, k) over accepted ids: every shard
// reports its own k nearest accepted objects (any member of the global
// filtered top-k is in its shard's filtered top-k), merged through the
// usual distance-then-id heap.
func (s *Sharded) KNNSearchAccept(q core.Object, k int, accept core.Accept) ([]core.Neighbor, error) {
	if accept == nil {
		return s.KNNSearch(q, k)
	}
	if k <= 0 {
		return nil, nil
	}
	parts := make([][]core.Neighbor, len(s.subs))
	err := s.scatter(nil, func(sh int) error {
		var nns []core.Neighbor
		var err error
		if as, ok := s.subs[sh].(core.AcceptSearcher); ok {
			nns, err = as.KNNSearchAccept(q, k, accept)
		} else {
			nns, err = acceptKNNFallback(s.subs[sh], s.subDS[sh], q, k, accept)
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		parts[sh] = nns
		return nil
	})
	if err != nil {
		return nil, err
	}
	h := core.NewKNNHeap(k)
	for _, p := range parts {
		for _, nb := range p {
			h.Push(nb.ID, nb.Dist)
		}
	}
	return h.Result(), nil
}

// acceptKNNFallback extracts the k nearest accepted objects from an
// index without pushdown support: probe for an inflated kk, keep the
// accepted prefix, and double kk until k accepted neighbors surface or
// the probe covered every live object (exact by exhaustion).
func acceptKNNFallback(idx core.Index, ds *core.Dataset, q core.Object, k int, accept core.Accept) ([]core.Neighbor, error) {
	n := ds.Count()
	if n == 0 {
		return nil, nil
	}
	kk := 2 * k
	if kk > n {
		kk = n
	}
	for {
		nbrs, err := idx.KNNSearch(q, kk)
		if err != nil {
			return nil, err
		}
		kept := make([]core.Neighbor, 0, k)
		for _, nb := range nbrs {
			if accept(nb.ID) {
				kept = append(kept, nb)
				if len(kept) == k {
					return kept, nil
				}
			}
		}
		if kk >= n {
			return kept, nil
		}
		kk *= 2
		if kk > n {
			kk = n
		}
	}
}
