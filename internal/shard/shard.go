// Package shard implements the scatter-gather sharded index: a dataset is
// partitioned across N sub-indexes and every query fans out to all shards
// concurrently, with the per-shard answers merged into one exact result.
//
// The paper's §6.2 observes that pivot-based structures parallelize
// naturally because objects are independent of each other; the batch
// engine (internal/exec) exploits that across queries, and sharding
// exploits it across the dataset: MRQ(q, r) over a partition of O is the
// union of MRQ(q, r) over the parts, and MkNNQ(q, k) is the k best of the
// per-part k-candidate sets, so a partitioned search loses no exactness.
// That opens the scenario the ROADMAP names — a dataset larger than one
// table or tree serving a single query from all cores — and, because
// Sharded is itself a core.Index, it composes with the batch engine for
// free (batch-over-shards).
//
// Each shard holds a sparse mirror of the parent dataset: a core.Dataset
// sharing the parent's Space (so compdists accounting stays global) in
// which only the shard's objects are live, at their parent identifiers.
// Sub-indexes therefore answer directly in parent ids — no id translation
// on the gather path — and kNN tie-breaking by id inside a shard agrees
// exactly with the unsharded index, which makes shard-vs-unsharded answers
// identical, not merely equivalent.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/exec"
	"metricindex/internal/obs"
)

// Builder constructs the sub-index for one shard. The shard dataset shares
// the parent's Space and identifiers; any index constructor in the library
// can serve (select pivots on the shard dataset, then build over it).
type Builder func(sub *core.Dataset) (core.Index, error)

// Options configures a Sharded index.
type Options struct {
	// Shards is the number of partitions; <= 0 uses GOMAXPROCS. The count
	// is capped at the number of live objects so no shard starts empty.
	Shards int
	// Workers bounds the goroutines used per query (shard probes) and
	// during construction (parallel shard builds); <= 0 uses GOMAXPROCS.
	Workers int
	// Partitioner routes objects to shards; nil uses RoundRobin.
	Partitioner Partitioner
}

// Sharded partitions a dataset across sub-indexes and scatter-gathers
// every query over them. It implements core.Index: queries return exactly
// the answer of the same index built unsharded, updates route through the
// partitioner, and the cost counters sum across shards. Like every other
// raw index, concurrent queries are safe but must not interleave with
// Insert/Delete; wrap the Sharded in an epoch.Live for a mixed
// read/write workload (the epoch guard covers the routing table and
// every shard in one write section).
type Sharded struct {
	ds      *core.Dataset   // parent dataset
	subs    []core.Index    // per-shard sub-indexes
	subDS   []*core.Dataset // per-shard sparse mirrors of ds
	loc     map[int]int     // parent id -> shard
	part    Partitioner
	seq     int // objects routed so far (round-robin state)
	workers int

	// probeObs[i] and probeNames[i] are the fanout-latency histogram and
	// trace span name of shard i, set by RegisterObs before the index
	// starts serving. Nil when uninstrumented.
	probeObs   []*obs.Histogram
	probeNames []string
}

// RegisterObs instruments the scatter path: every shard probe observes
// mx_shard_probe_seconds{shard="i"} and traced queries get one
// probe_shard<i> span per shard. Call before the index serves queries
// (registration allocates; the probes themselves do not). Registration
// is idempotent across swaps — a rebuilt Sharded re-registering the
// same shard labels receives the same histogram handles.
func (s *Sharded) RegisterObs(reg *obs.Registry) {
	s.probeObs = make([]*obs.Histogram, len(s.subs))
	s.probeNames = make([]string, len(s.subs))
	for i := range s.subs {
		lbl := strconv.Itoa(i)
		s.probeObs[i] = reg.Histogram("mx_shard_probe_seconds",
			"Per-shard fanout latency of scatter-gather probes.",
			obs.DefLatencyBuckets, obs.Label{Key: "shard", Value: lbl})
		s.probeNames[i] = "probe_shard" + lbl
	}
}

// New partitions ds across opts.Shards shards, building the sub-indexes in
// parallel with the given builder.
func New(ds *core.Dataset, builder Builder, opts Options) (*Sharded, error) {
	if builder == nil {
		return nil, fmt.Errorf("shard: nil builder")
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	live := ds.LiveIDs()
	if len(live) == 0 {
		return nil, fmt.Errorf("shard: empty dataset")
	}
	if n > len(live) {
		n = len(live)
	}
	part := opts.Partitioner
	if part == nil {
		part = RoundRobin{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{
		ds:      ds,
		loc:     make(map[int]int, len(live)),
		part:    part,
		workers: workers,
	}

	// Partition into sparse mirrors: mirrors[sh][id] is non-nil iff object
	// id belongs to shard sh.
	mirrors := make([][]core.Object, n)
	for sh := range mirrors {
		mirrors[sh] = make([]core.Object, ds.Len())
	}
	for seq, id := range live {
		o := ds.Object(id)
		sh := part.Place(seq, id, o, n)
		if sh < 0 || sh >= n {
			return nil, fmt.Errorf("shard: partitioner %s placed object %d in shard %d of %d", part.Name(), id, sh, n)
		}
		mirrors[sh][id] = o
		s.loc[id] = sh
	}
	s.seq = len(live)

	s.subDS = make([]*core.Dataset, n)
	for sh := range mirrors {
		s.subDS[sh] = core.NewDataset(ds.Space(), mirrors[sh])
	}

	// Build the sub-indexes in parallel: shards partition the objects, so
	// the builds touch disjoint state (§6.2's object-independence again).
	s.subs = make([]core.Index, n)
	errs := make([]error, n)
	core.ParallelFor(n, workers, func(start, end int) {
		for sh := start; sh < end; sh++ {
			s.subs[sh], errs[sh] = builder(s.subDS[sh])
		}
	})
	for sh, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return s, nil
}

// Name identifies the sharded index by its shard count and member type.
func (s *Sharded) Name() string {
	return fmt.Sprintf("Sharded[%d×%s]", len(s.subs), s.subs[0].Name())
}

// NumShards returns the number of partitions.
func (s *Sharded) NumShards() int { return len(s.subs) }

// Shard exposes one sub-index (for stats and tests).
func (s *Sharded) Shard(i int) core.Index { return s.subs[i] }

// ShardSizes returns the number of live objects per shard.
func (s *Sharded) ShardSizes() []int {
	sizes := make([]int, len(s.subDS))
	for i, sub := range s.subDS {
		sizes[i] = sub.Count()
	}
	return sizes
}

// scatter fans one probe out across the shards on the worker pool. When
// instrumented (RegisterObs) every probe observes its shard histogram;
// when tr is non-nil every probe also records a probe_shard<N> span
// with the shard's page-access delta. (Compdists go through the Space
// the shards share, so they cannot be attributed per shard; the
// wrapping read_section span carries the query total.)
func (s *Sharded) scatter(tr *obs.Trace, job func(sh int) error) error {
	if s.probeObs == nil && tr == nil {
		return exec.Scatter(context.Background(), s.workers, len(s.subs), job)
	}
	wrapped := func(sh int) error {
		var paBase int64
		if tr != nil {
			paBase = s.subs[sh].PageAccesses()
		}
		start := time.Now()
		err := job(sh)
		dur := time.Since(start)
		if s.probeObs != nil {
			s.probeObs[sh].Observe(dur.Seconds())
		}
		if tr != nil {
			pa := s.subs[sh].PageAccesses() - paBase
			if pa < 0 {
				pa = 0
			}
			tr.Add(s.probeNames[sh], start, dur, 0, pa)
		}
		return err
	}
	return exec.Scatter(context.Background(), s.workers, len(s.subs), wrapped)
}

// RangeSearch answers MRQ(q, r) as the union of the shard answers: shards
// partition the live objects, so concatenating the (disjoint) per-shard id
// lists and sorting yields exactly the unsharded answer.
func (s *Sharded) RangeSearch(q core.Object, r float64) ([]int, error) {
	return s.rangeSearch(q, r, nil)
}

// RangeSearchTraced is RangeSearch with a span per shard probe plus a
// merge span recorded into tr. A nil tr degrades to RangeSearch.
func (s *Sharded) RangeSearchTraced(q core.Object, r float64, tr *obs.Trace) ([]int, error) {
	return s.rangeSearch(q, r, tr)
}

func (s *Sharded) rangeSearch(q core.Object, r float64, tr *obs.Trace) ([]int, error) {
	parts := make([][]int, len(s.subs))
	err := s.scatter(tr, func(sh int) error {
		ids, err := s.subs[sh].RangeSearch(q, r)
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		parts[sh] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeStart := time.Now()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		tr.Add("merge", mergeStart, time.Since(mergeStart), 0, 0)
		return nil, nil
	}
	res := make([]int, 0, total)
	for _, p := range parts {
		res = append(res, p...)
	}
	sort.Ints(res)
	tr.Add("merge", mergeStart, time.Since(mergeStart), 0, 0)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) by scatter-gather: every shard reports its
// own k nearest (any global top-k object is necessarily in its shard's
// top-k), and the candidates merge through a KNNHeap whose
// distance-then-id ordering matches the per-index contract exactly.
func (s *Sharded) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	return s.knnSearch(q, k, nil)
}

// KNNSearchTraced is KNNSearch with a span per shard probe plus a merge
// span recorded into tr. A nil tr degrades to KNNSearch.
func (s *Sharded) KNNSearchTraced(q core.Object, k int, tr *obs.Trace) ([]core.Neighbor, error) {
	return s.knnSearch(q, k, tr)
}

func (s *Sharded) knnSearch(q core.Object, k int, tr *obs.Trace) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	parts := make([][]core.Neighbor, len(s.subs))
	err := s.scatter(tr, func(sh int) error {
		nns, err := s.subs[sh].KNNSearch(q, k)
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		parts[sh] = nns
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeStart := time.Now()
	h := core.NewKNNHeap(k)
	for _, p := range parts {
		for _, nb := range p {
			h.Push(nb.ID, nb.Dist)
		}
	}
	res := h.Result()
	tr.Add("merge", mergeStart, time.Since(mergeStart), 0, 0)
	return res, nil
}

// Insert routes the object (already stored in the parent dataset under id)
// to a shard chosen by the partitioner, mirrors it there, and indexes it.
func (s *Sharded) Insert(id int) error {
	o := s.ds.Object(id)
	if o == nil {
		return fmt.Errorf("shard: insert of deleted or unknown object %d", id)
	}
	if _, dup := s.loc[id]; dup {
		return fmt.Errorf("shard: duplicate insert of %d", id)
	}
	sh := s.part.Place(s.seq, id, o, len(s.subs))
	if sh < 0 || sh >= len(s.subs) {
		return fmt.Errorf("shard: partitioner %s placed object %d in shard %d of %d", s.part.Name(), id, sh, len(s.subs))
	}
	if err := s.subDS[sh].InsertAt(id, o); err != nil {
		return err
	}
	if err := s.subs[sh].Insert(id); err != nil {
		_ = s.subDS[sh].Delete(id) // roll the mirror back
		return err
	}
	s.loc[id] = sh
	s.seq++
	return nil
}

// Delete removes the object from the shard holding it. Per the Index
// contract the object is still present in the parent dataset here, and the
// mirror keeps it live until the sub-index has dropped it.
func (s *Sharded) Delete(id int) error {
	sh, ok := s.loc[id]
	if !ok {
		return fmt.Errorf("shard: delete of unindexed object %d", id)
	}
	if err := s.subs[sh].Delete(id); err != nil {
		return err
	}
	if err := s.subDS[sh].Delete(id); err != nil {
		return err
	}
	delete(s.loc, id)
	return nil
}

// PageAccesses sums the shard counters.
func (s *Sharded) PageAccesses() int64 {
	var sum int64
	for _, sub := range s.subs {
		sum += sub.PageAccesses()
	}
	return sum
}

// ResetStats zeroes every shard's counters.
func (s *Sharded) ResetStats() {
	for _, sub := range s.subs {
		sub.ResetStats()
	}
}

// MemBytes sums the shard sizes plus the sharding overhead (the sparse
// mirror slices and the id routing table).
func (s *Sharded) MemBytes() int64 {
	var sum int64
	for _, sub := range s.subs {
		sum += sub.MemBytes()
	}
	for _, sub := range s.subDS {
		sum += int64(sub.Len()) * 8 // mirror slice slot
	}
	return sum + int64(len(s.loc))*16
}

// DiskBytes sums the shard disk footprints.
func (s *Sharded) DiskBytes() int64 {
	var sum int64
	for _, sub := range s.subs {
		sum += sub.DiskBytes()
	}
	return sum
}
