package shard

import (
	"fmt"
	"math"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/mvpt"
	"metricindex/internal/pivot"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// subBuilder names one per-shard index constructor; the same function
// builds the unsharded reference when handed the parent dataset.
type subBuilder struct {
	name  string
	build Builder
}

// builders covers one table, one tree, and one disk index — the three
// storage families the sharded front must be transparent over.
func builders() []subBuilder {
	pivotsFor := func(sub *core.Dataset) ([]int, error) {
		return pivot.HFI(sub, 4, pivot.Options{Seed: 3})
	}
	return []subBuilder{
		{"LAESA", func(sub *core.Dataset) (core.Index, error) {
			pv, err := pivotsFor(sub)
			if err != nil {
				return nil, err
			}
			return table.NewLAESA(sub, pv)
		}},
		{"MVPT", func(sub *core.Dataset) (core.Index, error) {
			pv, err := pivotsFor(sub)
			if err != nil {
				return nil, err
			}
			return mvpt.New(sub, pv, mvpt.Options{})
		}},
		{"SPB-tree", func(sub *core.Dataset) (core.Index, error) {
			pv, err := pivotsFor(sub)
			if err != nil {
				return nil, err
			}
			return spb.New(sub, store.NewPager(0), pv, spb.Options{MaxDistance: 200})
		}},
	}
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameNeighbors(a, b []core.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// checkIdentical asserts the sharded index returns byte-for-byte the same
// MRQ and MkNNQ answers as the unsharded reference — including ids on
// distance ties, which the sparse-mirror design guarantees.
func checkIdentical(t *testing.T, sharded, flat core.Index, ds *core.Dataset, seed int64) {
	t.Helper()
	for qs := seed; qs < seed+4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			want, err := flat.RangeSearch(q, r)
			if err != nil {
				t.Fatalf("flat RangeSearch: %v", err)
			}
			got, err := sharded.RangeSearch(q, r)
			if err != nil {
				t.Fatalf("sharded RangeSearch: %v", err)
			}
			if !sameIDs(got, want) {
				t.Fatalf("MRQ(r=%v) differs:\nsharded %v\nflat    %v", r, got, want)
			}
		}
		for _, k := range []int{0, 1, 7, 40, 1000} {
			want, err := flat.KNNSearch(q, k)
			if err != nil {
				t.Fatalf("flat KNNSearch: %v", err)
			}
			got, err := sharded.KNNSearch(q, k)
			if err != nil {
				t.Fatalf("sharded KNNSearch: %v", err)
			}
			if !sameNeighbors(got, want) {
				t.Fatalf("MkNNQ(k=%d) differs:\nsharded %v\nflat    %v", k, got, want)
			}
		}
	}
}

func TestShardedMatchesUnsharded(t *testing.T) {
	for _, b := range builders() {
		for _, part := range []Partitioner{RoundRobin{}, Hash{}} {
			for _, shards := range []int{1, 3, 8} {
				name := fmt.Sprintf("%s/%s/%d", b.name, part.Name(), shards)
				t.Run(name, func(t *testing.T) {
					ds := testutil.VectorDataset(240, 4, 100, core.L2{}, 11)
					flat, err := b.build(ds)
					if err != nil {
						t.Fatalf("flat build: %v", err)
					}
					sharded, err := New(ds, b.build, Options{Shards: shards, Partitioner: part})
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					if got := sharded.NumShards(); got != shards {
						t.Fatalf("NumShards = %d, want %d", got, shards)
					}
					checkIdentical(t, sharded, flat, ds, 100)
				})
			}
		}
	}
}

// TestShardedVector32MatchesUnsharded runs the sharded front over a
// float32 dataset: every shard's LAESA arms its flat float32 mirror and
// scratch pool, and the concurrent scatter-gather probes must still
// agree with the unsharded index exactly.
func TestShardedVector32MatchesUnsharded(t *testing.T) {
	ds := testutil.Vector32Dataset(240, 4, 100, core.L2{}, 11)
	build := func(sub *core.Dataset) (core.Index, error) {
		pv, err := pivot.HFI(sub, 4, pivot.Options{Seed: 3})
		if err != nil {
			return nil, err
		}
		return table.NewLAESA(sub, pv)
	}
	flat, err := build(ds)
	if err != nil {
		t.Fatalf("flat build: %v", err)
	}
	sharded, err := New(ds, build, Options{Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	checkIdentical(t, sharded, flat, ds, 100)
}

func TestShardedUpdatesStayIdentical(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			ds := testutil.VectorDataset(150, 4, 100, core.L2{}, 13)
			flat, err := b.build(ds)
			if err != nil {
				t.Fatalf("flat build: %v", err)
			}
			sharded, err := New(ds, b.build, Options{Shards: 4})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			// Delete a third (index first, then dataset — per the Index
			// contract), reinsert fresh objects, re-verify equivalence.
			for id := 0; id < 150; id += 3 {
				if err := sharded.Delete(id); err != nil {
					t.Fatalf("sharded Delete(%d): %v", id, err)
				}
				if err := flat.Delete(id); err != nil {
					t.Fatalf("flat Delete(%d): %v", id, err)
				}
				if err := ds.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 30; i++ {
				v := core.Vector{float64(i), float64(i * 2), 50, 50}
				id := ds.Insert(v)
				if err := sharded.Insert(id); err != nil {
					t.Fatalf("sharded Insert(%d): %v", id, err)
				}
				if err := flat.Insert(id); err != nil {
					t.Fatalf("flat Insert(%d): %v", id, err)
				}
			}
			checkIdentical(t, sharded, flat, ds, 200)
		})
	}
}

func TestRoundRobinBalance(t *testing.T) {
	ds := testutil.VectorDataset(103, 3, 100, core.L2{}, 5)
	s, err := New(ds, builders()[0].build, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sizes := s.ShardSizes()
	min, max := math.MaxInt, 0
	total := 0
	for _, n := range sizes {
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if total != 103 {
		t.Fatalf("shard sizes %v sum to %d, want 103", sizes, total)
	}
	if max-min > 1 {
		t.Fatalf("round-robin shard sizes %v differ by more than one", sizes)
	}
}

func TestHashPartitionIsOrderIndependent(t *testing.T) {
	h := Hash{}
	for id := 0; id < 100; id++ {
		a := h.Place(0, id, nil, 7)
		b := h.Place(42, id, nil, 7)
		if a != b || a < 0 || a >= 7 {
			t.Fatalf("hash placement of %d depends on seq (%d vs %d) or out of range", id, a, b)
		}
	}
}

func TestShardedCostCountersSum(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 17)
	s, err := New(ds, builders()[2].build, Options{Shards: 4}) // SPB-tree: disk-based
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if pa := s.PageAccesses(); pa != 0 {
		t.Fatalf("PageAccesses after ResetStats = %d", pa)
	}
	q := testutil.RandomQuery(ds, 1)
	if _, err := s.RangeSearch(q, 30); err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < s.NumShards(); i++ {
		want += s.Shard(i).PageAccesses()
	}
	if got := s.PageAccesses(); got == 0 || got != want {
		t.Fatalf("PageAccesses = %d, want shard sum %d (> 0)", got, want)
	}
	if s.DiskBytes() == 0 {
		t.Fatal("DiskBytes should sum shard footprints")
	}
	if s.MemBytes() == 0 {
		t.Fatal("MemBytes should be positive")
	}
}

func TestShardedUpdateErrors(t *testing.T) {
	ds := testutil.VectorDataset(60, 3, 100, core.L2{}, 19)
	s, err := New(ds, builders()[0].build, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(7); err == nil {
		t.Fatal("duplicate Insert should error")
	}
	if err := s.Insert(1000); err == nil {
		t.Fatal("out-of-range Insert should error")
	}
	if err := s.Delete(1000); err == nil {
		t.Fatal("unknown Delete should error")
	}
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(7); err == nil {
		t.Fatal("double Delete should error")
	}
}

func TestShardedRejectsEmptyDataset(t *testing.T) {
	ds := core.NewDataset(core.NewSpace(core.L2{}), nil)
	if _, err := New(ds, builders()[0].build, Options{Shards: 2}); err == nil {
		t.Fatal("New over an empty dataset should error")
	}
}

func TestShardCountCappedAtObjects(t *testing.T) {
	ds := testutil.VectorDataset(5, 3, 100, core.L2{}, 23)
	s, err := New(ds, func(sub *core.Dataset) (core.Index, error) {
		pv := sub.LiveIDs() // every object a pivot: fine at this size
		return table.NewLAESA(sub, pv)
	}, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumShards(); got != 5 {
		t.Fatalf("NumShards = %d, want cap at 5 live objects", got)
	}
}
