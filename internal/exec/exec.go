// Package exec is the concurrent batch query engine: it runs MRQ and
// MkNNQ workloads over any core.Index from a pool of worker goroutines,
// preserving the input order of the answers and aggregating the paper's
// cost metrics (compdists, page accesses, wall time) per batch.
//
// The paper's §6.2 observes that pivot-based structures parallelize
// naturally because objects are independent of each other; the same holds
// for queries, which never mutate the index. The engine exploits that:
// every index in the repository answers read-only queries against
// immutable structure state, all page traffic goes through the
// mutex-guarded store.Pager/store.RAF, and all distance computations go
// through the atomic counter of core.Space, so a single index can serve
// many queries concurrently with exact, deterministic results.
//
// Concurrent queries may NOT be interleaved with Insert/Delete on a raw
// index — updates are not synchronized with searches, and batch
// boundaries are the unit of consistency. internal/epoch lifts that
// restriction: wrap the index in an epoch.Live and batches, updates and
// whole-index swaps interleave safely.
//
// The pivot tables keep per-query working memory (query-pivot distances,
// lower-bound columns, verification chunks, the kNN heap) in a
// core.ScratchPool rather than allocating per query. The pool hands each
// concurrent query its own buffers, so the engine's workers share one
// index with zero steady-state allocations on the batched hot paths —
// the pool is part of the read-only query contract above, not an
// exception to it.
package exec

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/obs"
	"metricindex/internal/plan"
)

// Metrics carries the engine's obs handles. All fields must be non-nil;
// an engine built without Metrics records nothing.
type Metrics struct {
	// Batches counts batches dispatched (mx_exec_batches_total).
	Batches *obs.Counter
	// BatchQueries is the distribution of batch sizes
	// (mx_exec_batch_queries).
	BatchQueries *obs.Histogram
	// PredispatchHits counts queries answered from the answer cache
	// during the pre-dispatch sweep (mx_exec_predispatch_hits_total).
	PredispatchHits *obs.Counter
	// QueueWait is how long each dispatched query waited from batch
	// start to the moment a worker picked it up
	// (mx_exec_queue_wait_seconds).
	QueueWait *obs.Histogram
}

// AnswerCached is the optional interface of indexes that can serve a
// memoized answer without computing (epoch.Live with an attached
// answer cache implements it). The engine probes it per query before
// dispatching a batch: hits are answered inline and never occupy a
// worker slot, so the pool's concurrency is spent entirely on real
// misses. Peek methods must be cheap, must not compute distances, and
// must return answers identical to a fresh search at the moment of the
// call.
type AnswerCached interface {
	PeekRange(q core.Object, r float64) ([]int, bool)
	PeekKNN(q core.Object, k int) ([]core.Neighbor, bool)
}

// Options configures an Engine.
type Options struct {
	// Workers is the goroutine pool size per batch; <= 0 uses GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives per-batch observations.
	Metrics *Metrics
}

// Engine runs batched queries over indexes. An Engine is stateless between
// batches, safe for concurrent use by multiple goroutines, and may be
// shared across indexes (it holds no reference to any index).
type Engine struct {
	workers int
	space   *core.Space
	metrics *Metrics
}

// New creates an engine over the instrumented space shared by the indexes
// it will serve. space may be nil, in which case per-batch CompDists stats
// are reported as zero. Workers <= 0 defaults to GOMAXPROCS.
func New(space *core.Space, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: w, space: space, metrics: opts.Metrics}
}

// Workers returns the pool size used per batch.
func (e *Engine) Workers() int { return e.workers }

// BatchStats aggregates the paper's cost metrics over one batch.
//
// CompDists and PageAccesses are measured as deltas of the shared
// counters across the batch, so they attribute every distance computation
// on the Space (and every page access on the index) performed while the
// batch ran. Run one batch at a time per Space/index when exact
// attribution matters; concurrent batches still compute correct results
// but blend their counter deltas.
type BatchStats struct {
	// Queries is the number of queries answered.
	Queries int
	// CompDists is the total distance computations during the batch.
	CompDists int64
	// PageAccesses is the total page reads+writes during the batch.
	PageAccesses int64
	// Wall is the elapsed wall-clock time of the whole batch.
	Wall time.Duration
	// P50, P95 and P99 are per-query latency percentiles (nearest-rank)
	// over the queries that actually computed — the SLO-grade numbers a
	// serving layer reports. Unlike Wall they measure individual
	// queries, so they stay meaningful however many workers overlap.
	// Cache hits are excluded: a hit resolves in sub-microsecond time,
	// and folding those samples in deflates every percentile below p(hit
	// rate) to ~0, which misreports the latency of the work the index is
	// really doing. Hit latencies are reported separately below.
	P50, P95, P99 time.Duration
	// HitP50, HitP95 and HitP99 are the latency percentiles of the
	// cache-hit queries alone (zeros when the batch had none).
	HitP50, HitP95, HitP99 time.Duration
	// CacheHits is the number of queries answered from the index's
	// answer cache without computing — before dispatch via AnswerCached,
	// or (filtered batches) inside the search itself. 0 when the index
	// has no cache. Cached answers cost no compdists and no page
	// accesses, which is why a hot batch's per-query averages drop.
	CacheHits int
}

// PerQueryCompDists returns the average compdists per query.
func (s BatchStats) PerQueryCompDists() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.CompDists) / float64(s.Queries)
}

// PerQueryPageAccesses returns the average page accesses per query.
func (s BatchStats) PerQueryPageAccesses() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.PageAccesses) / float64(s.Queries)
}

// Throughput returns queries per second over the batch wall time.
func (s BatchStats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Wall.Seconds()
}

// RangeResult is the answer of a batched MRQ workload.
type RangeResult struct {
	// IDs[i] is the RangeSearch answer for the i-th query, in the same
	// ascending-id order the sequential call returns.
	IDs [][]int
	// Plans[i] is the strategy that answered the i-th query of a
	// filtered batch (the zero value when it came from the answer
	// cache). Nil for unfiltered batches.
	Plans []plan.Strategy
	// Stats aggregates the batch cost.
	Stats BatchStats
}

// KNNResult is the answer of a batched MkNNQ workload.
type KNNResult struct {
	// Neighbors[i] is the KNNSearch answer for the i-th query, sorted by
	// ascending distance (ties by id) exactly as the sequential call
	// returns.
	Neighbors [][]core.Neighbor
	// Plans[i] is the strategy that answered the i-th query of a
	// filtered batch; see RangeResult.Plans.
	Plans []plan.Strategy
	// Stats aggregates the batch cost.
	Stats BatchStats
}

// FilteredSearcher is the interface of indexes that plan and execute
// predicate-filtered searches (epoch.Live). The returned Strategy is
// the plan that produced the answer; its zero value means the answer
// came from the index's answer cache.
type FilteredSearcher interface {
	RangeSearchFiltered(q core.Object, r float64, p *plan.Predicate) ([]int, uint64, plan.Strategy, error)
	KNNSearchFiltered(q core.Object, k int, p *plan.Predicate) ([]core.Neighbor, uint64, plan.Strategy, error)
}

// BatchRangeSearch answers MRQ(q, r) for every query concurrently.
// Results are positionally aligned with queries (deterministic regardless
// of worker interleaving). The first query error or context cancellation
// stops the batch and is returned; partial results are discarded.
func (e *Engine) BatchRangeSearch(ctx context.Context, idx core.Index, queries []core.Object, r float64) (*RangeResult, error) {
	res := &RangeResult{IDs: make([][]int, len(queries))}
	var peek func(i int) bool
	if ac, ok := idx.(AnswerCached); ok {
		peek = func(i int) bool {
			ids, ok := ac.PeekRange(queries[i], r)
			if ok {
				res.IDs[i] = ids
			}
			return ok
		}
	}
	stats, _, err := e.run(ctx, idx, len(queries), peek, func(i int) error {
		ids, err := idx.RangeSearch(queries[i], r)
		if err != nil {
			return fmt.Errorf("exec: range query %d: %w", i, err)
		}
		res.IDs[i] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// BatchRangeSearchFiltered answers MRQ(q, r) restricted to the
// predicate for every query concurrently. A nil predicate degrades to
// BatchRangeSearch; otherwise the index must implement
// FilteredSearcher. Per-query strategies land in RangeResult.Plans, and
// queries the answer cache resolved (strategy zero) count as cache hits
// in the stats.
func (e *Engine) BatchRangeSearchFiltered(ctx context.Context, idx core.Index, queries []core.Object, r float64, p *plan.Predicate) (*RangeResult, error) {
	if p == nil {
		return e.BatchRangeSearch(ctx, idx, queries, r)
	}
	fs, ok := idx.(FilteredSearcher)
	if !ok {
		return nil, fmt.Errorf("exec: index %s does not support filtered search", idx.Name())
	}
	res := &RangeResult{
		IDs:   make([][]int, len(queries)),
		Plans: make([]plan.Strategy, len(queries)),
	}
	stats, durs, err := e.run(ctx, idx, len(queries), nil, func(i int) error {
		ids, _, st, err := fs.RangeSearchFiltered(queries[i], r, p)
		if err != nil {
			return fmt.Errorf("exec: filtered range query %d: %w", i, err)
		}
		res.IDs[i] = ids
		res.Plans[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = reclassifyFiltered(stats, durs, res.Plans)
	return res, nil
}

// BatchKNNSearch answers MkNNQ(q, k) for every query concurrently.
// Results are positionally aligned with queries. The first query error or
// context cancellation stops the batch and is returned; partial results
// are discarded.
func (e *Engine) BatchKNNSearch(ctx context.Context, idx core.Index, queries []core.Object, k int) (*KNNResult, error) {
	res := &KNNResult{Neighbors: make([][]core.Neighbor, len(queries))}
	var peek func(i int) bool
	if ac, ok := idx.(AnswerCached); ok {
		peek = func(i int) bool {
			nns, ok := ac.PeekKNN(queries[i], k)
			if ok {
				res.Neighbors[i] = nns
			}
			return ok
		}
	}
	stats, _, err := e.run(ctx, idx, len(queries), peek, func(i int) error {
		nns, err := idx.KNNSearch(queries[i], k)
		if err != nil {
			return fmt.Errorf("exec: knn query %d: %w", i, err)
		}
		res.Neighbors[i] = nns
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// BatchKNNSearchFiltered answers MkNNQ(q, k) over the predicate's
// matches for every query concurrently; see BatchRangeSearchFiltered.
func (e *Engine) BatchKNNSearchFiltered(ctx context.Context, idx core.Index, queries []core.Object, k int, p *plan.Predicate) (*KNNResult, error) {
	if p == nil {
		return e.BatchKNNSearch(ctx, idx, queries, k)
	}
	fs, ok := idx.(FilteredSearcher)
	if !ok {
		return nil, fmt.Errorf("exec: index %s does not support filtered search", idx.Name())
	}
	res := &KNNResult{
		Neighbors: make([][]core.Neighbor, len(queries)),
		Plans:     make([]plan.Strategy, len(queries)),
	}
	stats, durs, err := e.run(ctx, idx, len(queries), nil, func(i int) error {
		nns, _, st, err := fs.KNNSearchFiltered(queries[i], k, p)
		if err != nil {
			return fmt.Errorf("exec: filtered knn query %d: %w", i, err)
		}
		res.Neighbors[i] = nns
		res.Plans[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = reclassifyFiltered(stats, durs, res.Plans)
	return res, nil
}

// reclassifyFiltered rebuilds a filtered batch's hit/miss split: cache
// hits surface only after each search returns (strategy zero), not in a
// pre-dispatch peek, so the run-level split saw every query as a miss.
func reclassifyFiltered(stats BatchStats, durs []time.Duration, plans []plan.Strategy) BatchStats {
	hit := make([]bool, len(plans))
	hits := 0
	for i, st := range plans {
		if st == 0 {
			hit[i] = true
			hits++
		}
	}
	stats.CacheHits = hits
	stats.splitPercentiles(durs, hit)
	return stats
}

// run answers n queries and wraps them with the per-batch cost
// accounting. When peek is non-nil it probes the index's answer cache
// first: hits are served inline during the sweep, and only the misses
// are dispatched through Scatter — a hot batch never waits on the
// worker pool at all. Latency percentiles are reported separately for
// hits and misses (see BatchStats); callers whose hits surface only
// after the job ran (filtered batches) reclassify via the returned
// per-query durations and splitPercentiles.
func (e *Engine) run(ctx context.Context, idx core.Index, n int, peek func(i int) bool, job func(i int) error) (BatchStats, []time.Duration, error) {
	if n == 0 {
		return BatchStats{}, nil, ctx.Err()
	}
	var compBase, paBase int64
	if e.space != nil {
		compBase = e.space.CompDists()
	}
	if idx != nil {
		paBase = idx.PageAccesses()
	}
	durs := make([]time.Duration, n)
	hit := make([]bool, n)
	start := time.Now()
	todo := make([]int, 0, n)
	hits := 0
	for i := 0; i < n; i++ {
		if peek != nil {
			qStart := time.Now()
			if peek(i) {
				durs[i] = time.Since(qStart)
				hit[i] = true
				hits++
				continue
			}
		}
		todo = append(todo, i)
	}
	m := e.metrics
	timed := func(j int) error {
		i := todo[j]
		qStart := time.Now()
		if m != nil {
			// Queue wait: batch arrival to worker pickup for this query.
			m.QueueWait.Observe(qStart.Sub(start).Seconds())
		}
		err := job(i)
		durs[i] = time.Since(qStart)
		return err
	}
	if err := Scatter(ctx, e.workers, len(todo), timed); err != nil {
		return BatchStats{}, nil, err
	}
	if m != nil {
		m.Batches.Inc()
		m.BatchQueries.Observe(float64(n))
		m.PredispatchHits.Add(int64(hits))
	}
	stats := BatchStats{Queries: n, Wall: time.Since(start), CacheHits: hits}
	stats.splitPercentiles(durs, hit)
	if e.space != nil {
		stats.CompDists = e.space.CompDists() - compBase
	}
	if idx != nil {
		// A hot-swappable index (epoch.Live) may replace its structure —
		// and its counter — mid-batch; clamp rather than report a
		// negative delta across the cutover.
		if stats.PageAccesses = idx.PageAccesses() - paBase; stats.PageAccesses < 0 {
			stats.PageAccesses = 0
		}
	}
	return stats, durs, nil
}

// splitPercentiles fills the stats' miss (P50/P95/P99) and hit
// (HitP50/HitP95/HitP99) percentile sets from per-query durations and
// the hit classification mask.
func (s *BatchStats) splitPercentiles(durs []time.Duration, hit []bool) {
	missDurs := make([]time.Duration, 0, len(durs))
	hitDurs := make([]time.Duration, 0, s.CacheHits)
	for i, d := range durs {
		if hit[i] {
			hitDurs = append(hitDurs, d)
		} else {
			missDurs = append(missDurs, d)
		}
	}
	s.P50, s.P95, s.P99 = LatencyPercentiles(missDurs)
	s.HitP50, s.HitP95, s.HitP99 = LatencyPercentiles(hitDurs)
}

// Scatter is the engine's dispatch primitive, exported for other
// scatter-gather layers (the sharded index fans one query out across its
// shards with it). It runs n jobs on a temporary pool of up to `workers`
// goroutines (<= 0 means GOMAXPROCS). Jobs are claimed dynamically off an
// atomic cursor, not in static chunks, so one slow job does not straggle a
// whole chunk; each job writes only its own result slot, which keeps
// callers' output deterministic without post-hoc sorting. The first job
// error — or ctx cancellation — stops the dispatch and is returned.
func Scatter(ctx context.Context, workers, n int, job func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor   atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		e := err
		if firstErr.CompareAndSwap(nil, &e) {
			cancel()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if errp := firstErr.Load(); errp != nil {
		return *errp
	}
	return ctx.Err()
}

// LatencyPercentiles computes the nearest-rank p50/p95/p99 of a sample of
// latencies. The input is not modified (a sorted copy is taken); an empty
// sample yields zeros. Shared by the batch engine, the bench harness's
// sequential loop, and the server's per-endpoint stats so all three report
// the same definition of a percentile.
func LatencyPercentiles(durs []time.Duration) (p50, p95, p99 time.Duration) {
	if len(durs) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}
