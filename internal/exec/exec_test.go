package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/mvpt"
	"metricindex/internal/omni"
	"metricindex/internal/pivot"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// buildLineup constructs one index per family — a table (LAESA), a tree
// (MVPT), and two disk-based structures (OmniR-tree, SPB-tree) — over the
// same dataset, so the engine is exercised against every query-path style
// in the repository.
func buildLineup(t *testing.T, ds *core.Dataset, maxD float64) map[string]core.Index {
	t.Helper()
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	out := make(map[string]core.Index)

	la, err := table.NewLAESA(ds, pv)
	if err != nil {
		t.Fatalf("NewLAESA: %v", err)
	}
	out["LAESA"] = la

	mv, err := mvpt.New(ds, pv, mvpt.Options{})
	if err != nil {
		t.Fatalf("mvpt.New: %v", err)
	}
	out["MVPT"] = mv

	op := store.NewPager(512)
	ot, err := omni.NewRTree(ds, op, pv, omni.Options{MaxDistance: maxD})
	if err != nil {
		t.Fatalf("omni.NewRTree: %v", err)
	}
	out["OmniR-tree"] = ot

	sp := store.NewPager(512)
	st, err := spb.New(ds, sp, pv, spb.Options{MaxDistance: maxD})
	if err != nil {
		t.Fatalf("spb.New: %v", err)
	}
	out["SPB-tree"] = st
	return out
}

func queries(ds *core.Dataset, n int) []core.Object {
	qs := make([]core.Object, n)
	for i := range qs {
		qs[i] = testutil.RandomQuery(ds, int64(100+i))
	}
	return qs
}

// TestBatchMatchesSequential checks the engine's core contract: batched
// MRQ and MkNNQ return exactly what a sequential loop over the same index
// returns, positionally aligned, for table, tree, and disk-based indexes.
func TestBatchMatchesSequential(t *testing.T) {
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	qs := queries(ds, 24)
	for name, idx := range buildLineup(t, ds, 300) {
		t.Run(name, func(t *testing.T) {
			eng := New(ds.Space(), Options{Workers: 8})
			const r = 40.0
			const k = 9

			rres, err := eng.BatchRangeSearch(context.Background(), idx, qs, r)
			if err != nil {
				t.Fatalf("BatchRangeSearch: %v", err)
			}
			kres, err := eng.BatchKNNSearch(context.Background(), idx, qs, k)
			if err != nil {
				t.Fatalf("BatchKNNSearch: %v", err)
			}
			if rres.Stats.Queries != len(qs) || kres.Stats.Queries != len(qs) {
				t.Fatalf("stats queries: range %d knn %d, want %d", rres.Stats.Queries, kres.Stats.Queries, len(qs))
			}
			if rres.Stats.CompDists <= 0 || kres.Stats.CompDists <= 0 {
				t.Fatalf("stats compdists not collected: range %d knn %d", rres.Stats.CompDists, kres.Stats.CompDists)
			}
			for i, q := range qs {
				wantIDs, err := idx.RangeSearch(q, r)
				if err != nil {
					t.Fatalf("sequential RangeSearch: %v", err)
				}
				if !reflect.DeepEqual(normIDs(rres.IDs[i]), normIDs(wantIDs)) {
					t.Fatalf("query %d MRQ mismatch:\n got %v\nwant %v", i, rres.IDs[i], wantIDs)
				}
				wantNNs, err := idx.KNNSearch(q, k)
				if err != nil {
					t.Fatalf("sequential KNNSearch: %v", err)
				}
				if !reflect.DeepEqual(kres.Neighbors[i], wantNNs) {
					t.Fatalf("query %d MkNNQ mismatch:\n got %v\nwant %v", i, kres.Neighbors[i], wantNNs)
				}
			}
		})
	}
}

// normIDs maps a nil empty answer and a zero-length answer to the same
// representation (indexes legitimately return either for an empty result).
func normIDs(ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	return ids
}

// TestSharedEngineConcurrentBatches hammers one Engine from many
// goroutines running overlapping batches against the whole index lineup —
// the race-detector test for the engine and for every concurrent query
// path it drives.
func TestSharedEngineConcurrentBatches(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 11)
	lineup := buildLineup(t, ds, 300)
	qs := queries(ds, 16)
	eng := New(ds.Space(), Options{Workers: 4})

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		for name, idx := range lineup {
			wg.Add(1)
			go func(name string, idx core.Index, g int) {
				defer wg.Done()
				if g%2 == 0 {
					if _, err := eng.BatchRangeSearch(context.Background(), idx, qs, 35); err != nil {
						errc <- fmt.Errorf("%s: %w", name, err)
					}
				} else {
					if _, err := eng.BatchKNNSearch(context.Background(), idx, qs, 7); err != nil {
						errc <- fmt.Errorf("%s: %w", name, err)
					}
				}
			}(name, idx, g)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentScratchAnswersExact drives many overlapping batches
// through one scratch-pooled LAESA and checks every concurrent answer
// against the sequential one. TestSharedEngineConcurrentBatches proves
// freedom from data races; this proves the pooled per-query buffers
// (query-pivot distances, lower-bound columns, kNN heaps) are never
// shared between in-flight queries — a recycled-buffer bug corrupts
// answers long before it trips the race detector.
func TestConcurrentScratchAnswersExact(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 13)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := table.NewLAESA(ds, pv)
	if err != nil {
		t.Fatalf("NewLAESA: %v", err)
	}
	qs := queries(ds, 32)
	const r, k = 35.0, 7
	wantIDs := make([][]int, len(qs))
	wantNNs := make([][]core.Neighbor, len(qs))
	for i, q := range qs {
		if wantIDs[i], err = idx.RangeSearch(q, r); err != nil {
			t.Fatal(err)
		}
		if wantNNs[i], err = idx.KNNSearch(q, k); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(ds.Space(), Options{Workers: 8})
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				res, err := eng.BatchRangeSearch(context.Background(), idx, qs, r)
				if err != nil {
					errc <- err
					return
				}
				for i := range qs {
					if !reflect.DeepEqual(normIDs(res.IDs[i]), normIDs(wantIDs[i])) {
						errc <- fmt.Errorf("goroutine %d query %d: MRQ %v, want %v", g, i, res.IDs[i], wantIDs[i])
						return
					}
				}
			} else {
				res, err := eng.BatchKNNSearch(context.Background(), idx, qs, k)
				if err != nil {
					errc <- err
					return
				}
				for i := range qs {
					if !reflect.DeepEqual(res.Neighbors[i], wantNNs[i]) {
						errc <- fmt.Errorf("goroutine %d query %d: MkNNQ %v, want %v", g, i, res.Neighbors[i], wantNNs[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// slowIndex is a stub index whose queries signal and then count; it lets
// the cancellation test cancel mid-batch deterministically.
type slowIndex struct {
	started atomic.Int64
	cancel  context.CancelFunc
}

func (s *slowIndex) Name() string { return "slow" }
func (s *slowIndex) RangeSearch(q core.Object, r float64) ([]int, error) {
	if s.started.Add(1) == 3 {
		s.cancel() // cancel the batch from inside the third query
	}
	return []int{1}, nil
}
func (s *slowIndex) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	return nil, errors.New("slow: knn always fails")
}
func (s *slowIndex) Insert(id int) error { return nil }
func (s *slowIndex) Delete(id int) error { return nil }
func (s *slowIndex) PageAccesses() int64 { return 0 }
func (s *slowIndex) ResetStats()         {}
func (s *slowIndex) MemBytes() int64     { return 0 }
func (s *slowIndex) DiskBytes() int64    { return 0 }

// TestCancellationMidBatch cancels the context partway through a batch
// and expects the engine to stop early and surface context.Canceled.
func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	idx := &slowIndex{cancel: cancel}
	eng := New(nil, Options{Workers: 2})

	const n = 200
	qs := make([]core.Object, n)
	for i := range qs {
		qs[i] = core.Vector{0}
	}
	_, err := eng.BatchRangeSearch(ctx, idx, qs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if got := idx.started.Load(); got >= n {
		t.Fatalf("batch ran all %d queries despite cancellation", n)
	}
}

// TestQueryErrorAbortsBatch checks that the first query error cancels the
// remaining work and is returned.
func TestQueryErrorAbortsBatch(t *testing.T) {
	idx := &slowIndex{cancel: func() {}}
	eng := New(nil, Options{Workers: 4})
	qs := make([]core.Object, 50)
	for i := range qs {
		qs[i] = core.Vector{0}
	}
	_, err := eng.BatchKNNSearch(context.Background(), idx, qs, 3)
	if err == nil || !strings.Contains(err.Error(), "knn always fails") {
		t.Fatalf("expected the query error, got %v", err)
	}
}

// TestPreCancelledContext checks a batch against an already-cancelled
// context does no work.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	idx := &slowIndex{cancel: func() {}}
	eng := New(nil, Options{})
	_, err := eng.BatchRangeSearch(ctx, idx, []core.Object{core.Vector{0}}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if idx.started.Load() != 0 {
		t.Fatalf("query ran despite pre-cancelled context")
	}
}

// TestDefaultWorkers checks the GOMAXPROCS default and the Workers
// accessor.
func TestDefaultWorkers(t *testing.T) {
	if w := New(nil, Options{}).Workers(); w < 1 {
		t.Fatalf("default workers %d < 1", w)
	}
	if w := New(nil, Options{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("explicit workers: got %d want 3", w)
	}
}

// TestEmptyBatch checks the zero-query edge case.
func TestEmptyBatch(t *testing.T) {
	eng := New(nil, Options{Workers: 2})
	res, err := eng.BatchRangeSearch(context.Background(), &slowIndex{cancel: func() {}}, nil, 1)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if len(res.IDs) != 0 || res.Stats.Queries != 0 {
		t.Fatalf("empty batch returned %+v", res)
	}
}

// sleepIndex blocks each query briefly, modeling a latency-bound backend.
type sleepIndex struct{ d time.Duration }

func (s *sleepIndex) Name() string { return "sleep" }
func (s *sleepIndex) RangeSearch(q core.Object, r float64) ([]int, error) {
	time.Sleep(s.d)
	return nil, nil
}
func (s *sleepIndex) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	time.Sleep(s.d)
	return nil, nil
}
func (s *sleepIndex) Insert(id int) error { return nil }
func (s *sleepIndex) Delete(id int) error { return nil }
func (s *sleepIndex) PageAccesses() int64 { return 0 }
func (s *sleepIndex) ResetStats()         {}
func (s *sleepIndex) MemBytes() int64     { return 0 }
func (s *sleepIndex) DiskBytes() int64    { return 0 }

// TestLatencyPercentiles pins the nearest-rank definition on a known
// sample and its edge cases.
func TestLatencyPercentiles(t *testing.T) {
	if p50, p95, p99 := LatencyPercentiles(nil); p50 != 0 || p95 != 0 || p99 != 0 {
		t.Fatalf("empty sample: got %v %v %v, want zeros", p50, p95, p99)
	}
	if p50, p95, p99 := LatencyPercentiles([]time.Duration{7}); p50 != 7 || p95 != 7 || p99 != 7 {
		t.Fatalf("single sample: got %v %v %v, want 7s", p50, p95, p99)
	}
	// 1..100 in shuffled order: nearest-rank p50 = 50, p95 = 95, p99 = 99.
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration((i*37)%100 + 1)
	}
	p50, p95, p99 := LatencyPercentiles(durs)
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Fatalf("1..100 sample: got %v %v %v, want 50 95 99", p50, p95, p99)
	}
	if durs[0] == 1 && durs[1] == 2 {
		t.Fatal("test expects a shuffled input to prove the copy is sorted, not the original")
	}
}

// TestBatchStatsPercentiles checks a real batch fills the latency
// percentiles and orders them.
func TestBatchStatsPercentiles(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 5)
	pv, err := pivot.HFI(ds, 3, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := table.NewLAESA(ds, pv)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(ds.Space(), Options{Workers: 4})
	res, err := eng.BatchKNNSearch(context.Background(), idx, queries(ds, 32), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("percentiles not filled or out of order: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Wall {
		t.Fatalf("p99 %v exceeds batch wall %v", s.P99, s.Wall)
	}
}

// TestBatchOverlapsQueries proves the engine actually runs queries
// concurrently (not a disguised sequential loop): 16 queries that each
// block 20ms must finish far faster than 320ms with 8 workers. This holds
// on any machine — overlap of blocked queries does not need extra cores.
func TestBatchOverlapsQueries(t *testing.T) {
	const d = 20 * time.Millisecond
	const n = 16
	eng := New(nil, Options{Workers: 8})
	qs := make([]core.Object, n)
	for i := range qs {
		qs[i] = core.Vector{0}
	}
	res, err := eng.BatchRangeSearch(context.Background(), &sleepIndex{d: d}, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	sequential := time.Duration(n) * d
	if res.Stats.Wall >= sequential/2 {
		t.Fatalf("batch wall %v is not at least 2x faster than the %v sequential bound — queries did not overlap", res.Stats.Wall, sequential)
	}
}

// memoIndex is a stub AnswerCached index: queries listed in cached are
// served by the peek methods, everything else computes through the
// search methods. It lets the pre-dispatch probe be tested in isolation.
type memoIndex struct {
	cached   map[int]bool // query index (encoded as the vector's first coord)
	searches atomic.Int64
	peeks    atomic.Int64
}

func (m *memoIndex) qi(q core.Object) int { return int(q.(core.Vector)[0]) }

func (m *memoIndex) Name() string { return "memo" }
func (m *memoIndex) PeekRange(q core.Object, r float64) ([]int, bool) {
	m.peeks.Add(1)
	if m.cached[m.qi(q)] {
		return []int{m.qi(q), 1000}, true
	}
	return nil, false
}
func (m *memoIndex) PeekKNN(q core.Object, k int) ([]core.Neighbor, bool) {
	m.peeks.Add(1)
	if m.cached[m.qi(q)] {
		return []core.Neighbor{{ID: m.qi(q), Dist: 0}}, true
	}
	return nil, false
}
func (m *memoIndex) RangeSearch(q core.Object, r float64) ([]int, error) {
	m.searches.Add(1)
	return []int{m.qi(q), 1000}, nil
}
func (m *memoIndex) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	m.searches.Add(1)
	return []core.Neighbor{{ID: m.qi(q), Dist: 0}}, nil
}
func (m *memoIndex) Insert(id int) error { return nil }
func (m *memoIndex) Delete(id int) error { return nil }
func (m *memoIndex) PageAccesses() int64 { return 0 }
func (m *memoIndex) ResetStats()         {}
func (m *memoIndex) MemBytes() int64     { return 0 }
func (m *memoIndex) DiskBytes() int64    { return 0 }

// TestBatchConsultsAnswerCache proves the engine probes an AnswerCached
// index per query before dispatching: cached queries never reach the
// worker pool, answers stay positionally aligned and identical either
// way, and Stats.CacheHits reports the probe hits.
func TestBatchConsultsAnswerCache(t *testing.T) {
	const n = 20
	idx := &memoIndex{cached: map[int]bool{}}
	for i := 0; i < n; i += 3 {
		idx.cached[i] = true // every third query is cached
	}
	qs := make([]core.Object, n)
	for i := range qs {
		qs[i] = core.Vector{float64(i)}
	}
	eng := New(nil, Options{Workers: 4})

	res, err := eng.BatchRangeSearch(context.Background(), idx, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := len(idx.cached)
	if res.Stats.CacheHits != wantHits {
		t.Fatalf("CacheHits = %d, want %d", res.Stats.CacheHits, wantHits)
	}
	if got := int(idx.searches.Load()); got != n-wantHits {
		t.Fatalf("%d real searches, want %d (only the misses)", got, n-wantHits)
	}
	for i, ids := range res.IDs {
		if len(ids) != 2 || ids[0] != i || ids[1] != 1000 {
			t.Fatalf("query %d: ids = %v", i, ids)
		}
	}

	idx.searches.Store(0)
	kres, err := eng.BatchKNNSearch(context.Background(), idx, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kres.Stats.CacheHits != wantHits {
		t.Fatalf("knn CacheHits = %d, want %d", kres.Stats.CacheHits, wantHits)
	}
	if got := int(idx.searches.Load()); got != n-wantHits {
		t.Fatalf("%d real knn searches, want %d", got, n-wantHits)
	}
	for i, nns := range kres.Neighbors {
		if len(nns) != 1 || nns[0].ID != i {
			t.Fatalf("query %d: nns = %v", i, nns)
		}
	}

	// An index without the interface reports zero hits and still answers.
	plain := &memoIndex{cached: map[int]bool{0: true}}
	type plainIndex struct{ core.Index }
	res2, err := eng.BatchRangeSearch(context.Background(), plainIndex{plain}, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CacheHits != 0 {
		t.Fatalf("uncached index reported %d hits", res2.Stats.CacheHits)
	}
}
