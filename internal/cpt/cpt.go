// Package cpt implements the Clustered Pivot Table of [20] (§3.3): a
// LAESA-style in-memory distance table whose *objects* live on disk,
// clustered by an M-tree so that verification I/O has locality. Queries
// scan the table with Lemma 1 and load only unpruned objects from the
// M-tree leaves — trading the table family's need to hold objects in
// memory for per-candidate page accesses (the paper's Table 4/6 show the
// resulting high construction and update costs).
package cpt

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/store"
)

// verifyChunk is the candidate batch size of the chunked DistanceMany
// verification path of RangeSearch.
const verifyChunk = 64

// knnBlockMin and knnBlock bound the row-block sizes of the staged kNN
// scan (see the LAESA twin): each block is swept at the radius current
// when it starts, so pruning tightens block by block before the
// per-candidate disk reads.
// Blocks start small and double, so the loose just-seeded radius only
// governs short sweeps.
const (
	knnBlockMin = 128
	knnBlock    = 1024
)

// Options tunes construction.
type Options struct {
	// Seed drives M-tree split sampling.
	Seed int64
	// Workers parallelizes construction: the distance-table precompute
	// fans its rows out over this many goroutines (0 or 1 sequential,
	// negative GOMAXPROCS), and any nonzero value additionally builds the
	// object M-tree with the partitioned bulk load of internal/mtree
	// instead of one-by-one insertion. The distance table is identical
	// for every value, and the bulk-loaded M-tree's page image is
	// identical for every nonzero value. Answers are identical either
	// way, but because the bulk load clusters objects onto different
	// pages than insertion, per-query PA (buffer-cache locality of
	// candidate reads) and update costs shift slightly versus Workers=0.
	Workers int
}

// CPT is the clustered pivot table index. Like LAESA, its distance table
// is struct-of-arrays — one contiguous column per pivot — scanned
// sequentially by the Lemma 1 filter; query-pivot distances go through
// the batch kernel and per-query buffers come from a scratch pool.
type CPT struct {
	ds        *core.Dataset
	pager     *store.Pager
	tree      *mtree.Tree
	pivotIDs  []int
	pivotVals []core.Object
	ids       []int32
	cols      [][]float64    // cols[i][row] = d(object ids[row], pivot i)
	qcol      *core.QuantCol // quantized shadow of cols[0]; nil mid-build
	rowOf     map[int]int
	scratch   core.ScratchPool
}

// New builds the CPT: the in-memory distance table plus the disk M-tree
// holding the objects (built by repeated insertion — where the extra
// construction compdists of Table 4 come from — or by the partitioned
// bulk load when Workers != 0).
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*CPT, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("cpt: no pivots")
	}
	c := &CPT{
		ds:       ds,
		pager:    pager,
		pivotIDs: append([]int(nil), pivots...),
		rowOf:    make(map[int]int),
	}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("cpt: pivot %d is not a live object", p)
		}
		c.pivotVals = append(c.pivotVals, v)
	}
	ids := ds.LiveIDs()
	c.ids, c.cols = core.BuildDistCols(ds, ids, c.pivotVals, opts.Workers)
	c.qcol = core.NewQuantCol(c.cols[0])
	for row, id := range ids {
		c.rowOf[id] = row
	}
	if opts.Workers != 0 {
		tree, err := mtree.Bulk(ds, pager, nil, mtree.Options{Seed: opts.Seed},
			mtree.BulkOptions{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		c.tree = tree
		return c, nil
	}
	tree, err := mtree.New(ds, pager, nil, mtree.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	c.tree = tree
	for _, id := range ids {
		if err := c.tree.Insert(id); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Name returns "CPT".
func (c *CPT) Name() string { return "CPT" }

// Len returns the number of indexed objects.
func (c *CPT) Len() int { return len(c.ids) }

// queryPrep draws scratch, sizes the survivor and chunk buffers, and
// computes the query-pivot distances through the batch kernel.
func (c *CPT) queryPrep(q core.Object) *core.Scratch {
	sc := c.scratch.Get()
	qd := sc.GrowQD(len(c.pivotVals))
	sc.GrowSur(len(c.ids))
	sc.GrowChunk(verifyChunk)
	c.ds.Space().DistanceMany(q, c.pivotVals, qd)
	return sc
}

// RangeSearch answers MRQ(q, r): a column sweep (core.SurviveColumnsQuant)
// applies Lemma 1 over the struct-of-arrays table; surviving candidates
// are loaded from the M-tree on disk and verified through DistanceMany
// in chunks (§3.3).
func (c *CPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc := c.queryPrep(q)
	defer c.scratch.Put(sc)
	sp := c.ds.Space()
	sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, c.qcol, c.cols, 0, len(c.ids), r)
	var res []int
	m := 0
	for _, row := range sur {
		id := c.ids[row]
		o, err := c.tree.ReadObject(int(id))
		if err != nil {
			return nil, err
		}
		sc.IDs[m] = id
		sc.Objs[m] = o
		m++
		if m < len(sc.IDs) {
			continue
		}
		sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
		for j := 0; j < m; j++ {
			if sc.Out[j] <= r {
				res = append(res, int(sc.IDs[j]))
			}
		}
		m = 0
	}
	if m > 0 {
		sp.DistanceMany(q, sc.Objs[:m], sc.Out[:m])
		for j := 0; j < m; j++ {
			if sc.Out[j] <= r {
				res = append(res, int(sc.IDs[j]))
			}
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) by the LAESA procedure with disk loads,
// staged like LAESA's scan: seed the heap with the first k rows (the
// prefix the scalar scan reads unconditionally while its radius is
// infinite), column-sweep the rest block by block at the tightening
// radius, then re-apply Lemma 1 per survivor with the fresh radius
// before its disk read. Verification stays per-candidate — the recheck
// makes the admitted set exactly the scalar scan's, and for CPT every
// admission is a disk read, not just a distance.
func (c *CPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sc := c.queryPrep(q)
	defer c.scratch.Put(sc)
	sp := c.ds.Space()
	h := sc.Heap(k)
	seed := k
	if seed > len(c.ids) {
		seed = len(c.ids)
	}
	for row := 0; row < seed; row++ {
		id := c.ids[row]
		o, err := c.tree.ReadObject(int(id))
		if err != nil {
			return nil, err
		}
		h.Push(int(id), sp.Distance(q, o))
	}
	for base, blk := seed, knnBlockMin; base < len(c.ids); base, blk = base+blk, min(blk*2, knnBlock) {
		end := base + blk
		if end > len(c.ids) {
			end = len(c.ids)
		}
		sur := core.SurviveColumnsQuant(sc.Sur, sc.QD, c.qcol, c.cols, base, end, h.Radius())
		for _, row := range sur {
			r := h.Radius()
			if core.PruneRowAt(sc.QD, c.cols, int(row), r) {
				continue
			}
			id := c.ids[row]
			o, err := c.tree.ReadObject(int(id))
			if err != nil {
				return nil, err
			}
			h.Push(int(id), sp.Distance(q, o))
		}
	}
	return h.Result(), nil
}

// Insert adds the object to the table and the M-tree, computing its
// pivot distances through the batch kernel.
func (c *CPT) Insert(id int) error {
	if _, dup := c.rowOf[id]; dup {
		return fmt.Errorf("cpt: duplicate insert of %d", id)
	}
	if err := c.tree.Insert(id); err != nil {
		return err
	}
	c.rowOf[id] = len(c.ids)
	c.ids = append(c.ids, int32(id))
	o := c.ds.Object(id)
	sc := c.scratch.Get()
	qd := sc.GrowQD(len(c.pivotVals))
	c.ds.Space().DistanceMany(o, c.pivotVals, qd)
	for i := range c.cols {
		c.cols[i] = append(c.cols[i], qd[i])
	}
	if c.qcol != nil {
		c.qcol.Append(qd[0])
	}
	c.scratch.Put(sc)
	return nil
}

// Delete removes the object from the table (sequential scan, §6.3) and
// from the M-tree.
func (c *CPT) Delete(id int) error {
	row := -1
	for i, rid := range c.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("cpt: delete of unindexed object %d", id)
	}
	if err := c.tree.Delete(id); err != nil {
		return err
	}
	last := len(c.ids) - 1
	lastID := c.ids[last]
	c.ids[row] = lastID
	c.ids = c.ids[:last]
	for i := range c.cols {
		col := c.cols[i]
		col[row] = col[last]
		c.cols[i] = col[:last]
	}
	if c.qcol != nil {
		c.qcol.SwapDelete(row)
	}
	c.rowOf[int(lastID)] = row
	delete(c.rowOf, id)
	return nil
}

// PageAccesses reports the pager's accesses (M-tree reads/writes).
func (c *CPT) PageAccesses() int64 { return c.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (c *CPT) ResetStats() { c.pager.ResetStats() }

// MemBytes reports the in-memory distance table size (the component the
// paper counts as CPT's memory storage).
func (c *CPT) MemBytes() int64 {
	n := int64(len(c.ids))*4 + int64(len(c.pivotIDs))*8
	for _, col := range c.cols {
		n += int64(len(col)) * 8
	}
	return n
}

// DiskBytes reports the M-tree's on-disk footprint.
func (c *CPT) DiskBytes() int64 { return c.pager.DiskBytes() }
