// Package cpt implements the Clustered Pivot Table of [20] (§3.3): a
// LAESA-style in-memory distance table whose *objects* live on disk,
// clustered by an M-tree so that verification I/O has locality. Queries
// scan the table with Lemma 1 and load only unpruned objects from the
// M-tree leaves — trading the table family's need to hold objects in
// memory for per-candidate page accesses (the paper's Table 4/6 show the
// resulting high construction and update costs).
package cpt

import (
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/store"
)

// Options tunes construction.
type Options struct {
	// Seed drives M-tree split sampling.
	Seed int64
	// Workers parallelizes construction: the distance-table precompute
	// fans its rows out over this many goroutines (0 or 1 sequential,
	// negative GOMAXPROCS), and any nonzero value additionally builds the
	// object M-tree with the partitioned bulk load of internal/mtree
	// instead of one-by-one insertion. The distance table is identical
	// for every value, and the bulk-loaded M-tree's page image is
	// identical for every nonzero value. Answers are identical either
	// way, but because the bulk load clusters objects onto different
	// pages than insertion, per-query PA (buffer-cache locality of
	// candidate reads) and update costs shift slightly versus Workers=0.
	Workers int
}

// CPT is the clustered pivot table index.
type CPT struct {
	ds        *core.Dataset
	pager     *store.Pager
	tree      *mtree.Tree
	pivotIDs  []int
	pivotVals []core.Object
	ids       []int32
	dists     []float64 // row-major rows × len(pivots)
	rowOf     map[int]int
}

// New builds the CPT: the in-memory distance table plus the disk M-tree
// holding the objects (built by repeated insertion — where the extra
// construction compdists of Table 4 come from — or by the partitioned
// bulk load when Workers != 0).
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*CPT, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("cpt: no pivots")
	}
	c := &CPT{
		ds:       ds,
		pager:    pager,
		pivotIDs: append([]int(nil), pivots...),
		rowOf:    make(map[int]int),
	}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("cpt: pivot %d is not a live object", p)
		}
		c.pivotVals = append(c.pivotVals, v)
	}
	ids := ds.LiveIDs()
	c.ids, c.dists = core.BuildDistRows(ds, ids, c.pivotVals, opts.Workers)
	for row, id := range ids {
		c.rowOf[id] = row
	}
	if opts.Workers != 0 {
		tree, err := mtree.Bulk(ds, pager, nil, mtree.Options{Seed: opts.Seed},
			mtree.BulkOptions{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		c.tree = tree
		return c, nil
	}
	tree, err := mtree.New(ds, pager, nil, mtree.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	c.tree = tree
	for _, id := range ids {
		if err := c.tree.Insert(id); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Name returns "CPT".
func (c *CPT) Name() string { return "CPT" }

// Len returns the number of indexed objects.
func (c *CPT) Len() int { return len(c.ids) }

func (c *CPT) queryDists(q core.Object) []float64 {
	qd := make([]float64, len(c.pivotVals))
	sp := c.ds.Space()
	for i, p := range c.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r): scan the table with Lemma 1; candidates
// are loaded from the M-tree on disk for verification (§3.3).
func (c *CPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := c.queryDists(q)
	l := len(c.pivotVals)
	sp := c.ds.Space()
	var res []int
	for row, id := range c.ids {
		od := c.dists[row*l : row*l+l]
		if core.PruneObject(qd, od, r) {
			continue
		}
		o, err := c.tree.ReadObject(int(id))
		if err != nil {
			return nil, err
		}
		if sp.Distance(q, o) <= r {
			res = append(res, int(id))
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) by the LAESA procedure with disk loads:
// storage-order scan, infinite start radius, tightening on verification.
func (c *CPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := c.queryDists(q)
	l := len(c.pivotVals)
	sp := c.ds.Space()
	h := core.NewKNNHeap(k)
	for row, id := range c.ids {
		r := h.Radius()
		od := c.dists[row*l : row*l+l]
		if !math.IsInf(r, 1) && core.PruneObject(qd, od, r) {
			continue
		}
		o, err := c.tree.ReadObject(int(id))
		if err != nil {
			return nil, err
		}
		h.Push(int(id), sp.Distance(q, o))
	}
	return h.Result(), nil
}

// Insert adds the object to the table and the M-tree.
func (c *CPT) Insert(id int) error {
	if _, dup := c.rowOf[id]; dup {
		return fmt.Errorf("cpt: duplicate insert of %d", id)
	}
	if err := c.tree.Insert(id); err != nil {
		return err
	}
	c.rowOf[id] = len(c.ids)
	c.ids = append(c.ids, int32(id))
	o := c.ds.Object(id)
	sp := c.ds.Space()
	for _, p := range c.pivotVals {
		c.dists = append(c.dists, sp.Distance(o, p))
	}
	return nil
}

// Delete removes the object from the table (sequential scan, §6.3) and
// from the M-tree.
func (c *CPT) Delete(id int) error {
	row := -1
	for i, rid := range c.ids {
		if int(rid) == id {
			row = i
			break
		}
	}
	if row < 0 {
		return fmt.Errorf("cpt: delete of unindexed object %d", id)
	}
	if err := c.tree.Delete(id); err != nil {
		return err
	}
	l := len(c.pivotVals)
	last := len(c.ids) - 1
	lastID := c.ids[last]
	c.ids[row] = lastID
	copy(c.dists[row*l:row*l+l], c.dists[last*l:last*l+l])
	c.ids = c.ids[:last]
	c.dists = c.dists[:last*l]
	c.rowOf[int(lastID)] = row
	delete(c.rowOf, id)
	return nil
}

// PageAccesses reports the pager's accesses (M-tree reads/writes).
func (c *CPT) PageAccesses() int64 { return c.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (c *CPT) ResetStats() { c.pager.ResetStats() }

// MemBytes reports the in-memory distance table size (the component the
// paper counts as CPT's memory storage).
func (c *CPT) MemBytes() int64 {
	return int64(len(c.dists))*8 + int64(len(c.ids))*4 + int64(len(c.pivotIDs))*8
}

// DiskBytes reports the M-tree's on-disk footprint.
func (c *CPT) DiskBytes() int64 { return c.pager.DiskBytes() }
