package cpt

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// TestCPTLoadsVersion1Payload hand-encodes the version-1 (row-major) CPT
// payload of a freshly built index and checks the registered loader
// restores an identical table with identical answers.
func TestCPTLoadsVersion1Payload(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, store.NewPager(1024), pv, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := persist.NewWriter()
	w.U16(1)
	w.Blob(idx.pager.Serialize())
	if err := idx.tree.EncodeState(w); err != nil {
		t.Fatal(err)
	}
	w.Ints(idx.pivotIDs)
	w.Objects(idx.pivotVals)
	w.Int32s(idx.ids)
	l := len(idx.cols)
	dists := make([]float64, len(idx.ids)*l)
	for i, col := range idx.cols {
		for row, d := range col {
			dists[row*l+i] = d
		}
	}
	w.Floats(dists)

	restoredIdx, _, err := loadCPT(ds, persist.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("load v1 payload: %v", err)
	}
	restored := restoredIdx.(*CPT)
	if !reflect.DeepEqual(restored.cols, idx.cols) {
		t.Fatal("v1 load did not transpose to the original columns")
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		a, err := idx.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("MRQ answers differ after v1 load: %v vs %v", a, b)
		}
		an, err := idx.KNNSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := restored.KNNSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(an, bn) {
			t.Fatalf("MkNNQ answers differ after v1 load: %v vs %v", an, bn)
		}
	}
}
