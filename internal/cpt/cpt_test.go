package cpt

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func build(t *testing.T, ds *core.Dataset) (*CPT, *store.Pager) {
	t.Helper()
	p := store.NewPager(1024)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, p, pv, Options{Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, p
}

func TestCPTMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 7)
	idx, _ := build(t, ds)
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 7, 40, 400} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestCPTWords(t *testing.T) {
	ds := testutil.WordDataset(250, 11)
	idx, _ := build(t, ds)
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 9)
	}
}

func TestCPTQueriesCostPageAccesses(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 9)
	idx, p := build(t, ds)
	p.ResetStats()
	q := testutil.RandomQuery(ds, 1)
	if _, err := idx.RangeSearch(q, 20); err != nil {
		t.Fatal(err)
	}
	if p.PageAccesses() == 0 {
		t.Fatal("CPT verification must read M-tree pages")
	}
	if idx.DiskBytes() == 0 {
		t.Fatal("CPT stores objects on disk")
	}
	if idx.MemBytes() == 0 {
		t.Fatal("CPT keeps the distance table in memory")
	}
}

func TestCPTInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 13)
	idx, _ := build(t, ds)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 15)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
	}
	if err := idx.Delete(99999); err == nil {
		t.Fatal("delete of absent id should fail")
	}
}

// TestCPTParallelBuildMatchesSequential checks that the parallel
// distance-table precompute (Options.Workers) yields an index identical
// to a sequential build, table and answers alike.
func TestCPTParallelBuildMatchesSequential(t *testing.T) {
	seqDS := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	parDS := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(seqDS, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	seq, err := New(seqDS, store.NewPager(1024), pv, Options{Seed: 7})
	if err != nil {
		t.Fatalf("sequential New: %v", err)
	}
	par, err := New(parDS, store.NewPager(1024), pv, Options{Seed: 7, Workers: 4})
	if err != nil {
		t.Fatalf("parallel New: %v", err)
	}
	if !reflect.DeepEqual(seq.ids, par.ids) {
		t.Fatal("parallel build ids differ")
	}
	if !reflect.DeepEqual(seq.cols, par.cols) {
		t.Fatal("parallel build distances differ")
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(seqDS, qs)
		a, err := seq.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("MRQ answers differ: %v vs %v", a, b)
		}
	}
}
