package cpt

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the CPT (spec: docs/PERSISTENCE.md
// §CPT): the pager volume image, the clustering M-tree handle state, and
// the in-memory pivot table.

const cptFormatVersion = 1

func init() {
	persist.Register("CPT", loadCPT)
}

// EncodeSnapshot writes the CPT payload.
func (c *CPT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(cptFormatVersion)
	w.Blob(c.pager.Serialize())
	if err := c.tree.EncodeState(w); err != nil {
		return err
	}
	w.Ints(c.pivotIDs)
	w.Objects(c.pivotVals)
	w.Int32s(c.ids)
	w.Floats(c.dists)
	return nil
}

func loadCPT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != cptFormatVersion {
		return nil, nil, fmt.Errorf("cpt: unsupported payload version %d", v)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	pager, err := store.LoadPager(blob)
	if err != nil {
		return nil, nil, err
	}
	tree, err := mtree.RestoreState(ds, pager, r)
	if err != nil {
		return nil, nil, err
	}
	c := &CPT{
		ds:        ds,
		pager:     pager,
		tree:      tree,
		pivotIDs:  r.Ints(),
		pivotVals: r.Objects(),
		ids:       r.Int32s(),
		dists:     r.Floats(),
		rowOf:     make(map[int]int),
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(c.pivotVals) != len(c.pivotIDs) || len(c.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("cpt: %d pivot values for %d pivot ids", len(c.pivotVals), len(c.pivotIDs))
	}
	if len(c.dists) != len(c.ids)*len(c.pivotIDs) {
		return nil, nil, fmt.Errorf("cpt: %d distances for %d rows × %d pivots", len(c.dists), len(c.ids), len(c.pivotIDs))
	}
	for row, id := range c.ids {
		c.rowOf[int(id)] = row
	}
	return c, pager, nil
}
