package cpt

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the CPT (spec: docs/PERSISTENCE.md
// §CPT): the pager volume image, the clustering M-tree handle state, and
// the in-memory pivot table.
//
// Version history:
//   - 1: distance table row-major (dists[row*l+i]).
//   - 2: distance table column-major (the struct-of-arrays layout: one
//     pivot's rows after another). Same fields, same wire ops; only the
//     float order changed. Version-1 payloads still load via a
//     transpose.
const cptFormatVersion = 2

func init() {
	persist.Register("CPT", loadCPT)
}

// EncodeSnapshot writes the CPT payload.
func (c *CPT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(cptFormatVersion)
	w.Blob(c.pager.Serialize())
	if err := c.tree.EncodeState(w); err != nil {
		return err
	}
	w.Ints(c.pivotIDs)
	w.Objects(c.pivotVals)
	w.Int32s(c.ids)
	flat := make([]float64, 0, len(c.ids)*len(c.cols))
	for _, col := range c.cols {
		flat = append(flat, col...)
	}
	w.Floats(flat)
	return nil
}

func loadCPT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	v := r.U16()
	if r.Err() == nil && v != 1 && v != cptFormatVersion {
		return nil, nil, fmt.Errorf("cpt: unsupported payload version %d", v)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	pager, err := store.LoadPager(blob)
	if err != nil {
		return nil, nil, err
	}
	tree, err := mtree.RestoreState(ds, pager, r)
	if err != nil {
		return nil, nil, err
	}
	c := &CPT{
		ds:        ds,
		pager:     pager,
		tree:      tree,
		pivotIDs:  r.Ints(),
		pivotVals: r.Objects(),
		ids:       r.Int32s(),
		rowOf:     make(map[int]int),
	}
	dists := r.Floats()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(c.pivotVals) != len(c.pivotIDs) || len(c.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("cpt: %d pivot values for %d pivot ids", len(c.pivotVals), len(c.pivotIDs))
	}
	if len(dists) != len(c.ids)*len(c.pivotIDs) {
		return nil, nil, fmt.Errorf("cpt: %d distances for %d rows × %d pivots", len(dists), len(c.ids), len(c.pivotIDs))
	}
	c.cols = distColumns(dists, len(c.ids), len(c.pivotIDs), v == 1)
	c.qcol = core.NewQuantCol(c.cols[0])
	for row, id := range c.ids {
		c.rowOf[int(id)] = row
	}
	return c, pager, nil
}

// distColumns splits a flat distance block into per-pivot columns,
// transposing when the block is the row-major layout of version-1
// payloads.
func distColumns(dists []float64, rows, l int, rowMajor bool) [][]float64 {
	cols := make([][]float64, l)
	for i := range cols {
		cols[i] = make([]float64, rows)
		if rowMajor {
			for row := 0; row < rows; row++ {
				cols[i][row] = dists[row*l+i]
			}
		} else {
			copy(cols[i], dists[i*rows:(i+1)*rows])
		}
	}
	return cols
}
