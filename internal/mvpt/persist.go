package mvpt

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the MVPT (spec: docs/PERSISTENCE.md
// §MVPT). The same payload serves both registry kinds: the index names
// itself "VPT" at arity 2 and "MVPT" otherwise.

const mvptFormatVersion = 1

// maxTreeDepth bounds node-decoding recursion so corrupt payloads cannot
// exhaust the stack.
const maxTreeDepth = 10000

func init() {
	persist.Register("MVPT", loadMVPT)
	persist.Register("VPT", loadMVPT)
}

// EncodeSnapshot writes the MVPT payload: the (defaulted) build options,
// the pivots, the object count and the tree.
func (t *MVPT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(mvptFormatVersion)
	w.U32(uint32(t.opts.Arity))
	w.U32(uint32(t.opts.LeafCapacity))
	w.I64(int64(t.opts.Workers))
	w.Ints(t.pivotIDs)
	w.Objects(t.pivotVals)
	w.U32(uint32(t.size))
	encodeMVPTNode(w, t.root)
	return nil
}

// Node tags: 0 = nil, 1 = leaf bucket, 2 = internal node with per-child
// distance bands.
func encodeMVPTNode(w *persist.Writer, n *node) {
	switch {
	case n == nil:
		w.U8(0)
	case n.leaf():
		w.U8(1)
		w.Int32s(n.ids)
	default:
		w.U8(2)
		w.Floats(n.lo)
		w.Floats(n.hi)
		w.U32(uint32(len(n.children)))
		for _, c := range n.children {
			encodeMVPTNode(w, c)
		}
	}
}

func decodeMVPTNode(r *persist.Reader, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("mvpt: tree deeper than %d", maxTreeDepth)
	}
	switch tag := r.U8(); tag {
	case 0:
		return nil, r.Err()
	case 1:
		return &node{ids: r.Int32s()}, r.Err()
	case 2:
		n := &node{lo: r.Floats(), hi: r.Floats()}
		cnt := r.Count(1) // at least a tag byte per child
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(n.lo) != cnt || len(n.hi) != cnt {
			return nil, fmt.Errorf("mvpt: %d/%d bands for %d children", len(n.lo), len(n.hi), cnt)
		}
		n.children = make([]*node, cnt)
		for i := range n.children {
			child, err := decodeMVPTNode(r, depth+1)
			if err != nil {
				return nil, err
			}
			n.children[i] = child
		}
		return n, r.Err()
	default:
		return nil, fmt.Errorf("mvpt: unknown node tag %d", tag)
	}
}

func loadMVPT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != mvptFormatVersion {
		return nil, nil, fmt.Errorf("mvpt: unsupported payload version %d", v)
	}
	t := &MVPT{ds: ds}
	t.opts.Arity = int(r.U32())
	t.opts.LeafCapacity = int(r.U32())
	t.opts.Workers = int(r.I64())
	t.pivotIDs = r.Ints()
	t.pivotVals = r.Objects()
	t.size = int(r.U32())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if len(t.pivotVals) != len(t.pivotIDs) || len(t.pivotIDs) == 0 {
		return nil, nil, fmt.Errorf("mvpt: %d pivot values for %d pivot ids", len(t.pivotVals), len(t.pivotIDs))
	}
	if t.opts.Arity < 2 {
		return nil, nil, fmt.Errorf("mvpt: arity %d below 2", t.opts.Arity)
	}
	root, err := decodeMVPTNode(r, 0)
	if err != nil {
		return nil, nil, err
	}
	t.root = root
	t.tokens = core.NewTokenPool(t.opts.Workers)
	return t, nil, nil
}
