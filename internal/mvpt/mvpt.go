// Package mvpt implements the Vantage-Point Tree (VPT [29]) and its m-ary
// generalization MVPT [5] of paper §4.3: the balanced pivot tree for
// continuous distance functions. Each level splits its objects by m−1
// distance quantiles ("medium values") to the level's pivot; per the
// paper's methodology, all nodes at one level share the same pivot from
// the shared pivot set. Only the cut values and child distance ranges are
// stored — not full pre-computed distance vectors — which is why the tree
// family spends more compdists but less memory than the tables (Table 4,
// Figs 16-17). The paper's default arity is m = 5; m = 2 yields VPT.
package mvpt

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"metricindex/internal/core"
)

// Options tunes construction.
type Options struct {
	// Arity is the fanout m (>= 2). The paper uses 5. Default 5.
	Arity int
	// LeafCapacity stops splitting below this bucket size. Default 16.
	LeafCapacity int
	// Workers parallelizes construction node-level: the per-node pivot
	// distances and sibling subtrees spread over a pool of Workers
	// goroutines shared by the whole build (a token scheme, so total
	// concurrency stays bounded however wide the tree fans out). 0 or 1
	// builds sequentially, negative uses GOMAXPROCS. The tree is
	// identical either way — the same bands, cut values, and id order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Arity < 2 {
		o.Arity = 5
	}
	if o.LeafCapacity <= 0 {
		o.LeafCapacity = 16
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// MVPT is the multi-vantage-point tree index.
type MVPT struct {
	ds        *core.Dataset
	opts      Options
	pivotIDs  []int
	pivotVals []core.Object
	root      *node
	size      int
	// tokens bounds build parallelism to Workers total goroutines across
	// the whole recursion (core.TokenPool's try-else-inline discipline);
	// nil builds sequentially.
	tokens *core.TokenPool
}

// node is a leaf bucket or an internal node with children split by cut
// values on the level pivot. Child distance ranges [lo, hi] to the level
// pivot are kept for pruning; they stay conservative across deletions.
type node struct {
	ids      []int32 // leaf
	children []*node // internal
	lo, hi   []float64
}

func (n *node) leaf() bool { return n.children == nil }

// New builds an MVPT over all live objects using the shared pivots, one
// per level (cycling if the tree outgrows the pivot set).
func New(ds *core.Dataset, pivots []int, opts Options) (*MVPT, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("mvpt: no pivots")
	}
	opts = opts.withDefaults()
	t := &MVPT{ds: ds, opts: opts, pivotIDs: append([]int(nil), pivots...)}
	t.tokens = core.NewTokenPool(opts.Workers)
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("mvpt: pivot %d is not a live object", p)
		}
		t.pivotVals = append(t.pivotVals, v)
	}
	ids := make([]int32, 0, ds.Count())
	for _, id := range ds.LiveIDs() {
		ids = append(ids, int32(id))
	}
	t.size = len(ids)
	t.root = t.build(ids, 0)
	return t, nil
}

// pivotAt returns the pivot value for a tree level.
func (t *MVPT) pivotAt(level int) core.Object {
	return t.pivotVals[level%len(t.pivotVals)]
}

// build splits ids into m quantile bands of distance to the level pivot.
// With Workers > 1 the per-node distances and sibling subtrees above
// core.ParallelNodeCutoff spread over the shared token pool — disjoint nodes and
// slots, so the tree is identical to the sequential build (§6.2's
// object-independence, applied node-level).
func (t *MVPT) build(ids []int32, level int) *node {
	if len(ids) <= t.opts.LeafCapacity {
		return &node{ids: ids}
	}
	sp := t.ds.Space()
	pv := t.pivotAt(level)
	type od struct {
		id int32
		d  float64
	}
	par := t.tokens != nil && len(ids) >= core.ParallelNodeCutoff
	all := make([]od, len(ids))
	fill := func(start, end int) {
		for i := start; i < end; i++ {
			all[i] = od{ids[i], sp.Distance(pv, t.ds.Object(int(ids[i])))}
		}
	}
	if par {
		t.tokens.ChunkedFill(len(ids), fill)
	} else {
		fill(0, len(ids))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if all[0].d == all[len(all)-1].d {
		// All objects equidistant from the pivot: splitting cannot make
		// progress at this level; fall back to a (possibly oversized) leaf.
		return &node{ids: ids}
	}
	m := t.opts.Arity
	n := &node{}
	// Walk the sorted list and close a band at every target-size boundary.
	// Equal distances may straddle a cut: Delete probes every band whose
	// [lo, hi] range contains the distance, so correctness does not depend
	// on ties staying together, and plain chunking guarantees every band
	// is strictly smaller than the node (no degenerate recursion).
	target := (len(all) + m - 1) / m
	var bands [][]int32
	for bandStart := 0; bandStart < len(all); {
		end := bandStart + target
		if end >= len(all) {
			end = len(all)
		}
		bandIDs := make([]int32, end-bandStart)
		for i := bandStart; i < end; i++ {
			bandIDs[i-bandStart] = all[i].id
		}
		bands = append(bands, bandIDs)
		n.lo = append(n.lo, all[bandStart].d)
		n.hi = append(n.hi, all[end-1].d)
		bandStart = end
	}
	n.children = make([]*node, len(bands))
	var wg sync.WaitGroup
	for b := range bands {
		if !par || !t.tokens.TryGo(&wg, func() { n.children[b] = t.build(bands[b], level+1) }) {
			n.children[b] = t.build(bands[b], level+1)
		}
	}
	wg.Wait()
	return n
}

// Name returns "MVPT" for m > 2 and "VPT" for the binary tree.
func (t *MVPT) Name() string {
	if t.opts.Arity == 2 {
		return "VPT"
	}
	return "MVPT"
}

// Len returns the number of indexed objects.
func (t *MVPT) Len() int { return t.size }

// queryDists computes d(q, p_i) once per pivot per query.
func (t *MVPT) queryDists(q core.Object) []float64 {
	qd := make([]float64, len(t.pivotVals))
	sp := t.ds.Space()
	for i, p := range t.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r) depth-first, pruning children whose
// distance band misses [d(q,p)−r, d(q,p)+r].
func (t *MVPT) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := t.queryDists(q)
	sp := t.ds.Space()
	var res []int
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		if n.leaf() {
			for _, id := range n.ids {
				if sp.Distance(q, t.ds.Object(int(id))) <= r {
					res = append(res, int(id))
				}
			}
			return
		}
		dq := qd[level%len(qd)]
		for c, child := range n.children {
			if dq+r < n.lo[c] || dq-r > n.hi[c] {
				continue
			}
			walk(child, level+1)
		}
	}
	walk(t.root, 0)
	sort.Ints(res)
	return res, nil
}

type pqItem struct {
	n     *node
	level int
	lb    float64
}

type nodePQ []pqItem

func (p nodePQ) Len() int           { return len(p) }
func (p nodePQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p nodePQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *nodePQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// KNNSearch answers MkNNQ(q, k) best-first in ascending lower-bound order
// with radius tightening.
func (t *MVPT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	qd := t.queryDists(q)
	sp := t.ds.Space()
	h := core.NewKNNHeap(k)
	pq := &nodePQ{}
	heap.Push(pq, pqItem{t.root, 0, 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.lb > h.Radius() {
			break
		}
		if it.n.leaf() {
			for _, id := range it.n.ids {
				h.Push(int(id), sp.Distance(q, t.ds.Object(int(id))))
			}
			continue
		}
		dq := qd[it.level%len(qd)]
		for c, child := range it.n.children {
			lb := intervalDist(dq, it.n.lo[c], it.n.hi[c])
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				heap.Push(pq, pqItem{child, it.level + 1, lb})
			}
		}
	}
	return h.Result(), nil
}

func intervalDist(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// Insert descends into the child whose band contains (or is nearest to)
// the object's pivot distance, widening bands along the path.
func (t *MVPT) Insert(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("mvpt: insert of deleted object %d", id)
	}
	t.size++
	t.insertAt(t.root, 0, id, o)
	return nil
}

func (t *MVPT) insertAt(n *node, level int, id int, o core.Object) {
	if n.leaf() {
		n.ids = append(n.ids, int32(id))
		if len(n.ids) > 2*t.opts.LeafCapacity {
			rebuilt := t.build(n.ids, level)
			*n = *rebuilt
		}
		return
	}
	d := t.ds.Space().Distance(t.pivotAt(level), o)
	c := t.childFor(n, d)
	if d < n.lo[c] {
		n.lo[c] = d
	}
	if d > n.hi[c] {
		n.hi[c] = d
	}
	t.insertAt(n.children[c], level+1, id, o)
}

// childFor picks the band containing d, or the nearest band when d falls
// in a gap or beyond the extremes.
func (t *MVPT) childFor(n *node, d float64) int {
	for c := range n.children {
		if d >= n.lo[c] && d <= n.hi[c] {
			return c
		}
	}
	best, bestGap := 0, intervalDist(d, n.lo[0], n.hi[0])
	for c := 1; c < len(n.children); c++ {
		if g := intervalDist(d, n.lo[c], n.hi[c]); g < bestGap {
			best, bestGap = c, g
		}
	}
	return best
}

// Delete descends along every band that could contain the object's pivot
// distance and removes the identifier.
func (t *MVPT) Delete(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("mvpt: delete needs the object still present in the dataset (id %d)", id)
	}
	if !t.deleteAt(t.root, 0, id, o) {
		return fmt.Errorf("mvpt: delete of unindexed object %d", id)
	}
	t.size--
	return nil
}

func (t *MVPT) deleteAt(n *node, level int, id int, o core.Object) bool {
	if n.leaf() {
		for i, x := range n.ids {
			if int(x) == id {
				n.ids[i] = n.ids[len(n.ids)-1]
				n.ids = n.ids[:len(n.ids)-1]
				return true
			}
		}
		return false
	}
	d := t.ds.Space().Distance(t.pivotAt(level), o)
	for c, child := range n.children {
		if d < n.lo[c] || d > n.hi[c] {
			continue
		}
		if t.deleteAt(child, level+1, id, o) {
			return true
		}
	}
	return false
}

// PageAccesses returns 0: MVPT is an in-memory index.
func (t *MVPT) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (t *MVPT) ResetStats() {}

// MemBytes estimates the resident size: cut values and identifiers only,
// the smallest footprint of the index families (Table 4).
func (t *MVPT) MemBytes() int64 {
	var bytes int64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			bytes += int64(len(n.ids))*4 + 24
			return
		}
		bytes += int64(len(n.children))*(16+8) + 24
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return bytes
}

// DiskBytes returns 0.
func (t *MVPT) DiskBytes() int64 { return 0 }
