package mvpt

import (
	"fmt"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/testutil"
)

func newVPT(t *testing.T, n, arity int) (*MVPT, *core.Dataset) {
	t.Helper()
	ds := testutil.VectorDataset(n, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(ds, 5, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, pv, Options{Arity: arity})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, ds
}

func TestMVPTRangeMatchesBruteForce(t *testing.T) {
	for _, arity := range []int{2, 3, 5, 8} {
		idx, ds := newVPT(t, 400, arity)
		for qs := int64(0); qs < 4; qs++ {
			q := testutil.RandomQuery(ds, qs)
			for _, r := range testutil.Radii(ds, q) {
				testutil.CheckRange(t, idx, ds, q, r)
			}
		}
	}
}

func TestMVPTKNNMatchesBruteForce(t *testing.T) {
	for _, arity := range []int{2, 5} {
		idx, ds := newVPT(t, 400, arity)
		for qs := int64(0); qs < 4; qs++ {
			q := testutil.RandomQuery(ds, qs)
			for _, k := range []int{1, 4, 25, 400} {
				testutil.CheckKNN(t, idx, ds, q, k)
			}
		}
	}
}

func TestMVPTNames(t *testing.T) {
	vpt, _ := newVPT(t, 50, 2)
	if vpt.Name() != "VPT" {
		t.Fatalf("arity-2 Name = %q, want VPT", vpt.Name())
	}
	mvpt, _ := newVPT(t, 50, 5)
	if mvpt.Name() != "MVPT" {
		t.Fatalf("arity-5 Name = %q, want MVPT", mvpt.Name())
	}
}

// TestMVPTEquivalence runs the shared metamorphic harness (parallel ==
// sequential answers, linear-scan correctness, insert-then-delete
// invariance) on vectors and words.
func TestMVPTEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 400, 7) {
		build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
			return New(ds, ed.Pivots, Options{Workers: workers})
		}
		testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
	}
}

func TestMVPTDeleteThenInsertMixed(t *testing.T) {
	idx, ds := newVPT(t, 250, 5)
	for id := 0; id < 250; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 17)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len = %d, want %d", idx.Len(), ds.Count())
	}
}

// TestMVPTBuildConcurrencyBounded is the regression guard that the build
// bounds *total* concurrency to Workers via the shared token pool — not
// Workers per tree level.
func TestMVPTBuildConcurrencyBounded(t *testing.T) {
	const workers = 3
	ds, probe := testutil.ProbeDataset(testutil.VectorDataset(1500, 4, 100, core.L2{}, 7), 0)
	if _, err := New(ds, testutil.SpreadPivots(ds, 5), Options{Workers: workers}); err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := probe.Max(); got > workers {
		t.Fatalf("observed %d concurrent distance computations, Workers=%d", got, workers)
	}
}

func TestMVPTDuplicates(t *testing.T) {
	objs := make([]core.Object, 120)
	for i := range objs {
		objs[i] = core.Vector{float64(i % 2), 1}
	}
	ds := core.NewDataset(core.NewSpace(core.L2{}), objs)
	pv := []int{0, 1}
	idx, err := New(ds, pv, Options{LeafCapacity: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := core.Vector{0, 1}
	testutil.CheckRange(t, idx, ds, q, 0)
	testutil.CheckRange(t, idx, ds, q, 0.5)
	testutil.CheckKNN(t, idx, ds, q, 70)
}

func TestMVPTHeavyTiesTerminate(t *testing.T) {
	// Regression: a run of equal pivot distances used to extend one band
	// over the whole node, recursing forever. A distribution with a few
	// distinct points repeated many times must build (and stay correct).
	objs := make([]core.Object, 600)
	for i := range objs {
		objs[i] = core.Vector{float64(i % 4), float64(i % 3)}
	}
	ds := core.NewDataset(core.NewSpace(core.L2{}), objs)
	idx, err := New(ds, []int{0, 1, 2}, Options{LeafCapacity: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := core.Vector{1, 1}
	testutil.CheckRange(t, idx, ds, q, 0)
	testutil.CheckRange(t, idx, ds, q, 1.5)
	testutil.CheckKNN(t, idx, ds, q, 200)
	// Ties straddling bands: every duplicate must still be deletable.
	for id := 0; id < 100; id++ {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	testutil.CheckRange(t, idx, ds, q, 1.5)
}

// sameTree deep-compares two nodes: band count, cut values, and the exact
// identifier sequence of every leaf.
func sameTree(a, b *node) error {
	if a.leaf() != b.leaf() {
		return fmt.Errorf("leaf/internal mismatch")
	}
	if a.leaf() {
		if len(a.ids) != len(b.ids) {
			return fmt.Errorf("leaf sizes %d vs %d", len(a.ids), len(b.ids))
		}
		for i := range a.ids {
			if a.ids[i] != b.ids[i] {
				return fmt.Errorf("leaf id %d: %d vs %d", i, a.ids[i], b.ids[i])
			}
		}
		return nil
	}
	if len(a.children) != len(b.children) {
		return fmt.Errorf("fanout %d vs %d", len(a.children), len(b.children))
	}
	for c := range a.children {
		if a.lo[c] != b.lo[c] || a.hi[c] != b.hi[c] {
			return fmt.Errorf("band %d range [%v,%v] vs [%v,%v]", c, a.lo[c], a.hi[c], b.lo[c], b.hi[c])
		}
		if err := sameTree(a.children[c], b.children[c]); err != nil {
			return fmt.Errorf("child %d: %w", c, err)
		}
	}
	return nil
}

// TestMVPTParallelBuildIdentical checks the node-level parallel build
// produces exactly the sequential tree — same bands, same cut values,
// same leaf id order — and stays correct.
func TestMVPTParallelBuildIdentical(t *testing.T) {
	// 3000 objects with LeafCapacity 4 forces subtree recursion above and
	// below the parallel cutoff.
	ds := testutil.VectorDataset(3000, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(ds, 5, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	seq, err := New(ds, pv, Options{LeafCapacity: 4})
	if err != nil {
		t.Fatalf("sequential New: %v", err)
	}
	for _, workers := range []int{-1, 4} {
		par, err := New(ds, pv, Options{LeafCapacity: 4, Workers: workers})
		if err != nil {
			t.Fatalf("parallel New(workers=%d): %v", workers, err)
		}
		if err := sameTree(seq.root, par.root); err != nil {
			t.Fatalf("workers=%d tree differs from sequential: %v", workers, err)
		}
	}
	par, err := New(ds, pv, Options{LeafCapacity: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		testutil.CheckRange(t, par, ds, q, 20)
		testutil.CheckKNN(t, par, ds, q, 9)
	}
}

func TestMVPTErrors(t *testing.T) {
	ds := testutil.VectorDataset(30, 2, 10, core.L2{}, 1)
	if _, err := New(ds, nil, Options{}); err == nil {
		t.Fatal("no pivots must fail")
	}
	idx, err := New(ds, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(999); err == nil {
		t.Fatal("Delete(999) should fail")
	}
}
