package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// Writer accumulates a snapshot payload. All integers are little-endian;
// variable-length fields carry a u32 length (or count) prefix. Objects
// use the store object codec — the same bytes the RAF stores.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends 1 or 0 as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Blob appends a u32 length followed by the raw bytes.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a u32 length followed by the string bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Object appends one object in the store codec (self-delimiting).
func (w *Writer) Object(o core.Object) { w.buf = store.EncodeObject(w.buf, o) }

// Attrs appends one attribute bag in the store attrs codec
// (self-delimiting; a nil bag encodes as zero fields).
func (w *Writer) Attrs(a core.Attrs) { w.buf = store.EncodeAttrs(w.buf, a) }

// Objects appends a u32 count followed by each object.
func (w *Writer) Objects(os []core.Object) {
	w.U32(uint32(len(os)))
	for _, o := range os {
		w.Object(o)
	}
}

// Ints appends a u32 count followed by each value as u32 (object and
// page identifiers all fit).
func (w *Writer) Ints(xs []int) {
	w.U32(uint32(len(xs)))
	for _, x := range xs {
		w.U32(uint32(x))
	}
}

// Int32s appends a u32 count followed by each value as u32.
func (w *Writer) Int32s(xs []int32) {
	w.U32(uint32(len(xs)))
	for _, x := range xs {
		w.U32(uint32(x))
	}
}

// PageIDs appends a u32 count followed by each page id as u32.
func (w *Writer) PageIDs(xs []store.PageID) {
	w.U32(uint32(len(xs)))
	for _, x := range xs {
		w.U32(uint32(x))
	}
}

// Floats appends a u32 count followed by each value as F64.
func (w *Writer) Floats(xs []float64) {
	w.U32(uint32(len(xs)))
	for _, x := range xs {
		w.F64(x)
	}
}

// Reader decodes a payload written by Writer. It is sticky-error: the
// first malformed read poisons the reader, subsequent reads return zero
// values, and Err reports the failure. Every length is validated against
// the remaining bytes before any allocation, so corrupt input cannot
// cause panics or outsized allocations.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps a payload for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// ExpectEOF poisons the reader if unread bytes remain.
func (r *Reader) ExpectEOF() {
	if r.err == nil && r.Remaining() != 0 {
		r.fail("%d trailing bytes", r.Remaining())
	}
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("persist: malformed payload at offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte, failing unless it is 0 or 1.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.fail("bool byte %d", v)
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count reads a u32 count and validates count×minElemBytes against the
// remaining payload, so callers can allocate count elements safely.
func (r *Reader) Count(minElemBytes int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || n > r.Remaining()/minElemBytes {
		r.fail("count %d exceeds %d remaining bytes (min elem %d)", n, r.Remaining(), minElemBytes)
		return 0
	}
	return n
}

// Blob reads a u32 length and returns that many bytes (aliasing the
// input buffer).
func (r *Reader) Blob() []byte {
	n := r.Count(1)
	return r.take(n)
}

// String reads a u32 length and the string bytes.
func (r *Reader) String() string { return string(r.Blob()) }

// Object reads one store-codec object.
func (r *Reader) Object() core.Object {
	if r.err != nil {
		return nil
	}
	o, n, err := store.DecodeObject(r.data[r.off:])
	if err != nil {
		r.fail("object: %v", err)
		return nil
	}
	r.off += n
	return o
}

// Attrs reads one store-codec attribute bag (nil for zero fields).
func (r *Reader) Attrs() core.Attrs {
	if r.err != nil {
		return nil
	}
	a, n, err := store.DecodeAttrs(r.data[r.off:])
	if err != nil {
		r.fail("attrs: %v", err)
		return nil
	}
	r.off += n
	return a
}

// Objects reads a u32 count followed by that many objects.
func (r *Reader) Objects() []core.Object {
	n := r.Count(5) // smallest object is tag + u32 length
	if r.err != nil {
		return nil
	}
	os := make([]core.Object, n)
	for i := range os {
		os[i] = r.Object()
		if r.err != nil {
			return nil
		}
	}
	return os
}

// Ints reads a u32 count followed by that many u32 values as ints.
func (r *Reader) Ints() []int {
	n := r.Count(4)
	if r.err != nil {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(r.U32())
	}
	return xs
}

// Int32s reads a u32 count followed by that many u32 values as int32s.
func (r *Reader) Int32s() []int32 {
	n := r.Count(4)
	if r.err != nil {
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(r.U32())
	}
	return xs
}

// PageIDs reads a u32 count followed by that many page ids.
func (r *Reader) PageIDs() []store.PageID {
	n := r.Count(4)
	if r.err != nil {
		return nil
	}
	xs := make([]store.PageID, n)
	for i := range xs {
		xs[i] = store.PageID(r.U32())
	}
	return xs
}

// Floats reads a u32 count followed by that many float64 values.
func (r *Reader) Floats() []float64 {
	n := r.Count(8)
	if r.err != nil {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.F64()
	}
	return xs
}
