package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/store"
)

// Snapshot container format, version 2 (normative spec in
// docs/PERSISTENCE.md):
//
//	file    := header dataset-section index-section
//	header  := magic "MXSNAP" | version u16 | flags u8 | kind str |
//	           metric str | epoch u64
//	str     := length u32 | bytes
//	section := length u64 | crc32 u32 (IEEE, over payload) | payload
//
// The dataset payload encodes every id slot (nil slots included, so
// identifiers survive restore); the index payload is family-specific and
// dispatched through the kind registry.
//
// Version 2 extends the dataset slot encoding: the per-slot presence
// byte became a flags byte (bit 0 = object present, bit 1 = attribute
// bag follows the object). Version-1 images only ever wrote 0 or 1, so
// the version-2 decoder reads both formats; version-1 readers cannot
// load attr-carrying images, hence the version bump.
const (
	snapshotMagic      = "MXSNAP"
	snapshotVersion    = 2
	snapshotVersionMin = 1
	snapshotClean      = 1 << 0

	// Dataset slot flags (version 2; version 1 wrote 0 or 1).
	slotObject = 1 << 0
	slotAttrs  = 1 << 1
)

// maxSectionBytes caps a section length before allocation; a corrupt
// header cannot demand more memory than the file actually holds, and
// this guards the int64→int conversions besides.
const maxSectionBytes = int64(1) << 40

// ErrUnsupported reports an index kind with no snapshot support (wrap it
// via Unsupported; test with errors.Is).
var ErrUnsupported = errors.New("kind does not support snapshots")

// Unsupported returns an ErrUnsupported for the given index kind.
func Unsupported(kind string) error {
	return fmt.Errorf("persist: index %s: %w", kind, ErrUnsupported)
}

// Snapshotter is implemented by every index structure that can serialize
// itself into a snapshot's index section. The encoded payload must be
// decodable by the loader the index's package registered for its Name().
type Snapshotter interface {
	EncodeSnapshot(w *Writer) error
}

// Loader decodes one index payload over the restored dataset, returning
// the index and, for disk-resident structures, the reopened pager (nil
// for in-memory families).
type Loader func(ds *core.Dataset, r *Reader) (core.Index, *store.Pager, error)

var (
	regMu   sync.RWMutex
	loaders = map[string]Loader{}
	metrics = map[string]core.Metric{
		core.L1{}.Name():      core.L1{},
		core.L2{}.Name():      core.L2{},
		core.LInf{}.Name():    core.LInf{},
		core.IntLInf{}.Name(): core.IntLInf{},
		core.Edit{}.Name():    core.Edit{},
	}
)

// Register binds an index kind (its Name() string) to its payload
// loader. Index packages call it from init, so importing a package that
// can build a kind also teaches persist to load it.
func Register(kind string, l Loader) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := loaders[kind]; dup {
		panic(fmt.Sprintf("persist: duplicate loader for kind %q", kind))
	}
	loaders[kind] = l
}

// RegisterMetric teaches the loader a metric by name, for callers using
// metrics beyond the built-in L1/L2/Linf/IntLinf/edit set.
func RegisterMetric(m core.Metric) {
	regMu.Lock()
	defer regMu.Unlock()
	metrics[m.Name()] = m
}

// Kinds lists the registered index kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ks := make([]string, 0, len(loaders))
	for k := range loaders {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func loaderFor(kind string) (Loader, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	l, ok := loaders[kind]
	return l, ok
}

func metricByName(name string) (core.Metric, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := metrics[name]
	return m, ok
}

// Snapshot is a decoded snapshot: the restored dataset and index, the
// kind and epoch they were saved at, and the reopened pager for
// disk-resident kinds (nil otherwise — callers use it to re-enable the
// buffer cache, which restores disabled).
type Snapshot struct {
	Kind    string
	Metric  string
	Epoch   uint64
	Dataset *core.Dataset
	Index   core.Index
	Pager   *store.Pager
}

// Unwrapper is implemented by decorating wrappers (e.g. the public
// DiskIndex) so Encode can reach the underlying Snapshotter.
type Unwrapper interface {
	Unwrap() core.Index
}

// Encode serializes the dataset, the index and the epoch they are
// consistent at into a version-1 snapshot image. The index must
// implement Snapshotter (directly or through an Unwrapper chain) and
// have a registered loader, else ErrUnsupported.
func Encode(ds *core.Dataset, idx core.Index, epoch uint64) ([]byte, error) {
	kind := idx.Name()
	snap, ok := idx.(Snapshotter)
	for !ok {
		u, isWrap := idx.(Unwrapper)
		if !isWrap {
			return nil, Unsupported(kind)
		}
		idx = u.Unwrap()
		snap, ok = idx.(Snapshotter)
	}
	if _, ok := loaderFor(kind); !ok {
		return nil, Unsupported(kind)
	}

	h := NewWriter()
	h.buf = append(h.buf, snapshotMagic...)
	h.U16(snapshotVersion)
	h.U8(snapshotClean)
	h.String(kind)
	h.String(ds.Space().Metric().Name())
	h.U64(epoch)

	dw := NewWriter()
	encodeDataset(dw, ds)

	iw := NewWriter()
	if err := snap.EncodeSnapshot(iw); err != nil {
		return nil, fmt.Errorf("persist: encode %s: %w", kind, err)
	}

	out := h.Bytes()
	out = appendSection(out, dw.Bytes())
	out = appendSection(out, iw.Bytes())
	return out, nil
}

func appendSection(dst, payload []byte) []byte {
	w := &Writer{buf: dst}
	w.U64(uint64(len(payload)))
	w.U32(crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	return w.buf
}

func readSection(r *Reader) []byte {
	n := r.U64()
	crc := r.U32()
	if r.err != nil {
		return nil
	}
	if n > uint64(maxSectionBytes) || int(n) > r.Remaining() {
		r.fail("section of %d bytes exceeds %d remaining", n, r.Remaining())
		return nil
	}
	payload := r.take(int(n))
	if r.err != nil {
		return nil
	}
	if crc32.ChecksumIEEE(payload) != crc {
		r.fail("section checksum mismatch")
		return nil
	}
	return payload
}

// encodeDataset writes every id slot: u32 slot count, then per slot a
// flags byte followed by the object (store codec) and, when the slot
// carries one, its attribute bag. Encoding empty slots keeps
// identifiers stable across restore.
func encodeDataset(w *Writer, ds *core.Dataset) {
	objs := ds.Objects()
	w.U32(uint32(len(objs)))
	for id, o := range objs {
		if o == nil {
			w.U8(0)
			continue
		}
		flags := uint8(slotObject)
		a := ds.Attrs(id)
		if len(a) > 0 {
			flags |= slotAttrs
		}
		w.U8(flags)
		w.Object(o)
		if flags&slotAttrs != 0 {
			w.Attrs(a)
		}
	}
}

func decodeDataset(payload []byte, metric core.Metric) (*core.Dataset, error) {
	r := NewReader(payload)
	n := r.Count(1)
	if r.err != nil {
		return nil, r.err
	}
	objs := make([]core.Object, n)
	attrs := make(map[int]core.Attrs)
	for i := range objs {
		flags := r.U8()
		if r.err == nil && (flags&slotObject == 0 && flags != 0 || flags&^uint8(slotObject|slotAttrs) != 0) {
			return nil, fmt.Errorf("persist: dataset slot %d has invalid flags %#x", i, flags)
		}
		if flags&slotObject != 0 {
			objs[i] = r.Object()
		}
		if flags&slotAttrs != 0 {
			attrs[i] = r.Attrs()
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	r.ExpectEOF()
	if r.err != nil {
		return nil, r.err
	}
	ds := core.NewDataset(core.NewSpace(metric), objs)
	for id, a := range attrs {
		if err := ds.SetAttrs(id, a); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Decode parses a snapshot image: header, checksummed sections, dataset,
// and the index payload via the registered loader. Corrupt input of any
// shape returns an error; Decode never panics.
func Decode(data []byte) (*Snapshot, error) {
	r := NewReader(data)
	magic := r.take(len(snapshotMagic))
	if r.err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("persist: not a snapshot (bad magic)")
	}
	ver := r.U16()
	if r.err == nil && (ver < snapshotVersionMin || ver > snapshotVersion) {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d (want %d..%d)", ver, snapshotVersionMin, snapshotVersion)
	}
	flags := r.U8()
	if r.err == nil && flags&snapshotClean == 0 {
		return nil, fmt.Errorf("persist: snapshot marked dirty; refusing to load")
	}
	kind := r.String()
	metricName := r.String()
	epoch := r.U64()
	dsPayload := readSection(r)
	idxPayload := readSection(r)
	if r.err == nil {
		r.ExpectEOF()
	}
	if r.err != nil {
		return nil, r.err
	}

	metric, ok := metricByName(metricName)
	if !ok {
		return nil, fmt.Errorf("persist: unknown metric %q (RegisterMetric it before loading)", metricName)
	}
	loader, ok := loaderFor(kind)
	if !ok {
		return nil, Unsupported(kind)
	}
	ds, err := decodeDataset(dsPayload, metric)
	if err != nil {
		return nil, fmt.Errorf("persist: dataset section: %w", err)
	}
	ir := NewReader(idxPayload)
	idx, pager, err := loader(ds, ir)
	if err != nil {
		return nil, fmt.Errorf("persist: %s payload: %w", kind, err)
	}
	if ir.Err() == nil {
		ir.ExpectEOF()
	}
	if err := ir.Err(); err != nil {
		return nil, fmt.Errorf("persist: %s payload: %w", kind, err)
	}
	return &Snapshot{Kind: kind, Metric: metricName, Epoch: epoch, Dataset: ds, Index: idx, Pager: pager}, nil
}

// SaveFile writes data to path atomically: a temp file in the same
// directory, fsynced, then renamed over the target. A crash mid-save
// leaves either the old snapshot or the new one, never a torn file.
func SaveFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadFile reads and decodes a snapshot file.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// SaveLive snapshots a Live index to path: dataset, index and epoch are
// captured in one read section, so the image is a committed prefix of
// the write history even while updates race the save.
func SaveLive(path string, l *epoch.Live) error {
	var data []byte
	err := l.Snapshot(func(ds *core.Dataset, idx core.Index, ep uint64) error {
		var err error
		data, err = Encode(ds, idx, ep)
		return err
	})
	if err != nil {
		return err
	}
	return SaveFile(path, data)
}

// OpenLive restores a Live index from a snapshot file, positioned at the
// epoch the snapshot was taken. Callers typically follow with a WAL
// replay (Replay) and attach the WAL as the journal.
func OpenLive(path string) (*epoch.Live, *Snapshot, error) {
	snap, err := LoadFile(path)
	if err != nil {
		return nil, nil, err
	}
	l := epoch.NewLive(snap.Dataset, snap.Index)
	l.SetEpoch(snap.Epoch)
	return l, snap, nil
}

// Replay applies the WAL records committed after the Live's current
// epoch (those at or before it are already in the snapshot), restoring
// each at its exact epoch. It returns the number applied.
func Replay(l *epoch.Live, recs []Record) (int, error) {
	applied := 0
	for _, rec := range recs {
		if rec.Epoch <= l.Epoch() {
			continue
		}
		if err := l.Apply(rec.Op, rec.Epoch, rec.ID, rec.Obj, rec.Attrs); err != nil {
			return applied, fmt.Errorf("persist: replay of op %d at epoch %d: %w", rec.Op, rec.Epoch, err)
		}
		applied++
	}
	return applied, nil
}
