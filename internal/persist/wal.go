package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
)

// WAL file format, version 1 (normative spec in docs/PERSISTENCE.md):
//
//	file    := magic "MXWAL1" | version u16 | record*
//	record  := length u32 | crc32 u32 (IEEE, over payload) | payload
//	payload := op u8 | epoch u64 | id u64 | object? (store codec,
//	           present iff op is OpAdd or OpInsert) | attrs?
//	           (store attrs codec, present iff bytes remain)
//
// The trailing attrs bag is a compatible extension: records written
// before attributes existed simply end after the object, and decode
// with a nil bag. An attr-carrying op (OpAdd, OpInsert, OpSetAttrs)
// whose bag is empty omits the bag, so such records stay byte-identical
// to the pre-attrs encoding.
//
// Appends are sequential; a crash can only tear the tail. On open the
// file is scanned front to back and the first record that is short,
// oversized, or checksum-broken ends the valid prefix — everything
// before it is replayed, everything from it on is truncated away.
const (
	walMagic   = "MXWAL1"
	walVersion = 1
	walHeader  = len(walMagic) + 2
	// maxWALRecord bounds one record's payload; larger lengths are torn
	// tails or corruption by construction.
	maxWALRecord = 1 << 28
)

// Record is one decoded WAL entry: a committed Live write and the epoch
// it committed at.
type Record struct {
	Op    epoch.Op
	Epoch uint64
	ID    int
	Obj   core.Object
	Attrs core.Attrs
}

// SyncMode selects the WAL's fsync policy — the durability/latency
// trade-off. See docs/PERSISTENCE.md.
type SyncMode uint8

const (
	// SyncAlways fsyncs after every append: no committed write is ever
	// lost, at one disk flush per update.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs in the background every walSyncInterval: a
	// crash loses at most the last interval's commits.
	SyncInterval
	// SyncOff never fsyncs explicitly: the OS flushes on its schedule.
	// A process crash loses nothing (the page cache survives); an OS
	// crash may lose recent commits.
	SyncOff
)

const walSyncInterval = 200 * time.Millisecond

// String names the mode as the -fsync flag spells it.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", uint8(m))
	}
}

// ParseSyncMode parses "always", "interval" or "off".
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync mode %q (want always, interval or off)", s)
	}
}

// WAL is the write-ahead log of a Live index. It implements
// epoch.Journal, so attaching it via Live.SetJournal makes every
// committed write durable before the commit is acknowledged (modulo the
// sync mode). WAL is safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	mode    SyncMode
	size    int64 // valid bytes (header + records)
	records int64
	dirty   bool
	stop    chan struct{}
	done    chan struct{}

	metrics atomic.Pointer[WALObs]
}

// WALObs carries the metric handles the WAL updates on its hot path.
// All fields must be non-nil. Attach with SetObs; a WAL without one
// records nothing.
type WALObs struct {
	Appends      *obs.Counter   // records appended
	AppendBytes  *obs.Counter   // framed bytes appended
	FsyncSeconds *obs.Histogram // duration of every explicit fsync
}

// SetObs attaches metric handles. Safe to call at any time, including
// while appends are in flight.
func (w *WAL) SetObs(m *WALObs) {
	w.metrics.Store(m)
}

// syncTimed runs one fsync, recording its duration when instrumented.
func (w *WAL) syncTimed() error {
	m := w.metrics.Load()
	if m == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	m.FsyncSeconds.Observe(time.Since(start).Seconds())
	return err
}

// WALStats snapshots the log's counters for /v1/stats.
type WALStats struct {
	Records int64
	Bytes   int64
	Mode    SyncMode
}

// OpenWAL opens (creating if absent) the log at path, validates it, and
// returns the valid records for replay. A torn tail — a crash mid-append
// — is detected by record framing and checksum, reported via truncated,
// and cut off so the file ends at the last valid record.
func OpenWAL(path string, mode SyncMode) (w *WAL, recs []Record, truncated bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, err
	}
	w = &WAL{path: path, f: f, mode: mode}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return nil, nil, false, err
	}
	if len(data) == 0 {
		hdr := append([]byte(walMagic), 0, 0)
		binary.LittleEndian.PutUint16(hdr[len(walMagic):], walVersion)
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close()
			return nil, nil, false, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, false, err
		}
		w.size = int64(len(hdr))
	} else {
		if len(data) < walHeader || string(data[:len(walMagic)]) != walMagic {
			_ = f.Close()
			return nil, nil, false, fmt.Errorf("persist: %s is not a WAL (bad magic)", path)
		}
		if ver := binary.LittleEndian.Uint16(data[len(walMagic):]); ver != walVersion {
			_ = f.Close()
			return nil, nil, false, fmt.Errorf("persist: unsupported WAL version %d (want %d)", ver, walVersion)
		}
		var end int64
		recs, end = scanWAL(data)
		w.records = int64(len(recs))
		w.size = end
		if end < int64(len(data)) {
			truncated = true
			if err := f.Truncate(end); err != nil {
				_ = f.Close()
				return nil, nil, false, err
			}
			if err := f.Sync(); err != nil {
				_ = f.Close()
				return nil, nil, false, err
			}
		}
	}
	if _, err := f.Seek(w.size, 0); err != nil {
		_ = f.Close()
		return nil, nil, false, err
	}
	if mode == SyncInterval {
		w.startSyncLoop()
	}
	return w, recs, truncated, nil
}

// scanWAL walks the records after the header, returning the decoded
// valid prefix and the byte offset it ends at.
func scanWAL(data []byte) ([]Record, int64) {
	var recs []Record
	off := walHeader
	for {
		if len(data)-off < 8 {
			return recs, int64(off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 17 || n > maxWALRecord || n > len(data)-off-8 {
			return recs, int64(off)
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, int64(off)
		}
		rec, ok := decodeWALRecord(payload)
		if !ok {
			return recs, int64(off)
		}
		recs = append(recs, rec)
		off += 8 + n
	}
}

func decodeWALRecord(payload []byte) (Record, bool) {
	r := NewReader(payload)
	rec := Record{
		Op:    epoch.Op(r.U8()),
		Epoch: r.U64(),
		ID:    int(r.U64()),
	}
	switch rec.Op {
	case epoch.OpAdd, epoch.OpInsert:
		rec.Obj = r.Object()
	case epoch.OpRemove, epoch.OpDelete, epoch.OpSwap, epoch.OpSetAttrs:
	default:
		return Record{}, false
	}
	if r.Remaining() > 0 {
		rec.Attrs = r.Attrs()
	}
	r.ExpectEOF()
	return rec, r.Err() == nil
}

func encodeWALRecord(rec Record) []byte {
	p := NewWriter()
	p.U8(uint8(rec.Op))
	p.U64(rec.Epoch)
	p.U64(uint64(rec.ID))
	if rec.Op == epoch.OpAdd || rec.Op == epoch.OpInsert {
		p.Object(rec.Obj)
	}
	if len(rec.Attrs) > 0 {
		p.Attrs(rec.Attrs)
	}
	payload := p.Bytes()
	f := NewWriter()
	f.U32(uint32(len(payload)))
	f.U32(crc32.ChecksumIEEE(payload))
	f.buf = append(f.buf, payload...)
	return f.Bytes()
}

// Append writes one committed update; it is the epoch.Journal hook. With
// SyncAlways the record is fsynced before returning, so the write
// section that called us cannot acknowledge a commit the disk has not
// seen.
func (w *WAL) Append(op epoch.Op, ep uint64, id int, obj core.Object, attrs core.Attrs) error {
	frame := encodeWALRecord(Record{Op: op, Epoch: ep, ID: id, Obj: obj, Attrs: attrs})
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	w.records++
	if m := w.metrics.Load(); m != nil {
		m.Appends.Inc()
		m.AppendBytes.Add(int64(len(frame)))
	}
	if w.mode == SyncAlways {
		return w.syncTimed()
	}
	w.dirty = true
	return nil
}

// TruncateThrough drops every record with epoch <= ep — called after a
// snapshot at ep lands, which makes those records redundant. The
// surviving tail is rewritten to a temp file and renamed in, so a crash
// mid-truncation leaves a valid log either way.
func (w *WAL) TruncateThrough(ep uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		return err
	}
	recs, _ := scanWAL(data)
	out := append([]byte(walMagic), 0, 0)
	binary.LittleEndian.PutUint16(out[len(walMagic):], walVersion)
	kept := int64(0)
	for _, rec := range recs {
		if rec.Epoch <= ep {
			continue
		}
		out = append(out, encodeWALRecord(rec)...)
		kept++
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(out); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close()
		return err
	}
	_ = w.f.Close()
	w.f = f
	w.size = int64(len(out))
	w.records = kept
	return nil
}

// Stats snapshots the log's size and record counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Records: w.records, Bytes: w.size, Mode: w.mode}
}

// Sync forces an fsync regardless of mode.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.dirty = false
	return w.syncTimed()
}

// Close stops the background sync (if any), fsyncs, and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.stop != nil {
		close(w.stop)
		w.stop = nil
	}
	done := w.done
	w.mu.Unlock()
	if done != nil {
		<-done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

func (w *WAL) startSyncLoop() {
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	stop, done := w.stop, w.done
	go func() {
		defer close(done)
		t := time.NewTicker(walSyncInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.mu.Lock()
				if w.dirty && w.f != nil {
					w.dirty = false
					_ = w.syncTimed()
				}
				w.mu.Unlock()
			}
		}
	}()
}

// interface check: the WAL is Live's journal.
var _ epoch.Journal = (*WAL)(nil)
