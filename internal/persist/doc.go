// Package persist makes the library's indexes durable artifacts: it
// defines the versioned on-disk snapshot format every index family
// serializes itself into, the write-ahead log (WAL) that captures
// epoch.Live's committed updates between snapshots, and the recovery
// path that restores a snapshot and replays the WAL so a restarted
// process answers exactly like the one that died — same answers, same
// epochs — without rebuilding anything.
//
// The package owns the container formats (snapshot header, section
// framing, dataset encoding, WAL record framing) and a registry mapping
// an index kind — its Name() string — to the loader that decodes its
// payload. Each index package implements the Snapshotter interface for
// its structures and registers its loader in an init function, so any
// program that can build an index can also save and load it. The
// payload encodings themselves live next to the structures they
// serialize (a persist.go file per index package); the bytes are
// specified normatively in docs/PERSISTENCE.md, which must be kept in
// lockstep with the code.
//
// All decoding is defensive: a loader fed corrupt or truncated bytes
// returns an error, never panics and never allocates proportionally to
// unvalidated lengths (fuzzed by FuzzSnapshotHeader).
package persist
