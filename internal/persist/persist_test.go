// Tests live in persist_test (not persist) so they can import the index
// packages whose init functions register the snapshot loaders — the
// reverse import (index package → persist) would cycle otherwise.
package persist_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"metricindex/internal/bkt"
	"metricindex/internal/core"
	"metricindex/internal/cpt"
	"metricindex/internal/epoch"
	"metricindex/internal/ept"
	"metricindex/internal/fqt"
	"metricindex/internal/mindex"
	"metricindex/internal/mvpt"
	"metricindex/internal/omni"
	"metricindex/internal/persist"
	"metricindex/internal/pivot"
	"metricindex/internal/pmtree"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// restoredIndex adapts a decoded snapshot to the equivalence harness:
// queries go to the restored index, and the harness's updates are
// mirrored into the restored dataset so both sides stay in lockstep
// (the harness inserts into the *original* dataset and hands us the id).
type restoredIndex struct {
	idx core.Index
	rds *core.Dataset // the snapshot's dataset copy
	ods *core.Dataset // the harness's dataset
}

func (rt *restoredIndex) RangeSearch(q core.Object, r float64) ([]int, error) {
	return rt.idx.RangeSearch(q, r)
}

func (rt *restoredIndex) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	return rt.idx.KNNSearch(q, k)
}

func (rt *restoredIndex) Insert(id int) error {
	// Both datasets started as identical full slot arrays and see the
	// same insert/delete sequence, so the assigned ids must agree.
	if got := rt.rds.Insert(rt.ods.Object(id)); got != id {
		return fmt.Errorf("restored dataset assigned id %d, want %d", got, id)
	}
	return rt.idx.Insert(id)
}

func (rt *restoredIndex) Delete(id int) error {
	if err := rt.idx.Delete(id); err != nil {
		return err
	}
	return rt.rds.Delete(id)
}

// snapshotKind describes one registered index family for the round-trip
// test: how to build it, and whether it needs a discrete metric.
type snapshotKind struct {
	kind     string
	discrete bool
	build    func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error)
}

func eptOptions(workers int) ept.Options {
	return ept.Options{L: 4, Radius: 10,
		Sel: pivot.Options{Seed: 3, SampleSize: 128}, Workers: workers}
}

var snapshotKinds = []snapshotKind{
	{"LAESA", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return table.NewLAESAParallel(ds, ed.Pivots, workers)
	}},
	{"AESA", false, func(_ testutil.EquivDataset, ds *core.Dataset, _ int) (core.Index, error) {
		return table.NewAESA(ds)
	}},
	{"FQT", true, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return fqt.New(ds, ed.Pivots, fqt.Options{MaxDistance: ed.MaxDistance, Workers: workers})
	}},
	{"FQA", true, func(ed testutil.EquivDataset, ds *core.Dataset, _ int) (core.Index, error) {
		return fqt.NewFQA(ds, ed.Pivots)
	}},
	{"BKT", true, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return bkt.New(ds, bkt.Options{MaxDistance: ed.MaxDistance, Seed: 5, Workers: workers})
	}},
	{"VPT", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return mvpt.New(ds, ed.Pivots, mvpt.Options{Arity: 2, Workers: workers})
	}},
	{"MVPT", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return mvpt.New(ds, ed.Pivots, mvpt.Options{Arity: 5, Workers: workers})
	}},
	{"EPT", false, func(_ testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return ept.New(ds, ept.Original, eptOptions(workers))
	}},
	{"EPT*", false, func(_ testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return ept.New(ds, ept.Star, eptOptions(workers))
	}},
	{"DiskEPT*", false, func(_ testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return ept.NewDisk(ds, store.NewPager(512), eptOptions(workers))
	}},
	{"CPT", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return cpt.New(ds, store.NewPager(512), ed.Pivots, cpt.Options{Workers: workers})
	}},
	{"PM-tree", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return pmtree.New(ds, store.NewPager(512), ed.Pivots, pmtree.Options{Workers: workers})
	}},
	{"SPB-tree", false, func(ed testutil.EquivDataset, ds *core.Dataset, _ int) (core.Index, error) {
		return spb.New(ds, store.NewPager(512), ed.Pivots, spb.Options{MaxDistance: ed.MaxDistance})
	}},
	{"Omni-seq", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return omni.NewSeqFile(ds, store.NewPager(512), ed.Pivots, workers)
	}},
	{"OmniB+-tree", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return omni.NewBPlus(ds, store.NewPager(512), ed.Pivots, workers)
	}},
	{"OmniR-tree", false, func(ed testutil.EquivDataset, ds *core.Dataset, workers int) (core.Index, error) {
		return omni.NewRTree(ds, store.NewPager(512), ed.Pivots, omni.Options{MaxDistance: ed.MaxDistance, Workers: workers})
	}},
}

// TestSnapshotRoundTripEquivalence proves, for every registered index
// family, that an Encode→Decode round trip preserves answers and leaves
// the restored structure updatable. It reuses the shared metamorphic
// harness: the "parallel" build is replaced by the round-tripped one, so
// property (a) becomes "the restored index answers every MRQ and MkNNQ
// identically to a freshly built one", (b) checks both against a linear
// scan, and (c) drives insert-then-delete round trips through the
// restored structure.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	for _, sk := range snapshotKinds {
		t.Run(sk.kind, func(t *testing.T) {
			for _, ed := range testutil.EquivDatasets(sk.discrete, 250, 7) {
				ed := ed
				build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
					idx, err := sk.build(ed, ds, workers)
					if err != nil || workers == 1 {
						return idx, err
					}
					data, err := persist.Encode(ds, idx, 7)
					if err != nil {
						return nil, fmt.Errorf("Encode: %w", err)
					}
					snap, err := persist.Decode(data)
					if err != nil {
						return nil, fmt.Errorf("Decode: %w", err)
					}
					if snap.Kind != sk.kind || snap.Epoch != 7 {
						return nil, fmt.Errorf("decoded kind %q epoch %d, want %q epoch 7", snap.Kind, snap.Epoch, sk.kind)
					}
					if snap.Dataset.Len() != ds.Len() || snap.Dataset.Count() != ds.Count() {
						return nil, fmt.Errorf("decoded dataset %d/%d slots, want %d/%d",
							snap.Dataset.Count(), snap.Dataset.Len(), ds.Count(), ds.Len())
					}
					return &restoredIndex{idx: snap.Index, rds: snap.Dataset, ods: ds}, nil
				}
				testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
			}
		})
	}
}

// TestSnapshotKindsRegistry checks every family the round-trip test
// covers is in the registry (a missing init import would silently skip).
func TestSnapshotKindsRegistry(t *testing.T) {
	reg := map[string]bool{}
	for _, k := range persist.Kinds() {
		reg[k] = true
	}
	for _, sk := range snapshotKinds {
		if !reg[sk.kind] {
			t.Errorf("kind %q has no registered loader", sk.kind)
		}
	}
}

// TestSaveLoadFile exercises the file layer: atomic save, load, and the
// reopened pager of a disk-resident kind.
func TestSaveLoadFile(t *testing.T) {
	ds := testutil.VectorDataset(120, 4, 100, core.L2{}, 11)
	pv := testutil.SpreadPivots(ds, 4)
	idx, err := spb.New(ds, store.NewPager(512), pv, spb.Options{MaxDistance: 200})
	if err != nil {
		t.Fatal(err)
	}
	data, err := persist.Encode(ds, idx, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.mxs")
	if err := persist.SaveFile(path, data); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "SPB-tree" || snap.Metric != "L2" || snap.Epoch != 42 {
		t.Fatalf("got kind %q metric %q epoch %d", snap.Kind, snap.Metric, snap.Epoch)
	}
	if snap.Pager == nil {
		t.Fatal("disk-resident kind restored without a pager")
	}
	q := testutil.RandomQuery(ds, 1)
	for _, r := range testutil.Radii(ds, q) {
		want, err := idx.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Index.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("MRQ(r=%v) after reload:\n got %v\nwant %v", r, got, want)
		}
	}
}

// TestSnapshotUnsupported: M-index keeps its cluster tree in memory and
// rebuilds it from the dataset — it deliberately has no snapshot codec,
// and Encode must say so with ErrUnsupported rather than something vague.
func TestSnapshotUnsupported(t *testing.T) {
	ds := testutil.VectorDataset(80, 4, 100, core.L2{}, 11)
	pv := testutil.SpreadPivots(ds, 4)
	for _, star := range []bool{false, true} {
		idx, err := mindex.New(ds, store.NewPager(512), pv, mindex.Options{Star: star, MaxDistance: 200})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := persist.Encode(ds, idx, 0); !errors.Is(err, persist.ErrUnsupported) {
			t.Fatalf("Encode(%s) = %v, want ErrUnsupported", idx.Name(), err)
		}
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid snapshot (in
// strides) and requires Decode to fail cleanly — never to panic, and
// never to return a success for a damaged image outside the payload
// bytes that the checksums provably cover.
func TestDecodeRejectsCorruption(t *testing.T) {
	ds := testutil.VectorDataset(40, 3, 100, core.L2{}, 5)
	idx, err := table.NewLAESA(ds, testutil.SpreadPivots(ds, 3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := persist.Encode(ds, idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Decode(data); err != nil {
		t.Fatalf("pristine image must decode: %v", err)
	}
	// Truncations at every prefix length must fail, not panic.
	for n := 0; n < len(data); n++ {
		if _, err := persist.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Single-byte corruption in the sections is caught by the CRCs and in
	// the header by field validation — except the epoch tag, which is
	// header metadata outside any checksum: a flip there changes the
	// reported epoch but the image still decodes (the layout constants
	// mirror the spec in docs/PERSISTENCE.md).
	epochOff := len("MXSNAP") + 2 + 1 + 4 + len("LAESA") + 4 + len("L2")
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x41
		snap, err := persist.Decode(mut)
		if off >= epochOff && off < epochOff+8 {
			if err != nil || snap.Epoch == 1 {
				t.Fatalf("epoch-field flip at offset %d: err=%v epoch=%v", off, err, snap)
			}
			continue
		}
		if err == nil {
			t.Fatalf("flip at offset %d decoded successfully", off)
		}
	}
}

// buildLive makes a small durable Live front for the WAL tests.
func buildLive(t *testing.T, n int) (*epoch.Live, *core.Dataset) {
	t.Helper()
	ds := testutil.VectorDataset(n, 4, 100, core.L2{}, 3)
	idx, err := table.NewLAESA(ds, testutil.SpreadPivots(ds, 3))
	if err != nil {
		t.Fatal(err)
	}
	return epoch.NewLive(ds, idx), ds
}

// checkSameAnswers requires two Lives to answer a probe set identically.
func checkSameAnswers(t *testing.T, want, got *epoch.Live, ds *core.Dataset) {
	t.Helper()
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			a, err := want.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("MRQ(r=%v) diverged after recovery:\n want %v\n got  %v", r, a, b)
			}
		}
		a, err := want.KNNSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.KNNSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("MkNNQ(k=5) diverged after recovery:\n want %v\n got  %v", a, b)
		}
	}
}

// TestCrashRecoveryExactEpochs is the end-to-end durability test: a
// snapshot at epoch 0, a run of journaled writes, a simulated crash
// (nothing flushed beyond what Append guaranteed), then
// OpenLive + OpenWAL + Replay. The recovered front must sit at the exact
// pre-crash epoch, hold the exact pre-crash dataset, and answer queries
// identically; the WAL records must carry the exact commit epochs.
func TestCrashRecoveryExactEpochs(t *testing.T) {
	live, ds := buildLive(t, 100)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snapshot.mxs")
	walPath := filepath.Join(dir, "wal.mxl")

	if err := persist.SaveLive(snapPath, live); err != nil {
		t.Fatal(err)
	}
	wal, recs, torn, err := persist.OpenWAL(walPath, persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh WAL: %d records, torn=%v", len(recs), torn)
	}
	live.SetJournal(wal)

	// A mixed write history: adds, a remove, and another add, each
	// committing at the next epoch.
	var wantEpochs []uint64
	obj := func(seed int64) core.Object { return testutil.RandomQuery(ds, seed) }
	id1, e, err := live.AddAt(obj(1000))
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs = append(wantEpochs, e)
	_, e, err = live.AddAt(obj(1001))
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs = append(wantEpochs, e)
	if e, err = live.RemoveAt(id1); err != nil {
		t.Fatal(err)
	}
	wantEpochs = append(wantEpochs, e)
	_, e, err = live.AddAt(obj(1002))
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs = append(wantEpochs, e)
	for i, want := range wantEpochs {
		if want != uint64(i+1) {
			t.Fatalf("write %d committed at epoch %d, want %d", i, want, i+1)
		}
	}
	// Crash: abandon the Live without closing anything gracefully. The
	// WAL file already holds every committed record (SyncAlways).

	live2, snap, err := persist.OpenLive(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 0 || live2.Epoch() != 0 {
		t.Fatalf("snapshot restored at epoch %d/%d, want 0", snap.Epoch, live2.Epoch())
	}
	wal2, recs, torn, err := persist.OpenWAL(walPath, persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if torn {
		t.Fatal("clean WAL reported a torn tail")
	}
	if len(recs) != len(wantEpochs) {
		t.Fatalf("WAL holds %d records, want %d", len(recs), len(wantEpochs))
	}
	for i, rec := range recs {
		if rec.Epoch != wantEpochs[i] {
			t.Fatalf("record %d at epoch %d, want %d", i, rec.Epoch, wantEpochs[i])
		}
	}
	applied, err := persist.Replay(live2, recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(recs) {
		t.Fatalf("replayed %d records, want %d", applied, len(recs))
	}
	if live2.Epoch() != live.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", live2.Epoch(), live.Epoch())
	}
	checkSameAnswers(t, live, live2, ds)

	// Replay must be idempotent: records at or before the current epoch
	// are part of the restored state already and are skipped.
	if applied, err = persist.Replay(live2, recs); err != nil || applied != 0 {
		t.Fatalf("second replay applied %d records (err %v), want 0", applied, err)
	}
}

// TestReplaySkipsSnapshottedPrefix snapshots mid-history and verifies
// replay applies only the suffix committed after the snapshot epoch.
func TestReplaySkipsSnapshottedPrefix(t *testing.T) {
	live, ds := buildLive(t, 80)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snapshot.mxs")
	walPath := filepath.Join(dir, "wal.mxl")
	wal, _, _, err := persist.OpenWAL(walPath, persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	live.SetJournal(wal)

	for i := int64(0); i < 3; i++ {
		if _, err := live.Add(testutil.RandomQuery(ds, 2000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot at epoch 3; two more writes follow it.
	if err := persist.SaveLive(snapPath, live); err != nil {
		t.Fatal(err)
	}
	for i := int64(3); i < 5; i++ {
		if _, err := live.Add(testutil.RandomQuery(ds, 2000+i)); err != nil {
			t.Fatal(err)
		}
	}

	live2, snap, err := persist.OpenLive(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 3 {
		t.Fatalf("snapshot at epoch %d, want 3", snap.Epoch)
	}
	wal2, recs, _, err := persist.OpenWAL(walPath, persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if len(recs) != 5 {
		t.Fatalf("WAL holds %d records, want 5", len(recs))
	}
	applied, err := persist.Replay(live2, recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("replayed %d records over the epoch-3 snapshot, want 2", applied)
	}
	if live2.Epoch() != 5 {
		t.Fatalf("recovered epoch %d, want 5", live2.Epoch())
	}
	checkSameAnswers(t, live, live2, ds)
}

// TestWALTornTail crashes the log mid-append in three ways — a truncated
// frame, a corrupted checksum, and a garbage length — and requires open
// to keep the valid prefix, report the tear, and truncate the file so
// the next open is clean.
func TestWALTornTail(t *testing.T) {
	tears := []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"truncated-frame", func(data []byte) []byte {
			return data[:len(data)-5] // half the last record
		}},
		{"corrupt-payload", func(data []byte) []byte {
			mut := append([]byte(nil), data...)
			mut[len(mut)-1] ^= 0xFF
			return mut
		}},
		{"garbage-length", func(data []byte) []byte {
			return append(data, 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4)
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			live, ds := buildLive(t, 60)
			walPath := filepath.Join(t.TempDir(), "wal.mxl")
			wal, _, _, err := persist.OpenWAL(walPath, persist.SyncAlways)
			if err != nil {
				t.Fatal(err)
			}
			live.SetJournal(wal)
			for i := int64(0); i < 4; i++ {
				if _, err := live.Add(testutil.RandomQuery(ds, 3000+i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := wal.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, tc.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			wal2, recs, torn, err := persist.OpenWAL(walPath, persist.SyncOff)
			if err != nil {
				t.Fatal(err)
			}
			if !torn {
				t.Fatal("torn tail not reported")
			}
			wantRecs := 4
			if tc.name != "garbage-length" {
				wantRecs = 3 // the damaged record itself is dropped
			}
			if len(recs) != wantRecs {
				t.Fatalf("kept %d records, want %d", len(recs), wantRecs)
			}
			for i, rec := range recs {
				if rec.Epoch != uint64(i+1) {
					t.Fatalf("record %d at epoch %d, want %d", i, rec.Epoch, i+1)
				}
			}
			if err := wal2.Close(); err != nil {
				t.Fatal(err)
			}
			// The tear was truncated away: the next open is clean and
			// sees the same records.
			wal3, recs2, torn2, err := persist.OpenWAL(walPath, persist.SyncOff)
			if err != nil {
				t.Fatal(err)
			}
			defer wal3.Close()
			if torn2 || len(recs2) != wantRecs {
				t.Fatalf("after repair: torn=%v records=%d, want clean %d", torn2, len(recs2), wantRecs)
			}
		})
	}
}

// TestWALTruncateThrough verifies snapshot-driven log compaction: only
// records after the snapshot epoch survive, across a reopen too.
func TestWALTruncateThrough(t *testing.T) {
	live, ds := buildLive(t, 60)
	walPath := filepath.Join(t.TempDir(), "wal.mxl")
	wal, _, _, err := persist.OpenWAL(walPath, persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	live.SetJournal(wal)
	for i := int64(0); i < 5; i++ {
		if _, err := live.Add(testutil.RandomQuery(ds, 4000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	if st := wal.Stats(); st.Records != 2 {
		t.Fatalf("after TruncateThrough(3): %d records, want 2", st.Records)
	}
	// The truncated log must stay appendable…
	if _, err := live.Add(testutil.RandomQuery(ds, 4005)); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// …and a reopen sees exactly the surviving suffix.
	wal2, recs, torn, err := persist.OpenWAL(walPath, persist.SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if torn {
		t.Fatal("compacted WAL reported a torn tail")
	}
	want := []uint64{4, 5, 6}
	if len(recs) != len(want) {
		t.Fatalf("reopened with %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Epoch != want[i] {
			t.Fatalf("record %d at epoch %d, want %d", i, rec.Epoch, want[i])
		}
	}
}
