package persist_test

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// FuzzSnapshotHeader throws arbitrary bytes at the snapshot decoder —
// including the registered per-family payload loaders behind it — and
// requires an error, never a panic, never a runaway allocation. Seeded
// with valid images (in-memory and disk-resident kinds) so the fuzzer
// starts past the magic/version checks and mutates real section and
// payload bytes.
func FuzzSnapshotHeader(f *testing.F) {
	ds := testutil.VectorDataset(30, 3, 100, core.L2{}, 5)
	pv := testutil.SpreadPivots(ds, 3)
	laesa, err := table.NewLAESA(ds, pv)
	if err != nil {
		f.Fatal(err)
	}
	if data, err := persist.Encode(ds, laesa, 1); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	} else {
		f.Fatal(err)
	}
	if idx, err := spb.New(ds, store.NewPager(512), pv, spb.Options{MaxDistance: 200}); err == nil {
		if data, err := persist.Encode(ds, idx, 2); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("MXSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := persist.Decode(data)
		if err == nil && snap == nil {
			t.Fatal("Decode returned neither snapshot nor error")
		}
	})
}
