package mtree

import (
	"bytes"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// samePageImage requires the two pagers to hold byte-identical volumes
// and the trees to hang off the same root page.
func samePageImage(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.root != b.root {
		t.Fatalf("roots differ: page %d vs %d", a.root, b.root)
	}
	if a.pager.Pages() != b.pager.Pages() {
		t.Fatalf("page counts differ: %d vs %d", a.pager.Pages(), b.pager.Pages())
	}
	for i := 0; i < a.pager.Pages(); i++ {
		pa, err := a.pager.Read(store.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.pager.Read(store.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatalf("page %d differs between the two builds", i)
		}
	}
	if len(a.leafOf) != len(b.leafOf) {
		t.Fatalf("directory sizes differ: %d vs %d", len(a.leafOf), len(b.leafOf))
	}
	for id, pid := range a.leafOf {
		if b.leafOf[id] != pid {
			t.Fatalf("directory disagrees on object %d: page %d vs %d", id, pid, b.leafOf[id])
		}
	}
}

// TestBulkPageImageIdentical is the bulk load's core determinism proof:
// for both the plain M-tree and the PM-tree, every worker count produces
// a byte-identical page image (sampling and assignment are deterministic,
// partition builds are isolated in staging pagers, and only the
// sequential merge writes through the shared pager).
func TestBulkPageImageIdentical(t *testing.T) {
	for _, numPivots := range []int{0, 4} {
		ds := testutil.VectorDataset(900, 4, 100, core.L2{}, 7)
		pv := testutil.SpreadPivots(ds, 4)
		opts := Options{NumPivots: numPivots, Seed: 7}
		seq, err := Bulk(ds, store.NewPager(1024), pv, opts, BulkOptions{Workers: 1})
		if err != nil {
			t.Fatalf("l=%d sequential Bulk: %v", numPivots, err)
		}
		for _, workers := range []int{-1, 2, 4} {
			par, err := Bulk(ds, store.NewPager(1024), pv, opts, BulkOptions{Workers: workers})
			if err != nil {
				t.Fatalf("l=%d Bulk(workers=%d): %v", numPivots, workers, err)
			}
			samePageImage(t, seq, par)
		}
	}
}

// TestBulkInvariants checks the bulk-loaded tree satisfies every
// structural invariant Validate knows — covering radii, parent
// distances, ring containment, directory — before and after updates.
func TestBulkInvariants(t *testing.T) {
	for _, numPivots := range []int{0, 4} {
		ds := testutil.VectorDataset(700, 4, 100, core.L2{}, 11)
		pv := testutil.SpreadPivots(ds, 4)
		tr, err := Bulk(ds, store.NewPager(1024), pv, Options{NumPivots: numPivots, Seed: 7}, BulkOptions{Workers: 4})
		if err != nil {
			t.Fatalf("Bulk: %v", err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("l=%d after bulk load: %v", numPivots, err)
		}
		if tr.Len() != ds.Count() {
			t.Fatalf("Len = %d, want %d", tr.Len(), ds.Count())
		}
		for id := 0; id < 200; id += 2 {
			if err := tr.Delete(id); err != nil {
				t.Fatal(err)
			}
			if err := ds.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			id := ds.Insert(core.Vector{float64(i), 10, 20, 30})
			if err := tr.Insert(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("l=%d after updates on bulk tree: %v", numPivots, err)
		}
	}
}

// TestBulkEquivalence runs the shared metamorphic harness over the
// bulk-loaded plain M-tree (vectors and words).
func TestBulkEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 400, 7) {
		build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
			tr, err := Bulk(ds, store.NewPager(1024), nil, Options{Seed: 7}, BulkOptions{Workers: workers})
			if err != nil {
				return nil, err
			}
			return searcherAdapter{tr}, nil
		}
		testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
	}
}

// TestBulkSmallFallsBackToInsertion: below the partitioning floor the
// bulk load must degrade to the plain insertion build, page for page.
func TestBulkSmallFallsBackToInsertion(t *testing.T) {
	ds := testutil.VectorDataset(50, 4, 100, core.L2{}, 13)
	ins, _ := buildTree(t, ds, 0, 512)
	blk, err := Bulk(ds, store.NewPager(512), nil, Options{Seed: 7}, BulkOptions{Workers: 4})
	if err != nil {
		t.Fatalf("Bulk: %v", err)
	}
	samePageImage(t, ins, blk)
}

// TestBulkDuplicateObjects: heavy duplication collapses most partitions
// to empty (ties assign to the lowest sample); the tree must still build,
// validate, and answer correctly.
func TestBulkDuplicateObjects(t *testing.T) {
	objs := make([]core.Object, 400)
	for i := range objs {
		objs[i] = core.Vector{float64(i % 2), 1}
	}
	ds := core.NewDataset(core.NewSpace(core.L2{}), objs)
	tr, err := Bulk(ds, store.NewPager(512), nil, Options{Seed: 7}, BulkOptions{Workers: 4})
	if err != nil {
		t.Fatalf("Bulk: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := searcherAdapter{tr}
	q := core.Vector{0, 1}
	testutil.CheckRange(t, s, ds, q, 0)
	testutil.CheckRange(t, s, ds, q, 0.5)
	testutil.CheckKNN(t, s, ds, q, 80)
}

// TestBulkConcurrencyBounded asserts the bulk load's total concurrency
// stays at Workers across assignment and the partition builds.
func TestBulkConcurrencyBounded(t *testing.T) {
	const workers = 3
	ds, probe := testutil.ProbeDataset(testutil.VectorDataset(1200, 4, 100, core.L2{}, 7), 0)
	if _, err := Bulk(ds, store.NewPager(1024), nil, Options{Seed: 7}, BulkOptions{Workers: workers}); err != nil {
		t.Fatalf("Bulk: %v", err)
	}
	if got := probe.Max(); got > workers {
		t.Fatalf("observed %d concurrent distance computations, Workers=%d", got, workers)
	}
}
