package mtree

import (
	"container/heap"
	"math"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// ringsPrune applies Lemma 1 to a ring set (PM-tree): true when the rings
// cannot intersect the search region.
func ringsPrune(rings, qd []float64, r float64) bool {
	for i := range qd {
		if rings[2*i] > qd[i]+r || rings[2*i+1] < qd[i]-r {
			return true
		}
	}
	return false
}

// ringsMinDist is the L∞ lower bound from the query's pivot image to the
// rings, for best-first ordering.
func ringsMinDist(rings, qd []float64) float64 {
	var m float64
	for i := range qd {
		var d float64
		switch {
		case qd[i] < rings[2*i]:
			d = rings[2*i] - qd[i]
		case qd[i] > rings[2*i+1]:
			d = qd[i] - rings[2*i+1]
		}
		if d > m {
			m = d
		}
	}
	return m
}

// pdistPrune applies Lemma 1 to a leaf entry's exact pivot distances.
func pdistPrune(pdists, qd []float64, r float64) bool {
	for i := range qd {
		if d := math.Abs(qd[i] - pdists[i]); d > r {
			return true
		}
	}
	return false
}

// QueryDists computes d(q, p_i) for the shared pivots (nil for a plain
// M-tree). Call once per query and pass to the searches.
func (t *Tree) QueryDists(q core.Object) []float64 {
	if t.opts.NumPivots == 0 {
		return nil
	}
	sp := t.ds.Space()
	qd := make([]float64, len(t.pivots))
	for i, p := range t.pivots {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// RangeSearch answers MRQ(q, r) with depth-first traversal: the
// parent-distance filter skips entries without computing d(q, RO); rings
// (Lemma 1) and covering radii (Lemma 2) prune subtrees; leaf entries are
// verified on their decoded objects.
func (t *Tree) RangeSearch(q core.Object, r float64, qd []float64) ([]int, error) {
	sp := t.ds.Space()
	var res []int
	var walk func(pid store.PageID, dParent float64) error
	walk = func(pid store.PageID, dParent float64) error {
		n, err := t.readNode(pid)
		if err != nil {
			return err
		}
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				// Parent-distance filter: |d(q,par) − d(o,par)| > r.
				if !math.IsInf(dParent, 1) && !math.IsInf(e.pd, 1) &&
					math.Abs(dParent-e.pd) > r {
					continue
				}
				if qd != nil && pdistPrune(e.pdists, qd, r) {
					continue
				}
				if sp.Distance(q, e.obj) <= r {
					res = append(res, int(e.id))
				}
				continue
			}
			// Routing entry: parent-distance filter on the ball.
			if !math.IsInf(dParent, 1) && !math.IsInf(e.pd, 1) &&
				math.Abs(dParent-e.pd) > r+e.radius {
				continue
			}
			if qd != nil && ringsPrune(e.rings, qd, r) {
				continue
			}
			d := sp.Distance(q, e.obj)
			if core.PruneBall(d, e.radius, r) { // Lemma 2
				continue
			}
			if err := walk(e.child, d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, math.Inf(1)); err != nil {
		return nil, err
	}
	sort.Ints(res)
	return res, nil
}

// knnItem is a prioritized subtree for best-first traversal.
type knnItem struct {
	pid store.PageID
	lb  float64
	dp  float64 // d(q, routing object) of the entry leading here
}

type knnPQ []knnItem

func (p knnPQ) Len() int           { return len(p) }
func (p knnPQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p knnPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *knnPQ) Push(x any)        { *p = append(*p, x.(knnItem)) }
func (p *knnPQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// KNNSearch answers MkNNQ(q, k) best-first: subtrees are visited in
// ascending lower-bound order (the maximum of the ball bound and the ring
// bound), with the radius tightened by verified objects (§5.1).
func (t *Tree) KNNSearch(q core.Object, k int, qd []float64) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sp := t.ds.Space()
	h := core.NewKNNHeap(k)
	pq := &knnPQ{}
	heap.Push(pq, knnItem{pid: t.root, lb: 0, dp: math.Inf(1)})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem)
		if it.lb > h.Radius() {
			break
		}
		n, err := t.readNode(it.pid)
		if err != nil {
			return nil, err
		}
		for i := range n.entries {
			e := &n.entries[i]
			r := h.Radius()
			if n.leaf {
				if !math.IsInf(r, 1) {
					if !math.IsInf(it.dp, 1) && !math.IsInf(e.pd, 1) &&
						math.Abs(it.dp-e.pd) > r {
						continue
					}
					if qd != nil && pdistPrune(e.pdists, qd, r) {
						continue
					}
				}
				h.Push(int(e.id), sp.Distance(q, e.obj))
				continue
			}
			if !math.IsInf(r, 1) {
				if !math.IsInf(it.dp, 1) && !math.IsInf(e.pd, 1) &&
					math.Abs(it.dp-e.pd) > r+e.radius {
					continue
				}
				if qd != nil && ringsPrune(e.rings, qd, r) {
					continue
				}
			}
			d := sp.Distance(q, e.obj)
			lb := core.BallMinDist(d, e.radius)
			if qd != nil {
				if rb := ringsMinDist(e.rings, qd); rb > lb {
					lb = rb
				}
			}
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				heap.Push(pq, knnItem{pid: e.child, lb: lb, dp: d})
			}
		}
	}
	return h.Result(), nil
}
