package mtree

import (
	"fmt"
	"math"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// Validate checks the M-tree's structural invariants, used by the test
// suite and available to callers debugging a corrupted volume:
//
//  1. every covering radius bounds the distance from the routing object
//     to every object in its subtree (plus child radii),
//  2. every stored parent distance matches the actual distance to the
//     parent routing object (when finite),
//  3. every ring interval covers the subtree's pivot distances (PM-tree),
//  4. the leaf directory points at the leaf that holds each object.
func (t *Tree) Validate() error {
	seen := make(map[int]store.PageID)
	if _, err := t.validate(t.root, nil, seen); err != nil {
		return err
	}
	for id, pid := range t.leafOf {
		if got, ok := seen[id]; !ok || got != pid {
			return fmt.Errorf("mtree: directory says object %d lives in leaf %d, tree says %v", id, pid, got)
		}
	}
	if len(seen) != len(t.leafOf) {
		return fmt.Errorf("mtree: tree holds %d objects, directory %d", len(seen), len(t.leafOf))
	}
	return nil
}

// validate walks the subtree, checking every entry. The covering-radius
// invariant is checked against the *actual objects* of each subtree
// (d(RO, object) <= radius for every leaf object), which is the M-tree's
// real contract — routing-entry chains only upper-bound it.
func (t *Tree) validate(pid store.PageID, parent *entry, seen map[int]store.PageID) ([]core.Object, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	sp := t.ds.Space()
	const eps = 1e-9
	var objs []core.Object
	for i := range n.entries {
		e := &n.entries[i]
		if parent != nil && !math.IsInf(e.pd, 1) {
			want := sp.Distance(e.obj, parent.obj)
			if math.Abs(want-e.pd) > eps {
				return nil, fmt.Errorf("mtree: page %d entry %d parent distance %v, actual %v", pid, i, e.pd, want)
			}
		}
		if n.leaf {
			if prev, dup := seen[int(e.id)]; dup {
				return nil, fmt.Errorf("mtree: object %d appears in leaves %d and %d", e.id, prev, pid)
			}
			seen[int(e.id)] = pid
			objs = append(objs, e.obj)
			if parent != nil && t.opts.NumPivots > 0 && parent.rings != nil {
				for pi := 0; pi < t.opts.NumPivots; pi++ {
					if e.pdists[pi] < parent.rings[2*pi]-eps || e.pdists[pi] > parent.rings[2*pi+1]+eps {
						return nil, fmt.Errorf("mtree: page %d object %d pivot %d distance %v outside ring [%v,%v]",
							pid, e.id, pi, e.pdists[pi], parent.rings[2*pi], parent.rings[2*pi+1])
					}
				}
			}
			continue
		}
		sub, err := t.validate(e.child, e, seen)
		if err != nil {
			return nil, err
		}
		for _, o := range sub {
			if d := sp.Distance(e.obj, o); d > e.radius+eps {
				return nil, fmt.Errorf("mtree: page %d entry %d radius %v below object distance %v", pid, i, e.radius, d)
			}
		}
		if parent != nil && t.opts.NumPivots > 0 && parent.rings != nil {
			for pi := 0; pi < t.opts.NumPivots; pi++ {
				if e.rings[2*pi] < parent.rings[2*pi]-eps || e.rings[2*pi+1] > parent.rings[2*pi+1]+eps {
					return nil, fmt.Errorf("mtree: page %d entry %d rings exceed parent rings at pivot %d", pid, i, pi)
				}
			}
		}
		objs = append(objs, sub...)
	}
	return objs, nil
}
