package mtree

import (
	"fmt"
	"math/rand"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot state encoding for the (P)M-tree handle (spec:
// docs/PERSISTENCE.md §M-tree). The nodes themselves already live on
// pager pages in their own format; what a snapshot adds is the handle
// state — options, pivot values, root page, size, and the id→leaf
// directory. The split rng is reseeded from Options.Seed: future splits
// may promote differently than an uninterrupted run, but every resulting
// tree is valid and answers identically.

const mtreeFormatVersion = 1

// EncodeState writes the handle state. The pager volume itself is written
// by the owning index (PM-tree, CPT), which may share the volume with
// other structures.
func (t *Tree) EncodeState(w *persist.Writer) error {
	w.U16(mtreeFormatVersion)
	w.U32(uint32(t.opts.NumPivots))
	w.I64(t.opts.Seed)
	w.Objects(t.pivots)
	w.U32(uint32(t.root))
	w.U32(uint32(t.size))
	ids := make([]int, 0, len(t.leafOf))
	for id := range t.leafOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U32(uint32(id))
		w.U32(uint32(t.leafOf[id]))
	}
	return nil
}

// RestoreState rebinds a tree handle over an already-reopened pager.
func RestoreState(ds *core.Dataset, pager *store.Pager, r *persist.Reader) (*Tree, error) {
	if v := r.U16(); r.Err() == nil && v != mtreeFormatVersion {
		return nil, fmt.Errorf("mtree: unsupported payload version %d", v)
	}
	t := &Tree{ds: ds, pager: pager}
	t.opts.NumPivots = int(r.U32())
	t.opts.Seed = r.I64()
	t.pivots = r.Objects()
	t.root = store.PageID(r.U32())
	t.size = int(r.U32())
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(t.pivots) != t.opts.NumPivots {
		return nil, fmt.Errorf("mtree: %d pivot values for NumPivots=%d", len(t.pivots), t.opts.NumPivots)
	}
	if len(t.pivots) == 0 {
		t.pivots = nil // plain M-tree: keep the nil sentinel
	}
	if int(t.root) >= pager.Pages() {
		return nil, fmt.Errorf("mtree: root page %d beyond volume (%d pages)", t.root, pager.Pages())
	}
	t.leafOf = make(map[int]store.PageID, n)
	for i := 0; i < n; i++ {
		id := int(r.U32())
		pid := store.PageID(r.U32())
		if int(pid) >= pager.Pages() {
			return nil, fmt.Errorf("mtree: leaf page %d beyond volume (%d pages)", pid, pager.Pages())
		}
		t.leafOf[id] = pid
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	t.rng = rand.New(rand.NewSource(t.opts.Seed))
	return t, nil
}
