package mtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// Insert adds the dataset object with the given id to the tree: descend
// along the subtree whose covering ball needs the least enlargement,
// append to the reached leaf, and split bottom-up on page overflow
// (promotion: far-pair sampling; partition: generalized hyperplane).
func (t *Tree) Insert(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("mtree: insert of deleted object %d", id)
	}
	pdists := t.pivotDists(o)
	sp, err := t.insert(t.root, o, id, pdists, math.Inf(1))
	if err != nil {
		return err
	}
	if sp != nil {
		// Root split: grow the tree by one level.
		for i := range sp.entries {
			sp.entries[i].pd = math.Inf(1)
		}
		root := &node{leaf: false, entries: sp.entries}
		if t.nodeSize(root) > t.pager.PageSize() {
			return fmt.Errorf("mtree: two routing entries (%d bytes) exceed the %d-byte page; increase the page size (§6.1 uses 40KB for high-dimensional data)",
				t.nodeSize(root), t.pager.PageSize())
		}
		newRoot := t.pager.Alloc()
		t.writeNode(newRoot, root)
		t.root = newRoot
	}
	t.size++
	return nil
}

// splitOut carries the two routing entries that replace an overflowed
// child in its parent.
type splitOut struct {
	entries []entry // exactly two routing entries (pd unset)
}

// insert descends recursively. dFromParent is d(newObject, parent routing
// object) — the new entry's parent distance at the level it lands.
func (t *Tree) insert(pid store.PageID, o core.Object, id int, pdists []float64, dFromParent float64) (*splitOut, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.entries = append(n.entries, entry{obj: o, pd: dFromParent, id: int32(id), pdists: pdists})
		t.leafOf[id] = pid
		if t.nodeSize(n) <= t.pager.PageSize() {
			t.writeNode(pid, n)
			return nil, nil
		}
		return t.split(pid, n)
	}

	// Choose the child: among covering entries the closest routing
	// object; otherwise the one with minimal radius enlargement (the
	// classic M-tree heuristic).
	sp := t.ds.Space()
	bestIdx, bestD := -1, math.Inf(1)
	bestEnl := math.Inf(1)
	dists := make([]float64, len(n.entries))
	covered := false
	for i := range n.entries {
		e := &n.entries[i]
		d := sp.Distance(o, e.obj)
		dists[i] = d
		if d <= e.radius {
			if !covered || d < bestD {
				covered = true
				bestIdx, bestD = i, d
			}
		} else if !covered {
			if enl := d - e.radius; enl < bestEnl {
				bestEnl = enl
				bestIdx, bestD = i, d
			}
		}
	}
	e := &n.entries[bestIdx]
	if bestD > e.radius {
		e.radius = bestD
	}
	if t.opts.NumPivots > 0 {
		mergeRingPoint(e.rings, pdists)
	}
	childSplit, err := t.insert(e.child, o, id, pdists, bestD)
	if err != nil {
		return nil, err
	}
	if childSplit == nil {
		t.writeNode(pid, n)
		return nil, nil
	}
	// Replace entry bestIdx with the two promoted routing entries,
	// computing their parent distances lazily at the caller level (set
	// below via this node's own parent; here pd is the distance to this
	// node's routing object, which the caller knows — so we compute it
	// when the caller writes us. Instead we compute pd now against the
	// parent object by convention: the caller passes it via recursion, so
	// at this level the new entries' pd must be distance to *our* parent
	// object; we do not know it here. We therefore recompute pd for the
	// two new entries when they are placed: at this node they are
	// children, and their pd is the distance to this node's own routing
	// object in the parent — not stored in the node. The M-tree handles
	// this by computing pd against the routing object of the parent
	// *entry*; since we replace in place, we approximate pd with ∞, which
	// disables (never breaks) the parent-distance filter for these two
	// entries.
	for i := range childSplit.entries {
		childSplit.entries[i].pd = math.Inf(1)
	}
	n.entries[bestIdx] = childSplit.entries[0]
	n.entries = append(n.entries, entry{})
	copy(n.entries[bestIdx+2:], n.entries[bestIdx+1:])
	n.entries[bestIdx+1] = childSplit.entries[1]
	if t.nodeSize(n) <= t.pager.PageSize() {
		t.writeNode(pid, n)
		return nil, nil
	}
	return t.split(pid, n)
}

// split divides an overflowed node into two, reusing pid for the first
// half, and returns the two promoted routing entries.
func (t *Tree) split(pid store.PageID, n *node) (*splitOut, error) {
	if len(n.entries) < 2 {
		return nil, fmt.Errorf("mtree: node overflows page size %d with %d entries; increase the page size (paper §6.1 uses 40KB for high-dimensional data)",
			t.pager.PageSize(), len(n.entries))
	}
	sp := t.ds.Space()
	// Promotion: pick a far pair with two linear passes (random anchor →
	// farthest a; farthest from a → b). O(3·c) distance computations.
	anchor := t.rng.Intn(len(n.entries))
	ai, ad := anchor, -1.0
	for i := range n.entries {
		if i == anchor {
			continue
		}
		if d := sp.Distance(n.entries[anchor].obj, n.entries[i].obj); d > ad {
			ai, ad = i, d
		}
	}
	bi, bd := anchor, -1.0
	for i := range n.entries {
		if i == ai {
			continue
		}
		if d := sp.Distance(n.entries[ai].obj, n.entries[i].obj); d > bd {
			bi, bd = i, d
		}
	}
	if ai == bi {
		bi = (ai + 1) % len(n.entries)
	}

	// Partition: generalized hyperplane (nearer promoted object wins),
	// with a balance fallback so neither side is empty.
	aObj, bObj := n.entries[ai].obj, n.entries[bi].obj
	var aEnt, bEnt []entry
	for i := range n.entries {
		e := n.entries[i]
		var da, db float64
		switch i {
		case ai:
			da, db = 0, bd
		case bi:
			da, db = bd, 0
		default:
			da = sp.Distance(aObj, e.obj)
			db = sp.Distance(bObj, e.obj)
		}
		if da <= db {
			e.pd = da
			aEnt = append(aEnt, e)
		} else {
			e.pd = db
			bEnt = append(bEnt, e)
		}
	}
	if len(aEnt) == 0 || len(bEnt) == 0 {
		// Degenerate metric (all ties): split by position.
		aEnt, bEnt = nil, nil
		mid := len(n.entries) / 2
		for i, e := range n.entries {
			if i < mid {
				e.pd = sp.Distance(aObj, e.obj)
				aEnt = append(aEnt, e)
			} else {
				e.pd = sp.Distance(bObj, e.obj)
				bEnt = append(bEnt, e)
			}
		}
	}

	left := &node{leaf: n.leaf, entries: aEnt}
	right := &node{leaf: n.leaf, entries: bEnt}
	rightPID := t.pager.Alloc()
	// Verify both halves fit; objects bigger than half a page can defeat
	// the hyperplane partition, so rebalance by moving entries if needed.
	if t.nodeSize(left) > t.pager.PageSize() || t.nodeSize(right) > t.pager.PageSize() {
		if err := t.rebalance(left, right); err != nil {
			return nil, err
		}
	}
	// Covering radii from the (now final) membership: parent distances of
	// moved entries are recomputed on demand.
	finalRadius := func(promoted core.Object, nd *node) float64 {
		var r float64
		for i := range nd.entries {
			e := &nd.entries[i]
			if math.IsInf(e.pd, 1) {
				e.pd = sp.Distance(promoted, e.obj)
			}
			d := e.pd
			if !nd.leaf {
				d += e.radius
			}
			if d > r {
				r = d
			}
		}
		return r
	}
	leftRadius := finalRadius(aObj, left)
	rightRadius := finalRadius(bObj, right)
	t.writeNode(pid, left)
	t.writeNode(rightPID, right)
	if n.leaf {
		for i := range left.entries {
			t.leafOf[int(left.entries[i].id)] = pid
		}
		for i := range right.entries {
			t.leafOf[int(right.entries[i].id)] = rightPID
		}
	}

	var leftRings, rightRings []float64
	if t.opts.NumPivots > 0 {
		if n.leaf {
			leftRings = ringsOfLeaf(t.opts.NumPivots, left.entries)
			rightRings = ringsOfLeaf(t.opts.NumPivots, right.entries)
		} else {
			leftRings = ringsOfRouting(t.opts.NumPivots, left.entries)
			rightRings = ringsOfRouting(t.opts.NumPivots, right.entries)
		}
	}
	return &splitOut{entries: []entry{
		{obj: aObj, child: pid, radius: leftRadius, rings: leftRings},
		{obj: bObj, child: rightPID, radius: rightRadius, rings: rightRings},
	}}, nil
}

// rebalance moves entries between halves until both fit, recomputing
// parent distances of moved entries lazily as ∞ (filter-safe).
func (t *Tree) rebalance(a, b *node) error {
	for t.nodeSize(a) > t.pager.PageSize() {
		if len(a.entries) <= 1 {
			return fmt.Errorf("mtree: entry larger than page (%d bytes); increase the page size", t.nodeSize(a))
		}
		e := a.entries[len(a.entries)-1]
		e.pd = math.Inf(1)
		a.entries = a.entries[:len(a.entries)-1]
		b.entries = append(b.entries, e)
	}
	for t.nodeSize(b) > t.pager.PageSize() {
		if len(b.entries) <= 1 {
			return fmt.Errorf("mtree: entry larger than page (%d bytes); increase the page size", t.nodeSize(b))
		}
		e := b.entries[len(b.entries)-1]
		e.pd = math.Inf(1)
		b.entries = b.entries[:len(b.entries)-1]
		a.entries = append(a.entries, e)
	}
	return nil
}

// Delete removes the object from its leaf (located via the directory).
// Covering radii and rings stay conservative, which preserves search
// correctness; no rebalancing is performed (§6.3 measures delete+reinsert).
func (t *Tree) Delete(id int) error {
	pid, ok := t.leafOf[id]
	if !ok {
		return fmt.Errorf("mtree: delete of unindexed object %d", id)
	}
	n, err := t.readNode(pid)
	if err != nil {
		return err
	}
	for i := range n.entries {
		if int(n.entries[i].id) == id {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			t.writeNode(pid, n)
			delete(t.leafOf, id)
			t.size--
			return nil
		}
	}
	return fmt.Errorf("mtree: directory points to leaf %d but object %d is missing", pid, id)
}

// ReadObject fetches the stored object by id, paying the leaf page access
// (this is how CPT loads candidates for verification, §3.3). Only the
// matching entry is decoded — the equivalent of the paper's direct
// pointers from CPT's distance table into the M-tree leaves.
func (t *Tree) ReadObject(id int) (core.Object, error) {
	pid, ok := t.leafOf[id]
	if !ok {
		return nil, fmt.Errorf("mtree: no object %d", id)
	}
	buf, err := t.pager.Read(pid)
	if err != nil {
		return nil, err
	}
	if buf[0] != 0 {
		return nil, fmt.Errorf("mtree: directory points to non-leaf page %d", pid)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := 3
	l := t.opts.NumPivots
	for i := 0; i < count; i++ {
		eid := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 12 + 8*l // id, parent distance, pivot distances
		objLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if eid == id {
			obj, _, err := store.DecodeObject(buf[off : off+objLen])
			return obj, err
		}
		off += objLen
	}
	return nil, fmt.Errorf("mtree: directory points to leaf %d but object %d is missing", pid, id)
}

// rebalanceRings is unused for plain M-trees; kept for symmetry.
var _ = mergeRings
