// Package mtree implements a disk-resident M-tree [13] over the simulated
// page store, with optional per-entry pivot rings that turn it into the
// PM-tree of [26] (§5.1).
//
// Nodes store entries with the *actual objects* inside (routing objects in
// internal nodes, data objects in leaves) — the design property the paper
// repeatedly calls out: it forces large pages for high-dimensional data
// and inflates storage (Table 4) but saves a separate object file.
//
// With NumPivots = 0 the tree is a plain M-tree: CPT (§3.3) uses it to
// cluster objects on disk. With NumPivots = l > 0 every entry additionally
// carries hyper-ring intervals [min,max] of the subtree's distances to
// each of the l shared pivots, and leaf entries carry their objects' pivot
// distances — the PM-tree, pruned by Lemma 1 (rings) and Lemma 2 (covering
// radii) plus the classic parent-distance filter.
package mtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// Options tunes the tree.
type Options struct {
	// NumPivots enables PM-tree rings when > 0.
	NumPivots int
	// Seed drives split promotion sampling.
	Seed int64
}

// entry is a decoded node entry. Exactly one of the leaf/routing field
// groups is meaningful depending on the owning node's kind.
type entry struct {
	obj core.Object
	pd  float64 // parent distance (∞ at root level)

	// leaf
	id     int32
	pdists []float64 // distances to the l shared pivots

	// routing
	child  store.PageID
	radius float64
	rings  []float64 // 2l values: lo/hi interleaved per pivot
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is the (P)M-tree handle.
type Tree struct {
	ds     *core.Dataset
	pager  *store.Pager
	opts   Options
	pivots []core.Object // values of the l shared pivots (nil when plain)
	root   store.PageID
	size   int
	rng    *rand.Rand
	leafOf map[int]store.PageID // object id -> leaf page (CPT's pointers)
}

// New creates an empty tree. For the PM-tree variant, pivotIDs supplies
// the shared pivot set whose values are snapshotted.
func New(ds *core.Dataset, pager *store.Pager, pivotIDs []int, opts Options) (*Tree, error) {
	t, err := newTree(ds, pager, pivotIDs, opts)
	if err != nil {
		return nil, err
	}
	t.root = pager.Alloc()
	t.writeNode(t.root, &node{leaf: true})
	return t, nil
}

// newTree builds the handle — pivot snapshot, directory, split rng — but
// allocates no pages; New adds the empty root leaf, Bulk writes its own.
func newTree(ds *core.Dataset, pager *store.Pager, pivotIDs []int, opts Options) (*Tree, error) {
	if opts.NumPivots > 0 && len(pivotIDs) < opts.NumPivots {
		return nil, fmt.Errorf("mtree: need %d pivots, got %d", opts.NumPivots, len(pivotIDs))
	}
	t := &Tree{
		ds:     ds,
		pager:  pager,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		leafOf: make(map[int]store.PageID),
	}
	for i := 0; i < opts.NumPivots; i++ {
		v := ds.Object(pivotIDs[i])
		if v == nil {
			return nil, fmt.Errorf("mtree: pivot %d is not a live object", pivotIDs[i])
		}
		t.pivots = append(t.pivots, v)
	}
	return t, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// NumPivots returns l (0 for a plain M-tree).
func (t *Tree) NumPivots() int { return t.opts.NumPivots }

// PivotValues returns the snapshotted pivot objects.
func (t *Tree) PivotValues() []core.Object { return t.pivots }

// ---- serialization ----

func (t *Tree) entrySize(leaf bool, e *entry) int {
	objLen := store.EncodedObjectSize(e.obj)
	if leaf {
		return 4 + 8 + 8*t.opts.NumPivots + 4 + objLen
	}
	return 4 + 8 + 8 + 16*t.opts.NumPivots + 4 + objLen
}

func (t *Tree) nodeSize(n *node) int {
	sz := 3
	for i := range n.entries {
		sz += t.entrySize(n.leaf, &n.entries[i])
	}
	return sz
}

func (t *Tree) writeNode(pid store.PageID, n *node) {
	buf := make([]byte, 0, t.pager.PageSize())
	kind := byte(1)
	if n.leaf {
		kind = 0
	}
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.entries)))
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.id))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.pd))
			buf = store.EncodeFloats(buf, e.pdists)
		} else {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.child))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.radius))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.pd))
			buf = store.EncodeFloats(buf, e.rings)
		}
		objBytes := store.EncodeObject(nil, e.obj)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objBytes)))
		buf = append(buf, objBytes...)
	}
	if err := t.pager.Write(pid, buf); err != nil {
		panic(fmt.Sprintf("mtree: node write overflow: %v (size %d)", err, len(buf)))
	}
}

func (t *Tree) readNode(pid store.PageID) (*node, error) {
	buf, err := t.pager.Read(pid)
	if err != nil {
		return nil, err
	}
	n := &node{leaf: buf[0] == 0}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := 3
	l := t.opts.NumPivots
	n.entries = make([]entry, count)
	for i := 0; i < count; i++ {
		e := &n.entries[i]
		if n.leaf {
			e.id = int32(binary.LittleEndian.Uint32(buf[off:]))
			e.pd = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
			off += 12
			if l > 0 {
				e.pdists, _, err = store.DecodeFloats(buf[off:], l)
				if err != nil {
					return nil, fmt.Errorf("mtree: leaf entry decode: %w", err)
				}
				off += 8 * l
			}
		} else {
			e.child = store.PageID(binary.LittleEndian.Uint32(buf[off:]))
			e.radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
			e.pd = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+12:]))
			off += 20
			if l > 0 {
				e.rings, _, err = store.DecodeFloats(buf[off:], 2*l)
				if err != nil {
					return nil, fmt.Errorf("mtree: routing entry decode: %w", err)
				}
				off += 16 * l
			}
		}
		objLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		obj, n2, err := store.DecodeObject(buf[off : off+objLen])
		if err != nil {
			return nil, fmt.Errorf("mtree: object decode: %w", err)
		}
		e.obj = obj
		off += n2
		_ = n2
	}
	return n, nil
}

// pivotDists computes the l shared-pivot distances of an object through
// the counted space.
func (t *Tree) pivotDists(o core.Object) []float64 {
	if t.opts.NumPivots == 0 {
		return nil
	}
	sp := t.ds.Space()
	pd := make([]float64, len(t.pivots))
	for i, p := range t.pivots {
		pd[i] = sp.Distance(o, p)
	}
	return pd
}

// ringsOfLeaf builds the ring intervals covering a set of leaf pivot
// distances.
func ringsOfLeaf(l int, entries []entry) []float64 {
	if l == 0 {
		return nil
	}
	rings := make([]float64, 2*l)
	for i := 0; i < l; i++ {
		rings[2*i] = math.Inf(1)
		rings[2*i+1] = math.Inf(-1)
	}
	for _, e := range entries {
		for i := 0; i < l; i++ {
			if e.pdists[i] < rings[2*i] {
				rings[2*i] = e.pdists[i]
			}
			if e.pdists[i] > rings[2*i+1] {
				rings[2*i+1] = e.pdists[i]
			}
		}
	}
	return rings
}

// ringsOfRouting merges child ring intervals.
func ringsOfRouting(l int, entries []entry) []float64 {
	if l == 0 {
		return nil
	}
	rings := make([]float64, 2*l)
	for i := 0; i < l; i++ {
		rings[2*i] = math.Inf(1)
		rings[2*i+1] = math.Inf(-1)
	}
	for _, e := range entries {
		for i := 0; i < l; i++ {
			if e.rings[2*i] < rings[2*i] {
				rings[2*i] = e.rings[2*i]
			}
			if e.rings[2*i+1] > rings[2*i+1] {
				rings[2*i+1] = e.rings[2*i+1]
			}
		}
	}
	return rings
}

// mergeRingsInto widens dst to cover src (either rings or point dists).
func mergeRingPoint(rings, pdists []float64) {
	for i := 0; i < len(pdists); i++ {
		if pdists[i] < rings[2*i] {
			rings[2*i] = pdists[i]
		}
		if pdists[i] > rings[2*i+1] {
			rings[2*i+1] = pdists[i]
		}
	}
}

func mergeRings(dst, src []float64) {
	for i := 0; i*2 < len(dst); i++ {
		if src[2*i] < dst[2*i] {
			dst[2*i] = src[2*i]
		}
		if src[2*i+1] > dst[2*i+1] {
			dst[2*i+1] = src[2*i+1]
		}
	}
}
