package mtree

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func buildTree(t *testing.T, ds *core.Dataset, numPivots int, pageSize int) (*Tree, *store.Pager) {
	t.Helper()
	p := store.NewPager(pageSize)
	var pv []int
	if numPivots > 0 {
		var err error
		pv, err = pivot.HFI(ds, numPivots, pivot.Options{Seed: 3})
		if err != nil {
			t.Fatalf("HFI: %v", err)
		}
	}
	tr, err := New(ds, p, pv, Options{NumPivots: numPivots, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, id := range ds.LiveIDs() {
		if err := tr.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	return tr, p
}

type searcherAdapter struct {
	tr *Tree
}

func (s searcherAdapter) RangeSearch(q core.Object, r float64) ([]int, error) {
	return s.tr.RangeSearch(q, r, s.tr.QueryDists(q))
}
func (s searcherAdapter) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	return s.tr.KNNSearch(q, k, s.tr.QueryDists(q))
}
func (s searcherAdapter) Insert(id int) error { return s.tr.Insert(id) }
func (s searcherAdapter) Delete(id int) error { return s.tr.Delete(id) }

func TestMTreeRangeMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	tr, _ := buildTree(t, ds, 0, 512)
	s := searcherAdapter{tr}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, s, ds, q, r)
		}
	}
}

func TestMTreeKNNMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	tr, _ := buildTree(t, ds, 0, 512)
	s := searcherAdapter{tr}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, k := range []int{1, 5, 30, 500} {
			testutil.CheckKNN(t, s, ds, q, k)
		}
	}
}

func TestPMTreeMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 9)
	tr, _ := buildTree(t, ds, 4, 1024)
	s := searcherAdapter{tr}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, s, ds, q, r)
		}
		for _, k := range []int{1, 8, 50} {
			testutil.CheckKNN(t, s, ds, q, k)
		}
	}
}

func TestPMTreeWords(t *testing.T) {
	ds := testutil.WordDataset(300, 11)
	tr, _ := buildTree(t, ds, 3, 512)
	s := searcherAdapter{tr}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, s, ds, q, r)
		}
		testutil.CheckKNN(t, s, ds, q, 7)
	}
}

func TestPMTreeRingsPruneMoreThanMTree(t *testing.T) {
	// The PM-tree's rings must reduce distance computations vs the plain
	// M-tree on the same data (the premise of §5.1).
	mk := func(numPivots, pageSize int) int64 {
		ds := testutil.VectorDataset(600, 4, 100, core.L2{}, 21)
		tr, _ := buildTree(t, ds, numPivots, pageSize)
		q := testutil.RandomQuery(ds, 3)
		qd := tr.QueryDists(q)
		ds.Space().ResetCompDists()
		if _, err := tr.RangeSearch(q, 8, qd); err != nil {
			t.Fatal(err)
		}
		return ds.Space().CompDists()
	}
	plain := mk(0, 1024)
	pm := mk(4, 1024)
	if pm >= plain {
		t.Fatalf("PM-tree compdists (%d) should beat M-tree (%d)", pm, plain)
	}
}

func TestMTreeInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(300, 4, 100, core.L2{}, 13)
	tr, _ := buildTree(t, ds, 0, 512)
	for id := 0; id < 300; id += 3 {
		if err := tr.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := tr.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	s := searcherAdapter{tr}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, s, ds, q, r)
	}
	testutil.CheckKNN(t, s, ds, q, 20)
	if tr.Len() != ds.Count() {
		t.Fatalf("Len = %d, want %d", tr.Len(), ds.Count())
	}
}

func TestMTreeReadObject(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 15)
	tr, p := buildTree(t, ds, 0, 512)
	p.ResetStats()
	o, err := tr.ReadObject(42)
	if err != nil {
		t.Fatalf("ReadObject: %v", err)
	}
	want := ds.Object(42).(core.Vector)
	got := o.(core.Vector)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadObject(42) = %v, want %v", got, want)
		}
	}
	if p.PageAccesses() == 0 {
		t.Fatal("ReadObject must cost a page access")
	}
	if _, err := tr.ReadObject(99999); err == nil {
		t.Fatal("ReadObject of absent id should fail")
	}
}

func TestMTreePageTooSmall(t *testing.T) {
	ds := testutil.VectorDataset(50, 64, 100, core.L2{}, 17) // 517-byte objects
	p := store.NewPager(512)
	tr, err := New(ds, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for _, id := range ds.LiveIDs() {
		if err := tr.Insert(id); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("inserting 517-byte objects into 512-byte pages must fail with advice")
	}
}

func TestMTreeDuplicateObjects(t *testing.T) {
	objs := make([]core.Object, 150)
	for i := range objs {
		objs[i] = core.Vector{float64(i % 2), 1}
	}
	ds := core.NewDataset(core.NewSpace(core.L2{}), objs)
	tr, _ := buildTree(t, ds, 0, 512)
	s := searcherAdapter{tr}
	q := core.Vector{0, 1}
	testutil.CheckRange(t, s, ds, q, 0)
	testutil.CheckRange(t, s, ds, q, 0.5)
	testutil.CheckKNN(t, s, ds, q, 80)
}

func TestMTreeInvariantsAfterBuildAndUpdates(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 29)
	tr, _ := buildTree(t, ds, 0, 512)
	if err := tr.Validate(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	for id := 0; id < 100; id += 2 {
		if err := tr.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		id := ds.Insert(core.Vector{float64(i), 10, 20, 30})
		if err := tr.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after updates: %v", err)
	}
}

func TestPMTreeInvariants(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 31)
	tr, _ := buildTree(t, ds, 4, 1024)
	if err := tr.Validate(); err != nil {
		t.Fatalf("PM-tree invariants: %v", err)
	}
}
