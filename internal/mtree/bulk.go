package mtree

import (
	"fmt"
	"math"
	"math/rand"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// BulkOptions tunes the partitioned bulk load.
type BulkOptions struct {
	// Workers bounds the build's total concurrency: partition assignment
	// and the per-partition subtree builds fan out over this many
	// goroutines. 0 or 1 runs the whole load sequentially, negative uses
	// GOMAXPROCS. The resulting page image is byte-identical for every
	// value — parallelism only touches phases whose outputs are
	// order-independent, and every page write happens in the sequential
	// merge phase.
	Workers int
	// Partitions is the number of sample-based partitions (default 8,
	// clamped so each partition averages at least minPartitionSize
	// objects). The page image depends on Partitions but never on
	// Workers.
	Partitions int
}

// minPartitionSize is the average partition size below which extra
// partitions stop paying for themselves (tiny subtrees plus a taller
// merge root).
const minPartitionSize = 32

// defaultPartitions balances partition-build parallelism against root
// fanout for datasets large enough to bulk load.
const defaultPartitions = 8

// Bulk builds a fully loaded tree over all live objects with a
// partitioned bulk load instead of one-by-one root insertion:
//
//  1. sample Partitions routing objects (deterministically from
//     Options.Seed) and assign every object to its nearest sample — the
//     phase that dominates distance computations, fanned out over
//     Workers;
//  2. build each partition's subtree by sequential insertion into a
//     private staging pager, partitions running in parallel workers;
//  3. merge sequentially: copy each partition's pages into the real
//     pager in partition order (rewriting child pointers), then pack the
//     partition routing entries — whose covering radii are the *exact*
//     maxima recorded during assignment — into the root level.
//
// Because sampling and assignment are deterministic, each partition
// builds sequentially in its own staging space, and only the sequential
// merge writes through the shared pager, the page layout is identical
// for every Workers value; only wall-clock time changes.
func Bulk(ds *core.Dataset, pager *store.Pager, pivotIDs []int, opts Options, bo BulkOptions) (*Tree, error) {
	ids := ds.LiveIDs()
	p := bo.Partitions
	if p <= 0 {
		p = defaultPartitions
	}
	if maxP := len(ids) / minPartitionSize; p > maxP {
		p = maxP
	}
	if p <= 1 {
		// Too small to partition: plain sequential insertion build.
		t, err := New(ds, pager, pivotIDs, opts)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if err := t.Insert(id); err != nil {
				return nil, err
			}
		}
		return t, nil
	}

	t, err := newTree(ds, pager, pivotIDs, opts)
	if err != nil {
		return nil, err
	}

	// Phase 1: sample partition routing objects and assign every object
	// to its nearest sample (ties to the lowest sample index). The
	// per-object distances also yield the exact covering radius of each
	// partition.
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(ids))[:p]
	samples := make([]core.Object, p)
	for i, pos := range perm {
		samples[i] = ds.Object(ids[pos])
	}
	sp := ds.Space()
	assign := make([]int32, len(ids))
	distTo := make([]float64, len(ids))
	core.ParallelFor(len(ids), bo.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			o := ds.Object(ids[i])
			best, bestD := 0, sp.Distance(o, samples[0])
			for j := 1; j < p; j++ {
				if d := sp.Distance(o, samples[j]); d < bestD {
					best, bestD = j, d
				}
			}
			assign[i], distTo[i] = int32(best), bestD
		}
	})
	parts := make([][]int, p)
	radius := make([]float64, p)
	for i, id := range ids {
		parts[assign[i]] = append(parts[assign[i]], id)
		if distTo[i] > radius[assign[i]] {
			radius[assign[i]] = distTo[i]
		}
	}

	// Phase 2: per-partition subtree builds, each a sequential insertion
	// run against a private staging pager, partitions spread over the
	// workers.
	staged := make([]*Tree, p)
	errs := make([]error, p)
	core.ParallelFor(p, bo.Workers, func(start, end int) {
		for pi := start; pi < end; pi++ {
			st, err := New(ds, store.NewPager(pager.PageSize()), pivotIDs,
				Options{NumPivots: opts.NumPivots, Seed: opts.Seed + int64(pi) + 1})
			if err == nil {
				for _, id := range parts[pi] {
					if err = st.Insert(id); err != nil {
						break
					}
				}
			}
			staged[pi], errs[pi] = st, err
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 3: sequential merge. Copy each partition's pages into the
	// real pager in partition order, rewriting child pointers through the
	// remap table, then hand the partition routing entries to the root
	// packer. The partition root's entries get their true parent
	// distances to the sample, re-arming the parent-distance filter that
	// the staged build left disabled (∞) at its root.
	rootEntries := make([]entry, 0, p)
	l := t.opts.NumPivots
	for pi := 0; pi < p; pi++ {
		st := staged[pi]
		if len(parts[pi]) == 0 {
			continue // empty partition (duplicate samples): nothing to merge
		}
		nPages := st.pager.Pages()
		remap := make([]store.PageID, nPages)
		for i := range remap {
			remap[i] = pager.Alloc()
		}
		var rings []float64
		for i := 0; i < nPages; i++ {
			n, err := st.readNode(store.PageID(i))
			if err != nil {
				return nil, fmt.Errorf("mtree: bulk merge of partition %d: %w", pi, err)
			}
			if !n.leaf {
				for j := range n.entries {
					n.entries[j].child = remap[n.entries[j].child]
				}
			}
			if store.PageID(i) == st.root {
				for j := range n.entries {
					n.entries[j].pd = sp.Distance(samples[pi], n.entries[j].obj)
				}
				if l > 0 {
					if n.leaf {
						rings = ringsOfLeaf(l, n.entries)
					} else {
						rings = ringsOfRouting(l, n.entries)
					}
				}
			}
			t.writeNode(remap[i], n)
		}
		for id, pid := range st.leafOf {
			t.leafOf[id] = remap[pid]
		}
		t.size += st.size
		rootEntries = append(rootEntries, entry{
			obj:    samples[pi],
			child:  remap[st.root],
			radius: radius[pi],
			rings:  rings,
			pd:     math.Inf(1),
		})
	}
	root, err := t.packUpper(rootEntries)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// packUpper writes the routing entries over the partition subtrees into
// root-level nodes: one root page when they fit, otherwise greedy groups
// (routing object = the group's first entry, covering radius =
// max(pd+child radius), rings = the children's union) packed level by
// level until one node holds everything.
func (t *Tree) packUpper(entries []entry) (store.PageID, error) {
	sp := t.ds.Space()
	for {
		if len(entries) == 1 {
			// A single routing entry means its child already is the root.
			return entries[0].child, nil
		}
		n := &node{leaf: false, entries: entries}
		if t.nodeSize(n) <= t.pager.PageSize() {
			for i := range n.entries {
				n.entries[i].pd = math.Inf(1) // root level: no parent
			}
			pid := t.pager.Alloc()
			t.writeNode(pid, n)
			return pid, nil
		}
		var parents []entry
		for i := 0; i < len(entries); {
			g := &node{leaf: false}
			for i < len(entries) {
				g.entries = append(g.entries, entries[i])
				if t.nodeSize(g) > t.pager.PageSize() {
					g.entries = g.entries[:len(g.entries)-1]
					break
				}
				i++
			}
			if len(g.entries) == 0 {
				return 0, fmt.Errorf("mtree: routing entry exceeds the %d-byte page; increase the page size (§6.1 uses 40KB for high-dimensional data)",
					t.pager.PageSize())
			}
			ro := g.entries[0].obj
			var radius float64
			for j := range g.entries {
				e := &g.entries[j]
				e.pd = sp.Distance(ro, e.obj)
				if r := e.pd + e.radius; r > radius {
					radius = r
				}
			}
			rings := ringsOfRouting(t.opts.NumPivots, g.entries)
			pid := t.pager.Alloc()
			t.writeNode(pid, g)
			parents = append(parents, entry{obj: ro, child: pid, radius: radius, rings: rings})
		}
		if len(parents) >= len(entries) {
			// Every group held a single entry: two routing entries exceed a
			// page, so packing cannot make progress.
			return 0, fmt.Errorf("mtree: two routing entries exceed the %d-byte page; increase the page size (§6.1 uses 40KB for high-dimensional data)",
				t.pager.PageSize())
		}
		entries = parents
	}
}
