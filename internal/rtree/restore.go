package rtree

import (
	"fmt"

	"metricindex/internal/store"
)

// MaxCoord returns the coordinate bound used for Hilbert quantization.
func (t *Tree) MaxCoord() float64 { return t.maxCoord }

// Restore rebinds a tree handle over a reopened pager volume whose pages
// already hold the nodes. Node capacities are re-derived from the page
// size; the root page, entry count and coordinate bound come from the
// owning index's snapshot payload.
func Restore(p *store.Pager, dims int, maxCoord float64, root store.PageID, size int) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: dims must be positive, got %d", dims)
	}
	if maxCoord <= 0 {
		maxCoord = 1
	}
	if int(root) >= p.Pages() {
		return nil, fmt.Errorf("rtree: root page %d beyond volume (%d pages)", root, p.Pages())
	}
	if size < 0 {
		return nil, fmt.Errorf("rtree: negative size %d", size)
	}
	t := &Tree{
		pager:    p,
		dims:     dims,
		maxCoord: maxCoord,
		root:     root,
		size:     size,
		leafCap:  (p.PageSize() - 3) / (4 + 8 + 8*dims),
		intCap:   (p.PageSize() - 3) / (4 + 16*dims),
	}
	if t.leafCap < 2 || t.intCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d dims", p.PageSize(), dims)
	}
	return t, nil
}
