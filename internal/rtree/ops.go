package rtree

import (
	"fmt"
	"math"
	"sort"

	"metricindex/internal/store"
)

// Insert adds one entry dynamically: descend by least perimeter
// enlargement, split overflowing nodes by the widest-spread dimension.
func (t *Tree) Insert(e Entry) error {
	if len(e.Point) != t.dims {
		return fmt.Errorf("rtree: point has %d dims, tree has %d", len(e.Point), t.dims)
	}
	sp, err := t.insert(t.root, e)
	if err != nil {
		return err
	}
	if sp != nil {
		newRoot := t.pager.Alloc()
		n := &Node{
			Leaf:     false,
			Children: []store.PageID{sp.leftPID, sp.rightPID},
			Lo:       [][]float64{sp.leftLo, sp.rightLo},
			Hi:       [][]float64{sp.leftHi, sp.rightHi},
		}
		t.writeNode(newRoot, n)
		t.root = newRoot
	}
	t.size++
	return nil
}

type rSplit struct {
	leftPID, rightPID store.PageID
	leftLo, leftHi    []float64
	rightLo, rightHi  []float64
}

func (t *Tree) insert(pid store.PageID, e Entry) (*rSplit, error) {
	n, err := t.ReadNode(pid)
	if err != nil {
		return nil, err
	}
	if n.Leaf {
		n.Entries = append(n.Entries, e)
		if len(n.Entries) <= t.leafCap {
			t.writeNode(pid, n)
			return nil, nil
		}
		return t.splitLeaf(pid, n)
	}
	// Least perimeter enlargement.
	best, bestEnl, bestPer := -1, math.Inf(1), math.Inf(1)
	for i := range n.Children {
		var enl, per float64
		for d := 0; d < t.dims; d++ {
			lo, hi := n.Lo[i][d], n.Hi[i][d]
			nlo, nhi := math.Min(lo, e.Point[d]), math.Max(hi, e.Point[d])
			enl += (nhi - nlo) - (hi - lo)
			per += nhi - nlo
		}
		if enl < bestEnl || (enl == bestEnl && per < bestPer) {
			best, bestEnl, bestPer = i, enl, per
		}
	}
	for d := 0; d < t.dims; d++ {
		if e.Point[d] < n.Lo[best][d] {
			n.Lo[best][d] = e.Point[d]
		}
		if e.Point[d] > n.Hi[best][d] {
			n.Hi[best][d] = e.Point[d]
		}
	}
	sp, err := t.insert(n.Children[best], e)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		n.Children[best] = sp.leftPID
		n.Lo[best], n.Hi[best] = sp.leftLo, sp.leftHi
		n.Children = append(n.Children, sp.rightPID)
		n.Lo = append(n.Lo, sp.rightLo)
		n.Hi = append(n.Hi, sp.rightHi)
		if len(n.Children) > t.intCap {
			return t.splitInternal(pid, n)
		}
	}
	t.writeNode(pid, n)
	return nil, nil
}

// splitLeaf divides entries along the widest-spread dimension.
func (t *Tree) splitLeaf(pid store.PageID, n *Node) (*rSplit, error) {
	dim := t.widestDimLeaf(n)
	sortEntriesByDim(n.Entries, dim)
	mid := len(n.Entries) / 2
	left := &Node{Leaf: true, Entries: append([]Entry(nil), n.Entries[:mid]...)}
	right := &Node{Leaf: true, Entries: append([]Entry(nil), n.Entries[mid:]...)}
	rightPID := t.pager.Alloc()
	t.writeNode(pid, left)
	t.writeNode(rightPID, right)
	llo, lhi := t.nodeMBB(left)
	rlo, rhi := t.nodeMBB(right)
	return &rSplit{pid, rightPID, llo, lhi, rlo, rhi}, nil
}

func (t *Tree) splitInternal(pid store.PageID, n *Node) (*rSplit, error) {
	dim := t.widestDimInternal(n)
	idx := make([]int, len(n.Children))
	for i := range idx {
		idx[i] = i
	}
	centers := make([]float64, len(n.Children))
	for i := range centers {
		centers[i] = (n.Lo[i][dim] + n.Hi[i][dim]) / 2
	}
	sortIdxBy(idx, centers)
	mid := len(idx) / 2
	pick := func(sel []int) *Node {
		out := &Node{Leaf: false}
		for _, i := range sel {
			out.Children = append(out.Children, n.Children[i])
			out.Lo = append(out.Lo, n.Lo[i])
			out.Hi = append(out.Hi, n.Hi[i])
		}
		return out
	}
	left := pick(idx[:mid])
	right := pick(idx[mid:])
	rightPID := t.pager.Alloc()
	t.writeNode(pid, left)
	t.writeNode(rightPID, right)
	llo, lhi := t.nodeMBB(left)
	rlo, rhi := t.nodeMBB(right)
	return &rSplit{pid, rightPID, llo, lhi, rlo, rhi}, nil
}

func (t *Tree) widestDimLeaf(n *Node) int {
	best, spread := 0, -1.0
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range n.Entries {
			v := n.Entries[i].Point[d]
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if s := hi - lo; s > spread {
			best, spread = d, s
		}
	}
	return best
}

func (t *Tree) widestDimInternal(n *Node) int {
	best, spread := 0, -1.0
	for d := 0; d < t.dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range n.Children {
			lo, hi = math.Min(lo, n.Lo[i][d]), math.Max(hi, n.Hi[i][d])
		}
		if s := hi - lo; s > spread {
			best, spread = d, s
		}
	}
	return best
}

// Delete removes the entry with the given id, descending only into boxes
// containing its point. MBBs are not shrunk (conservative), matching the
// library's other delete paths.
func (t *Tree) Delete(id int, point []float64) error {
	found, err := t.delete(t.root, id, point)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("rtree: delete of absent entry %d", id)
	}
	t.size--
	return nil
}

func (t *Tree) delete(pid store.PageID, id int, point []float64) (bool, error) {
	n, err := t.ReadNode(pid)
	if err != nil {
		return false, err
	}
	if n.Leaf {
		for i := range n.Entries {
			if int(n.Entries[i].ID) == id {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				t.writeNode(pid, n)
				return true, nil
			}
		}
		return false, nil
	}
	for i := range n.Children {
		if !boxContains(n.Lo[i], n.Hi[i], point) {
			continue
		}
		found, err := t.delete(n.Children[i], id, point)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

func boxContains(lo, hi, p []float64) bool {
	for d := range p {
		if p[d] < lo[d] || p[d] > hi[d] {
			return false
		}
	}
	return true
}

// Search invokes fn for every leaf entry whose point lies inside the
// query box [lo, hi], until fn returns false.
func (t *Tree) Search(lo, hi []float64, fn func(e *Entry) bool) error {
	var walk func(pid store.PageID) (bool, error)
	walk = func(pid store.PageID) (bool, error) {
		n, err := t.ReadNode(pid)
		if err != nil {
			return false, err
		}
		if n.Leaf {
			for i := range n.Entries {
				if boxContains(lo, hi, n.Entries[i].Point) {
					if !fn(&n.Entries[i]) {
						return false, nil
					}
				}
			}
			return true, nil
		}
		for i := range n.Children {
			if !boxIntersects(n.Lo[i], n.Hi[i], lo, hi) {
				continue
			}
			cont, err := walk(n.Children[i])
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := walk(t.root)
	return err
}

func boxIntersects(alo, ahi, blo, bhi []float64) bool {
	for d := range alo {
		if alo[d] > bhi[d] || ahi[d] < blo[d] {
			return false
		}
	}
	return true
}

func sortEntriesByDim(es []Entry, dim int) {
	sort.Slice(es, func(i, j int) bool { return es[i].Point[dim] < es[j].Point[dim] })
}

func sortIdxBy(idx []int, key []float64) {
	sort.Slice(idx, func(i, j int) bool { return key[idx[i]] < key[idx[j]] })
}
