// Package rtree implements a disk-resident R-tree over l-dimensional
// points — the pivot-space images ⟨d(o,p₁),…,d(o,p_l)⟩ that the OmniR-tree
// indexes (§5.2). Leaf entries carry the point, the object id, and the
// object's RAF offset; internal entries carry child MBBs.
//
// Construction bulk-loads with a Hilbert-sort packing (sorted leaf runs,
// grouped bottom-up), and supports dynamic insert (least-enlargement
// descent, spread-based splits) and delete for the update workload.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"metricindex/internal/sfc"
	"metricindex/internal/store"
)

// Entry is a leaf record: a point in pivot space plus the object's
// identity and RAF offset.
type Entry struct {
	ID     int32
	RAFOff uint64
	Point  []float64
}

// Node is a decoded R-tree page.
type Node struct {
	Leaf     bool
	Entries  []Entry     // leaf
	Lo, Hi   [][]float64 // internal: child MBBs
	Children []store.PageID
}

// Tree is the R-tree handle.
type Tree struct {
	pager *store.Pager
	dims  int
	root  store.PageID
	size  int
	// max coordinate for Hilbert quantization during bulk load
	maxCoord float64

	leafCap, intCap int
}

// New creates an empty tree over points of the given dimensionality.
// maxCoord bounds coordinates (d+), used to quantize points for the
// Hilbert bulk-load ordering.
func New(p *store.Pager, dims int, maxCoord float64) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("rtree: dims must be positive, got %d", dims)
	}
	if maxCoord <= 0 {
		maxCoord = 1
	}
	t := &Tree{
		pager:    p,
		dims:     dims,
		maxCoord: maxCoord,
		leafCap:  (p.PageSize() - 3) / (4 + 8 + 8*dims),
		intCap:   (p.PageSize() - 3) / (4 + 16*dims),
	}
	if t.leafCap < 2 || t.intCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d dims", p.PageSize(), dims)
	}
	t.root = p.Alloc()
	t.writeNode(t.root, &Node{Leaf: true})
	return t, nil
}

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Root returns the root page id.
func (t *Tree) Root() store.PageID { return t.root }

// ---- serialization ----

func (t *Tree) writeNode(pid store.PageID, n *Node) {
	buf := make([]byte, 0, t.pager.PageSize())
	kind := byte(1)
	count := len(n.Children)
	if n.Leaf {
		kind = 0
		count = len(n.Entries)
	}
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(count))
	if n.Leaf {
		for i := range n.Entries {
			e := &n.Entries[i]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ID))
			buf = binary.LittleEndian.AppendUint64(buf, e.RAFOff)
			buf = store.EncodeFloats(buf, e.Point)
		}
	} else {
		for i := range n.Children {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Children[i]))
			buf = store.EncodeFloats(buf, n.Lo[i])
			buf = store.EncodeFloats(buf, n.Hi[i])
		}
	}
	if err := t.pager.Write(pid, buf); err != nil {
		panic(fmt.Sprintf("rtree: node write: %v", err))
	}
}

// ReadNode fetches and decodes a node (one page access, modulo cache).
func (t *Tree) ReadNode(pid store.PageID) (*Node, error) {
	buf, err := t.pager.Read(pid)
	if err != nil {
		return nil, err
	}
	n := &Node{Leaf: buf[0] == 0}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := 3
	if n.Leaf {
		n.Entries = make([]Entry, count)
		for i := 0; i < count; i++ {
			e := &n.Entries[i]
			e.ID = int32(binary.LittleEndian.Uint32(buf[off:]))
			e.RAFOff = binary.LittleEndian.Uint64(buf[off+4:])
			off += 12
			e.Point, _, err = store.DecodeFloats(buf[off:], t.dims)
			if err != nil {
				return nil, err
			}
			off += 8 * t.dims
		}
		return n, nil
	}
	n.Children = make([]store.PageID, count)
	n.Lo = make([][]float64, count)
	n.Hi = make([][]float64, count)
	for i := 0; i < count; i++ {
		n.Children[i] = store.PageID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		n.Lo[i], _, err = store.DecodeFloats(buf[off:], t.dims)
		if err != nil {
			return nil, err
		}
		off += 8 * t.dims
		n.Hi[i], _, err = store.DecodeFloats(buf[off:], t.dims)
		if err != nil {
			return nil, err
		}
		off += 8 * t.dims
	}
	return n, nil
}

// nodeMBB computes a node's bounding box.
func (t *Tree) nodeMBB(n *Node) ([]float64, []float64) {
	lo := make([]float64, t.dims)
	hi := make([]float64, t.dims)
	for d := 0; d < t.dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	if n.Leaf {
		for i := range n.Entries {
			for d, v := range n.Entries[i].Point {
				if v < lo[d] {
					lo[d] = v
				}
				if v > hi[d] {
					hi[d] = v
				}
			}
		}
	} else {
		for i := range n.Children {
			for d := 0; d < t.dims; d++ {
				if n.Lo[i][d] < lo[d] {
					lo[d] = n.Lo[i][d]
				}
				if n.Hi[i][d] > hi[d] {
					hi[d] = n.Hi[i][d]
				}
			}
		}
	}
	return lo, hi
}

// BulkLoad replaces the tree contents with the given entries, packed in
// Hilbert order for locality (construction's low PA in Table 4 comes from
// bulk packing rather than repeated descents).
func (t *Tree) BulkLoad(entries []Entry) error {
	bits := 62 / t.dims
	if bits > 16 {
		bits = 16
	}
	if bits < 1 {
		bits = 1
	}
	h, err := sfc.NewHilbert(t.dims, bits)
	if err != nil {
		return fmt.Errorf("rtree: bulk load curve: %w", err)
	}
	scale := float64(uint64(1)<<uint(bits)-1) / t.maxCoord
	keyOf := func(e *Entry) uint64 {
		pt := make([]uint32, t.dims)
		for d, v := range e.Point {
			x := v * scale
			if x < 0 {
				x = 0
			}
			if x > float64(uint64(1)<<uint(bits)-1) {
				x = float64(uint64(1)<<uint(bits) - 1)
			}
			pt[d] = uint32(x)
		}
		return h.Encode(pt)
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	keys := make([]uint64, len(sorted))
	for i := range sorted {
		keys[i] = keyOf(&sorted[i])
	}
	sort.Sort(&byKey{keys, sorted})

	// Pack leaves.
	type packed struct {
		pid    store.PageID
		lo, hi []float64
	}
	var level []packed
	for start := 0; start < len(sorted); start += t.leafCap {
		end := start + t.leafCap
		if end > len(sorted) {
			end = len(sorted)
		}
		n := &Node{Leaf: true, Entries: sorted[start:end]}
		pid := t.pager.Alloc()
		t.writeNode(pid, n)
		lo, hi := t.nodeMBB(n)
		level = append(level, packed{pid, lo, hi})
	}
	if len(level) == 0 {
		t.root = t.pager.Alloc()
		t.writeNode(t.root, &Node{Leaf: true})
		t.size = 0
		return nil
	}
	// Group bottom-up.
	for len(level) > 1 {
		var next []packed
		for start := 0; start < len(level); start += t.intCap {
			end := start + t.intCap
			if end > len(level) {
				end = len(level)
			}
			n := &Node{Leaf: false}
			for _, c := range level[start:end] {
				n.Children = append(n.Children, c.pid)
				n.Lo = append(n.Lo, c.lo)
				n.Hi = append(n.Hi, c.hi)
			}
			pid := t.pager.Alloc()
			t.writeNode(pid, n)
			lo, hi := t.nodeMBB(n)
			next = append(next, packed{pid, lo, hi})
		}
		level = next
	}
	t.root = level[0].pid
	t.size = len(entries)
	return nil
}

type byKey struct {
	keys []uint64
	ents []Entry
}

func (b *byKey) Len() int           { return len(b.keys) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.ents[i], b.ents[j] = b.ents[j], b.ents[i]
}
