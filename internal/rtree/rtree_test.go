package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"metricindex/internal/store"
)

func randomEntries(n, dims int, span float64, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		p := make([]float64, dims)
		for d := range p {
			p[d] = rng.Float64() * span
		}
		es[i] = Entry{ID: int32(i), RAFOff: uint64(i * 100), Point: p}
	}
	return es
}

func bruteRange(es []Entry, lo, hi []float64) []int {
	var out []int
	for i := range es {
		if boxContains(lo, hi, es[i].Point) {
			out = append(out, int(es[i].ID))
		}
	}
	sort.Ints(out)
	return out
}

func searchIDs(t *testing.T, tr *Tree, lo, hi []float64) []int {
	t.Helper()
	var got []int
	if err := tr.Search(lo, hi, func(e *Entry) bool {
		got = append(got, int(e.ID))
		return true
	}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	sort.Ints(got)
	return got
}

func queryBoxes(dims int, span float64, seed int64) [][2][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var boxes [][2][]float64
	for i := 0; i < 12; i++ {
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for d := range lo {
			a := rng.Float64() * span
			b := a + rng.Float64()*span/3
			lo[d], hi[d] = a, b
		}
		boxes = append(boxes, [2][]float64{lo, hi})
	}
	return boxes
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBulkLoadSearch(t *testing.T) {
	for _, dims := range []int{1, 3, 5, 9} {
		es := randomEntries(2000, dims, 100, int64(dims))
		p := store.NewPager(512)
		tr, err := New(p, dims, 100)
		if err != nil {
			t.Fatalf("New(dims=%d): %v", dims, err)
		}
		if err := tr.BulkLoad(es); err != nil {
			t.Fatalf("BulkLoad: %v", err)
		}
		if tr.Len() != 2000 {
			t.Fatalf("Len=%d", tr.Len())
		}
		for _, box := range queryBoxes(dims, 100, int64(dims)+7) {
			want := bruteRange(es, box[0], box[1])
			got := searchIDs(t, tr, box[0], box[1])
			if !equal(got, want) {
				t.Fatalf("dims=%d: search mismatch got %d want %d entries", dims, len(got), len(want))
			}
		}
	}
}

func TestDynamicInsertSearch(t *testing.T) {
	dims := 4
	es := randomEntries(1500, dims, 100, 9)
	p := store.NewPager(512)
	tr, err := New(p, dims, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for _, box := range queryBoxes(dims, 100, 11) {
		want := bruteRange(es, box[0], box[1])
		got := searchIDs(t, tr, box[0], box[1])
		if !equal(got, want) {
			t.Fatalf("search mismatch: got %d want %d entries", len(got), len(want))
		}
	}
}

func TestDeleteThenSearch(t *testing.T) {
	dims := 3
	es := randomEntries(800, dims, 100, 13)
	p := store.NewPager(512)
	tr, _ := New(p, dims, 100)
	if err := tr.BulkLoad(es); err != nil {
		t.Fatal(err)
	}
	// Delete every third entry.
	var live []Entry
	for i := range es {
		if i%3 == 0 {
			if err := tr.Delete(int(es[i].ID), es[i].Point); err != nil {
				t.Fatalf("Delete(%d): %v", es[i].ID, err)
			}
		} else {
			live = append(live, es[i])
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(live))
	}
	for _, box := range queryBoxes(dims, 100, 17) {
		want := bruteRange(live, box[0], box[1])
		got := searchIDs(t, tr, box[0], box[1])
		if !equal(got, want) {
			t.Fatalf("post-delete mismatch: got %d want %d entries", len(got), len(want))
		}
	}
	if err := tr.Delete(int(es[0].ID), es[0].Point); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestMixedBulkAndDynamic(t *testing.T) {
	dims := 5
	base := randomEntries(1000, dims, 100, 19)
	extra := randomEntries(500, dims, 100, 23)
	for i := range extra {
		extra[i].ID += 1000
	}
	p := store.NewPager(512)
	tr, _ := New(p, dims, 100)
	if err := tr.BulkLoad(base); err != nil {
		t.Fatal(err)
	}
	for _, e := range extra {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]Entry(nil), base...), extra...)
	for _, box := range queryBoxes(dims, 100, 29) {
		want := bruteRange(all, box[0], box[1])
		got := searchIDs(t, tr, box[0], box[1])
		if !equal(got, want) {
			t.Fatalf("mixed mismatch: got %d want %d entries", len(got), len(want))
		}
	}
}

func TestPageTooSmall(t *testing.T) {
	p := store.NewPager(64)
	if _, err := New(p, 9, 100); err == nil {
		t.Fatal("9-dim entries cannot fit a 64-byte page")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	es := randomEntries(500, 2, 100, 31)
	p := store.NewPager(512)
	tr, _ := New(p, 2, 100)
	tr.BulkLoad(es)
	count := 0
	tr.Search([]float64{0, 0}, []float64{100, 100}, func(e *Entry) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d entries", count)
	}
}
