package pmtree

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the PM-tree (spec: docs/PERSISTENCE.md
// §PM-tree): the pager volume image followed by the mtree handle state.

const pmtreeFormatVersion = 1

func init() {
	persist.Register("PM-tree", loadPMTree)
}

// EncodeSnapshot writes the PM-tree payload.
func (t *PMTree) EncodeSnapshot(w *persist.Writer) error {
	w.U16(pmtreeFormatVersion)
	w.Blob(t.pager.Serialize())
	return t.tree.EncodeState(w)
}

func loadPMTree(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != pmtreeFormatVersion {
		return nil, nil, fmt.Errorf("pmtree: unsupported payload version %d", v)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	pager, err := store.LoadPager(blob)
	if err != nil {
		return nil, nil, err
	}
	tree, err := mtree.RestoreState(ds, pager, r)
	if err != nil {
		return nil, nil, err
	}
	if tree.NumPivots() == 0 {
		return nil, nil, fmt.Errorf("pmtree: snapshot holds a plain M-tree (no rings)")
	}
	return &PMTree{ds: ds, pager: pager, tree: tree}, pager, nil
}
