// Package pmtree exposes the PM-tree of [26] (§5.1) as a top-level index:
// an M-tree whose every entry additionally stores hyper-ring intervals
// (the cut-regions / MBB in pivot space) over the shared pivot set, pruned
// by Lemma 1 on the rings and Lemma 2 on the covering balls. The heavy
// lifting lives in internal/mtree with NumPivots > 0; this package wires
// it to the core.Index contract and owns the query-time pivot distances.
package pmtree

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/store"
)

// Options tunes construction.
type Options struct {
	// Seed drives split promotion sampling.
	Seed int64
}

// PMTree is the pivoting metric tree index.
type PMTree struct {
	ds    *core.Dataset
	pager *store.Pager
	tree  *mtree.Tree
}

// New builds a PM-tree over all live objects using the shared pivots.
// Objects are stored inside the tree nodes (which is why high-dimensional
// datasets need the 40 KB page size, §6.1).
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*PMTree, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("pmtree: no pivots")
	}
	tree, err := mtree.New(ds, pager, pivots, mtree.Options{NumPivots: len(pivots), Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	t := &PMTree{ds: ds, pager: pager, tree: tree}
	for _, id := range ds.LiveIDs() {
		if err := tree.Insert(id); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Name returns "PM-tree".
func (t *PMTree) Name() string { return "PM-tree" }

// Len returns the number of indexed objects.
func (t *PMTree) Len() int { return t.tree.Len() }

// RangeSearch answers MRQ(q, r) by depth-first traversal with ring
// (Lemma 1) and ball (Lemma 2) pruning.
func (t *PMTree) RangeSearch(q core.Object, r float64) ([]int, error) {
	return t.tree.RangeSearch(q, r, t.tree.QueryDists(q))
}

// KNNSearch answers MkNNQ(q, k) by best-first traversal in ascending
// lower-bound order.
func (t *PMTree) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	return t.tree.KNNSearch(q, k, t.tree.QueryDists(q))
}

// Insert adds the dataset object with the given id.
func (t *PMTree) Insert(id int) error { return t.tree.Insert(id) }

// Delete removes the object from its leaf.
func (t *PMTree) Delete(id int) error { return t.tree.Delete(id) }

// PageAccesses reports the pager's accesses.
func (t *PMTree) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *PMTree) ResetStats() { t.pager.ResetStats() }

// MemBytes is small: the PM-tree keeps only the pivot values and the
// leaf directory in memory.
func (t *PMTree) MemBytes() int64 { return int64(t.tree.Len()) * 12 }

// DiskBytes reports the tree's on-disk footprint (objects included, hence
// the largest of all indexes in Table 4).
func (t *PMTree) DiskBytes() int64 { return t.pager.DiskBytes() }
