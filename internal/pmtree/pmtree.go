// Package pmtree exposes the PM-tree of [26] (§5.1) as a top-level index:
// an M-tree whose every entry additionally stores hyper-ring intervals
// (the cut-regions / MBB in pivot space) over the shared pivot set, pruned
// by Lemma 1 on the rings and Lemma 2 on the covering balls. The heavy
// lifting lives in internal/mtree with NumPivots > 0; this package wires
// it to the core.Index contract and owns the query-time pivot distances.
package pmtree

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/mtree"
	"metricindex/internal/store"
)

// Options tunes construction.
type Options struct {
	// Seed drives split promotion sampling and bulk-load partitioning.
	Seed int64
	// Workers selects the build strategy: 0 keeps the paper's one-by-one
	// insertion build (the sequential methodology of §6.2); any other
	// value runs the partitioned bulk load of internal/mtree with that
	// many goroutines (1 = the bulk load run sequentially, negative =
	// GOMAXPROCS). The bulk load's page image is byte-identical for every
	// nonzero Workers value.
	Workers int
	// Partitions tunes the bulk load's partition count (0 = default).
	Partitions int
}

// PMTree is the pivoting metric tree index.
type PMTree struct {
	ds    *core.Dataset
	pager *store.Pager
	tree  *mtree.Tree
}

// New builds a PM-tree over all live objects using the shared pivots.
// Objects are stored inside the tree nodes (which is why high-dimensional
// datasets need the 40 KB page size, §6.1). Options.Workers != 0 switches
// from one-by-one insertion to the partitioned bulk load.
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*PMTree, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("pmtree: no pivots")
	}
	mopts := mtree.Options{NumPivots: len(pivots), Seed: opts.Seed}
	if opts.Workers != 0 {
		tree, err := mtree.Bulk(ds, pager, pivots, mopts,
			mtree.BulkOptions{Workers: opts.Workers, Partitions: opts.Partitions})
		if err != nil {
			return nil, err
		}
		return &PMTree{ds: ds, pager: pager, tree: tree}, nil
	}
	tree, err := mtree.New(ds, pager, pivots, mopts)
	if err != nil {
		return nil, err
	}
	t := &PMTree{ds: ds, pager: pager, tree: tree}
	for _, id := range ds.LiveIDs() {
		if err := tree.Insert(id); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Name returns "PM-tree".
func (t *PMTree) Name() string { return "PM-tree" }

// Len returns the number of indexed objects.
func (t *PMTree) Len() int { return t.tree.Len() }

// RangeSearch answers MRQ(q, r) by depth-first traversal with ring
// (Lemma 1) and ball (Lemma 2) pruning.
func (t *PMTree) RangeSearch(q core.Object, r float64) ([]int, error) {
	return t.tree.RangeSearch(q, r, t.tree.QueryDists(q))
}

// KNNSearch answers MkNNQ(q, k) by best-first traversal in ascending
// lower-bound order.
func (t *PMTree) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	return t.tree.KNNSearch(q, k, t.tree.QueryDists(q))
}

// Insert adds the dataset object with the given id.
func (t *PMTree) Insert(id int) error { return t.tree.Insert(id) }

// Delete removes the object from its leaf.
func (t *PMTree) Delete(id int) error { return t.tree.Delete(id) }

// PageAccesses reports the pager's accesses.
func (t *PMTree) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *PMTree) ResetStats() { t.pager.ResetStats() }

// MemBytes is small: the PM-tree keeps only the pivot values and the
// leaf directory in memory.
func (t *PMTree) MemBytes() int64 { return int64(t.tree.Len()) * 12 }

// DiskBytes reports the tree's on-disk footprint (objects included, hence
// the largest of all indexes in Table 4).
func (t *PMTree) DiskBytes() int64 { return t.pager.DiskBytes() }
