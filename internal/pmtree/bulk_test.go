package pmtree

import (
	"bytes"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// TestPMTreeEquivalence runs the shared metamorphic harness over the
// bulk-loaded PM-tree: workers=1 and workers=4 run the same partitioned
// bulk load, so every answer must be identical, correct against a linear
// scan, and invariant under insert-then-delete round trips.
func TestPMTreeEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 400, 7) {
		build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
			return New(ds, store.NewPager(1024), ed.Pivots, Options{Seed: 7, Workers: workers})
		}
		testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
	}
}

// TestPMTreeBulkPageImageIdentical proves the PM-tree bulk load writes a
// byte-identical volume for every worker count, and that the bulk-loaded
// tree satisfies the M-tree/PM-tree structural invariants.
func TestPMTreeBulkPageImageIdentical(t *testing.T) {
	ds := testutil.VectorDataset(900, 4, 100, core.L2{}, 7)
	pv := testutil.SpreadPivots(ds, 4)
	seqPager := store.NewPager(1024)
	seq, err := New(ds, seqPager, pv, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatalf("sequential bulk New: %v", err)
	}
	if err := seq.tree.Validate(); err != nil {
		t.Fatalf("bulk-loaded PM-tree invariants: %v", err)
	}
	for _, workers := range []int{-1, 2, 4} {
		parPager := store.NewPager(1024)
		if _, err := New(ds, parPager, pv, Options{Seed: 7, Workers: workers}); err != nil {
			t.Fatalf("parallel bulk New(workers=%d): %v", workers, err)
		}
		if seqPager.Pages() != parPager.Pages() {
			t.Fatalf("workers=%d: page counts differ: %d vs %d", workers, seqPager.Pages(), parPager.Pages())
		}
		for i := 0; i < seqPager.Pages(); i++ {
			pa, err := seqPager.Read(store.PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			pb, err := parPager.Read(store.PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pa, pb) {
				t.Fatalf("workers=%d: page %d differs from the sequential bulk load", workers, i)
			}
		}
	}
}

// TestPMTreeBulkMatchesInsertionAnswers cross-checks the two build
// strategies: the bulk-loaded tree clusters pages differently than the
// insertion build, but MRQ answers (sorted id sets) must coincide.
func TestPMTreeBulkMatchesInsertionAnswers(t *testing.T) {
	ds := testutil.VectorDataset(600, 4, 100, core.L2{}, 9)
	pv := testutil.SpreadPivots(ds, 4)
	ins, err := New(ds, store.NewPager(1024), pv, Options{Seed: 7})
	if err != nil {
		t.Fatalf("insertion New: %v", err)
	}
	blk, err := New(ds, store.NewPager(1024), pv, Options{Seed: 7, Workers: 4})
	if err != nil {
		t.Fatalf("bulk New: %v", err)
	}
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			a, err := ins.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := blk.RangeSearch(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("MRQ(r=%v) sizes differ: %d vs %d", r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("MRQ(r=%v) differs at %d: %d vs %d", r, i, a[i], b[i])
				}
			}
		}
	}
}
