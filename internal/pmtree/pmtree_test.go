package pmtree

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func build(t *testing.T, ds *core.Dataset, pageSize int) (*PMTree, *store.Pager) {
	t.Helper()
	p := store.NewPager(pageSize)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, p, pv, Options{Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, p
}

func TestPMTreeMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 7)
	idx, _ := build(t, ds, 1024)
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		for _, k := range []int{1, 7, 40, 400} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestPMTreeWords(t *testing.T) {
	ds := testutil.WordDataset(250, 11)
	idx, _ := build(t, ds, 512)
	for qs := int64(0); qs < 3; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 9)
	}
}

func TestPMTreeInsertDelete(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 13)
	idx, _ := build(t, ds, 1024)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range testutil.Radii(ds, q) {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 15)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
	}
}

func TestPMTreeStats(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 17)
	idx, p := build(t, ds, 1024)
	p.ResetStats()
	q := testutil.RandomQuery(ds, 1)
	if _, err := idx.KNNSearch(q, 5); err != nil {
		t.Fatal(err)
	}
	if idx.PageAccesses() == 0 {
		t.Fatal("PM-tree queries must cost page accesses")
	}
	if idx.DiskBytes() == 0 {
		t.Fatal("PM-tree stores everything on disk")
	}
	if idx.Name() != "PM-tree" {
		t.Fatalf("Name = %q", idx.Name())
	}
}
