package pmtree

import (
	"testing"

	"metricindex/internal/plan"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// TestPMTreeFilterEquivalence runs the shared filtered-search harness.
// The PM-tree does not implement core.AcceptSearcher, so the forced
// probe leg must degrade to post-filtering and still answer exactly the
// brute-force filter-then-scan — the degradation path is the point of
// adopting the harness here.
func TestPMTreeFilterEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(false, 250, 7) {
		idx, err := New(ed.DS, store.NewPager(0), ed.Pivots, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: New: %v", ed.Name, err)
		}
		if plan.Capable(idx) {
			t.Fatalf("%s: PM-tree unexpectedly probe-capable; drop the degradation comment", ed.Name)
		}
		testutil.CheckFilterEquivalence(t, ed, idx)
	}
}
