package core

import (
	"math"
	"math/rand"
	"testing"
)

// Benchmark fixtures: one query against a block of rows, the shape every
// pivot table's hot loop takes. benchDim matches the LA workload used by
// cmd/benchjson; benchRows is large enough that per-call overhead
// (interface dispatch, bounds checks) is visible next to the arithmetic.
const (
	benchDim  = 4
	benchRows = 1024
)

func benchVectors(b *testing.B) (Vector, []Object, []float64, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	q := make(Vector, benchDim)
	for d := range q {
		q[d] = rng.Float64() * 100
	}
	objs := make([]Object, benchRows)
	flat := make([]float64, benchRows*benchDim)
	for i := range objs {
		v := make(Vector, benchDim)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		objs[i] = v
		copy(flat[i*benchDim:], v)
	}
	return q, objs, flat, benchDim
}

// BenchmarkL2Scalar is the pairwise loop every index used before the
// batch API: one interface call and one dim check per row.
func BenchmarkL2Scalar(b *testing.B) {
	q, objs, _, _ := benchVectors(b)
	out := make([]float64, len(objs))
	var m Metric = L2{}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, o := range objs {
			out[i] = m.Distance(q, o)
		}
	}
	sinkFloats(b, out)
}

// BenchmarkL2Rows is DistanceMany over the same rows: one interface call
// and one dim check per batch, but still a pointer chase per row.
func BenchmarkL2Rows(b *testing.B) {
	q, objs, _, _ := benchVectors(b)
	out := make([]float64, len(objs))
	bm := BatchMetric(L2{})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		bm.DistanceMany(q, objs, out)
	}
	sinkFloats(b, out)
}

// BenchmarkL2Flat is DistanceFlat over one contiguous row-major block —
// the struct-of-arrays fast path the flat pivot tables ride.
func BenchmarkL2Flat(b *testing.B) {
	q, _, flat, dim := benchVectors(b)
	out := make([]float64, benchRows)
	bm := BatchMetric(L2{})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		bm.DistanceFlat(q, flat, dim, out)
	}
	sinkFloats(b, out)
}

// BenchmarkL2SqFlat skips the per-row sqrt — the pruning fast path used
// with L2SqExceeds.
func BenchmarkL2SqFlat(b *testing.B) {
	q, _, flat, dim := benchVectors(b)
	out := make([]float64, benchRows)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		L2{}.DistanceSqFlat(q, flat, dim, out)
	}
	sinkFloats(b, out)
}

// BenchmarkL2Flat32 is the float32 kernel over a widened query: half the
// memory traffic per row at the same answer precision contract.
func BenchmarkL2Flat32(b *testing.B) {
	q, _, flat, dim := benchVectors(b)
	q32 := make([]float32, len(q))
	flat32 := make([]float32, len(flat))
	for i, x := range q {
		q32[i] = float32(x)
	}
	for i, x := range flat {
		flat32[i] = float32(x)
	}
	out := make([]float64, benchRows)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for row := 0; row < benchRows; row++ {
			out[row] = math.Sqrt(l2SqKernel32(q32, flat32[row*dim:(row+1)*dim]))
		}
	}
	sinkFloats(b, out)
}

// lpPowReference is the pre-fast-path Lp implementation: math.Pow per
// coordinate plus the final root, for any order. Kept verbatim as the
// "before" half of the Lp benchmark pair.
func lpPowReference(p float64, x, y Vector) float64 {
	var s float64
	for i := range x {
		s += math.Pow(math.Abs(x[i]-y[i]), p)
	}
	return math.Pow(s, 1/p)
}

// BenchmarkLpPowFallback measures the generic math.Pow path at order 2 —
// what Lp{P: 2}.Distance cost before the integer-order fast paths.
func BenchmarkLpPowFallback(b *testing.B) {
	q, objs, _, _ := benchVectors(b)
	out := make([]float64, len(objs))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, o := range objs {
			out[i] = lpPowReference(2, q, o.(Vector))
		}
	}
	sinkFloats(b, out)
}

// BenchmarkLpIntegerFastPath measures Lp{P: 2}.Distance with the
// multiplication fast path and hoisted root — the "after" half.
func BenchmarkLpIntegerFastPath(b *testing.B) {
	q, objs, _, _ := benchVectors(b)
	out := make([]float64, len(objs))
	m := Lp{P: 2}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, o := range objs {
			out[i] = m.Distance(q, o)
		}
	}
	sinkFloats(b, out)
}

// sinkFloats defeats dead-code elimination of the benchmark results.
func sinkFloats(b *testing.B, out []float64) {
	b.Helper()
	var s float64
	for _, x := range out {
		s += x
	}
	if math.IsNaN(s) {
		b.Fatal("NaN in benchmark output")
	}
}
