package core

import (
	"fmt"
	"math"
	"unicode/utf8"
)

// Metric is a distance function over Objects. Implementations must satisfy
// the four metric axioms (symmetry, non-negativity, identity, triangle
// inequality) for the pivot-filtering lemmas to be correct.
type Metric interface {
	// Distance returns d(a, b). It panics if the objects have a type the
	// metric does not understand; that is a programming error, not a
	// runtime condition.
	Distance(a, b Object) float64
	// Name identifies the metric in logs and experiment output.
	Name() string
	// Discrete reports whether the metric only returns integer-valued
	// distances. BKT and FQT require a discrete metric.
	Discrete() bool
}

// L1 is the Manhattan distance over Vector objects (the paper uses it for
// the Color dataset).
type L1 struct{}

// Distance returns the L1-norm distance between two Vectors (or two
// Vector32s). It delegates to the shared batch kernel, so scalar and
// batched calls agree bit for bit.
func (L1) Distance(a, b Object) float64 {
	if x, ok := a.(Vector32); ok {
		y := b.(Vector32)
		checkDim("L1", len(x), len(y))
		return l1Kernel32(x, y)
	}
	x, y := a.(Vector), b.(Vector)
	checkDim("L1", len(x), len(y))
	return l1Kernel64(x, y)
}

// Name returns "L1".
func (L1) Name() string { return "L1" }

// Discrete reports false: L1 over float coordinates is continuous.
func (L1) Discrete() bool { return false }

// L2 is the Euclidean distance over Vector objects (the paper uses it for
// the LA dataset).
type L2 struct{}

// Distance returns the Euclidean distance between two Vectors (or two
// Vector32s). It delegates to the shared batch kernel — squared
// accumulation with the sqrt deferred past the loop — so scalar and
// batched calls agree bit for bit.
func (L2) Distance(a, b Object) float64 {
	if x, ok := a.(Vector32); ok {
		y := b.(Vector32)
		checkDim("L2", len(x), len(y))
		return math.Sqrt(l2SqKernel32(x, y))
	}
	x, y := a.(Vector), b.(Vector)
	checkDim("L2", len(x), len(y))
	return math.Sqrt(l2SqKernel64(x, y))
}

// Name returns "L2".
func (L2) Name() string { return "L2" }

// Discrete reports false.
func (L2) Discrete() bool { return false }

// LInf is the Chebyshev (L∞) distance over Vector objects.
type LInf struct{}

// Distance returns the maximum per-coordinate difference between two
// Vectors (or two Vector32s), via the shared batch kernel.
func (LInf) Distance(a, b Object) float64 {
	if x, ok := a.(Vector32); ok {
		y := b.(Vector32)
		checkDim("Linf", len(x), len(y))
		return linfKernel32(x, y)
	}
	x, y := a.(Vector), b.(Vector)
	checkDim("Linf", len(x), len(y))
	return linfKernel64(x, y)
}

// Name returns "Linf".
func (LInf) Name() string { return "Linf" }

// Discrete reports false.
func (LInf) Discrete() bool { return false }

// Lp is the general Minkowski distance of order P (P >= 1) over Vectors.
type Lp struct {
	// P is the norm order; P=1 and P=2 behave like L1 and L2.
	P float64
}

// Distance returns the Lp-norm distance between two Vectors. Integer
// orders take multiplication fast paths — P=1 and P=2 reuse the L1/L2
// kernels, P=3 cubes by multiplication — and only the final root (hoisted
// out of the loop) pays a math.Pow/Cbrt. Fractional orders fall back to
// the general per-coordinate math.Pow.
func (m Lp) Distance(a, b Object) float64 {
	x, y := a.(Vector), b.(Vector)
	checkDim("Lp", len(x), len(y))
	switch m.P {
	case 1:
		return l1Kernel64(x, y)
	case 2:
		return math.Sqrt(l2SqKernel64(x, y))
	case 3:
		var s float64
		for i := range x {
			d := math.Abs(x[i] - y[i])
			s += d * d * d
		}
		return math.Cbrt(s)
	}
	var s float64
	for i := range x {
		s += math.Pow(math.Abs(x[i]-y[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name returns "Lp" annotated with the order.
func (m Lp) Name() string { return fmt.Sprintf("L%.3g", m.P) }

// Discrete reports false.
func (Lp) Discrete() bool { return false }

// IntLInf is the Chebyshev distance over IntVector objects. It is
// integer-valued, so it qualifies as a discrete metric for BKT and FQT
// (the paper's Synthetic dataset uses it).
type IntLInf struct{}

// Distance returns the maximum per-coordinate absolute difference, via
// the shared batch kernel.
func (IntLInf) Distance(a, b Object) float64 {
	x, y := a.(IntVector), b.(IntVector)
	checkDim("IntLinf", len(x), len(y))
	return intLinfKernel(x, y)
}

// Name returns "IntLinf".
func (IntLInf) Name() string { return "IntLinf" }

// Discrete reports true.
func (IntLInf) Discrete() bool { return true }

// Edit is the Levenshtein edit distance over Word objects (the paper uses
// it for the Words dataset). It is integer-valued and therefore discrete.
type Edit struct{}

// Distance returns the minimum number of single-character insertions,
// deletions, and substitutions transforming one word into the other.
func (Edit) Distance(a, b Object) float64 {
	s, t := string(a.(Word)), string(b.(Word))
	return float64(editDistance(s, t))
}

// Name returns "edit".
func (Edit) Name() string { return "edit" }

// Discrete reports true.
func (Edit) Discrete() bool { return true }

// editDistance is a two-row dynamic program with an early-exit fast path
// for equal strings. The unit of editing is the rune, not the byte: a
// byte-wise DP would charge 2 edits for replacing a multi-byte character
// (d("café", "cafe") must be 1, not 2).
func editDistance(s, t string) int {
	if s == t {
		return 0
	}
	if isASCII(s) && isASCII(t) {
		return editDistanceASCII(s, t)
	}
	return editDistanceRunes([]rune(s), []rune(t))
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// editDistanceASCII runs the DP directly over the bytes — for ASCII input
// bytes and runes coincide, so no conversion is needed on the hot path.
func editDistanceASCII(s, t string) int {
	if len(s) == 0 {
		return len(t)
	}
	if len(t) == 0 {
		return len(s)
	}
	// Keep the shorter string as the row to bound memory.
	if len(s) < len(t) {
		s, t = t, s
	}
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = i
		si := s[i-1]
		for j := 1; j <= len(t); j++ {
			cost := 1
			if si == t[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution
			if d := prev[j] + 1; d < m {
				m = d // deletion
			}
			if d := cur[j-1] + 1; d < m {
				m = d // insertion
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(t)]
}

// editDistanceRunes is the same DP over decoded runes.
func editDistanceRunes(s, t []rune) int {
	if len(s) == 0 {
		return len(t)
	}
	if len(t) == 0 {
		return len(s)
	}
	if len(s) < len(t) {
		s, t = t, s
	}
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = i
		si := s[i-1]
		for j := 1; j <= len(t); j++ {
			cost := 1
			if si == t[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution
			if d := prev[j] + 1; d < m {
				m = d // deletion
			}
			if d := cur[j-1] + 1; d < m {
				m = d // insertion
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(t)]
}

// checkDim validates one pair (or one batch entry) and names the metric
// in the panic so a mismatch is attributable without a stack dive.
func checkDim(metric string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("core: %s: dimensionality mismatch %d vs %d", metric, a, b))
	}
}
