package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// specials are the awkward float64 values the batch/scalar agreement
// must survive: the kernels reorder accumulation, and only a genuinely
// shared pipeline keeps NaN and ±Inf propagation bit-identical.
var specials = []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1e308, -1e308, 5e-324}

func randVector(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		if rng.Intn(8) == 0 {
			v[i] = specials[rng.Intn(len(specials))]
		} else {
			v[i] = rng.NormFloat64() * 100
		}
	}
	return v
}

func randVector32(rng *rand.Rand, dim int) Vector32 {
	v := make(Vector32, dim)
	for i := range v {
		if rng.Intn(8) == 0 {
			v[i] = float32(specials[rng.Intn(len(specials))])
		} else {
			v[i] = float32(rng.NormFloat64() * 100)
		}
	}
	return v
}

// sameBits reports bit-for-bit float equality (NaN == NaN, +0 != -0):
// the agreement contract of BatchMetric, stronger than ==.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestDistanceManyMatchesScalar checks every built-in BatchMetric against
// pairwise scalar Distance, bit for bit, across dimensions that exercise
// the unrolled lanes (0..4 remainders) and special values.
func TestDistanceManyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []BatchMetric{L1{}, L2{}, LInf{}}
	for _, m := range metrics {
		for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 13, 64} {
			q := randVector(rng, dim)
			objs := make([]Object, 33)
			for i := range objs {
				objs[i] = randVector(rng, dim)
			}
			out := make([]float64, len(objs))
			m.DistanceMany(q, objs, out)
			for i, o := range objs {
				if want := m.Distance(q, o); !sameBits(out[i], want) {
					t.Fatalf("%s dim %d: DistanceMany[%d] = %v, scalar = %v", m.Name(), dim, i, out[i], want)
				}
			}

			q32 := randVector32(rng, dim)
			objs32 := make([]Object, 33)
			for i := range objs32 {
				objs32[i] = randVector32(rng, dim)
			}
			m.DistanceMany(q32, objs32, out)
			for i, o := range objs32 {
				if want := m.Distance(q32, o); !sameBits(out[i], want) {
					t.Fatalf("%s dim %d float32: DistanceMany[%d] = %v, scalar = %v", m.Name(), dim, i, out[i], want)
				}
			}
		}
	}
}

// TestDistanceFlatMatchesScalar checks the flat kernels over packed
// row-major coordinates against scalar Distance on the same rows.
func TestDistanceFlatMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	metrics := []BatchMetric{L1{}, L2{}, LInf{}}
	for _, m := range metrics {
		for _, dim := range []int{1, 3, 4, 6, 16} {
			q := randVector(rng, dim)
			const rows = 29
			flat := make([]float64, 0, rows*dim)
			objs := make([]Vector, rows)
			for i := range objs {
				objs[i] = randVector(rng, dim)
				flat = append(flat, objs[i]...)
			}
			out := make([]float64, rows)
			m.DistanceFlat(q, flat, dim, out)
			for i, o := range objs {
				if want := m.Distance(q, o); !sameBits(out[i], want) {
					t.Fatalf("%s dim %d: DistanceFlat[%d] = %v, scalar = %v", m.Name(), dim, i, out[i], want)
				}
			}
		}
	}
}

// TestIntLInfBatchMatchesScalar checks the integer Chebyshev kernel both
// through DistanceMany on IntVectors and through DistanceFlat on widened
// coordinates.
func TestIntLInfBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := IntLInf{}
	for _, dim := range []int{1, 2, 4, 5, 9} {
		q := make(IntVector, dim)
		for i := range q {
			q[i] = int32(rng.Intn(2001) - 1000)
		}
		objs := make([]Object, 21)
		flat := make([]float64, 0, len(objs)*dim)
		for i := range objs {
			v := make(IntVector, dim)
			for j := range v {
				v[j] = int32(rng.Intn(2001) - 1000)
			}
			objs[i] = v
			for _, x := range v {
				flat = append(flat, float64(x))
			}
		}
		out := make([]float64, len(objs))
		m.DistanceMany(q, objs, out)
		for i, o := range objs {
			if want := m.Distance(q, o); !sameBits(out[i], want) {
				t.Fatalf("IntLinf dim %d: DistanceMany[%d] = %v, scalar = %v", dim, i, out[i], want)
			}
		}
		q64 := make([]float64, dim)
		for i, x := range q {
			q64[i] = float64(x)
		}
		m.DistanceFlat(q64, flat, dim, out)
		for i, o := range objs {
			if want := m.Distance(q, o); !sameBits(out[i], want) {
				t.Fatalf("IntLinf dim %d: DistanceFlat[%d] = %v, scalar = %v", dim, i, out[i], want)
			}
		}
	}
}

// TestBatchDimMismatchPanics checks the batch validation panics carry the
// metric name — the per-batch replacement of the per-pair checkDim must
// not lose diagnosability.
func TestBatchDimMismatchPanics(t *testing.T) {
	cases := []struct {
		metric BatchMetric
		name   string
		run    func(m BatchMetric)
	}{
		{L2{}, "L2", func(m BatchMetric) {
			m.DistanceMany(Vector{1, 2}, []Object{Vector{1, 2, 3}}, make([]float64, 1))
		}},
		{L1{}, "L1", func(m BatchMetric) {
			m.DistanceFlat([]float64{1, 2}, []float64{1, 2, 3}, 3, make([]float64, 1))
		}},
		{LInf{}, "Linf", func(m BatchMetric) {
			m.DistanceFlat([]float64{1, 2, 3}, []float64{1, 2, 3, 4}, 3, make([]float64, 2))
		}},
		{IntLInf{}, "IntLinf", func(m BatchMetric) {
			m.DistanceMany(IntVector{1}, []Object{IntVector{1, 2}}, make([]float64, 1))
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic on dimension mismatch", c.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, c.name) {
					t.Fatalf("%s: panic %v does not name the metric", c.name, r)
				}
			}()
			c.run(c.metric)
		}()
	}
}

// TestL2SqExceedsNeverRejectsWithin checks the squared-space prune is
// conservative: for any candidate with true distance <= r it must return
// false, whatever rounding r*r suffered.
func TestL2SqExceedsNeverRejectsWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20000; trial++ {
		d := rng.Float64() * 1e3
		sq := d * d
		// Any radius at or above the true distance must keep the candidate.
		r := d * (1 + rng.Float64())
		if L2SqExceeds(sq, r) {
			t.Fatalf("L2SqExceeds(%v, %v) rejected a candidate with true distance %v <= r", sq, r, d)
		}
		if L2SqExceeds(sq, d) {
			t.Fatalf("L2SqExceeds(%v, %v) rejected the boundary candidate", sq, d)
		}
	}
	if !L2SqExceeds(1, -1) {
		t.Fatal("negative radius must exceed")
	}
}

// TestLpIntegerOrdersMatchGeneric checks the P=1/2/3 fast paths of Lp
// against L1/L2 and the generic closed form.
func TestLpIntegerOrdersMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(12)
		a, b := make(Vector, dim), make(Vector, dim)
		for i := 0; i < dim; i++ {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		if got, want := (Lp{P: 1}).Distance(a, b), (L1{}).Distance(a, b); !sameBits(got, want) {
			t.Fatalf("Lp{1} = %v, L1 = %v", got, want)
		}
		if got, want := (Lp{P: 2}).Distance(a, b), (L2{}).Distance(a, b); !sameBits(got, want) {
			t.Fatalf("Lp{2} = %v, L2 = %v", got, want)
		}
		var s3 float64
		for i := 0; i < dim; i++ {
			d := math.Abs(a[i] - b[i])
			s3 += d * d * d
		}
		want3 := math.Cbrt(s3)
		if got := (Lp{P: 3}).Distance(a, b); math.Abs(got-want3) > 1e-9*(1+want3) {
			t.Fatalf("Lp{3} = %v, want %v", got, want3)
		}
	}
}

// FuzzBatchKernels fuzzes the batch/scalar agreement with raw bit
// patterns, so arbitrary NaN payloads, subnormals and infinities flow
// through both pipelines.
func FuzzBatchKernels(f *testing.F) {
	f.Add(uint64(0), uint64(0x7FF8000000000001), uint64(0xFFF0000000000000), uint64(1))
	f.Add(uint64(0x3FF0000000000000), uint64(0x4000000000000000), uint64(0x0000000000000001), uint64(0x8000000000000000))
	f.Fuzz(func(t *testing.T, b0, b1, b2, b3 uint64) {
		q := Vector{math.Float64frombits(b0), math.Float64frombits(b1)}
		o := Vector{math.Float64frombits(b2), math.Float64frombits(b3)}
		out := make([]float64, 1)
		for _, m := range []BatchMetric{L1{}, L2{}, LInf{}} {
			want := m.Distance(q, o)
			m.DistanceMany(q, []Object{o}, out)
			if !sameBits(out[0], want) {
				t.Fatalf("%s: DistanceMany = %x, scalar = %x", m.Name(), math.Float64bits(out[0]), math.Float64bits(want))
			}
			m.DistanceFlat(q, o, 2, out)
			if !sameBits(out[0], want) {
				t.Fatalf("%s: DistanceFlat = %x, scalar = %x", m.Name(), math.Float64bits(out[0]), math.Float64bits(want))
			}
		}
	})
}
