package core

import "testing"

// TestEditDistanceRunes is the regression test for the byte-wise DP bug:
// multi-byte characters must count as one edit unit, not one per byte
// (the wordsearch example serves accented dictionaries through Edit).
func TestEditDistanceRunes(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"café", "cafe", 1},      // é is 2 bytes; byte DP said 2
		{"cafe", "café", 1},      // symmetry
		{"café", "café", 0},      // identity with multi-byte content
		{"über", "uber", 1},      // leading multi-byte rune
		{"naïve", "naive", 1},    // middle substitution
		{"élan", "lané", 2},      // delete front é, append é
		{"日本語", "日本", 1},         // 3-byte runes, one deletion
		{"日本語", "語本日", 2},        // swap outer runes = 2 substitutions
		{"œuf", "oeuf", 2},       // œ vs "oe": 1 sub + 1 insert
		{"", "café", 4},          // empty vs 4 runes (5 bytes)
		{"résumé", "resume", 2},  // two accents
		{"kitten", "sitting", 3}, // classic ASCII case still holds
		{"", "", 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := editDistance(c.b, c.a); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEditMetricCountsRunes(t *testing.T) {
	var m Edit
	if d := m.Distance(Word("café"), Word("cafe")); d != 1 {
		t.Fatalf("Edit.Distance(café, cafe) = %v, want 1", d)
	}
}

// TestKNNHeapZeroK is the regression test for the k<1→1 coercion: a
// non-positive k must yield an empty answer, not one neighbor.
func TestKNNHeapZeroK(t *testing.T) {
	for _, k := range []int{0, -1, -10} {
		h := NewKNNHeap(k)
		h.Push(1, 0.5)
		h.Push(2, 0.1)
		if h.Len() != 0 {
			t.Fatalf("NewKNNHeap(%d) retained %d candidates", k, h.Len())
		}
		if res := h.Result(); len(res) != 0 {
			t.Fatalf("NewKNNHeap(%d).Result() = %v, want empty", k, res)
		}
		if r := h.Radius(); r >= 0 {
			t.Fatalf("NewKNNHeap(%d).Radius() = %v, want -Inf (prune everything)", k, r)
		}
	}
}

func TestBruteForceKNNZeroK(t *testing.T) {
	ds := NewDataset(NewSpace(L2{}), []Object{Vector{0, 0}, Vector{1, 1}})
	if res := BruteForceKNN(ds, Vector{0, 0}, 0); len(res) != 0 {
		t.Fatalf("BruteForceKNN(k=0) = %v, want empty", res)
	}
	if res := BruteForceKNN(ds, Vector{0, 0}, 1); len(res) != 1 {
		t.Fatalf("BruteForceKNN(k=1) returned %d results", len(res))
	}
}

// TestDatasetNilSlots covers the sparse-mirror contract sharding relies
// on: nil entries are empty slots, InsertAt fills a chosen id, and the
// free stack never hands out an occupied slot.
func TestDatasetNilSlots(t *testing.T) {
	ds := NewDataset(NewSpace(L2{}), []Object{Vector{0}, nil, Vector{2}, nil})
	if ds.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (nil slots are empty)", ds.Count())
	}
	if got := ds.LiveIDs(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("LiveIDs = %v", got)
	}
	if err := ds.InsertAt(1, Vector{1}); err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 3 || !ds.Live(1) {
		t.Fatalf("after InsertAt(1): count %d, live(1) %v", ds.Count(), ds.Live(1))
	}
	if err := ds.InsertAt(1, Vector{9}); err == nil {
		t.Fatal("InsertAt on an occupied slot should error")
	}
	if err := ds.InsertAt(-1, Vector{9}); err == nil {
		t.Fatal("InsertAt at a negative id should error")
	}
	if err := ds.InsertAt(0, nil); err == nil {
		t.Fatal("InsertAt of nil should error")
	}
	// Growing beyond the current length leaves the gap as empty slots.
	if err := ds.InsertAt(6, Vector{6}); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 7 || !ds.Live(6) || ds.Live(5) {
		t.Fatalf("after InsertAt(6): len %d live(6)=%v live(5)=%v", ds.Len(), ds.Live(6), ds.Live(5))
	}
	// Plain Insert must reuse only genuinely free slots: 3, 4, 5 remain.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		id := ds.Insert(Vector{float64(10 + i)})
		if id != 3 && id != 4 && id != 5 {
			t.Fatalf("Insert reused id %d, want one of the free slots 3,4,5", id)
		}
		if seen[id] {
			t.Fatalf("Insert handed out id %d twice", id)
		}
		seen[id] = true
	}
	if ds.Count() != 7 {
		t.Fatalf("final Count = %d, want 7", ds.Count())
	}
}
