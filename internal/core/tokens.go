package core

import (
	"runtime"
	"sync"
)

// TokenPool bounds the *total* concurrency of a recursive parallel build.
// A build that spawns a goroutine per tree node would otherwise multiply
// its worker budget at every level of the recursion; the pool hands out
// Workers-1 tokens (the calling goroutine is the +1) shared by every
// concurrently building node, so total concurrency never exceeds Workers
// no matter how wide the structure fans out.
//
// The try-else-inline discipline — attempt to offload, run on the caller
// when no token is free — is what makes the scheme deadlock-free: a
// builder never blocks waiting for a token that one of its own children
// might hold.
//
// A nil *TokenPool is valid and means "sequential": TryGo reports false
// and Slots reports zero, so callers need no special-casing.
type TokenPool struct {
	tokens chan struct{}
}

// NewTokenPool sizes a pool for the given worker budget: 0 or 1 returns
// nil (build sequentially), negative uses GOMAXPROCS, anything else
// grants workers-1 tokens.
func NewTokenPool(workers int) *TokenPool {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return nil
	}
	return &TokenPool{tokens: make(chan struct{}, workers-1)}
}

// TryGo runs fn on a new goroutine if a token is free, reporting whether
// it did; wg tracks the spawned work. When no token is free (or the pool
// is nil) it reports false and the caller must run fn inline.
func (p *TokenPool) TryGo(wg *sync.WaitGroup, fn func()) bool {
	if p == nil {
		return false
	}
	select {
	case p.tokens <- struct{}{}:
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.tokens }()
			fn()
		}()
		return true
	default:
		return false
	}
}

// Slots returns the number of tokens (extra goroutines beyond the
// caller); zero for a nil pool.
func (p *TokenPool) Slots() int {
	if p == nil {
		return 0
	}
	return cap(p.tokens)
}

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output bits all depend on all input bits. It seeds BKT's
// content-hashed pivot choice and the sharded engine's hash
// partitioner.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ParallelNodeCutoff is the node size below which the tree builders
// (BKT, FQT, MVPT) keep construction on the calling goroutine: small
// subtrees finish faster than goroutine handoff.
const ParallelNodeCutoff = 1024

// ChunkedFill splits [0, n) into Slots()+1 contiguous chunks and runs
// fill over them through the pool: each chunk is offloaded if a token
// is free, otherwise run inline; the last chunk always stays on the
// caller. Returns after every chunk completes. fill must be safe to
// call concurrently for disjoint ranges. A nil pool runs fill(0, n)
// inline.
func (p *TokenPool) ChunkedFill(n int, fill func(start, end int)) {
	if n <= 0 {
		return
	}
	if p == nil {
		fill(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + p.Slots()) / (p.Slots() + 1)
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		s, e := start, end
		if end == n || !p.TryGo(&wg, func() { fill(s, e) }) {
			fill(s, e) // last chunk, or no token free: stay inline
		}
	}
	wg.Wait()
}
