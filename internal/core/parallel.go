package core

import (
	"runtime"
	"sync"
)

// ParallelFor splits the half-open range [0, n) into one contiguous chunk
// per worker and invokes fn(start, end) for each chunk. It is the shared
// chunked-worker helper behind every parallel index construction (§6.2:
// "since objects are independent of each other, the pre-computed distances
// for each object can be computed in parallel").
//
// workers semantics: 0 or 1 runs fn inline on the calling goroutine (no
// concurrency, no goroutine overhead); negative uses GOMAXPROCS; any other
// value spawns min(workers, n) goroutines. ParallelFor returns after every
// chunk completes. fn must be safe to call concurrently for disjoint
// ranges.
func ParallelFor(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
}

// BuildDistCols computes the struct-of-arrays pivot-distance table shared
// by the table-family indexes (LAESA, CPT): ids32[row] = ids[row] and
// cols[i][row] = d(object ids[row], pivotVals[i]), one contiguous column
// per pivot, with the rows fanned out across workers goroutines
// (ParallelFor semantics). Each worker computes its rows through the
// batch kernel (one DistanceMany per row); row order follows ids
// regardless of worker count, so the table is identical to a sequential
// build.
func BuildDistCols(ds *Dataset, ids []int, pivotVals []Object, workers int) ([]int32, [][]float64) {
	l := len(pivotVals)
	ids32 := make([]int32, len(ids))
	cols := make([][]float64, l)
	for i := range cols {
		cols[i] = make([]float64, len(ids))
	}
	sp := ds.Space()
	ParallelFor(len(ids), workers, func(start, end int) {
		qd := make([]float64, l)
		for row := start; row < end; row++ {
			id := ids[row]
			ids32[row] = int32(id)
			sp.DistanceMany(ds.Object(id), pivotVals, qd)
			for i := range cols {
				cols[i][row] = qd[i]
			}
		}
	})
	return ids32, cols
}
