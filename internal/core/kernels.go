package core

import (
	"fmt"
	"math"
)

// This file is the batched distance core: 4-wide unrolled,
// bounds-check-hoisted kernels over flat coordinate slices, the optional
// BatchMetric capability the built-in vector metrics implement, and the
// PreKernel bundle the pivot tables use to verify candidates without
// interface dispatch. The scalar Metric.Distance implementations delegate
// to the same kernels, so batched and scalar answers agree bit for bit by
// construction (see docs/KERNELS.md for the contract).

// BatchMetric is the optional batching capability of a Metric. A metric
// that implements it computes one query against many objects per call,
// letting indexes amortize interface dispatch, dimension validation, and
// compdists accounting across a whole batch. Results must be bit-for-bit
// identical to calling Distance pairwise — callers (and the metamorphic
// equivalence harness) rely on that.
//
// Scalar Distance remains the universal fallback: user-defined metrics
// and the Word/edit metric do not implement BatchMetric, and every caller
// must keep working without it.
type BatchMetric interface {
	Metric
	// DistanceMany sets out[i] = Distance(q, objs[i]) for every i.
	// len(out) must be at least len(objs).
	DistanceMany(q Object, objs []Object, out []float64)
	// DistanceFlat sets out[i] = d(q, flat[i*dim:(i+1)*dim]) for the
	// len(flat)/dim row-major coordinate rows in flat. Dimensions are
	// validated once per call, not per pair.
	DistanceFlat(q []float64, flat []float64, dim int, out []float64)
}

// checkFlat validates one DistanceFlat call up front (the per-batch
// replacement for the per-pair checkDim) and returns the row count.
func checkFlat(name string, q, flat []float64, dim int, out []float64) int {
	if dim <= 0 || len(q) != dim {
		checkDim(name, len(q), dim)
		panic(fmt.Sprintf("core: %s: DistanceFlat with non-positive dim %d", name, dim))
	}
	if len(flat)%dim != 0 {
		panic(fmt.Sprintf("core: %s: DistanceFlat block of %d floats is not a multiple of dim %d", name, len(flat), dim))
	}
	n := len(flat) / dim
	if len(out) < n {
		panic(fmt.Sprintf("core: %s: DistanceFlat out slice holds %d of %d rows", name, len(out), n))
	}
	return n
}

// l1Kernel64 is the shared Manhattan kernel: 4 independent accumulators
// so the compiler can keep the adds in flight, with the bounds check on y
// hoisted out of the loop.
//
//metriclint:noalloc
func l1Kernel64(x, y []float64) float64 {
	y = y[:len(x)] // hoist the bounds check
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += math.Abs(x[i] - y[i])
		s1 += math.Abs(x[i+1] - y[i+1])
		s2 += math.Abs(x[i+2] - y[i+2])
		s3 += math.Abs(x[i+3] - y[i+3])
	}
	for ; i < len(x); i++ {
		s0 += math.Abs(x[i] - y[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// l2SqKernel64 accumulates the squared Euclidean distance, deferring the
// sqrt to the caller (Finish) so pruning comparisons can stay in squared
// space.
//
//metriclint:noalloc
func l2SqKernel64(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// linfKernel64 is the Chebyshev kernel. max is insensitive to lane order,
// and NaN lanes are dropped by both the lane and the merge comparisons,
// matching the scalar semantics exactly.
//
//metriclint:noalloc
func linfKernel64(x, y []float64) float64 {
	y = y[:len(x)]
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		if d := math.Abs(x[i] - y[i]); d > m0 {
			m0 = d
		}
		if d := math.Abs(x[i+1] - y[i+1]); d > m1 {
			m1 = d
		}
		if d := math.Abs(x[i+2] - y[i+2]); d > m2 {
			m2 = d
		}
		if d := math.Abs(x[i+3] - y[i+3]); d > m3 {
			m3 = d
		}
	}
	for ; i < len(x); i++ {
		if d := math.Abs(x[i] - y[i]); d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// The float32 kernels widen each coordinate to float64 before the
// subtraction and accumulate in float64. Vector32 halves the memory
// bandwidth of a scan while keeping the accumulation error identical to
// the float64 pipeline over the widened values — the pruning-safety
// property docs/KERNELS.md spells out.

//metriclint:noalloc
func l1Kernel32(x, y []float32) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += math.Abs(float64(x[i]) - float64(y[i]))
		s1 += math.Abs(float64(x[i+1]) - float64(y[i+1]))
		s2 += math.Abs(float64(x[i+2]) - float64(y[i+2]))
		s3 += math.Abs(float64(x[i+3]) - float64(y[i+3]))
	}
	for ; i < len(x); i++ {
		s0 += math.Abs(float64(x[i]) - float64(y[i]))
	}
	return (s0 + s1) + (s2 + s3)
}

//metriclint:noalloc
func l2SqKernel32(x, y []float32) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		d0 := float64(x[i]) - float64(y[i])
		d1 := float64(x[i+1]) - float64(y[i+1])
		d2 := float64(x[i+2]) - float64(y[i+2])
		d3 := float64(x[i+3]) - float64(y[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := float64(x[i]) - float64(y[i])
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

//metriclint:noalloc
func linfKernel32(x, y []float32) float64 {
	y = y[:len(x)]
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		if d := math.Abs(float64(x[i]) - float64(y[i])); d > m0 {
			m0 = d
		}
		if d := math.Abs(float64(x[i+1]) - float64(y[i+1])); d > m1 {
			m1 = d
		}
		if d := math.Abs(float64(x[i+2]) - float64(y[i+2])); d > m2 {
			m2 = d
		}
		if d := math.Abs(float64(x[i+3]) - float64(y[i+3])); d > m3 {
			m3 = d
		}
	}
	for ; i < len(x); i++ {
		if d := math.Abs(float64(x[i]) - float64(y[i])); d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// intLinfKernel is the Chebyshev kernel over int32 coordinates. The
// int32 maximum converts to float64 exactly, so it agrees bit for bit
// with linfKernel64 over the widened coordinates.
//
//metriclint:noalloc
func intLinfKernel(x, y []int32) float64 {
	y = y[:len(x)]
	var m0, m1, m2, m3 int32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		if d := absInt32(x[i] - y[i]); d > m0 {
			m0 = d
		}
		if d := absInt32(x[i+1] - y[i+1]); d > m1 {
			m1 = d
		}
		if d := absInt32(x[i+2] - y[i+2]); d > m2 {
			m2 = d
		}
		if d := absInt32(x[i+3] - y[i+3]); d > m3 {
			m3 = d
		}
	}
	for ; i < len(x); i++ {
		if d := absInt32(x[i] - y[i]); d > m0 {
			m0 = d
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return float64(m0)
}

//metriclint:noalloc
func absInt32(d int32) int32 {
	if d < 0 {
		return -d
	}
	return d
}

// DistanceMany implements BatchMetric for L1.
func (m L1) DistanceMany(q Object, objs []Object, out []float64) {
	distanceManyVec(m, q, objs, out)
}

// DistanceFlat implements BatchMetric for L1.
func (L1) DistanceFlat(q []float64, flat []float64, dim int, out []float64) {
	n := checkFlat("L1", q, flat, dim, out)
	for i := 0; i < n; i++ {
		out[i] = l1Kernel64(q, flat[i*dim:(i+1)*dim])
	}
}

// DistanceMany implements BatchMetric for L2.
func (m L2) DistanceMany(q Object, objs []Object, out []float64) {
	distanceManyVec(m, q, objs, out)
}

// DistanceFlat implements BatchMetric for L2. The sqrt is applied once
// per pair, after the accumulation loop.
func (L2) DistanceFlat(q []float64, flat []float64, dim int, out []float64) {
	n := checkFlat("L2", q, flat, dim, out)
	for i := 0; i < n; i++ {
		out[i] = math.Sqrt(l2SqKernel64(q, flat[i*dim:(i+1)*dim]))
	}
}

// DistanceSqFlat is the squared-distance fast path: it fills out with
// squared Euclidean distances, leaving the sqrt to the caller. Pruning
// comparisons against a radius r can run in squared space via
// L2SqExceeds and only pay the sqrt for surviving candidates.
func (L2) DistanceSqFlat(q []float64, flat []float64, dim int, out []float64) {
	n := checkFlat("L2", q, flat, dim, out)
	for i := 0; i < n; i++ {
		out[i] = l2SqKernel64(q, flat[i*dim:(i+1)*dim])
	}
}

// L2SqExceeds conservatively reports whether a squared distance sq
// provably exceeds radius r, i.e. sqrt(sq) > r with margin for the
// rounding of r*r and the sqrt. False means "maybe within r": the caller
// must still compare the exact sqrt. It never returns true for a
// candidate whose true distance is <= r.
//
//metriclint:noalloc
func L2SqExceeds(sq, r float64) bool {
	if r < 0 {
		return true // distances are non-negative; anything exceeds
	}
	rr := r * r
	return sq > rr+rr*1e-12
}

// DistanceMany implements BatchMetric for LInf.
func (m LInf) DistanceMany(q Object, objs []Object, out []float64) {
	distanceManyVec(m, q, objs, out)
}

// DistanceFlat implements BatchMetric for LInf.
func (LInf) DistanceFlat(q []float64, flat []float64, dim int, out []float64) {
	n := checkFlat("Linf", q, flat, dim, out)
	for i := 0; i < n; i++ {
		out[i] = linfKernel64(q, flat[i*dim:(i+1)*dim])
	}
}

// DistanceMany implements BatchMetric for IntLInf over IntVector objects.
func (IntLInf) DistanceMany(q Object, objs []Object, out []float64) {
	x := q.(IntVector)
	for i, o := range objs {
		y := o.(IntVector)
		checkDim("IntLinf", len(x), len(y))
		out[i] = intLinfKernel(x, y)
	}
}

// DistanceFlat implements BatchMetric for IntLInf over widened float64
// coordinates (int32 values are exact in float64, so the result is
// bit-for-bit the integer Chebyshev distance).
func (IntLInf) DistanceFlat(q []float64, flat []float64, dim int, out []float64) {
	n := checkFlat("IntLinf", q, flat, dim, out)
	for i := 0; i < n; i++ {
		out[i] = linfKernel64(q, flat[i*dim:(i+1)*dim])
	}
}

// distanceManyVec dispatches one query against many vector objects for a
// built-in Lp-family metric: the query's concrete type (Vector or
// Vector32) is resolved once per batch, and each object pays one type
// assertion plus one length compare before entering the shared kernel.
func distanceManyVec(m Metric, q Object, objs []Object, out []float64) {
	name := m.Name()
	if x, ok := q.(Vector32); ok {
		for i, o := range objs {
			y := o.(Vector32)
			checkDim(name, len(x), len(y))
			out[i] = vecKernel32(m, x, y)
		}
		return
	}
	x := q.(Vector)
	for i, o := range objs {
		y := o.(Vector)
		checkDim(name, len(x), len(y))
		out[i] = vecKernel64(m, x, y)
	}
}

//metriclint:noalloc
func vecKernel64(m Metric, x, y Vector) float64 {
	switch m.(type) {
	case L1:
		return l1Kernel64(x, y)
	case L2:
		return math.Sqrt(l2SqKernel64(x, y))
	case LInf:
		return linfKernel64(x, y)
	}
	panic("core: vector kernel dispatch on unsupported metric")
}

//metriclint:noalloc
func vecKernel32(m Metric, x, y Vector32) float64 {
	switch m.(type) {
	case L1:
		return l1Kernel32(x, y)
	case L2:
		return math.Sqrt(l2SqKernel32(x, y))
	case LInf:
		return linfKernel32(x, y)
	}
	panic("core: vector kernel dispatch on unsupported metric")
}

// PreKernel is the resolved flat-coordinate kernel set of a vector
// metric, the capability the pivot tables detect once at build time and
// then call without any interface dispatch on the per-candidate hot
// path. Pre computes a monotone "pre-distance" (the L1 sum, the squared
// L2 sum, the Chebyshev max); Finish maps it to the metric distance
// (sqrt for L2, identity otherwise); Exceeds conservatively reports that
// a pre-distance provably exceeds a radius so the Finish can be skipped
// for clear rejects — it never rejects a candidate whose true distance
// is within the radius, so callers re-check survivors exactly.
type PreKernel struct {
	Pre64   func(q, o []float64) float64
	Pre32   func(q, o []float32) float64
	Finish  func(pre float64) float64
	Exceeds func(pre, r float64) bool
}

//metriclint:noalloc
func finishIdentity(pre float64) float64 { return pre }

//metriclint:noalloc
func exceedsIdentity(pre, r float64) bool { return pre > r }

//metriclint:noalloc
func finishSqrt(pre float64) float64 { return math.Sqrt(pre) }

// PreKernelFor resolves the flat kernel set of a metric, reporting false
// for metrics without one (user metrics, Lp with fractional order,
// Edit). IntLInf resolves to the float64 Chebyshev kernel: its int32
// coordinates widen to float64 exactly.
func PreKernelFor(m Metric) (PreKernel, bool) {
	switch m.(type) {
	case L1:
		return PreKernel{Pre64: l1Kernel64, Pre32: l1Kernel32, Finish: finishIdentity, Exceeds: exceedsIdentity}, true
	case L2:
		return PreKernel{Pre64: l2SqKernel64, Pre32: l2SqKernel32, Finish: finishSqrt, Exceeds: L2SqExceeds}, true
	case LInf, IntLInf:
		return PreKernel{Pre64: linfKernel64, Pre32: linfKernel32, Finish: finishIdentity, Exceeds: exceedsIdentity}, true
	}
	return PreKernel{}, false
}
