package core

import "math"

// This file implements the pivot-filtering machinery of paper §2.3 as
// reusable primitives. All functions operate on pivot-space coordinates:
// qd[i] = d(q, p_i) for the query and od[i] = d(o, p_i) for an object.

// PivotLowerBound returns max_i |d(q,p_i) - d(o,p_i)|, the tightest lower
// bound of d(q, o) available from the pivots (the quantity D(q,o) of §3.2).
//
//metriclint:noalloc
func PivotLowerBound(qd, od []float64) float64 {
	var m float64
	for i := range qd {
		d := math.Abs(qd[i] - od[i])
		if d > m {
			m = d
		}
	}
	return m
}

// PivotUpperBound returns min_i d(q,p_i) + d(o,p_i), an upper bound of
// d(q, o) by the triangle inequality.
//
//metriclint:noalloc
func PivotUpperBound(qd, od []float64) float64 {
	m := math.Inf(1)
	for i := range qd {
		if s := qd[i] + od[i]; s < m {
			m = s
		}
	}
	return m
}

// PruneObject implements Lemma 1 (pivot filtering) for a single object:
// it reports true when the object provably lies outside MRQ(q, r), i.e.
// when its pivot-space image falls outside the search region SR(q).
//
//metriclint:noalloc
func PruneObject(qd, od []float64, r float64) bool {
	for i := range qd {
		if od[i] > qd[i]+r || od[i] < qd[i]-r {
			return true
		}
	}
	return false
}

// ValidateObject implements Lemma 4 (pivot validation): it reports true
// when the object is provably inside MRQ(q, r) — some pivot satisfies
// d(o,p_i) <= r - d(q,p_i) — so the actual distance computation can be
// skipped for result membership (not for result distance).
//
//metriclint:noalloc
func ValidateObject(qd, od []float64, r float64) bool {
	for i := range qd {
		if od[i] <= r-qd[i] {
			return true
		}
	}
	return false
}

// MBB is a minimum bounding box in pivot space: for each pivot i it bounds
// the pre-computed distances of the contained objects to that pivot within
// [Lo[i], Hi[i]]. The zero-value MBB is empty (Lo=+Inf > Hi=-Inf per
// dimension after Reset).
type MBB struct {
	Lo []float64
	Hi []float64
}

// NewMBB returns an empty MBB over l pivots.
func NewMBB(l int) MBB {
	m := MBB{Lo: make([]float64, l), Hi: make([]float64, l)}
	m.Reset()
	return m
}

// Reset empties the box.
func (m MBB) Reset() {
	for i := range m.Lo {
		m.Lo[i] = math.Inf(1)
		m.Hi[i] = math.Inf(-1)
	}
}

// Empty reports whether the box contains no points.
func (m MBB) Empty() bool { return len(m.Lo) == 0 || m.Lo[0] > m.Hi[0] }

// Clone deep-copies the box.
func (m MBB) Clone() MBB {
	c := MBB{Lo: make([]float64, len(m.Lo)), Hi: make([]float64, len(m.Hi))}
	copy(c.Lo, m.Lo)
	copy(c.Hi, m.Hi)
	return c
}

// Extend grows the box to cover the pivot-space point od.
func (m MBB) Extend(od []float64) {
	for i, v := range od {
		if v < m.Lo[i] {
			m.Lo[i] = v
		}
		if v > m.Hi[i] {
			m.Hi[i] = v
		}
	}
}

// ExtendMBB grows the box to cover another box.
func (m MBB) ExtendMBB(o MBB) {
	for i := range m.Lo {
		if o.Lo[i] < m.Lo[i] {
			m.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > m.Hi[i] {
			m.Hi[i] = o.Hi[i]
		}
	}
}

// PruneMBB implements Lemma 1 on a whole region: it reports true when the
// box provably contains no result of MRQ(q, r), i.e. when it does not
// intersect the search region SR(q).
func (m MBB) PruneMBB(qd []float64, r float64) bool {
	if m.Empty() {
		return true
	}
	for i := range qd {
		if m.Lo[i] > qd[i]+r || m.Hi[i] < qd[i]-r {
			return true
		}
	}
	return false
}

// MinDist returns a lower bound of d(q, o) for every object o inside the
// box: the L∞ distance from the query's pivot-space image to the box. It
// drives best-first kNN traversal over MBBs.
func (m MBB) MinDist(qd []float64) float64 {
	if m.Empty() {
		return math.Inf(1)
	}
	var best float64
	for i := range qd {
		var d float64
		switch {
		case qd[i] < m.Lo[i]:
			d = m.Lo[i] - qd[i]
		case qd[i] > m.Hi[i]:
			d = qd[i] - m.Hi[i]
		}
		if d > best {
			best = d
		}
	}
	return best
}

// PruneBall implements Lemma 2 (range-pivot filtering) for ball regions:
// a ball with center-distance dqp = d(q, R.p) and radius rad can be pruned
// when d(q, R.p) > R.r + r.
func PruneBall(dqp, rad, r float64) bool {
	return dqp > rad+r
}

// BallMinDist returns max(0, d(q,p) - R.r), the lower bound of d(q, o) for
// objects inside a ball region.
func BallMinDist(dqp, rad float64) float64 {
	if d := dqp - rad; d > 0 {
		return d
	}
	return 0
}

// PruneHyperplane implements Lemma 3 (double-pivot filtering): the
// partition of pivot p_i can be pruned when d(q,p_i) - d(q,p_j) > 2r for
// some other pivot p_j. Given dqi = d(q,p_i) and the minimum distance
// dqmin = min_j d(q,p_j), the check reduces to dqi - dqmin > 2r.
func PruneHyperplane(dqi, dqmin, r float64) bool {
	return dqi-dqmin > 2*r
}

// HyperplaneMinDist returns the Lemma 3 lower bound (d(q,p_i)-d(q,p_j))/2
// maximized over j, clamped at zero, for best-first traversal of
// hyperplane partitions.
func HyperplaneMinDist(dqi, dqmin float64) float64 {
	if d := (dqi - dqmin) / 2; d > 0 {
		return d
	}
	return 0
}
