package core

import "math"

// This file implements the pivot-filtering machinery of paper §2.3 as
// reusable primitives. All functions operate on pivot-space coordinates:
// qd[i] = d(q, p_i) for the query and od[i] = d(o, p_i) for an object.

// PivotLowerBound returns max_i |d(q,p_i) - d(o,p_i)|, the tightest lower
// bound of d(q, o) available from the pivots (the quantity D(q,o) of §3.2).
//
//metriclint:noalloc
func PivotLowerBound(qd, od []float64) float64 {
	var m float64
	for i := range qd {
		d := math.Abs(qd[i] - od[i])
		if d > m {
			m = d
		}
	}
	return m
}

// PivotUpperBound returns min_i d(q,p_i) + d(o,p_i), an upper bound of
// d(q, o) by the triangle inequality.
//
//metriclint:noalloc
func PivotUpperBound(qd, od []float64) float64 {
	m := math.Inf(1)
	for i := range qd {
		if s := qd[i] + od[i]; s < m {
			m = s
		}
	}
	return m
}

// PruneObject implements Lemma 1 (pivot filtering) for a single object:
// it reports true when the object provably lies outside MRQ(q, r), i.e.
// when its pivot-space image falls outside the search region SR(q).
//
//metriclint:noalloc
func PruneObject(qd, od []float64, r float64) bool {
	for i := range qd {
		if od[i] > qd[i]+r || od[i] < qd[i]-r {
			return true
		}
	}
	return false
}

// SurviveColumns compacts into sur the table rows of [base, rows) that
// pass Lemma 1 at radius r over struct-of-arrays pivot columns: a row
// survives iff no pivot i has |qd[i] - cols[i][row]| definitely above r
// (the same NaN-keeping sense as PruneObject). The first column is
// scanned at unit stride over the whole range; each later column is
// checked only for the rows still standing, so the total work matches
// PruneObject's per-row early exit while every memory access stays a
// sequential column read. sur must hold rows-base entries; the returned
// slice aliases it, with absolute row numbers in increasing order.
//
//metriclint:noalloc
func SurviveColumns(sur []int32, qd []float64, cols [][]float64, base, rows int, r float64) []int32 {
	m := 0
	if len(cols) == 0 {
		for row := base; row < rows; row++ {
			sur[m] = int32(row)
			m++
		}
		return sur[:m]
	}
	hi, lo := qd[0]+r, qd[0]-r
	col := cols[0][:rows]
	row := base
	// Manual 4-way unroll: the rolled loop retires ~4 cycles/row on the
	// dependent load-compare-branch chain; unrolling overlaps four rows
	// and runs ~3x faster at every survival rate.
	for ; row+4 <= rows; row += 4 {
		d0, d1, d2, d3 := col[row], col[row+1], col[row+2], col[row+3]
		if !(d0 > hi || d0 < lo) {
			sur[m] = int32(row)
			m++
		}
		if !(d1 > hi || d1 < lo) {
			sur[m] = int32(row + 1)
			m++
		}
		if !(d2 > hi || d2 < lo) {
			sur[m] = int32(row + 2)
			m++
		}
		if !(d3 > hi || d3 < lo) {
			sur[m] = int32(row + 3)
			m++
		}
	}
	for ; row < rows; row++ {
		if d := col[row]; d > hi || d < lo {
			continue
		}
		sur[m] = int32(row)
		m++
	}
	for c := 1; c < len(cols); c++ {
		m = compactColumn(sur, m, cols[c], qd[c]+r, qd[c]-r)
	}
	return sur[:m]
}

// compactColumn filters the first m survivors in sur against one column's
// [lo, hi] interval, compacting in place (reads run ahead of writes), and
// returns the new count. Shared by SurviveColumns and SurviveColumnsQuant.
//
//metriclint:noalloc
func compactColumn(sur []int32, m int, col []float64, hi, lo float64) int {
	w := 0
	i := 0
	for ; i+4 <= m; i += 4 {
		r0, r1, r2, r3 := sur[i], sur[i+1], sur[i+2], sur[i+3]
		d0, d1, d2, d3 := col[r0], col[r1], col[r2], col[r3]
		if !(d0 > hi || d0 < lo) {
			sur[w] = r0
			w++
		}
		if !(d1 > hi || d1 < lo) {
			sur[w] = r1
			w++
		}
		if !(d2 > hi || d2 < lo) {
			sur[w] = r2
			w++
		}
		if !(d3 > hi || d3 < lo) {
			sur[w] = r3
			w++
		}
	}
	for ; i < m; i++ {
		row := sur[i]
		if d := col[row]; d > hi || d < lo {
			continue
		}
		sur[w] = row
		w++
	}
	return w
}

// SurviveColumnsIndexed is SurviveColumns for tables whose columns store
// per-row pivot references (EPT): column c of row `row` holds the
// distance to pivot pcols[c][row], whose query distance is
// qd[pcols[c][row]].
//
//metriclint:noalloc
func SurviveColumnsIndexed(sur []int32, qd []float64, pcols [][]int32, dcols [][]float64, base, rows int, r float64) []int32 {
	m := 0
	if len(dcols) == 0 {
		for row := base; row < rows; row++ {
			sur[m] = int32(row)
			m++
		}
		return sur[:m]
	}
	pcol := pcols[0][:rows]
	dcol := dcols[0][:rows]
	row := base
	// Same 4-way unroll as SurviveColumns; the extra pivot-index gather
	// stays in cache (the pool is small).
	for ; row+4 <= rows; row += 4 {
		q0, q1, q2, q3 := qd[pcol[row]], qd[pcol[row+1]], qd[pcol[row+2]], qd[pcol[row+3]]
		d0, d1, d2, d3 := dcol[row], dcol[row+1], dcol[row+2], dcol[row+3]
		if !(d0 > q0+r || d0 < q0-r) {
			sur[m] = int32(row)
			m++
		}
		if !(d1 > q1+r || d1 < q1-r) {
			sur[m] = int32(row + 1)
			m++
		}
		if !(d2 > q2+r || d2 < q2-r) {
			sur[m] = int32(row + 2)
			m++
		}
		if !(d3 > q3+r || d3 < q3-r) {
			sur[m] = int32(row + 3)
			m++
		}
	}
	for ; row < rows; row++ {
		q := qd[pcol[row]]
		if d := dcol[row]; d > q+r || d < q-r {
			continue
		}
		sur[m] = int32(row)
		m++
	}
	for c := 1; c < len(dcols); c++ {
		pcol := pcols[c]
		dcol := dcols[c]
		w := 0
		i := 0
		for ; i+4 <= m; i += 4 {
			r0, r1, r2, r3 := sur[i], sur[i+1], sur[i+2], sur[i+3]
			q0, q1, q2, q3 := qd[pcol[r0]], qd[pcol[r1]], qd[pcol[r2]], qd[pcol[r3]]
			d0, d1, d2, d3 := dcol[r0], dcol[r1], dcol[r2], dcol[r3]
			if !(d0 > q0+r || d0 < q0-r) {
				sur[w] = r0
				w++
			}
			if !(d1 > q1+r || d1 < q1-r) {
				sur[w] = r1
				w++
			}
			if !(d2 > q2+r || d2 < q2-r) {
				sur[w] = r2
				w++
			}
			if !(d3 > q3+r || d3 < q3-r) {
				sur[w] = r3
				w++
			}
		}
		for ; i < m; i++ {
			row := sur[i]
			q := qd[pcol[row]]
			if d := dcol[row]; d > q+r || d < q-r {
				continue
			}
			sur[w] = row
			w++
		}
		m = w
	}
	return sur[:m]
}

// PruneRowAt re-applies Lemma 1 to one table row across pivot columns —
// the per-survivor recheck that tightens a SurviveColumns sweep done at
// a stale (larger) kNN radius back to the exact per-row pruning of the
// scalar scan, so verified-candidate sets (and thus compdists and disk
// reads) match the row-at-a-time algorithm exactly.
//
//metriclint:noalloc
func PruneRowAt(qd []float64, cols [][]float64, row int, r float64) bool {
	for c := range cols {
		q := qd[c]
		if d := cols[c][row]; d > q+r || d < q-r {
			return true
		}
	}
	return false
}

// PruneRowIndexedAt is PruneRowAt for pivot-reference columns (EPT).
//
//metriclint:noalloc
func PruneRowIndexedAt(qd []float64, pcols [][]int32, dcols [][]float64, row int, r float64) bool {
	for c := range dcols {
		q := qd[pcols[c][row]]
		if d := dcols[c][row]; d > q+r || d < q-r {
			return true
		}
	}
	return false
}

// ValidateObject implements Lemma 4 (pivot validation): it reports true
// when the object is provably inside MRQ(q, r) — some pivot satisfies
// d(o,p_i) <= r - d(q,p_i) — so the actual distance computation can be
// skipped for result membership (not for result distance).
//
//metriclint:noalloc
func ValidateObject(qd, od []float64, r float64) bool {
	for i := range qd {
		if od[i] <= r-qd[i] {
			return true
		}
	}
	return false
}

// MBB is a minimum bounding box in pivot space: for each pivot i it bounds
// the pre-computed distances of the contained objects to that pivot within
// [Lo[i], Hi[i]]. The zero-value MBB is empty (Lo=+Inf > Hi=-Inf per
// dimension after Reset).
type MBB struct {
	Lo []float64
	Hi []float64
}

// NewMBB returns an empty MBB over l pivots.
func NewMBB(l int) MBB {
	m := MBB{Lo: make([]float64, l), Hi: make([]float64, l)}
	m.Reset()
	return m
}

// Reset empties the box.
func (m MBB) Reset() {
	for i := range m.Lo {
		m.Lo[i] = math.Inf(1)
		m.Hi[i] = math.Inf(-1)
	}
}

// Empty reports whether the box contains no points.
func (m MBB) Empty() bool { return len(m.Lo) == 0 || m.Lo[0] > m.Hi[0] }

// Clone deep-copies the box.
func (m MBB) Clone() MBB {
	c := MBB{Lo: make([]float64, len(m.Lo)), Hi: make([]float64, len(m.Hi))}
	copy(c.Lo, m.Lo)
	copy(c.Hi, m.Hi)
	return c
}

// Extend grows the box to cover the pivot-space point od.
func (m MBB) Extend(od []float64) {
	for i, v := range od {
		if v < m.Lo[i] {
			m.Lo[i] = v
		}
		if v > m.Hi[i] {
			m.Hi[i] = v
		}
	}
}

// ExtendMBB grows the box to cover another box.
func (m MBB) ExtendMBB(o MBB) {
	for i := range m.Lo {
		if o.Lo[i] < m.Lo[i] {
			m.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > m.Hi[i] {
			m.Hi[i] = o.Hi[i]
		}
	}
}

// PruneMBB implements Lemma 1 on a whole region: it reports true when the
// box provably contains no result of MRQ(q, r), i.e. when it does not
// intersect the search region SR(q).
func (m MBB) PruneMBB(qd []float64, r float64) bool {
	if m.Empty() {
		return true
	}
	for i := range qd {
		if m.Lo[i] > qd[i]+r || m.Hi[i] < qd[i]-r {
			return true
		}
	}
	return false
}

// MinDist returns a lower bound of d(q, o) for every object o inside the
// box: the L∞ distance from the query's pivot-space image to the box. It
// drives best-first kNN traversal over MBBs.
func (m MBB) MinDist(qd []float64) float64 {
	if m.Empty() {
		return math.Inf(1)
	}
	var best float64
	for i := range qd {
		var d float64
		switch {
		case qd[i] < m.Lo[i]:
			d = m.Lo[i] - qd[i]
		case qd[i] > m.Hi[i]:
			d = qd[i] - m.Hi[i]
		}
		if d > best {
			best = d
		}
	}
	return best
}

// PruneBall implements Lemma 2 (range-pivot filtering) for ball regions:
// a ball with center-distance dqp = d(q, R.p) and radius rad can be pruned
// when d(q, R.p) > R.r + r.
func PruneBall(dqp, rad, r float64) bool {
	return dqp > rad+r
}

// BallMinDist returns max(0, d(q,p) - R.r), the lower bound of d(q, o) for
// objects inside a ball region.
func BallMinDist(dqp, rad float64) float64 {
	if d := dqp - rad; d > 0 {
		return d
	}
	return 0
}

// PruneHyperplane implements Lemma 3 (double-pivot filtering): the
// partition of pivot p_i can be pruned when d(q,p_i) - d(q,p_j) > 2r for
// some other pivot p_j. Given dqi = d(q,p_i) and the minimum distance
// dqmin = min_j d(q,p_j), the check reduces to dqi - dqmin > 2r.
func PruneHyperplane(dqi, dqmin, r float64) bool {
	return dqi-dqmin > 2*r
}

// HyperplaneMinDist returns the Lemma 3 lower bound (d(q,p_i)-d(q,p_j))/2
// maximized over j, clamped at zero, for best-first traversal of
// hyperplane partitions.
func HyperplaneMinDist(dqi, dqmin float64) float64 {
	if d := (dqi - dqmin) / 2; d > 0 {
		return d
	}
	return 0
}
