package core

// Attribute metadata for filtered (hybrid) search: every dataset object
// may carry a small bag of typed fields — ints, floats, strings, and
// tag sets — that predicates of the filter clause evaluate against.
// Attrs ride alongside the object itself: they are stored per slot in
// the Dataset, cloned by epoch snapshots, and persisted through the
// snapshot/WAL formats, but they never participate in the metric — the
// distance function sees only the Object.

// AttrKind discriminates the typed variants of an AttrValue. The
// numeric values are frozen: they appear in the MXSNAP/MXWAL/MIDX wire
// encodings (see docs/PERSISTENCE.md).
type AttrKind uint8

const (
	// AttrInt is a signed 64-bit integer field.
	AttrInt AttrKind = 1
	// AttrFloat is a float64 field.
	AttrFloat AttrKind = 2
	// AttrString is a string field compared by exact equality.
	AttrString AttrKind = 3
	// AttrTags is a set of string tags; equality and IN match any
	// element of the set.
	AttrTags AttrKind = 4
)

// AttrValue is one typed attribute value. The zero value is invalid
// (Kind 0); construct values with IntValue, FloatValue, StringValue, or
// TagsValue.
type AttrValue struct {
	kind AttrKind
	i    int64
	f    float64
	s    string
	tags []string
}

// IntValue builds an integer attribute value.
func IntValue(v int64) AttrValue { return AttrValue{kind: AttrInt, i: v} }

// FloatValue builds a float attribute value.
func FloatValue(v float64) AttrValue { return AttrValue{kind: AttrFloat, f: v} }

// StringValue builds a string attribute value.
func StringValue(v string) AttrValue { return AttrValue{kind: AttrString, s: v} }

// TagsValue builds a tag-set attribute value. The slice is owned by the
// value afterwards.
func TagsValue(tags ...string) AttrValue { return AttrValue{kind: AttrTags, tags: tags} }

// Kind returns the variant of the value.
func (v AttrValue) Kind() AttrKind { return v.kind }

// Int returns the integer payload (meaningful for AttrInt).
func (v AttrValue) Int() int64 { return v.i }

// Float returns the float payload (meaningful for AttrFloat).
func (v AttrValue) Float() float64 { return v.f }

// Str returns the string payload (meaningful for AttrString).
func (v AttrValue) Str() string { return v.s }

// Tags returns the tag-set payload (meaningful for AttrTags). Callers
// must not mutate the returned slice.
//
//metriclint:ignore read-only view by contract, not a defensive copy
func (v AttrValue) Tags() []string { return v.tags }

// Numeric returns the value as a float64 and whether the value is
// numeric at all. Int and float attributes compare against predicate
// constants in this widened domain, so `price < 10` works identically
// whether price was stored as an int or a float.
//
//metriclint:noalloc
func (v AttrValue) Numeric() (float64, bool) {
	switch v.kind {
	case AttrInt:
		return float64(v.i), true
	case AttrFloat:
		return v.f, true
	}
	return 0, false
}

// Equal reports deep equality of two attribute values.
func (v AttrValue) Equal(w AttrValue) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case AttrInt:
		return v.i == w.i
	case AttrFloat:
		return v.f == w.f
	case AttrString:
		return v.s == w.s
	case AttrTags:
		if len(v.tags) != len(w.tags) {
			return false
		}
		for i := range v.tags {
			if v.tags[i] != w.tags[i] {
				return false
			}
		}
		return true
	}
	return true
}

// Attrs is the attribute bag of one object: field name → typed value.
// A nil map means "no attributes"; predicates referencing a missing
// field simply do not match (they evaluate to false, never error).
type Attrs map[string]AttrValue

// Equal reports deep equality of two attribute bags (nil equals empty).
func (a Attrs) Equal(b Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the bag (tag slices included), nil for
// nil.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		if v.kind == AttrTags {
			v.tags = append([]string(nil), v.tags...)
		}
		out[k] = v
	}
	return out
}

// Accept is an attribute predicate compiled down to an id test: it
// reports whether the object with the given identifier satisfies the
// query's filter. Probe-filtering indexes call it on every candidate
// that survives the geometric pruning, *before* the distance
// computation, so non-matching objects cost no compdists.
type Accept func(id int) bool

// AcceptSearcher is the probe-filter capability: an index that can push
// an attribute predicate into its candidate-verification step. Answers
// must be exactly the filtered subset of the unfiltered answers — the
// accept test may only ever be applied before (or instead of) a
// distance computation, never in place of the geometric pruning
// guarantees. A nil accept means "match everything" and must behave
// exactly like the unfiltered search.
type AcceptSearcher interface {
	// RangeSearchAccept answers MRQ(q, r) restricted to accepted ids.
	RangeSearchAccept(q Object, r float64, accept Accept) ([]int, error)
	// KNNSearchAccept answers MkNNQ(q, k) over accepted ids only: the
	// k nearest objects among those satisfying accept.
	KNNSearchAccept(q Object, k int, accept Accept) ([]Neighbor, error)
}
