package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.Float64()*200 - 100
	}
	return v
}

func randWord(rng *rand.Rand) Word {
	n := 1 + rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(6))
	}
	return Word(string(b))
}

// checkAxioms verifies the four metric properties on random triples.
func checkAxioms(t *testing.T, m Metric, gen func(*rand.Rand) Object) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const eps = 1e-9
	for trial := 0; trial < 300; trial++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if dab != dba {
			t.Fatalf("%s: symmetry violated: d(a,b)=%v d(b,a)=%v", m.Name(), dab, dba)
		}
		if dab < 0 {
			t.Fatalf("%s: negative distance %v", m.Name(), dab)
		}
		if d := m.Distance(a, a); d != 0 {
			t.Fatalf("%s: d(a,a)=%v", m.Name(), d)
		}
		dac, dcb := m.Distance(a, c), m.Distance(c, b)
		if dab > dac+dcb+eps {
			t.Fatalf("%s: triangle inequality violated: d(a,b)=%v > %v+%v", m.Name(), dab, dac, dcb)
		}
	}
}

func TestMetricAxioms(t *testing.T) {
	vec4 := func(rng *rand.Rand) Object { return randVec(rng, 4) }
	checkAxioms(t, L1{}, vec4)
	checkAxioms(t, L2{}, vec4)
	checkAxioms(t, LInf{}, vec4)
	checkAxioms(t, Lp{P: 3}, vec4)
	checkAxioms(t, Edit{}, func(rng *rand.Rand) Object { return randWord(rng) })
	checkAxioms(t, IntLInf{}, func(rng *rand.Rand) Object {
		v := make(IntVector, 3)
		for i := range v {
			v[i] = int32(rng.Intn(1000))
		}
		return v
	})
}

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"defoliate", "defoliates", 1},
		{"defoliate", "defoliation", 3},
		{"defoliate", "citrate", 6},
		{"flaw", "lawn", 2},
	}
	m := Edit{}
	for _, c := range cases {
		if got := m.Distance(Word(c.a), Word(c.b)); got != c.want {
			t.Errorf("edit(%q,%q)=%v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLpMatchesSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a, b := randVec(rng, 5), randVec(rng, 5)
		if d1, dp := (L1{}).Distance(a, b), (Lp{P: 1}).Distance(a, b); math.Abs(d1-dp) > 1e-9 {
			t.Fatalf("Lp(1) %v != L1 %v", dp, d1)
		}
		if d2, dp := (L2{}).Distance(a, b), (Lp{P: 2}).Distance(a, b); math.Abs(d2-dp) > 1e-9 {
			t.Fatalf("Lp(2) %v != L2 %v", dp, d2)
		}
	}
}

func TestMetricDiscreteFlags(t *testing.T) {
	if (L2{}).Discrete() || (L1{}).Discrete() || (LInf{}).Discrete() {
		t.Fatal("float metrics must not be discrete")
	}
	if !(Edit{}).Discrete() || !(IntLInf{}).Discrete() {
		t.Fatal("edit and integer metrics must be discrete")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimensionality mismatch")
		}
	}()
	(L2{}).Distance(Vector{1, 2}, Vector{1, 2, 3})
}

func TestSpaceCountsDistances(t *testing.T) {
	s := NewSpace(L2{})
	a, b := Vector{0, 0}, Vector{3, 4}
	if d := s.Distance(a, b); d != 5 {
		t.Fatalf("d=%v", d)
	}
	s.Distance(a, b)
	if got := s.CompDists(); got != 2 {
		t.Fatalf("CompDists=%d, want 2", got)
	}
	s.ResetCompDists()
	if got := s.CompDists(); got != 0 {
		t.Fatalf("after reset CompDists=%d", got)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ds := NewDataset(NewSpace(L2{}), []Object{Vector{0}, Vector{1}, Vector{2}})
	if ds.Count() != 3 || ds.Len() != 3 {
		t.Fatalf("Count=%d Len=%d", ds.Count(), ds.Len())
	}
	if err := ds.Delete(1); err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 2 || ds.Live(1) {
		t.Fatal("delete not reflected")
	}
	if err := ds.Delete(1); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := ds.Delete(99); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	// Insert reuses the freed slot.
	id := ds.Insert(Vector{7})
	if id != 1 {
		t.Fatalf("Insert reused slot %d, want 1", id)
	}
	if ds.Object(1).(Vector)[0] != 7 {
		t.Fatal("wrong object in reused slot")
	}
	ids := ds.LiveIDs()
	if len(ids) != 3 {
		t.Fatalf("LiveIDs=%v", ids)
	}
	if ds.Object(-1) != nil || ds.Object(1000) != nil {
		t.Fatal("out-of-range Object must be nil")
	}
}

func TestKNNHeapKeepsKBest(t *testing.T) {
	h := NewKNNHeap(3)
	if !math.IsInf(h.Radius(), 1) {
		t.Fatal("empty heap radius must be +Inf")
	}
	for i, d := range []float64{9, 2, 7, 1, 8, 3} {
		h.Push(i, d)
	}
	res := h.Result()
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	wantD := []float64{1, 2, 3}
	wantID := []int{3, 1, 5}
	for i := range res {
		if res[i].Dist != wantD[i] || res[i].ID != wantID[i] {
			t.Fatalf("result %d = %+v", i, res[i])
		}
	}
}

func TestKNNHeapTieBreaksByID(t *testing.T) {
	h := NewKNNHeap(2)
	h.Push(5, 1)
	h.Push(3, 1)
	h.Push(9, 1)
	res := h.Result()
	if res[0].ID != 3 || res[1].ID != 5 {
		t.Fatalf("tie-break wrong: %+v", res)
	}
}

func TestKNNHeapRadiusTightens(t *testing.T) {
	h := NewKNNHeap(2)
	h.Push(0, 10)
	h.Push(1, 20)
	if h.Radius() != 20 {
		t.Fatalf("radius=%v", h.Radius())
	}
	h.Push(2, 5)
	if h.Radius() != 10 {
		t.Fatalf("radius=%v after tightening", h.Radius())
	}
}

// Property: Lemma 1 (PruneObject) never discards a true result, and
// Lemma 4 (ValidateObject) never admits a false one, for random
// configurations in a real metric space.
func TestFilterLemmasSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := L2{}
	for trial := 0; trial < 2000; trial++ {
		dim := 1 + rng.Intn(4)
		q, o := randVec(rng, dim), randVec(rng, dim)
		nPivots := 1 + rng.Intn(4)
		qd := make([]float64, nPivots)
		od := make([]float64, nPivots)
		for i := 0; i < nPivots; i++ {
			p := randVec(rng, dim)
			qd[i] = m.Distance(q, p)
			od[i] = m.Distance(o, p)
		}
		d := m.Distance(q, o)
		r := rng.Float64() * 200
		if d <= r && PruneObject(qd, od, r) {
			t.Fatalf("Lemma 1 pruned a true result: d=%v r=%v", d, r)
		}
		if ValidateObject(qd, od, r) && d > r+1e-9 {
			t.Fatalf("Lemma 4 validated a non-result: d=%v r=%v", d, r)
		}
		if lb := PivotLowerBound(qd, od); lb > d+1e-9 {
			t.Fatalf("lower bound %v exceeds true distance %v", lb, d)
		}
		if ub := PivotUpperBound(qd, od); ub < d-1e-9 {
			t.Fatalf("upper bound %v below true distance %v", ub, d)
		}
	}
}

// Property: ball and hyperplane pruning are sound in a real metric space.
func TestPartitionLemmasSound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := L2{}
	for trial := 0; trial < 2000; trial++ {
		dim := 2
		q := randVec(rng, dim)
		pi, pj := randVec(rng, dim), randVec(rng, dim)
		o := randVec(rng, dim)
		r := rng.Float64() * 100
		d := m.Distance(q, o)

		// Lemma 2: o inside ball(pi, rad).
		rad := m.Distance(o, pi) + rng.Float64()*10
		if PruneBall(m.Distance(q, pi), rad, r) && d <= r {
			t.Fatalf("Lemma 2 pruned a true result")
		}
		if bm := BallMinDist(m.Distance(q, pi), rad); bm > d+1e-9 {
			t.Fatalf("ball min-dist %v exceeds %v", bm, d)
		}

		// Lemma 3: o in pi's hyperplane partition (d(o,pi) <= d(o,pj)).
		if m.Distance(o, pi) <= m.Distance(o, pj) {
			dqi, dqj := m.Distance(q, pi), m.Distance(q, pj)
			dqmin := math.Min(dqi, dqj)
			if PruneHyperplane(dqi, dqmin, r) && d <= r {
				t.Fatalf("Lemma 3 pruned a true result")
			}
			if hm := HyperplaneMinDist(dqi, dqmin); hm > d+1e-9 {
				t.Fatalf("hyperplane min-dist %v exceeds %v", hm, d)
			}
		}
	}
}

func TestMBBOperations(t *testing.T) {
	m := NewMBB(2)
	if !m.Empty() {
		t.Fatal("new MBB must be empty")
	}
	if !m.PruneMBB([]float64{1, 1}, 100) {
		t.Fatal("empty MBB must always prune")
	}
	m.Extend([]float64{1, 5})
	m.Extend([]float64{3, 2})
	if m.Empty() {
		t.Fatal("extended MBB not empty")
	}
	if m.Lo[0] != 1 || m.Hi[0] != 3 || m.Lo[1] != 2 || m.Hi[1] != 5 {
		t.Fatalf("bounds %v %v", m.Lo, m.Hi)
	}
	if m.PruneMBB([]float64{2, 3}, 0) {
		t.Fatal("query inside box must not prune")
	}
	if !m.PruneMBB([]float64{10, 3}, 1) {
		t.Fatal("query far outside must prune")
	}
	if d := m.MinDist([]float64{2, 3}); d != 0 {
		t.Fatalf("inside MinDist=%v", d)
	}
	if d := m.MinDist([]float64{5, 3}); d != 2 {
		t.Fatalf("outside MinDist=%v", d)
	}
	c := m.Clone()
	c.Extend([]float64{100, 100})
	if m.Hi[0] == 100 {
		t.Fatal("Clone must not alias")
	}
	var o MBB
	o = NewMBB(2)
	o.Extend([]float64{0, 0})
	o.ExtendMBB(m)
	if o.Hi[1] != 5 {
		t.Fatalf("ExtendMBB: %v", o.Hi)
	}
}

func TestBruteForceAgreement(t *testing.T) {
	// quick property: BruteForceKNN's k-th distance defines exactly the
	// radius at which BruteForceRange returns >= k results.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		objs := make([]Object, 50)
		for i := range objs {
			objs[i] = randVec(rng, 3)
		}
		ds := NewDataset(NewSpace(L2{}), objs)
		q := randVec(rng, 3)
		nns := BruteForceKNN(ds, q, 5)
		r := nns[len(nns)-1].Dist
		ids := BruteForceRange(ds, q, r)
		return len(ids) >= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortNeighborsDeterministic(t *testing.T) {
	ns := []Neighbor{{ID: 3, Dist: 1}, {ID: 1, Dist: 1}, {ID: 2, Dist: 0.5}}
	SortNeighbors(ns)
	if ns[0].ID != 2 || ns[1].ID != 1 || ns[2].ID != 3 {
		t.Fatalf("order: %+v", ns)
	}
}
