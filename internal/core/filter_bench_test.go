package core

import (
	"math/rand"
	"testing"
)

// benchSweep measures the column sweep over a synthetic 5-pivot table
// whose radius keeps the given fraction of rows, isolating the
// steady-state cost of the kNN/range filter's first pass.
func benchSweep(b *testing.B, rows int, keep float64) {
	rng := rand.New(rand.NewSource(1))
	cols := make([][]float64, 5)
	for c := range cols {
		cols[c] = make([]float64, rows)
		for i := range cols[c] {
			cols[c][i] = rng.Float64()
		}
	}
	qd := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	r := keep / 2 // uniform in [0,1]: |0.5-d| <= keep/2 keeps ~keep
	sur := make([]int32, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := SurviveColumns(sur, qd, cols, 0, rows, r)
		if len(got) > rows {
			b.Fatal("impossible")
		}
	}
	b.ReportMetric(float64(b.N)*float64(rows)/b.Elapsed().Seconds()/1e9, "Grows/s")
}

func BenchmarkSurviveColumnsKeep1pct(b *testing.B)  { benchSweep(b, 10000, 0.01) }
func BenchmarkSurviveColumnsKeep20pct(b *testing.B) { benchSweep(b, 10000, 0.20) }
func BenchmarkSurviveColumnsKeep90pct(b *testing.B) { benchSweep(b, 10000, 0.90) }
