package core

import (
	"testing"
	"unicode/utf8"
)

// FuzzLevenshtein checks the metric axioms of the rune-wise edit
// distance on arbitrary strings: identity, symmetry, the triangle
// inequality, and the rune-count bounds. The edit distance underpins
// every pivot-filtering lemma on the Words dataset, so an axiom
// violation here would silently corrupt query answers.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting", "")
	f.Add("café", "cafe", "caffè")
	f.Add("", "abc", "abd")
	f.Add("aaaa", "aa", "aaa")
	f.Add("日本語", "日本", "語")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		if len(a)+len(b)+len(c) > 256 {
			t.Skip("bound the DP cost")
		}
		dab := editDistance(a, b)
		if editDistance(a, a) != 0 {
			t.Fatalf("d(%q,%q) != 0", a, a)
		}
		if dba := editDistance(b, a); dab != dba {
			t.Fatalf("symmetry: d(%q,%q)=%d but d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance d(%q,%q)=%d", a, b, dab)
		}
		ra, rb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		lo, hi := ra-rb, rb
		if lo < 0 {
			lo = -lo
		}
		if ra > hi {
			hi = ra
		}
		if dab < lo || dab > hi {
			t.Fatalf("d(%q,%q)=%d outside rune-count bounds [%d,%d]", a, b, dab, lo, hi)
		}
		// Identity of indiscernibles holds on valid UTF-8 only: invalid
		// byte sequences decode to U+FFFD replacement runes, so distinct
		// invalid strings can coincide after decoding. That degrades the
		// metric to a pseudometric, which every pruning lemma tolerates
		// (they use symmetry and the triangle inequality).
		if dab == 0 && a != b && utf8.ValidString(a) && utf8.ValidString(b) {
			t.Fatalf("identity of indiscernibles: d(%q,%q)=0 for distinct strings", a, b)
		}
		dac, dcb := editDistance(a, c), editDistance(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle inequality: d(%q,%q)=%d > d(%q,%q)+d(%q,%q)=%d",
				a, b, dab, a, c, c, b, dac+dcb)
		}
	})
}
