package core

import (
	"math"
	"math/rand"
	"testing"
)

// surSlices compares two survivor slices.
func surEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuantColEquivalence checks that SurviveColumnsQuant returns exactly
// the SurviveColumns survivor set across random columns, radii (including
// negative and zero), sub-ranges, and column counts.
func TestQuantColEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		l := 1 + rng.Intn(4)
		cols := make([][]float64, l)
		for c := range cols {
			cols[c] = make([]float64, n)
			for i := range cols[c] {
				cols[c][i] = rng.Float64() * 1000
			}
		}
		qc := NewQuantCol(cols[0])
		if !qc.OK() {
			t.Fatalf("trial %d: shadow unexpectedly disabled", trial)
		}
		qd := make([]float64, l)
		for i := range qd {
			qd[i] = rng.Float64() * 1000
		}
		surA := make([]int32, n)
		surB := make([]int32, n)
		for _, r := range []float64{-5, 0, 1e-9, 3, 40, 250, 1500} {
			base := rng.Intn(n)
			rows := base + rng.Intn(n-base+1)
			a := SurviveColumns(surA, qd, cols, base, rows, r)
			b := SurviveColumnsQuant(surB, qd, qc, cols, base, rows, r)
			if !surEqual(a, b) {
				t.Fatalf("trial %d r=%g [%d,%d): quant %v != exact %v", trial, r, base, rows, b, a)
			}
		}
	}
}

// TestQuantColSuperset checks the quantizer invariant directly: every row
// the exact first-column interval keeps is kept by the quantized sweep.
func TestQuantColSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	col := make([]float64, 500)
	for i := range col {
		col[i] = rng.Float64() * 777
	}
	qc := NewQuantCol(col)
	sur := make([]int32, len(col))
	for trial := 0; trial < 200; trial++ {
		q := rng.Float64() * 900
		r := rng.Float64() * 100
		hi, lo := q+r, q-r
		lo16 := uint64(0)
		if lo > 0 {
			lo16 = qc.quantize(lo)
		}
		hi16 := qc.quantize(hi)
		m := qc.sweep(sur, 0, lo16, hi16, 0, len(col))
		kept := make(map[int32]bool, m)
		for _, row := range sur[:m] {
			kept[row] = true
		}
		for i, d := range col {
			if d >= lo && d <= hi && !kept[int32(i)] {
				t.Fatalf("row %d (d=%g) in [%g,%g] dropped by quantized sweep", i, d, lo, hi)
			}
		}
	}
}

// TestQuantColUpdates exercises Append and SwapDelete lane surgery,
// including values beyond the build-time maximum (clamped, still a
// superset), against a mirrored float64 column.
func TestQuantColUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var col []float64
	qc := NewQuantCol(nil)
	for step := 0; step < 2000; step++ {
		if len(col) == 0 || rng.Intn(3) > 0 {
			d := rng.Float64() * 2000 // half the inserts exceed the scale-1 range
			col = append(col, d)
			qc.Append(d)
		} else {
			row := rng.Intn(len(col))
			col[row] = col[len(col)-1]
			col = col[:len(col)-1]
			qc.SwapDelete(row)
		}
		if qc.Len() != len(col) {
			t.Fatalf("step %d: Len %d != %d", step, qc.Len(), len(col))
		}
	}
	if !qc.OK() {
		t.Fatal("shadow disabled by valid updates")
	}
	// After the churn the shadow must still be an exact-equivalent filter.
	cols := [][]float64{col}
	qd := []float64{500}
	surA := make([]int32, len(col))
	surB := make([]int32, len(col))
	for _, r := range []float64{0, 10, 300, 5000} {
		a := SurviveColumns(surA, qd, cols, 0, len(col), r)
		b := SurviveColumnsQuant(surB, qd, qc, cols, 0, len(col), r)
		if !surEqual(a, b) {
			t.Fatalf("r=%g: quant %d survivors != exact %d", r, len(b), len(a))
		}
	}
}

// TestQuantColDisable checks that non-finite or negative distances disable
// the shadow and SurviveColumnsQuant falls back to the exact scan.
func TestQuantColDisable(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		qc := NewQuantCol([]float64{1, 2, bad})
		if qc.OK() {
			t.Fatalf("shadow enabled despite %v at build", bad)
		}
		qc = NewQuantCol([]float64{1, 2, 3})
		qc.Append(bad)
		if qc.OK() {
			t.Fatalf("shadow enabled despite %v appended", bad)
		}
	}
	// Disabled shadow (and nil shadow) must fall back, not crash.
	cols := [][]float64{{1, 2, 3}}
	qd := []float64{2}
	sur := make([]int32, 3)
	qc := NewQuantCol([]float64{1, 2, math.NaN()})
	for _, shadow := range []*QuantCol{qc, nil} {
		got := SurviveColumnsQuant(sur, qd, shadow, cols, 0, 3, 0.5)
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("fallback survivors = %v, want [1]", got)
		}
	}
	// NaN query distance must also fall back (interval bounds are NaN:
	// the exact scan keeps everything, matching PruneObject).
	got := SurviveColumnsQuant(sur, []float64{math.NaN()}, NewQuantCol([]float64{1, 2, 3}), cols, 0, 3, 1)
	if len(got) != 3 {
		t.Fatalf("NaN-query survivors = %v, want all rows", got)
	}
}
