package core

import "math"

// QuantCol is a quantized shadow of one pivot column: every distance is
// mapped by a monotone 15-bit quantizer and packed four rows to a
// uint64, so the first pass of a column sweep can range-check four rows
// with a handful of integer ops on a single 8-byte load — 4x less
// memory traffic and ~2x fewer ops than the float64 scan it shadows.
//
// The quantizer q(d) = min(floor(d·scale), 32767) is monotone, so
// lo ≤ d ≤ hi implies q(lo) ≤ q(d) ≤ q(hi): the quantized check keeps a
// superset of the rows the exact check keeps, and the caller re-applies
// the exact float64 filter to that (small) superset. Distances beyond
// the build-time maximum clamp to 32767, which stays superset-safe for
// the same reason, so inserts never force a rebuild. A non-finite or
// negative distance disables the shadow (OK reports false) and callers
// fall back to the exact scan.
type QuantCol struct {
	words []uint64 // lane j of word w = q(col[4w+j])
	n     int
	scale float64
	ok    bool
}

const (
	quantMax  = 32767 // 15-bit lane values keep SWAR borrows in-lane
	laneHigh  = 0x8000800080008000
	laneOnes  = 0x0001000100010001
	laneWidth = 16
)

// NewQuantCol builds the shadow of col, choosing the scale from the
// column's maximum. Returns a disabled shadow if any value is
// non-finite or negative.
func NewQuantCol(col []float64) *QuantCol {
	qc := &QuantCol{ok: true, scale: 1}
	var max float64
	for _, d := range col {
		if !(d >= 0) || math.IsInf(d, 1) {
			qc.ok = false
			return qc
		}
		if d > max {
			max = d
		}
	}
	if max > 0 {
		qc.scale = quantMax / max
	}
	for _, d := range col {
		qc.Append(d)
	}
	return qc
}

// OK reports whether the shadow is usable.
func (qc *QuantCol) OK() bool { return qc != nil && qc.ok }

// quantize maps a non-negative distance into a lane value.
func (qc *QuantCol) quantize(d float64) uint64 {
	t := d * qc.scale
	if t >= quantMax {
		return quantMax
	}
	return uint64(t)
}

// Append adds one row. A non-finite or negative distance disables the
// shadow permanently.
func (qc *QuantCol) Append(d float64) {
	if !qc.ok {
		return
	}
	if !(d >= 0) || math.IsInf(d, 1) {
		qc.ok = false
		return
	}
	v := qc.quantize(d)
	w, sh := qc.n/4, uint(qc.n%4)*laneWidth
	if sh == 0 {
		qc.words = append(qc.words, v)
	} else {
		qc.words[w] |= v << sh
	}
	qc.n++
}

// lane returns the value stored for row i.
func (qc *QuantCol) lane(i int) uint64 {
	return (qc.words[i/4] >> (uint(i%4) * laneWidth)) & 0xFFFF
}

// setLane overwrites the value stored for row i.
func (qc *QuantCol) setLane(i int, v uint64) {
	w, sh := i/4, uint(i%4)*laneWidth
	qc.words[w] = qc.words[w]&^(0xFFFF<<sh) | v<<sh
}

// SwapDelete moves the last row into row and truncates, mirroring the
// swap-with-last deletion of the pivot tables.
func (qc *QuantCol) SwapDelete(row int) {
	if !qc.ok {
		return
	}
	qc.setLane(row, qc.lane(qc.n-1))
	qc.setLane(qc.n-1, 0) // clear the vacated lane so a later Append can OR into it
	qc.n--
	if qc.n%4 == 0 {
		qc.words = qc.words[:qc.n/4]
	}
}

// Len returns the number of shadowed rows.
func (qc *QuantCol) Len() int { return qc.n }

// MemBytes reports the resident size of the shadow.
func (qc *QuantCol) MemBytes() int64 { return int64(len(qc.words)) * 8 }

// sweep appends to sur the rows of [base, rows) whose quantized value
// lies in [lo16, hi16] — a superset of the exact survivors. Rows are
// appended in ascending order. The caller guarantees rows <= Len().
//
//metriclint:noalloc
func (qc *QuantCol) sweep(sur []int32, m int, lo16, hi16 uint64, base, rows int) int {
	loV := lo16 * laneOnes
	hiV := (hi16 * laneOnes) | laneHigh
	row := base
	// Scalar head up to 4-row word alignment.
	for ; row < rows && row%4 != 0; row++ {
		if v := qc.lane(row); v >= lo16 && v <= hi16 {
			sur[m] = int32(row)
			m++
		}
	}
	// SWAR body: per lane, 0x8000+v-lo underflows 0x8000 iff v < lo and
	// 0x8000+hi-v underflows iff v > hi; lane values <= 32767 keep every
	// borrow inside its lane. A zero mask rejects four rows at once.
	for ; row+4 <= rows; row += 4 {
		x := qc.words[row/4]
		ge := ((x | laneHigh) - loV) & laneHigh
		le := (hiV - x) & laneHigh
		s := ge & le
		if s == 0 {
			continue
		}
		if s&0x8000 != 0 {
			sur[m] = int32(row)
			m++
		}
		if s&0x80000000 != 0 {
			sur[m] = int32(row + 1)
			m++
		}
		if s&0x800000000000 != 0 {
			sur[m] = int32(row + 2)
			m++
		}
		if s&0x8000000000000000 != 0 {
			sur[m] = int32(row + 3)
			m++
		}
	}
	// Scalar tail.
	for ; row < rows; row++ {
		if v := qc.lane(row); v >= lo16 && v <= hi16 {
			sur[m] = int32(row)
			m++
		}
	}
	return m
}

// SurviveColumnsQuant is SurviveColumns with the quantized shadow as a
// first pass: qc pre-filters the first column four rows at a time, then
// every column — including the first, in full float64 — is re-applied
// exactly over the surviving rows. The survivor set is therefore
// identical to SurviveColumns; only the scan cost changes. Falls back
// to SurviveColumns when the shadow is disabled, out of step with the
// table, or the bounds do not quantize (NaN query-pivot distance or
// radius).
//
//metriclint:noalloc
func SurviveColumnsQuant(sur []int32, qd []float64, qc *QuantCol, cols [][]float64, base, rows int, r float64) []int32 {
	if len(cols) == 0 || !qc.OK() || qc.n < rows {
		return SurviveColumns(sur, qd, cols, base, rows, r)
	}
	hi, lo := qd[0]+r, qd[0]-r
	if math.IsNaN(hi) || math.IsNaN(lo) {
		return SurviveColumns(sur, qd, cols, base, rows, r)
	}
	var lo16 uint64
	if lo > 0 {
		lo16 = qc.quantize(lo)
	}
	hi16 := uint64(0)
	if hi >= 0 {
		hi16 = qc.quantize(hi)
	} else {
		// hi < 0 <= every distance: nothing survives the exact check,
		// and lo16 = quantize(lo) > ... pruning everything is what the
		// quantized check does with an empty [lo16, -1] interval; use
		// lo16 = 1, hi16 = 0.
		lo16, hi16 = 1, 0
	}
	m := qc.sweep(sur, 0, lo16, hi16, base, rows)
	// Exact float64 compaction over every column, the first included:
	// the quantized pass only shrank the candidate range.
	for c := 0; c < len(cols); c++ {
		m = compactColumn(sur, m, cols[c], qd[c]+r, qd[c]-r)
	}
	return sur[:m]
}
