// Package core defines the metric-space model shared by every pivot-based
// index in this repository: objects, distance metrics, the instrumented
// Space that counts distance computations, datasets, query result types,
// and the triangle-inequality filtering lemmas (Lemmas 1-4 of the paper).
package core

import (
	"fmt"
	"strings"
)

// Object is any value a Metric can compare. The concrete types used by the
// library are Vector (continuous coordinates), IntVector (integer
// coordinates, for discrete metrics), and Word (strings under edit
// distance), but user-defined types work with user-defined metrics.
type Object interface{}

// Vector is a point in R^d compared with an Lp-norm.
type Vector []float64

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// String renders the vector compactly, eliding long tails.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i == 8 {
			fmt.Fprintf(&b, ", …%d more", len(v)-i)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Vector32 is a point in R^d with float32 coordinates, for vector
// workloads where halving the memory footprint (and scan bandwidth)
// matters more than the last 29 bits of coordinate precision. The
// built-in Lp-family metrics compare two Vector32s by widening each
// coordinate to float64 and accumulating in float64, so the triangle
// inequality holds exactly over the stored values and pivot filtering
// stays safe (see docs/KERNELS.md).
type Vector32 []float32

// Clone returns a deep copy of the vector.
func (v Vector32) Clone() Vector32 {
	c := make(Vector32, len(v))
	copy(c, v)
	return c
}

// String renders the vector compactly, eliding long tails.
func (v Vector32) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i == 8 {
			fmt.Fprintf(&b, ", …%d more", len(v)-i)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteByte(')')
	return b.String()
}

// IntVector is a point with integer coordinates, used with discrete
// distance functions (the paper's Synthetic dataset under L∞).
type IntVector []int32

// Clone returns a deep copy of the vector.
func (v IntVector) Clone() IntVector {
	c := make(IntVector, len(v))
	copy(c, v)
	return c
}

// String renders the vector compactly.
func (v IntVector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i == 8 {
			fmt.Fprintf(&b, ", …%d more", len(v)-i)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}

// Word is a string object compared with edit distance.
type Word string
