package core

import (
	"math"
	"sort"
)

// Neighbor is one element of a k-nearest-neighbor answer.
type Neighbor struct {
	// ID is the dataset identifier of the answer object.
	ID int
	// Dist is its distance to the query object.
	Dist float64
}

// SortNeighbors orders neighbors by ascending distance, breaking ties by
// ascending identifier so answers are deterministic and comparable across
// indexes.
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// KNNHeap maintains the k best candidates seen so far during a kNN search.
// It is a bounded max-heap: Radius() is the distance of the current k-th
// nearest neighbor (the search radius that verification tightens), or +Inf
// while fewer than k candidates have been collected.
//
// The heap is hand-sifted rather than built on container/heap: Push sits
// on the per-candidate kNN hot path, and heap.Push boxes each Neighbor
// into an `any` — one heap allocation per candidate. All storage is
// reserved once in NewKNNHeap; Push is allocation-free (see the noalloc
// annotations and the AllocsPerRun test).
type KNNHeap struct {
	k     int
	items []Neighbor
}

// above reports whether item i outranks item j in the max-heap: greater
// distance first, greater id first among ties (so the evicted candidate
// is always the worst, and answers stay deterministic).
//
//metriclint:noalloc
func (h *KNNHeap) above(i, j int) bool {
	if h.items[i].Dist != h.items[j].Dist {
		return h.items[i].Dist > h.items[j].Dist
	}
	return h.items[i].ID > h.items[j].ID
}

//metriclint:noalloc
func (h *KNNHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.above(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//metriclint:noalloc
func (h *KNNHeap) siftDown(i int) {
	n := len(h.items)
	for {
		top := i
		if l := 2*i + 1; l < n && h.above(l, top) {
			top = l
		}
		if r := 2*i + 2; r < n && h.above(r, top) {
			top = r
		}
		if top == i {
			return
		}
		h.items[i], h.items[top] = h.items[top], h.items[i]
		i = top
	}
}

// NewKNNHeap creates a heap that retains the k nearest candidates. A
// non-positive k yields a zero-capacity heap: every candidate is rejected
// and the answer is empty, matching the MkNNQ definition (not one
// neighbor, as a silent k=1 coercion would produce). All storage is
// reserved here; Push never reallocates.
func NewKNNHeap(k int) *KNNHeap {
	if k < 0 {
		k = 0
	}
	return &KNNHeap{k: k, items: make([]Neighbor, 0, k)}
}

// Reset re-arms the heap for a new query with capacity k, growing the
// backing array only when k exceeds every capacity seen before — the
// scratch-reuse hook that keeps steady-state kNN queries allocation-free.
func (h *KNNHeap) Reset(k int) {
	if k < 0 {
		k = 0
	}
	h.k = k
	if cap(h.items) < k {
		h.items = make([]Neighbor, 0, k)
	} else {
		h.items = h.items[:0]
	}
}

// K returns the heap capacity.
//
//metriclint:noalloc
func (h *KNNHeap) K() int { return h.k }

// Radius returns the current pruning radius: the k-th best distance, or
// +Inf while the heap is not yet full. A zero-capacity heap wants nothing,
// so its radius is -Inf (every candidate is prunable).
//
//metriclint:noalloc
func (h *KNNHeap) Radius() float64 {
	if h.k == 0 {
		return math.Inf(-1)
	}
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Push offers a candidate; it is kept only if it improves the answer.
//
//metriclint:noalloc
func (h *KNNHeap) Push(id int, dist float64) {
	if h.k == 0 {
		return
	}
	if n := len(h.items); n < h.k {
		h.items = h.items[:n+1] // within the capacity reserved by NewKNNHeap
		h.items[n] = Neighbor{ID: id, Dist: dist}
		h.siftUp(n)
		return
	}
	top := h.items[0]
	if dist < top.Dist || (dist == top.Dist && id < top.ID) {
		h.items[0] = Neighbor{ID: id, Dist: dist}
		h.siftDown(0)
	}
}

// Len returns the number of candidates currently held.
//
//metriclint:noalloc
func (h *KNNHeap) Len() int { return len(h.items) }

// Result extracts the k nearest neighbors sorted by ascending distance.
// The heap is consumed.
func (h *KNNHeap) Result() []Neighbor {
	res := make([]Neighbor, len(h.items))
	copy(res, h.items)
	SortNeighbors(res)
	return res
}

// BruteForceRange answers MRQ(q, r) by exhaustive scan; it is the
// correctness baseline for every index. The result is sorted by id.
func BruteForceRange(ds *Dataset, q Object, r float64) []int {
	var res []int
	for id, o := range ds.Objects() {
		if o == nil {
			continue
		}
		if ds.space.Distance(q, o) <= r {
			res = append(res, id)
		}
	}
	return res
}

// BruteForceKNN answers MkNNQ(q, k) by exhaustive scan; it is the
// correctness baseline for every index.
func BruteForceKNN(ds *Dataset, q Object, k int) []Neighbor {
	h := NewKNNHeap(k)
	for id, o := range ds.Objects() {
		if o == nil {
			continue
		}
		h.Push(id, ds.space.Distance(q, o))
	}
	return h.Result()
}
