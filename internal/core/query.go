package core

import (
	"container/heap"
	"math"
	"sort"
)

// Neighbor is one element of a k-nearest-neighbor answer.
type Neighbor struct {
	// ID is the dataset identifier of the answer object.
	ID int
	// Dist is its distance to the query object.
	Dist float64
}

// SortNeighbors orders neighbors by ascending distance, breaking ties by
// ascending identifier so answers are deterministic and comparable across
// indexes.
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// KNNHeap maintains the k best candidates seen so far during a kNN search.
// It is a bounded max-heap: Radius() is the distance of the current k-th
// nearest neighbor (the search radius that verification tightens), or +Inf
// while fewer than k candidates have been collected.
type KNNHeap struct {
	k     int
	items knnItems
}

type knnItems []Neighbor

func (h knnItems) Len() int      { return len(h) }
func (h knnItems) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h knnItems) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist // max-heap on distance
	}
	return h[i].ID > h[j].ID // evict larger id first among ties
}
func (h *knnItems) Push(x any) { *h = append(*h, x.(Neighbor)) }
func (h *knnItems) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewKNNHeap creates a heap that retains the k nearest candidates. A
// non-positive k yields a zero-capacity heap: every candidate is rejected
// and the answer is empty, matching the MkNNQ definition (not one
// neighbor, as a silent k=1 coercion would produce).
func NewKNNHeap(k int) *KNNHeap {
	if k < 0 {
		k = 0
	}
	return &KNNHeap{k: k, items: make(knnItems, 0, k+1)}
}

// K returns the heap capacity.
func (h *KNNHeap) K() int { return h.k }

// Radius returns the current pruning radius: the k-th best distance, or
// +Inf while the heap is not yet full. A zero-capacity heap wants nothing,
// so its radius is -Inf (every candidate is prunable).
func (h *KNNHeap) Radius() float64 {
	if h.k == 0 {
		return math.Inf(-1)
	}
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Push offers a candidate; it is kept only if it improves the answer.
func (h *KNNHeap) Push(id int, dist float64) {
	if h.k == 0 {
		return
	}
	if len(h.items) < h.k {
		heap.Push(&h.items, Neighbor{ID: id, Dist: dist})
		return
	}
	top := h.items[0]
	if dist < top.Dist || (dist == top.Dist && id < top.ID) {
		h.items[0] = Neighbor{ID: id, Dist: dist}
		heap.Fix(&h.items, 0)
	}
}

// Len returns the number of candidates currently held.
func (h *KNNHeap) Len() int { return len(h.items) }

// Result extracts the k nearest neighbors sorted by ascending distance.
// The heap is consumed.
func (h *KNNHeap) Result() []Neighbor {
	res := make([]Neighbor, len(h.items))
	copy(res, h.items)
	SortNeighbors(res)
	return res
}

// BruteForceRange answers MRQ(q, r) by exhaustive scan; it is the
// correctness baseline for every index. The result is sorted by id.
func BruteForceRange(ds *Dataset, q Object, r float64) []int {
	var res []int
	for id, o := range ds.Objects() {
		if o == nil {
			continue
		}
		if ds.space.Distance(q, o) <= r {
			res = append(res, id)
		}
	}
	return res
}

// BruteForceKNN answers MkNNQ(q, k) by exhaustive scan; it is the
// correctness baseline for every index.
func BruteForceKNN(ds *Dataset, q Object, k int) []Neighbor {
	h := NewKNNHeap(k)
	for id, o := range ds.Objects() {
		if o == nil {
			continue
		}
		h.Push(id, ds.space.Distance(q, o))
	}
	return h.Result()
}
