package core

import "sync"

// Scratch is the per-query working memory of a pivot-table scan:
// query-pivot distances, the per-row lower-bound column, candidate
// chunks for batched verification, widened query coordinates, and the
// kNN heap. Indexes draw one from their ScratchPool per query and
// return it afterwards, so steady-state queries allocate nothing — the
// Grow methods only reallocate when a query needs more capacity than any
// earlier one on the same Scratch.
//
// A Scratch is not safe for concurrent use; the pool hands each
// concurrent query its own.
type Scratch struct {
	// QD holds d(q, p_i) for every pivot of the scan.
	QD []float64
	// LB holds the per-row Lemma-1 lower bounds of a column scan.
	LB []float64
	// Out receives batched verification distances for one chunk.
	Out []float64
	// IDs collects the candidate ids of one verification chunk.
	IDs []int32
	// Rows collects candidate row numbers when they differ from ids.
	Rows []int32
	// Sur receives the surviving row numbers of a column sweep
	// (SurviveColumns) — sized to the whole table, unlike the chunk
	// buffers.
	Sur []int32
	// Objs gathers candidate objects for a DistanceMany chunk.
	Objs []Object
	// Q64 and Q32 hold widened query coordinates for the flat kernels.
	Q64 []float64
	Q32 []float32
	// Done marks visited rows for elimination-style scans (AESA).
	Done []bool

	heap *KNNHeap
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// GrowQD sizes and returns the query-pivot distance buffer.
func (s *Scratch) GrowQD(n int) []float64 {
	s.QD = growF64(s.QD, n)
	return s.QD
}

// GrowLB sizes and returns the lower-bound column.
func (s *Scratch) GrowLB(n int) []float64 {
	s.LB = growF64(s.LB, n)
	return s.LB
}

// GrowSur sizes and returns the column-sweep survivor buffer.
func (s *Scratch) GrowSur(n int) []int32 {
	if cap(s.Sur) < n {
		s.Sur = make([]int32, n)
	} else {
		s.Sur = s.Sur[:n]
	}
	return s.Sur
}

// GrowDone sizes and clears the visited-row marks.
func (s *Scratch) GrowDone(n int) []bool {
	if cap(s.Done) < n {
		s.Done = make([]bool, n)
	} else {
		s.Done = s.Done[:n]
		for i := range s.Done {
			s.Done[i] = false
		}
	}
	return s.Done
}

// GrowChunk sizes the verification-chunk buffers (IDs, Rows, Objs, Out)
// to hold n candidates.
func (s *Scratch) GrowChunk(n int) {
	if cap(s.IDs) < n {
		s.IDs = make([]int32, n)
	} else {
		s.IDs = s.IDs[:n]
	}
	if cap(s.Rows) < n {
		s.Rows = make([]int32, n)
	} else {
		s.Rows = s.Rows[:n]
	}
	if cap(s.Objs) < n {
		s.Objs = make([]Object, n)
	} else {
		s.Objs = s.Objs[:n]
	}
	s.Out = growF64(s.Out, n)
}

// Heap returns the scratch kNN heap re-armed for capacity k.
func (s *Scratch) Heap(k int) *KNNHeap {
	if s.heap == nil {
		s.heap = NewKNNHeap(k)
		return s.heap
	}
	s.heap.Reset(k)
	return s.heap
}

// ScratchPool hands out per-query Scratch values. The zero value is
// ready to use. It is a thin wrapper over sync.Pool, so concurrent
// queries on one index (the batch engine's normal mode) each get their
// own buffers, and idle buffers are reclaimed by the GC rather than
// pinned forever.
type ScratchPool struct {
	p sync.Pool
}

// Get returns a Scratch, reusing a pooled one when available. A cold
// pool allocates the Scratch shell — by design, so Get cannot carry the
// noalloc annotation; steady state never reaches that branch.
func (sp *ScratchPool) Get() *Scratch {
	if s, ok := sp.p.Get().(*Scratch); ok {
		return s
	}
	return &Scratch{}
}

// Put returns a Scratch to the pool for the next query.
//
//metriclint:noalloc
func (sp *ScratchPool) Put(s *Scratch) {
	sp.p.Put(s)
}

// FlatVecs is a row-major flat coordinate mirror of vector objects — the
// struct-of-arrays companion of a pivot table. Row r of the mirror holds
// the coordinates of the object in table row r, kept in lockstep by
// Append / SwapDelete, so candidate verification reads one contiguous
// block per candidate with no Object indirection. Vector and IntVector
// objects mirror into float64 (int32 widens exactly); Vector32 objects
// mirror into float32.
type FlatVecs struct {
	// Dim is the common coordinate count of every mirrored row.
	Dim  int
	f64  []float64
	f32  []float32
	is32 bool
}

// NewFlatVecs builds an empty mirror shaped like the sample object, or
// nil when the sample is not a vector type the flat kernels understand
// (the caller then stays on the Object verification path).
func NewFlatVecs(sample Object) *FlatVecs {
	switch v := sample.(type) {
	case Vector:
		if len(v) == 0 {
			return nil
		}
		return &FlatVecs{Dim: len(v)}
	case IntVector:
		if len(v) == 0 {
			return nil
		}
		return &FlatVecs{Dim: len(v)}
	case Vector32:
		if len(v) == 0 {
			return nil
		}
		return &FlatVecs{Dim: len(v), is32: true}
	}
	return nil
}

// Rows returns the number of mirrored rows.
func (f *FlatVecs) Rows() int {
	if f.is32 {
		return len(f.f32) / f.Dim
	}
	return len(f.f64) / f.Dim
}

// Append mirrors one object as the next row. It reports false — without
// modifying the mirror — when the object's type or dimension does not
// match; the owning index then drops the mirror and falls back to
// Object verification.
func (f *FlatVecs) Append(o Object) bool {
	switch v := o.(type) {
	case Vector:
		if f.is32 || len(v) != f.Dim {
			return false
		}
		f.f64 = append(f.f64, v...)
	case IntVector:
		if f.is32 || len(v) != f.Dim {
			return false
		}
		for _, x := range v {
			f.f64 = append(f.f64, float64(x))
		}
	case Vector32:
		if !f.is32 || len(v) != f.Dim {
			return false
		}
		f.f32 = append(f.f32, v...)
	default:
		return false
	}
	return true
}

// SwapDelete moves the last row into row and truncates, mirroring the
// swap-with-last deletion of the pivot tables.
func (f *FlatVecs) SwapDelete(row int) {
	last := f.Rows() - 1
	if f.is32 {
		copy(f.f32[row*f.Dim:(row+1)*f.Dim], f.f32[last*f.Dim:(last+1)*f.Dim])
		f.f32 = f.f32[:last*f.Dim]
		return
	}
	copy(f.f64[row*f.Dim:(row+1)*f.Dim], f.f64[last*f.Dim:(last+1)*f.Dim])
	f.f64 = f.f64[:last*f.Dim]
}

// QueryCoords widens the query object into the scratch coordinate
// buffers and reports whether the flat path can serve it. A query whose
// type or dimension does not match the mirror returns ok=false and the
// caller falls back to the Object path (where the metric itself decides
// whether the pairing is legal).
func (f *FlatVecs) QueryCoords(q Object, sc *Scratch) (q64 []float64, q32 []float32, ok bool) {
	switch v := q.(type) {
	case Vector:
		if f.is32 || len(v) != f.Dim {
			return nil, nil, false
		}
		sc.Q64 = growF64(sc.Q64, f.Dim)
		copy(sc.Q64, v)
		return sc.Q64, nil, true
	case IntVector:
		if f.is32 || len(v) != f.Dim {
			return nil, nil, false
		}
		sc.Q64 = growF64(sc.Q64, f.Dim)
		for i, x := range v {
			sc.Q64[i] = float64(x)
		}
		return sc.Q64, nil, true
	case Vector32:
		if !f.is32 || len(v) != f.Dim {
			return nil, nil, false
		}
		if cap(sc.Q32) < f.Dim {
			sc.Q32 = make([]float32, f.Dim)
		} else {
			sc.Q32 = sc.Q32[:f.Dim]
		}
		copy(sc.Q32, v)
		return nil, sc.Q32, true
	}
	return nil, nil, false
}

// Pre computes the pre-distance of the widened query against one mirror
// row through the resolved kernel (no Object indirection, no interface
// dispatch). Exactly one of q64/q32 is non-nil, matching the mirror
// width.
//
//metriclint:noalloc
func (f *FlatVecs) Pre(k *PreKernel, q64 []float64, q32 []float32, row int) float64 {
	if f.is32 {
		return k.Pre32(q32, f.f32[row*f.Dim:(row+1)*f.Dim])
	}
	return k.Pre64(q64, f.f64[row*f.Dim:(row+1)*f.Dim])
}

// MemBytes reports the resident size of the mirror.
func (f *FlatVecs) MemBytes() int64 {
	return int64(len(f.f64))*8 + int64(len(f.f32))*4
}
