package core_test

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// TestKNNHeapPushAllocs is the runtime witness for the noalloc
// annotations on KNNHeap: Push runs once per surviving candidate in
// every kNN search, and must not allocate — neither while filling (all
// storage is reserved by NewKNNHeap) nor while replacing the top.
func TestKNNHeapPushAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	h := core.NewKNNHeap(16)
	id := 0
	allocs := testing.AllocsPerRun(1000, func() {
		// Distances cycle so the heap keeps both inserting (while
		// filling) and replacing the top (when full).
		h.Push(id, float64(id%97))
		id++
	})
	if allocs != 0 {
		t.Fatalf("KNNHeap.Push allocated %.1f times per call; want 0", allocs)
	}
	if h.Len() != 16 {
		t.Fatalf("heap retained %d candidates; want 16", h.Len())
	}
}
