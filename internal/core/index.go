package core

// Index is the common contract implemented by every pivot-based metric
// index in the repository. The benchmark harness (and downstream users)
// interact with all eleven structures through this interface, which keeps
// the paper's "equal footing" methodology honest.
type Index interface {
	// Name identifies the index in experiment output (e.g. "LAESA").
	Name() string

	// RangeSearch answers MRQ(q, r): the identifiers of all live objects
	// within distance r of q, in ascending id order.
	RangeSearch(q Object, r float64) ([]int, error)

	// KNNSearch answers MkNNQ(q, k): the k nearest live objects sorted by
	// ascending distance (ties by id). Fewer than k are returned only when
	// the dataset holds fewer than k live objects.
	KNNSearch(q Object, k int) ([]Neighbor, error)

	// Insert indexes the object already stored in the dataset under id.
	Insert(id int) error

	// Delete removes the object with the given id from the index (the
	// object must still be present in the dataset when Delete is called,
	// since several structures need its distances to locate it).
	Delete(id int) error

	// PageAccesses reports the cumulative number of page reads+writes
	// performed by the index since the last ResetStats. In-memory indexes
	// return 0.
	PageAccesses() int64

	// ResetStats zeroes the page-access counter (distance computations are
	// counted by the shared Space and reset there).
	ResetStats()

	// MemBytes estimates the main-memory resident size of the index
	// structure in bytes (pivot tables, distance tables, tree nodes).
	MemBytes() int64

	// DiskBytes reports the bytes occupied on the simulated disk
	// (0 for purely in-memory indexes).
	DiskBytes() int64
}

// BuildStats captures what it cost to construct an index, mirroring the
// columns of the paper's Table 4.
type BuildStats struct {
	PageAccesses int64 // PA during construction
	CompDists    int64 // distance computations during construction
	MemBytes     int64 // resident main-memory size
	DiskBytes    int64 // simulated disk size
}
