package core

import (
	"fmt"
	"sync/atomic"
)

// Space is a metric space (M, d) instrumented with a distance-computation
// counter. Every index performs its distance computations through a Space
// so that the "compdists" performance metric of the paper is counted
// identically for all competitors. Space is safe for concurrent use.
type Space struct {
	metric Metric
	count  atomic.Int64
}

// NewSpace wraps a metric into an instrumented space.
func NewSpace(m Metric) *Space {
	return &Space{metric: m}
}

// Distance computes d(a, b) and increments the computation counter.
func (s *Space) Distance(a, b Object) float64 {
	s.count.Add(1)
	return s.metric.Distance(a, b)
}

// DistanceMany computes out[i] = d(q, objs[i]) for every i, through the
// metric's batch kernel when it provides one and pairwise Distance
// otherwise. Results are bit-for-bit identical to the scalar calls. The
// compdists counter advances by len(objs) in a single atomic add — the
// batch path's accounting amortization.
//
//metriclint:noalloc
func (s *Space) DistanceMany(q Object, objs []Object, out []float64) {
	if len(objs) == 0 {
		return
	}
	s.count.Add(int64(len(objs)))
	if bm, ok := s.metric.(BatchMetric); ok {
		bm.DistanceMany(q, objs, out)
		return
	}
	for i, o := range objs {
		out[i] = s.metric.Distance(q, o)
	}
}

// CountDistances adds n to the compdists counter. Index hot loops that
// compute distances through the flat kernels (bypassing Distance) call
// it once per scan so the paper's cost measure stays exact without an
// atomic per pair.
//
//metriclint:noalloc
func (s *Space) CountDistances(n int) {
	if n > 0 {
		s.count.Add(int64(n))
	}
}

// Metric returns the underlying metric.
func (s *Space) Metric() Metric { return s.metric }

// CompDists returns the number of distance computations since the last
// ResetCompDists.
func (s *Space) CompDists() int64 { return s.count.Load() }

// ResetCompDists zeroes the distance-computation counter.
func (s *Space) ResetCompDists() { s.count.Store(0) }

// Dataset is an object collection in a metric space. Objects are addressed
// by dense integer identifiers (their position in Objects). Deleted
// positions hold a nil Object and are skipped by queries; Insert reuses the
// lowest free slot so that identifiers stay stable and compact.
type Dataset struct {
	space   *Space
	objects []Object
	free    []int // stack of deleted slots available for reuse
	live    int   // number of non-nil objects
	// attrs holds the attribute bag of each slot, parallel to objects
	// but grown lazily: it may be shorter than objects when no object
	// past its end carries attributes. attrs[id] is nil for objects
	// without metadata and for deleted slots.
	attrs []Attrs
}

// NewDataset builds a dataset over the given objects. The slice is owned by
// the dataset afterwards. Nil entries are treated as empty slots (as if the
// object at that identifier had been deleted), which is how sharded mirrors
// hold a subset of a parent dataset under unchanged identifiers.
func NewDataset(space *Space, objects []Object) *Dataset {
	ds := &Dataset{space: space, objects: objects}
	for id, o := range objects {
		if o == nil {
			ds.free = append(ds.free, id)
		} else {
			ds.live++
		}
	}
	return ds
}

// Space returns the instrumented metric space of the dataset.
func (ds *Dataset) Space() *Space { return ds.space }

// Len returns the number of identifier slots (including deleted ones);
// valid identifiers are 0..Len()-1.
func (ds *Dataset) Len() int { return len(ds.objects) }

// Count returns the number of live (non-deleted) objects.
func (ds *Dataset) Count() int { return ds.live }

// Object returns the object with the given identifier, or nil if the
// identifier is out of range or the object was deleted.
func (ds *Dataset) Object(id int) Object {
	if id < 0 || id >= len(ds.objects) {
		return nil
	}
	return ds.objects[id]
}

// Objects exposes the raw object slice as a read-only view: callers must
// not mutate the slice or the objects behind it (indexes and their flat
// coordinate mirrors alias both). Returning the live slice instead of a
// copy is deliberate — the brute-force baselines and batch verifiers scan
// it on every query. For a safe bulk copy of vector coordinates use
// FlatVectors / FlatVectors32.
//
//metriclint:ignore read-only view by contract, not a defensive copy
func (ds *Dataset) Objects() []Object { return ds.objects }

// FlatVectors returns a fresh row-major copy of the float64 coordinates
// of every identifier slot: a block of Len()*dim floats where row id
// starts at id*dim. Deleted slots are zero-filled. It is the sanctioned
// bulk accessor for feeding DistanceFlat and the kernel benchmarks. The
// third result is false when the dataset holds no live objects or any
// live object is not a Vector (or IntVector, which widens exactly) of
// one common dimension.
func (ds *Dataset) FlatVectors() ([]float64, int, bool) {
	dim := -1
	for _, o := range ds.objects {
		var d int
		switch v := o.(type) {
		case nil:
			continue
		case Vector:
			d = len(v)
		case IntVector:
			d = len(v)
		default:
			return nil, 0, false
		}
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, 0, false
		}
	}
	if dim <= 0 {
		return nil, 0, false
	}
	flat := make([]float64, len(ds.objects)*dim)
	for id, o := range ds.objects {
		row := flat[id*dim : (id+1)*dim]
		switch v := o.(type) {
		case Vector:
			copy(row, v)
		case IntVector:
			for i, x := range v {
				row[i] = float64(x)
			}
		}
	}
	return flat, dim, true
}

// FlatVectors32 is the Vector32 counterpart of FlatVectors: a row-major
// copy of the float32 coordinates of every slot, zero-filled where
// deleted, or ok=false when the live objects are not uniform Vector32s.
func (ds *Dataset) FlatVectors32() ([]float32, int, bool) {
	dim := -1
	for _, o := range ds.objects {
		v, ok := o.(Vector32)
		if o == nil {
			continue
		}
		if !ok {
			return nil, 0, false
		}
		if dim == -1 {
			dim = len(v)
		} else if len(v) != dim {
			return nil, 0, false
		}
	}
	if dim <= 0 {
		return nil, 0, false
	}
	flat := make([]float32, len(ds.objects)*dim)
	for id, o := range ds.objects {
		if v, ok := o.(Vector32); ok {
			copy(flat[id*dim:(id+1)*dim], v)
		}
	}
	return flat, dim, true
}

// Distance computes the counted distance between two stored objects.
func (ds *Dataset) Distance(i, j int) float64 {
	return ds.space.Distance(ds.objects[i], ds.objects[j])
}

// DistanceTo computes the counted distance between a query object and a
// stored object.
func (ds *Dataset) DistanceTo(q Object, id int) float64 {
	return ds.space.Distance(q, ds.objects[id])
}

// Insert adds an object, reusing a free slot when one exists, and returns
// its identifier. Entries on the free stack are validated lazily — InsertAt
// may have occupied a slot without unlinking it — so occupied entries are
// skipped and discarded here.
func (ds *Dataset) Insert(o Object) int {
	if o == nil {
		panic("core: inserting nil object")
	}
	ds.live++
	for n := len(ds.free); n > 0; n = len(ds.free) {
		id := ds.free[n-1]
		ds.free = ds.free[:n-1]
		if ds.objects[id] != nil {
			continue // stale: slot was taken by InsertAt
		}
		ds.objects[id] = o
		return id
	}
	ds.objects = append(ds.objects, o)
	return len(ds.objects) - 1
}

// InsertAt stores an object under a caller-chosen identifier, growing the
// dataset with empty slots as needed. It errors if the slot is occupied.
// Sharded mirrors use it to keep shard-local identifiers equal to the
// parent dataset's, so shard answers need no id translation.
func (ds *Dataset) InsertAt(id int, o Object) error {
	if o == nil {
		return fmt.Errorf("core: inserting nil object at id %d", id)
	}
	if id < 0 {
		return fmt.Errorf("core: insert at negative id %d", id)
	}
	for len(ds.objects) <= id {
		ds.free = append(ds.free, len(ds.objects))
		ds.objects = append(ds.objects, nil)
	}
	if ds.objects[id] != nil {
		return fmt.Errorf("core: insert at occupied id %d", id)
	}
	// The slot's free-stack entry is left in place; Insert skips entries
	// whose slot turns out occupied. Unlinking here would cost a scan of
	// the whole stack per call (sharded mirrors keep every non-member slot
	// on it).
	ds.objects[id] = o
	ds.live++
	return nil
}

// Delete removes the object with the given identifier. It returns an error
// if the identifier is out of range or already deleted.
func (ds *Dataset) Delete(id int) error {
	if id < 0 || id >= len(ds.objects) {
		return fmt.Errorf("core: delete of invalid id %d (len %d)", id, len(ds.objects))
	}
	if ds.objects[id] == nil {
		return fmt.Errorf("core: delete of already-deleted id %d", id)
	}
	ds.objects[id] = nil
	if id < len(ds.attrs) {
		ds.attrs[id] = nil
	}
	ds.free = append(ds.free, id)
	ds.live--
	return nil
}

// SetAttrs attaches an attribute bag to a live object (nil detaches).
// The map is owned by the dataset afterwards. It errors on a deleted or
// out-of-range identifier so attrs can never outlive their object.
func (ds *Dataset) SetAttrs(id int, a Attrs) error {
	if !ds.Live(id) {
		return fmt.Errorf("core: attrs on non-live id %d", id)
	}
	if a == nil && id >= len(ds.attrs) {
		return nil
	}
	for len(ds.attrs) <= id {
		ds.attrs = append(ds.attrs, nil)
	}
	ds.attrs[id] = a
	return nil
}

// Attrs returns the attribute bag of the given identifier, or nil when
// the object has none (or the id is deleted/out of range). Callers must
// not mutate the returned map.
//
//metriclint:ignore read-only view by contract, not a defensive copy
func (ds *Dataset) Attrs(id int) Attrs {
	if id < 0 || id >= len(ds.attrs) {
		return nil
	}
	return ds.attrs[id]
}

// CopyAttrsFrom bulk-copies every attribute bag of src (by identifier)
// onto this dataset, skipping ids that are not live here. Epoch
// snapshots and shard mirrors use it to carry metadata across dataset
// clones; the bags themselves are shared, not deep-copied — both sides
// treat them as immutable.
func (ds *Dataset) CopyAttrsFrom(src *Dataset) {
	for id, a := range src.attrs {
		if a == nil || !ds.Live(id) {
			continue
		}
		for len(ds.attrs) <= id {
			ds.attrs = append(ds.attrs, nil)
		}
		ds.attrs[id] = a
	}
}

// Live reports whether the identifier refers to a non-deleted object.
func (ds *Dataset) Live(id int) bool {
	return id >= 0 && id < len(ds.objects) && ds.objects[id] != nil
}

// LiveIDs returns the identifiers of all live objects in increasing order.
func (ds *Dataset) LiveIDs() []int {
	ids := make([]int, 0, ds.live)
	for id, o := range ds.objects {
		if o != nil {
			ids = append(ids, id)
		}
	}
	return ids
}
