package omni

import (
	"fmt"
	"sort"

	"metricindex/internal/bptree"
	"metricindex/internal/core"
	"metricindex/internal/store"
)

// BPlus is the OmniB+-tree (§5.2): one B+-tree per pivot, each indexing
// d(o, p_i) -> object id. A range query scans every tree's key band and
// intersects the candidate sets — which is why the paper notes the family
// member suffers redundant storage and I/O compared to the OmniR-tree.
type BPlus struct {
	*base
	trees []*bptree.Tree
	size  int
	ids   map[int]bool
}

// NewBPlus builds the per-pivot B+-trees over all live objects. workers
// parallelizes the pivot-table precompute (0 or 1 = sequential, negative =
// GOMAXPROCS).
func NewBPlus(ds *core.Dataset, pager *store.Pager, pivots []int, workers int) (*BPlus, error) {
	b, err := newBase(ds, pager, pivots)
	if err != nil {
		return nil, err
	}
	t := &BPlus{base: b, ids: make(map[int]bool)}
	for range pivots {
		t.trees = append(t.trees, bptree.New(pager, nil))
	}
	ids := ds.LiveIDs()
	pts := t.buildPoints(ids, workers)
	for i, id := range ids {
		if t.ids[id] {
			return nil, fmt.Errorf("omni: duplicate insert of %d", id)
		}
		if _, err := t.appendRAF(id); err != nil {
			return nil, err
		}
		for j, tr := range t.trees {
			if err := tr.Insert(bptree.KeyFromFloat(pts[i][j]), uint64(id)); err != nil {
				return nil, err
			}
		}
		t.ids[id] = true
		t.size++
	}
	return t, nil
}

// Name returns "OmniB+-tree".
func (t *BPlus) Name() string { return "OmniB+-tree" }

// Len returns the number of indexed objects.
func (t *BPlus) Len() int { return t.size }

// candidates intersects the per-pivot key bands [qd_i − r, qd_i + r]
// (Lemma 1 evaluated tree by tree).
func (t *BPlus) candidates(qd []float64, r float64) ([]int, error) {
	var cur map[int]bool
	for i, tr := range t.trees {
		lo := qd[i] - r
		if lo < 0 {
			lo = 0
		}
		hi := qd[i] + r
		band := make(map[int]bool)
		err := tr.RangeScan(bptree.KeyFromFloat(lo), bptree.KeyFromFloat(hi), func(k, v uint64) bool {
			id := int(v)
			if cur == nil || cur[id] {
				band[id] = true
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		cur = band
		if len(cur) == 0 {
			return nil, nil
		}
	}
	out := make([]int, 0, len(cur))
	for id := range cur {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

// RangeSearch answers MRQ(q, r) by band intersection plus verification.
func (t *BPlus) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	cands, err := t.candidates(qd, r)
	if err != nil {
		return nil, err
	}
	var res []int
	for _, id := range cands {
		ok, err := t.verifyRange(q, id, r)
		if err != nil {
			return nil, err
		}
		if ok {
			res = append(res, id)
		}
	}
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) with the incremental-radius strategy
// (§2.1 method one): grow the band until k verified neighbors fit inside
// it. Revisited candidates across rounds are remembered so each object is
// verified once.
func (t *BPlus) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	h := sc.Heap(k)
	seen := make(map[int]bool)
	// Start from a small band and double.
	r := t.initialRadius(qd)
	for {
		cands, err := t.candidates(qd, r)
		if err != nil {
			return nil, err
		}
		for _, id := range cands {
			if seen[id] {
				continue
			}
			seen[id] = true
			o, err := t.loadObject(id)
			if err != nil {
				return nil, err
			}
			h.Push(id, t.ds.Space().Distance(q, o))
		}
		if h.Len() >= min(k, t.size) && h.Radius() <= r {
			return h.Result(), nil
		}
		if len(seen) >= t.size {
			return h.Result(), nil
		}
		r *= 2
	}
}

// initialRadius seeds the incremental search with a small positive band.
func (t *BPlus) initialRadius(qd []float64) float64 {
	var m float64
	for _, d := range qd {
		if d > m {
			m = d
		}
	}
	if m == 0 {
		return 1
	}
	return m / 64
}

// Insert adds the object to every per-pivot tree and the RAF.
func (t *BPlus) Insert(id int) error {
	if t.ids[id] {
		return fmt.Errorf("omni: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("omni: insert of deleted or out-of-range id %d", id)
	}
	if _, err := t.appendRAF(id); err != nil {
		return err
	}
	pt := t.point(o)
	for i, tr := range t.trees {
		if err := tr.Insert(bptree.KeyFromFloat(pt[i]), uint64(id)); err != nil {
			return err
		}
	}
	t.ids[id] = true
	t.size++
	return nil
}

// Delete removes the object from every tree (recomputing its coordinates)
// and the RAF.
func (t *BPlus) Delete(id int) error {
	if !t.ids[id] {
		return fmt.Errorf("omni: delete of unindexed object %d", id)
	}
	pt := t.point(t.ds.Object(id))
	for i, tr := range t.trees {
		if err := tr.Delete(bptree.KeyFromFloat(pt[i]), uint64(id)); err != nil {
			return err
		}
	}
	delete(t.ids, id)
	t.size--
	return t.raf.Delete(id)
}

// PageAccesses reports the pager's accesses.
func (t *BPlus) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *BPlus) ResetStats() { t.pager.ResetStats() }

// MemBytes reports the id directory size.
func (t *BPlus) MemBytes() int64 { return int64(len(t.ids)) * 9 }

// DiskBytes reports the trees + RAF footprint (l trees, hence the
// redundant storage the paper flags).
func (t *BPlus) DiskBytes() int64 { return t.pager.DiskBytes() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
