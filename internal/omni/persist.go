package omni

import (
	"fmt"
	"sort"

	"metricindex/internal/bptree"
	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/rtree"
	"metricindex/internal/store"
)

// Snapshot payload encodings for the Omni family (spec:
// docs/PERSISTENCE.md §Omni). All three members share the base encoding:
// pager volume image, RAF state, pivot ids and values; the member state
// follows.

const omniFormatVersion = 1

func init() {
	persist.Register("Omni-seq", loadSeqFile)
	persist.Register("OmniB+-tree", loadBPlus)
	persist.Register("OmniR-tree", loadRTree)
}

func (b *base) encodeBase(w *persist.Writer) {
	w.Blob(b.pager.Serialize())
	w.Blob(b.raf.Serialize())
	w.Ints(b.pivotIDs)
	w.Objects(b.pivotVals)
}

func decodeBase(ds *core.Dataset, r *persist.Reader) (*base, error) {
	pagerBlob := r.Blob()
	rafBlob := r.Blob()
	pivotIDs := r.Ints()
	pivotVals := r.Objects()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(pivotVals) != len(pivotIDs) || len(pivotIDs) == 0 {
		return nil, fmt.Errorf("omni: %d pivot values for %d pivot ids", len(pivotVals), len(pivotIDs))
	}
	pager, err := store.LoadPager(pagerBlob)
	if err != nil {
		return nil, err
	}
	raf, err := store.LoadRAF(pager, rafBlob)
	if err != nil {
		return nil, err
	}
	return &base{ds: ds, pager: pager, raf: raf, pivotIDs: pivotIDs, pivotVals: pivotVals}, nil
}

// EncodeSnapshot writes the Omni-sequential-file payload: base state, the
// table page list, the row count and the row directory.
func (t *SeqFile) EncodeSnapshot(w *persist.Writer) error {
	w.U16(omniFormatVersion)
	t.encodeBase(w)
	w.PageIDs(t.pages)
	w.U32(uint32(t.rows))
	ids := make([]int, 0, len(t.rowOf))
	for id := range t.rowOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U32(uint32(id))
		w.U32(uint32(t.rowOf[id]))
	}
	return nil
}

func loadSeqFile(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != omniFormatVersion {
		return nil, nil, fmt.Errorf("omni: unsupported payload version %d", v)
	}
	b, err := decodeBase(ds, r)
	if err != nil {
		return nil, nil, err
	}
	t := &SeqFile{
		base:    b,
		rowOf:   make(map[int]int),
		rowSize: 4 + 8*len(b.pivotIDs),
	}
	if t.rowsPerPage() < 1 {
		return nil, nil, fmt.Errorf("omni: page size %d below one row (%d bytes)", b.pager.PageSize(), t.rowSize)
	}
	t.pages = r.PageIDs()
	t.rows = int(r.U32())
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for _, pid := range t.pages {
		if int(pid) >= b.pager.Pages() {
			return nil, nil, fmt.Errorf("omni: table page %d beyond volume (%d pages)", pid, b.pager.Pages())
		}
	}
	if t.rows < 0 || (len(t.pages) > 0 && (t.rows+t.rowsPerPage()-1)/t.rowsPerPage() > len(t.pages)) {
		return nil, nil, fmt.Errorf("omni: %d rows overflow %d table pages", t.rows, len(t.pages))
	}
	for i := 0; i < n; i++ {
		id := int(r.U32())
		row := int(r.U32())
		if row < 0 || row >= t.rows {
			return nil, nil, fmt.Errorf("omni: directory row %d out of range (%d rows)", row, t.rows)
		}
		t.rowOf[id] = row
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return t, b.pager, nil
}

// EncodeSnapshot writes the OmniB+-tree payload: base state, the indexed
// id set, and each per-pivot B+-tree's root and size.
func (t *BPlus) EncodeSnapshot(w *persist.Writer) error {
	w.U16(omniFormatVersion)
	t.encodeBase(w)
	w.U32(uint32(t.size))
	ids := make([]int, 0, len(t.ids))
	for id := range t.ids {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Ints(ids)
	w.U32(uint32(len(t.trees)))
	for _, tr := range t.trees {
		w.U32(uint32(tr.Root()))
		w.U32(uint32(tr.Len()))
	}
	return nil
}

func loadBPlus(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != omniFormatVersion {
		return nil, nil, fmt.Errorf("omni: unsupported payload version %d", v)
	}
	b, err := decodeBase(ds, r)
	if err != nil {
		return nil, nil, err
	}
	t := &BPlus{base: b, ids: make(map[int]bool)}
	t.size = int(r.U32())
	for _, id := range r.Ints() {
		t.ids[id] = true
	}
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if n != len(b.pivotIDs) {
		return nil, nil, fmt.Errorf("omni: %d B+-trees for %d pivots", n, len(b.pivotIDs))
	}
	t.trees = make([]*bptree.Tree, n)
	for i := range t.trees {
		root := store.PageID(r.U32())
		sz := int(r.U32())
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		t.trees[i], err = bptree.Restore(b.pager, nil, root, sz)
		if err != nil {
			return nil, nil, err
		}
	}
	return t, b.pager, nil
}

// EncodeSnapshot writes the OmniR-tree payload: base state, the R-tree
// root/size/bound, and the id→coordinates table used by deletes.
func (t *RTree) EncodeSnapshot(w *persist.Writer) error {
	w.U16(omniFormatVersion)
	t.encodeBase(w)
	w.U32(uint32(t.tree.Root()))
	w.U32(uint32(t.tree.Len()))
	w.F64(t.tree.MaxCoord())
	ids := make([]int, 0, len(t.points))
	for id := range t.points {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U32(uint32(id))
		w.Floats(t.points[id])
	}
	return nil
}

func loadRTree(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != omniFormatVersion {
		return nil, nil, fmt.Errorf("omni: unsupported payload version %d", v)
	}
	b, err := decodeBase(ds, r)
	if err != nil {
		return nil, nil, err
	}
	root := store.PageID(r.U32())
	sz := int(r.U32())
	maxCoord := r.F64()
	n := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	tree, err := rtree.Restore(b.pager, len(b.pivotIDs), maxCoord, root, sz)
	if err != nil {
		return nil, nil, err
	}
	t := &RTree{base: b, tree: tree, points: make(map[int][]float64, n)}
	for i := 0; i < n; i++ {
		id := int(r.U32())
		pt := r.Floats()
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		if len(pt) != len(b.pivotIDs) {
			return nil, nil, fmt.Errorf("omni: point %d has %d coordinates, want %d", id, len(pt), len(b.pivotIDs))
		}
		t.points[id] = pt
	}
	return t, b.pager, nil
}
