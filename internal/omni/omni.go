// Package omni implements the Omni-family of [17] (§5.2): pivot-space
// coordinates ("Omni-coordinates") of every object indexed by an existing
// access method, with the objects themselves in a separate random-access
// file so object size never bloats the index. Three members are provided,
// as in the paper: the Omni-sequential-file, the OmniB+-tree (one B+-tree
// per pivot), and the OmniR-tree (one R-tree over all coordinates — the
// best performer of the family and the one benchmarked in §6).
package omni

import (
	"fmt"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// base carries what all family members share: the pivot table, the RAF,
// and the per-query scratch pool.
type base struct {
	ds        *core.Dataset
	pager     *store.Pager
	raf       *store.RAF
	pivotIDs  []int
	pivotVals []core.Object
	scratch   core.ScratchPool
}

func newBase(ds *core.Dataset, pager *store.Pager, pivots []int) (*base, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("omni: no pivots")
	}
	b := &base{
		ds:       ds,
		pager:    pager,
		raf:      store.NewRAF(pager),
		pivotIDs: append([]int(nil), pivots...),
	}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("omni: pivot %d is not a live object", p)
		}
		b.pivotVals = append(b.pivotVals, v)
	}
	return b, nil
}

// point computes the Omni-coordinates of an object through the batch
// kernel (l counted distances).
func (b *base) point(o core.Object) []float64 {
	pt := make([]float64, len(b.pivotVals))
	b.ds.Space().DistanceMany(o, b.pivotVals, pt)
	return pt
}

// queryPoint computes a query's Omni-coordinates into pooled scratch;
// the caller returns the Scratch when the query finishes, so
// steady-state queries do not allocate the coordinate buffer.
func (b *base) queryPoint(q core.Object) (*core.Scratch, []float64) {
	sc := b.scratch.Get()
	qd := sc.GrowQD(len(b.pivotVals))
	b.ds.Space().DistanceMany(q, b.pivotVals, qd)
	return sc, qd
}

// buildPoints computes the Omni-coordinates of every given object, fanning
// the distance computations out across workers goroutines (0 or 1 =
// sequential, negative = GOMAXPROCS). The pivot table is the
// embarrassingly-parallel part of every family member's construction; the
// disk structures themselves are still written sequentially by the
// callers, so the built index is identical to a sequential build.
func (b *base) buildPoints(ids []int, workers int) [][]float64 {
	pts := make([][]float64, len(ids))
	core.ParallelFor(len(ids), workers, func(start, end int) {
		for i := start; i < end; i++ {
			pts[i] = b.point(b.ds.Object(ids[i]))
		}
	})
	return pts
}

// appendRAF stores the object bytes and returns the record offset.
func (b *base) appendRAF(id int) (int64, error) {
	return b.raf.Append(id, store.EncodeObject(nil, b.ds.Object(id)))
}

// loadObject fetches and decodes the object from the RAF (paying the page
// accesses its record spans).
func (b *base) loadObject(id int) (core.Object, error) {
	buf, err := b.raf.Read(id)
	if err != nil {
		return nil, err
	}
	o, _, err := store.DecodeObject(buf)
	return o, err
}

// verifyRange fetches a candidate and checks d(q, o) <= r.
func (b *base) verifyRange(q core.Object, id int, r float64) (bool, error) {
	o, err := b.loadObject(id)
	if err != nil {
		return false, err
	}
	return b.ds.Space().Distance(q, o) <= r, nil
}

// searchBox is the Lemma 1 search region SR(q) as a box in pivot space.
func searchBox(qd []float64, r float64) (lo, hi []float64) {
	lo = make([]float64, len(qd))
	hi = make([]float64, len(qd))
	for i := range qd {
		lo[i] = qd[i] - r
		if lo[i] < 0 {
			lo[i] = 0
		}
		hi[i] = qd[i] + r
	}
	return lo, hi
}
