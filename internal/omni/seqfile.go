package omni

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// SeqFile is the Omni-sequential-file (§5.2): the pivot-space coordinates
// stored row-by-row on disk pages, scanned in full by every query — "LAESA
// stored on disk", as the paper puts it, with the accompanying page-access
// bill because nothing is clustered.
type SeqFile struct {
	*base
	pages   []store.PageID
	rows    int
	rowOf   map[int]int
	rowSize int
}

const seqTombstone = 0xFFFFFFFF

// NewSeqFile builds the sequential file over all live objects. workers
// parallelizes the pivot-table precompute (0 or 1 = sequential, negative =
// GOMAXPROCS).
func NewSeqFile(ds *core.Dataset, pager *store.Pager, pivots []int, workers int) (*SeqFile, error) {
	b, err := newBase(ds, pager, pivots)
	if err != nil {
		return nil, err
	}
	t := &SeqFile{
		base:    b,
		rowOf:   make(map[int]int),
		rowSize: 4 + 8*len(pivots),
	}
	if t.rowsPerPage() < 1 {
		return nil, fmt.Errorf("omni: page size %d below one row (%d bytes)", pager.PageSize(), t.rowSize)
	}
	ids := ds.LiveIDs()
	pts := t.buildPoints(ids, workers)
	for i, id := range ids {
		if _, dup := t.rowOf[id]; dup {
			return nil, fmt.Errorf("omni: duplicate insert of %d", id)
		}
		if _, err := t.appendRAF(id); err != nil {
			return nil, err
		}
		if err := t.writeRow(t.rows, uint32(id), pts[i]); err != nil {
			return nil, err
		}
		t.rowOf[id] = t.rows
		t.rows++
	}
	return t, nil
}

func (t *SeqFile) rowsPerPage() int { return (t.pager.PageSize() - 2) / t.rowSize }

// Name returns "Omni-seq".
func (t *SeqFile) Name() string { return "Omni-seq" }

// Len returns the number of indexed objects.
func (t *SeqFile) Len() int { return len(t.rowOf) }

// writeRow stores one row, extending the file as needed.
func (t *SeqFile) writeRow(row int, id uint32, pt []float64) error {
	rpp := t.rowsPerPage()
	pageIdx := row / rpp
	for pageIdx >= len(t.pages) {
		t.pages = append(t.pages, t.pager.Alloc())
	}
	pid := t.pages[pageIdx]
	page, err := t.pager.Read(pid)
	if err != nil {
		return err
	}
	buf := make([]byte, len(page))
	copy(buf, page)
	off := 2 + (row%rpp)*t.rowSize
	binary.LittleEndian.PutUint32(buf[off:], id)
	for i, v := range pt {
		binary.LittleEndian.PutUint64(buf[off+4+8*i:], math.Float64bits(v))
	}
	// Track row count in the page header.
	cnt := binary.LittleEndian.Uint16(buf[0:2])
	if uint16(row%rpp)+1 > cnt {
		binary.LittleEndian.PutUint16(buf[0:2], uint16(row%rpp)+1)
	}
	return t.pager.Write(pid, buf)
}

// scan invokes fn(id, point) for every live row, paying one page access
// per file page.
func (t *SeqFile) scan(fn func(id int, pt []float64) bool) error {
	l := len(t.pivotVals)
	pt := make([]float64, l)
	for _, pid := range t.pages {
		page, err := t.pager.Read(pid)
		if err != nil {
			return err
		}
		cnt := int(binary.LittleEndian.Uint16(page[0:2]))
		for rI := 0; rI < cnt; rI++ {
			off := 2 + rI*t.rowSize
			id := binary.LittleEndian.Uint32(page[off:])
			if id == seqTombstone {
				continue
			}
			for i := 0; i < l; i++ {
				pt[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off+4+8*i:]))
			}
			if !fn(int(id), pt) {
				return nil
			}
		}
	}
	return nil
}

// RangeSearch answers MRQ(q, r) with a full scan (Lemma 1 filter) plus
// RAF verification of survivors.
func (t *SeqFile) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	var cands []int
	if err := t.scan(func(id int, pt []float64) bool {
		if !core.PruneObject(qd, pt, r) {
			cands = append(cands, id)
		}
		return true
	}); err != nil {
		return nil, err
	}
	var res []int
	for _, id := range cands {
		ok, err := t.verifyRange(q, id, r)
		if err != nil {
			return nil, err
		}
		if ok {
			res = append(res, id)
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k) with the same scan and a tightening
// radius.
func (t *SeqFile) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	h := sc.Heap(k)
	var scanErr error
	if err := t.scan(func(id int, pt []float64) bool {
		r := h.Radius()
		if !math.IsInf(r, 1) && core.PruneObject(qd, pt, r) {
			return true
		}
		o, err := t.loadObject(id)
		if err != nil {
			scanErr = err
			return false
		}
		h.Push(id, t.ds.Space().Distance(q, o))
		return true
	}); err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return h.Result(), nil
}

// Insert appends a row and the RAF record.
func (t *SeqFile) Insert(id int) error {
	if _, dup := t.rowOf[id]; dup {
		return fmt.Errorf("omni: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("omni: insert of deleted or out-of-range id %d", id)
	}
	if _, err := t.appendRAF(id); err != nil {
		return err
	}
	pt := t.point(o)
	row := t.rows
	if err := t.writeRow(row, uint32(id), pt); err != nil {
		return err
	}
	t.rows++
	t.rowOf[id] = row
	return nil
}

// Delete tombstones the row and drops the RAF record.
func (t *SeqFile) Delete(id int) error {
	row, ok := t.rowOf[id]
	if !ok {
		return fmt.Errorf("omni: delete of unindexed object %d", id)
	}
	zero := make([]float64, len(t.pivotVals))
	if err := t.writeRow(row, seqTombstone, zero); err != nil {
		return err
	}
	delete(t.rowOf, id)
	return t.raf.Delete(id)
}

// PageAccesses reports the pager's accesses.
func (t *SeqFile) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *SeqFile) ResetStats() { t.pager.ResetStats() }

// MemBytes reports the small in-memory directory.
func (t *SeqFile) MemBytes() int64 { return int64(len(t.rowOf)) * 16 }

// DiskBytes reports the file + RAF footprint.
func (t *SeqFile) DiskBytes() int64 { return t.pager.DiskBytes() }
