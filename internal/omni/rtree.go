package omni

import (
	"container/heap"
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/rtree"
	"metricindex/internal/store"
)

// RTree is the OmniR-tree (§5.2): an R-tree over the pivot-space points
// with the objects in the RAF. The paper's experiments use this member as
// the family's representative because it performs best.
type RTree struct {
	*base
	tree   *rtree.Tree
	points map[int][]float64 // id -> coordinates (for deletes)
}

// Options tunes construction.
type Options struct {
	// MaxDistance bounds pivot distances (d+), used to quantize the
	// Hilbert bulk-load ordering.
	MaxDistance float64
	// Workers parallelizes the pivot-table precompute during
	// construction: 0 or 1 builds sequentially, negative uses GOMAXPROCS,
	// otherwise that many goroutines.
	Workers int
}

// NewRTree bulk-loads the OmniR-tree over all live objects.
func NewRTree(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*RTree, error) {
	b, err := newBase(ds, pager, pivots)
	if err != nil {
		return nil, err
	}
	maxD := opts.MaxDistance
	if maxD <= 0 {
		maxD = 1
	}
	tree, err := rtree.New(pager, len(pivots), maxD)
	if err != nil {
		return nil, err
	}
	t := &RTree{base: b, tree: tree, points: make(map[int][]float64)}
	ids := ds.LiveIDs()
	pts := t.buildPoints(ids, opts.Workers)
	entries := make([]rtree.Entry, 0, ds.Count())
	for i, id := range ids {
		off, err := t.appendRAF(id)
		if err != nil {
			return nil, err
		}
		t.points[id] = pts[i]
		entries = append(entries, rtree.Entry{ID: int32(id), RAFOff: uint64(off), Point: pts[i]})
	}
	if err := tree.BulkLoad(entries); err != nil {
		return nil, err
	}
	return t, nil
}

// Name returns "OmniR-tree".
func (t *RTree) Name() string { return "OmniR-tree" }

// Len returns the number of indexed objects.
func (t *RTree) Len() int { return t.tree.Len() }

// RangeSearch answers MRQ(q, r): the R-tree reports every point inside
// SR(q) (Lemma 1), and each candidate is fetched from the RAF and
// verified (§5.2).
func (t *RTree) RangeSearch(q core.Object, r float64) ([]int, error) {
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	lo, hi := searchBox(qd, r)
	var candidates []int
	if err := t.tree.Search(lo, hi, func(e *rtree.Entry) bool {
		candidates = append(candidates, int(e.ID))
		return true
	}); err != nil {
		return nil, err
	}
	var res []int
	for _, id := range candidates {
		ok, err := t.verifyRange(q, id, r)
		if err != nil {
			return nil, err
		}
		if ok {
			res = append(res, id)
		}
	}
	sort.Ints(res)
	return res, nil
}

// knnNode prioritizes R-tree subtrees by their pivot-space MINDIST, a
// lower bound of the true distance by Lemma 1.
type knnNode struct {
	pid store.PageID
	lb  float64
}

type knnPQ []knnNode

func (p knnPQ) Len() int           { return len(p) }
func (p knnPQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p knnPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *knnPQ) Push(x any)        { *p = append(*p, x.(knnNode)) }
func (p *knnPQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

func boxMinDist(qd, lo, hi []float64) float64 {
	var m float64
	for i := range qd {
		var d float64
		switch {
		case qd[i] < lo[i]:
			d = lo[i] - qd[i]
		case qd[i] > hi[i]:
			d = qd[i] - hi[i]
		}
		if d > m {
			m = d
		}
	}
	return m
}

// KNNSearch answers MkNNQ(q, k) best-first: nodes in ascending MINDIST
// order, leaf candidates verified against the RAF with a tightening
// radius (§5.2).
func (t *RTree) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	sc, qd := t.queryPoint(q)
	defer t.scratch.Put(sc)
	h := sc.Heap(k)
	pq := &knnPQ{}
	heap.Push(pq, knnNode{t.tree.Root(), 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnNode)
		if it.lb > h.Radius() {
			break
		}
		n, err := t.tree.ReadNode(it.pid)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			// Verify entries in ascending lower-bound order so the radius
			// tightens as early as possible.
			type cand struct {
				id int
				lb float64
			}
			cands := make([]cand, 0, len(n.Entries))
			for i := range n.Entries {
				lb := core.PivotLowerBound(qd, n.Entries[i].Point)
				cands = append(cands, cand{int(n.Entries[i].ID), lb})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
			for _, c := range cands {
				if c.lb > h.Radius() {
					break
				}
				o, err := t.loadObject(c.id)
				if err != nil {
					return nil, err
				}
				h.Push(c.id, t.ds.Space().Distance(q, o))
			}
			continue
		}
		for i := range n.Children {
			lb := boxMinDist(qd, n.Lo[i], n.Hi[i])
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				heap.Push(pq, knnNode{n.Children[i], lb})
			}
		}
	}
	return h.Result(), nil
}

// Insert appends the object to the RAF and the R-tree.
func (t *RTree) Insert(id int) error {
	if _, dup := t.points[id]; dup {
		return fmt.Errorf("omni: duplicate insert of %d", id)
	}
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("omni: insert of deleted or out-of-range id %d", id)
	}
	off, err := t.appendRAF(id)
	if err != nil {
		return err
	}
	pt := t.point(o)
	t.points[id] = pt
	return t.tree.Insert(rtree.Entry{ID: int32(id), RAFOff: uint64(off), Point: pt})
}

// Delete removes the object from the R-tree (descending by its stored
// coordinates) and the RAF directory.
func (t *RTree) Delete(id int) error {
	pt, ok := t.points[id]
	if !ok {
		return fmt.Errorf("omni: delete of unindexed object %d", id)
	}
	if err := t.tree.Delete(id, pt); err != nil {
		return err
	}
	delete(t.points, id)
	return t.raf.Delete(id)
}

// PageAccesses reports the pager's accesses (R-tree + RAF).
func (t *RTree) PageAccesses() int64 { return t.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (t *RTree) ResetStats() { t.pager.ResetStats() }

// MemBytes reports the in-memory footprint (pivot table and the
// coordinate directory used for deletes).
func (t *RTree) MemBytes() int64 {
	return int64(len(t.points)) * int64(8+8*len(t.pivotVals))
}

// DiskBytes reports the on-disk footprint (R-tree pages + RAF pages).
func (t *RTree) DiskBytes() int64 { return t.pager.DiskBytes() }
