package omni

import (
	"reflect"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

// member abstracts the three family members for shared tests.
type member interface {
	testutil.Searcher
	Insert(id int) error
	Delete(id int) error
	Name() string
	Len() int
	PageAccesses() int64
	ResetStats()
	DiskBytes() int64
}

func builders(t *testing.T, ds *core.Dataset) map[string]member {
	t.Helper()
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	out := make(map[string]member)
	{
		p := store.NewPager(512)
		idx, err := NewRTree(ds, p, pv, Options{MaxDistance: 250})
		if err != nil {
			t.Fatalf("NewRTree: %v", err)
		}
		out["rtree"] = idx
	}
	{
		p := store.NewPager(512)
		idx, err := NewSeqFile(ds, p, pv, 0)
		if err != nil {
			t.Fatalf("NewSeqFile: %v", err)
		}
		out["seq"] = idx
	}
	{
		p := store.NewPager(512)
		idx, err := NewBPlus(ds, p, pv, 0)
		if err != nil {
			t.Fatalf("NewBPlus: %v", err)
		}
		out["bplus"] = idx
	}
	return out
}

func TestOmniFamilyMatchesBruteForce(t *testing.T) {
	ds := testutil.VectorDataset(350, 4, 100, core.L2{}, 7)
	for name, idx := range builders(t, ds) {
		t.Run(name, func(t *testing.T) {
			for qs := int64(0); qs < 3; qs++ {
				q := testutil.RandomQuery(ds, qs)
				for _, r := range testutil.Radii(ds, q) {
					testutil.CheckRange(t, idx, ds, q, r)
				}
				for _, k := range []int{1, 7, 40, 350} {
					testutil.CheckKNN(t, idx, ds, q, k)
				}
			}
		})
	}
}

func TestOmniFamilyWords(t *testing.T) {
	ds := testutil.WordDataset(250, 11)
	for name, idx := range builders(t, ds) {
		t.Run(name, func(t *testing.T) {
			q := testutil.RandomQuery(ds, 3)
			for _, r := range []float64{0, 1, 2, 4} {
				testutil.CheckRange(t, idx, ds, q, r)
			}
			testutil.CheckKNN(t, idx, ds, q, 9)
		})
	}
}

func TestOmniFamilyInsertDelete(t *testing.T) {
	for _, name := range []string{"rtree", "seq", "bplus"} {
		ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 13)
		idx := builders(t, ds)[name]
		t.Run(name, func(t *testing.T) {
			for id := 0; id < 200; id += 4 {
				if err := idx.Delete(id); err != nil {
					t.Fatalf("Delete(%d): %v", id, err)
				}
				if err := ds.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 30; i++ {
				id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
				if err := idx.Insert(id); err != nil {
					t.Fatalf("Insert(%d): %v", id, err)
				}
			}
			q := testutil.RandomQuery(ds, 2)
			for _, r := range testutil.Radii(ds, q) {
				testutil.CheckRange(t, idx, ds, q, r)
			}
			testutil.CheckKNN(t, idx, ds, q, 15)
			if idx.Len() != ds.Count() {
				t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
			}
			if err := idx.Delete(99999); err == nil {
				t.Fatal("delete of absent id should fail")
			}
		})
	}
}

func TestOmniRTreeCheaperIOThanSeq(t *testing.T) {
	// §5.2: the sequential file "incurs substantial I/O during search as
	// the data is not clustered"; the OmniR-tree must beat it on a
	// selective query.
	ds := testutil.VectorDataset(600, 4, 100, core.L2{}, 21)
	m := builders(t, ds)
	q := testutil.RandomQuery(ds, 5)
	cost := func(idx member) int64 {
		idx.ResetStats()
		if _, err := idx.RangeSearch(q, 3); err != nil {
			t.Fatal(err)
		}
		return idx.PageAccesses()
	}
	rt, seq := cost(m["rtree"]), cost(m["seq"])
	if rt >= seq {
		t.Fatalf("OmniR-tree PA (%d) should beat Omni-seq (%d) on selective queries", rt, seq)
	}
}

func TestOmniNames(t *testing.T) {
	ds := testutil.VectorDataset(60, 3, 100, core.L2{}, 1)
	m := builders(t, ds)
	if m["rtree"].Name() != "OmniR-tree" || m["seq"].Name() != "Omni-seq" || m["bplus"].Name() != "OmniB+-tree" {
		t.Fatalf("unexpected names: %q %q %q", m["rtree"].Name(), m["seq"].Name(), m["bplus"].Name())
	}
	for _, idx := range m {
		if idx.DiskBytes() == 0 {
			t.Fatalf("%s must report disk usage", idx.Name())
		}
	}
}

// TestOmniParallelBuildMatchesSequential checks that the parallel
// pivot-table precompute yields family members identical to sequential
// builds (same answers, same disk footprint).
func TestOmniParallelBuildMatchesSequential(t *testing.T) {
	seqDS := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	parDS := testutil.VectorDataset(300, 4, 100, core.L2{}, 7)
	pv, err := pivot.HFI(seqDS, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	type pair struct{ seq, par core.Index }
	pairs := map[string]pair{}
	{
		sp, pp := store.NewPager(512), store.NewPager(512)
		s, err := NewRTree(seqDS, sp, pv, Options{MaxDistance: 300})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewRTree(parDS, pp, pv, Options{MaxDistance: 300, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		pairs["rtree"] = pair{s, p}
	}
	{
		sp, pp := store.NewPager(512), store.NewPager(512)
		s, err := NewSeqFile(seqDS, sp, pv, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSeqFile(parDS, pp, pv, 4)
		if err != nil {
			t.Fatal(err)
		}
		pairs["seq"] = pair{s, p}
	}
	{
		sp, pp := store.NewPager(512), store.NewPager(512)
		s, err := NewBPlus(seqDS, sp, pv, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewBPlus(parDS, pp, pv, 4)
		if err != nil {
			t.Fatal(err)
		}
		pairs["bplus"] = pair{s, p}
	}
	for name, pr := range pairs {
		if s, p := pr.seq.DiskBytes(), pr.par.DiskBytes(); s != p {
			t.Fatalf("%s: disk footprint differs: %d vs %d", name, s, p)
		}
		for qs := int64(0); qs < 3; qs++ {
			q := testutil.RandomQuery(seqDS, qs)
			a, err := pr.seq.RangeSearch(q, 30)
			if err != nil {
				t.Fatal(err)
			}
			b, err := pr.par.RangeSearch(q, 30)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: MRQ answers differ: %v vs %v", name, a, b)
			}
		}
	}
}
