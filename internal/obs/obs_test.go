package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mx_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("mx_test_depth", "depth")
	g.Set(7)
	if n := g.Add(-3); n != 4 {
		t.Fatalf("gauge Add returned %d, want 4", n)
	}
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mx_test_total", "t", Label{"k", "v"})
	b := r.Counter("mx_test_total", "ignored help", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	other := r.Counter("mx_test_total", "t", Label{"k", "w"})
	if other == a {
		t.Fatal("distinct label values shared a handle")
	}

	h1 := r.Histogram("mx_test_seconds", "s", DefLatencyBuckets)
	h2 := r.Histogram("mx_test_seconds", "s", DefLatencyBuckets)
	if h1 != h2 {
		t.Fatal("histogram registration not idempotent")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mx_test_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("mx_test_total", "t")
}

func TestFamilyKindConsistencyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mx_test_total", "t", Label{"a", "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("mixing kinds inside a family did not panic")
		}
	}()
	r.Gauge("mx_test_total", "t", Label{"a", "2"})
}

func TestBadNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mx_test_seconds", "s", []float64{1, 2, 4})
	// le semantics: a value exactly on a bound lands in that bucket.
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 9} {
		h.Observe(v)
	}
	_, cum, sum, count := h.snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	// cumulative: le=1 -> {0.5, 1}; le=2 -> +{1.5, 2}; le=4 -> +{4}; +Inf -> +{9}
	want := []int64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 9; sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
	if h.Count() != 6 {
		t.Fatalf("Count() = %d, want 6", h.Count())
	}
}

func TestHistogramNonAscendingPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	r.Histogram("mx_test_seconds", "s", []float64{1, 1})
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines; exact totals prove no update is lost
// (and -race proves no data race).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mx_test_ops_total", "")
	g := r.Gauge("mx_test_depth", "")
	h := r.Histogram("mx_test_seconds", "", []float64{0.5, 1})

	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%3) * 0.5) // 0, 0.5, 1 — all finite buckets
			}
		}(w)
	}
	// Scrape concurrently with the writers; output must stay parseable
	// and internally consistent even mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := r.Snapshot()
			if len(snap) == 0 {
				t.Error("empty snapshot during concurrent updates")
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	_, cum, sum, count := h.snapshot()
	if count != workers*perW {
		t.Fatalf("histogram count = %d, want %d", count, workers*perW)
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf cumulative %d != count %d", cum[len(cum)-1], count)
	}
	// Each worker observes perW/3 full cycles of (0, 0.5, 1) plus a
	// partial; with perW divisible by... 2000 % 3 = 2, so per worker:
	// 667×0 + 667×0.5 + 666×1 = 999.5.
	wantSum := float64(workers) * 999.5
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("histogram sum = %v, want %v", sum, wantSum)
	}
}

func TestSnapshotHistogramEntries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mx_test_seconds", "", []float64{1}, Label{"endpoint", "knn"})
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()
	if got := snap[`mx_test_seconds_count{endpoint="knn"}`]; got != 2 {
		t.Fatalf("snapshot count = %v, want 2 (snapshot: %v)", got, snap)
	}
	if got := snap[`mx_test_seconds_sum{endpoint="knn"}`]; got != 3.5 {
		t.Fatalf("snapshot sum = %v, want 3.5", got)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("mx_test_pull_total", "", func() float64 { return n })
	r.GaugeFunc("mx_test_level", "", func() float64 { return -n })
	n = 42
	snap := r.Snapshot()
	if snap["mx_test_pull_total"] != 42 {
		t.Fatalf("counterfunc = %v, want 42", snap["mx_test_pull_total"])
	}
	if snap["mx_test_level"] != -42 {
		t.Fatalf("gaugefunc = %v, want -42", snap["mx_test_level"])
	}
}
