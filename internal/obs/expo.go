package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its samples, families sorted by name, samples by
// label set. Histograms expand to cumulative _bucket{le=...} lines plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind.expoType())
		}
		if m.kind == kindHistogram {
			writeHistogram(bw, m)
			continue
		}
		bw.WriteString(m.name)
		if m.labels != "" {
			bw.WriteByte('{')
			bw.WriteString(m.labels)
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
		bw.WriteString(formatValue(m.value()))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, m *metric) {
	bounds, cumulative, sum, count := m.h.snapshot()
	for i, b := range bounds {
		bw.WriteString(m.name)
		bw.WriteString(`_bucket{`)
		if m.labels != "" {
			bw.WriteString(m.labels)
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(formatValue(b))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cumulative[i], 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(m.name)
	bw.WriteString(`_bucket{`)
	if m.labels != "" {
		bw.WriteString(m.labels)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="+Inf"} `)
	bw.WriteString(strconv.FormatInt(count, 10))
	bw.WriteByte('\n')

	bw.WriteString(m.name)
	bw.WriteString("_sum")
	if m.labels != "" {
		bw.WriteByte('{')
		bw.WriteString(m.labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(sum))
	bw.WriteByte('\n')

	bw.WriteString(m.name)
	bw.WriteString("_count")
	if m.labels != "" {
		bw.WriteByte('{')
		bw.WriteString(m.labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(count, 10))
	bw.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in shortest-round-trip
// form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Snapshot flattens the registry into name{labels} -> value. Histograms
// contribute two entries, <name>_count and <name>_sum. This is the form
// cmd/benchjson embeds in the CI artifact.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		name := m.name
		if m.labels != "" {
			name += "{" + m.labels + "}"
		}
		if m.kind == kindHistogram {
			_, _, sum, count := m.h.snapshot()
			suffix := ""
			if m.labels != "" {
				suffix = "{" + m.labels + "}"
			}
			out[m.name+"_count"+suffix] = float64(count)
			out[m.name+"_sum"+suffix] = sum
			continue
		}
		out[name] = m.value()
	}
	return out
}

// Handler returns the GET /metrics scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The response writer's error surfaces as a broken scrape on the
		// client side; nothing useful to do with it here.
		_ = r.WritePrometheus(w)
	})
}
