package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden locks the exposition byte format: family
// ordering, HELP/TYPE lines, label rendering, histogram expansion.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mx_requests_total", "Requests served.", Label{"endpoint", "knn"}).Add(3)
	r.Counter("mx_requests_total", "Requests served.", Label{"endpoint", "range"}).Add(1)
	r.Gauge("mx_inflight", "In-flight requests.").Set(2)
	h := r.Histogram("mx_latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.25)
	h.Observe(2)
	r.GaugeFunc("mx_epoch", "Current epoch.", func() float64 { return 9 })
	r.Counter("mx_escaped_total", "", Label{"path", `a"b\c`}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mx_epoch Current epoch.
# TYPE mx_epoch gauge
mx_epoch 9
# TYPE mx_escaped_total counter
mx_escaped_total{path="a\"b\\c"} 1
# HELP mx_inflight In-flight requests.
# TYPE mx_inflight gauge
mx_inflight 2
# HELP mx_latency_seconds Request latency.
# TYPE mx_latency_seconds histogram
mx_latency_seconds_bucket{le="0.1"} 1
mx_latency_seconds_bucket{le="0.5"} 2
mx_latency_seconds_bucket{le="+Inf"} 3
mx_latency_seconds_sum 2.3
mx_latency_seconds_count 3
# HELP mx_requests_total Requests served.
# TYPE mx_requests_total counter
mx_requests_total{endpoint="knn"} 3
mx_requests_total{endpoint="range"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mx_probe_seconds", "", []float64{1}, Label{"shard", "0"})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`mx_probe_seconds_bucket{shard="0",le="1"} 1`,
		`mx_probe_seconds_bucket{shard="0",le="+Inf"} 1`,
		`mx_probe_seconds_sum{shard="0"} 0.5`,
		`mx_probe_seconds_count{shard="0"} 1`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("mx_ops_total", "Ops.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "mx_ops_total 1\n") {
		t.Fatalf("scrape body missing sample:\n%s", rec.Body.String())
	}
}

func TestTraceSpans(t *testing.T) {
	t0 := time.Now()
	tr := NewTraceAt(t0)
	tr.Add("merge", t0.Add(3*time.Millisecond), time.Millisecond, 0, 0)
	tr.Add("read_section", t0.Add(time.Millisecond), 2*time.Millisecond, 12, 3)
	tr.Add("cache_probe", t0, 50*time.Microsecond, 0, 0)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	order := []string{"cache_probe", "read_section", "merge"}
	for i, name := range order {
		if spans[i].Name != name {
			t.Fatalf("span %d = %q, want %q", i, spans[i].Name, name)
		}
	}
	if spans[1].CompDists != 12 || spans[1].PageAccesses != 3 {
		t.Fatalf("read_section costs = %+v", spans[1])
	}
	if spans[1].StartMicros != 1000 || spans[1].DurMicros != 2000 {
		t.Fatalf("read_section timing = %+v", spans[1])
	}

	// nil trace is inert everywhere.
	var nilTr *Trace
	nilTr.Add("x", t0, 0, 0, 0)
	if nilTr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
}
