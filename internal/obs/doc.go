// Package obs is the repository's observability layer: a stdlib-only
// registry of counters, gauges and fixed-bucket histograms exposed in
// Prometheus text exposition format, plus the per-query trace timeline
// the server returns for trace-flagged requests.
//
// The paper's whole argument is cost accounting — compdists and page
// accesses as the measure of every pivot structure — and the serving
// layers already count them internally (core.Space, store.Pager,
// internal/cache, the admission controller, the WAL). This package
// gives those counters one operational surface: every layer registers
// its numbers here, GET /metrics scrapes them in a format any
// Prometheus-compatible collector ingests, and cmd/benchjson snapshots
// the same registry into the CI bench artifact so compdists and
// allocation trends ride alongside q/s.
//
// Design constraints, in order:
//
//   - Zero-alloc increments. Counter.Inc/Add, Gauge.Set/Add and
//     Histogram.Observe run on query hot paths (per request, per batch,
//     per shard probe, per WAL append) and must not allocate. They are
//     annotated //metriclint:noalloc — machine-checked by `make lint` —
//     and witnessed at runtime by testing.AllocsPerRun regression tests.
//     All metric handles are created at registration time (allocation is
//     fine there) and held by the instrumented struct, so the hot path
//     is an atomic add, never a map lookup.
//
//   - Stdlib only. Exposition is written by hand (the format is a few
//     lines of spec); no client_golang dependency.
//
//   - Pull for what exists, push for what doesn't. Subsystems that
//     already maintain counters (cache hits, pager traffic, WAL size,
//     the live epoch) are exposed through CounterFunc/GaugeFunc views
//     read at scrape time — zero added cost per event and the /v1/stats
//     JSON surface reads the same sources, so the two can never
//     disagree. Only genuinely new measurements (latency histograms,
//     swap durations, fsync times) use the incrementing types.
//
// Metric names use the mx_ prefix and follow Prometheus conventions:
// _total suffix on monotone counters, base-unit seconds for durations.
// The full catalog is docs/OBSERVABILITY.md.
package obs
