package obs

import (
	"testing"

	"metricindex/internal/testutil"
)

// TestIncrementAllocs is the runtime witness for the noalloc
// annotations on the increment paths: counter/gauge updates and
// histogram observations run per request, per shard probe, and per WAL
// append, and must stay allocation-free.
func TestIncrementAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	r := NewRegistry()
	c := r.Counter("mx_test_ops_total", "")
	g := r.Gauge("mx_test_depth", "")
	h := r.Histogram("mx_test_seconds", "", DefLatencyBuckets)

	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
	}); allocs != 0 {
		t.Fatalf("counter update allocated %.1f times; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		g.Set(5)
		g.Add(-1)
	}); allocs != 0 {
		t.Fatalf("gauge update allocated %.1f times; want 0", allocs)
	}
	v := 0.0003
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		h.Observe(42) // +Inf bucket: full scan, still no alloc
	}); allocs != 0 {
		t.Fatalf("histogram observe allocated %.1f times; want 0", allocs)
	}
}
