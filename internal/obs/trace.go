package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one stage of a traced query: a name from the span glossary in
// docs/OBSERVABILITY.md (admission_wait, cache_probe, read_section,
// probe_shard<N>, merge, encode, ...), its offset from the request
// start and duration in microseconds, and the paper's two cost measures
// attributed to the stage when the stage can account for them.
type Span struct {
	Name         string `json:"name"`
	StartMicros  int64  `json:"start_us"`
	DurMicros    int64  `json:"dur_us"`
	CompDists    int64  `json:"compdists,omitempty"`
	PageAccesses int64  `json:"page_accesses,omitempty"`
}

// Trace collects the span timeline of one request. A nil *Trace is
// inert: every layer takes the pointer and only records when tracing
// was requested, so the untraced hot path pays a single nil check.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewTraceAt starts a trace whose span offsets are relative to t0
// (normally the moment the request arrived, before admission).
func NewTraceAt(t0 time.Time) *Trace {
	return &Trace{t0: t0}
}

// Start returns the trace origin.
func (t *Trace) Start() time.Time {
	return t.t0
}

// Add records one span. Safe for concurrent use — shard probes record
// from scatter workers.
func (t *Trace) Add(name string, start time.Time, dur time.Duration, compdists, pageAccesses int64) {
	if t == nil {
		return
	}
	s := Span{
		Name:         name,
		StartMicros:  start.Sub(t.t0).Microseconds(),
		DurMicros:    dur.Microseconds(),
		CompDists:    compdists,
		PageAccesses: pageAccesses,
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns the recorded spans ordered by start offset (ties broken
// by name so concurrent shard probes render deterministically).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartMicros != out[j].StartMicros {
			return out[i].StartMicros < out[j].StartMicros
		}
		return out[i].Name < out[j].Name
	})
	return out
}
