package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {endpoint="knn"}. Labels are fixed
// at registration time: a labeled family pre-registers one handle per
// label value, so increments never format or look anything up.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing metric. The zero value is usable
// but a Counter should be obtained from a Registry so it is scraped.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//metriclint:noalloc
func (c *Counter) Inc() {
	c.v.Add(1)
}

// Add adds n (n must be >= 0 to keep the counter monotone).
//
//metriclint:noalloc
func (c *Counter) Add(n int64) {
	c.v.Add(n)
}

// Value reads the current count.
//
//metriclint:noalloc
func (c *Counter) Value() int64 {
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depths, in-flight
// requests, resident bytes).
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
//
//metriclint:noalloc
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease) and returns the
// new value — callers like the admission queue use the returned depth
// for control decisions, which keeps the metric and the decision on one
// shared atomic.
//
//metriclint:noalloc
func (g *Gauge) Add(delta int64) int64 {
	return g.v.Add(delta)
}

// Value reads the gauge.
//
//metriclint:noalloc
func (g *Gauge) Value() int64 {
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Observe(v) increments the first bucket whose upper bound is
// >= v (le semantics), plus an implicit +Inf bucket, and accumulates
// the sum of observations. Bucket bounds are fixed at registration, so
// observations are a short linear scan plus two atomic updates — no
// allocation, no lock.
type Histogram struct {
	bounds []float64      // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// Observe records one value.
//
//metriclint:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sum.Load())
}

// snapshot reads bounds plus cumulative bucket counts, the sum and the
// total count in one sweep. Concurrent Observes may land between bucket
// reads; each bucket is individually exact and the count is derived
// from the same sweep, so the invariant count == +Inf cumulative holds.
func (h *Histogram) snapshot() (bounds []float64, cumulative []int64, sum float64, count int64) {
	cumulative = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return h.bounds, cumulative, math.Float64frombits(h.sum.Load()), running
}

// DefLatencyBuckets spans 50µs to 10s — wide enough for a cache hit at
// the bottom and a pathological disk-index scan at the top.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// DefSizeBuckets is a power-of-two ladder for batch sizes and similar
// small-count distributions.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// kind discriminates the metric families a Registry holds.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// expoType is the TYPE line each kind exposes under.
func (k kind) expoType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered handle: a family name, a rendered label set,
// and exactly one live value source per kind.
type metric struct {
	name   string
	labels string // rendered `k="v",k2="v2"`, empty when unlabeled
	help   string
	kind   kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64
}

// Registry is a set of named metrics. Registration is idempotent —
// asking for an existing (name, labels) pair returns the same handle,
// which makes re-instrumentation after an index swap safe — and
// concurrency-safe; the returned handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	byName  map[string]kind // family name -> kind, enforced consistent
	metrics []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*metric),
		byName: make(map[string]kind),
	}
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, nil, labels)
	return m.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, nil, labels)
	return m.g
}

// Histogram returns the histogram registered under name+labels with the
// given ascending bucket upper bounds (a +Inf bucket is implicit),
// creating it on first use. Buckets are fixed by the first registration
// of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending at %d", name, i))
		}
	}
	m := r.registerHist(name, help, buckets, labels)
	return m.h
}

// CounterFunc registers a pull-based counter: fn is read at scrape and
// snapshot time. Use it to expose an existing monotone counter (cache
// hits, pager reads, compdists) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounterFunc, fn, labels)
}

// GaugeFunc registers a pull-based gauge (current epoch, resident
// bytes, queue depth read from another subsystem).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, fn, labels)
}

func (r *Registry) register(name, help string, k kind, fn func() float64, labels []Label) *metric {
	checkName(name)
	key := name + "\x00" + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		if m.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, k.expoType(), m.kind.expoType()))
		}
		return m
	}
	if prev, ok := r.byName[name]; ok && prev != k {
		panic(fmt.Sprintf("obs: family %s holds %s and %s metrics", name, prev.expoType(), k.expoType()))
	}
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: k, fn: fn}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.byKey[key] = m
	r.byName[name] = k
	r.metrics = append(r.metrics, m)
	return m
}

func (r *Registry) registerHist(name, help string, buckets []float64, labels []Label) *metric {
	checkName(name)
	key := name + "\x00" + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: %s re-registered as histogram (was %s)", name, m.kind.expoType()))
		}
		return m
	}
	if prev, ok := r.byName[name]; ok && prev != kindHistogram {
		panic(fmt.Sprintf("obs: family %s holds %s and histogram metrics", name, prev.expoType()))
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, h: h}
	r.byKey[key] = m
	r.byName[name] = kindHistogram
	r.metrics = append(r.metrics, m)
	return m
}

// sorted returns the metrics ordered by (family, labels) for stable
// exposition, grouping each family's samples together.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// value reads the metric's current scalar (histograms are handled
// separately by the exposition and snapshot writers).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.c.Value())
	case kindGauge:
		return float64(m.g.Value())
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	}
	return 0
}

// checkName enforces the Prometheus metric-name charset at registration
// so a bad name fails loudly in tests, not silently in a scraper.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// renderLabels renders the inner `k="v",...` label string once at
// registration. Values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
