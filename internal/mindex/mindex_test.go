package mindex

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/pivot"
	"metricindex/internal/store"
	"metricindex/internal/testutil"
)

func build(t *testing.T, ds *core.Dataset, star bool, maxNum int) (*MIndex, *store.Pager) {
	t.Helper()
	p := store.NewPager(512)
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		t.Fatalf("HFI: %v", err)
	}
	idx, err := New(ds, p, pv, Options{Star: star, MaxNum: maxNum, MaxDistance: 300})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, p
}

func TestMIndexMatchesBruteForce(t *testing.T) {
	for _, star := range []bool{false, true} {
		ds := testutil.VectorDataset(400, 4, 100, core.L2{}, 7)
		idx, _ := build(t, ds, star, 64) // small maxnum exercises splits
		for qs := int64(0); qs < 4; qs++ {
			q := testutil.RandomQuery(ds, qs)
			for _, r := range testutil.Radii(ds, q) {
				testutil.CheckRange(t, idx, ds, q, r)
			}
			for _, k := range []int{1, 7, 40, 400} {
				testutil.CheckKNN(t, idx, ds, q, k)
			}
		}
	}
}

func TestMIndexWords(t *testing.T) {
	for _, star := range []bool{false, true} {
		ds := testutil.WordDataset(250, 11)
		p := store.NewPager(512)
		pv, _ := pivot.HFI(ds, 3, pivot.Options{Seed: 5})
		idx, err := New(ds, p, pv, Options{Star: star, MaxNum: 64, MaxDistance: 40})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		q := testutil.RandomQuery(ds, 3)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 9)
	}
}

func TestMIndexNames(t *testing.T) {
	ds := testutil.VectorDataset(60, 3, 100, core.L2{}, 1)
	plain, _ := build(t, ds, false, 0)
	if plain.Name() != "M-index" {
		t.Fatalf("Name = %q", plain.Name())
	}
	ds2 := testutil.VectorDataset(60, 3, 100, core.L2{}, 1)
	star, _ := build(t, ds2, true, 0)
	if star.Name() != "M-index*" {
		t.Fatalf("Name = %q", star.Name())
	}
}

func TestMIndexInsertDelete(t *testing.T) {
	for _, star := range []bool{false, true} {
		ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 13)
		idx, _ := build(t, ds, star, 32)
		for id := 0; id < 200; id += 4 {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("Delete(%d): %v", id, err)
			}
			if err := ds.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			id := ds.Insert(core.Vector{float64(i), 50, 50, 50})
			if err := idx.Insert(id); err != nil {
				t.Fatalf("Insert(%d): %v", id, err)
			}
		}
		q := testutil.RandomQuery(ds, 2)
		for _, r := range testutil.Radii(ds, q) {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 15)
		if idx.Len() != ds.Count() {
			t.Fatalf("Len=%d want %d", idx.Len(), ds.Count())
		}
	}
}

func TestMIndexStarFewerPAOnKNN(t *testing.T) {
	// Fig 15: MkNNQ via the plain M-index re-traverses the index per
	// radius step, so M-index* should cost no more page accesses.
	mk := func(star bool) int64 {
		ds := testutil.VectorDataset(600, 4, 100, core.L2{}, 17)
		idx, p := build(t, ds, star, 64)
		q := testutil.RandomQuery(ds, 9)
		p.ResetStats()
		if _, err := idx.KNNSearch(q, 10); err != nil {
			t.Fatal(err)
		}
		return idx.PageAccesses()
	}
	plain, star := mk(false), mk(true)
	if star > plain {
		t.Fatalf("M-index* kNN PA (%d) should not exceed M-index (%d)", star, plain)
	}
}

func TestMIndexValidation(t *testing.T) {
	// M-index* validation must not change range results, only costs.
	dsA := testutil.VectorDataset(300, 4, 100, core.L2{}, 19)
	a, _ := build(t, dsA, false, 64)
	dsB := testutil.VectorDataset(300, 4, 100, core.L2{}, 19)
	b, _ := build(t, dsB, true, 64)
	q := testutil.RandomQuery(dsA, 4)
	for _, r := range []float64{5, 20, 60} {
		ra, err := a.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("r=%v: plain %d results, star %d", r, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("r=%v: result %d differs (%d vs %d)", r, i, ra[i], rb[i])
			}
		}
	}
}

func TestMIndexRequiresTwoPivots(t *testing.T) {
	ds := testutil.VectorDataset(50, 3, 100, core.L2{}, 1)
	p := store.NewPager(512)
	if _, err := New(ds, p, []int{0}, Options{MaxDistance: 100}); err == nil {
		t.Fatal("one pivot must be rejected (hyperplane partitioning needs two)")
	}
	if _, err := New(ds, p, []int{0, 1}, Options{}); err == nil {
		t.Fatal("missing MaxDistance must be rejected")
	}
}
