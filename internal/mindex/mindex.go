// Package mindex implements the M-index of [23] (§5.3) and the paper's
// improved M-index*.
//
// The M-index generalizes iDistance to metric spaces: objects are
// partitioned by generalized hyperplane partitioning (each object belongs
// to its nearest pivot's cluster) and mapped to the real key
//
//	key(o) = slot(cluster) · d⁺ + d(p_cluster, o)
//
// indexed by a B+-tree; the objects (with all their pre-computed pivot
// distances) live in a RAF. Clusters exceeding maxnum objects split
// dynamically using the next-nearest pivot (Fig 12(d)). Range queries
// prune clusters with double-pivot filtering (Lemma 3) and candidates with
// pivot filtering (Lemma 1); the plain M-index answers MkNNQ by repeated
// range queries with growing radius.
//
// M-index* (the paper's improvement) additionally stores the pivot-space
// MBB of every cluster, enabling Lemma 1 pruning of whole clusters, a
// single best-first MkNNQ traversal, and Lemma 4 validation of range
// candidates — the behaviour Fig 15 compares.
package mindex

import (
	"fmt"
	"math"

	"metricindex/internal/bptree"
	"metricindex/internal/core"
	"metricindex/internal/store"
)

// DefaultMaxNum is the paper's cluster split threshold (§5.3).
const DefaultMaxNum = 1600

// Options tunes construction.
type Options struct {
	// Star enables the M-index* additions (MBBs, best-first kNN,
	// validation).
	Star bool
	// MaxNum is the cluster split threshold (DefaultMaxNum when 0).
	MaxNum int
	// MaxDistance is d⁺, the key-space stride. Required.
	MaxDistance float64
}

// cluster is a node of the (in-memory) cluster tree. A leaf owns a key
// slot in the B+-tree; an internal cluster has children keyed by the
// next-nearest pivot index.
type cluster struct {
	pivotIdx int // defining pivot of this cluster (-1 at the root)
	depth    int
	// internal
	children map[int]*cluster
	// leaf
	slot   int
	count  int
	minD   float64 // min/max of d(p_pivotIdx, o) over members
	maxD   float64
	mbb    core.MBB // M-index*: bounds over all pivots
	usable []int    // pivot indexes available for further splits
}

func (c *cluster) leaf() bool { return c.children == nil }

// MIndex is the M-index / M-index* handle.
type MIndex struct {
	ds        *core.Dataset
	pager     *store.Pager
	opts      Options
	pivotIDs  []int
	pivotVals []core.Object
	tree      *bptree.Tree
	raf       *store.RAF
	root      *cluster
	nextSlot  int
	size      int
}

// New builds the index over all live objects.
func New(ds *core.Dataset, pager *store.Pager, pivots []int, opts Options) (*MIndex, error) {
	if len(pivots) < 2 {
		return nil, fmt.Errorf("mindex: generalized hyperplane partitioning needs >= 2 pivots, got %d", len(pivots))
	}
	if opts.MaxDistance <= 0 {
		return nil, fmt.Errorf("mindex: MaxDistance (d+) must be positive")
	}
	if opts.MaxNum <= 0 {
		opts.MaxNum = DefaultMaxNum
	}
	m := &MIndex{
		ds:       ds,
		pager:    pager,
		opts:     opts,
		pivotIDs: append([]int(nil), pivots...),
		tree:     bptree.New(pager, nil),
		raf:      store.NewRAF(pager),
	}
	for _, p := range pivots {
		v := ds.Object(p)
		if v == nil {
			return nil, fmt.Errorf("mindex: pivot %d is not a live object", p)
		}
		m.pivotVals = append(m.pivotVals, v)
	}
	l := len(pivots)
	m.root = &cluster{pivotIdx: -1, depth: 0, children: make(map[int]*cluster, l)}
	for i := 0; i < l; i++ {
		m.root.children[i] = m.newLeaf(i, 1, otherPivots(l, []int{i}))
	}
	for _, id := range ds.LiveIDs() {
		if err := m.Insert(id); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func otherPivots(l int, used []int) []int {
	inUse := make(map[int]bool, len(used))
	for _, u := range used {
		inUse[u] = true
	}
	var out []int
	for i := 0; i < l; i++ {
		if !inUse[i] {
			out = append(out, i)
		}
	}
	return out
}

func (m *MIndex) newLeaf(pivotIdx, depth int, usable []int) *cluster {
	c := &cluster{
		pivotIdx: pivotIdx,
		depth:    depth,
		slot:     m.nextSlot,
		minD:     math.Inf(1),
		maxD:     math.Inf(-1),
		mbb:      core.NewMBB(len(m.pivotVals)),
		usable:   usable,
	}
	m.nextSlot++
	return c
}

// Name returns "M-index" or "M-index*".
func (m *MIndex) Name() string {
	if m.opts.Star {
		return "M-index*"
	}
	return "M-index"
}

// Len returns the number of indexed objects.
func (m *MIndex) Len() int { return m.size }

// queryDists computes d(q, p_i) for all pivots.
func (m *MIndex) queryDists(q core.Object) []float64 {
	sp := m.ds.Space()
	qd := make([]float64, len(m.pivotVals))
	for i, p := range m.pivotVals {
		qd[i] = sp.Distance(q, p)
	}
	return qd
}

// key maps (slot, pivot distance) to the B+-tree key.
func (m *MIndex) key(slot int, d float64) uint64 {
	return bptree.KeyFromFloat(float64(slot)*m.opts.MaxDistance + d)
}

// bandEnd is the largest key inside a slot's band: one ulp below the next
// slot's origin, so band scans never leak into the neighbouring cluster.
func (m *MIndex) bandEnd(slot int) uint64 {
	return bptree.KeyFromFloat(float64(slot+1)*m.opts.MaxDistance) - 1
}

// rafPayload serializes the pre-computed distances followed by the object.
func (m *MIndex) rafPayload(id int, dv []float64) []byte {
	buf := store.EncodeFloats(nil, dv)
	return store.EncodeObject(buf, m.ds.Object(id))
}

// loadCandidate reads a RAF record back into (distances, object).
func (m *MIndex) loadCandidate(id int) ([]float64, core.Object, error) {
	buf, err := m.raf.Read(id)
	if err != nil {
		return nil, nil, err
	}
	dv, n, err := store.DecodeFloats(buf, len(m.pivotVals))
	if err != nil {
		return nil, nil, err
	}
	o, _, err := store.DecodeObject(buf[n:])
	if err != nil {
		return nil, nil, err
	}
	return dv, o, nil
}

// leafFor descends the cluster tree for an object's distance vector,
// returning the leaf cluster.
func (m *MIndex) leafFor(dv []float64) *cluster {
	c := m.root
	used := []int{}
	for !c.leaf() {
		// Nearest pivot among those not used on this path.
		best, bestD := -1, math.Inf(1)
		for i := range m.pivotVals {
			if contains(used, i) {
				continue
			}
			if dv[i] < bestD {
				best, bestD = i, dv[i]
			}
		}
		child, ok := c.children[best]
		if !ok {
			child = m.newLeaf(best, c.depth+1, otherPivots(len(m.pivotVals), append(append([]int{}, used...), best)))
			c.children[best] = child
		}
		used = append(used, best)
		c = child
	}
	return c
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Insert computes the object's pivot distances, stores the RAF record,
// and keys it into its cluster's B+-tree band, splitting the cluster if
// it exceeds maxnum (Fig 12(d)).
func (m *MIndex) Insert(id int) error {
	o := m.ds.Object(id)
	if o == nil {
		return fmt.Errorf("mindex: insert of deleted object %d", id)
	}
	sp := m.ds.Space()
	dv := make([]float64, len(m.pivotVals))
	for i, p := range m.pivotVals {
		dv[i] = sp.Distance(o, p)
	}
	if _, err := m.raf.Append(id, m.rafPayload(id, dv)); err != nil {
		return err
	}
	if err := m.place(id, dv); err != nil {
		return err
	}
	m.size++
	return nil
}

// place inserts into the cluster tree and B+-tree (no RAF write; used by
// both Insert and split redistribution).
func (m *MIndex) place(id int, dv []float64) error {
	c := m.leafFor(dv)
	d := dv[c.pivotIdx]
	if err := m.tree.Insert(m.key(c.slot, d), uint64(id)); err != nil {
		return err
	}
	c.count++
	if d < c.minD {
		c.minD = d
	}
	if d > c.maxD {
		c.maxD = d
	}
	c.mbb.Extend(dv)
	if c.count > m.opts.MaxNum && len(c.usable) > 0 {
		return m.split(c)
	}
	return nil
}

// split turns a leaf cluster into an internal node, redistributing its
// members into sub-clusters by their next-nearest pivot.
func (m *MIndex) split(c *cluster) error {
	// Collect member ids from the B+-tree band (bandEnd stays strictly
	// below the next slot's first key).
	lo := m.key(c.slot, 0)
	hi := m.bandEnd(c.slot)
	type rec struct {
		key uint64
		id  int
	}
	var members []rec
	if err := m.tree.RangeScan(lo, hi, func(k, v uint64) bool {
		members = append(members, rec{k, int(v)})
		return true
	}); err != nil {
		return err
	}
	c.children = make(map[int]*cluster)
	for _, r := range members {
		dvec, _, err := m.loadCandidate(r.id)
		if err != nil {
			return err
		}
		if err := m.tree.Delete(r.key, uint64(r.id)); err != nil {
			return err
		}
		if err := m.place(r.id, dvec); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the object from its cluster band and the RAF.
func (m *MIndex) Delete(id int) error {
	o := m.ds.Object(id)
	if o == nil {
		return fmt.Errorf("mindex: delete needs the object still present in the dataset (id %d)", id)
	}
	dv, _, err := m.loadCandidate(id)
	if err != nil {
		return fmt.Errorf("mindex: delete of unindexed object %d: %w", id, err)
	}
	c := m.leafFor(dv)
	if err := m.tree.Delete(m.key(c.slot, dv[c.pivotIdx]), uint64(id)); err != nil {
		return err
	}
	c.count--
	m.size--
	return m.raf.Delete(id)
}

// PageAccesses reports the pager's accesses (B+-tree + RAF).
func (m *MIndex) PageAccesses() int64 { return m.pager.PageAccesses() }

// ResetStats zeroes the pager counters.
func (m *MIndex) ResetStats() { m.pager.ResetStats() }

// MemBytes reports the in-memory cluster tree footprint.
func (m *MIndex) MemBytes() int64 {
	var bytes int64
	var walk func(c *cluster)
	walk = func(c *cluster) {
		if c.leaf() {
			bytes += 64 + int64(len(m.pivotVals))*16
			return
		}
		bytes += 48
		for _, ch := range c.children {
			walk(ch)
		}
	}
	walk(m.root)
	return bytes
}

// DiskBytes reports the B+-tree + RAF footprint.
func (m *MIndex) DiskBytes() int64 { return m.pager.DiskBytes() }
