package mindex

import (
	"container/heap"
	"math"
	"sort"

	"metricindex/internal/core"
)

// leafRef pairs a leaf cluster with the pivot indexes already used on its
// path (needed for Lemma 3's "remaining pivots" minimum).
type leafRef struct {
	c    *cluster
	used []int
}

// collectLeaves gathers the leaf clusters that survive pruning for a
// range query of radius r. Lemma 3 (double-pivot filtering) discards a
// cluster when d(q, p_cluster) − min_j d(q, p_j) > 2r over the pivots j
// that competed in the same partition; M-index* additionally applies
// Lemma 1 on the cluster MBB.
func (m *MIndex) collectLeaves(qd []float64, r float64, prune bool) []leafRef {
	var out []leafRef
	var walk func(c *cluster, used []int)
	walk = func(c *cluster, used []int) {
		if c.leaf() {
			if c.count == 0 {
				return
			}
			if prune && m.opts.Star && c.mbb.PruneMBB(qd, r) {
				return
			}
			out = append(out, leafRef{c, used})
			return
		}
		// Minimum query-pivot distance among the pivots competing at this
		// node (all pivots not yet used on the path).
		dqmin := math.Inf(1)
		for i := range qd {
			if contains(used, i) {
				continue
			}
			if qd[i] < dqmin {
				dqmin = qd[i]
			}
		}
		for pi, child := range c.children {
			if prune && core.PruneHyperplane(qd[pi], dqmin, r) {
				continue
			}
			walk(child, append(append([]int{}, used...), pi))
		}
	}
	walk(m.root, nil)
	return out
}

// scanLeaf runs the iDistance band scan of one cluster for radius r and
// hands every candidate id to fn.
func (m *MIndex) scanLeaf(c *cluster, qd []float64, r float64, fn func(id int) error) error {
	dqp := qd[c.pivotIdx]
	lo := dqp - r
	if lo < c.minD {
		lo = c.minD
	}
	hi := dqp + r
	if hi > c.maxD {
		hi = c.maxD
	}
	if lo > hi {
		return nil
	}
	loKey := m.key(c.slot, lo)
	hiKey := m.key(c.slot, hi)
	if end := m.bandEnd(c.slot); hiKey > end {
		hiKey = end
	}
	var inner error
	err := m.tree.RangeScan(loKey, hiKey, func(k, v uint64) bool {
		if e := fn(int(v)); e != nil {
			inner = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return inner
}

// RangeSearch answers MRQ(q, r): qualifying clusters are found via the
// cluster tree (Lemma 3, plus MBBs for M-index*), their B+-tree bands are
// scanned, and candidates are filtered with Lemma 1 on their stored
// distance vectors (plus Lemma 4 validation for M-index*) before
// verification.
func (m *MIndex) RangeSearch(q core.Object, r float64) ([]int, error) {
	qd := m.queryDists(q)
	sp := m.ds.Space()
	var res []int
	for _, lr := range m.collectLeaves(qd, r, true) {
		err := m.scanLeaf(lr.c, qd, r, func(id int) error {
			dv, o, err := m.loadCandidate(id)
			if err != nil {
				return err
			}
			if core.PruneObject(qd, dv, r) {
				return nil
			}
			if m.opts.Star && core.ValidateObject(qd, dv, r) {
				res = append(res, id) // Lemma 4: no distance computation
				return nil
			}
			if sp.Distance(q, o) <= r {
				res = append(res, id)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Ints(res)
	return res, nil
}

// KNNSearch answers MkNNQ(q, k). The plain M-index re-runs range queries
// with a doubling radius (§5.3's stated weakness: the index is traversed
// multiple times); M-index* performs one best-first pass over clusters
// ordered by their MBB lower bounds.
func (m *MIndex) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 || m.size == 0 {
		return nil, nil
	}
	if m.opts.Star {
		return m.knnBestFirst(q, k)
	}
	return m.knnIncremental(q, k)
}

// knnIncremental is the plain M-index strategy.
func (m *MIndex) knnIncremental(q core.Object, k int) ([]core.Neighbor, error) {
	qd := m.queryDists(q)
	sp := m.ds.Space()
	h := core.NewKNNHeap(k)
	seen := make(map[int]bool)
	r := m.opts.MaxDistance / 64
	for {
		for _, lr := range m.collectLeaves(qd, r, true) {
			err := m.scanLeaf(lr.c, qd, r, func(id int) error {
				if seen[id] {
					return nil
				}
				dv, o, err := m.loadCandidate(id)
				if err != nil {
					return err
				}
				if core.PruneObject(qd, dv, r) {
					// Pruned only w.r.t. the current radius; it may
					// qualify in a later, wider round (this re-reading is
					// the redundant I/O §5.3 attributes to the plain
					// M-index).
					return nil
				}
				seen[id] = true
				h.Push(id, sp.Distance(q, o))
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if h.Len() >= minInt(k, m.size) && h.Radius() <= r {
			return h.Result(), nil
		}
		// Completion bound: once r >= max_i d(q,p_i) + d+, every band
		// covers all of its cluster (|d(q,p_c) − d(o,p_c)| can never
		// exceed that), so the scan above was exhaustive. This matters
		// for query objects far outside the data domain, where d(q,p)
		// exceeds d+.
		dqmax := 0.0
		for _, d := range qd {
			if d > dqmax {
				dqmax = d
			}
		}
		if r >= dqmax+m.opts.MaxDistance {
			return h.Result(), nil
		}
		r *= 2
	}
}

// clusterItem prioritizes clusters by lower bound for the M-index*
// best-first traversal.
type clusterItem struct {
	c  *cluster
	lb float64
}

type clusterPQ []clusterItem

func (p clusterPQ) Len() int           { return len(p) }
func (p clusterPQ) Less(i, j int) bool { return p[i].lb < p[j].lb }
func (p clusterPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *clusterPQ) Push(x any)        { *p = append(*p, x.(clusterItem)) }
func (p *clusterPQ) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// knnBestFirst is the M-index* strategy: clusters are visited once, in
// ascending MBB lower-bound order, with the radius tightening as
// candidates verify.
func (m *MIndex) knnBestFirst(q core.Object, k int) ([]core.Neighbor, error) {
	qd := m.queryDists(q)
	sp := m.ds.Space()
	h := core.NewKNNHeap(k)
	pq := &clusterPQ{}
	for _, lr := range m.collectLeaves(qd, math.Inf(1), false) {
		lb := lr.c.mbb.MinDist(qd)
		heap.Push(pq, clusterItem{lr.c, lb})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(clusterItem)
		if it.lb > h.Radius() {
			break
		}
		// While the heap is not yet full the radius is unbounded, so the
		// whole cluster band must be scanned (scanLeaf clamps the band to
		// [minD, maxD], so an infinite radius is safe and exact).
		r := h.Radius()
		err := m.scanLeaf(it.c, qd, r, func(id int) error {
			cur := h.Radius()
			dv, o, err := m.loadCandidate(id)
			if err != nil {
				return err
			}
			if !math.IsInf(cur, 1) && core.PruneObject(qd, dv, cur) {
				return nil
			}
			h.Push(id, sp.Distance(q, o))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return h.Result(), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
