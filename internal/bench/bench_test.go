package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"metricindex/internal/dataset"
)

func tinyCfg(kinds ...dataset.Kind) Config {
	if len(kinds) == 0 {
		kinds = []dataset.Kind{dataset.Words}
	}
	return Config{N: 600, Queries: 3, Pivots: 4, Seed: 7, Datasets: kinds}
}

func TestEnvSetup(t *testing.T) {
	e, err := NewEnv(dataset.LA, tinyCfg(dataset.LA))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Pivots) != 4 {
		t.Fatalf("pivots: %v", e.Pivots)
	}
	if e.Discrete() {
		t.Fatal("LA must be continuous")
	}
	r1, r2 := e.Radius(0.04), e.Radius(0.32)
	if r1 >= r2 {
		t.Fatalf("radii not monotone: %v %v", r1, r2)
	}
}

func TestBuildersCoverPaperLineup(t *testing.T) {
	names := map[string]bool{}
	for _, b := range Builders() {
		names[b.Name] = true
	}
	for _, want := range []string{
		"LAESA", "EPT", "EPT*", "CPT", "BKT", "FQT", "MVPT",
		"PM-tree", "OmniR-tree", "M-index", "M-index*", "SPB-tree",
	} {
		if !names[want] {
			t.Errorf("missing builder %q", want)
		}
	}
	if _, err := BuilderByName("SPB-tree"); err != nil {
		t.Fatal(err)
	}
	if _, err := BuilderByName("nope"); err == nil {
		t.Fatal("unknown builder must fail")
	}
}

func TestMeasureBuildAndQueries(t *testing.T) {
	e, err := NewEnv(dataset.Words, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, cost, err := MeasureBuild(e, mustBuilder(t, "SPB-tree"))
	if err != nil {
		t.Fatal(err)
	}
	if cost.CompDists <= 0 || cost.DiskBytes <= 0 {
		t.Fatalf("implausible build cost: %+v", cost)
	}
	rc, err := MeasureRange(e, b, e.Radius(0.16))
	if err != nil {
		t.Fatal(err)
	}
	if rc.CompDists <= 0 || rc.PA <= 0 {
		t.Fatalf("implausible range cost: %+v", rc)
	}
	kc, err := MeasureKNN(e, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kc.CompDists <= 0 {
		t.Fatalf("implausible knn cost: %+v", kc)
	}
	uc, err := MeasureUpdate(e, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if uc.CompDists <= 0 {
		t.Fatalf("implausible update cost: %+v", uc)
	}
}

func mustBuilder(t *testing.T, name string) Builder {
	t.Helper()
	b, err := BuilderByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Every experiment must run end to end at tiny scale and produce output
// mentioning each lineup index.
func TestExperimentsRunEndToEnd(t *testing.T) {
	runs := []struct {
		name string
		fn   func(io.Writer, Config) error
		cfg  Config
	}{
		{"table4", Table4, tinyCfg()},
		{"table6", Table6, tinyCfg()},
		{"fig14", Fig14, tinyCfg(dataset.LA)},
		{"fig15", Fig15, tinyCfg(dataset.LA)},
		{"fig16", Fig16, tinyCfg()},
		{"fig17", Fig17, tinyCfg()},
		{"fig18", Fig18, tinyCfg(dataset.LA)},
		{"ablation-pivots", AblationPivotSelection, tinyCfg(dataset.LA)},
		{"ablation-arity", AblationMVPTArity, tinyCfg(dataset.LA)},
		{"ablation-sfc", AblationSFC, tinyCfg(dataset.LA)},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := r.fn(&buf, r.cfg); err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s produced almost no output:\n%s", r.name, out)
			}
			if r.name == "table4" && !strings.Contains(out, "SPB-tree") {
				t.Fatalf("table4 output missing SPB-tree:\n%s", out)
			}
		})
	}
}

// Fig 18's core claim: compdists decreases as |P| grows.
func TestMoreBPivotsFewerCompdists(t *testing.T) {
	cost := func(np int) float64 {
		cfg := tinyCfg(dataset.LA)
		cfg.N = 1500
		cfg.Pivots = np
		e, err := NewEnv(dataset.LA, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := MeasureBuild(e, mustBuilder(t, "LAESA"))
		if err != nil {
			t.Fatal(err)
		}
		c, err := MeasureKNN(e, b, 20)
		if err != nil {
			t.Fatal(err)
		}
		return c.CompDists
	}
	if c1, c9 := cost(1), cost(9); c9 >= c1 {
		t.Fatalf("|P|=9 compdists (%v) should beat |P|=1 (%v)", c9, c1)
	}
}

// TestShardedConfigMatchesUnsharded drives the Config.Shards wiring end to
// end: MeasureBuild must transparently produce a sharded index whose
// query answers equal the unsharded build's, across a table, a tree, and
// a disk index.
func TestShardedConfigMatchesUnsharded(t *testing.T) {
	// EPT rides along for its Radius() path: per-shard calibration runs
	// over a sparse mirror, which used to panic on stride aliasing.
	for _, name := range []string{"LAESA", "MVPT", "SPB-tree", "EPT"} {
		t.Run(name, func(t *testing.T) {
			builder, err := BuilderByName(name)
			if err != nil {
				t.Fatal(err)
			}
			flatEnv, err := NewEnv(dataset.LA, tinyCfg(dataset.LA))
			if err != nil {
				t.Fatal(err)
			}
			flat, _, err := MeasureBuild(flatEnv, builder)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyCfg(dataset.LA)
			cfg.Shards = 3
			shEnv, err := NewEnv(dataset.LA, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sharded, _, err := MeasureBuild(shEnv, builder)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sharded.Index.Name(), "Sharded") {
				t.Fatalf("Config.Shards=3 built %q, want a sharded index", sharded.Index.Name())
			}
			r := flatEnv.Radius(0.1)
			for qi, q := range flatEnv.Gen.Queries {
				want, err := flat.Index.RangeSearch(q, r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.Index.RangeSearch(shEnv.Gen.Queries[qi], r)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("query %d: sharded MRQ %d ids, unsharded %d", qi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %d: sharded MRQ differs at %d: %d vs %d", qi, i, got[i], want[i])
					}
				}
				wantNN, err := flat.Index.KNNSearch(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				gotNN, err := sharded.Index.KNNSearch(shEnv.Gen.Queries[qi], 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotNN) != len(wantNN) {
					t.Fatalf("query %d: sharded MkNNQ %d, unsharded %d", qi, len(gotNN), len(wantNN))
				}
				for i := range gotNN {
					if gotNN[i] != wantNN[i] {
						t.Fatalf("query %d: sharded MkNNQ differs at %d: %v vs %v", qi, i, gotNN[i], wantNN[i])
					}
				}
			}
			// The measurement paths must work over the sharded build too
			// (cache control fans out to every shard pager).
			if _, err := MeasureKNN(shEnv, sharded, 5); err != nil {
				t.Fatalf("MeasureKNN over sharded: %v", err)
			}
			if _, err := MeasureRange(shEnv, sharded, r); err != nil {
				t.Fatalf("MeasureRange over sharded: %v", err)
			}
		})
	}
}
