package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"metricindex/internal/dataset"
	"metricindex/internal/mvpt"
	"metricindex/internal/pivot"
	"metricindex/internal/spb"
	"metricindex/internal/table"
)

// Selectivities is the paper's MRQ radius axis (Fig 16).
var Selectivities = []float64{0.04, 0.08, 0.16, 0.32, 0.64}

// Ks is the paper's MkNNQ axis (Figs 14, 15, 17).
var Ks = []int{5, 10, 20, 50, 100}

// PivotCounts is the |P| axis of Fig 18.
var PivotCounts = []int{1, 3, 5, 7, 9}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// Table4 regenerates the construction-cost and storage-size table.
func Table4(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	for _, kind := range cfg.Datasets {
		e, err := NewEnv(kind, cfg)
		if err != nil {
			return err
		}
		header(w, fmt.Sprintf("Table 4 — construction costs and storage sizes (%s, n=%d, |P|=%d)", kind, cfg.N, cfg.Pivots))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "index\tPA\tcompdists\ttime\tmemory(KB)\tdisk(KB)")
		for _, builder := range Builders() {
			if builder.DiscreteOnly && !e.Discrete() {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\n", builder.Name)
				continue
			}
			_, cost, err := MeasureBuild(e, builder)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", kind, builder.Name, err)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%d\t%d\n",
				builder.Name, cost.PA, cost.CompDists, cost.Time.Round(msec),
				cost.MemBytes/1024, cost.DiskBytes/1024)
		}
		tw.Flush()
	}
	return nil
}

// Table6 regenerates the update-cost table (delete + reinsert).
func Table6(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	rounds := 20
	for _, kind := range cfg.Datasets {
		header(w, fmt.Sprintf("Table 6 — update costs (%s, n=%d, avg over %d updates)", kind, cfg.N, rounds))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "index\tPA\tcompdists\ttime")
		for _, builder := range Builders() {
			// Fresh environment per index: updates mutate the dataset.
			e, err := NewEnv(kind, cfg)
			if err != nil {
				return err
			}
			if builder.DiscreteOnly && !e.Discrete() {
				fmt.Fprintf(tw, "%s\t-\t-\t-\n", builder.Name)
				continue
			}
			b, _, err := MeasureBuild(e, builder)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", kind, builder.Name, err)
			}
			cost, err := MeasureUpdate(e, b, rounds)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", kind, builder.Name, err)
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%v\n", builder.Name, cost.PA, cost.CompDists, cost.Time.Round(usec))
		}
		tw.Flush()
	}
	return nil
}

// Fig14 compares EPT and EPT* on MkNNQ across k (CPU + compdists).
func Fig14(w io.Writer, cfg Config) error {
	return pairFigure(w, cfg, "Fig 14 — EPT vs EPT* (MkNNQ)", "EPT", "EPT*")
}

// Fig15 compares M-index and M-index* on MkNNQ across k.
func Fig15(w io.Writer, cfg Config) error {
	return pairFigure(w, cfg, "Fig 15 — M-index vs M-index* (MkNNQ)", "M-index", "M-index*")
}

func pairFigure(w io.Writer, cfg Config, title, nameA, nameB string) error {
	cfg = cfg.WithDefaults()
	ba, err := BuilderByName(nameA)
	if err != nil {
		return err
	}
	bb, err := BuilderByName(nameB)
	if err != nil {
		return err
	}
	for _, kind := range cfg.Datasets {
		e, err := NewEnv(kind, cfg)
		if err != nil {
			return err
		}
		a, _, err := MeasureBuild(e, ba)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", kind, nameA, err)
		}
		b, _, err := MeasureBuild(e, bb)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", kind, nameB, err)
		}
		header(w, fmt.Sprintf("%s — %s", title, kind))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "k\t%s CPU\t%s CPU\t%s compdists\t%s compdists\t%s PA\t%s PA\n",
			nameA, nameB, nameA, nameB, nameA, nameB)
		for _, k := range Ks {
			ca, err := MeasureKNN(e, a, k)
			if err != nil {
				return err
			}
			cb, err := MeasureKNN(e, b, k)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%v\t%v\t%.0f\t%.0f\t%.0f\t%.0f\n",
				k, ca.CPU.Round(usec), cb.CPU.Round(usec),
				ca.CompDists, cb.CompDists, ca.PA, cb.PA)
		}
		tw.Flush()
	}
	return nil
}

// lineupFor filters the nine-index query lineup for a dataset.
func lineupFor(e *Env) ([]Builder, error) {
	var out []Builder
	for _, name := range QueryLineup {
		b, err := BuilderByName(name)
		if err != nil {
			return nil, err
		}
		if b.DiscreteOnly && !e.Discrete() {
			continue
		}
		out = append(out, b)
	}
	return out, nil
}

// Fig16 sweeps the MRQ radius over the full lineup.
func Fig16(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	for _, kind := range cfg.Datasets {
		e, err := NewEnv(kind, cfg)
		if err != nil {
			return err
		}
		lineup, err := lineupFor(e)
		if err != nil {
			return err
		}
		built := make([]*Built, len(lineup))
		for i, builder := range lineup {
			b, _, err := MeasureBuild(e, builder)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", kind, builder.Name, err)
			}
			built[i] = b
		}
		for _, metric := range []string{"compdists", "PA", "CPU"} {
			header(w, fmt.Sprintf("Fig 16 — MRQ %s vs radius (%s)", metric, kind))
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprint(tw, "r(sel)")
			for _, b := range built {
				fmt.Fprintf(tw, "\t%s", b.Name)
			}
			fmt.Fprintln(tw)
			for _, sel := range Selectivities {
				r := e.Radius(sel)
				fmt.Fprintf(tw, "%.0f%%", sel*100)
				for _, b := range built {
					c, err := MeasureRange(e, b, r)
					if err != nil {
						return err
					}
					switch metric {
					case "compdists":
						fmt.Fprintf(tw, "\t%.0f", c.CompDists)
					case "PA":
						fmt.Fprintf(tw, "\t%.0f", c.PA)
					case "CPU":
						fmt.Fprintf(tw, "\t%v", c.CPU.Round(usec))
					}
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
		}
	}
	return nil
}

// Fig17 sweeps MkNNQ's k over the full lineup.
func Fig17(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	for _, kind := range cfg.Datasets {
		e, err := NewEnv(kind, cfg)
		if err != nil {
			return err
		}
		lineup, err := lineupFor(e)
		if err != nil {
			return err
		}
		built := make([]*Built, len(lineup))
		for i, builder := range lineup {
			b, _, err := MeasureBuild(e, builder)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", kind, builder.Name, err)
			}
			built[i] = b
		}
		for _, metric := range []string{"compdists", "PA", "CPU"} {
			header(w, fmt.Sprintf("Fig 17 — MkNNQ %s vs k (%s)", metric, kind))
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprint(tw, "k")
			for _, b := range built {
				fmt.Fprintf(tw, "\t%s", b.Name)
			}
			fmt.Fprintln(tw)
			for _, k := range Ks {
				fmt.Fprintf(tw, "%d", k)
				for _, b := range built {
					c, err := MeasureKNN(e, b, k)
					if err != nil {
						return err
					}
					switch metric {
					case "compdists":
						fmt.Fprintf(tw, "\t%.0f", c.CompDists)
					case "PA":
						fmt.Fprintf(tw, "\t%.0f", c.PA)
					case "CPU":
						fmt.Fprintf(tw, "\t%v", c.CPU.Round(usec))
					}
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
		}
	}
	return nil
}

// Fig18 sweeps the pivot count |P| (LA and Synthetic, MkNNQ at the
// default k), excluding the M-index* for |P|=1 (hyperplane partitioning
// needs two pivots, as the paper notes).
func Fig18(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	kinds := []dataset.Kind{dataset.LA, dataset.Synthetic}
	if len(cfg.Datasets) != len(dataset.AllKinds) {
		kinds = cfg.Datasets
	}
	const k = 20
	for _, kind := range kinds {
		header(w, fmt.Sprintf("Fig 18 — MkNNQ costs vs |P| (%s, k=%d)", kind, k))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "|P|\tindex\tcompdists\tPA\tCPU")
		for _, np := range PivotCounts {
			pcfg := cfg
			pcfg.Pivots = np
			e, err := NewEnv(kind, pcfg)
			if err != nil {
				return err
			}
			lineup, err := lineupFor(e)
			if err != nil {
				return err
			}
			for _, builder := range lineup {
				if builder.Name == "M-index*" && np < 2 {
					continue
				}
				b, _, err := MeasureBuild(e, builder)
				if err != nil {
					return fmt.Errorf("%s/%s/|P|=%d: %w", kind, builder.Name, np, err)
				}
				c, err := MeasureKNN(e, b, k)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.0f\t%v\n", np, builder.Name, c.CompDists, c.PA, c.CPU.Round(usec))
			}
		}
		tw.Flush()
	}
	return nil
}

// AblationPivotSelection compares HFI vs HF vs random pivots on LAESA and
// MVPT — the reason the paper insists on one shared selection strategy.
func AblationPivotSelection(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	kind := dataset.LA
	if len(cfg.Datasets) > 0 {
		kind = cfg.Datasets[0]
	}
	e, err := NewEnv(kind, cfg)
	if err != nil {
		return err
	}
	ds := e.Gen.Dataset
	strategies := map[string][]int{}
	hfi, err := pivot.HFI(ds, cfg.Pivots, pivot.Options{Seed: cfg.Seed + 1})
	if err != nil {
		return err
	}
	strategies["HFI"] = hfi
	strategies["HF"] = pivot.HF(ds, pivot.Sample(ds, pivot.Options{Seed: cfg.Seed + 2}), cfg.Pivots, cfg.Seed+2)
	strategies["random"] = pivot.Random(ds, cfg.Pivots, cfg.Seed+3)

	header(w, fmt.Sprintf("Ablation — pivot selection strategy (%s, LAESA & MVPT, MkNNQ k=20)", kind))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tLAESA compdists\tMVPT compdists")
	for _, name := range []string{"HFI", "HF", "random"} {
		pv := strategies[name]
		la, err := table.NewLAESA(ds, pv)
		if err != nil {
			return err
		}
		mv, err := mvpt.New(ds, pv, mvpt.Options{})
		if err != nil {
			return err
		}
		laB := &Built{Name: "LAESA", Index: la}
		mvB := &Built{Name: "MVPT", Index: mv}
		cl, err := MeasureKNN(e, laB, 20)
		if err != nil {
			return err
		}
		cm, err := MeasureKNN(e, mvB, 20)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\n", name, cl.CompDists, cm.CompDists)
	}
	tw.Flush()
	return nil
}

// AblationMVPTArity sweeps the MVPT fanout m (§4.3 claims pruning first
// rises then falls; the paper fixes m=5).
func AblationMVPTArity(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	kind := dataset.LA
	if len(cfg.Datasets) > 0 {
		kind = cfg.Datasets[0]
	}
	e, err := NewEnv(kind, cfg)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Ablation — MVPT arity m (%s, MkNNQ k=20)", kind))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\tcompdists\tCPU")
	for _, m := range []int{2, 3, 5, 8, 16} {
		idx, err := mvpt.New(e.Gen.Dataset, e.Pivots, mvpt.Options{Arity: m})
		if err != nil {
			return err
		}
		c, err := MeasureKNN(e, &Built{Name: "MVPT", Index: idx}, 20)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%v\n", m, c.CompDists, c.CPU.Round(usec))
	}
	tw.Flush()
	return nil
}

// AblationSFC compares the SPB-tree's Hilbert mapping against a Z-order
// variant of the same bit budget (the paper motivates Hilbert by its
// locality).
func AblationSFC(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	kind := dataset.LA
	if len(cfg.Datasets) > 0 {
		kind = cfg.Datasets[0]
	}
	e, err := NewEnv(kind, cfg)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Ablation — SPB-tree bits per dimension (%s, MRQ sel=16%%)", kind))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bits\tcompdists\tPA\tdisk(KB)")
	r := e.Radius(0.16)
	for _, bits := range []int{4, 6, 8, 12} {
		if bits*cfg.Pivots > 64 {
			continue
		}
		p := pagerFor(e, false)
		idx, err := spb.New(e.Gen.Dataset, p, e.Pivots, spb.Options{
			MaxDistance: e.Gen.MaxDistance, Bits: bits,
		})
		if err != nil {
			return err
		}
		b := &Built{Name: "SPB-tree", Index: idx, Pager: p}
		b.Index.ResetStats()
		c, err := MeasureRange(e, b, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%d\n", bits, c.CompDists, c.PA, idx.DiskBytes()/1024)
	}
	tw.Flush()
	return nil
}
