// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6) at configurable scale: the
// construction-cost table (Table 4), the update-cost table (Table 6), the
// EPT/EPT* and M-index/M-index* comparisons (Figs 14-15), the MRQ radius
// sweep (Fig 16), the MkNNQ k sweep (Fig 17), the pivot-count sweep
// (Fig 18), and the library's ablation studies.
//
// Methodology mirrors §6.1: one HFI pivot set per (dataset, |P|) shared
// by every index (except EPT/EPT* and BKT, which choose their own pivots
// by design); 4 KB pages, except 40 KB for CPT and the PM-tree on
// high-dimensional data; a 128 KB LRU cache enabled for MkNNQ on the
// disk-based indexes; costs averaged over random query objects.
package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"metricindex/internal/bkt"
	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/cpt"
	"metricindex/internal/dataset"
	"metricindex/internal/epoch"
	"metricindex/internal/ept"
	"metricindex/internal/exec"
	"metricindex/internal/fqt"
	"metricindex/internal/mindex"
	"metricindex/internal/mvpt"
	"metricindex/internal/omni"
	"metricindex/internal/pivot"
	"metricindex/internal/pmtree"
	"metricindex/internal/shard"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
)

// Config scales the experiments.
type Config struct {
	// N is the dataset cardinality (the paper uses ~1M; the default
	// 20,000 keeps a full run laptop-sized with identical trends).
	N int
	// Queries is the number of random query objects averaged per
	// measurement (paper: 100).
	Queries int
	// Pivots is the default |P| (paper default: 5).
	Pivots int
	// Seed drives all generation and sampling.
	Seed int64
	// Datasets restricts the run (nil = all four).
	Datasets []dataset.Kind
	// Workers routes query workloads through the concurrent batch engine
	// and fans out every index construction (table precomputes, BKT/FQT/
	// MVPT node-level builds, CPT/PM-tree partitioned bulk loads): 0
	// keeps the sequential per-query loop and builds (the paper's
	// single-threaded methodology), negative uses GOMAXPROCS, otherwise
	// that many worker goroutines. Answers are identical either way, and
	// for every structure except the two bulk-loaded ones so are
	// per-query compdists and PA (only CPU moves). The exceptions are
	// the PM-tree and CPT: Workers != 0 selects the partitioned M-tree
	// *bulk load*, which clusters objects onto different pages than
	// one-by-one insertion, so their per-query and update costs shift
	// slightly.
	Workers int
	// Shards partitions the dataset across that many sub-indexes behind a
	// scatter-gather front (internal/shard): every build wraps the chosen
	// index and every query fans out over the shards concurrently. 0 or 1
	// keeps the single unsharded structure. Answers are identical either
	// way; each shard selects its own HFI pivot set.
	Shards int
	// CacheMB wraps every build in an epoch-synchronized front with an
	// answer cache of that many megabytes (internal/cache): repeated
	// queries are then served memoized, and the measure functions report
	// the hit rate next to compdists/PA. 0 disables. Answers are
	// identical either way.
	CacheMB int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.Pivots <= 0 {
		c.Pivots = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.AllKinds
	}
	return c
}

// Env is one prepared dataset: generated objects, query workload, shared
// pivots, and calibrated radii.
type Env struct {
	Cfg    Config
	Gen    *dataset.Generated
	Pivots []int // HFI pivots, |P| = Cfg.Pivots
}

// NewEnv generates a dataset and selects its shared pivot set.
func NewEnv(kind dataset.Kind, cfg Config) (*Env, error) {
	cfg = cfg.WithDefaults()
	gen, err := dataset.Generate(kind, dataset.Config{N: cfg.N, Queries: cfg.Queries, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pv, err := pivot.HFI(gen.Dataset, cfg.Pivots, pivot.Options{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, Gen: gen, Pivots: pv}, nil
}

// Radius returns the query radius whose selectivity matches the given
// fraction (the paper's r axis is expressed as a result-set percentage).
func (e *Env) Radius(selectivity float64) float64 {
	return dataset.CalibrateRadius(e.Gen, selectivity)
}

// Discrete reports whether the dataset's metric supports BKT/FQT.
func (e *Env) Discrete() bool {
	return e.Gen.Dataset.Space().Metric().Discrete()
}

// bigObjects reports whether CPT/PM-tree need the 40 KB page (§6.1: used
// on Color and Synthetic).
func (e *Env) bigObjects() bool {
	return e.Gen.Kind == dataset.Color || e.Gen.Kind == dataset.Synthetic
}

// Built is an index plus its pager (nil for in-memory indexes). A sharded
// disk index spans one pager per shard, carried in Pagers. When
// Config.CacheMB is set, Index is the epoch.Live front (with the answer
// cache attached) over the built structure, and Live names it.
type Built struct {
	Name   string
	Index  core.Index
	Pager  *store.Pager
	Pagers []*store.Pager
	Live   *epoch.Live
}

// CacheStats snapshots the answer cache's counters; ok is false when the
// build carries no cache (Config.CacheMB was 0).
func (b *Built) CacheStats() (cache.Stats, bool) {
	if b.Live == nil {
		return cache.Stats{}, false
	}
	return b.Live.CacheStats()
}

// SetCacheBytes adjusts the buffer cache for disk indexes; no-op for
// in-memory structures. Sharded disk indexes get the cache on every
// shard's pager.
func (b *Built) SetCacheBytes(n int) {
	if b.Pager != nil {
		b.Pager.SetCacheBytes(n)
	}
	for _, p := range b.Pagers {
		p.SetCacheBytes(n)
	}
}

// Builder constructs one index over an environment.
type Builder struct {
	Name string
	// DiscreteOnly marks BKT/FQT, skipped on continuous metrics.
	DiscreteOnly bool
	Build        func(e *Env) (*Built, error)
}

// pagerFor allocates the per-index pager with the §6.1 page-size rule.
func pagerFor(e *Env, large bool) *store.Pager {
	size := store.DefaultPageSize
	if large && e.bigObjects() {
		size = store.LargePageSize
	}
	return store.NewPager(size)
}

// Builders returns the paper's index lineup keyed by name.
func Builders() []Builder {
	return []Builder{
		{Name: "LAESA", Build: func(e *Env) (*Built, error) {
			var idx core.Index
			var err error
			if e.Cfg.Workers != 0 {
				idx, err = table.NewLAESAParallel(e.Gen.Dataset, e.Pivots, e.Cfg.Workers)
			} else {
				idx, err = table.NewLAESA(e.Gen.Dataset, e.Pivots)
			}
			return &Built{Name: "LAESA", Index: idx}, err
		}},
		{Name: "EPT", Build: func(e *Env) (*Built, error) {
			idx, err := ept.New(e.Gen.Dataset, ept.Original, ept.Options{
				L: e.Cfg.Pivots, Radius: e.Radius(0.16),
				Sel: pivot.Options{Seed: e.Cfg.Seed + 2}, Workers: e.Cfg.Workers,
			})
			return &Built{Name: "EPT", Index: idx}, err
		}},
		{Name: "EPT*", Build: func(e *Env) (*Built, error) {
			idx, err := ept.New(e.Gen.Dataset, ept.Star, ept.Options{
				L: e.Cfg.Pivots, Sel: pivot.Options{Seed: e.Cfg.Seed + 2},
				Workers: e.Cfg.Workers,
			})
			return &Built{Name: "EPT*", Index: idx}, err
		}},
		{Name: "CPT", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, true)
			idx, err := cpt.New(e.Gen.Dataset, p, e.Pivots, cpt.Options{Seed: e.Cfg.Seed, Workers: e.Cfg.Workers})
			return &Built{Name: "CPT", Index: idx, Pager: p}, err
		}},
		{Name: "BKT", DiscreteOnly: true, Build: func(e *Env) (*Built, error) {
			idx, err := bkt.New(e.Gen.Dataset, bkt.Options{
				Seed: e.Cfg.Seed, MaxDistance: e.Gen.MaxDistance, Workers: e.Cfg.Workers,
			})
			return &Built{Name: "BKT", Index: idx}, err
		}},
		{Name: "FQT", DiscreteOnly: true, Build: func(e *Env) (*Built, error) {
			idx, err := fqt.New(e.Gen.Dataset, e.Pivots, fqt.Options{
				MaxDistance: e.Gen.MaxDistance, Workers: e.Cfg.Workers,
			})
			return &Built{Name: "FQT", Index: idx}, err
		}},
		{Name: "MVPT", Build: func(e *Env) (*Built, error) {
			idx, err := mvpt.New(e.Gen.Dataset, e.Pivots, mvpt.Options{Workers: e.Cfg.Workers})
			return &Built{Name: "MVPT", Index: idx}, err
		}},
		{Name: "PM-tree", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, true)
			idx, err := pmtree.New(e.Gen.Dataset, p, e.Pivots, pmtree.Options{
				Seed: e.Cfg.Seed, Workers: e.Cfg.Workers,
			})
			return &Built{Name: "PM-tree", Index: idx, Pager: p}, err
		}},
		{Name: "OmniR-tree", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, false)
			idx, err := omni.NewRTree(e.Gen.Dataset, p, e.Pivots, omni.Options{
				MaxDistance: e.Gen.MaxDistance, Workers: e.Cfg.Workers,
			})
			return &Built{Name: "OmniR-tree", Index: idx, Pager: p}, err
		}},
		{Name: "M-index", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, false)
			idx, err := mindex.New(e.Gen.Dataset, p, e.Pivots, mindex.Options{
				MaxDistance: e.Gen.MaxDistance,
			})
			return &Built{Name: "M-index", Index: idx, Pager: p}, err
		}},
		{Name: "M-index*", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, false)
			idx, err := mindex.New(e.Gen.Dataset, p, e.Pivots, mindex.Options{
				Star: true, MaxDistance: e.Gen.MaxDistance,
			})
			return &Built{Name: "M-index*", Index: idx, Pager: p}, err
		}},
		{Name: "SPB-tree", Build: func(e *Env) (*Built, error) {
			p := pagerFor(e, false)
			idx, err := spb.New(e.Gen.Dataset, p, e.Pivots, spb.Options{MaxDistance: e.Gen.MaxDistance})
			return &Built{Name: "SPB-tree", Index: idx, Pager: p}, err
		}},
	}
}

// QueryLineup is the nine-index lineup of Figs 16-18.
var QueryLineup = []string{
	"EPT*", "CPT", "BKT", "FQT", "MVPT", "SPB-tree", "M-index*", "PM-tree", "OmniR-tree",
}

// BuilderByName finds a builder.
func BuilderByName(name string) (Builder, error) {
	for _, b := range Builders() {
		if b.Name == name {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("bench: unknown index %q", name)
}

// WithDataset derives the environment for a build over a replacement
// dataset: the same config, queries and d+, with a fresh HFI pivot set
// selected on the dataset. The serving layer's graceful swap rebuilds
// through this (the live dataset has drifted from the one the process
// loaded), and the shard sub-builds specialize it below.
func (e *Env) WithDataset(sub *core.Dataset) (*Env, error) {
	pv, err := pivot.HFI(sub, e.Cfg.Pivots, pivot.Options{Seed: e.Cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	cfg := e.Cfg
	cfg.N = sub.Count()
	gen := &dataset.Generated{
		Kind:        e.Gen.Kind,
		Dataset:     sub,
		Queries:     e.Gen.Queries,
		MaxDistance: e.Gen.MaxDistance,
	}
	return &Env{Cfg: cfg, Gen: gen, Pivots: pv}, nil
}

// shardEnv derives the environment one shard builds in. Shards and
// Workers are cleared — the shards themselves are the parallelism, and a
// sub-build must not re-shard.
func (e *Env) shardEnv(sub *core.Dataset) (*Env, error) {
	se, err := e.WithDataset(sub)
	if err != nil {
		return nil, err
	}
	se.Cfg.Shards = 0
	se.Cfg.Workers = 0
	return se, nil
}

// ShardedBuilder wraps a builder so it constructs a scatter-gather sharded
// index instead: the dataset is partitioned across `shards` sub-indexes,
// each built by the wrapped builder over its own shard environment.
func ShardedBuilder(b Builder, shards int) Builder {
	return Builder{
		Name:         b.Name,
		DiscreteOnly: b.DiscreteOnly,
		Build: func(e *Env) (*Built, error) {
			var mu sync.Mutex
			var pagers []*store.Pager
			idx, err := shard.New(e.Gen.Dataset, func(sub *core.Dataset) (core.Index, error) {
				se, err := e.shardEnv(sub)
				if err != nil {
					return nil, err
				}
				built, err := b.Build(se)
				if err != nil {
					return nil, err
				}
				if built.Pager != nil {
					mu.Lock()
					pagers = append(pagers, built.Pager)
					mu.Unlock()
				}
				return built.Index, nil
			}, shard.Options{Shards: shards, Workers: e.Cfg.Workers})
			if err != nil {
				return nil, err
			}
			return &Built{Name: idx.Name(), Index: idx, Pagers: pagers}, nil
		},
	}
}

// QueryCost aggregates per-query averages, plus the latency percentiles
// a serving layer's SLOs are written against (nearest-rank, identical
// definition in the sequential loop, the batch engine, and the server).
// CacheHits/CacheHitRate cover the measured workload when the build
// carries an answer cache (Config.CacheMB): hits cost zero compdists
// and zero PA, which is exactly what the averages then show.
type QueryCost struct {
	CompDists     float64
	PA            float64
	CPU           time.Duration
	P50, P95, P99 time.Duration
	CacheHits     int64
	CacheHitRate  float64
}

// cacheDelta fills the cache columns of a QueryCost from the counter
// movement across the measured workload.
func cacheDelta(b *Built, before cache.Stats, cost *QueryCost) {
	after, ok := b.CacheStats()
	if !ok {
		return
	}
	served := (after.Hits + after.Collapsed) - (before.Hits + before.Collapsed)
	computed := after.Misses - before.Misses
	cost.CacheHits = served
	if total := served + computed; total > 0 {
		cost.CacheHitRate = float64(served) / float64(total)
	}
}

// engine returns the batch engine configured by Config.Workers, or nil
// when the sequential loop is requested.
func (e *Env) engine() *exec.Engine {
	if e.Cfg.Workers == 0 {
		return nil
	}
	return exec.New(e.Gen.Dataset.Space(), exec.Options{Workers: e.Cfg.Workers})
}

// MeasureRange averages MRQ(q, r) costs over the environment's queries,
// either sequentially or through the batch engine (Config.Workers).
func MeasureRange(e *Env, b *Built, r float64) (QueryCost, error) {
	sp := e.Gen.Dataset.Space()
	sp.ResetCompDists()
	b.Index.ResetStats()
	cacheBefore, _ := b.CacheStats()
	n := float64(len(e.Gen.Queries))
	if eng := e.engine(); eng != nil {
		res, err := eng.BatchRangeSearch(context.Background(), b.Index, e.Gen.Queries, r)
		if err != nil {
			return QueryCost{}, err
		}
		cost := QueryCost{
			CompDists: res.Stats.PerQueryCompDists(),
			PA:        res.Stats.PerQueryPageAccesses(),
			CPU:       time.Duration(float64(res.Stats.Wall) / n),
			P50:       res.Stats.P50, P95: res.Stats.P95, P99: res.Stats.P99,
		}
		cacheDelta(b, cacheBefore, &cost)
		return cost, nil
	}
	durs := make([]time.Duration, 0, len(e.Gen.Queries))
	start := time.Now()
	for _, q := range e.Gen.Queries {
		qStart := time.Now()
		if _, err := b.Index.RangeSearch(q, r); err != nil {
			return QueryCost{}, err
		}
		durs = append(durs, time.Since(qStart))
	}
	elapsed := time.Since(start)
	cost := QueryCost{
		CompDists: float64(sp.CompDists()) / n,
		PA:        float64(b.Index.PageAccesses()) / n,
		CPU:       time.Duration(float64(elapsed) / n),
	}
	cost.P50, cost.P95, cost.P99 = exec.LatencyPercentiles(durs)
	cacheDelta(b, cacheBefore, &cost)
	return cost, nil
}

// MeasureKNN averages MkNNQ(q, k) costs over the environment's queries,
// with the paper's 128 KB cache enabled on disk indexes, either
// sequentially or through the batch engine (Config.Workers).
func MeasureKNN(e *Env, b *Built, k int) (QueryCost, error) {
	b.SetCacheBytes(store.DefaultCacheBytes)
	defer b.SetCacheBytes(0)
	sp := e.Gen.Dataset.Space()
	sp.ResetCompDists()
	b.Index.ResetStats()
	cacheBefore, _ := b.CacheStats()
	n := float64(len(e.Gen.Queries))
	if eng := e.engine(); eng != nil {
		res, err := eng.BatchKNNSearch(context.Background(), b.Index, e.Gen.Queries, k)
		if err != nil {
			return QueryCost{}, err
		}
		cost := QueryCost{
			CompDists: res.Stats.PerQueryCompDists(),
			PA:        res.Stats.PerQueryPageAccesses(),
			CPU:       time.Duration(float64(res.Stats.Wall) / n),
			P50:       res.Stats.P50, P95: res.Stats.P95, P99: res.Stats.P99,
		}
		cacheDelta(b, cacheBefore, &cost)
		return cost, nil
	}
	durs := make([]time.Duration, 0, len(e.Gen.Queries))
	start := time.Now()
	for _, q := range e.Gen.Queries {
		qStart := time.Now()
		if _, err := b.Index.KNNSearch(q, k); err != nil {
			return QueryCost{}, err
		}
		durs = append(durs, time.Since(qStart))
	}
	elapsed := time.Since(start)
	cost := QueryCost{
		CompDists: float64(sp.CompDists()) / n,
		PA:        float64(b.Index.PageAccesses()) / n,
		CPU:       time.Duration(float64(elapsed) / n),
	}
	cost.P50, cost.P95, cost.P99 = exec.LatencyPercentiles(durs)
	cacheDelta(b, cacheBefore, &cost)
	return cost, nil
}

// BuildCost captures Table 4's columns.
type BuildCost struct {
	PA        int64
	CompDists int64
	Time      time.Duration
	MemBytes  int64
	DiskBytes int64
}

// MeasureBuild constructs an index and records its cost. Config.Shards > 1
// transparently swaps in the sharded variant of the builder;
// Config.CacheMB > 0 wraps the result in an epoch.Live front with an
// answer cache of that budget (answers are identical, hot queries are
// memoized).
func MeasureBuild(e *Env, builder Builder) (*Built, BuildCost, error) {
	if e.Cfg.Shards > 1 {
		builder = ShardedBuilder(builder, e.Cfg.Shards)
	}
	sp := e.Gen.Dataset.Space()
	sp.ResetCompDists()
	start := time.Now()
	b, err := builder.Build(e)
	if err != nil {
		return nil, BuildCost{}, err
	}
	cost := BuildCost{
		CompDists: sp.CompDists(),
		Time:      time.Since(start),
		MemBytes:  b.Index.MemBytes(),
		DiskBytes: b.Index.DiskBytes(),
	}
	cost.PA = b.Index.PageAccesses()
	b.Index.ResetStats()
	if e.Cfg.CacheMB > 0 {
		b.Live = epoch.NewLive(e.Gen.Dataset, b.Index)
		b.Live.SetCache(cache.New(cache.Options{MaxBytes: int64(e.Cfg.CacheMB) << 20}))
		b.Index = b.Live
	}
	return b, cost, nil
}

// UpdateCost captures Table 6's columns (delete + reinsert, averaged).
type UpdateCost struct {
	PA        float64
	CompDists float64
	Time      time.Duration
}

// MeasureUpdate deletes and reinserts `rounds` random objects (§6.3).
func MeasureUpdate(e *Env, b *Built, rounds int) (UpdateCost, error) {
	ds := e.Gen.Dataset
	sp := ds.Space()
	ids := ds.LiveIDs()
	step := len(ids)/rounds + 1
	sp.ResetCompDists()
	b.Index.ResetStats()
	start := time.Now()
	count := 0
	for i := 0; i < len(ids) && count < rounds; i += step {
		id := ids[i]
		if err := b.Index.Delete(id); err != nil {
			return UpdateCost{}, fmt.Errorf("update delete %d: %w", id, err)
		}
		o := ds.Object(id)
		if err := ds.Delete(id); err != nil {
			return UpdateCost{}, err
		}
		newID := ds.Insert(o)
		if err := b.Index.Insert(newID); err != nil {
			return UpdateCost{}, fmt.Errorf("update insert %d: %w", newID, err)
		}
		count++
	}
	elapsed := time.Since(start)
	n := float64(count)
	return UpdateCost{
		PA:        float64(b.Index.PageAccesses()) / n,
		CompDists: float64(sp.CompDists()) / n,
		Time:      time.Duration(float64(elapsed) / n),
	}, nil
}

// Rounding units for report output.
const (
	usec = time.Microsecond
	msec = time.Millisecond
)

// SelectHFI exposes the harness's pivot selection for external tools.
func SelectHFI(ds *core.Dataset, k int, seed int64) ([]int, error) {
	return pivot.HFI(ds, k, pivot.Options{Seed: seed})
}
