package plan

import (
	"testing"

	"metricindex/internal/core"
)

var fuzzSeeds = []string{
	`category = "mid"`,
	`level >= 2 AND score < 90`,
	`(a < 1 OR b > 2) AND c != 3`,
	`tags IN ("hot", "sale")`,
	`x IN (1, 2.5, -3e2)`,
	`f = "quote\"backslash\\"`,
	`LEVEL = 1 and level = 2 or level = 3`,
	"price <",
	"price IN ()",
	`name = "unterminated`,
	"((((((((((a=1))))))))))",
	"a.b-c = 1",
	"!= = !=",
	"\x00\xff",
}

func fuzzBags() []core.Attrs {
	return []core.Attrs{
		nil,
		{},
		{
			"category": core.StringValue("mid"),
			"level":    core.IntValue(7),
			"score":    core.FloatValue(41.5),
			"tags":     core.TagsValue("hot", "sale"),
		},
		{"a": core.IntValue(-1), "b": core.FloatValue(2.5), "c": core.IntValue(3)},
		{"x": core.FloatValue(2.5), "f": core.StringValue(`quote"backslash\`)},
	}
}

// FuzzPredicateParse: for any input that parses, the canonical form
// must itself parse, be a fixpoint of canonicalization, and evaluate
// identically to the original — the properties the answer cache needs
// from String() as a key component. Parse must never panic.
func FuzzPredicateParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	bags := fuzzBags()
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q -> %q: %v", src, s, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", src, s, s2)
		}
		for i, bag := range bags {
			if p.Eval(bag) != p2.Eval(bag) {
				t.Fatalf("reparsed %q disagrees with %q on bag %d", s, src, i)
			}
		}
	})
}

// FuzzPredicateEval: evaluation is total and deterministic — any
// parsed predicate against any bag (including nil) yields a stable
// boolean and never panics, whatever values the bag holds.
func FuzzPredicateEval(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, int64(7), 41.5, "mid")
	}
	f.Add(`score = 0`, int64(0), 0.0, "")
	f.Add(`level < 3 OR tags = "x"`, int64(-1), -1e308, "x")
	f.Fuzz(func(t *testing.T, src string, iv int64, fv float64, sv string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		bag := core.Attrs{
			"category": core.StringValue(sv),
			"level":    core.IntValue(iv),
			"score":    core.FloatValue(fv),
			"tags":     core.TagsValue(sv, "hot"),
		}
		got := p.Eval(bag)
		if p.Eval(bag) != got {
			t.Fatalf("Eval not deterministic for %q", src)
		}
		_ = p.Eval(nil)
		_ = p.Eval(core.Attrs{})
	})
}
