package plan

import (
	"math"
	"strconv"

	"metricindex/internal/core"
)

// Stats is the planner's per-attribute selectivity estimator: for every
// attribute field it keeps a log-scale histogram of numeric values and
// a bounded exact-count table of discrete values (numbers, strings, and
// tags). It is maintained incrementally — Observe on insert, Remove on
// delete — under the epoch write lock, so readers inside an epoch read
// section see a state exactly consistent with the dataset (the churn
// property test holds it to that). Stats itself is not synchronized.
//
// Bucketing is a pure function of the value (sign + binary octave), so
// Remove is an exact inverse of Observe and a post-hoc recount of the
// dataset reproduces the histogram bucket for bucket.
type Stats struct {
	rows   int // live objects observed, with or without attrs
	fields map[string]*fieldStats
}

// Histogram geometry: bucket 0 is exact zero; positive values occupy
// buckets 1+octave ranges, negative values mirror them. Octaves run
// 2^minOctave .. 2^maxOctave; values outside clamp to the edge octave.
const (
	minOctave  = -16
	maxOctave  = 30
	octaves    = maxOctave - minOctave + 1 // buckets per sign
	numBuckets = 1 + 2*octaves             // zero + positive + negative
)

// maxDistinct bounds the exact-count tables; further distinct values
// pool into an "other" bucket with a distinct-value counter.
const maxDistinct = 256

type fieldStats struct {
	count         int             // rows carrying this field
	hist          [numBuckets]int // numeric values only
	numN          int             // numeric values counted in hist
	vals          map[string]int  // discrete value → row count (bounded)
	other         int             // rows whose value overflowed vals
	otherDistinct int             // distinct values pooled in other
	tagN          int             // total tag memberships (tags fields)
}

// NewStats returns an empty estimator.
func NewStats() *Stats {
	return &Stats{fields: make(map[string]*fieldStats)}
}

// bucketOf maps a numeric value onto its histogram bucket. NaN clamps
// to the most-negative bucket; the mapping is total and deterministic.
func bucketOf(v float64) int {
	if v == 0 {
		return 0
	}
	if math.IsNaN(v) {
		return numBuckets - 1
	}
	a := math.Abs(v)
	e := math.Ilogb(a)
	if e < minOctave {
		e = minOctave
	} else if e > maxOctave {
		e = maxOctave
	}
	idx := 1 + (e - minOctave)
	if math.Signbit(v) {
		idx += octaves
	}
	return idx
}

// bucketBounds returns the value interval [lo, hi) covered by a
// positive-side bucket index (1-based within the positive range).
func bucketBounds(idx int) (lo, hi float64) {
	e := minOctave + (idx - 1)
	return math.Ldexp(1, e), math.Ldexp(1, e+1)
}

// discreteKey is the exact-count table key of a value: strings and tags
// key by their text, numbers by their shortest decimal form.
func discreteKey(v core.AttrValue) (string, bool) {
	switch v.Kind() {
	case core.AttrInt:
		return operandKey(float64(v.Int())), true
	case core.AttrFloat:
		return operandKey(v.Float()), true
	case core.AttrString:
		return v.Str(), true
	}
	return "", false
}

func operandKey(f float64) string {
	// Matches printOperand's number rendering, so predicate literals
	// and stored values meet in one key space.
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Observe folds one object's attribute bag (possibly nil) into the
// estimator. Call exactly once per live object, under the write lock.
func (s *Stats) Observe(a core.Attrs) {
	s.rows++
	for k, v := range a {
		f := s.fields[k]
		if f == nil {
			f = &fieldStats{vals: make(map[string]int)}
			s.fields[k] = f
		}
		f.count++
		if x, numeric := v.Numeric(); numeric {
			f.hist[bucketOf(x)]++
			f.numN++
		}
		switch v.Kind() {
		case core.AttrTags:
			for _, t := range v.Tags() {
				f.addVal(t)
				f.tagN++
			}
		default:
			if key, ok := discreteKey(v); ok {
				f.addVal(key)
			}
		}
	}
}

// Remove is the exact inverse of Observe for the same bag.
func (s *Stats) Remove(a core.Attrs) {
	s.rows--
	for k, v := range a {
		f := s.fields[k]
		if f == nil {
			continue
		}
		f.count--
		if x, numeric := v.Numeric(); numeric {
			f.hist[bucketOf(x)]--
			f.numN--
		}
		switch v.Kind() {
		case core.AttrTags:
			for _, t := range v.Tags() {
				f.delVal(t)
				f.tagN--
			}
		default:
			if key, ok := discreteKey(v); ok {
				f.delVal(key)
			}
		}
	}
}

func (f *fieldStats) addVal(key string) {
	if n, ok := f.vals[key]; ok {
		f.vals[key] = n + 1
		return
	}
	if len(f.vals) < maxDistinct {
		f.vals[key] = 1
		return
	}
	// Overflow pool. Distinct counting over the pool is approximate
	// (removals cannot tell when a value's last row leaves), which only
	// softens the equality estimate for very-high-cardinality fields.
	f.other++
	f.otherDistinct++
}

func (f *fieldStats) delVal(key string) {
	if n, ok := f.vals[key]; ok {
		if n == 1 {
			delete(f.vals, key)
		} else {
			f.vals[key] = n - 1
		}
		return
	}
	if f.other > 0 {
		f.other--
		if f.otherDistinct > f.other {
			f.otherDistinct = f.other
		}
	}
}

// Rows returns the number of live objects observed.
func (s *Stats) Rows() int { return s.rows }

// FieldRows returns the number of live objects carrying the field.
func (s *Stats) FieldRows(name string) int {
	if f := s.fields[name]; f != nil {
		return f.count
	}
	return 0
}

// ValueRows returns the exact-count table's row count for a discrete
// value of the field (0 when unseen or pooled into overflow).
func (s *Stats) ValueRows(name, value string) int {
	if f := s.fields[name]; f != nil {
		return f.vals[value]
	}
	return 0
}

// HistogramCounts returns a copy of the numeric histogram of the field
// (nil when the field is unknown) — the churn property test recounts
// against it.
func (s *Stats) HistogramCounts(name string) []int {
	f := s.fields[name]
	if f == nil {
		return nil
	}
	out := make([]int, numBuckets)
	copy(out, f.hist[:])
	return out
}

// Selectivity estimates the fraction of live objects satisfying the
// predicate, in [0, 1]. AND combines as a product, OR by
// inclusion-exclusion — the usual independence assumption.
func (s *Stats) Selectivity(p *Predicate) float64 {
	if s.rows == 0 {
		return 0
	}
	return s.nodeSel(&p.root)
}

func (s *Stats) nodeSel(n *node) float64 {
	switch n.kind {
	case nodeAnd:
		sel := 1.0
		for i := range n.kids {
			sel *= s.nodeSel(&n.kids[i])
		}
		return sel
	case nodeOr:
		miss := 1.0
		for i := range n.kids {
			miss *= 1 - s.nodeSel(&n.kids[i])
		}
		return 1 - miss
	}
	return s.leafSel(n)
}

func (s *Stats) leafSel(n *node) float64 {
	f := s.fields[n.field]
	if f == nil || f.count == 0 {
		return 0
	}
	rows := float64(s.rows)
	fieldFrac := float64(f.count) / rows
	switch n.op {
	case opEq:
		return clamp01(s.eqRows(f, &n.val) / rows)
	case opNe:
		return clamp01(fieldFrac - s.eqRows(f, &n.val)/rows)
	case opIn:
		sum := 0.0
		for i := range n.set {
			sum += s.eqRows(f, &n.set[i])
		}
		return clamp01(math.Min(sum/rows, fieldFrac))
	}
	// Ordering comparison: histogram mass of the open/closed interval.
	if !n.val.isNum {
		// Lexicographic string ranges: no histogram, assume half the
		// field's rows — a coarse default that still routes the query
		// to a safe strategy.
		return clamp01(0.5 * fieldFrac)
	}
	if f.numN == 0 {
		return 0
	}
	var frac float64
	switch n.op {
	case opLt, opLe:
		frac = f.rangeFrac(math.Inf(-1), n.val.num)
	default:
		frac = f.rangeFrac(n.val.num, math.Inf(1))
	}
	return clamp01(frac * float64(f.numN) / rows)
}

// eqRows estimates the number of rows whose field equals the literal.
func (s *Stats) eqRows(f *fieldStats, lit *operand) float64 {
	var key string
	if lit.isNum {
		key = operandKey(lit.num)
	} else {
		key = lit.str
	}
	if n, ok := f.vals[key]; ok {
		return float64(n)
	}
	if f.other > 0 && f.otherDistinct > 0 {
		return float64(f.other) / float64(f.otherDistinct)
	}
	return 0
}

// rangeFrac estimates the fraction of the field's numeric values inside
// [lo, hi], interpolating linearly within partially-covered buckets.
func (f *fieldStats) rangeFrac(lo, hi float64) float64 {
	if f.numN == 0 || lo > hi {
		return 0
	}
	covered := 0.0
	for idx := 0; idx < numBuckets; idx++ {
		c := f.hist[idx]
		if c == 0 {
			continue
		}
		var bLo, bHi float64
		switch {
		case idx == 0:
			if lo <= 0 && hi >= 0 {
				covered += float64(c)
			}
			continue
		case idx <= octaves:
			bLo, bHi = bucketBounds(idx)
		default:
			pLo, pHi := bucketBounds(idx - octaves)
			bLo, bHi = -pHi, -pLo
		}
		oLo := math.Max(lo, bLo)
		oHi := math.Min(hi, bHi)
		if oHi <= oLo {
			continue
		}
		covered += float64(c) * (oHi - oLo) / (bHi - bLo)
	}
	return covered / float64(f.numN)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
