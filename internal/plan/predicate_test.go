package plan

import (
	"strings"
	"testing"

	"metricindex/internal/core"
)

func mustParse(t *testing.T, src string) *Predicate {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func sampleBag() core.Attrs {
	return core.Attrs{
		"category": core.StringValue("mid"),
		"level":    core.IntValue(7),
		"score":    core.FloatValue(41.5),
		"tags":     core.TagsValue("hot", "sale"),
	}
}

func TestParseEval(t *testing.T) {
	bag := sampleBag()
	cases := []struct {
		src  string
		want bool
	}{
		{`category = "mid"`, true},
		{`category = mid`, true}, // bareword value
		{`category != "mid"`, false},
		{`category = "rare"`, false},
		{`level = 7`, true},
		{`level < 7`, false},
		{`level <= 7`, true},
		{`level > 6.5`, true}, // int widens to float
		{`score >= 41.5`, true},
		{`score < 41.5`, false},
		{`tags = "hot"`, true}, // tag equality = contains
		{`tags = "cold"`, false},
		{`tags IN ("cold", "sale")`, true}, // IN over tags = contains-any
		{`level IN (1, 2, 7)`, true},
		{`level IN (1, 2, 3)`, false},
		{`category IN ("rare", "mid")`, true},
		{`category = "mid" AND level > 5`, true},
		{`category = "mid" AND level > 8`, false},
		{`level > 8 OR score < 50`, true},
		{`(level > 8 OR score > 50) AND tags = "hot"`, false},
		{`missing = 1`, false},          // absent field never matches
		{`missing != 1`, false},         // even negated: predicates are over present fields
		{`category > 3`, false},         // type mismatch (string vs number)
		{`level = "seven"`, false},      // type mismatch (number vs string)
		{`AND = 1 OR level = 7`, false}, // never parses — see TestParseErrors
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			// The last case is a deliberate parse failure; everything
			// else must parse.
			if strings.Contains(c.src, `AND = 1`) {
				continue
			}
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := p.Eval(bag); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNilAndEmptyBags(t *testing.T) {
	p := mustParse(t, `category = "mid" OR level < 3`)
	if p.Eval(nil) {
		t.Error("nil bag matched")
	}
	if p.Eval(core.Attrs{}) {
		t.Error("empty bag matched")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"   ",
		"price <",
		"price 10",
		"= 10",
		"price < 10 AND",
		"price IN ()",
		"price IN (1, 2",
		"(price < 10",
		"price < 10)",
		`name = "unterminated`,
		"AND = 1",
		"a = 1 b = 2",
		"price < NaN AND price < nan(",
		strings.Repeat("(", 100) + "a=1" + strings.Repeat(")", 100), // beyond maxParseDepth
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestStringRoundTrip: the canonical rendering must be a fixpoint of
// the parser — Parse(p.String()).String() == p.String() — and the
// reparsed predicate must evaluate identically. This is what makes the
// canonical string safe as an answer-cache key component.
func TestStringRoundTrip(t *testing.T) {
	bags := []core.Attrs{
		nil,
		sampleBag(),
		{"category": core.StringValue("rare"), "level": core.IntValue(0)},
		{"weird \"name\"": core.StringValue("a\\b"), "score": core.FloatValue(-0.5)},
	}
	for _, src := range []string{
		`category = "mid"`,
		`category=mid`,
		`a < 1 AND b > 2 AND c != 3`,
		`a < 1 OR b > 2 AND c <= 3`,      // precedence: OR(a, AND(b, c))
		`(a < 1 OR b > 2) AND c >= 3`,    // explicit grouping must survive
		`tags IN ("hot", "sale", "x y")`, // quoted value with a space
		`f = "quote\"backslash\\"`,
		`score = -12.25 OR score = 1e9`,
		`LEVEL = 1 and level = 2 or level = 3`, // keyword case-insensitivity
	} {
		p := mustParse(t, src)
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", src, s, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Errorf("String not a fixpoint: %q -> %q -> %q", src, s, s2)
		}
		for i, bag := range bags {
			if p.Eval(bag) != p2.Eval(bag) {
				t.Errorf("%q: reparsed predicate disagrees on bag %d", src, i)
			}
		}
	}
}

// TestPredicateEvalZeroAlloc is the runtime witness behind the
// //metriclint:noalloc markers on the eval path: evaluating a compiled
// predicate — every leaf type, both connectives — allocates nothing,
// so probe-filter accept callbacks cost no garbage per candidate.
func TestPredicateEvalZeroAlloc(t *testing.T) {
	p := mustParse(t,
		`(category IN ("rare", "mid") AND level >= 2 AND score < 90) OR tags = "hot" OR name != "x"`)
	bag := sampleBag()
	var sink bool
	if avg := testing.AllocsPerRun(1000, func() { sink = p.Eval(bag) }); avg != 0 {
		t.Fatalf("Eval allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}
