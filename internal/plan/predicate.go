// Package plan implements filtered (hybrid) search: a small attribute-
// predicate language, a per-attribute selectivity estimator, and a
// planner that decides — per query — whether to filter before, during,
// or after the metric-index probe. The three strategies trade the
// paper's cost measures against each other (compdists saved by
// rejecting candidates early versus the pruning power of the index),
// and all three return exactly the same answer: the filtered subset of
// the metric query's result. See docs/HYBRID.md.
package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"metricindex/internal/core"
)

// The predicate grammar (case-insensitive keywords, ASCII):
//
//	expr    := and { "OR" and }
//	and     := term { "AND" term }
//	term    := "(" expr ")" | leaf
//	leaf    := ident cmp value | ident "IN" "(" value { "," value } ")"
//	cmp     := "=" | "!=" | "<" | "<=" | ">" | ">="
//	value   := number | quoted-string | bareword
//
// Idents name attribute fields. Numeric literals compare against int
// and float attributes (in the widened float64 domain); string
// literals compare against string attributes and tag sets (for tags,
// "=" means contains and IN means contains-any). A leaf over a missing
// field or a mismatched type evaluates to false — predicates are total
// and never error at evaluation time.

type opCode uint8

const (
	opEq opCode = iota + 1
	opNe
	opLt
	opLe
	opGt
	opGe
	opIn
)

var opNames = map[opCode]string{
	opEq: "=", opNe: "!=", opLt: "<", opLe: "<=", opGt: ">", opGe: ">=", opIn: "IN",
}

type nodeKind uint8

const (
	nodeLeaf nodeKind = iota + 1
	nodeAnd
	nodeOr
)

// operand is one pre-parsed literal of a leaf.
type operand struct {
	num   float64
	str   string
	isNum bool
}

type node struct {
	kind nodeKind
	kids []node
	// leaf fields:
	field string
	op    opCode
	val   operand
	set   []operand // IN list
}

// Predicate is a compiled filter expression. Compile once per query
// (Parse), evaluate per candidate (Eval) — evaluation is zero-alloc so
// the probe-filter path can call it inside index hot loops.
type Predicate struct {
	root node
	src  string // canonical form, the cache-key component
}

// String returns the canonical form of the predicate: normalized
// spacing, uppercase keywords, quoted string literals. Two predicates
// with equal canonical forms are semantically identical, which is what
// lets the answer cache key on it.
func (p *Predicate) String() string { return p.src }

// Eval reports whether an object carrying the given attribute bag
// satisfies the predicate. It is total: any bag (including nil) yields
// a boolean, never a panic or an error.
//
//metriclint:noalloc
func (p *Predicate) Eval(a core.Attrs) bool { return p.root.eval(a) }

func (n *node) eval(a core.Attrs) bool {
	switch n.kind {
	case nodeAnd:
		for i := range n.kids {
			if !n.kids[i].eval(a) {
				return false
			}
		}
		return true
	case nodeOr:
		for i := range n.kids {
			if n.kids[i].eval(a) {
				return true
			}
		}
		return false
	}
	v, ok := a[n.field]
	if !ok {
		return false
	}
	if n.op == opIn {
		for i := range n.set {
			if matchEq(v, &n.set[i]) {
				return true
			}
		}
		return false
	}
	switch n.op {
	case opEq:
		return matchEq(v, &n.val)
	case opNe:
		return !matchEq(v, &n.val)
	}
	// Ordering comparisons: numeric attrs against numeric literals,
	// string attrs lexicographically against string literals.
	if n.val.isNum {
		x, numeric := v.Numeric()
		if !numeric {
			return false
		}
		return matchCmp(n.op, cmpFloat(x, n.val.num))
	}
	if v.Kind() != core.AttrString {
		return false
	}
	return matchCmp(n.op, strings.Compare(v.Str(), n.val.str))
}

// matchEq is the equality test of one attribute value against one
// literal: numeric literals match numeric attrs, string literals match
// string attrs and tag sets (set containment).
//
//metriclint:noalloc
func matchEq(v core.AttrValue, lit *operand) bool {
	if lit.isNum {
		x, numeric := v.Numeric()
		return numeric && x == lit.num
	}
	switch v.Kind() {
	case core.AttrString:
		return v.Str() == lit.str
	case core.AttrTags:
		for _, t := range v.Tags() {
			if t == lit.str {
				return true
			}
		}
	}
	return false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	return 2 // NaN involved: no ordering relation holds
}

func matchCmp(op opCode, c int) bool {
	switch op {
	case opLt:
		return c == -1
	case opLe:
		return c == -1 || c == 0
	case opGt:
		return c == 1
	case opGe:
		return c == 1 || c == 0
	}
	return false
}

// ---- parser ----

const maxParseDepth = 64

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokOp // one of = != < <= > >=
)

type token struct {
	kind tokKind
	text string
	op   opCode
	pos  int
}

type parser struct {
	in  string
	pos int
	tok token
}

// Parse compiles a filter expression. It rejects syntax errors,
// over-deep nesting, and empty input; it never panics, whatever the
// input (FuzzPredicateParse holds it to that).
func Parse(src string) (*Predicate, error) {
	p := &parser{in: src}
	if err := p.next(); err != nil {
		return nil, err
	}
	root, err := p.parseOr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("plan: trailing input at offset %d", p.tok.pos)
	}
	pred := &Predicate{root: root}
	var b strings.Builder
	printNode(&b, &pred.root, false)
	pred.src = b.String()
	return pred, nil
}

func (p *parser) parseOr(depth int) (node, error) {
	if depth > maxParseDepth {
		return node{}, fmt.Errorf("plan: filter nested deeper than %d levels", maxParseDepth)
	}
	first, err := p.parseAnd(depth + 1)
	if err != nil {
		return node{}, err
	}
	kids := []node{first}
	for p.keyword("OR") {
		if err := p.next(); err != nil {
			return node{}, err
		}
		k, err := p.parseAnd(depth + 1)
		if err != nil {
			return node{}, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return node{kind: nodeOr, kids: kids}, nil
}

func (p *parser) parseAnd(depth int) (node, error) {
	if depth > maxParseDepth {
		return node{}, fmt.Errorf("plan: filter nested deeper than %d levels", maxParseDepth)
	}
	first, err := p.parseTerm(depth + 1)
	if err != nil {
		return node{}, err
	}
	kids := []node{first}
	for p.keyword("AND") {
		if err := p.next(); err != nil {
			return node{}, err
		}
		k, err := p.parseTerm(depth + 1)
		if err != nil {
			return node{}, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return node{kind: nodeAnd, kids: kids}, nil
}

func (p *parser) parseTerm(depth int) (node, error) {
	if depth > maxParseDepth {
		return node{}, fmt.Errorf("plan: filter nested deeper than %d levels", maxParseDepth)
	}
	if p.tok.kind == tokLParen {
		if err := p.next(); err != nil {
			return node{}, err
		}
		inner, err := p.parseOr(depth + 1)
		if err != nil {
			return node{}, err
		}
		if p.tok.kind != tokRParen {
			return node{}, fmt.Errorf("plan: missing ')' at offset %d", p.tok.pos)
		}
		if err := p.next(); err != nil {
			return node{}, err
		}
		return inner, nil
	}
	if p.tok.kind != tokIdent {
		return node{}, fmt.Errorf("plan: expected field name at offset %d", p.tok.pos)
	}
	field := p.tok.text
	if strings.EqualFold(field, "AND") || strings.EqualFold(field, "OR") || strings.EqualFold(field, "IN") {
		return node{}, fmt.Errorf("plan: keyword %q cannot name a field (offset %d)", field, p.tok.pos)
	}
	if err := p.next(); err != nil {
		return node{}, err
	}
	if p.keyword("IN") {
		if err := p.next(); err != nil {
			return node{}, err
		}
		if p.tok.kind != tokLParen {
			return node{}, fmt.Errorf("plan: IN needs '(' at offset %d", p.tok.pos)
		}
		if err := p.next(); err != nil {
			return node{}, err
		}
		var set []operand
		for {
			v, err := p.parseValue()
			if err != nil {
				return node{}, err
			}
			set = append(set, v)
			if p.tok.kind == tokComma {
				if err := p.next(); err != nil {
					return node{}, err
				}
				continue
			}
			break
		}
		if p.tok.kind != tokRParen {
			return node{}, fmt.Errorf("plan: IN list missing ')' at offset %d", p.tok.pos)
		}
		if err := p.next(); err != nil {
			return node{}, err
		}
		return node{kind: nodeLeaf, field: field, op: opIn, set: set}, nil
	}
	if p.tok.kind != tokOp {
		return node{}, fmt.Errorf("plan: expected comparison after %q (offset %d)", field, p.tok.pos)
	}
	op := p.tok.op
	if err := p.next(); err != nil {
		return node{}, err
	}
	v, err := p.parseValue()
	if err != nil {
		return node{}, err
	}
	return node{kind: nodeLeaf, field: field, op: op, val: v}, nil
}

func (p *parser) parseValue() (operand, error) {
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
			return operand{}, fmt.Errorf("plan: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		if err2 := p.next(); err2 != nil {
			return operand{}, err2
		}
		return operand{num: f, isNum: true}, nil
	case tokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return operand{}, err
		}
		return operand{str: s}, nil
	case tokIdent:
		// Bareword value (unquoted string), unless it is a keyword.
		s := p.tok.text
		if strings.EqualFold(s, "AND") || strings.EqualFold(s, "OR") || strings.EqualFold(s, "IN") {
			return operand{}, fmt.Errorf("plan: keyword %q needs quotes to be a value (offset %d)", s, p.tok.pos)
		}
		if err := p.next(); err != nil {
			return operand{}, err
		}
		return operand{str: s}, nil
	}
	return operand{}, fmt.Errorf("plan: expected value at offset %d", p.tok.pos)
}

// keyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) next() error {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
	start := p.pos
	if p.pos >= len(p.in) {
		p.tok = token{kind: tokEOF, pos: start}
		return nil
	}
	c := p.in[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, pos: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, pos: start}
	case c == '=':
		p.pos++
		p.tok = token{kind: tokOp, op: opEq, pos: start}
	case c == '!':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != '=' {
			return fmt.Errorf("plan: stray '!' at offset %d", start)
		}
		p.pos += 2
		p.tok = token{kind: tokOp, op: opNe, pos: start}
	case c == '<':
		p.pos++
		op := opLt
		if p.pos < len(p.in) && p.in[p.pos] == '=' {
			p.pos++
			op = opLe
		}
		p.tok = token{kind: tokOp, op: op, pos: start}
	case c == '>':
		p.pos++
		op := opGt
		if p.pos < len(p.in) && p.in[p.pos] == '=' {
			p.pos++
			op = opGe
		}
		p.tok = token{kind: tokOp, op: op, pos: start}
	case c == '"':
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.in) {
				return fmt.Errorf("plan: unterminated string at offset %d", start)
			}
			ch := p.in[p.pos]
			if ch == '"' {
				p.pos++
				break
			}
			if ch == '\\' {
				if p.pos+1 >= len(p.in) {
					return fmt.Errorf("plan: unterminated escape at offset %d", p.pos)
				}
				p.pos++
				ch = p.in[p.pos]
				if ch != '"' && ch != '\\' {
					return fmt.Errorf("plan: unsupported escape \\%c at offset %d", ch, p.pos)
				}
			}
			b.WriteByte(ch)
			p.pos++
		}
		p.tok = token{kind: tokString, text: b.String(), pos: start}
	case c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9'):
		p.pos++
		for p.pos < len(p.in) {
			ch := p.in[p.pos]
			if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
				ch == '-' || ch == '+' {
				p.pos++
				continue
			}
			break
		}
		p.tok = token{kind: tokNumber, text: p.in[start:p.pos], pos: start}
	case isIdentStart(c):
		p.pos++
		for p.pos < len(p.in) && isIdentPart(p.in[p.pos]) {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.in[start:p.pos], pos: start}
	default:
		return fmt.Errorf("plan: unexpected byte %q at offset %d", c, start)
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-'
}

// ---- canonical printing ----

// printNode renders the canonical form. parenthesize is set when an OR
// node appears under an AND, the only place precedence needs parens.
func printNode(b *strings.Builder, n *node, parenthesize bool) {
	switch n.kind {
	case nodeOr:
		if parenthesize {
			b.WriteByte('(')
		}
		for i := range n.kids {
			if i > 0 {
				b.WriteString(" OR ")
			}
			printNode(b, &n.kids[i], false)
		}
		if parenthesize {
			b.WriteByte(')')
		}
	case nodeAnd:
		for i := range n.kids {
			if i > 0 {
				b.WriteString(" AND ")
			}
			printNode(b, &n.kids[i], n.kids[i].kind == nodeOr)
		}
	default:
		b.WriteString(n.field)
		if n.op == opIn {
			b.WriteString(" IN (")
			for i := range n.set {
				if i > 0 {
					b.WriteString(", ")
				}
				printOperand(b, &n.set[i])
			}
			b.WriteByte(')')
			return
		}
		b.WriteByte(' ')
		b.WriteString(opNames[n.op])
		b.WriteByte(' ')
		printOperand(b, &n.val)
	}
}

func printOperand(b *strings.Builder, v *operand) {
	if v.isNum {
		b.WriteString(strconv.FormatFloat(v.num, 'g', -1, 64))
		return
	}
	// Quote with the lexer's own (minimal) escape set — only '"' and
	// '\' — so every canonical form re-parses to itself, whatever bytes
	// the string holds.
	b.WriteByte('"')
	for i := 0; i < len(v.str); i++ {
		c := v.str[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
}
