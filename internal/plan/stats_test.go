package plan

import (
	"fmt"
	"math"
	"testing"

	"metricindex/internal/core"
)

// statsFixture: 100 rows — 30 category="a", 70 category="b"; the first
// 50 rows level=1, the rest level=2; every row x=i+1 (1..100); the
// first 20 rows carry tag "hot".
func statsFixture() *Stats {
	st := NewStats()
	for i := 0; i < 100; i++ {
		bag := core.Attrs{
			"level": core.IntValue(int64(1 + i/50)),
			"x":     core.IntValue(int64(i + 1)),
		}
		if i < 30 {
			bag["category"] = core.StringValue("a")
		} else {
			bag["category"] = core.StringValue("b")
		}
		if i < 20 {
			bag["tags"] = core.TagsValue("hot")
		}
		st.Observe(bag)
	}
	return st
}

func sel(t *testing.T, st *Stats, src string) float64 {
	t.Helper()
	return st.Selectivity(mustParse(t, src))
}

func TestSelectivityDiscrete(t *testing.T) {
	st := statsFixture()
	cases := []struct {
		src  string
		want float64
	}{
		{`category = "a"`, 0.3}, // exact-count table, exact answer
		{`category != "a"`, 0.7},
		{`category IN ("a", "b")`, 1.0},
		{`level = 1`, 0.5},
		{`tags = "hot"`, 0.2},
		{`nosuch = 1`, 0},
		{`category = "zzz"`, 0},
		{`category = "a" AND level = 1`, 0.15},     // product
		{`category = "a" OR level = 1`, 0.65},      // inclusion-exclusion
		{`category = "a" OR category = "b"`, 0.79}, // 1 - 0.7*0.3: independence, not union
	}
	for _, c := range cases {
		if got := sel(t, st, c.src); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Selectivity(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSelectivityRange(t *testing.T) {
	st := statsFixture() // x uniform over 1..100
	cases := []struct {
		src       string
		want, tol float64
	}{
		{`x < 50`, 0.49, 0.15}, // octave interpolation is coarse
		{`x > 50`, 0.50, 0.15},
		{`x >= 1`, 1.0, 0.05},
		{`x < 1`, 0.0, 0.05},
		{`x > 1000`, 0.0, 0.01},
		{`category < "b"`, 0.5, 1e-9}, // string range: flat half-of-field default
	}
	for _, c := range cases {
		if got := sel(t, st, c.src); math.Abs(got-c.want) > c.tol {
			t.Errorf("Selectivity(%q) = %v, want %v ± %v", c.src, got, c.want, c.tol)
		}
	}
}

func TestSelectivityEmptyStats(t *testing.T) {
	if got := sel(t, NewStats(), `a = 1`); got != 0 {
		t.Fatalf("empty stats selectivity = %v, want 0", got)
	}
}

// TestSelectivityOverflowPool: past maxDistinct distinct values the
// exact table stops growing and equality estimates come from the
// overflow pool — approximate but nonzero and small.
func TestSelectivityOverflowPool(t *testing.T) {
	st := NewStats()
	n := maxDistinct + 200
	for i := 0; i < n; i++ {
		st.Observe(core.Attrs{"u": core.StringValue(fmt.Sprintf("val-%d", i))})
	}
	if got := st.ValueRows("u", fmt.Sprintf("val-%d", n-1)); got != 0 {
		t.Fatalf("pooled value reported %d exact rows, want 0", got)
	}
	got := sel(t, st, fmt.Sprintf(`u = "val-%d"`, n-1))
	if got <= 0 || got > 0.05 {
		t.Fatalf("overflow-pool selectivity = %v, want small positive", got)
	}
}

// TestObserveRemoveInverse: removing every observed bag restores all
// counters to zero — rows, per-field counts, exact tables, and every
// histogram bucket. This exactness (bucketOf is a pure function of the
// value) is what the epoch churn test leans on.
func TestObserveRemoveInverse(t *testing.T) {
	bags := []core.Attrs{
		nil,
		{},
		{"a": core.IntValue(7), "b": core.StringValue("x")},
		{"a": core.FloatValue(-0.001), "t": core.TagsValue("p", "q")},
		{"a": core.FloatValue(math.NaN()), "b": core.StringValue("x")},
		{"a": core.IntValue(0), "t": core.TagsValue()},
	}
	st := NewStats()
	for _, b := range bags {
		st.Observe(b)
	}
	for _, b := range bags {
		st.Remove(b)
	}
	if st.Rows() != 0 {
		t.Fatalf("Rows = %d after full removal, want 0", st.Rows())
	}
	for _, f := range []string{"a", "b", "t"} {
		if n := st.FieldRows(f); n != 0 {
			t.Errorf("FieldRows(%q) = %d, want 0", f, n)
		}
		for i, c := range st.HistogramCounts(f) {
			if c != 0 {
				t.Errorf("HistogramCounts(%q)[%d] = %d, want 0", f, i, c)
			}
		}
	}
	if n := st.ValueRows("b", "x"); n != 0 {
		t.Errorf("ValueRows(b, x) = %d, want 0", n)
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		sel     float64
		n       int
		capable bool
		want    Strategy
	}{
		{0.01, 100000, true, StrategyPre},  // rare: linear pre-filter scan
		{0.01, 100000, false, StrategyPre}, // capability irrelevant for pre
		{0.2, 500, true, StrategyPre},      // 100 expected matches ≤ preMaxMatches
		{0.2, 100000, true, StrategyProbe}, // mid selectivity, pushdown available
		{0.2, 100000, false, StrategyPost}, // mid selectivity, no pushdown
		{0.5, 100000, true, StrategyPost},  // half the data matches: filter after
		{0.9, 100000, false, StrategyPost},
		{0.05, 100000, false, StrategyPre}, // boundary: sel == preMaxSel
	}
	for _, c := range cases {
		if got := Choose(c.sel, c.n, c.capable); got != c.want {
			t.Errorf("Choose(%v, %d, %v) = %v, want %v", c.sel, c.n, c.capable, got, c.want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	for st, want := range map[Strategy]string{
		StrategyPre: "pre", StrategyProbe: "probe", StrategyPost: "post",
	} {
		if got := st.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", st, got, want)
		}
	}
}
