package plan

import (
	"math"
	"sort"

	"metricindex/internal/core"
)

// Strategy is the execution shape of one filtered query. All three
// produce the same exact answer; they differ only in where the
// predicate is applied relative to the index probe, and therefore in
// compdists and page accesses.
type Strategy uint8

const (
	// StrategyPre scans the matching id-set linearly, skipping the
	// index entirely: when few objects match, computing their distances
	// directly beats any probe.
	StrategyPre Strategy = iota + 1
	// StrategyProbe pushes the predicate into the index's candidate-
	// verification step (core.AcceptSearcher): non-matching candidates
	// are rejected before their distance is computed, keeping the
	// index's geometric pruning and saving the compdists of rejected
	// candidates.
	StrategyProbe
	// StrategyPost filters the answers of an ordinary index probe; kNN
	// probes inflate k by the estimated selectivity and re-probe with a
	// doubled k until enough matches surface (terminally k = n, which
	// is exact by exhaustion).
	StrategyPost
)

// String returns the short name used in metrics labels and reports.
func (s Strategy) String() string {
	switch s {
	case StrategyPre:
		return "pre"
	case StrategyProbe:
		return "probe"
	case StrategyPost:
		return "post"
	}
	return "unknown"
}

// Strategies lists all strategies, for tests and metric registration.
var Strategies = []Strategy{StrategyPre, StrategyProbe, StrategyPost}

// Planner decision thresholds. A pre-filter costs one predicate
// evaluation per live object plus one distance per match, so it wins
// when matches are few in absolute terms or rare in relative terms.
// Past half the dataset matching, probe-side rejection saves little and
// post-filtering an ordinary probe keeps the index path hottest.
const (
	// preMaxMatches: expected match count at or below which the linear
	// pre-filter scan is chosen outright.
	preMaxMatches = 128
	// preMaxSel: selectivity at or below which pre-filter is chosen
	// regardless of dataset size.
	preMaxSel = 0.05
	// postMinSel: selectivity at or above which post-filter is chosen
	// (most answers survive the filter anyway).
	postMinSel = 0.5
)

// Capable reports whether the index supports predicate pushdown
// (probe-filtering).
func Capable(idx core.Index) bool {
	_, ok := idx.(core.AcceptSearcher)
	return ok
}

// Choose picks the strategy for a filtered query from the estimated
// selectivity sel, the live object count n, and whether the index can
// probe-filter. The choice never affects the answer, only its cost.
func Choose(sel float64, n int, probeCapable bool) Strategy {
	if sel <= preMaxSel || sel*float64(n) <= preMaxMatches {
		return StrategyPre
	}
	if sel >= postMinSel || !probeCapable {
		return StrategyPost
	}
	return StrategyProbe
}

// ExecRange answers MRQ(q, r) restricted to objects satisfying p,
// using the given strategy. StrategyProbe silently degrades to
// StrategyPost when the index cannot push predicates down. The result
// is in ascending id order, exactly the predicate-filtered subset of
// the unfiltered range answer.
func ExecRange(ds *core.Dataset, idx core.Index, p *Predicate, q core.Object, r float64, st Strategy) ([]int, error) {
	switch st {
	case StrategyPre:
		var res []int
		for id, o := range ds.Objects() {
			if o == nil || !p.Eval(ds.Attrs(id)) {
				continue
			}
			if ds.Space().Distance(q, o) <= r {
				res = append(res, id)
			}
		}
		return res, nil
	case StrategyProbe:
		as, ok := idx.(core.AcceptSearcher)
		if !ok {
			return ExecRange(ds, idx, p, q, r, StrategyPost)
		}
		ids, err := as.RangeSearchAccept(q, r, func(id int) bool {
			return p.Eval(ds.Attrs(id))
		})
		if err != nil {
			return nil, err
		}
		sort.Ints(ids)
		return ids, nil
	default:
		ids, err := idx.RangeSearch(q, r)
		if err != nil {
			return nil, err
		}
		res := ids[:0]
		for _, id := range ids {
			if p.Eval(ds.Attrs(id)) {
				res = append(res, id)
			}
		}
		return res, nil
	}
}

// ExecKNN answers MkNNQ(q, k) over objects satisfying p, using the
// given strategy. selHint seeds the post-filter's k inflation (pass the
// estimated selectivity; any value outside (0, 1] falls back to 0.5).
// Fewer than k neighbors are returned only when fewer than k live
// objects match the predicate.
func ExecKNN(ds *core.Dataset, idx core.Index, p *Predicate, q core.Object, k int, st Strategy, selHint float64) ([]core.Neighbor, error) {
	switch st {
	case StrategyPre:
		h := core.NewKNNHeap(k)
		for id, o := range ds.Objects() {
			if o == nil || !p.Eval(ds.Attrs(id)) {
				continue
			}
			h.Push(id, ds.Space().Distance(q, o))
		}
		return h.Result(), nil
	case StrategyProbe:
		as, ok := idx.(core.AcceptSearcher)
		if !ok {
			return ExecKNN(ds, idx, p, q, k, StrategyPost, selHint)
		}
		return as.KNNSearchAccept(q, k, func(id int) bool {
			return p.Eval(ds.Attrs(id))
		})
	default:
		return postKNN(ds, idx, p, q, k, selHint)
	}
}

// postKNN is the inflated-k re-probe loop. Each round probes the
// unfiltered index for kk neighbors and keeps the matches; because the
// index's kNN answer is the top kk of the total (distance, id) order,
// its matching subset is a prefix of the true filtered answer. The loop
// doubles kk until k matches surface or kk reaches the live count, at
// which point the probe was exhaustive.
func postKNN(ds *core.Dataset, idx core.Index, p *Predicate, q core.Object, k int, selHint float64) ([]core.Neighbor, error) {
	n := ds.Count()
	if k <= 0 || n == 0 {
		return []core.Neighbor{}, nil
	}
	sel := selHint
	if !(sel > 0) || sel > 1 {
		sel = 0.5
	}
	kk := int(math.Ceil(float64(k) / sel))
	if kk < 2*k {
		kk = 2 * k
	}
	if kk > n {
		kk = n
	}
	for {
		nbrs, err := idx.KNNSearch(q, kk)
		if err != nil {
			return nil, err
		}
		matched := make([]core.Neighbor, 0, k)
		for _, nb := range nbrs {
			if p.Eval(ds.Attrs(nb.ID)) {
				matched = append(matched, nb)
				if len(matched) == k {
					return matched, nil
				}
			}
		}
		if kk >= n {
			return matched, nil
		}
		kk *= 2
		if kk > n {
			kk = n
		}
	}
}

// RunRange estimates, chooses, and executes in one call; it returns the
// strategy it picked so callers can record the plan mix.
func RunRange(ds *core.Dataset, idx core.Index, st *Stats, p *Predicate, q core.Object, r float64) ([]int, Strategy, error) {
	strat := Choose(st.Selectivity(p), ds.Count(), Capable(idx))
	ids, err := ExecRange(ds, idx, p, q, r, strat)
	return ids, strat, err
}

// RunKNN is the kNN counterpart of RunRange.
func RunKNN(ds *core.Dataset, idx core.Index, st *Stats, p *Predicate, q core.Object, k int) ([]core.Neighbor, Strategy, error) {
	sel := st.Selectivity(p)
	strat := Choose(sel, ds.Count(), Capable(idx))
	nbrs, err := ExecKNN(ds, idx, p, q, k, strat, sel)
	return nbrs, strat, err
}
