package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/core"
)

// EquivIndex is the index surface the equivalence harness drives: the
// query subset plus updates. Every index in the library satisfies it.
type EquivIndex interface {
	Searcher
	Insert(id int) error
	Delete(id int) error
}

// EquivBuilder constructs one index over the dataset with the given
// build parallelism. The harness calls it with workers 1 and workers 4
// and requires the two structures to answer identically, so the builder
// must map both values onto the *same* construction algorithm (for the
// disk trees that means the bulk load, run sequentially for 1).
type EquivBuilder func(ds *core.Dataset, workers int) (EquivIndex, error)

// EquivDataset is one randomized dataset prepared for the harness.
type EquivDataset struct {
	Name string
	DS   *core.Dataset
	// MaxDistance is a safe distance-domain bound d+ for index families
	// that need one (BKT/FQT, SPB-tree, ...).
	MaxDistance float64
	// Pivots is a deterministic shared pivot set (spread over the ids;
	// pivot quality is irrelevant to correctness testing).
	Pivots []int
}

// EquivDatasets builds the harness's randomized dataset pair: a vector
// dataset (integer L∞ when discrete is set, for BKT/FQT; float L2
// otherwise) and a words dataset under edit distance.
func EquivDatasets(discrete bool, n int, seed int64) []EquivDataset {
	var vec EquivDataset
	if discrete {
		vec = EquivDataset{Name: "intvectors", DS: IntVectorDataset(n, 4, 100, seed), MaxDistance: 100}
	} else {
		vec = EquivDataset{Name: "vectors", DS: VectorDataset(n, 4, 100, core.L2{}, seed), MaxDistance: 200}
	}
	words := EquivDataset{Name: "words", DS: WordDataset(n, seed+1), MaxDistance: 12}
	out := []EquivDataset{vec, words}
	for i := range out {
		out[i].Pivots = SpreadPivots(out[i].DS, 4)
	}
	return out
}

// SpreadPivots picks k deterministic pivots evenly spaced over the live
// identifiers — no selection quality, full determinism, no dependency on
// the pivot package (whose tests import testutil).
func SpreadPivots(ds *core.Dataset, k int) []int {
	ids := ds.LiveIDs()
	if k > len(ids) {
		k = len(ids)
	}
	pv := make([]int, k)
	for i := 0; i < k; i++ {
		pv[i] = ids[i*len(ids)/k]
	}
	return pv
}

// EquivOptions tunes the harness; zero values pick defaults.
type EquivOptions struct {
	// QuerySeeds is the number of random query objects (default 3).
	QuerySeeds int
	// Ks are the MkNNQ sizes (default 1, 5, 20).
	Ks []int
	// Updates is the number of insert-then-delete round-trip objects
	// (default 12).
	Updates int
}

func (o EquivOptions) withDefaults() EquivOptions {
	if o.QuerySeeds <= 0 {
		o.QuerySeeds = 3
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{1, 5, 20}
	}
	if o.Updates <= 0 {
		o.Updates = 12
	}
	return o
}

// CheckEquivalence is the shared metamorphic harness behind every
// parallel-build index test. For the given builder and dataset it
// checks, in order:
//
//	(a) the parallel build (workers=4) answers every MRQ and MkNNQ
//	    *identically* — same ids, same distances, same tie-breaks — to
//	    the sequential build (workers=1) of the same algorithm;
//	(b) both builds answer correctly against a brute-force linear scan;
//	(c) answers are invariant under insert-then-delete round trips: after
//	    inserting Updates synthetic objects and deleting them again, MRQ
//	    answers are unchanged and MkNNQ distances are unchanged (tie
//	    winners may differ after structural churn).
func CheckEquivalence(t *testing.T, ed EquivDataset, build EquivBuilder, o EquivOptions) {
	t.Helper()
	o = o.withDefaults()
	ds := ed.DS
	seq, err := build(ds, 1)
	if err != nil {
		t.Fatalf("%s: sequential build: %v", ed.Name, err)
	}
	par, err := build(ds, 4)
	if err != nil {
		t.Fatalf("%s: parallel build: %v", ed.Name, err)
	}

	type probe struct {
		q     core.Object
		radii []float64
	}
	probes := make([]probe, o.QuerySeeds)
	for qs := range probes {
		q := RandomQuery(ds, int64(qs))
		probes[qs] = probe{q: q, radii: Radii(ds, q)}
	}

	// (a) + (b): parallel answers must equal sequential answers exactly,
	// and both must match brute force.
	for qs, pr := range probes {
		for _, r := range pr.radii {
			a, err := seq.RangeSearch(pr.q, r)
			if err != nil {
				t.Fatalf("%s: seq RangeSearch(r=%v): %v", ed.Name, r, err)
			}
			b, err := par.RangeSearch(pr.q, r)
			if err != nil {
				t.Fatalf("%s: par RangeSearch(r=%v): %v", ed.Name, r, err)
			}
			if !equalInts(a, b) {
				t.Fatalf("%s: query %d MRQ(r=%v) differs between parallel and sequential build:\n seq %v\n par %v",
					ed.Name, qs, r, a, b)
			}
			CheckRange(t, par, ds, pr.q, r)
		}
		for _, k := range o.Ks {
			a, err := seq.KNNSearch(pr.q, k)
			if err != nil {
				t.Fatalf("%s: seq KNNSearch(k=%d): %v", ed.Name, k, err)
			}
			b, err := par.KNNSearch(pr.q, k)
			if err != nil {
				t.Fatalf("%s: par KNNSearch(k=%d): %v", ed.Name, k, err)
			}
			if err := sameNeighbors(a, b); err != nil {
				t.Fatalf("%s: query %d MkNNQ(k=%d) differs between parallel and sequential build: %v\n seq %v\n par %v",
					ed.Name, qs, k, err, a, b)
			}
			CheckKNN(t, par, ds, pr.q, k)
		}
	}

	// (c) insert-then-delete round trip on the parallel build. Snapshot
	// the answers, churn the structure, and require them back.
	type snapshot struct {
		ranges [][]int
		knns   [][]float64
	}
	takeSnapshot := func() []snapshot {
		snaps := make([]snapshot, len(probes))
		for qs, pr := range probes {
			for _, r := range pr.radii {
				ids, err := par.RangeSearch(pr.q, r)
				if err != nil {
					t.Fatalf("%s: snapshot RangeSearch: %v", ed.Name, err)
				}
				snaps[qs].ranges = append(snaps[qs].ranges, ids)
			}
			for _, k := range o.Ks {
				nns, err := par.KNNSearch(pr.q, k)
				if err != nil {
					t.Fatalf("%s: snapshot KNNSearch: %v", ed.Name, err)
				}
				dists := make([]float64, len(nns))
				for i, nb := range nns {
					dists[i] = nb.Dist
				}
				snaps[qs].knns = append(snaps[qs].knns, dists)
			}
		}
		return snaps
	}
	before := takeSnapshot()
	newIDs := make([]int, 0, o.Updates)
	for u := 0; u < o.Updates; u++ {
		obj := RandomQuery(ds, int64(1000+u))
		id := ds.Insert(obj)
		if err := par.Insert(id); err != nil {
			t.Fatalf("%s: Insert(%d): %v", ed.Name, id, err)
		}
		newIDs = append(newIDs, id)
	}
	for i := len(newIDs) - 1; i >= 0; i-- {
		id := newIDs[i]
		if err := par.Delete(id); err != nil {
			t.Fatalf("%s: Delete(%d): %v", ed.Name, id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatalf("%s: dataset Delete(%d): %v", ed.Name, id, err)
		}
	}
	after := takeSnapshot()
	for qs := range probes {
		for i, ids := range after[qs].ranges {
			if !equalInts(ids, before[qs].ranges[i]) {
				t.Fatalf("%s: query %d MRQ answer changed across insert-then-delete round trip:\n before %v\n after  %v",
					ed.Name, qs, before[qs].ranges[i], ids)
			}
		}
		for i, dists := range after[qs].knns {
			if err := sameDists(dists, before[qs].knns[i]); err != nil {
				t.Fatalf("%s: query %d MkNNQ distances changed across insert-then-delete round trip: %v\n before %v\n after  %v",
					ed.Name, qs, err, before[qs].knns[i], dists)
			}
		}
	}
}

// sameNeighbors requires exact equality — ids, distances, and order.
func sameNeighbors(a, b []core.Neighbor) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return fmt.Errorf("position %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// sameDists compares distance multisets exactly (same metric over the
// same objects, so no epsilon is needed).
func sameDists(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths %d vs %d", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	for i := range as {
		if as[i] != bs[i] {
			return fmt.Errorf("sorted position %d: %v vs %v", i, as[i], bs[i])
		}
	}
	return nil
}

// ConcurrencyProbe wraps a metric and tracks the maximum number of
// concurrent Distance calls — the regression guard that parallel builds
// bound their total concurrency to Workers (token pool, not per-level
// fan-out). Every call yields the processor (or sleeps, when a delay is
// set) while counted as in-flight, so unbounded goroutine spawning
// registers even on a single-core machine.
type ConcurrencyProbe struct {
	core.Metric
	delay    time.Duration
	cur, max atomic.Int64
}

// NewConcurrencyProbe wraps the metric; a zero delay yields via the
// scheduler instead of sleeping (cheap enough for distance-hungry
// builds), a positive delay widens the in-flight window further.
func NewConcurrencyProbe(m core.Metric, delay time.Duration) *ConcurrencyProbe {
	return &ConcurrencyProbe{Metric: m, delay: delay}
}

// Distance counts the call as in-flight around the wrapped computation.
func (p *ConcurrencyProbe) Distance(a, b core.Object) float64 {
	n := p.cur.Add(1)
	for {
		m := p.max.Load()
		if n <= m || p.max.CompareAndSwap(m, n) {
			break
		}
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	} else {
		runtime.Gosched()
	}
	d := p.Metric.Distance(a, b)
	p.cur.Add(-1)
	return d
}

// Max returns the highest concurrency observed.
func (p *ConcurrencyProbe) Max() int64 { return p.max.Load() }

// ProbeDataset clones the dataset's objects into a new dataset whose
// metric is wrapped in a ConcurrencyProbe.
func ProbeDataset(ds *core.Dataset, delay time.Duration) (*core.Dataset, *ConcurrencyProbe) {
	probe := NewConcurrencyProbe(ds.Space().Metric(), delay)
	objs := append([]core.Object(nil), ds.Objects()...)
	return core.NewDataset(core.NewSpace(probe), objs), probe
}
